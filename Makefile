# Development targets. The repo is plain `go build ./... && go test ./...`;
# these are conveniences around the common loops.

GO ?= go

.PHONY: all build test vet race chaos bench bench-contention cover fuzz trace fairness latency-smoke pipeline-bench

all: vet build test

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

race:
	$(GO) test -race ./internal/...

# chaos runs the fault-injection stress suite under the race detector:
# deterministic seeded panics/failures/delays over wavefront- and
# traversal-shaped graphs, asserting the executor always quiesces with a
# coherent aggregated error and no goroutine leaks.
chaos:
	$(GO) test -race -count=5 ./internal/chaos/

# bench runs the scheduler hot-path benchmarks (steady-state re-runs plus
# the paper's wavefront/traversal end-to-end figures) with allocation
# reporting and records the raw output in BENCH_scheduler.json alongside
# the kept before/after medians.
bench:
	$(GO) test -run '^$$' \
		-bench 'BenchmarkSched|BenchmarkParallelForSkewed|Fig7WavefrontSizeTaskflow|Fig7TraversalSizeTaskflow' \
		-benchmem -benchtime 2s -count 3 . | tee /tmp/bench_scheduler.txt
	@echo "raw output in /tmp/bench_scheduler.txt; curate BENCH_scheduler.json from it"

# bench-contention runs the scheduler contention suite — thundering herd,
# empty-steal storm, cross-worker fanout, injection flood — across the
# GOMAXPROCS ladder (each sub-benchmark pins its own worker count/procs).
# Medians feed the "contention" section of BENCH_scheduler.json.
bench-contention:
	$(GO) test -run '^$$' -bench 'BenchmarkContention' \
		-benchmem -benchtime 1s -count 5 ./internal/executor/ \
		| tee /tmp/bench_contention.txt
	@echo "raw output in /tmp/bench_contention.txt; curate BENCH_scheduler.json (contention section) from it"

# fairness runs the multi-tenant suite: the sim fairness property sweep,
# the injected-starvation detector, the real-executor admission and
# -race mirror tests, then the fairness tail benchmarks (interactive p99
# under batch saturation). Medians feed the "fairness" section of
# BENCH_scheduler.json.
fairness:
	$(GO) test -run 'Fairness|StrictDrain|WeightedDrain|ServiceGap|TestFlow' -v ./internal/sim/ ./internal/core/ ./internal/executor/
	$(GO) test -run '^$$' -bench 'BenchmarkFairness' \
		-benchmem -benchtime 1s -count 3 . | tee /tmp/bench_fairness.txt
	@echo "raw output in /tmp/bench_fairness.txt; curate BENCH_scheduler.json (fairness section) from it"

# trace is the tracing smoke: capture an event trace from an instrumented
# wavefront and traversal run via the drivers' -trace flags, then validate
# the Chrome trace-event JSON (required Perfetto fields, named task spans,
# matched flow arrows, scheduler instants) with cmd/tracecheck.
trace:
	$(GO) run ./cmd/wavefront -metrics -size 64 -workers 4 -trace /tmp/wavefront_trace.json
	$(GO) run ./cmd/traversal -metrics -size 5000 -workers 4 -trace /tmp/traversal_trace.json
	$(GO) run ./cmd/tracecheck /tmp/wavefront_trace.json /tmp/traversal_trace.json

# latency-smoke drives the always-on observability surface end to end:
# cmd/latencysmoke runs a mixed interactive/batch workload with latency
# histograms, the flight recorder and the stall watchdog all armed,
# self-checks the per-flow quantiles (including a Prometheus-text
# round-trip of p99) and that the watchdog stays quiet, dumps the flight
# window, and cmd/tracecheck -flight validates the dump's structure and
# drop accounting.
latency-smoke:
	$(GO) run ./cmd/latencysmoke -workers 4 -dur 1s -flight /tmp/flight_smoke.json
	$(GO) run ./cmd/tracecheck -flight /tmp/flight_smoke.json

# pipeline-bench is the pipeline throughput smoke: the zero-alloc
# steady-state gate, a short benchmark pass over the stages × lines
# matrix (tokens/sec must be reported; medians feed the "pipeline"
# section of BENCH_scheduler.json), and a cmd/pipestream run that
# self-checks token counts, positive throughput, the per-line trace and
# the Prometheus export.
pipeline-bench:
	$(GO) test -run 'TestPipelineRunNZeroAlloc' -v ./internal/pipeline/
	$(GO) test -run '^$$' -bench 'BenchmarkPipeline' \
		-benchmem -benchtime 200ms ./internal/pipeline/ | tee /tmp/bench_pipeline.txt
	$(GO) run ./cmd/pipestream -workers 4 -lines 8 -stages 6 -tokens 5000 -runs 2 \
		-trace /tmp/pipestream_lines.json -prom /tmp/pipestream.prom -latency

# cover runs the full suite with atomic-mode coverage and prints the
# per-function summary; coverage.out feeds `go tool cover -html`.
cover:
	$(GO) test -coverprofile=coverage.out -covermode=atomic ./...
	$(GO) tool cover -func=coverage.out | tail -20

# fuzz runs the fuzzers on top of their committed corpora: the
# work-stealing deque fuzzer (sequential model check + concurrent
# exactly-once), the schedule fuzzer (random graph × fault plan ×
# seed-permuted interleaving under the deterministic simulation
# executor, internal/sim) and the pipeline schedule fuzzer (pipe row
# shape × lines × deferral pattern × interleaving). Override FUZZTIME
# for longer campaigns.
FUZZTIME ?= 30s
fuzz:
	$(GO) test -run '^$$' -fuzz '^FuzzDeque$$' -fuzztime $(FUZZTIME) ./internal/wsq/
	$(GO) test -run '^$$' -fuzz '^FuzzSchedule$$' -fuzztime $(FUZZTIME) ./internal/sim/
	$(GO) test -run '^$$' -fuzz '^FuzzPipelineSchedule$$' -fuzztime $(FUZZTIME) ./internal/sim/

// Package gotaskflow is a Go reproduction of "Cpp-Taskflow: Fast
// Task-based Parallel Programming using Modern C++" (Huang, Lin, Guo and
// Wong, IPDPS 2019).
//
// The library lives in internal/core (task dependency graphs, subflows,
// futures, algorithms) on top of internal/executor (the paper's
// Algorithm-1 work-stealing scheduler) and internal/wsq (Chase-Lev
// deques). The baselines the paper compares against are modeled in
// internal/flowgraph (Intel TBB FlowGraph) and internal/omp (OpenMP 4.5
// task dependency clauses). The evaluation substrates — wavefront and
// graph-traversal micro-benchmarks, a synthetic-circuit static timing
// analyzer in the style of OpenTimer v1/v2, and an MNIST-shaped DNN
// training pipeline — live in their own internal packages, and
// internal/experiments regenerates every table and figure of the paper.
//
// See README.md for the layout, DESIGN.md for the system inventory and
// EXPERIMENTS.md for measured-vs-paper results. The benchmarks in
// bench_test.go regenerate each figure's data points via go test -bench.
package gotaskflow

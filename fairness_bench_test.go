// Fairness benchmarks for the multi-tenant flow layer: a thousand small
// interactive flows share one executor with a few huge batch flows that
// keep the pool saturated. The interactive completion-latency tail is
// the figure of merit — the priority-class drain order plus the weighted
// wheel must keep p99 bounded while the batch backlog is effectively
// infinite. Run with `make fairness`; curated medians live in
// BENCH_scheduler.json (fairness section).
package gotaskflow_test

import (
	"sort"
	"sync"
	"testing"
	"time"

	"gotaskflow/internal/core"
	"gotaskflow/internal/executor"
)

const (
	fairInteractiveFlows = 1000 // distinct high-priority tenants
	fairChainLen         = 4    // nodes per interactive job
	fairBatchFlows       = 3    // saturating low-priority tenants
	fairBatchWidth       = 1024 // independent tasks per batch wave
)

// interactiveTenants builds one small chain taskflow per interactive
// flow, pre-run once so steady-state measurements exclude construction.
func interactiveTenants(b *testing.B, e *executor.Executor) []*core.Taskflow {
	b.Helper()
	tfs := make([]*core.Taskflow, fairInteractiveFlows)
	for i := range tfs {
		f := e.NewFlow("ia", executor.FlowConfig{Class: executor.Interactive})
		tf := core.NewShared(e).SetFlow(f)
		var prev core.Task
		for k := 0; k < fairChainLen; k++ {
			c := tf.Emplace1(func() {})
			if k > 0 {
				prev.Precede(c)
			}
			prev = c
		}
		if err := tf.Run(); err != nil {
			b.Fatal(err)
		}
		tfs[i] = tf
	}
	return tfs
}

// batchPressure floods the executor with huge flat batch-class graphs
// until stop is closed, keeping every worker's steal loop saturated with
// low-priority backlog.
func batchPressure(b *testing.B, e *executor.Executor, stop chan struct{}) *sync.WaitGroup {
	b.Helper()
	var wg sync.WaitGroup
	for i := 0; i < fairBatchFlows; i++ {
		f := e.NewFlow("batch", executor.FlowConfig{Class: executor.Batch})
		tf := core.NewShared(e).SetFlow(f)
		for k := 0; k < fairBatchWidth; k++ {
			tf.Emplace1(func() {})
		}
		wg.Add(1)
		go func(tf *core.Taskflow) {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				if err := tf.Run(); err != nil {
					b.Error(err)
					return
				}
			}
		}(tf)
	}
	return &wg
}

// reportTail attaches the latency distribution to the benchmark output.
func reportTail(b *testing.B, lat []time.Duration) {
	b.Helper()
	if len(lat) == 0 {
		return
	}
	sort.Slice(lat, func(i, j int) bool { return lat[i] < lat[j] })
	pct := func(p float64) time.Duration { return lat[int(p*float64(len(lat)-1))] }
	b.ReportMetric(float64(pct(0.50).Nanoseconds()), "p50-ns")
	b.ReportMetric(float64(pct(0.99).Nanoseconds()), "p99-ns")
	b.ReportMetric(float64(lat[len(lat)-1].Nanoseconds()), "max-ns")
}

// BenchmarkFairnessInteractiveP99 measures interactive job completion
// latency while the batch tenants keep the pool saturated. The paper's
// claim under test: strict class drains plus the WRR wheel bound the
// high-priority tail regardless of the standing batch backlog.
func BenchmarkFairnessInteractiveP99(b *testing.B) {
	e := executor.New(workers())
	defer e.Shutdown()
	tfs := interactiveTenants(b, e)

	stop := make(chan struct{})
	wg := batchPressure(b, e, stop)
	time.Sleep(10 * time.Millisecond) // let the batch backlog build

	lat := make([]time.Duration, 0, b.N)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tf := tfs[i%len(tfs)]
		t0 := time.Now()
		if err := tf.Run(); err != nil {
			b.Fatal(err)
		}
		lat = append(lat, time.Since(t0))
	}
	b.StopTimer()
	close(stop)
	wg.Wait()
	reportTail(b, lat)
}

// BenchmarkFairnessInteractiveIsolated is the control: the same
// interactive jobs with no batch pressure. The gap to
// BenchmarkFairnessInteractiveP99's tail is the total priority-inversion
// cost the multi-tenant scheduler admits.
func BenchmarkFairnessInteractiveIsolated(b *testing.B) {
	e := executor.New(workers())
	defer e.Shutdown()
	tfs := interactiveTenants(b, e)

	lat := make([]time.Duration, 0, b.N)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tf := tfs[i%len(tfs)]
		t0 := time.Now()
		if err := tf.Run(); err != nil {
			b.Fatal(err)
		}
		lat = append(lat, time.Since(t0))
	}
	b.StopTimer()
	reportTail(b, lat)
}

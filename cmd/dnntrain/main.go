// Command dnntrain drives the machine-learning experiment of the
// Cpp-Taskflow paper (Section IV-C, Figure 12): training the 3-layer and
// 5-layer MNIST classifiers with the Figure-11 task decomposition under
// the taskflow, TBB-FlowGraph and OpenMP backends.
//
// Usage:
//
//	dnntrain -sweep epochs -arch 3 -epochs 10,20,40 -images 6000
//	dnntrain -sweep cpu -arch 5 -epochcount 20 -maxworkers 8
//	dnntrain -accuracy -arch 3 -epochcount 20
//	dnntrain -accuracy -trace train.json         # accuracy run with a Chrome/Perfetto event trace
//	dnntrain -accuracy -debug localhost:6060     # accuracy run serving /debug/taskflow/
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"gotaskflow/internal/cli"
	"gotaskflow/internal/core"
	"gotaskflow/internal/debughttp"
	"gotaskflow/internal/dnn"
	"gotaskflow/internal/executor"
	"gotaskflow/internal/experiments"
	"gotaskflow/internal/mnist"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("dnntrain: ")
	var (
		sweep      = flag.String("sweep", "epochs", "sweep axis: epochs or cpu")
		arch       = flag.Int("arch", 3, "architecture: 3 (784x32x32x10) or 5 (784x64x32x16x8x10)")
		epochs     = flag.String("epochs", "5,10,20", "epoch counts for the epochs sweep")
		epochCount = flag.Int("epochcount", 20, "epochs for the cpu sweep / accuracy run")
		images     = flag.Int("images", 6000, "dataset size (the paper uses 60000)")
		workers    = flag.Int("workers", experiments.DefaultWorkers(16), "worker count for the epochs sweep")
		maxWorkers = flag.Int("maxworkers", experiments.DefaultWorkers(8), "largest worker count for the cpu sweep")
		accuracy   = flag.Bool("accuracy", false, "train once and report train/test accuracy")
		tracePath  = flag.String("trace", "", "with -accuracy: capture an event trace of the training run and write Chrome trace-event JSON to this file")
		debugAddr  = flag.String("debug", "", "with -accuracy: serve /debug/taskflow/ on this address while training")
	)
	flag.Parse()

	sizes, label := dnn.Arch3, "3-layer DNN"
	if *arch == 5 {
		sizes, label = dnn.Arch5, "5-layer DNN"
	} else if *arch != 3 {
		log.Fatalf("unknown -arch %d (want 3 or 5)", *arch)
	}

	switch {
	case *accuracy:
		cfg, data := experiments.MLConfig(sizes, *epochCount, *images)
		cfg.LR = 0.1 // a practical rate for the synthetic set
		net, losses, err := trainObserved(cfg, data, *workers, *tracePath, *debugAddr)
		if err != nil {
			log.Fatalf("training failed: %v", err)
		}
		test := mnist.Synthetic(*images/5, cfg.Seed+1)
		fmt.Printf("%s: %d epochs, %d images, %d tasks/epoch\n",
			label, cfg.Epochs, *images, cfg.NumTasksPerEpoch(*images))
		fmt.Printf("loss: first %.4f, last %.4f\n", losses[0], losses[len(losses)-1])
		fmt.Printf("train accuracy %.3f, test accuracy %.3f\n",
			dnn.Accuracy(net, data), dnn.Accuracy(net, test))
	case *sweep == "epochs":
		es, err := cli.ParseInts(*epochs)
		if err != nil {
			log.Fatal(err)
		}
		if err := experiments.Fig12Epochs(os.Stdout, sizes, label, es, *images, *workers); err != nil {
			log.Fatal(err)
		}
	case *sweep == "cpu":
		counts := experiments.WorkerSweep(*maxWorkers)
		if err := experiments.Fig12CPU(os.Stdout, sizes, label, counts, *epochCount, *images); err != nil {
			log.Fatal(err)
		}
	default:
		log.Fatalf("unknown -sweep %q (want epochs or cpu)", *sweep)
	}
}

// trainObserved runs one Figure-11 training taskflow with the requested
// observability attached: an event-trace capture written as Chrome
// trace-event JSON (-trace) and/or the live /debug/taskflow/ endpoint
// (-debug) served for the duration of training.
func trainObserved(cfg dnn.Config, data *mnist.Dataset, workers int, tracePath, debugAddr string) (*dnn.MLP, []float64, error) {
	e := executor.New(workers, executor.WithMetrics(), executor.WithTracing(0))
	defer e.Shutdown()
	tf := core.NewShared(e).SetName("dnntrain")

	if debugAddr != "" {
		addr, stopSrv, err := debughttp.New(e).Register("dnntrain", tf).ListenAndServe(debugAddr)
		if err != nil {
			return nil, nil, err
		}
		defer stopSrv() //nolint:errcheck
		fmt.Fprintf(os.Stderr, "debug endpoints on http://%s%s\n", addr, debughttp.Prefix)
	}
	var stopTrace func() error
	if tracePath != "" {
		var err error
		if stopTrace, err = cli.StartTraceCapture(e, tracePath); err != nil {
			return nil, nil, err
		}
	}

	net, losses, err := dnn.TrainTaskflowShared(cfg, data, workers, tf)
	if stopTrace != nil {
		if serr := stopTrace(); serr != nil && err == nil {
			err = serr
		}
	}
	return net, losses, err
}

// Command dnntrain drives the machine-learning experiment of the
// Cpp-Taskflow paper (Section IV-C, Figure 12): training the 3-layer and
// 5-layer MNIST classifiers with the Figure-11 task decomposition under
// the taskflow, TBB-FlowGraph and OpenMP backends.
//
// Usage:
//
//	dnntrain -sweep epochs -arch 3 -epochs 10,20,40 -images 6000
//	dnntrain -sweep cpu -arch 5 -epochcount 20 -maxworkers 8
//	dnntrain -accuracy -arch 3 -epochcount 20
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"gotaskflow/internal/cli"
	"gotaskflow/internal/dnn"
	"gotaskflow/internal/experiments"
	"gotaskflow/internal/mnist"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("dnntrain: ")
	var (
		sweep      = flag.String("sweep", "epochs", "sweep axis: epochs or cpu")
		arch       = flag.Int("arch", 3, "architecture: 3 (784x32x32x10) or 5 (784x64x32x16x8x10)")
		epochs     = flag.String("epochs", "5,10,20", "epoch counts for the epochs sweep")
		epochCount = flag.Int("epochcount", 20, "epochs for the cpu sweep / accuracy run")
		images     = flag.Int("images", 6000, "dataset size (the paper uses 60000)")
		workers    = flag.Int("workers", experiments.DefaultWorkers(16), "worker count for the epochs sweep")
		maxWorkers = flag.Int("maxworkers", experiments.DefaultWorkers(8), "largest worker count for the cpu sweep")
		accuracy   = flag.Bool("accuracy", false, "train once and report train/test accuracy")
	)
	flag.Parse()

	sizes, label := dnn.Arch3, "3-layer DNN"
	if *arch == 5 {
		sizes, label = dnn.Arch5, "5-layer DNN"
	} else if *arch != 3 {
		log.Fatalf("unknown -arch %d (want 3 or 5)", *arch)
	}

	switch {
	case *accuracy:
		cfg, data := experiments.MLConfig(sizes, *epochCount, *images)
		cfg.LR = 0.1 // a practical rate for the synthetic set
		net, losses, err := dnn.TrainTaskflow(cfg, data, *workers)
		if err != nil {
			log.Fatalf("training failed: %v", err)
		}
		test := mnist.Synthetic(*images/5, cfg.Seed+1)
		fmt.Printf("%s: %d epochs, %d images, %d tasks/epoch\n",
			label, cfg.Epochs, *images, cfg.NumTasksPerEpoch(*images))
		fmt.Printf("loss: first %.4f, last %.4f\n", losses[0], losses[len(losses)-1])
		fmt.Printf("train accuracy %.3f, test accuracy %.3f\n",
			dnn.Accuracy(net, data), dnn.Accuracy(net, test))
	case *sweep == "epochs":
		es, err := cli.ParseInts(*epochs)
		if err != nil {
			log.Fatal(err)
		}
		if err := experiments.Fig12Epochs(os.Stdout, sizes, label, es, *images, *workers); err != nil {
			log.Fatal(err)
		}
	case *sweep == "cpu":
		counts := experiments.WorkerSweep(*maxWorkers)
		if err := experiments.Fig12CPU(os.Stdout, sizes, label, counts, *epochCount, *images); err != nil {
			log.Fatal(err)
		}
	default:
		log.Fatalf("unknown -sweep %q (want epochs or cpu)", *sweep)
	}
}

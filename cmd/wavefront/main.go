// Command wavefront runs the wavefront micro-benchmark of the
// Cpp-Taskflow paper (Figure 7): a 2D matrix partitioned into square
// blocks whose tasks propagate dependencies from the top-left to the
// bottom-right corner, executed by the taskflow, TBB-FlowGraph and
// OpenMP models.
//
// Usage:
//
//	wavefront -sweep size -workers 8 -sizes 64,128,256,512
//	wavefront -sweep cpu -size 512 -maxworkers 8
//	wavefront -metrics -size 256 -workers 8        # instrumented run: scheduler counters + run profile
//	wavefront -metrics -prom -size 256             # same, plus Prometheus text on stdout
//	wavefront -metrics -dot wf.dot -size 8         # same, plus annotated DOT dump
package main

import (
	"flag"
	"fmt"
	"io"
	"log"
	"os"

	"gotaskflow/internal/cli"
	"gotaskflow/internal/experiments"
	"gotaskflow/internal/metrics"
	"gotaskflow/internal/wavefront"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("wavefront: ")
	var (
		sweep      = flag.String("sweep", "size", "sweep axis: size or cpu")
		workers    = flag.Int("workers", experiments.DefaultWorkers(8), "worker count for the size sweep")
		sizes      = flag.String("sizes", "32,64,128,256", "comma-separated block counts per side")
		size       = flag.Int("size", 256, "blocks per side for the cpu sweep")
		maxWorkers = flag.Int("maxworkers", experiments.DefaultWorkers(8), "largest worker count for the cpu sweep")
		reps       = flag.Int("reps", 3, "repetitions per point (min taken)")
		withStats  = flag.Bool("metrics", false, "run one instrumented pass at -size/-workers and report scheduler metrics instead of sweeping")
		prom       = flag.Bool("prom", false, "with -metrics: also write the Prometheus text exposition to stdout")
		dotPath    = flag.String("dot", "", "with -metrics: write the annotated task graph (DOT) to this file")
	)
	flag.Parse()

	if *withStats {
		runInstrumented(*size, *workers, *prom, *dotPath)
		return
	}

	switch *sweep {
	case "size":
		ms, err := cli.ParseInts(*sizes)
		if err != nil {
			log.Fatal(err)
		}
		if err := experiments.Fig7SizeSweep(os.Stdout, *workers, ms, nil, *reps); err != nil {
			log.Fatal(err)
		}
	case "cpu":
		counts := experiments.WorkerSweep(*maxWorkers)
		if err := experiments.Fig7CPUSweep(os.Stdout, counts, *size, 0, *reps); err != nil {
			log.Fatal(err)
		}
	default:
		log.Fatalf("unknown -sweep %q (want size or cpu)", *sweep)
	}
}

// runInstrumented executes one metrics-enabled wavefront and reports the
// run profile and scheduler counters on stderr (Prometheus text and the
// annotated DOT dump on request).
func runInstrumented(size, workers int, prom bool, dotPath string) {
	var dotw *os.File
	if dotPath != "" {
		f, err := os.Create(dotPath)
		if err != nil {
			log.Fatal(err)
		}
		defer f.Close()
		dotw = f
	}
	sum, rs, snap, err := wavefront.TaskflowStats(size, wavefront.Spin, workers, nilIfClosed(dotw))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Fprintf(os.Stderr, "wavefront %dx%d on %d workers: checksum %#x\n", size, size, workers, sum)
	if err := metrics.WriteRunSummary(os.Stderr, rs, snap); err != nil {
		log.Fatal(err)
	}
	if prom {
		if err := metrics.WritePrometheus(os.Stdout, metrics.Static(snap)); err != nil {
			log.Fatal(err)
		}
	}
}

// nilIfClosed converts a nil *os.File into a nil io.Writer interface (a
// typed nil would make the callee dereference it).
func nilIfClosed(f *os.File) io.Writer {
	if f == nil {
		return nil
	}
	return f
}

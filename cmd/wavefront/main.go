// Command wavefront runs the wavefront micro-benchmark of the
// Cpp-Taskflow paper (Figure 7): a 2D matrix partitioned into square
// blocks whose tasks propagate dependencies from the top-left to the
// bottom-right corner, executed by the taskflow, TBB-FlowGraph and
// OpenMP models.
//
// Usage:
//
//	wavefront -sweep size -workers 8 -sizes 64,128,256,512
//	wavefront -sweep cpu -size 512 -maxworkers 8
package main

import (
	"flag"
	"log"
	"os"

	"gotaskflow/internal/cli"
	"gotaskflow/internal/experiments"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("wavefront: ")
	var (
		sweep      = flag.String("sweep", "size", "sweep axis: size or cpu")
		workers    = flag.Int("workers", experiments.DefaultWorkers(8), "worker count for the size sweep")
		sizes      = flag.String("sizes", "32,64,128,256", "comma-separated block counts per side")
		size       = flag.Int("size", 256, "blocks per side for the cpu sweep")
		maxWorkers = flag.Int("maxworkers", experiments.DefaultWorkers(8), "largest worker count for the cpu sweep")
		reps       = flag.Int("reps", 3, "repetitions per point (min taken)")
	)
	flag.Parse()

	switch *sweep {
	case "size":
		ms, err := cli.ParseInts(*sizes)
		if err != nil {
			log.Fatal(err)
		}
		if err := experiments.Fig7SizeSweep(os.Stdout, *workers, ms, nil, *reps); err != nil {
			log.Fatal(err)
		}
	case "cpu":
		counts := experiments.WorkerSweep(*maxWorkers)
		if err := experiments.Fig7CPUSweep(os.Stdout, counts, *size, 0, *reps); err != nil {
			log.Fatal(err)
		}
	default:
		log.Fatalf("unknown -sweep %q (want size or cpu)", *sweep)
	}
}

// Command wavefront runs the wavefront micro-benchmark of the
// Cpp-Taskflow paper (Figure 7): a 2D matrix partitioned into square
// blocks whose tasks propagate dependencies from the top-left to the
// bottom-right corner, executed by the taskflow, TBB-FlowGraph and
// OpenMP models.
//
// Usage:
//
//	wavefront -sweep size -workers 8 -sizes 64,128,256,512
//	wavefront -sweep cpu -size 512 -maxworkers 8
//	wavefront -metrics -size 256 -workers 8        # instrumented run: scheduler counters + run profile
//	wavefront -metrics -prom -size 256             # same, plus Prometheus text on stdout
//	wavefront -metrics -dot wf.dot -size 8         # same, plus annotated DOT dump
//	wavefront -metrics -trace wf.json -size 256    # same, plus a Chrome/Perfetto event trace
//	wavefront -metrics -debug localhost:6060       # same, serving /debug/taskflow/ during the run
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"gotaskflow/internal/cli"
	"gotaskflow/internal/core"
	"gotaskflow/internal/debughttp"
	"gotaskflow/internal/executor"
	"gotaskflow/internal/experiments"
	"gotaskflow/internal/metrics"
	"gotaskflow/internal/wavefront"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("wavefront: ")
	var (
		sweep      = flag.String("sweep", "size", "sweep axis: size or cpu")
		workers    = flag.Int("workers", experiments.DefaultWorkers(8), "worker count for the size sweep")
		sizes      = flag.String("sizes", "32,64,128,256", "comma-separated block counts per side")
		size       = flag.Int("size", 256, "blocks per side for the cpu sweep")
		maxWorkers = flag.Int("maxworkers", experiments.DefaultWorkers(8), "largest worker count for the cpu sweep")
		reps       = flag.Int("reps", 3, "repetitions per point (min taken)")
		withStats  = flag.Bool("metrics", false, "run one instrumented pass at -size/-workers and report scheduler metrics instead of sweeping")
		prom       = flag.Bool("prom", false, "with -metrics: also write the Prometheus text exposition to stdout")
		dotPath    = flag.String("dot", "", "with -metrics: write the annotated task graph (DOT) to this file")
		tracePath  = flag.String("trace", "", "with -metrics: capture an event trace of the run and write Chrome trace-event JSON to this file")
		debugAddr  = flag.String("debug", "", "with -metrics: serve /debug/taskflow/ on this address while the run executes")
	)
	flag.Parse()

	if *withStats {
		runInstrumented(*size, *workers, *prom, *dotPath, *tracePath, *debugAddr)
		return
	}

	switch *sweep {
	case "size":
		ms, err := cli.ParseInts(*sizes)
		if err != nil {
			log.Fatal(err)
		}
		if err := experiments.Fig7SizeSweep(os.Stdout, *workers, ms, nil, *reps); err != nil {
			log.Fatal(err)
		}
	case "cpu":
		counts := experiments.WorkerSweep(*maxWorkers)
		if err := experiments.Fig7CPUSweep(os.Stdout, counts, *size, 0, *reps); err != nil {
			log.Fatal(err)
		}
	default:
		log.Fatalf("unknown -sweep %q (want size or cpu)", *sweep)
	}
}

// runInstrumented executes one fully observable wavefront: the executor
// counts scheduler events and arms event tracing, the taskflow collects
// timed run statistics, and the run profile plus scheduler counters land
// on stderr. On request it also writes Prometheus text, an annotated DOT
// dump, a Chrome trace capture of the run, and serves the live
// /debug/taskflow/ endpoint for its duration.
func runInstrumented(size, workers int, prom bool, dotPath, tracePath, debugAddr string) {
	e := executor.New(workers, executor.WithMetrics(), executor.WithTracing(0))
	defer e.Shutdown()
	name := fmt.Sprintf("wavefront_%dx%d", size, size)
	tf := core.NewShared(e).SetName(name).CollectRunStats(true)
	g := wavefront.Build(tf, size, wavefront.Spin)

	if debugAddr != "" {
		addr, stopSrv, err := debughttp.New(e).Register(name, tf).ListenAndServe(debugAddr)
		if err != nil {
			log.Fatal(err)
		}
		defer stopSrv() //nolint:errcheck
		fmt.Fprintf(os.Stderr, "debug endpoints on http://%s%s\n", addr, debughttp.Prefix)
	}
	var stopTrace func() error
	if tracePath != "" {
		var err error
		if stopTrace, err = cli.StartTraceCapture(e, tracePath); err != nil {
			log.Fatal(err)
		}
	}

	if err := tf.Run(); err != nil {
		log.Fatal(err)
	}
	if stopTrace != nil {
		if err := stopTrace(); err != nil {
			log.Fatal(err)
		}
	}

	rs, _ := tf.LastRunStats()
	snap, _ := e.MetricsSnapshot()
	fmt.Fprintf(os.Stderr, "wavefront %dx%d on %d workers: checksum %#x\n", size, size, workers, g[size][size])
	if err := metrics.WriteRunSummary(os.Stderr, rs, snap); err != nil {
		log.Fatal(err)
	}
	if prom {
		if err := metrics.WritePrometheus(os.Stdout, metrics.Static(snap)); err != nil {
			log.Fatal(err)
		}
	}
	if dotPath != "" {
		f, err := os.Create(dotPath)
		if err != nil {
			log.Fatal(err)
		}
		if err := tf.DumpAnnotated(f); err != nil {
			log.Fatal(err)
		}
		if err := f.Close(); err != nil {
			log.Fatal(err)
		}
	}
}

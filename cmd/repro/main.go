// Command repro regenerates every table and figure of the Cpp-Taskflow
// paper's evaluation in one run, at a configurable scale. The default
// scale is sized for a small machine; -scale 1 approaches the paper's
// problem sizes (the paper ran on 64 Opteron cores with 256 GB RAM).
//
// Usage:
//
//	repro                 # laptop-scale pass over every experiment
//	repro -quick          # smoke-sized pass (seconds)
//	repro -scale 1        # paper-sized problem instances
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"time"

	"gotaskflow/internal/dnn"
	"gotaskflow/internal/experiments"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("repro: ")
	var (
		quick = flag.Bool("quick", false, "smoke-sized problems")
		scale = flag.Int("scale", 20, "divisor applied to the paper's problem sizes")
	)
	flag.Parse()

	p := params(*scale, *quick)
	root, err := experiments.SrcRoot()
	if err != nil {
		log.Fatal(err)
	}
	w := os.Stdout
	start := time.Now()
	section := func(name string, fn func() error) {
		fmt.Fprintf(w, "\n===== %s =====\n", name)
		t0 := time.Now()
		if err := fn(); err != nil {
			log.Fatalf("%s: %v", name, err)
		}
		fmt.Fprintf(w, "# section completed in %v\n", time.Since(t0).Round(time.Millisecond))
	}

	fmt.Fprintf(w, "Cpp-Taskflow reproduction — full experiment sweep (scale 1/%d, quick=%v)\n", *scale, *quick)

	section("Listings 3-5 / 7-8 (programmability)", func() error {
		return experiments.ListingsTable(w)
	})
	section("Table I (micro-benchmark software costs)", func() error {
		return experiments.Table1(w, root)
	})
	section("Figure 7 top (runtime vs problem size)", func() error {
		return experiments.Fig7SizeSweep(w, p.workers, p.wavefrontSizes, p.traversalSizes, p.reps)
	})
	section("Figure 7 bottom (runtime vs workers)", func() error {
		return experiments.Fig7CPUSweep(w, experiments.WorkerSweep(p.maxWorkers),
			p.wavefrontSizes[len(p.wavefrontSizes)-1], p.traversalSizes[len(p.traversalSizes)-1], p.reps)
	})
	section("Table II (OpenTimer software costs + COCOMO)", func() error {
		return experiments.Table2(w, root)
	})
	section("Figure 9 (incremental timing, tv80)", func() error {
		return experiments.Fig9Incremental(w, experiments.TV80, p.staScaleSmall, p.fig9IterTV80, p.workers)
	})
	section("Figure 9 (incremental timing, vga_lcd)", func() error {
		return experiments.Fig9Incremental(w, experiments.VGALCD, p.staScaleLarge, p.fig9IterVGA, p.workers)
	})
	section("Figure 10 left (full-timing scalability)", func() error {
		return experiments.Fig10Scalability(w,
			[]experiments.Design{experiments.Netcard, experiments.Leon3mp},
			p.staScaleHuge, experiments.WorkerSweep(p.maxWorkers), p.reps)
	})
	section("Figure 10 right (CPU utilization)", func() error {
		return experiments.Fig10Utilization(w, experiments.Leon3mp, p.staScaleHuge,
			experiments.WorkerSweep(p.maxWorkers), p.utilUpdates)
	})
	section("Table III (machine-learning software costs)", func() error {
		return experiments.Table3(w, root)
	})
	section("Figure 12 top (DNN runtime vs epochs)", func() error {
		if err := experiments.Fig12Epochs(w, dnn.Arch3, "3-layer DNN", p.epochSweep, p.images, p.workers); err != nil {
			return err
		}
		return experiments.Fig12Epochs(w, dnn.Arch5, "5-layer DNN", p.epochSweep, p.images, p.workers)
	})
	section("Figure 12 bottom (DNN runtime vs workers)", func() error {
		if err := experiments.Fig12CPU(w, dnn.Arch3, "3-layer DNN",
			experiments.WorkerSweep(p.maxWorkers), p.cpuEpochs, p.images); err != nil {
			return err
		}
		return experiments.Fig12CPU(w, dnn.Arch5, "5-layer DNN",
			experiments.WorkerSweep(p.maxWorkers), p.cpuEpochs, p.images)
	})

	fmt.Fprintf(w, "\nall experiments completed in %v\n", time.Since(start).Round(time.Millisecond))
}

type runParams struct {
	workers, maxWorkers, reps      int
	wavefrontSizes, traversalSizes []int
	staScaleSmall, staScaleLarge   int
	staScaleHuge                   int
	fig9IterTV80, fig9IterVGA      int
	utilUpdates                    int
	epochSweep                     []int
	cpuEpochs, images              int
}

func params(scale int, quick bool) runParams {
	if quick {
		return runParams{
			workers:        experiments.DefaultWorkers(8),
			maxWorkers:     experiments.DefaultWorkers(4),
			reps:           1,
			wavefrontSizes: []int{8, 16},
			traversalSizes: []int{500, 1000},
			staScaleSmall:  10, staScaleLarge: 200, staScaleHuge: 2000,
			fig9IterTV80: 5, fig9IterVGA: 5,
			utilUpdates: 2,
			epochSweep:  []int{1, 2},
			cpuEpochs:   1, images: 500,
		}
	}
	if scale < 1 {
		scale = 1
	}
	// The paper's largest instances: wavefront 512x512 blocks (262,144
	// tasks), traversal 711,002 nodes, tv80 5.3K / vga_lcd 139.5K /
	// netcard 1.4M / leon3mp 1.2M gates, 60K-image MNIST, 100-epoch
	// sweeps. Task counts below divide by `scale` (wavefront edges divide
	// by sqrt(scale) since tasks grow quadratically).
	var wf []int
	for _, m := range []int{128, 256, 384, 512} {
		wf = append(wf, maxInt(m/isqrt(scale), 4))
	}
	var tv []int
	for _, n := range []int{89000, 178000, 356000, 711002} {
		tv = append(tv, maxInt(n/scale, 100))
	}
	ep := minInt(scale, 10)
	return runParams{
		workers:        experiments.DefaultWorkers(8),
		maxWorkers:     experiments.DefaultWorkers(8),
		reps:           2,
		wavefrontSizes: wf,
		traversalSizes: tv,
		staScaleSmall:  maxInt(scale/10, 1),
		staScaleLarge:  scale,
		staScaleHuge:   scale * 10,
		fig9IterTV80:   30,
		fig9IterVGA:    100,
		utilUpdates:    3,
		epochSweep:     []int{maxInt(20/ep, 1), maxInt(40/ep, 2), maxInt(100/ep, 3)},
		cpuEpochs:      maxInt(40/minInt(scale, 20), 1),
		images:         maxInt(60000/scale, 500),
	}
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

func isqrt(n int) int {
	if n < 1 {
		return 1
	}
	r := 1
	for r*r < n {
		r++
	}
	return r
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}

// Command tracecheck validates Chrome trace-event JSON files produced by
// the -trace flags of the benchmark drivers (and by the
// /debug/taskflow/trace/stop endpoint). It is the CI smoke gate behind
// `make trace`: it fails unless every file parses, carries the required
// Perfetto fields on every event, contains named task spans, matched flow
// arrows, and scheduler instants.
//
// With -flight it validates flight-recorder dumps (Executor.FlightSnapshot,
// the /debug/taskflow/flight endpoint) instead. A flight dump comes from
// continuously-armed wrapped rings rather than a bracketed capture
// session, so the structural promises differ: droppedEvents metadata must
// be present and numeric even when zero (wrapped rings legitimately
// report large drop counts, and absence must be distinguishable from
// zero), totalEvents must account for every rendered event, scheduler
// instants must be in non-decreasing timestamp order (the snapshot merges
// per-worker rings into one sorted stream), and the span/arrow minimums
// are relaxed — a ring that wrapped mid-task can lose the start of a
// span or the release side of an arrow.
//
// Usage:
//
//	tracecheck [-flight] trace1.json [trace2.json ...]
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
)

type traceDoc struct {
	TraceEvents []map[string]any `json:"traceEvents"`
	OtherData   map[string]any   `json:"otherData"`
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("tracecheck: ")
	flight := flag.Bool("flight", false,
		"validate flight-recorder dumps: require droppedEvents/totalEvents accounting and merged-stream timestamp order, relax span/arrow minimums")
	flag.Parse()
	if flag.NArg() < 1 {
		log.Fatal("usage: tracecheck [-flight] trace.json [more.json ...]")
	}
	for _, path := range flag.Args() {
		if err := check(path, *flight); err != nil {
			log.Fatalf("%s: %v", path, err)
		}
	}
}

func check(path string, flight bool) error {
	raw, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	var doc traceDoc
	if err := json.Unmarshal(raw, &doc); err != nil {
		return fmt.Errorf("not valid trace-event JSON: %w", err)
	}
	if len(doc.TraceEvents) == 0 {
		return fmt.Errorf("empty traceEvents array")
	}

	var spans, flowStarts, flowEnds int
	instantKinds := map[string]bool{}
	flowIDs := map[float64]int{} // id -> starts minus finishes
	lastInstantTs := -1.0
	for i, ev := range doc.TraceEvents {
		for _, field := range []string{"name", "ph", "ts", "pid", "tid"} {
			if _, ok := ev[field]; !ok {
				return fmt.Errorf("event %d missing required field %q: %v", i, field, ev)
			}
		}
		switch ev["ph"] {
		case "X":
			if ev["cat"] == "task" {
				spans++
				if dur, ok := ev["dur"].(float64); ok && dur < 0 {
					return fmt.Errorf("event %d: task span with negative duration %v", i, dur)
				}
			}
		case "i":
			if ev["s"] != "t" {
				return fmt.Errorf("event %d: instant without thread scope: %v", i, ev)
			}
			if ev["cat"] == "sched" {
				name := ev["name"].(string)
				instantKinds[name] = true
				// The exporter renders instants in source-event order; for a
				// flight dump that order is the merged, timestamp-sorted
				// stream of every per-worker ring, so any regression in the
				// snapshot merge shows up as out-of-order instants here.
				ts := ev["ts"].(float64)
				if flight && ts < lastInstantTs {
					return fmt.Errorf("event %d: instant ts %v before predecessor %v — flight merge not sorted",
						i, ts, lastInstantTs)
				}
				lastInstantTs = ts
				// steal_batch instants promise a batch size of at least 2
				// in args.arg: single-task steals emit only "steal".
				if name == "steal_batch" {
					args, ok := ev["args"].(map[string]any)
					if !ok {
						return fmt.Errorf("event %d: steal_batch without args: %v", i, ev)
					}
					size, ok := args["arg"].(float64)
					if !ok || size < 2 {
						return fmt.Errorf("event %d: steal_batch with batch size %v, want >= 2", i, args["arg"])
					}
				}
				// Injection instants carry the shard index and the task
				// count as separate args (the exporter unpacks the packed
				// wire arg).
				if name == "inject_push" || name == "inject_drain" {
					args, ok := ev["args"].(map[string]any)
					if !ok {
						return fmt.Errorf("event %d: %s without args: %v", i, name, ev)
					}
					if shard, ok := args["shard"].(float64); !ok || shard < 0 {
						return fmt.Errorf("event %d: %s with shard %v, want numeric >= 0", i, name, args["shard"])
					}
					if count, ok := args["arg"].(float64); !ok || count < 1 {
						return fmt.Errorf("event %d: %s with task count %v, want >= 1", i, name, args["arg"])
					}
				}
				// Park/unpark instants carry the worker's eventcount epoch
				// so a park can be paired with the unpark that resolved it.
				if name == "park" || name == "unpark" {
					args, ok := ev["args"].(map[string]any)
					if !ok {
						return fmt.Errorf("event %d: %s without args: %v", i, name, ev)
					}
					if _, ok := args["epoch"].(float64); !ok {
						return fmt.Errorf("event %d: %s without numeric epoch: %v", i, name, args["epoch"])
					}
				}
			}
		case "s":
			flowStarts++
			flowIDs[ev["id"].(float64)]++
		case "f":
			if ev["bp"] != "e" {
				return fmt.Errorf("event %d: flow finish without bp=e: %v", i, ev)
			}
			flowEnds++
			flowIDs[ev["id"].(float64)]--
		}
	}
	if flowStarts != flowEnds {
		return fmt.Errorf("unmatched flow arrows: %d starts, %d finishes", flowStarts, flowEnds)
	}
	for id, balance := range flowIDs {
		if balance != 0 {
			return fmt.Errorf("flow id %v has unbalanced start/finish", id)
		}
	}

	if flight {
		if err := checkFlightAccounting(&doc, spans, len(instantKinds), flowStarts); err != nil {
			return err
		}
	} else {
		if spans == 0 {
			return fmt.Errorf("no task spans (ph=X, cat=task)")
		}
		if flowStarts == 0 {
			return fmt.Errorf("no flow arrows")
		}
		if len(instantKinds) < 2 {
			return fmt.Errorf("only %d scheduler event kinds: %v", len(instantKinds), instantKinds)
		}
		if d, ok := doc.OtherData["droppedEvents"]; ok {
			if n, isNum := d.(float64); isNum && n > 0 {
				fmt.Fprintf(os.Stderr, "tracecheck: warning: %s dropped %v events\n", path, d)
			}
		}
	}

	mode := "ok"
	if flight {
		mode = "ok (flight)"
	}
	fmt.Printf("%s: %s — %d events, %d task spans, %d flow arrows, %d scheduler event kinds, dropped %v\n",
		path, mode, len(doc.TraceEvents), spans, flowStarts, len(instantKinds), doc.OtherData["droppedEvents"])
	return nil
}

// checkFlightAccounting enforces the flight-dump metadata contract: both
// counters present and numeric, and totalEvents at least covering every
// rendered event — each task span consumed an EvTaskStart/EvTaskEnd pair,
// each scheduler instant one source event, each flow arrow one
// EvDepRelease.
func checkFlightAccounting(doc *traceDoc, spans, instantKinds, arrows int) error {
	dropped, ok := doc.OtherData["droppedEvents"].(float64)
	if !ok {
		return fmt.Errorf("flight dump without numeric droppedEvents metadata: %v", doc.OtherData)
	}
	if dropped < 0 {
		return fmt.Errorf("flight dump with negative droppedEvents %v", dropped)
	}
	total, ok := doc.OtherData["totalEvents"].(float64)
	if !ok {
		return fmt.Errorf("flight dump without numeric totalEvents metadata: %v", doc.OtherData)
	}
	if instantKinds == 0 {
		return fmt.Errorf("flight dump with no scheduler instants — recorder not armed?")
	}
	if min := float64(2*spans + arrows); total < min {
		return fmt.Errorf("totalEvents %v cannot account for %d task spans and %d flow arrows (need >= %v)",
			total, spans, arrows, min)
	}
	return nil
}

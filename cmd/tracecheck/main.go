// Command tracecheck validates Chrome trace-event JSON files produced by
// the -trace flags of the benchmark drivers (and by the
// /debug/taskflow/trace/stop endpoint). It is the CI smoke gate behind
// `make trace`: it fails unless every file parses, carries the required
// Perfetto fields on every event, contains named task spans, matched flow
// arrows, and scheduler instants.
//
// Usage:
//
//	tracecheck trace1.json [trace2.json ...]
package main

import (
	"encoding/json"
	"fmt"
	"log"
	"os"
)

type traceDoc struct {
	TraceEvents []map[string]any `json:"traceEvents"`
	OtherData   map[string]any   `json:"otherData"`
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("tracecheck: ")
	if len(os.Args) < 2 {
		log.Fatal("usage: tracecheck trace.json [more.json ...]")
	}
	for _, path := range os.Args[1:] {
		if err := check(path); err != nil {
			log.Fatalf("%s: %v", path, err)
		}
	}
}

func check(path string) error {
	raw, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	var doc traceDoc
	if err := json.Unmarshal(raw, &doc); err != nil {
		return fmt.Errorf("not valid trace-event JSON: %w", err)
	}
	if len(doc.TraceEvents) == 0 {
		return fmt.Errorf("empty traceEvents array")
	}

	var spans, flowStarts, flowEnds int
	instantKinds := map[string]bool{}
	flowIDs := map[float64]int{} // id -> starts minus finishes
	for i, ev := range doc.TraceEvents {
		for _, field := range []string{"name", "ph", "ts", "pid", "tid"} {
			if _, ok := ev[field]; !ok {
				return fmt.Errorf("event %d missing required field %q: %v", i, field, ev)
			}
		}
		switch ev["ph"] {
		case "X":
			if ev["cat"] == "task" {
				spans++
			}
		case "i":
			if ev["s"] != "t" {
				return fmt.Errorf("event %d: instant without thread scope: %v", i, ev)
			}
			if ev["cat"] == "sched" {
				name := ev["name"].(string)
				instantKinds[name] = true
				// steal_batch instants promise a batch size of at least 2
				// in args.arg: single-task steals emit only "steal".
				if name == "steal_batch" {
					args, ok := ev["args"].(map[string]any)
					if !ok {
						return fmt.Errorf("event %d: steal_batch without args: %v", i, ev)
					}
					size, ok := args["arg"].(float64)
					if !ok || size < 2 {
						return fmt.Errorf("event %d: steal_batch with batch size %v, want >= 2", i, args["arg"])
					}
				}
				// Injection instants carry the shard index and the task
				// count as separate args (the exporter unpacks the packed
				// wire arg).
				if name == "inject_push" || name == "inject_drain" {
					args, ok := ev["args"].(map[string]any)
					if !ok {
						return fmt.Errorf("event %d: %s without args: %v", i, name, ev)
					}
					if shard, ok := args["shard"].(float64); !ok || shard < 0 {
						return fmt.Errorf("event %d: %s with shard %v, want numeric >= 0", i, name, args["shard"])
					}
					if count, ok := args["arg"].(float64); !ok || count < 1 {
						return fmt.Errorf("event %d: %s with task count %v, want >= 1", i, name, args["arg"])
					}
				}
				// Park/unpark instants carry the worker's eventcount epoch
				// so a park can be paired with the unpark that resolved it.
				if name == "park" || name == "unpark" {
					args, ok := ev["args"].(map[string]any)
					if !ok {
						return fmt.Errorf("event %d: %s without args: %v", i, name, ev)
					}
					if _, ok := args["epoch"].(float64); !ok {
						return fmt.Errorf("event %d: %s without numeric epoch: %v", i, name, args["epoch"])
					}
				}
			}
		case "s":
			flowStarts++
			flowIDs[ev["id"].(float64)]++
		case "f":
			if ev["bp"] != "e" {
				return fmt.Errorf("event %d: flow finish without bp=e: %v", i, ev)
			}
			flowEnds++
			flowIDs[ev["id"].(float64)]--
		}
	}
	if spans == 0 {
		return fmt.Errorf("no task spans (ph=X, cat=task)")
	}
	if flowStarts == 0 || flowStarts != flowEnds {
		return fmt.Errorf("unmatched flow arrows: %d starts, %d finishes", flowStarts, flowEnds)
	}
	for id, balance := range flowIDs {
		if balance != 0 {
			return fmt.Errorf("flow id %v has unbalanced start/finish", id)
		}
	}
	if len(instantKinds) < 2 {
		return fmt.Errorf("only %d scheduler event kinds: %v", len(instantKinds), instantKinds)
	}
	if d, ok := doc.OtherData["droppedEvents"]; ok {
		fmt.Fprintf(os.Stderr, "tracecheck: warning: %s dropped %v events\n", path, d)
	}
	fmt.Printf("%s: ok — %d events, %d task spans, %d flow arrows, %d scheduler event kinds\n",
		path, len(doc.TraceEvents), spans, flowStarts, len(instantKinds))
	return nil
}

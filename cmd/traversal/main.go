// Command traversal runs the graph-traversal micro-benchmark of the
// Cpp-Taskflow paper (Figure 7): a random degree-bounded DAG cast into a
// task dependency graph and traversed by the taskflow, TBB-FlowGraph and
// OpenMP models.
//
// Usage:
//
//	traversal -sweep size -workers 8 -sizes 50000,100000,200000
//	traversal -sweep cpu -size 200000 -maxworkers 8
package main

import (
	"flag"
	"log"
	"os"

	"gotaskflow/internal/cli"
	"gotaskflow/internal/experiments"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("traversal: ")
	var (
		sweep      = flag.String("sweep", "size", "sweep axis: size or cpu")
		workers    = flag.Int("workers", experiments.DefaultWorkers(8), "worker count for the size sweep")
		sizes      = flag.String("sizes", "25000,50000,100000,200000", "comma-separated node counts")
		size       = flag.Int("size", 200000, "node count for the cpu sweep")
		maxWorkers = flag.Int("maxworkers", experiments.DefaultWorkers(8), "largest worker count for the cpu sweep")
		reps       = flag.Int("reps", 3, "repetitions per point (min taken)")
	)
	flag.Parse()

	switch *sweep {
	case "size":
		ns, err := cli.ParseInts(*sizes)
		if err != nil {
			log.Fatal(err)
		}
		if err := experiments.Fig7SizeSweep(os.Stdout, *workers, nil, ns, *reps); err != nil {
			log.Fatal(err)
		}
	case "cpu":
		counts := experiments.WorkerSweep(*maxWorkers)
		if err := experiments.Fig7CPUSweep(os.Stdout, counts, 0, *size, *reps); err != nil {
			log.Fatal(err)
		}
	default:
		log.Fatalf("unknown -sweep %q (want size or cpu)", *sweep)
	}
}

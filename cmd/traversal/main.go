// Command traversal runs the graph-traversal micro-benchmark of the
// Cpp-Taskflow paper (Figure 7): a random degree-bounded DAG cast into a
// task dependency graph and traversed by the taskflow, TBB-FlowGraph and
// OpenMP models.
//
// Usage:
//
//	traversal -sweep size -workers 8 -sizes 50000,100000,200000
//	traversal -sweep cpu -size 200000 -maxworkers 8
//	traversal -metrics -size 200000 -workers 8   # instrumented run: scheduler counters + run profile
//	traversal -metrics -prom -size 200000        # same, plus Prometheus text on stdout
//	traversal -metrics -dot g.dot -size 50       # same, plus annotated DOT dump
//	traversal -metrics -trace t.json -size 50000 # same, plus a Chrome/Perfetto event trace
//	traversal -metrics -debug localhost:6060     # same, serving /debug/taskflow/ during the run
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"gotaskflow/internal/cli"
	"gotaskflow/internal/core"
	"gotaskflow/internal/debughttp"
	"gotaskflow/internal/executor"
	"gotaskflow/internal/experiments"
	"gotaskflow/internal/graphgen"
	"gotaskflow/internal/metrics"
	"gotaskflow/internal/traversal"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("traversal: ")
	var (
		sweep      = flag.String("sweep", "size", "sweep axis: size or cpu")
		workers    = flag.Int("workers", experiments.DefaultWorkers(8), "worker count for the size sweep")
		sizes      = flag.String("sizes", "25000,50000,100000,200000", "comma-separated node counts")
		size       = flag.Int("size", 200000, "node count for the cpu sweep")
		maxWorkers = flag.Int("maxworkers", experiments.DefaultWorkers(8), "largest worker count for the cpu sweep")
		reps       = flag.Int("reps", 3, "repetitions per point (min taken)")
		seed       = flag.Int64("seed", 1, "random-DAG seed for the -metrics run")
		withStats  = flag.Bool("metrics", false, "run one instrumented pass at -size/-workers and report scheduler metrics instead of sweeping")
		prom       = flag.Bool("prom", false, "with -metrics: also write the Prometheus text exposition to stdout")
		dotPath    = flag.String("dot", "", "with -metrics: write the annotated task graph (DOT) to this file")
		tracePath  = flag.String("trace", "", "with -metrics: capture an event trace of the run and write Chrome trace-event JSON to this file")
		debugAddr  = flag.String("debug", "", "with -metrics: serve /debug/taskflow/ on this address while the run executes")
	)
	flag.Parse()

	if *withStats {
		runInstrumented(*size, *workers, *seed, *prom, *dotPath, *tracePath, *debugAddr)
		return
	}

	switch *sweep {
	case "size":
		ns, err := cli.ParseInts(*sizes)
		if err != nil {
			log.Fatal(err)
		}
		if err := experiments.Fig7SizeSweep(os.Stdout, *workers, nil, ns, *reps); err != nil {
			log.Fatal(err)
		}
	case "cpu":
		counts := experiments.WorkerSweep(*maxWorkers)
		if err := experiments.Fig7CPUSweep(os.Stdout, counts, 0, *size, *reps); err != nil {
			log.Fatal(err)
		}
	default:
		log.Fatalf("unknown -sweep %q (want size or cpu)", *sweep)
	}
}

// runInstrumented executes one fully observable traversal of a seeded
// random DAG: the executor counts scheduler events and arms event
// tracing, the taskflow collects timed run statistics, and the run
// profile plus scheduler counters land on stderr. On request it also
// writes Prometheus text, an annotated DOT dump, a Chrome trace capture
// of the run, and serves the live /debug/taskflow/ endpoint for its
// duration.
func runInstrumented(size, workers int, seed int64, prom bool, dotPath, tracePath, debugAddr string) {
	d := graphgen.Random(size, graphgen.Config{Seed: seed})
	e := executor.New(workers, executor.WithMetrics(), executor.WithTracing(0))
	defer e.Shutdown()
	name := fmt.Sprintf("traversal_%d", d.N)
	tf := core.NewShared(e).SetName(name).CollectRunStats(true)
	val := traversal.Build(tf, d, traversal.Spin)

	if debugAddr != "" {
		addr, stopSrv, err := debughttp.New(e).Register(name, tf).ListenAndServe(debugAddr)
		if err != nil {
			log.Fatal(err)
		}
		defer stopSrv() //nolint:errcheck
		fmt.Fprintf(os.Stderr, "debug endpoints on http://%s%s\n", addr, debughttp.Prefix)
	}
	var stopTrace func() error
	if tracePath != "" {
		var err error
		if stopTrace, err = cli.StartTraceCapture(e, tracePath); err != nil {
			log.Fatal(err)
		}
	}

	if err := tf.Run(); err != nil {
		log.Fatal(err)
	}
	if stopTrace != nil {
		if err := stopTrace(); err != nil {
			log.Fatal(err)
		}
	}

	rs, _ := tf.LastRunStats()
	snap, _ := e.MetricsSnapshot()
	fmt.Fprintf(os.Stderr, "traversal of %d nodes (%d edges, seed %d) on %d workers: checksum %#x\n",
		size, d.NumEdges(), seed, workers, traversal.Checksum(val))
	if err := metrics.WriteRunSummary(os.Stderr, rs, snap); err != nil {
		log.Fatal(err)
	}
	if prom {
		if err := metrics.WritePrometheus(os.Stdout, metrics.Static(snap)); err != nil {
			log.Fatal(err)
		}
	}
	if dotPath != "" {
		f, err := os.Create(dotPath)
		if err != nil {
			log.Fatal(err)
		}
		if err := tf.DumpAnnotated(f); err != nil {
			log.Fatal(err)
		}
		if err := f.Close(); err != nil {
			log.Fatal(err)
		}
	}
}

// Command traversal runs the graph-traversal micro-benchmark of the
// Cpp-Taskflow paper (Figure 7): a random degree-bounded DAG cast into a
// task dependency graph and traversed by the taskflow, TBB-FlowGraph and
// OpenMP models.
//
// Usage:
//
//	traversal -sweep size -workers 8 -sizes 50000,100000,200000
//	traversal -sweep cpu -size 200000 -maxworkers 8
//	traversal -metrics -size 200000 -workers 8   # instrumented run: scheduler counters + run profile
//	traversal -metrics -prom -size 200000        # same, plus Prometheus text on stdout
//	traversal -metrics -dot g.dot -size 50       # same, plus annotated DOT dump
package main

import (
	"flag"
	"fmt"
	"io"
	"log"
	"os"

	"gotaskflow/internal/cli"
	"gotaskflow/internal/experiments"
	"gotaskflow/internal/graphgen"
	"gotaskflow/internal/metrics"
	"gotaskflow/internal/traversal"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("traversal: ")
	var (
		sweep      = flag.String("sweep", "size", "sweep axis: size or cpu")
		workers    = flag.Int("workers", experiments.DefaultWorkers(8), "worker count for the size sweep")
		sizes      = flag.String("sizes", "25000,50000,100000,200000", "comma-separated node counts")
		size       = flag.Int("size", 200000, "node count for the cpu sweep")
		maxWorkers = flag.Int("maxworkers", experiments.DefaultWorkers(8), "largest worker count for the cpu sweep")
		reps       = flag.Int("reps", 3, "repetitions per point (min taken)")
		seed       = flag.Int64("seed", 1, "random-DAG seed for the -metrics run")
		withStats  = flag.Bool("metrics", false, "run one instrumented pass at -size/-workers and report scheduler metrics instead of sweeping")
		prom       = flag.Bool("prom", false, "with -metrics: also write the Prometheus text exposition to stdout")
		dotPath    = flag.String("dot", "", "with -metrics: write the annotated task graph (DOT) to this file")
	)
	flag.Parse()

	if *withStats {
		runInstrumented(*size, *workers, *seed, *prom, *dotPath)
		return
	}

	switch *sweep {
	case "size":
		ns, err := cli.ParseInts(*sizes)
		if err != nil {
			log.Fatal(err)
		}
		if err := experiments.Fig7SizeSweep(os.Stdout, *workers, nil, ns, *reps); err != nil {
			log.Fatal(err)
		}
	case "cpu":
		counts := experiments.WorkerSweep(*maxWorkers)
		if err := experiments.Fig7CPUSweep(os.Stdout, counts, 0, *size, *reps); err != nil {
			log.Fatal(err)
		}
	default:
		log.Fatalf("unknown -sweep %q (want size or cpu)", *sweep)
	}
}

// runInstrumented executes one metrics-enabled traversal of a seeded
// random DAG and reports the run profile and scheduler counters on stderr
// (Prometheus text and the annotated DOT dump on request).
func runInstrumented(size, workers int, seed int64, prom bool, dotPath string) {
	var dotw io.Writer
	if dotPath != "" {
		f, err := os.Create(dotPath)
		if err != nil {
			log.Fatal(err)
		}
		defer f.Close()
		dotw = f
	}
	d := graphgen.Random(size, graphgen.Config{Seed: seed})
	sum, rs, snap, err := traversal.TaskflowStats(d, traversal.Spin, workers, dotw)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Fprintf(os.Stderr, "traversal of %d nodes (%d edges, seed %d) on %d workers: checksum %#x\n",
		size, d.NumEdges(), seed, workers, sum)
	if err := metrics.WriteRunSummary(os.Stderr, rs, snap); err != nil {
		log.Fatal(err)
	}
	if prom {
		if err := metrics.WritePrometheus(os.Stdout, metrics.Static(snap)); err != nil {
			log.Fatal(err)
		}
	}
}

// Command pipestream is the pipeline throughput driver and CI smoke
// gate: it pumps tokens through a mixed serial/parallel/data-parallel
// pipeline via RunN, reports tokens/sec, and exits non-zero unless the
// run processed every token at a positive rate with a clean Err. The
// pipeline shape mirrors BenchmarkPipelineThroughput (serial head, ~1µs
// stages, a guided ForEach fan-out stage, serial tail with every-16th
// checkpoint deferral), so the smoke run exercises reuse, fan-out joins
// and token parking in one binary.
//
// Usage:
//
//	pipestream -workers 4 -lines 8 -stages 6 -tokens 20000 -runs 3
//	           [-trace lines.json] [-prom metrics.txt] [-latency]
//
// With -trace the run is captured and rendered with one Perfetto track
// per pipeline line (tracing.WriteLineTrace), with per-line occupancy in
// the metadata. With -prom the gotaskflow_pipeline_* series are written
// in the Prometheus text format. With -latency the executor records
// token end-to-end latency histograms and the p50/p99 are printed.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"log"
	"os"
	"runtime"
	"time"

	"gotaskflow/internal/executor"
	"gotaskflow/internal/metrics"
	"gotaskflow/internal/pipeline"
	"gotaskflow/internal/tracing"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("pipestream: ")
	var (
		workers  = flag.Int("workers", 0, "executor workers (0 = GOMAXPROCS)")
		lines    = flag.Int("lines", 8, "pipeline lines (tokens in flight)")
		stages   = flag.Int("stages", 6, "pipe count including head and tail (min 3)")
		tokens   = flag.Int64("tokens", 20000, "tokens per run")
		runs     = flag.Int("runs", 3, "RunN batches through the one pre-built pipeline")
		work     = flag.Duration("work", time.Microsecond, "spin per scalar stage per token")
		traceOut = flag.String("trace", "", "write a per-line Perfetto trace (Chrome JSON) to this file")
		promOut  = flag.String("prom", "", "write gotaskflow_pipeline_* Prometheus series to this file")
		latency  = flag.Bool("latency", false, "record token e2e latency histograms and print p50/p99")
	)
	flag.Parse()
	if *stages < 3 {
		log.Fatal("-stages must be at least 3 (head, one middle stage, tail)")
	}
	if *workers == 0 {
		*workers = runtime.GOMAXPROCS(0)
	}

	opts := []executor.Option{}
	if *traceOut != "" {
		opts = append(opts, executor.WithTracing(0))
	}
	if *latency {
		opts = append(opts, executor.WithLatencyHistograms())
	}
	e := executor.New(*workers, opts...)
	defer e.Shutdown()

	spin := func(d time.Duration) {
		start := time.Now()
		for time.Since(start) < d {
		}
	}

	// Shape: serial head generates; stage 1 is a guided ForEach fan-out;
	// remaining middles alternate parallel/serial spinning stages; the
	// tail is serial with an every-16th-token checkpoint deferral.
	sink := make([]int64, 2048)
	pipes := make([]pipeline.Pipe, *stages)
	pipes[0] = pipeline.Pipe{Type: pipeline.Serial, Fn: func(pf *pipeline.Pipeflow) {
		if pf.Token() >= *tokens {
			pf.Stop()
		}
	}}
	pipes[1] = pipeline.ForEach(pipeline.Parallel,
		func(*pipeline.Pipeflow) int { return len(sink) },
		256, pipeline.Guided,
		func(pf *pipeline.Pipeflow, begin, end int) {
			for i := begin; i < end; i++ {
				sink[i] += pf.Token()
			}
		})
	for i := 2; i < *stages-1; i++ {
		ty := pipeline.Parallel
		if i%3 == 0 {
			ty = pipeline.Serial
		}
		pipes[i] = pipeline.Pipe{Type: ty, Fn: func(*pipeline.Pipeflow) { spin(*work) }}
	}
	pipes[*stages-1] = pipeline.Pipe{Type: pipeline.Parallel, Fn: func(pf *pipeline.Pipeflow) {
		if tok := pf.Token(); tok%16 == 0 && tok > 0 {
			pf.Defer(tok - 1)
		}
		spin(*work)
	}}

	p := pipeline.New(e, *lines, pipes...).Named("pipestream")

	if *traceOut != "" && !e.StartTrace() {
		log.Fatal("StartTrace refused")
	}
	start := time.Now()
	n := p.RunN(*runs)
	elapsed := time.Since(start)
	if err := p.Err(); err != nil {
		log.Fatalf("pipeline failed: %v", err)
	}
	want := *tokens * int64(*runs)
	if n != want {
		log.Fatalf("processed %d tokens, want %d", n, want)
	}
	rate := float64(n) / elapsed.Seconds()
	if rate <= 0 {
		log.Fatalf("tokens/sec = %v, want > 0", rate)
	}
	st := p.Stats()
	fmt.Printf("pipestream: %d tokens (%d runs) over %d lines × %d stages on %d workers in %v — %.0f tokens/sec, %d deferrals\n",
		n, st.Runs, *lines, *stages, *workers, elapsed, rate, st.Deferrals)

	if *traceOut != "" {
		tr, ok := e.StopTrace()
		if !ok {
			log.Fatal("StopTrace: no capture")
		}
		occ := tracing.LineOccupancy(tr, "pipestream")
		if len(occ) != *lines {
			log.Fatalf("trace shows %d lines, want %d", len(occ), *lines)
		}
		f, err := os.Create(*traceOut)
		if err != nil {
			log.Fatal(err)
		}
		w := bufio.NewWriter(f)
		if err := tracing.WriteLineTrace(w, tr, "pipestream"); err != nil {
			log.Fatal(err)
		}
		if err := w.Flush(); err != nil {
			log.Fatal(err)
		}
		if err := f.Close(); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("pipestream: line trace → %s (occupancy %v)\n", *traceOut, occ)
	}

	if *promOut != "" {
		f, err := os.Create(*promOut)
		if err != nil {
			log.Fatal(err)
		}
		w := bufio.NewWriter(f)
		if err := metrics.WritePipeline(w, p); err != nil {
			log.Fatal(err)
		}
		if err := w.Flush(); err != nil {
			log.Fatal(err)
		}
		if err := f.Close(); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("pipestream: pipeline metrics → %s\n", *promOut)
	}

	if *latency {
		sums, ok := e.LatencyStats()
		if !ok || len(sums) == 0 {
			log.Fatal("latency histograms missing")
		}
		ts := sums[0].Exec
		if ts.Count != uint64(n) {
			log.Fatalf("latency histogram holds %d tokens, want %d", ts.Count, n)
		}
		fmt.Printf("pipestream: token e2e latency p50=%v p99=%v mean=%v\n",
			ts.Quantile(0.50), ts.Quantile(0.99), ts.Mean())
	}
}

// Command opentimer drives the VLSI static timing analysis experiments of
// the Cpp-Taskflow paper (Section IV-B): incremental timing iterations on
// tv80- and vga_lcd-scale circuits comparing the OpenTimer-v1-style
// levelized driver against the v2-style taskflow driver (Figure 9), full
// timing scalability and CPU utilization on million-gate-scale designs
// (Figure 10), plus a one-shot timing report.
//
// The tool also speaks the standard interchange formats: it can emit the
// synthetic designs as gate-level Verilog plus a Liberty library, and time
// a netlist read back from Verilog.
//
// Usage:
//
//	opentimer -fig 9 -design tv80 -iters 30 -workers 8
//	opentimer -fig 10 -scale 20 -maxworkers 8
//	opentimer -fig 10 -utilization -scale 20
//	opentimer -report -design tv80
//	opentimer -report -design tv80 -trace sta.json   # report run with a Chrome/Perfetto event trace
//	opentimer -report -design tv80 -debug localhost:6060
//	opentimer -write-verilog tv80.v -write-liberty cells.lib -design tv80
//	opentimer -report -read-verilog tv80.v -liberty cells.lib
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"gotaskflow/internal/celllib"
	"gotaskflow/internal/circuit"
	"gotaskflow/internal/cli"
	"gotaskflow/internal/debughttp"
	"gotaskflow/internal/executor"
	"gotaskflow/internal/experiments"
	"gotaskflow/internal/sta"
	"gotaskflow/internal/stav2"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("opentimer: ")
	var (
		fig          = flag.Int("fig", 9, "figure to regenerate: 9 or 10")
		design       = flag.String("design", "tv80", "design: tv80, vga_lcd, netcard, leon3mp")
		scale        = flag.Int("scale", 1, "divide the paper's gate count by this factor")
		iters        = flag.Int("iters", 30, "incremental iterations (figure 9)")
		workers      = flag.Int("workers", experiments.DefaultWorkers(16), "worker count (figure 9)")
		maxWorkers   = flag.Int("maxworkers", experiments.DefaultWorkers(8), "largest worker count (figure 10)")
		reps         = flag.Int("reps", 2, "repetitions per point")
		utilization  = flag.Bool("utilization", false, "emit the CPU-utilization profile instead (figure 10 right)")
		report       = flag.Bool("report", false, "print a one-shot timing report for -design or -read-verilog")
		writeVerilog = flag.String("write-verilog", "", "write the design's netlist to this Verilog file")
		writeLiberty = flag.String("write-liberty", "", "write the cell library to this Liberty file")
		readVerilog  = flag.String("read-verilog", "", "time a netlist read from this Verilog file instead of a synthetic design")
		libertyFile  = flag.String("liberty", "", "Liberty file for -read-verilog (default: built-in synthetic library)")
		tracePath    = flag.String("trace", "", "with -report: capture an event trace of the timing update and write Chrome trace-event JSON to this file")
		debugAddr    = flag.String("debug", "", "with -report: serve /debug/taskflow/ on this address during the update")
	)
	flag.Parse()

	d, err := pick(*design)
	if err != nil {
		log.Fatal(err)
	}

	if *writeVerilog != "" || *writeLiberty != "" {
		exportDesign(d, *scale, *writeVerilog, *writeLiberty)
		if !*report {
			return
		}
	}
	if *readVerilog != "" {
		ckt := importDesign(*readVerilog, *libertyFile)
		reportCircuit(ckt, *workers, *tracePath, *debugAddr)
		return
	}

	switch {
	case *report:
		runReport(d, *scale, *workers, *tracePath, *debugAddr)
	case *fig == 9:
		if err := experiments.Fig9Incremental(os.Stdout, d, *scale, *iters, *workers); err != nil {
			log.Fatal(err)
		}
	case *fig == 10 && *utilization:
		counts := experiments.WorkerSweep(*maxWorkers)
		if err := experiments.Fig10Utilization(os.Stdout, d, *scale, counts, 3); err != nil {
			log.Fatal(err)
		}
	case *fig == 10:
		designs := []experiments.Design{experiments.Netcard, experiments.Leon3mp}
		counts := experiments.WorkerSweep(*maxWorkers)
		if err := experiments.Fig10Scalability(os.Stdout, designs, *scale, counts, *reps); err != nil {
			log.Fatal(err)
		}
	default:
		log.Fatalf("unknown -fig %d (want 9 or 10)", *fig)
	}
}

func pick(name string) (experiments.Design, error) {
	switch name {
	case "tv80":
		return experiments.TV80, nil
	case "vga_lcd":
		return experiments.VGALCD, nil
	case "netcard":
		return experiments.Netcard, nil
	case "leon3mp":
		return experiments.Leon3mp, nil
	}
	return experiments.Design{}, fmt.Errorf("unknown design %q", name)
}

func exportDesign(d experiments.Design, scale int, verilogPath, libertyPath string) {
	ckt := d.Build(scale)
	if verilogPath != "" {
		f, err := os.Create(verilogPath)
		if err != nil {
			log.Fatal(err)
		}
		if err := ckt.WriteVerilog(f); err != nil {
			log.Fatal(err)
		}
		f.Close()
		fmt.Printf("wrote %s (%d gates) to %s\n", ckt.Name, ckt.NumGates(), verilogPath)
	}
	if libertyPath != "" {
		f, err := os.Create(libertyPath)
		if err != nil {
			log.Fatal(err)
		}
		if err := ckt.Lib.WriteLiberty(f, "gotaskflow45"); err != nil {
			log.Fatal(err)
		}
		f.Close()
		fmt.Printf("wrote cell library to %s\n", libertyPath)
	}
}

func importDesign(verilogPath, libertyPath string) *circuit.Circuit {
	lib := celllib.NewNanGate45Like()
	if libertyPath != "" {
		f, err := os.Open(libertyPath)
		if err != nil {
			log.Fatal(err)
		}
		lib, err = celllib.ParseLiberty(f)
		f.Close()
		if err != nil {
			log.Fatal(err)
		}
	}
	f, err := os.Open(verilogPath)
	if err != nil {
		log.Fatal(err)
	}
	defer f.Close()
	ckt, err := circuit.ParseVerilog(f, lib)
	if err != nil {
		log.Fatal(err)
	}
	return ckt
}

func runReport(d experiments.Design, scale, workers int, tracePath, debugAddr string) {
	reportCircuit(d.Build(scale), workers, tracePath, debugAddr)
}

// reportCircuit performs one full timing update and prints the report.
// The update's task graph — one task per gate, named after it — runs with
// scheduler metrics and event tracing armed, so -trace captures a
// Chrome/Perfetto timeline of the forward/backward propagation and
// -debug exposes the live /debug/taskflow/ endpoint while it executes.
func reportCircuit(ckt *circuit.Circuit, workers int, tracePath, debugAddr string) {
	tm := sta.New(ckt, experiments.ClockPeriod)
	e := executor.New(workers, executor.WithMetrics(), executor.WithTracing(0))
	a := stav2.NewShared(tm, e)
	defer a.Close()
	tf := a.Taskflow(tm.FullUpdate())

	if debugAddr != "" {
		addr, stopSrv, err := debughttp.New(e).Register("timing_update", tf).ListenAndServe(debugAddr)
		if err != nil {
			log.Fatal(err)
		}
		defer stopSrv() //nolint:errcheck
		fmt.Fprintf(os.Stderr, "debug endpoints on http://%s%s\n", addr, debughttp.Prefix)
	}
	var stopTrace func() error
	if tracePath != "" {
		var err error
		if stopTrace, err = cli.StartTraceCapture(e, tracePath); err != nil {
			log.Fatal(err)
		}
	}

	if err := tf.WaitForAll(); err != nil {
		log.Fatalf("timing update failed: %v", err)
	}
	if stopTrace != nil {
		if err := stopTrace(); err != nil {
			log.Fatal(err)
		}
	}
	ws, at := tm.WorstSlack()
	fmt.Printf("design %s: %d gates, %d timing arcs\n", ckt.Name, ckt.NumGates(), ckt.NumEdges())
	fmt.Printf("worst slack %.3f ps at %s\n", ws, ckt.Gates[at].Name)
	path := tm.CriticalPath()
	fmt.Printf("critical path (%d nodes):\n", len(path))
	for _, v := range path {
		g := ckt.Gates[v]
		cell := "-"
		if g.Cell != nil {
			cell = g.Cell.Name
		}
		// Report the later (worse) transition of each quantity.
		arr := tm.Arrival[0][v]
		if tm.Arrival[1][v] > arr {
			arr = tm.Arrival[1][v]
		}
		slack := tm.Slack[0][v]
		if tm.Slack[1][v] < slack {
			slack = tm.Slack[1][v]
		}
		fmt.Printf("  %-12s %-5s %-10s arrival %9.3f  slack %9.3f\n",
			g.Name, g.Kind, cell, arr, slack)
	}
}

// Command softcost regenerates the software-cost comparisons of the
// Cpp-Taskflow paper: Table I (micro-benchmarks), Table II (OpenTimer v1
// vs v2 with COCOMO estimates), Table III (machine learning) and the
// LOC/token counts of Listings 3-5 and 7-8 — all measured on this
// repository's Go implementations with the internal/sloc analyzer.
//
// Usage:
//
//	softcost -table 1
//	softcost -table 2
//	softcost -table 3
//	softcost -listings
//	softcost -all
package main

import (
	"flag"
	"log"
	"os"

	"gotaskflow/internal/experiments"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("softcost: ")
	var (
		table    = flag.Int("table", 0, "table to regenerate: 1, 2 or 3")
		listings = flag.Bool("listings", false, "emit the listing LOC/token comparison")
		all      = flag.Bool("all", false, "emit every table")
	)
	flag.Parse()

	root, err := experiments.SrcRoot()
	if err != nil {
		log.Fatal(err)
	}
	run := func(name string, fn func() error) {
		if err := fn(); err != nil {
			log.Fatalf("%s: %v", name, err)
		}
	}
	if *all || *table == 1 {
		run("table1", func() error { return experiments.Table1(os.Stdout, root) })
	}
	if *all || *table == 2 {
		run("table2", func() error { return experiments.Table2(os.Stdout, root) })
	}
	if *all || *table == 3 {
		run("table3", func() error { return experiments.Table3(os.Stdout, root) })
	}
	if *all || *listings {
		run("listings", func() error { return experiments.ListingsTable(os.Stdout) })
	}
	if !*all && *table == 0 && !*listings {
		log.Fatal("nothing to do: pass -table N, -listings or -all")
	}
}

// Command latencysmoke is the CI gate for the always-on observability
// stack: latency histograms, the flight recorder and the stall watchdog,
// all armed at once on a fairness-shaped workload (an interactive flow
// pinging through a standing batch flood). The run is self-checking and
// exits non-zero unless:
//
//   - the watchdog stays quiet on the healthy path (zero firings);
//   - per-flow latency histograms populate and a p99 is computable for
//     the interactive flow from LatencyStats;
//   - the same p99 parses back out of the Prometheus text exposition's
//     cumulative _bucket series;
//   - a flight-recorder snapshot taken after the run holds events.
//
// Usage:
//
//	latencysmoke -workers 4 -dur 1s [-flight flight.json]
//
// With -flight the snapshot is written as Chrome trace-event JSON, which
// `tracecheck -flight` validates structurally (and Perfetto opens).
package main

import (
	"bufio"
	"flag"
	"fmt"
	"log"
	"os"
	"strconv"
	"strings"
	"time"

	"gotaskflow/internal/core"
	"gotaskflow/internal/executor"
	"gotaskflow/internal/metrics"
	"gotaskflow/internal/tracing"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("latencysmoke: ")
	var (
		workers   = flag.Int("workers", 4, "worker count")
		dur       = flag.Duration("dur", time.Second, "how long to run the workload")
		flightOut = flag.String("flight", "", "write the post-run flight-recorder snapshot (Chrome trace JSON) to this file")
	)
	flag.Parse()

	e := executor.New(*workers,
		executor.WithMetrics(),
		executor.WithLatencyHistograms(),
		executor.WithFlightRecorder(0))
	defer e.Shutdown()

	wd, err := e.StartWatchdog(executor.WatchdogConfig{})
	if err != nil {
		log.Fatal(err)
	}

	inter := e.NewFlow("interactive", executor.FlowConfig{Class: executor.Interactive, Weight: 4})
	batch := e.NewFlow("batch", executor.FlowConfig{Class: executor.Batch, Weight: 1})

	// Fairness-shaped workload: a wide batch flood keeps every worker busy
	// while a small interactive chain runs end-to-end over and over — the
	// interactive tasks real queue-wait under contention, which is what the
	// queue-wait and end-to-end histograms must capture.
	start := time.Now()
	done := make(chan struct{})
	go func() {
		defer close(done)
		btf := core.NewShared(e).SetName("batch_flood").SetFlow(batch)
		bodies := make([]func(), 64)
		for i := range bodies {
			bodies[i] = func() { spin(20 * time.Microsecond) }
		}
		btf.Emplace(bodies...)
		for time.Since(start) < *dur {
			if err := btf.Run(); err != nil {
				log.Fatal(err)
			}
		}
	}()

	itf := core.NewShared(e).SetName("interactive_ping").SetFlow(inter)
	chain := itf.Emplace(
		func() { spin(50 * time.Microsecond) },
		func() { spin(50 * time.Microsecond) },
		func() { spin(50 * time.Microsecond) },
		func() { spin(50 * time.Microsecond) },
	)
	for i := 1; i < len(chain); i++ {
		chain[i-1].Precede(chain[i])
	}
	pings := 0
	for time.Since(start) < *dur {
		if err := itf.Run(); err != nil {
			log.Fatal(err)
		}
		pings++
	}
	<-done
	wd.Stop()

	// 1. Healthy path: the watchdog must not have fired.
	if n := wd.Firings(); n != 0 {
		rep := wd.LastReport()
		log.Fatalf("watchdog fired %d times on the healthy path (last: %s %s)", n, rep.Reason, rep.Detail)
	}

	// 2. Histograms populated; interactive p99 computable from LatencyStats.
	flows, ok := e.LatencyStats()
	if !ok {
		log.Fatal("LatencyStats reports histograms disabled despite WithLatencyHistograms")
	}
	var interStats *executor.FlowLatencySummary
	for i := range flows {
		if flows[i].Flow == "interactive" {
			interStats = &flows[i]
		}
	}
	if interStats == nil {
		log.Fatalf("no latency summary for the interactive flow (got %d summaries)", len(flows))
	}
	if interStats.EndToEnd.Count == 0 {
		log.Fatal("interactive end-to-end histogram recorded zero samples")
	}
	p99 := interStats.EndToEnd.Quantile(0.99)
	if p99 <= 0 {
		log.Fatalf("interactive end-to-end p99 = %v, want > 0", p99)
	}

	// 3. The same p99 must parse back out of the Prometheus exposition.
	var b strings.Builder
	if err := metrics.WritePrometheus(&b, e); err != nil {
		log.Fatal(err)
	}
	promP99, err := promQuantile(b.String(),
		`gotaskflow_flow_latency_e2e_seconds_bucket{flow="interactive"`, 0.99)
	if err != nil {
		log.Fatalf("parsing p99 from Prometheus text: %v", err)
	}

	// 4. Flight recorder holds the recent past.
	tr, ok := e.FlightSnapshot()
	if !ok {
		log.Fatal("FlightSnapshot reports recorder disabled despite WithFlightRecorder")
	}
	if len(tr.Events) == 0 {
		log.Fatal("flight snapshot holds zero events after the workload")
	}
	if *flightOut != "" {
		f, err := os.Create(*flightOut)
		if err != nil {
			log.Fatal(err)
		}
		if err := tracing.WriteTrace(f, tr); err != nil {
			log.Fatal(err)
		}
		if err := f.Close(); err != nil {
			log.Fatal(err)
		}
	}

	fmt.Printf("ok — %d interactive runs, e2e p50=%v p99=%v (prometheus p99<=%v), %d flight events (dropped %d), watchdog quiet\n",
		pings, interStats.EndToEnd.Quantile(0.50), p99, promP99, len(tr.Events), tr.Dropped)
}

// spin busy-waits for d, the portable stand-in for CPU-bound task work.
func spin(d time.Duration) {
	for s := time.Now(); time.Since(s) < d; {
	}
}

// promQuantile recomputes a quantile from a Prometheus cumulative
// histogram: the smallest bucket upper bound (le, seconds) whose
// cumulative count reaches q of the +Inf total, over every series line
// starting with prefix.
func promQuantile(text, prefix string, q float64) (time.Duration, error) {
	type bucket struct {
		le    float64
		count uint64
	}
	var buckets []bucket
	var total uint64
	haveInf := false
	sc := bufio.NewScanner(strings.NewReader(text))
	for sc.Scan() {
		line := sc.Text()
		if !strings.HasPrefix(line, prefix) {
			continue
		}
		leStart := strings.Index(line, `le="`)
		if leStart < 0 {
			return 0, fmt.Errorf("bucket line without le label: %s", line)
		}
		rest := line[leStart+4:]
		leEnd := strings.Index(rest, `"`)
		leStr := rest[:leEnd]
		sp := strings.LastIndex(line, " ")
		count, err := strconv.ParseUint(line[sp+1:], 10, 64)
		if err != nil {
			return 0, fmt.Errorf("bucket count in %q: %w", line, err)
		}
		if leStr == "+Inf" {
			total = count
			haveInf = true
			continue
		}
		le, err := strconv.ParseFloat(leStr, 64)
		if err != nil {
			return 0, fmt.Errorf("bucket bound in %q: %w", line, err)
		}
		buckets = append(buckets, bucket{le, count})
	}
	if !haveInf {
		return 0, fmt.Errorf("no le=\"+Inf\" bucket for prefix %s", prefix)
	}
	if total == 0 {
		return 0, fmt.Errorf("+Inf bucket reports zero samples for prefix %s", prefix)
	}
	rank := uint64(q * float64(total))
	for _, b := range buckets {
		if b.count >= rank {
			return time.Duration(b.le * 1e9), nil
		}
	}
	// Quantile lands in the overflow bucket; report the largest finite bound.
	return time.Duration(buckets[len(buckets)-1].le * 1e9), nil
}

// Package sloc measures software costs the way the Cpp-Taskflow paper
// does (Tables I, II and III): physical source lines of code in the style
// of SLOCCount, cyclomatic complexity per function in the style of Lizard,
// a raw token counter for the listing comparisons, and the COCOMO organic
// model SLOCCount uses for effort/schedule/cost estimates.
//
// The analyzer is built on go/parser and go/scanner from the standard
// library and operates on Go sources — the implementations whose costs the
// reproduced tables compare.
package sloc

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/scanner"
	"go/token"
	"math"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// FuncMetrics carries the per-function measurements.
type FuncMetrics struct {
	Name string
	LOC  int // physical source lines spanned that contain code
	CC   int // cyclomatic complexity
}

// FileMetrics aggregates one source file.
type FileMetrics struct {
	Path  string
	LOC   int // code lines in the whole file
	Funcs []FuncMetrics
}

// MaxCC returns the maximum cyclomatic complexity over the file's
// functions (the paper's MCC column), or 0 for a function-free file.
func (f *FileMetrics) MaxCC() int {
	m := 0
	for _, fn := range f.Funcs {
		if fn.CC > m {
			m = fn.CC
		}
	}
	return m
}

// AnalyzeSource measures a Go source buffer.
func AnalyzeSource(filename string, src []byte) (*FileMetrics, error) {
	fset := token.NewFileSet()
	astFile, err := parser.ParseFile(fset, filename, src, parser.SkipObjectResolution)
	if err != nil {
		return nil, fmt.Errorf("sloc: parse %s: %w", filename, err)
	}
	codeLines := codeLineSet(fset, filename, src)
	fm := &FileMetrics{Path: filename, LOC: len(codeLines)}

	ast.Inspect(astFile, func(n ast.Node) bool {
		fd, ok := n.(*ast.FuncDecl)
		if !ok || fd.Body == nil {
			return true
		}
		start := fset.Position(fd.Pos()).Line
		end := fset.Position(fd.End()).Line
		loc := 0
		for line := start; line <= end; line++ {
			if codeLines[line] {
				loc++
			}
		}
		fm.Funcs = append(fm.Funcs, FuncMetrics{
			Name: funcName(fd),
			LOC:  loc,
			CC:   complexity(fd.Body),
		})
		return true
	})
	return fm, nil
}

// AnalyzeFile measures a Go source file on disk.
func AnalyzeFile(path string) (*FileMetrics, error) {
	src, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	return AnalyzeSource(path, src)
}

// AnalyzeDir measures every non-test Go file under dir (recursively) and
// returns the files sorted by path.
func AnalyzeDir(dir string) ([]*FileMetrics, error) {
	var out []*FileMetrics
	err := filepath.WalkDir(dir, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() || !strings.HasSuffix(path, ".go") || strings.HasSuffix(path, "_test.go") {
			return nil
		}
		fm, err := AnalyzeFile(path)
		if err != nil {
			return err
		}
		out = append(out, fm)
		return nil
	})
	if err != nil {
		return nil, err
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Path < out[j].Path })
	return out, nil
}

// Totals sums LOC and computes the max per-function CC across files.
func Totals(files []*FileMetrics) (loc, maxCC int) {
	for _, f := range files {
		loc += f.LOC
		if m := f.MaxCC(); m > maxCC {
			maxCC = m
		}
	}
	return loc, maxCC
}

// codeLineSet returns the set of 1-based line numbers holding at least one
// non-comment token — the SLOCCount notion of a physical source line.
func codeLineSet(fset *token.FileSet, filename string, src []byte) map[int]bool {
	var s scanner.Scanner
	file := fset.AddFile(filename+"#scan", fset.Base(), len(src))
	s.Init(file, src, nil, 0) // comments skipped by default
	lines := map[int]bool{}
	for {
		pos, tok, lit := s.Scan()
		if tok == token.EOF {
			break
		}
		if tok == token.SEMICOLON && lit == "\n" {
			continue // implicit semicolon, not source text
		}
		p := fset.Position(pos)
		lines[p.Line] = true
		// Multi-line strings contribute every spanned line: mark the line
		// following each embedded newline.
		if tok == token.STRING {
			for i, c := range lit {
				if c == '\n' && i+1 < len(lit) {
					lines[fset.Position(pos+token.Pos(i+1)).Line] = true
				}
			}
		}
	}
	return lines
}

func funcName(fd *ast.FuncDecl) string {
	if fd.Recv != nil && len(fd.Recv.List) == 1 {
		return recvTypeName(fd.Recv.List[0].Type) + "." + fd.Name.Name
	}
	return fd.Name.Name
}

func recvTypeName(e ast.Expr) string {
	switch t := e.(type) {
	case *ast.StarExpr:
		return recvTypeName(t.X)
	case *ast.Ident:
		return t.Name
	case *ast.IndexExpr:
		return recvTypeName(t.X)
	case *ast.IndexListExpr:
		return recvTypeName(t.X)
	}
	return "?"
}

// complexity computes Lizard-style cyclomatic complexity: 1 + one for each
// decision point (if, for/range, case/comm clause, && and ||).
func complexity(body *ast.BlockStmt) int {
	cc := 1
	ast.Inspect(body, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.IfStmt, *ast.ForStmt, *ast.RangeStmt,
			*ast.CaseClause, *ast.CommClause:
			cc++
		case *ast.BinaryExpr:
			if x.Op == token.LAND || x.Op == token.LOR {
				cc++
			}
		case *ast.FuncLit:
			// Nested function literals count toward the enclosing
			// function, as Lizard attributes lambdas to their definition
			// site in the C++ sources the paper measures.
		}
		return true
	})
	return cc
}

// CountTokens returns the number of lexical tokens in a Go source buffer,
// the metric the paper quotes alongside LOC for Listings 3-5 and 7-8.
func CountTokens(src []byte) int {
	var s scanner.Scanner
	fset := token.NewFileSet()
	file := fset.AddFile("tokens", fset.Base(), len(src))
	s.Init(file, src, nil, 0)
	n := 0
	for {
		_, tok, lit := s.Scan()
		if tok == token.EOF {
			break
		}
		if tok == token.SEMICOLON && lit == "\n" {
			continue
		}
		n++
	}
	return n
}

// Cocomo holds the SLOCCount-style COCOMO organic-mode estimate the
// paper's Table II reports.
type Cocomo struct {
	PersonMonths   float64 // basic COCOMO effort
	PersonYears    float64 // Effort column
	ScheduleMonths float64
	Developers     float64 // Dev column: effort / schedule
	Cost           float64 // Dev Cost column, USD
}

// DefaultSalary is SLOCCount's default annual salary; the paper quotes it
// explicitly ($56,286/year).
const DefaultSalary = 56286.0

// overheadFactor is SLOCCount's default overhead multiplier.
const overheadFactor = 2.4

// EstimateCocomo applies basic COCOMO (organic mode: a=2.4, b=1.05,
// c=2.5, d=0.38) to a line count, reproducing SLOCCount's Effort, Dev and
// Cost numbers.
func EstimateCocomo(loc int, salary float64) Cocomo {
	kloc := float64(loc) / 1000
	var e Cocomo
	if kloc <= 0 {
		return e
	}
	e.PersonMonths = 2.4 * math.Pow(kloc, 1.05)
	e.PersonYears = e.PersonMonths / 12
	e.ScheduleMonths = 2.5 * math.Pow(e.PersonMonths, 0.38)
	e.Developers = e.PersonMonths / e.ScheduleMonths
	e.Cost = e.PersonYears * salary * overheadFactor
	return e
}

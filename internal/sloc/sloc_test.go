package sloc

import (
	"math"
	"os"
	"path/filepath"
	"testing"
)

const sample = `package demo

// a comment-only line
func Simple() int {
	return 1
}

// Branchy has several decision points.
func Branchy(x int, ok bool) int {
	if x > 0 && ok { // +2 (if, &&)
		x++
	}
	for i := 0; i < x; i++ { // +1
		switch i {
		case 0: // +1
			x--
		case 1: // +1
			x++
		default: // +1
		}
	}
	return x
}

type T struct{}

func (t *T) Method(vals []int) int {
	s := 0
	for _, v := range vals { // +1
		if v > 0 || v < -10 { // +2
			s += v
		}
	}
	return s
}
`

func TestAnalyzeSource(t *testing.T) {
	fm, err := AnalyzeSource("sample.go", []byte(sample))
	if err != nil {
		t.Fatal(err)
	}
	if len(fm.Funcs) != 3 {
		t.Fatalf("found %d funcs, want 3", len(fm.Funcs))
	}
	byName := map[string]FuncMetrics{}
	for _, f := range fm.Funcs {
		byName[f.Name] = f
	}
	if got := byName["Simple"].CC; got != 1 {
		t.Fatalf("Simple CC = %d, want 1", got)
	}
	if got := byName["Branchy"].CC; got != 7 {
		t.Fatalf("Branchy CC = %d, want 7", got)
	}
	if got := byName["T.Method"].CC; got != 4 {
		t.Fatalf("T.Method CC = %d, want 4", got)
	}
	if fm.MaxCC() != 7 {
		t.Fatalf("MaxCC = %d, want 7", fm.MaxCC())
	}
	if byName["Simple"].LOC != 3 {
		t.Fatalf("Simple LOC = %d, want 3", byName["Simple"].LOC)
	}
	// Whole file: comment-only and blank lines must not count.
	if fm.LOC < 25 || fm.LOC > 35 {
		t.Fatalf("file LOC = %d, outside sane range", fm.LOC)
	}
}

func TestCommentsAndBlanksExcluded(t *testing.T) {
	src := "package p\n\n// only a comment\n\n/* block\ncomment\n*/\n\nvar X = 1\n"
	fm, err := AnalyzeSource("c.go", []byte(src))
	if err != nil {
		t.Fatal(err)
	}
	if fm.LOC != 2 { // "package p" and "var X = 1"
		t.Fatalf("LOC = %d, want 2", fm.LOC)
	}
}

func TestMultilineString(t *testing.T) {
	src := "package p\n\nvar S = `line1\nline2\nline3`\n"
	fm, err := AnalyzeSource("m.go", []byte(src))
	if err != nil {
		t.Fatal(err)
	}
	if fm.LOC != 4 { // package + 3 string lines
		t.Fatalf("LOC = %d, want 4", fm.LOC)
	}
}

func TestParseError(t *testing.T) {
	if _, err := AnalyzeSource("bad.go", []byte("not go code")); err == nil {
		t.Fatal("parse error not reported")
	}
}

func TestAnalyzeDirSkipsTests(t *testing.T) {
	dir := t.TempDir()
	os.WriteFile(filepath.Join(dir, "a.go"), []byte("package p\nfunc A() {}\n"), 0o644)
	os.WriteFile(filepath.Join(dir, "a_test.go"), []byte("package p\nfunc TestA() {}\n"), 0o644)
	sub := filepath.Join(dir, "sub")
	os.Mkdir(sub, 0o755)
	os.WriteFile(filepath.Join(sub, "b.go"), []byte("package q\nfunc B() { if true {} }\n"), 0o644)
	files, err := AnalyzeDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(files) != 2 {
		t.Fatalf("analyzed %d files, want 2 (tests skipped)", len(files))
	}
	loc, maxCC := Totals(files)
	if loc != 4 {
		t.Fatalf("total LOC = %d, want 4", loc)
	}
	if maxCC != 2 {
		t.Fatalf("maxCC = %d, want 2", maxCC)
	}
}

func TestCountTokens(t *testing.T) {
	n := CountTokens([]byte("package p\nfunc f() { x := 1 + 2 }\n"))
	// package p func f ( ) { x := 1 + 2 ; } -> but implicit newline
	// semicolons are excluded; the explicit count:
	// package, p, func, f, (, ), {, x, :=, 1, +, 2, ; (before }), }
	if n < 12 || n > 15 {
		t.Fatalf("CountTokens = %d, outside expected range", n)
	}
	if CountTokens([]byte("")) != 0 {
		t.Fatal("empty source has tokens")
	}
}

// TestCocomoReproducesPaperTable2 checks the model against the paper's own
// numbers: OpenTimer v1 (9,123 LOC) -> 2.04 person-years, 2.90 developers,
// $275,287 at $56,286/year; v2 (4,482 LOC) -> 0.97 py, 1.83 dev, $130,523.
func TestCocomoReproducesPaperTable2(t *testing.T) {
	v1 := EstimateCocomo(9123, DefaultSalary)
	if math.Abs(v1.PersonYears-2.04) > 0.01 {
		t.Fatalf("v1 effort = %.3f py, paper says 2.04", v1.PersonYears)
	}
	if math.Abs(v1.Developers-2.90) > 0.02 {
		t.Fatalf("v1 devs = %.3f, paper says 2.90", v1.Developers)
	}
	if math.Abs(v1.Cost-275287) > 3000 {
		t.Fatalf("v1 cost = %.0f, paper says 275287", v1.Cost)
	}
	v2 := EstimateCocomo(4482, DefaultSalary)
	if math.Abs(v2.PersonYears-0.97) > 0.01 {
		t.Fatalf("v2 effort = %.3f py, paper says 0.97", v2.PersonYears)
	}
	if math.Abs(v2.Developers-1.83) > 0.02 {
		t.Fatalf("v2 devs = %.3f, paper says 1.83", v2.Developers)
	}
	if math.Abs(v2.Cost-130523) > 2000 {
		t.Fatalf("v2 cost = %.0f, paper says 130523", v2.Cost)
	}
}

func TestCocomoZero(t *testing.T) {
	z := EstimateCocomo(0, DefaultSalary)
	if z.PersonMonths != 0 || z.Cost != 0 {
		t.Fatal("zero LOC should estimate zero effort")
	}
}

func TestGenericReceiver(t *testing.T) {
	src := "package p\ntype G[T any] struct{}\nfunc (g *G[T]) M() {}\n"
	fm, err := AnalyzeSource("g.go", []byte(src))
	if err != nil {
		t.Fatal(err)
	}
	if len(fm.Funcs) != 1 || fm.Funcs[0].Name != "G.M" {
		t.Fatalf("funcs = %+v", fm.Funcs)
	}
}

// Package traversal implements the graph-traversal micro-benchmark of the
// Cpp-Taskflow paper (Section IV-A): a randomly generated degree-bounded
// DAG is cast into a task dependency graph that performs a parallel
// traversal; each node's task folds its predecessors' values with a nominal
// constant-time operation. The irregular structure is the counterpart to
// the regular wavefront pattern and mimics OpenMP-based circuit-analysis
// workloads and their limitations.
//
// Four backends execute the same traversal — Taskflow, FlowGraph (TBB
// model), OMP (OpenMP task-depend model, node degree capped at 4 as in the
// paper), and Sequential — and return identical checksums.
package traversal

import (
	"fmt"
	"io"

	"gotaskflow/internal/core"
	"gotaskflow/internal/executor"
	"gotaskflow/internal/flowgraph"
	"gotaskflow/internal/graphgen"
	"gotaskflow/internal/omp"
)

// Spin is the default nominal per-node operation cost.
const Spin = 64

// kernel folds an accumulated predecessor value with node identity and
// spins a deterministic LCG.
func kernel(acc uint64, node int, spin int) uint64 {
	x := acc ^ (uint64(node)*0x9e3779b97f4a7c15 + 1)
	for i := 0; i < spin; i++ {
		x = x*6364136223846793005 + 1442695040888963407
	}
	return x
}

// preds inverts the successor lists of d. The per-node lists are windows
// of one flat backing array sized from the known in-degrees, so the
// inversion costs two allocations instead of one growth chain per node.
func preds(d *graphgen.DAG) [][]int32 {
	p := make([][]int32, d.N)
	total := 0
	for v := 0; v < d.N; v++ {
		total += int(d.InDeg[v])
	}
	flat := make([]int32, total)
	off := 0
	for v := 0; v < d.N; v++ {
		p[v] = flat[off : off : off+int(d.InDeg[v])]
		off += int(d.InDeg[v])
	}
	for u := range d.Succ {
		for _, v := range d.Succ[u] {
			p[v] = append(p[v], int32(u))
		}
	}
	return p
}

// visit computes node v's value from its predecessors' values.
func visit(val []uint64, pred []int32, v, spin int) {
	var acc uint64
	for _, u := range pred {
		acc += val[u]
	}
	val[v] = kernel(acc, v, spin)
}

// Checksum folds all node values.
func Checksum(val []uint64) uint64 {
	var c uint64
	for _, v := range val {
		c = c*31 + v
	}
	return c
}

// Sequential traverses d in topological (index) order — the reference
// result for the parallel backends.
func Sequential(d *graphgen.DAG, spin int) uint64 {
	p := preds(d)
	val := make([]uint64, d.N)
	for v := 0; v < d.N; v++ {
		visit(val, p[v], v, spin)
	}
	return Checksum(val)
}

// Taskflow casts d into a taskflow graph and traverses it in parallel.
// Task failures are returned, not re-panicked.
func Taskflow(d *graphgen.DAG, spin, workers int) (uint64, error) {
	tf := core.New(workers)
	defer tf.Close()
	val := Build(tf, d, spin)
	if err := tf.WaitForAll(); err != nil {
		return 0, err
	}
	return Checksum(val), nil
}

// Build emplaces d's traversal task graph on tf and returns the
// value array the tasks write into.
func Build(tf *core.Taskflow, d *graphgen.DAG, spin int) []uint64 {
	p := preds(d)
	val := make([]uint64, d.N)
	tasks := make([]core.Task, d.N)
	for v := 0; v < d.N; v++ {
		v := v
		tasks[v] = tf.Emplace1(func() { visit(val, p[v], v, spin) })
	}
	for u := 0; u < d.N; u++ {
		for _, v := range d.Succ[u] {
			tasks[u].Precede(tasks[v])
		}
	}
	return val
}

// TaskflowStats runs one instrumented traversal of d: the executor counts
// scheduler events (WithMetrics) and the taskflow collects timed run
// statistics. It returns the checksum, the run's RunStats, and the
// executor's counter snapshot at quiescence. When dotw is non-nil the
// annotated task graph is written to it after the run.
func TaskflowStats(d *graphgen.DAG, spin, workers int, dotw io.Writer) (uint64, core.RunStats, executor.Snapshot, error) {
	e := executor.New(workers, executor.WithMetrics())
	defer e.Shutdown()
	tf := core.NewShared(e).SetName(fmt.Sprintf("traversal_%d", d.N)).CollectRunStats(true)
	val := Build(tf, d, spin)
	if err := tf.Run(); err != nil {
		return 0, core.RunStats{}, executor.Snapshot{}, err
	}
	rs, _ := tf.LastRunStats()
	snap, _ := e.MetricsSnapshot()
	if dotw != nil {
		if err := tf.DumpAnnotated(dotw); err != nil {
			return 0, core.RunStats{}, executor.Snapshot{}, err
		}
	}
	return Checksum(val), rs, snap, nil
}

// FlowGraph traverses d on the TBB FlowGraph model. All sources must be
// fired explicitly, as TBB requires.
func FlowGraph(d *graphgen.DAG, spin, workers int) uint64 {
	fg := flowgraph.NewGraph(workers)
	defer fg.Close()
	p := preds(d)
	val := make([]uint64, d.N)
	nodes := make([]*flowgraph.ContinueNode, d.N)
	for v := 0; v < d.N; v++ {
		v := v
		nodes[v] = flowgraph.NewContinueNode(fg, func(flowgraph.ContinueMsg) {
			visit(val, p[v], v, spin)
		})
	}
	for u := 0; u < d.N; u++ {
		for _, v := range d.Succ[u] {
			flowgraph.MakeEdge(nodes[u], nodes[v])
		}
	}
	for _, s := range d.Sources() {
		nodes[s].TryPut(flowgraph.ContinueMsg{})
	}
	fg.WaitForAll()
	return Checksum(val)
}

// OMP traverses d on the OpenMP task-depend model: one task per node,
// declared in topological (index) order, with one dependency token per
// edge. The paper's degree cap of 4 keeps this enumeration tractable.
func OMP(d *graphgen.DAG, spin, workers int) uint64 {
	p := preds(d)
	val := make([]uint64, d.N)
	team := omp.NewParallel(workers)
	defer team.Close()
	team.Single(func(s *omp.Scope) {
		for v := 0; v < d.N; v++ {
			v := v
			var deps []omp.Dep
			if len(p[v]) > 0 {
				in := make([]string, len(p[v]))
				for k, u := range p[v] {
					in[k] = edgeToken(int(u), v)
				}
				deps = append(deps, omp.In(in...))
			}
			if len(d.Succ[v]) > 0 {
				out := make([]string, len(d.Succ[v]))
				for k, w := range d.Succ[v] {
					out[k] = edgeToken(v, int(w))
				}
				deps = append(deps, omp.Out(out...))
			}
			s.Task(func() { visit(val, p[v], v, spin) }, deps...)
		}
	})
	return Checksum(val)
}

func edgeToken(u, v int) string { return fmt.Sprintf("e%d_%d", u, v) }

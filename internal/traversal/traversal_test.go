package traversal

import (
	"testing"

	"gotaskflow/internal/graphgen"
)

func gen(n int, seed int64) *graphgen.DAG {
	return graphgen.Random(n, graphgen.Config{MaxIn: 4, MaxOut: 4, Seed: seed})
}

func TestBackendsAgree(t *testing.T) {
	for _, n := range []int{1, 2, 10, 100, 1000} {
		d := gen(n, int64(n))
		want := Sequential(d, 16)
		if got, err := Taskflow(d, 16, 4); err != nil || got != want {
			t.Fatalf("n=%d: Taskflow = %#x, %v, want %#x", n, got, err, want)
		}
		if got := FlowGraph(d, 16, 4); got != want {
			t.Fatalf("n=%d: FlowGraph = %#x, want %#x", n, got, want)
		}
		if got := OMP(d, 16, 4); got != want {
			t.Fatalf("n=%d: OMP = %#x, want %#x", n, got, want)
		}
	}
}

func TestSingleWorker(t *testing.T) {
	d := gen(500, 42)
	want := Sequential(d, 8)
	if got, err := Taskflow(d, 8, 1); err != nil || got != want {
		t.Fatalf("Taskflow(1) = %#x, %v, want %#x", got, err, want)
	}
	if got := FlowGraph(d, 8, 1); got != want {
		t.Fatalf("FlowGraph(1) = %#x, want %#x", got, want)
	}
	if got := OMP(d, 8, 1); got != want {
		t.Fatalf("OMP(1) = %#x, want %#x", got, want)
	}
}

func TestChecksumSensitivity(t *testing.T) {
	d := gen(200, 1)
	if Sequential(d, 8) == Sequential(d, 9) {
		t.Fatal("spin count does not affect checksum")
	}
	d2 := gen(200, 2)
	if Sequential(d, 8) == Sequential(d2, 8) {
		t.Fatal("graph structure does not affect checksum")
	}
}

func TestEmptyGraph(t *testing.T) {
	d := gen(0, 0)
	want := Sequential(d, 4)
	if got, err := Taskflow(d, 4, 2); err != nil || got != want {
		t.Fatalf("empty Taskflow = %#x, %v, want %#x", got, err, want)
	}
	if got := FlowGraph(d, 4, 2); got != want {
		t.Fatalf("empty FlowGraph = %#x, want %#x", got, want)
	}
	if got := OMP(d, 4, 2); got != want {
		t.Fatalf("empty OMP = %#x, want %#x", got, want)
	}
}

func TestLargeGraph(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	d := gen(20000, 7)
	want := Sequential(d, 2)
	if got, err := Taskflow(d, 2, 2); err != nil || got != want {
		t.Fatalf("Taskflow large = %#x, want %#x", got, want)
	}
}

package cli

import "testing"

func TestParseInts(t *testing.T) {
	got, err := ParseInts("1, 2,30")
	if err != nil {
		t.Fatal(err)
	}
	want := []int{1, 2, 30}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("ParseInts = %v", got)
		}
	}
	if got, _ := ParseInts(""); got != nil {
		t.Fatalf("ParseInts(\"\") = %v", got)
	}
	if got, _ := ParseInts("1,,2"); len(got) != 2 {
		t.Fatalf("empty field not skipped: %v", got)
	}
	if _, err := ParseInts("1,x"); err == nil {
		t.Fatal("bad integer accepted")
	}
}

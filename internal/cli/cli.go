// Package cli holds the small flag-parsing helpers shared by the cmd/
// binaries.
package cli

import (
	"fmt"
	"strconv"
	"strings"
)

// ParseInts parses a comma-separated list of integers ("64,128,256").
// Empty fields are skipped; an empty string yields nil.
func ParseInts(csv string) ([]int, error) {
	var out []int
	for _, f := range strings.Split(csv, ",") {
		f = strings.TrimSpace(f)
		if f == "" {
			continue
		}
		v, err := strconv.Atoi(f)
		if err != nil {
			return nil, fmt.Errorf("cli: bad integer %q", f)
		}
		out = append(out, v)
	}
	return out, nil
}

package cli

import (
	"fmt"
	"os"

	"gotaskflow/internal/executor"
	"gotaskflow/internal/tracing"
)

// StartTraceCapture begins an event-trace capture on e for a driver's
// -trace flag. The returned stop function ends the capture and writes the
// Chrome trace-event JSON to path (load it in https://ui.perfetto.dev or
// chrome://tracing). The executor must have been built with
// executor.WithTracing.
func StartTraceCapture(e *executor.Executor, path string) (stop func() error, err error) {
	if !e.StartTrace() {
		return nil, fmt.Errorf("cli: trace capture could not start (executor built without tracing, or a capture is already active)")
	}
	return func() error {
		tr, ok := e.StopTrace()
		if !ok {
			return fmt.Errorf("cli: no active trace capture to stop")
		}
		f, err := os.Create(path)
		if err != nil {
			return err
		}
		if err := tracing.WriteTrace(f, tr); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		msg := fmt.Sprintf("wrote %d trace events to %s", len(tr.Events), path)
		if tr.Dropped > 0 {
			msg += fmt.Sprintf(" (%d dropped; raise the ring capacity)", tr.Dropped)
		}
		fmt.Fprintln(os.Stderr, msg)
		return nil
	}, nil
}

package listings

import (
	"testing"

	"gotaskflow/internal/sloc"
)

func metrics(t *testing.T, l Listing) (loc, tokens int) {
	t.Helper()
	fm, err := sloc.AnalyzeSource(l.Name+".go", []byte(l.Source))
	if err != nil {
		t.Fatalf("listing %s does not parse: %v", l.Name, err)
	}
	return fm.LOC, sloc.CountTokens([]byte(l.Source))
}

func TestAllListingsParse(t *testing.T) {
	for _, l := range append(Static(), Dynamic()...) {
		loc, tokens := metrics(t, l)
		if loc < 5 || tokens < 20 {
			t.Fatalf("listing %s (%s) suspiciously small: %d LOC %d tokens", l.Name, l.Figure, loc, tokens)
		}
	}
}

func TestStaticOrderingMatchesPaper(t *testing.T) {
	// Paper Listings 3-5 report 178 / 181 / 295 tokens and 17 / 22 / 37
	// LOC for taskflow / openmp / tbb. The token ordering
	// taskflow < openmp < tbb carries over exactly. In LOC, taskflow < tbb
	// also holds; the Go translation of the OpenMP model compresses the
	// pragma boilerplate into variadic In/Out calls, so its LOC lands
	// below the C++ pragma count — an expected translation artifact that
	// EXPERIMENTS.md documents.
	ls := Static()
	tfLOC, tfTok := metrics(t, ls[0])
	_, ompTok := metrics(t, ls[1])
	tbbLOC, tbbTok := metrics(t, ls[2])
	if !(tfTok < ompTok && ompTok < tbbTok) {
		t.Fatalf("token ordering broken: tf=%d omp=%d tbb=%d", tfTok, ompTok, tbbTok)
	}
	if tfLOC >= tbbLOC {
		t.Fatalf("taskflow %d LOC not below TBB %d LOC", tfLOC, tbbLOC)
	}
}

func TestDynamicOrderingMatchesPaper(t *testing.T) {
	// Paper Listings 7-8: Cpp-Taskflow 20 LOC vs TBB 38 LOC.
	ls := Dynamic()
	tfLOC, tfTok := metrics(t, ls[0])
	tbbLOC, tbbTok := metrics(t, ls[1])
	if tfLOC >= tbbLOC {
		t.Fatalf("dynamic tasking: taskflow %d LOC not below TBB %d LOC", tfLOC, tbbLOC)
	}
	if tfTok >= tbbTok {
		t.Fatalf("dynamic tasking: taskflow %d tokens not below TBB %d tokens", tfTok, tbbTok)
	}
}

func TestListingsMetadata(t *testing.T) {
	if len(Static()) != 3 || len(Dynamic()) != 2 {
		t.Fatal("listing counts wrong")
	}
	for _, l := range Static() {
		if l.Figure != "Figure 2" {
			t.Fatalf("static listing %s tagged %s", l.Name, l.Figure)
		}
	}
}

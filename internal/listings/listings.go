// Package listings reproduces the programmability comparison of the
// Cpp-Taskflow paper's Listings 3-5 (the static Figure-2 graph) and
// Listings 7-8 (the dynamic Figure-4 graph): the same task dependency
// graph written against each library's Go API, kept as source snippets so
// the sloc analyzer can count lines of code and tokens exactly as the
// paper does with SLOCCount. Each snippet is a complete, parseable Go
// function mirroring this repository's real APIs; the tests parse them and
// pin the relative ordering (taskflow < tbb < openmp in verbosity).
package listings

// Listing holds one implementation snippet.
type Listing struct {
	Name   string
	Figure string // which paper figure the snippet builds
	Source string // a complete Go file
}

// Figure2Taskflow is the paper's Listing 3 translated to this library.
const Figure2Taskflow = `package snippet

import "gotaskflow/internal/core"

func BuildFigure2(body func(string) func()) {
	tf := core.New(0)
	defer tf.Close()
	ts := tf.Emplace(
		body("a0"), body("a1"), body("a2"), body("a3"),
		body("b0"), body("b1"), body("b2"),
	)
	a0, a1, a2, a3, b0, b1, b2 := ts[0], ts[1], ts[2], ts[3], ts[4], ts[5], ts[6]
	a0.Precede(a1)
	a1.Precede(a2, b2)
	a2.Precede(a3)
	b0.Precede(b1)
	b1.Precede(a2, b2)
	b2.Precede(a3)
	tf.WaitForAll()
}
`

// Figure2OpenMP is the paper's Listing 4 translated to the omp model:
// every constraint needs a token on both sides and a declaration order
// consistent with sequential execution.
const Figure2OpenMP = `package snippet

import "gotaskflow/internal/omp"

func BuildFigure2(body func(string) func()) {
	p := omp.NewParallel(0)
	defer p.Close()
	p.Single(func(s *omp.Scope) {
		s.Task(body("a0"), omp.Out("a0_a1"))
		s.Task(body("b0"), omp.Out("b0_b1"))
		s.Task(body("a1"), omp.In("a0_a1"), omp.Out("a1_a2", "a1_b2"))
		s.Task(body("b1"), omp.In("b0_b1"), omp.Out("b1_b2", "b1_a2"))
		s.Task(body("a2"), omp.In("a1_a2", "b1_a2"), omp.Out("a2_a3"))
		s.Task(body("b2"), omp.In("a1_b2", "b1_b2"), omp.Out("b2_a3"))
		s.Task(body("a3"), omp.In("a2_a3", "b2_a3"))
	})
}
`

// Figure2TBB is the paper's Listing 5 translated to the flowgraph model:
// explicit node objects, explicit edges, and explicit source try_puts.
const Figure2TBB = `package snippet

import fg "gotaskflow/internal/flowgraph"

func BuildFigure2(body func(string) func()) {
	g := fg.NewGraph(0)
	defer g.Close()
	wrap := func(name string) func(fg.ContinueMsg) {
		fn := body(name)
		return func(fg.ContinueMsg) { fn() }
	}
	a0 := fg.NewContinueNode(g, wrap("a0"))
	a1 := fg.NewContinueNode(g, wrap("a1"))
	a2 := fg.NewContinueNode(g, wrap("a2"))
	a3 := fg.NewContinueNode(g, wrap("a3"))
	b0 := fg.NewContinueNode(g, wrap("b0"))
	b1 := fg.NewContinueNode(g, wrap("b1"))
	b2 := fg.NewContinueNode(g, wrap("b2"))
	fg.MakeEdge(a0, a1)
	fg.MakeEdge(a1, a2)
	fg.MakeEdge(a1, b2)
	fg.MakeEdge(a2, a3)
	fg.MakeEdge(b0, b1)
	fg.MakeEdge(b1, b2)
	fg.MakeEdge(b1, a2)
	fg.MakeEdge(b2, a3)
	a0.TryPut(fg.ContinueMsg{})
	b0.TryPut(fg.ContinueMsg{})
	g.WaitForAll()
}
`

// Figure4Taskflow is the paper's Listing 7: dynamic tasking through the
// unified Subflow interface.
const Figure4Taskflow = `package snippet

import "gotaskflow/internal/core"

func BuildFigure4(body func(string) func()) {
	tf := core.New(0)
	defer tf.Close()
	ts := tf.Emplace(body("A"), body("C"), body("D"))
	A, C, D := ts[0], ts[1], ts[2]
	B := tf.EmplaceSubflow(func(sf *core.Subflow) {
		body("B")()
		bs := sf.Emplace(body("B1"), body("B2"), body("B3"))
		bs[0].Precede(bs[2])
		bs[1].Precede(bs[2])
	})
	A.Precede(B, C)
	B.Precede(D)
	C.Precede(D)
	tf.WaitForAll()
}
`

// Figure4TBB is the paper's Listing 8: TBB needs a separate inner graph
// object created and drained inside the node body.
const Figure4TBB = `package snippet

import fg "gotaskflow/internal/flowgraph"

func BuildFigure4(body func(string) func()) {
	G := fg.NewGraph(0)
	defer G.Close()
	wrap := func(name string) func(fg.ContinueMsg) {
		fn := body(name)
		return func(fg.ContinueMsg) { fn() }
	}
	A := fg.NewContinueNode(G, wrap("A"))
	C := fg.NewContinueNode(G, wrap("C"))
	D := fg.NewContinueNode(G, wrap("D"))
	B := fg.NewContinueNode(G, func(fg.ContinueMsg) {
		body("B")()
		sub := fg.NewGraph(0)
		defer sub.Close()
		b1 := fg.NewContinueNode(sub, wrap("B1"))
		b2 := fg.NewContinueNode(sub, wrap("B2"))
		b3 := fg.NewContinueNode(sub, wrap("B3"))
		fg.MakeEdge(b1, b3)
		fg.MakeEdge(b2, b3)
		b1.TryPut(fg.ContinueMsg{})
		b2.TryPut(fg.ContinueMsg{})
		sub.WaitForAll()
	})
	fg.MakeEdge(A, B)
	fg.MakeEdge(A, C)
	fg.MakeEdge(B, D)
	fg.MakeEdge(C, D)
	A.TryPut(fg.ContinueMsg{})
	G.WaitForAll()
}
`

// Static returns the Figure-2 snippets in paper order (Listings 3, 4, 5).
func Static() []Listing {
	return []Listing{
		{Name: "Cpp-Taskflow", Figure: "Figure 2", Source: Figure2Taskflow},
		{Name: "OpenMP", Figure: "Figure 2", Source: Figure2OpenMP},
		{Name: "TBB", Figure: "Figure 2", Source: Figure2TBB},
	}
}

// Dynamic returns the Figure-4 snippets (Listings 7 and 8).
func Dynamic() []Listing {
	return []Listing{
		{Name: "Cpp-Taskflow", Figure: "Figure 4", Source: Figure4Taskflow},
		{Name: "TBB", Figure: "Figure 4", Source: Figure4TBB},
	}
}

// Package omp is a Go model of the OpenMP 4.5 tasking constructs the
// Cpp-Taskflow paper uses as its weaker baseline (Listing 4): tasks created
// inside a single region, ordered by depend(in:)/depend(out:) clauses over
// named dependency tokens, plus the classic levelized parallel-for idiom
// (paper Section II-D) that OpenMP-based timing analyzers rely on.
//
// The model reproduces OpenMP's structural properties honestly:
//
//   - Static annotation: tasks must be created in an order consistent with
//     a sequential execution — a depend(in:) clause only matches writers
//     created earlier, exactly like the pragma model, so declaring tasks
//     out of topological order silently yields wrong dependencies (the
//     pitfall the paper describes).
//
//   - Centralized bookkeeping: dependency resolution at task creation and
//     completion takes a global lock, and ready tasks feed a single shared
//     queue, modeling libgomp's centralized task bookkeeping that the
//     paper's measurements expose on large irregular graphs.
//
//     p := omp.NewParallel(8)
//     defer p.Close()
//     p.Single(func(s *omp.Scope) {
//     s.Task(f0, omp.Out("a0_a1"))
//     s.Task(f1, omp.In("a0_a1"), omp.Out("a1_a2"))
//     ...
//     }) // implicit barrier at the end of the parallel region
package omp

import (
	"sync"
)

// Dep is one depend(...) clause: a direction plus a token list.
type Dep struct {
	out    bool
	tokens []string
}

// In returns a depend(in: tokens...) clause.
func In(tokens ...string) Dep { return Dep{out: false, tokens: tokens} }

// Out returns a depend(out: tokens...) clause. As in OpenMP, out also
// carries inout semantics against earlier readers.
func Out(tokens ...string) Dep { return Dep{out: true, tokens: tokens} }

// Parallel is a thread team, the counterpart of an omp parallel region
// factory. Teams are reusable across Single and ParallelFor invocations.
type Parallel struct {
	nthreads int

	// shared task queue + global dependency bookkeeping lock (libgomp
	// model: one task lock for the whole team).
	mu     sync.Mutex
	cond   *sync.Cond
	queue  []*ompTask
	closed bool

	outstanding int
	idleCond    *sync.Cond

	wg sync.WaitGroup
}

type ompTask struct {
	fn    func()
	nwait int // unfinished predecessors
	succs []*ompTask
	done  bool
}

// NewParallel creates a team of n threads (n <= 0 selects 1).
func NewParallel(n int) *Parallel {
	if n < 1 {
		n = 1
	}
	p := &Parallel{nthreads: n}
	p.cond = sync.NewCond(&p.mu)
	p.idleCond = sync.NewCond(&p.mu)
	p.wg.Add(n)
	for i := 0; i < n; i++ {
		go p.run()
	}
	return p
}

// NumThreads returns the team size.
func (p *Parallel) NumThreads() int { return p.nthreads }

// Close terminates the team. All submitted work must have completed.
func (p *Parallel) Close() {
	p.mu.Lock()
	p.closed = true
	p.mu.Unlock()
	p.cond.Broadcast()
	p.wg.Wait()
}

func (p *Parallel) run() {
	defer p.wg.Done()
	for {
		p.mu.Lock()
		for len(p.queue) == 0 && !p.closed {
			p.cond.Wait()
		}
		if len(p.queue) == 0 && p.closed {
			p.mu.Unlock()
			return
		}
		t := p.queue[0]
		p.queue[0] = nil
		p.queue = p.queue[1:]
		p.mu.Unlock()

		t.fn()

		// Completion: global lock to release successors (libgomp-style).
		p.mu.Lock()
		t.done = true
		woke := false
		for _, s := range t.succs {
			s.nwait--
			if s.nwait == 0 {
				p.queue = append(p.queue, s)
				woke = true
			}
		}
		p.outstanding--
		if p.outstanding == 0 {
			p.idleCond.Broadcast()
		}
		p.mu.Unlock()
		if woke {
			p.cond.Broadcast()
		}
	}
}

// Scope is the task-creation context inside a Single region. It carries the
// dependency-token table; it is only valid during the Single body, which
// runs on the caller like a #pragma omp single block.
type Scope struct {
	p *Parallel
	// token -> last writer and readers since that write
	lastWriter map[string]*ompTask
	readers    map[string][]*ompTask
	created    int
}

// Single runs body as the task-producing region of the team and then waits
// for every created task to complete (the implicit barrier at the end of
// the parallel region in Listing 4).
func (p *Parallel) Single(body func(*Scope)) {
	s := &Scope{
		p:          p,
		lastWriter: map[string]*ompTask{},
		readers:    map[string][]*ompTask{},
	}
	body(s)
	p.mu.Lock()
	for p.outstanding > 0 {
		p.idleCond.Wait()
	}
	p.mu.Unlock()
}

// Task creates a task with the given depend clauses. Matching OpenMP, an
// in-clause orders the task after the last earlier-created writer of each
// token; an out-clause additionally orders it after earlier readers and
// makes it the new last writer.
func (s *Scope) Task(fn func(), deps ...Dep) {
	t := &ompTask{fn: fn}
	p := s.p

	p.mu.Lock()
	for _, d := range deps {
		for _, tok := range d.tokens {
			if w := s.lastWriter[tok]; w != nil && !w.done {
				w.succs = append(w.succs, t)
				t.nwait++
			}
			if d.out {
				for _, r := range s.readers[tok] {
					if r != t && !r.done {
						r.succs = append(r.succs, t)
						t.nwait++
					}
				}
				s.readers[tok] = nil
				s.lastWriter[tok] = t
			} else {
				s.readers[tok] = append(s.readers[tok], t)
			}
		}
	}
	p.outstanding++
	s.created++
	ready := t.nwait == 0
	if ready {
		p.queue = append(p.queue, t)
	}
	p.mu.Unlock()
	if ready {
		p.cond.Signal()
	}
}

// NumTasks returns the number of tasks created in this scope so far.
func (s *Scope) NumTasks() int { return s.created }

// ParallelFor runs fn over [0, n) with static chunking across the team and
// an implicit barrier at the end — the "#pragma omp parallel for" idiom
// that levelized timing analyzers apply level by level (paper Section
// II-D). chunk <= 0 selects n/nthreads rounding up.
func (p *Parallel) ParallelFor(n int, chunk int, fn func(i int)) {
	if n <= 0 {
		return
	}
	if chunk <= 0 {
		chunk = (n + p.nthreads - 1) / p.nthreads
	}
	var wg sync.WaitGroup
	for beg := 0; beg < n; beg += chunk {
		end := beg + chunk
		if end > n {
			end = n
		}
		beg := beg
		wg.Add(1)
		t := &ompTask{fn: func() {
			defer wg.Done()
			for i := beg; i < end; i++ {
				fn(i)
			}
		}}
		p.mu.Lock()
		p.outstanding++
		p.queue = append(p.queue, t)
		p.mu.Unlock()
		p.cond.Signal()
	}
	wg.Wait()
}

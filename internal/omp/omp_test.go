package omp

import (
	"sync"
	"sync/atomic"
	"testing"
)

type trace struct {
	mu  sync.Mutex
	pos map[string]int
	n   int
}

func newTrace() *trace { return &trace{pos: map[string]int{}} }

func (tr *trace) hit(name string) func() {
	return func() {
		tr.mu.Lock()
		tr.pos[name] = tr.n
		tr.n++
		tr.mu.Unlock()
	}
}

func (tr *trace) before(t *testing.T, a, b string) {
	t.Helper()
	pa, oka := tr.pos[a]
	pb, okb := tr.pos[b]
	if !oka || !okb || pa >= pb {
		t.Fatalf("want %s before %s; pos=%v", a, b, tr.pos)
	}
}

func TestListing4StaticGraph(t *testing.T) {
	// The Figure 2 graph exactly as the paper's OpenMP Listing 4 writes
	// it: tasks declared in sequential-consistent order with depend
	// clauses on edge tokens.
	p := NewParallel(4)
	defer p.Close()
	tr := newTrace()
	p.Single(func(s *Scope) {
		s.Task(tr.hit("a0"), Out("a0_a1"))
		s.Task(tr.hit("b0"), Out("b0_b1"))
		s.Task(tr.hit("a1"), In("a0_a1"), Out("a1_a2", "a1_b2"))
		s.Task(tr.hit("b1"), In("b0_b1"), Out("b1_b2", "b1_a2"))
		s.Task(tr.hit("a2"), In("a1_a2", "b1_a2"), Out("a2_a3"))
		s.Task(tr.hit("b2"), In("a1_b2", "b1_b2"), Out("b2_a3"))
		s.Task(tr.hit("a3"), In("a2_a3", "b2_a3"))
	})
	for _, e := range [][2]string{
		{"a0", "a1"}, {"a1", "a2"}, {"a1", "b2"}, {"a2", "a3"},
		{"b0", "b1"}, {"b1", "b2"}, {"b1", "a2"}, {"b2", "a3"},
	} {
		tr.before(t, e[0], e[1])
	}
	if tr.n != 7 {
		t.Fatalf("ran %d tasks, want 7", tr.n)
	}
}

func TestSingleHasImplicitBarrier(t *testing.T) {
	p := NewParallel(3)
	defer p.Close()
	var n atomic.Int64
	p.Single(func(s *Scope) {
		for i := 0; i < 100; i++ {
			s.Task(func() { n.Add(1) })
		}
		if s.NumTasks() != 100 {
			t.Errorf("NumTasks = %d", s.NumTasks())
		}
	})
	if n.Load() != 100 {
		t.Fatalf("barrier leaked: %d of 100 tasks done", n.Load())
	}
}

func TestOutAfterInAntiDependency(t *testing.T) {
	// A writer with depend(out:) must wait for earlier readers of the
	// token (anti-dependency), matching OpenMP semantics.
	p := NewParallel(4)
	defer p.Close()
	tr := newTrace()
	p.Single(func(s *Scope) {
		s.Task(tr.hit("w1"), Out("x"))
		s.Task(tr.hit("r1"), In("x"))
		s.Task(tr.hit("r2"), In("x"))
		s.Task(tr.hit("w2"), Out("x"))
		s.Task(tr.hit("r3"), In("x"))
	})
	tr.before(t, "w1", "r1")
	tr.before(t, "w1", "r2")
	tr.before(t, "r1", "w2")
	tr.before(t, "r2", "w2")
	tr.before(t, "w2", "r3")
}

func TestDeclarationOrderMatters(t *testing.T) {
	// The static-annotation pitfall from the paper: an in-clause declared
	// BEFORE its writer does not see it, so the "dependency" is silently
	// absent. We assert the model reproduces that behaviour.
	p := NewParallel(2)
	defer p.Close()
	gate := make(chan struct{})
	var readerRanFirst atomic.Bool
	p.Single(func(s *Scope) {
		s.Task(func() { readerRanFirst.Store(true) }, In("x")) // no writer yet
		s.Task(func() { <-gate }, Out("x"))
		close(gate)
	})
	if !readerRanFirst.Load() {
		t.Fatal("reader should have run immediately: no earlier writer existed")
	}
}

func TestChainThroughTokens(t *testing.T) {
	p := NewParallel(4)
	defer p.Close()
	count := 0 // data race unless the chain is sequential
	p.Single(func(s *Scope) {
		for i := 0; i < 500; i++ {
			s.Task(func() { count++ }, Out("chain")) // out-after-out chain
		}
	})
	if count != 500 {
		t.Fatalf("count = %d, want 500 (out-after-out must serialize)", count)
	}
}

func TestIndependentTasksRunConcurrently(t *testing.T) {
	// Two independent tasks rendezvous with each other: this only
	// completes if the team really runs them concurrently.
	p := NewParallel(2)
	defer p.Close()
	a2b := make(chan struct{})
	b2a := make(chan struct{})
	p.Single(func(s *Scope) {
		s.Task(func() { close(a2b); <-b2a })
		s.Task(func() { <-a2b; close(b2a) })
	})
}

func TestParallelFor(t *testing.T) {
	p := NewParallel(4)
	defer p.Close()
	hits := make([]atomic.Int32, 1000)
	p.ParallelFor(1000, 0, func(i int) { hits[i].Add(1) })
	for i := range hits {
		if hits[i].Load() != 1 {
			t.Fatalf("index %d hit %d times", i, hits[i].Load())
		}
	}
}

func TestParallelForChunked(t *testing.T) {
	p := NewParallel(3)
	defer p.Close()
	var sum atomic.Int64
	p.ParallelFor(100, 7, func(i int) { sum.Add(int64(i)) })
	if sum.Load() != 99*100/2 {
		t.Fatalf("sum = %d", sum.Load())
	}
}

func TestParallelForEmpty(t *testing.T) {
	p := NewParallel(2)
	defer p.Close()
	p.ParallelFor(0, 0, func(int) { t.Error("ran on empty range") })
}

func TestParallelForBarrier(t *testing.T) {
	// ParallelFor must not return until all iterations complete.
	p := NewParallel(4)
	defer p.Close()
	for round := 0; round < 20; round++ {
		var n atomic.Int64
		p.ParallelFor(64, 1, func(int) { n.Add(1) })
		if n.Load() != 64 {
			t.Fatalf("round %d: %d of 64 iterations done at return", round, n.Load())
		}
	}
}

func TestReuseTeamAcrossRegions(t *testing.T) {
	p := NewParallel(2)
	defer p.Close()
	var n atomic.Int64
	for r := 0; r < 10; r++ {
		p.Single(func(s *Scope) {
			s.Task(func() { n.Add(1) }, Out("t"))
			s.Task(func() { n.Add(1) }, In("t"))
		})
	}
	if n.Load() != 20 {
		t.Fatalf("ran %d tasks, want 20", n.Load())
	}
	if p.NumThreads() != 2 {
		t.Fatalf("NumThreads = %d", p.NumThreads())
	}
}

func TestLevelizedBarrierPattern(t *testing.T) {
	// The Section II-D idiom: level-by-level ParallelFor with strictly
	// increasing level stamps.
	p := NewParallel(4)
	defer p.Close()
	levels := [][]int{{0, 1}, {2, 3, 4}, {5}}
	stamp := make([]int, 6)
	step := 0
	for _, lv := range levels {
		lv := lv
		step++
		s := step
		p.ParallelFor(len(lv), 1, func(i int) { stamp[lv[i]] = s })
	}
	want := []int{1, 1, 2, 2, 2, 3}
	for i := range want {
		if stamp[i] != want[i] {
			t.Fatalf("stamp = %v, want %v", stamp, want)
		}
	}
}

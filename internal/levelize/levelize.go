// Package levelize computes topological levels of directed acyclic graphs.
//
// Levelization is the classic parallelization idiom of OpenMP-based VLSI
// timing analyzers (paper Section II-D): partition the DAG into levels such
// that every edge goes from a lower to a strictly higher level, then apply
// a parallel-for with a barrier level by level. It is used here by the
// OpenMP traversal baseline and by the OpenTimer-v1-style timing driver.
package levelize

import "fmt"

// Graph is the minimal read-only DAG view required for levelization: the
// number of nodes and an iterator over each node's successors.
type Graph interface {
	NumNodes() int
	Successors(i int, visit func(j int))
}

// Levels partitions the nodes of g into topological levels. level[k]
// contains the node indices whose longest incoming path has length k.
// Returns an error if g contains a cycle.
func Levels(g Graph) ([][]int, error) {
	n := g.NumNodes()
	indeg := make([]int, n)
	for i := 0; i < n; i++ {
		g.Successors(i, func(j int) { indeg[j]++ })
	}
	frontier := make([]int, 0, n)
	for i := 0; i < n; i++ {
		if indeg[i] == 0 {
			frontier = append(frontier, i)
		}
	}
	var levels [][]int
	visited := 0
	for len(frontier) > 0 {
		levels = append(levels, frontier)
		visited += len(frontier)
		var next []int
		for _, u := range frontier {
			g.Successors(u, func(v int) {
				indeg[v]--
				if indeg[v] == 0 {
					next = append(next, v)
				}
			})
		}
		frontier = next
	}
	if visited != n {
		return nil, fmt.Errorf("levelize: graph has a cycle (%d of %d nodes reachable)", visited, n)
	}
	return levels, nil
}

// LevelOf returns per-node level numbers instead of level buckets.
func LevelOf(g Graph) ([]int, error) {
	levels, err := Levels(g)
	if err != nil {
		return nil, err
	}
	out := make([]int, g.NumNodes())
	for k, lv := range levels {
		for _, i := range lv {
			out[i] = k
		}
	}
	return out, nil
}

// Adjacency is a Graph backed by a successor adjacency list.
type Adjacency [][]int

// NumNodes implements Graph.
func (a Adjacency) NumNodes() int { return len(a) }

// Successors implements Graph.
func (a Adjacency) Successors(i int, visit func(int)) {
	for _, j := range a[i] {
		visit(j)
	}
}

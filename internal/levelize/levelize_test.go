package levelize

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestLevelsChain(t *testing.T) {
	g := Adjacency{{1}, {2}, {3}, nil}
	levels, err := Levels(g)
	if err != nil {
		t.Fatal(err)
	}
	if len(levels) != 4 {
		t.Fatalf("len(levels) = %d, want 4", len(levels))
	}
	for k, lv := range levels {
		if len(lv) != 1 || lv[0] != k {
			t.Fatalf("levels = %v", levels)
		}
	}
}

func TestLevelsDiamond(t *testing.T) {
	g := Adjacency{{1, 2}, {3}, {3}, nil}
	levels, err := Levels(g)
	if err != nil {
		t.Fatal(err)
	}
	if len(levels) != 3 || len(levels[1]) != 2 {
		t.Fatalf("levels = %v", levels)
	}
}

func TestLevelsEmpty(t *testing.T) {
	levels, err := Levels(Adjacency{})
	if err != nil || len(levels) != 0 {
		t.Fatalf("Levels(empty) = %v, %v", levels, err)
	}
}

func TestLevelsDisconnected(t *testing.T) {
	g := Adjacency{nil, nil, nil}
	levels, err := Levels(g)
	if err != nil {
		t.Fatal(err)
	}
	if len(levels) != 1 || len(levels[0]) != 3 {
		t.Fatalf("levels = %v", levels)
	}
}

func TestCycleDetected(t *testing.T) {
	g := Adjacency{{1}, {2}, {0}}
	if _, err := Levels(g); err == nil {
		t.Fatal("cycle not detected")
	}
	g2 := Adjacency{{1}, {2}, {1}} // cycle not at a source
	if _, err := Levels(g2); err == nil {
		t.Fatal("cycle behind source not detected")
	}
}

func TestLevelOf(t *testing.T) {
	g := Adjacency{{1, 2}, {3}, {3}, nil}
	lv, err := LevelOf(g)
	if err != nil {
		t.Fatal(err)
	}
	want := []int{0, 1, 1, 2}
	for i := range want {
		if lv[i] != want[i] {
			t.Fatalf("LevelOf = %v, want %v", lv, want)
		}
	}
}

// randomDAG builds a seeded DAG where edges only go forward in index order.
func randomDAG(n int, density float64, seed int64) Adjacency {
	rng := rand.New(rand.NewSource(seed))
	g := make(Adjacency, n)
	for u := 0; u < n; u++ {
		for v := u + 1; v < n; v++ {
			if rng.Float64() < density {
				g[u] = append(g[u], v)
			}
		}
	}
	return g
}

// Property: for any random DAG, every edge crosses to a strictly higher
// level, and every node appears in exactly one level.
func TestQuickLevelsRespectEdges(t *testing.T) {
	f := func(seed int64, sz uint8) bool {
		n := int(sz%60) + 1
		g := randomDAG(n, 0.15, seed)
		lv, err := LevelOf(g)
		if err != nil {
			return false
		}
		for u := 0; u < n; u++ {
			for _, v := range g[u] {
				if lv[u] >= lv[v] {
					return false
				}
			}
		}
		levels, _ := Levels(g)
		count := 0
		for _, l := range levels {
			count += len(l)
		}
		return count == n
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// Property: level numbers equal longest-path depth.
func TestQuickLevelIsLongestPath(t *testing.T) {
	f := func(seed int64, sz uint8) bool {
		n := int(sz%40) + 1
		g := randomDAG(n, 0.2, seed)
		lv, err := LevelOf(g)
		if err != nil {
			return false
		}
		// longest path by DP in index order (edges go forward).
		depth := make([]int, n)
		for u := 0; u < n; u++ {
			for _, v := range g[u] {
				if depth[u]+1 > depth[v] {
					depth[v] = depth[u] + 1
				}
			}
		}
		for i := 0; i < n; i++ {
			if lv[i] != depth[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

package core

// Task is a lightweight handle that wraps a node in a task dependency graph
// (paper Section III-A). Handles are value types; copying a Task aliases the
// same node. The zero Task is empty — a placeholder handle not yet
// associated with a node — which is useful when the callable target cannot
// be decided until later in the program.
type Task struct {
	node *node
}

// IsEmpty reports whether the handle is associated with a node.
func (t Task) IsEmpty() bool { return t.node == nil }

// Name assigns a display name to the task (used by Dump) and returns the
// handle for chaining.
func (t Task) Name(name string) Task {
	t.must("Name")
	t.node.extra().name = name
	return t
}

// NameOf returns the task's assigned name ("" if unnamed).
func (t Task) NameOf() string {
	t.must("NameOf")
	return t.node.nodeName()
}

// Precede adds dependency edges so that t runs before each task in others
// (paper: A.precede(B, C)). It returns t for chaining.
func (t Task) Precede(others ...Task) Task {
	t.must("Precede")
	for _, o := range others {
		o.must("Precede")
		t.node.precede(o.node)
	}
	return t
}

// Succeed adds dependency edges so that t runs after each task in others.
// It returns t for chaining.
func (t Task) Succeed(others ...Task) Task {
	t.must("Succeed")
	for _, o := range others {
		o.must("Succeed")
		o.node.precede(t.node)
	}
	return t
}

// Work assigns (or replaces) the static callable of the task. It is how a
// placeholder acquires its work once the target is known. A condition task
// that already has successors cannot change kind: its out-edges were wired
// weak.
func (t Task) Work(fn func()) Task {
	t.must("Work")
	t.mustKeepKind("Work", false)
	t.node.work = fn
	t.node.errWork, t.node.ctxWork, t.node.subflowWork, t.node.condWork = nil, nil, nil, nil
	return t
}

// WorkSubflow assigns (or replaces) a dynamic-tasking callable: at runtime
// the task receives a *Subflow through which it spawns a child graph using
// the same API as static tasking.
func (t Task) WorkSubflow(fn func(*Subflow)) Task {
	t.must("WorkSubflow")
	t.mustKeepKind("WorkSubflow", false)
	t.node.subflowWork = fn
	t.node.work, t.node.errWork, t.node.ctxWork, t.node.condWork = nil, nil, nil, nil
	return t
}

// WorkCondition assigns (or replaces) a condition callable. Because edges
// leaving a condition task are weak, the kind must be decided before any
// Precede call wires successors; assigning condition work to a task that
// already has successors panics.
func (t Task) WorkCondition(fn func() int) Task {
	t.must("WorkCondition")
	t.mustKeepKind("WorkCondition", true)
	t.node.condWork = fn
	t.node.work, t.node.errWork, t.node.ctxWork, t.node.subflowWork = nil, nil, nil, nil
	return t
}

// mustKeepKind rejects a work assignment that would flip the task between
// condition and non-condition after successors were wired, which would
// leave stale strong/weak edge accounting.
func (t Task) mustKeepKind(op string, wantCondition bool) {
	if t.node.succCount > 0 && t.node.isCondition() != wantCondition {
		panic("core: " + op + " would change the condition-ness of a task that already has successors")
	}
}

// IsPlaceholder reports whether the task currently has no work assigned.
func (t Task) IsPlaceholder() bool {
	t.must("IsPlaceholder")
	return t.node.work == nil && t.node.errWork == nil && t.node.ctxWork == nil &&
		t.node.subflowWork == nil && t.node.condWork == nil
}

// IsCondition reports whether the task is a condition task.
func (t Task) IsCondition() bool {
	t.must("IsCondition")
	return t.node.isCondition()
}

// NumSuccessors returns the number of outgoing dependency edges.
func (t Task) NumSuccessors() int {
	t.must("NumSuccessors")
	return t.node.numSuccessors()
}

// NumDependents returns the number of incoming dependency edges.
func (t Task) NumDependents() int {
	t.must("NumDependents")
	return t.node.numDependents
}

func (t Task) must(op string) {
	if t.node == nil {
		panic("core: " + op + " on an empty Task handle")
	}
}

package core

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestSortSmall(t *testing.T) {
	tf := New(4)
	defer tf.Close()
	items := []int{5, 3, 8, 1, 9, 2, 7}
	Sort(tf, items, func(a, b int) bool { return a < b })
	if err := tf.WaitForAll(); err != nil {
		t.Fatal(err)
	}
	if !sort.IntsAreSorted(items) {
		t.Fatalf("not sorted: %v", items)
	}
}

func TestSortLargeRandom(t *testing.T) {
	tf := New(4)
	defer tf.Close()
	rng := rand.New(rand.NewSource(42))
	items := make([]int, 200000)
	for i := range items {
		items[i] = rng.Int()
	}
	want := append([]int(nil), items...)
	sort.Ints(want)
	Sort(tf, items, func(a, b int) bool { return a < b })
	if err := tf.WaitForAll(); err != nil {
		t.Fatal(err)
	}
	for i := range items {
		if items[i] != want[i] {
			t.Fatalf("mismatch at %d", i)
		}
	}
}

func TestSortEmpty(t *testing.T) {
	tf := New(2)
	defer tf.Close()
	var items []int
	S, T := Sort(tf, items, func(a, b int) bool { return a < b })
	end := tf.Emplace1(func() {})
	T.Precede(end)
	_ = S
	if err := tf.WaitForAll(); err != nil {
		t.Fatal(err)
	}
}

func TestSortSplicesIntoGraph(t *testing.T) {
	tf := New(4)
	defer tf.Close()
	items := make([]int, 50000)
	filled := false
	fillS, fillT := ParallelForIndex(tf, 0, len(items), 1, func(i int) {
		items[i] = len(items) - i
	}, 0)
	sortS, sortT := Sort(tf, items, func(a, b int) bool { return a < b })
	check := tf.Emplace1(func() {
		filled = sort.IntsAreSorted(items)
	})
	fillT.Precede(sortS)
	sortT.Precede(check)
	_ = fillS
	if err := tf.WaitForAll(); err != nil {
		t.Fatal(err)
	}
	if !filled {
		t.Fatal("items not sorted after spliced pipeline")
	}
}

func TestSortStrings(t *testing.T) {
	tf := New(2)
	defer tf.Close()
	items := []string{"pear", "apple", "fig", "banana"}
	Sort(tf, items, func(a, b string) bool { return a < b })
	if err := tf.WaitForAll(); err != nil {
		t.Fatal(err)
	}
	if !sort.StringsAreSorted(items) {
		t.Fatalf("not sorted: %v", items)
	}
}

// Property: Sort agrees with the standard library for any input.
func TestQuickSortMatchesStdlib(t *testing.T) {
	tf := New(4)
	defer tf.Close()
	f := func(xs []int32) bool {
		items := append([]int32(nil), xs...)
		want := append([]int32(nil), xs...)
		sort.Slice(want, func(i, j int) bool { return want[i] < want[j] })
		Sort(tf, items, func(a, b int32) bool { return a < b })
		if err := tf.WaitForAll(); err != nil {
			return false
		}
		for i := range want {
			if items[i] != want[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestMergeHalves(t *testing.T) {
	items := []int{1, 3, 5, 2, 4, 6}
	buf := make([]int, 6)
	mergeHalves(items, buf, 3, func(a, b int) bool { return a < b })
	for i := 0; i < 6; i++ {
		if items[i] != i+1 {
			t.Fatalf("merge wrong: %v", items)
		}
	}
	// Uneven halves.
	items2 := []int{9, 1, 2, 3}
	buf2 := make([]int, 4)
	mergeHalves(items2, buf2, 1, func(a, b int) bool { return a < b })
	if items2[0] != 1 || items2[3] != 9 {
		t.Fatalf("uneven merge wrong: %v", items2)
	}
}

func BenchmarkSortParallel(b *testing.B) {
	tf := New(0)
	defer tf.Close()
	rng := rand.New(rand.NewSource(1))
	base := make([]int, 1<<19)
	for i := range base {
		base[i] = rng.Int()
	}
	items := make([]int, len(base))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		copy(items, base)
		Sort(tf, items, func(a, b int) bool { return a < b })
		if err := tf.WaitForAll(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSortStdlib(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	base := make([]int, 1<<19)
	for i := range base {
		base[i] = rng.Int()
	}
	items := make([]int, len(base))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		copy(items, base)
		sort.Ints(items)
	}
}

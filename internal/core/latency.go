package core

// Latency capture for the executor's per-flow histograms (see
// internal/executor/histogram.go). The executor owns the histograms; this
// file owns the timestamps, because only the node lifecycle knows when an
// execution became ready (queued) and when its body ran.
//
// The seam is cold by construction: prepareRun/dispatch type-assert the
// scheduler to executor.LatencyProvider once per topology and cache the
// returned sink on the topology. When the sink is nil — the executor was
// built without WithLatencyHistograms, or the scheduler is internal/sim —
// the per-execution cost is one nil check and the readyAtNs field is
// never written, keeping the 0-alloc gates and the simulation paths
// byte-identical to before.
//
// Timing points: readyAtNs is stamped wherever an execution is queued
// (run/dispatch sources, dependency release in notifySucc, condition
// re-schedule, subflow spawn, retry resubmission), the body start/end are
// read in runNode, and one RecordLatency call per resolved execution
// feeds all three series (queue-wait, execution, end-to-end). A retry
// attempt whose failure arms another backoff is not recorded — the
// execution is still outstanding — and its resubmission restamps
// readyAtNs, so the eventual record charges the last wait, not the
// backoff sleeps.

import (
	"time"

	"gotaskflow/internal/executor"
)

// latencyEpoch anchors nowNanos. time.Since reads the monotonic clock
// and allocates nothing.
var latencyEpoch = time.Now()

// nowNanos returns monotonic nanoseconds since process-local epoch.
func nowNanos() int64 { return int64(time.Since(latencyEpoch)) }

// noteLatency records one resolved execution of n whose body started at
// startNs. Callers have checked t.lat != nil.
func (t *topology) noteLatency(ctx executor.Context, n *node, startNs int64) {
	t.lat.RecordLatency(ctx.WorkerID(), startNs-n.readyAtNs, nowNanos()-startNs)
}

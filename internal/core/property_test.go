package core

// Randomized-DAG property tests: the honesty layer of the observability
// work. For random graphs (internal/graphgen, the paper's degree-bounded
// generator) across executor sizes, a run must execute every task exactly
// once, the taskflow's RunStats must agree with the graph, and the
// executor's scheduler counters must reconcile — every task the deque
// layer accepted is accounted for by pops, steals, or injection drains.
// CI runs this package under -race.

import (
	"fmt"
	"testing"

	"gotaskflow/internal/executor"
	"gotaskflow/internal/graphgen"
)

func TestPropertyRandomDAGExactlyOnceAndReconciled(t *testing.T) {
	if testing.Short() {
		t.Skip("property sweep skipped in -short mode")
	}
	for _, workers := range []int{1, 2, 4, 8} {
		for _, n := range []int{1, 17, 200} {
			for seed := int64(0); seed < 3; seed++ {
				name := fmt.Sprintf("w%d/n%d/seed%d", workers, n, seed)
				t.Run(name, func(t *testing.T) {
					checkRandomDAG(t, workers, n, seed)
				})
			}
		}
	}
}

func checkRandomDAG(t *testing.T, workers, n int, seed int64) {
	d := graphgen.Random(n, graphgen.Config{Seed: seed})
	e := executor.New(workers, executor.WithMetrics(), executor.WithSeed(seed))
	defer e.Shutdown()
	tf := NewShared(e).CollectRunStats(false)

	execCounts := make([]int32, n)
	tasks := make([]Task, n)
	for i := 0; i < n; i++ {
		i := i
		tasks[i] = tf.Emplace1(func() { execCounts[i]++ })
	}
	for u := 0; u < n; u++ {
		d.Successors(u, func(v int) { tasks[u].Precede(tasks[v]) })
	}

	const runs = 3
	for run := 0; run < runs; run++ {
		if err := tf.Run(); err != nil {
			t.Fatalf("run %d: %v", run, err)
		}
		// Exactly-once: every node executed once more than before. The
		// counters are plain ints — the run's completion orders all task
		// bodies before Run returns, so a torn read here would be a real
		// happens-before bug and -race would flag it.
		for i, c := range execCounts {
			if int(c) != run+1 {
				t.Fatalf("run %d: node %d executed %d times, want %d", run, i, c, run+1)
			}
		}
		rs, ok := tf.LastRunStats()
		if !ok {
			t.Fatal("LastRunStats not ok")
		}
		if rs.Tasks != int64(n) {
			t.Fatalf("run %d: RunStats.Tasks = %d, want graph size %d", run, rs.Tasks, n)
		}
		if rs.Skipped != 0 || rs.Retries != 0 || rs.Errors != 0 || rs.Cancelled {
			t.Fatalf("run %d: clean run reported failures: %+v", run, rs)
		}
	}

	// Metrics reconciliation at quiescence: pushes = pops + steals and
	// injection pushes = injection drains, with every execution accounted.
	snap, ok := e.MetricsSnapshot()
	if !ok {
		t.Fatal("MetricsSnapshot not ok with WithMetrics")
	}
	if err := snap.Reconcile(); err != nil {
		t.Fatalf("metrics reconciliation failed: %v", err)
	}
	if got, want := snap.Total().Executed, uint64(n*runs); got != want {
		t.Fatalf("executor executed %d tasks, want %d", got, want)
	}
}

// TestPropertyRandomDAGDispatch covers the one-shot Dispatch path with the
// same properties, including Future.Stats.
func TestPropertyRandomDAGDispatch(t *testing.T) {
	for _, workers := range []int{2, 4} {
		workers := workers
		t.Run(fmt.Sprintf("w%d", workers), func(t *testing.T) {
			const n = 150
			d := graphgen.Random(n, graphgen.Config{Seed: 42})
			e := executor.New(workers, executor.WithMetrics())
			defer e.Shutdown()
			tf := NewShared(e).CollectRunStats(false)
			execCounts := make([]int32, n)
			tasks := make([]Task, n)
			for i := 0; i < n; i++ {
				i := i
				tasks[i] = tf.Emplace1(func() { execCounts[i]++ })
			}
			for u := 0; u < n; u++ {
				d.Successors(u, func(v int) { tasks[u].Precede(tasks[v]) })
			}
			f := tf.Dispatch()
			if err := f.Get(); err != nil {
				t.Fatal(err)
			}
			for i, c := range execCounts {
				if c != 1 {
					t.Fatalf("node %d executed %d times, want 1", i, c)
				}
			}
			rs, ok := f.Stats()
			if !ok {
				t.Fatal("Future.Stats not ok")
			}
			if rs.Tasks != n {
				t.Fatalf("RunStats.Tasks = %d, want %d", rs.Tasks, n)
			}
			snap, _ := e.MetricsSnapshot()
			if err := snap.Reconcile(); err != nil {
				t.Fatal(err)
			}
			tf.WaitForAll()
		})
	}
}

package core

// Fault-tolerance layer: error-returning and context-aware task variants,
// per-task retry policies, and the plumbing that turns failures into
// cooperative topology cancellation. The paper's model assumes every task
// body succeeds; the successor Taskflow system (arXiv:2004.10908) added
// cancellation/exception support on top of the IPDPS 2019 executor, and
// this file is the Go counterpart. Graphs that use none of these features
// pay nothing on the scheduling hot path beyond two nil checks per task.

import (
	"context"
	"fmt"
	"math/rand"
	"time"

	"gotaskflow/internal/executor"
)

// retryBackoffCap bounds the exponential backoff between retry attempts.
const retryBackoffCap = 30 * time.Second

// retryPolicy is a task's failure-retry configuration: up to max retries
// after the first failure, spaced by capped exponential backoff with
// jitter starting from backoff.
type retryPolicy struct {
	max     int
	backoff time.Duration
}

// delay returns the wait before the attempt-th retry (1-based): the base
// backoff doubled per earlier attempt, capped at retryBackoffCap, with
// uniform jitter in [d/2, d] so synchronized failures do not retry in
// lockstep.
func (rp *retryPolicy) delay(attempt int) time.Duration {
	d := rp.backoff
	if d <= 0 {
		return 0
	}
	for i := 1; i < attempt && d < retryBackoffCap; i++ {
		d *= 2
	}
	if d > retryBackoffCap {
		d = retryBackoffCap
	}
	half := d / 2
	return half + time.Duration(rand.Int63n(int64(half)+1))
}

// Retry gives the task a failure-retry policy: when its body returns an
// error or panics, it re-executes up to n more times, waiting between
// attempts with capped exponential backoff plus jitter starting from
// backoff. The wait happens on a timer, not a worker — the task is
// resubmitted through the executor when the timer fires, so a retrying
// task never parks a worker. Semaphore units are released during the wait
// and re-acquired on resubmission. Retry applies to Emplace, EmplaceErr
// and EmplaceCtx bodies; condition and subflow tasks do not retry.
func (t Task) Retry(n int, backoff time.Duration) Task {
	t.must("Retry")
	if n < 0 {
		panic("core: negative retry count")
	}
	t.node.extra().retry = &retryPolicy{max: n, backoff: backoff}
	return t
}

// WorkErr assigns (or replaces) an error-returning callable: a non-nil
// result fail-fast-cancels the topology (see EmplaceErr).
func (t Task) WorkErr(fn func() error) Task {
	t.must("WorkErr")
	t.mustKeepKind("WorkErr", false)
	t.node.errWork = fn
	t.node.work, t.node.ctxWork, t.node.subflowWork, t.node.condWork = nil, nil, nil, nil
	return t
}

// WorkCtx assigns (or replaces) a context-aware callable (see EmplaceCtx).
func (t Task) WorkCtx(fn func(context.Context) error) Task {
	t.must("WorkCtx")
	t.mustKeepKind("WorkCtx", false)
	t.node.ctxWork = fn
	t.node.work, t.node.errWork, t.node.subflowWork, t.node.condWork = nil, nil, nil, nil
	return t
}

// EmplaceErr creates an error-returning task. A non-nil result (or a
// panic) is recorded and fail-fast-cancels the topology: tasks that have
// not started are skipped, the dependency structure drains so Wait and Get
// never hang, and Future.Get reports every captured error via errors.Join.
func (tf *Taskflow) EmplaceErr(fn func() error) Task {
	return Task{tf.present.emplaceErr(fn)}
}

// EmplaceCtx creates a context-aware, error-returning task. The body
// receives a context that is cancelled when the topology fails, is
// cancelled, or exceeds the deadline of RunContext/DispatchContext, so
// long-running bodies can stop cooperatively mid-flight.
func (tf *Taskflow) EmplaceCtx(fn func(context.Context) error) Task {
	return Task{tf.present.emplaceCtx(fn)}
}

// EmplaceErr creates an error-returning task in the subflow; see
// Taskflow.EmplaceErr.
func (sf *Subflow) EmplaceErr(fn func() error) Task {
	return Task{sf.g.emplaceErr(fn)}
}

// EmplaceCtx creates a context-aware task in the subflow; see
// Taskflow.EmplaceCtx.
func (sf *Subflow) EmplaceCtx(fn func(context.Context) error) Task {
	return Task{sf.g.emplaceCtx(fn)}
}

// execSubmitter adapts a Scheduler to the submitter interface used by
// semaphore admission and retry resubmission. Scheduler.Submit returns an
// error only after Shutdown; admission hand-offs are best-effort there
// (the topology is already unable to progress). The wrapper is two words
// (an interface value), so it is boxed once per topology (topology.sub)
// rather than per call.
type execSubmitter struct{ e executor.Scheduler }

func (s execSubmitter) Submit(r *executor.Runnable) { _ = s.e.Submit(r) }

// flowSubmitter routes the same hand-offs through a multi-tenant flow's
// priority queue instead of the plain injection shards, so a flow-bound
// topology's retries and semaphore admissions inherit its priority class.
// Flow.Submit never sheds pre-admitted work (it fails only at shutdown),
// so a mid-graph resubmission cannot be dropped and strand the topology.
type flowSubmitter struct{ f executor.Flow }

func (s flowSubmitter) Submit(r *executor.Runnable) { _ = s.f.Submit(r) }

// submitOne routes one external (off-worker) submission through the
// topology's flow when bound, the plain injection queue otherwise.
func (t *topology) submitOne(r *executor.Runnable) error {
	if f := t.flow; f != nil {
		return f.Submit(r)
	}
	return t.exec.Submit(r)
}

// submitBatch is submitOne for a source batch.
func (t *topology) submitBatch(rs []*executor.Runnable) error {
	if f := t.flow; f != nil {
		return f.SubmitBatch(rs)
	}
	return t.exec.SubmitBatch(rs)
}

// resubmitAfter re-executes n after d through a scheduler timer and the
// injection queue — the waiting task holds no worker. The execution stays
// counted in pending, keeping the topology open until the retry resolves.
// The timer goes through Scheduler.AfterFunc, which gives it a bounded
// lifetime: if the scheduler shuts down while the backoff runs, the timer
// is resolved during Shutdown and the submission below fails with
// ErrShutdown, so the topology completes promptly instead of hanging on
// an execution that can never run (and no armed wall-clock timer outlives
// the pool). Under internal/sim the same seam is a virtual clock: the
// backoff fires instantly, in seed-controlled order.
func (t *topology) resubmitAfter(d time.Duration, n *node) {
	submit := func() {
		t.exec.TraceExternal(executor.EvRetryFire, n.Describe(), uint64(n.ext.attempts))
		if t.exec.Stopped() {
			// Dead pool: do not touch the semaphores (admission could park
			// the node forever — no release would ever come). Resolve the
			// execution so waiters unblock.
			t.fail(fmt.Errorf("core: retry of task %q: %w", n.nodeName(), executor.ErrShutdown))
			if t.pending.Add(-1) == 0 {
				t.finish()
			}
			return
		}
		// The retry's end-to-end window starts at this resubmission, not at
		// the original submission: the backoff sleep is policy, not queue
		// wait (latency.go).
		if t.lat != nil {
			n.readyAtNs = nowNanos()
		}
		if n.hasAcquires() && !t.admit(t.sub, n) {
			return // parked; a semaphore release will submit it
		}
		if err := t.submitOne(n.ref()); err != nil {
			// The executor shut down between the check above and the
			// submission: same resolution as the dead-pool path.
			t.fail(fmt.Errorf("core: retry of task %q: %w", n.nodeName(), err))
			if t.pending.Add(-1) == 0 {
				t.finish()
			}
		}
	}
	if d <= 0 {
		submit()
		return
	}
	t.exec.AfterFunc(d, submit)
}

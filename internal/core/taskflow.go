package core

import (
	"context"
	"errors"
	"time"

	"gotaskflow/internal/executor"
)

// ErrNoSource is reported when a non-empty graph has no task without
// dependencies — a guaranteed dependency cycle that could never start.
var ErrNoSource = errors.New("core: dispatched graph has no source task (dependency cycle)")

// ErrCyclic is reported by Validate when the present graph contains a
// dependency cycle.
var ErrCyclic = errors.New("core: task dependency graph contains a cycle")

// ErrCancelled is reported by Future.Get after Future.Cancel.
var ErrCancelled = errors.New("core: topology cancelled")

// FlowBuilder is the unified graph-construction interface shared by static
// tasking (*Taskflow) and dynamic tasking (*Subflow) — the same API set
// applies to both (paper Section III-D).
type FlowBuilder interface {
	// Emplace creates one task per callable and returns the handles in
	// order (paper: tf.emplace(...)).
	Emplace(fns ...func()) []Task
	// EmplaceSubflow creates a dynamic task; at runtime fn receives a
	// *Subflow through which it spawns a child task graph.
	EmplaceSubflow(fn func(*Subflow)) Task
	// EmplaceErr creates an error-returning task; a non-nil result
	// fail-fast-cancels the topology (see Taskflow.EmplaceErr).
	EmplaceErr(fn func() error) Task
	// EmplaceCtx creates a context-aware, error-returning task; the body
	// receives a context cancelled on topology failure, cancellation, or
	// deadline (see Taskflow.EmplaceCtx).
	EmplaceCtx(fn func(context.Context) error) Task
	// EmplaceCondition creates a condition task. At runtime fn returns
	// the index of the successor to signal (in Precede order); any other
	// index signals nothing. Edges leaving a condition task are weak:
	// they do not count toward successors' dependency joins, which is
	// what lets condition tasks express branches and loops.
	EmplaceCondition(fn func() int) Task
	// Placeholder creates a task with no work assigned; work can be bound
	// later through Task.Work or Task.WorkSubflow.
	Placeholder() Task

	// workerCount reports the worker count of the executor that will run
	// the flow (0 when unknown). The built-in algorithms use it to
	// auto-partition work into chunks proportional to the actual pool
	// size rather than GOMAXPROCS.
	workerCount() int
}

// Taskflow is the main entry of the library: the place to create task
// dependency graphs and dispatch them to an executor (paper Section III-A).
type Taskflow struct {
	name    string
	exec    executor.Scheduler
	ownExec bool

	present    *graph
	topologies []*topology

	// Reusable execution state behind Run/RunN: a topology whose done
	// channel is signalled (not closed) at quiescence and a pre-built
	// source batch, so steady-state re-runs of an unchanged graph are
	// allocation-free.
	runTopo       *topology
	runSources    []*executor.Runnable
	runSemSources []*node

	// statsEnabled/statsTiming configure per-run statistics collection for
	// topologies created after CollectRunStats; see stats.go.
	statsEnabled bool
	statsTiming  bool

	// pprofLabels configures runtime/pprof label propagation around task
	// bodies for subsequently created topologies; see pprof.go.
	pprofLabels bool

	// flow is the multi-tenant flow subsequently dispatched/run topologies
	// bind to (nil = unbound); see SetFlow.
	flow executor.Flow
}

var _ FlowBuilder = (*Taskflow)(nil)

// New creates a Taskflow with its own executor of n workers (n <= 0 means
// GOMAXPROCS). Call Close when done to stop the executor.
func New(n int) *Taskflow {
	return &Taskflow{
		exec:    executor.New(n),
		ownExec: true,
		present: &graph{},
	}
}

// NewShared creates a Taskflow that shares s with other taskflows — the
// paper's shareable executor, which facilitates modular composition while
// avoiding thread over-subscription (Section III-E). s is any scheduler
// implementing the dispatch seam: the real work-stealing *executor.Executor,
// or internal/sim's deterministic SimExecutor for seed-replayable schedule
// exploration. Close does not stop a shared scheduler.
func NewShared(s executor.Scheduler) *Taskflow {
	return &Taskflow{exec: s, present: &graph{}}
}

// Close shuts down the executor if this Taskflow owns it. It does not wait
// for dispatched topologies; call WaitForAll first.
func (tf *Taskflow) Close() {
	if tf.ownExec {
		tf.exec.Shutdown()
	}
}

// Executor returns the underlying scheduler (shared or owned) — the real
// executor, or the simulation executor under internal/sim.
func (tf *Taskflow) Executor() executor.Scheduler { return tf.exec }

// workerCount implements FlowBuilder.
func (tf *Taskflow) workerCount() int { return tf.exec.NumWorkers() }

// SetName names the taskflow for DOT dumps. Returns tf for chaining.
func (tf *Taskflow) SetName(name string) *Taskflow {
	tf.name = name
	return tf
}

// SetFlow binds subsequently dispatched or run topologies to a
// multi-tenant flow (executor.Flow, created by Executor.NewFlow or
// sim.SimExecutor.NewFlow on a shared scheduler). A bound topology:
//
//   - reserves its task count against the flow's in-flight quota at
//     dispatch/run time — Dispatch's Future resolves immediately with
//     executor.ErrAdmission / executor.ErrOverloaded (and Run returns it)
//     when the flow refuses the reservation, charging nothing;
//   - submits its sources, retries and semaphore hand-offs through the
//     flow's priority queue, so the executor drains them in class
//     priority and weighted round-robin order;
//   - returns the reservation exactly once when the topology finishes.
//
// nil unbinds. Returns tf for chaining.
func (tf *Taskflow) SetFlow(f executor.Flow) *Taskflow {
	tf.flow = f
	tf.invalidateRun()
	return tf
}

// Emplace creates one task per callable in the present graph and returns
// their handles in order.
func (tf *Taskflow) Emplace(fns ...func()) []Task {
	ts := make([]Task, len(fns))
	for i, fn := range fns {
		ts[i] = Task{tf.present.emplaceWork(fn)}
	}
	return ts
}

// Emplace1 creates a single task; a convenience over Emplace for the
// common one-callable case.
func (tf *Taskflow) Emplace1(fn func()) Task {
	return Task{tf.present.emplaceWork(fn)}
}

// EmplaceSubflow creates a dynamic task (paper Section III-D).
func (tf *Taskflow) EmplaceSubflow(fn func(*Subflow)) Task {
	return Task{tf.present.emplaceSubflow(fn)}
}

// EmplaceCondition creates a condition task whose result selects the
// successor branch to run; see FlowBuilder.EmplaceCondition.
func (tf *Taskflow) EmplaceCondition(fn func() int) Task {
	return Task{tf.present.emplaceCondition(fn)}
}

// Placeholder creates a task with no work assigned.
func (tf *Taskflow) Placeholder() Task {
	return Task{tf.present.emplacePlaceholder()}
}

// NumNodes returns the number of tasks in the present (not yet dispatched)
// graph.
func (tf *Taskflow) NumNodes() int { return tf.present.len() }

// NumTopologies returns the number of dispatched, not yet reclaimed
// topologies.
func (tf *Taskflow) NumTopologies() int { return len(tf.topologies) }

// Validate checks the present graph for strong dependency cycles (Kahn's
// algorithm over strong edges). Cycles through condition tasks are legal —
// that is how task-graph loops are expressed — so weak edges are ignored.
// Dispatch and Run perform the same check and refuse cyclic graphs with a
// descriptive error instead of deadlocking the waiters. Returns nil or an
// error naming the tasks on one cycle, wrapping ErrCyclic.
func (tf *Taskflow) Validate() error {
	return findCycleError(tf.present)
}

// Dispatch moves the present graph into a topology, schedules it for
// execution without blocking, and returns a Future to its completion
// status. The Taskflow is left with a fresh empty graph (paper Listing 6).
// A strongly cyclic graph is not scheduled at all: the Future completes
// immediately and Get reports a descriptive error naming the cycle.
func (tf *Taskflow) Dispatch() *Future {
	t := tf.dispatch(nil)
	return &Future{t}
}

// DispatchContext is Dispatch bound to ctx: when ctx is cancelled or its
// deadline expires, the topology is cooperatively cancelled — tasks that
// have not started are skipped, the graph drains, and Future.Get reports
// ctx.Err() among the captured errors. Context-aware tasks observe the
// cancellation mid-flight through their body context.
func (tf *Taskflow) DispatchContext(ctx context.Context) *Future {
	t := tf.dispatch(ctx)
	return &Future{t}
}

// SilentDispatch dispatches the present graph, ignoring the execution
// status.
func (tf *Taskflow) SilentDispatch() {
	tf.dispatch(nil)
}

func (tf *Taskflow) dispatch(ctx context.Context) *topology {
	g := tf.present
	tf.present = &graph{}
	tf.invalidateRun()
	t := &topology{
		graph:       g,
		exec:        tf.exec,
		done:        make(chan struct{}),
		flowName:    tf.name,
		pprofLabels: tf.pprofLabels,
	}
	t.sub = execSubmitter{tf.exec}
	if tf.statsEnabled {
		t.stats = &topoStats{timing: tf.statsTiming}
	}
	tf.topologies = append(tf.topologies, t)

	if g.len() == 0 {
		close(t.done)
		return t
	}

	numSources := 0
	hasCtx := false
	for _, n := range g.nodes {
		n.topo = t
		n.parent = nil
		n.join.Store(int32(n.numDependents))
		if n.ctxWork != nil {
			hasCtx = true
		}
		if n.isSource() {
			numSources++
		}
	}
	if numSources == 0 {
		t.setErr(ErrNoSource)
		close(t.done)
		return t
	}
	// A strong cycle behind the sources would never drain; refuse it with
	// a descriptive error instead of deadlocking the waiters.
	if err := findCycleError(g); err != nil {
		t.setErr(err)
		close(t.done)
		return t
	}
	// Admission control: a flow-bound topology reserves its task count
	// before anything is submitted. Admit is all-or-nothing, so a refused
	// dispatch charged nothing and finish (never reached on this path —
	// done closes here) has nothing to release.
	if f := tf.flow; f != nil {
		if err := f.Admit(g.len()); err != nil {
			t.setErr(err)
			close(t.done)
			return t
		}
		t.flow = f
		t.flowReserved = g.len()
		t.sub = flowSubmitter{f}
	}
	if lp, ok := tf.exec.(executor.LatencyProvider); ok {
		t.lat = lp.LatencySink(tf.flow)
	}
	if ctx != nil || hasCtx {
		t.ensureCtx(ctx)
	}
	if ctx != nil && ctx.Done() != nil {
		stop := context.AfterFunc(ctx, func() { t.cancelWith(0, ctx.Err()) })
		go func() { <-t.done; stop() }()
	}
	if st := t.stats; st != nil {
		st.start = time.Now() // dispatched nodes are fresh; no counter reset needed
	}
	// pending counts outstanding executions; sources are pre-counted
	// before submission so no execution can retire against a zero count.
	t.pending.Store(int64(numSources))
	// Sources guarded by semaphores are admitted or parked; the rest
	// start as a batch.
	var readyNs int64
	if t.lat != nil {
		readyNs = nowNanos()
	}
	runnable := make([]*executor.Runnable, 0, numSources)
	for _, n := range g.nodes {
		if !n.isSource() {
			continue
		}
		if t.lat != nil {
			n.readyAtNs = readyNs
		}
		if n.hasAcquires() && !t.admit(t.sub, n) {
			continue
		}
		runnable = append(runnable, n.ref())
	}
	if err := t.submitBatch(runnable); err != nil {
		// The executor was already shut down: nothing was accepted. Undo
		// the batch's pending charge so the topology can complete and
		// waiters observe the error instead of hanging (finish also
		// returns the flow reservation, exactly once).
		t.setErr(err)
		if t.pending.Add(-int64(len(runnable))) == 0 {
			t.finish()
		}
	}
	return t
}

// WaitForAll dispatches the present graph (if non-empty) and blocks until
// every dispatched topology finishes. Completed topologies are reclaimed;
// it returns every captured task error across them aggregated with
// errors.Join (panics are converted to errors).
func (tf *Taskflow) WaitForAll() error {
	if tf.present.len() > 0 {
		tf.dispatch(nil)
	}
	var errs []error
	for _, t := range tf.topologies {
		<-t.done
		if err := t.joinedErr(); err != nil {
			errs = append(errs, err)
		}
	}
	tf.topologies = tf.topologies[:0]
	return joinErrs(errs)
}

package core

// Synchronous re-run support — the Go counterpart of Cpp-Taskflow's
// executor.run(taskflow, N) steady-state mode. Unlike Dispatch, Run does
// not consume the present graph: the same graph executes again and again,
// which is the shape of iterative workloads (timing propagation sweeps,
// training epochs, simulation steps). Because every node carries its own
// intrusive task slot and the reusable topology and source batch are built
// once, steady-state re-runs allocate nothing — as long as the graph uses
// no context/deadline features, which by nature materialize a fresh
// context per run.

import (
	"context"

	"gotaskflow/internal/executor"
)

// Run executes the present graph once and blocks until it finishes,
// returning every captured task error joined (panics are converted). The
// graph is NOT consumed: calling Run again re-executes it, and
// steady-state re-runs of an unchanged graph are allocation-free. Adding
// tasks between runs is allowed (the run state is rebuilt); mixing Run
// with Dispatch is allowed (Dispatch consumes the graph as usual). Run
// must not be called concurrently with itself or with graph construction.
func (tf *Taskflow) Run() error {
	return tf.run(nil)
}

// RunContext is Run bound to ctx: when ctx is cancelled or its deadline
// expires mid-run, the topology is cooperatively cancelled — tasks that
// have not started are skipped, the graph drains, and the returned error
// includes ctx.Err(). Context-aware tasks observe the cancellation through
// their body context. A ctx that is already done fails the run without
// executing anything.
func (tf *Taskflow) RunContext(ctx context.Context) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	return tf.run(ctx)
}

// RunN executes the present graph n times sequentially, stopping at the
// first error.
func (tf *Taskflow) RunN(n int) error {
	for i := 0; i < n; i++ {
		if err := tf.Run(); err != nil {
			return err
		}
	}
	return nil
}

func (tf *Taskflow) run(ctx context.Context) error {
	g := tf.present
	if g.len() == 0 {
		return nil
	}
	t := tf.runTopo
	if t == nil || t.graph != g || len(tf.runSources)+len(tf.runSemSources) == 0 ||
		tf.runStale() {
		var err error
		if t, err = tf.prepareRun(); err != nil {
			return err
		}
	}

	// Admission control: a flow-bound run reserves the graph's task count
	// for the duration of this run; finish returns it before signalling
	// done. A refused run (quota, watermark, shutdown) charged nothing and
	// executed nothing — the caller owns the retry/backoff policy.
	if f := t.flow; f != nil {
		if err := f.Admit(t.flowReserved); err != nil {
			return err
		}
	}

	// Per-run reset. The run generation advances so a deadline callback
	// left over from a previous run cannot cancel this one, and a fresh
	// derived context is materialized when ctx tasks or a caller context
	// need one.
	t.errMu.Lock()
	t.errs = t.errs[:0]
	gen := t.gen.Add(1)
	t.ctx, t.cancelCtx = nil, nil
	if t.hasCtx || ctx != nil {
		parent := ctx
		if parent == nil {
			parent = context.Background()
		}
		t.ctx, t.cancelCtx = context.WithCancel(parent)
	}
	t.errMu.Unlock()
	t.cancelled.Store(false)

	var stopWatch func() bool
	if ctx != nil && ctx.Done() != nil {
		stopWatch = context.AfterFunc(ctx, func() { t.cancelWith(gen, ctx.Err()) })
	}

	// Join counters must be re-armed for every node: a node that executed
	// last run was already re-armed at schedule time, but an untaken
	// condition branch retains a partial count. The per-node stat counters
	// reset in the same O(n) sweep when stats are on.
	statsOn := t.stats != nil
	latOn := t.lat != nil
	var readyNs int64
	if latOn {
		// One clock read stamps every node: sources are genuinely ready
		// now, and non-sources are restamped at dependency release.
		readyNs = nowNanos()
	}
	for _, n := range g.nodes {
		n.topo = t
		n.parent = nil
		n.join.Store(int32(n.numDependents))
		if latOn {
			n.readyAtNs = readyNs
		}
		if statsOn {
			n.execCount.Store(0)
			n.execDurNs.Store(0)
		}
	}
	if statsOn {
		t.stats.reset()
	}
	t.pending.Store(int64(len(tf.runSources) + len(tf.runSemSources)))

	// Semaphore-guarded sources are admitted or parked individually (rare
	// path); the rest start as one batch.
	for _, n := range tf.runSemSources {
		if t.admit(t.sub, n) {
			if err := t.submitOne(n.ref()); err != nil {
				t.setErr(err)
				if t.pending.Add(-1) == 0 {
					t.finish()
				}
			}
		}
	}
	if err := t.submitBatch(tf.runSources); err != nil {
		// The executor was already shut down: the batch was rejected
		// whole. Undo its pending charge so the run completes with the
		// error instead of hanging.
		t.setErr(err)
		if t.pending.Add(-int64(len(tf.runSources))) == 0 {
			t.finish()
		}
	}
	<-t.done
	if stopWatch != nil {
		stopWatch()
	}
	return t.joinedErr()
}

// runStale reports whether tasks were added to the present graph since the
// run state was built.
func (tf *Taskflow) runStale() bool {
	return tf.runTopo == nil || tf.runTopo.builtLen != tf.present.len()
}

// prepareRun (re)builds the reusable topology and the pre-partitioned
// source lists for the present graph, refusing strongly cyclic graphs.
func (tf *Taskflow) prepareRun() (*topology, error) {
	g := tf.present
	t := &topology{
		graph:       g,
		exec:        tf.exec,
		reusable:    true,
		done:        make(chan struct{}, 1),
		builtLen:    g.len(),
		flowName:    tf.name,
		pprofLabels: tf.pprofLabels,
	}
	t.sub = execSubmitter{tf.exec}
	if f := tf.flow; f != nil {
		t.flow = f
		t.flowReserved = g.len()
		t.sub = flowSubmitter{f}
	}
	if lp, ok := tf.exec.(executor.LatencyProvider); ok {
		t.lat = lp.LatencySink(tf.flow)
	}
	if tf.statsEnabled {
		t.stats = &topoStats{timing: tf.statsTiming}
	}
	tf.runSources = tf.runSources[:0]
	tf.runSemSources = tf.runSemSources[:0]
	for _, n := range g.nodes {
		if n.ctxWork != nil {
			t.hasCtx = true
		}
		if !n.isSource() {
			continue
		}
		if n.hasAcquires() {
			tf.runSemSources = append(tf.runSemSources, n)
		} else {
			tf.runSources = append(tf.runSources, n.ref())
		}
	}
	if len(tf.runSources)+len(tf.runSemSources) == 0 {
		tf.invalidateRun()
		return nil, ErrNoSource
	}
	if err := findCycleError(g); err != nil {
		tf.invalidateRun()
		return nil, err
	}
	tf.runTopo = t
	return t, nil
}

// invalidateRun drops the cached run state (the present graph moved or
// changed shape).
func (tf *Taskflow) invalidateRun() {
	tf.runTopo = nil
	tf.runSources = tf.runSources[:0]
	tf.runSemSources = tf.runSemSources[:0]
}

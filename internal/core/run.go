package core

// Synchronous re-run support — the Go counterpart of Cpp-Taskflow's
// executor.run(taskflow, N) steady-state mode. Unlike Dispatch, Run does
// not consume the present graph: the same graph executes again and again,
// which is the shape of iterative workloads (timing propagation sweeps,
// training epochs, simulation steps). Because every node carries its own
// intrusive task slot and the reusable topology and source batch are built
// once, steady-state re-runs allocate nothing.

// Run executes the present graph once and blocks until it finishes,
// returning the first task error (panics are converted). The graph is NOT
// consumed: calling Run again re-executes it, and steady-state re-runs of
// an unchanged graph are allocation-free. Adding tasks between runs is
// allowed (the run state is rebuilt); mixing Run with Dispatch is allowed
// (Dispatch consumes the graph as usual). Run must not be called
// concurrently with itself or with graph construction.
func (tf *Taskflow) Run() error {
	g := tf.present
	if g.len() == 0 {
		return nil
	}
	t := tf.runTopo
	if t == nil || t.graph != g || len(tf.runSources)+len(tf.runSemSources) == 0 ||
		tf.runStale() {
		var err error
		if t, err = tf.prepareRun(); err != nil {
			return err
		}
	}

	// Per-run reset. Join counters must be re-armed for every node: a
	// node that executed last run was already re-armed at schedule time,
	// but an untaken condition branch retains a partial count.
	t.errMu.Lock()
	t.err = nil
	t.errMu.Unlock()
	t.cancelled.Store(false)
	for _, n := range g.nodes {
		n.topo = t
		n.parent = nil
		n.join.Store(int32(n.numDependents))
	}
	t.pending.Store(int64(len(tf.runSources) + len(tf.runSemSources)))

	// Semaphore-guarded sources are admitted or parked individually (rare
	// path); the rest start as one batch.
	for _, n := range tf.runSemSources {
		if t.admit(tf.exec, n) {
			tf.exec.Submit(n.ref())
		}
	}
	tf.exec.SubmitBatch(tf.runSources)
	<-t.done

	t.errMu.Lock()
	err := t.err
	t.errMu.Unlock()
	return err
}

// RunN executes the present graph n times sequentially, stopping at the
// first error.
func (tf *Taskflow) RunN(n int) error {
	for i := 0; i < n; i++ {
		if err := tf.Run(); err != nil {
			return err
		}
	}
	return nil
}

// runStale reports whether tasks were added to the present graph since the
// run state was built.
func (tf *Taskflow) runStale() bool {
	return tf.runTopo == nil || tf.runTopo.builtLen != tf.present.len()
}

// prepareRun (re)builds the reusable topology and the pre-partitioned
// source lists for the present graph.
func (tf *Taskflow) prepareRun() (*topology, error) {
	g := tf.present
	t := &topology{
		graph:    g,
		exec:     tf.exec,
		reusable: true,
		done:     make(chan struct{}, 1),
		builtLen: g.len(),
	}
	tf.runSources = tf.runSources[:0]
	tf.runSemSources = tf.runSemSources[:0]
	for _, n := range g.nodes {
		if !n.isSource() {
			continue
		}
		if n.hasAcquires() {
			tf.runSemSources = append(tf.runSemSources, n)
		} else {
			tf.runSources = append(tf.runSources, n.ref())
		}
	}
	if len(tf.runSources)+len(tf.runSemSources) == 0 {
		tf.invalidateRun()
		return nil, ErrNoSource
	}
	tf.runTopo = t
	return t, nil
}

// invalidateRun drops the cached run state (the present graph moved or
// changed shape).
func (tf *Taskflow) invalidateRun() {
	tf.runTopo = nil
	tf.runSources = tf.runSources[:0]
	tf.runSemSources = tf.runSemSources[:0]
}

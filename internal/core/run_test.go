package core

import (
	"errors"
	"strings"
	"sync/atomic"
	"testing"
)

func TestRunExecutesGraph(t *testing.T) {
	tf := New(4)
	defer tf.Close()
	var n atomic.Int64
	a := tf.Emplace1(func() { n.Add(1) }).Name("a")
	b := tf.Emplace1(func() { n.Add(1) }).Name("b")
	c := tf.Emplace1(func() { n.Add(1) }).Name("c")
	a.Precede(b)
	b.Precede(c)
	if err := tf.Run(); err != nil {
		t.Fatal(err)
	}
	if n.Load() != 3 {
		t.Fatalf("after one run: n = %d, want 3", n.Load())
	}
	// Run does not consume the graph: it executes again.
	if err := tf.Run(); err != nil {
		t.Fatal(err)
	}
	if n.Load() != 6 {
		t.Fatalf("after two runs: n = %d, want 6", n.Load())
	}
	if tf.NumNodes() != 3 {
		t.Fatalf("NumNodes = %d after Run, want 3 (graph not consumed)", tf.NumNodes())
	}
}

func TestRunN(t *testing.T) {
	tf := New(2)
	defer tf.Close()
	var n atomic.Int64
	tf.Emplace1(func() { n.Add(1) })
	if err := tf.RunN(50); err != nil {
		t.Fatal(err)
	}
	if n.Load() != 50 {
		t.Fatalf("RunN(50): n = %d", n.Load())
	}
}

func TestRunEmptyGraph(t *testing.T) {
	tf := New(1)
	defer tf.Close()
	if err := tf.Run(); err != nil {
		t.Fatalf("Run on empty graph: %v", err)
	}
}

func TestRunNoSource(t *testing.T) {
	tf := New(2)
	defer tf.Close()
	a := tf.Emplace1(func() {})
	b := tf.Emplace1(func() {})
	a.Precede(b)
	b.Precede(a) // cycle: no source
	if err := tf.Run(); !errors.Is(err, ErrNoSource) {
		t.Fatalf("Run on cyclic graph: err = %v, want ErrNoSource", err)
	}
}

func TestRunRebuildsAfterAddingTasks(t *testing.T) {
	tf := New(2)
	defer tf.Close()
	var a, b atomic.Int64
	tf.Emplace1(func() { a.Add(1) })
	if err := tf.Run(); err != nil {
		t.Fatal(err)
	}
	// Growing the graph invalidates the cached run state.
	tf.Emplace1(func() { b.Add(1) })
	if err := tf.Run(); err != nil {
		t.Fatal(err)
	}
	if a.Load() != 2 || b.Load() != 1 {
		t.Fatalf("a = %d, b = %d; want 2, 1", a.Load(), b.Load())
	}
}

func TestRunPanicRecovered(t *testing.T) {
	tf := New(2)
	defer tf.Close()
	boom := true
	tf.Emplace1(func() {
		if boom {
			panic("kaboom")
		}
	}).Name("volatile")
	err := tf.Run()
	if err == nil || !strings.Contains(err.Error(), "kaboom") {
		t.Fatalf("Run with panicking task: err = %v", err)
	}
	// The error does not stick to the next run.
	boom = false
	if err := tf.Run(); err != nil {
		t.Fatalf("second run: %v", err)
	}
}

func TestRunConditionLoop(t *testing.T) {
	// A condition task loops back on itself: join counters must re-arm
	// correctly both within a run and across runs.
	tf := New(2)
	defer tf.Close()
	var body atomic.Int64
	i := 0
	init := tf.Emplace1(func() { i = 0 })
	work := tf.Emplace1(func() { body.Add(1); i++ })
	cond := tf.EmplaceCondition(func() int {
		if i < 5 {
			return 0 // loop back to work
		}
		return 1 // exit
	})
	exit := tf.Emplace1(func() {})
	init.Precede(work)
	work.Precede(cond)
	cond.Precede(work, exit)
	for r := 1; r <= 3; r++ {
		if err := tf.Run(); err != nil {
			t.Fatal(err)
		}
		if body.Load() != int64(5*r) {
			t.Fatalf("run %d: body ran %d times, want %d", r, body.Load(), 5*r)
		}
	}
}

func TestRunSubflow(t *testing.T) {
	tf := New(4)
	defer tf.Close()
	var n atomic.Int64
	tf.EmplaceSubflow(func(sf *Subflow) {
		a := sf.Emplace1(func() { n.Add(1) })
		b := sf.Emplace1(func() { n.Add(1) })
		a.Precede(b)
	})
	if err := tf.RunN(4); err != nil {
		t.Fatal(err)
	}
	if n.Load() != 8 {
		t.Fatalf("subflow body ran %d times, want 8", n.Load())
	}
}

func TestRunWithSemaphoreSource(t *testing.T) {
	tf := New(4)
	defer tf.Close()
	sem := NewSemaphore(1)
	var inside, peak atomic.Int64
	for i := 0; i < 4; i++ {
		task := tf.Emplace1(func() {
			v := inside.Add(1)
			for {
				p := peak.Load()
				if v <= p || peak.CompareAndSwap(p, v) {
					break
				}
			}
			inside.Add(-1)
		})
		task.Acquire(sem)
		task.Release(sem)
	}
	if err := tf.RunN(3); err != nil {
		t.Fatal(err)
	}
	if peak.Load() != 1 {
		t.Fatalf("semaphore admitted %d concurrent tasks, want 1", peak.Load())
	}
}

func TestRunThenDispatch(t *testing.T) {
	tf := New(2)
	defer tf.Close()
	var n atomic.Int64
	tf.Emplace1(func() { n.Add(1) })
	if err := tf.Run(); err != nil {
		t.Fatal(err)
	}
	tf.SilentDispatch() // consumes the graph
	if err := tf.WaitForAll(); err != nil {
		t.Fatal(err)
	}
	if n.Load() != 2 {
		t.Fatalf("n = %d, want 2", n.Load())
	}
	// Graph was consumed by Dispatch; Run now sees an empty graph.
	if err := tf.Run(); err != nil {
		t.Fatal(err)
	}
	if n.Load() != 2 {
		t.Fatalf("Run after Dispatch re-ran a consumed graph: n = %d", n.Load())
	}
}

// Steady-state re-runs of a linear chain must be allocation-free: every
// scheduling step pushes the node's intrusive task reference, the reusable
// topology signals its buffered done channel, and the cached source batch
// is reused as-is.
func TestRunLinearChainZeroAlloc(t *testing.T) {
	tf := New(2)
	defer tf.Close()
	var n int64
	prev := tf.Emplace1(func() { n++ })
	for i := 0; i < 63; i++ {
		next := tf.Emplace1(func() { n++ })
		prev.Precede(next)
		prev = next
	}
	if err := tf.Run(); err != nil { // build run state outside measurement
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(100, func() {
		if err := tf.Run(); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Fatalf("linear-chain Run allocates %v objects/run, want 0", allocs)
	}
}

// Diamond fan-out/fan-in re-runs stay within one allocation per node (in
// practice zero: batch submission reuses the ring and intrusive refs).
func TestRunDiamondAllocBound(t *testing.T) {
	tf := New(4)
	defer tf.Close()
	const width = 16
	var n atomic.Int64
	src := tf.Emplace1(func() { n.Add(1) })
	sink := tf.Emplace1(func() { n.Add(1) })
	for i := 0; i < width; i++ {
		mid := tf.Emplace1(func() { n.Add(1) })
		src.Precede(mid)
		mid.Precede(sink)
	}
	if err := tf.Run(); err != nil {
		t.Fatal(err)
	}
	nodes := float64(tf.NumNodes())
	allocs := testing.AllocsPerRun(100, func() {
		if err := tf.Run(); err != nil {
			t.Fatal(err)
		}
	})
	if allocs > nodes {
		t.Fatalf("diamond Run allocates %v objects/run for %v nodes, want <= 1 per node", allocs, nodes)
	}
}

// Auto-chunked algorithms must partition by the executor that will run the
// flow: a 2-worker taskflow splits work into 4*2 chunks, not 4*NumCPU.
func TestParallelForChunksByWorkerCount(t *testing.T) {
	tf := New(2)
	defer tf.Close()
	items := make([]int, 800)
	before := tf.NumNodes()
	ParallelFor(tf, items, func(int) {}, 0)
	// S + T placeholders plus exactly 4*workers chunk tasks.
	chunks := tf.NumNodes() - before - 2
	if chunks != 8 {
		t.Fatalf("auto-chunk created %d chunk tasks on a 2-worker flow, want 8", chunks)
	}
	if err := tf.Run(); err != nil {
		t.Fatal(err)
	}
}

package core

// Run-level profiles: a per-run RunStats computed at topology finish — the
// counters that pair with the executor's scheduler metrics
// (internal/executor WithMetrics) to answer "what did this run actually
// do": how many task executions, how long the critical path was, how much
// parallelism the graph offered and how much the workers achieved.
//
// Collection is opt-in (Taskflow.CollectRunStats) and allocation-free in
// steady state: the counters live on the reusable topology and on the
// nodes themselves, pre-allocated with the graph, and are reset — not
// reallocated — on every run. TestRunZeroAllocMetricsEnabled gates this.

import (
	"sort"
	"sync/atomic"
	"time"
)

// RunStats summarizes one completed run (Taskflow.Run) or one dispatched
// topology (Future.Stats) when stats collection is enabled.
type RunStats struct {
	// Tasks counts task-body executions, including retry attempts and
	// condition-loop iterations. For a plain DAG it equals the graph size
	// (plus any spawned subflow nodes) — the exactly-once property the
	// randomized-DAG tests assert.
	Tasks int64
	// Retries counts failed executions that were rescheduled by a
	// Task.Retry policy.
	Retries int64
	// Skipped counts executions whose body was skipped by cooperative
	// cancellation while the dependency structure drained.
	Skipped int64
	// Errors is the number of captured failures; Cancelled reports whether
	// the run was cancelled (by Cancel, fail-fast, or deadline).
	Errors    int
	Cancelled bool

	// Span is the length (in tasks) of the longest strong-edge dependency
	// chain of the static graph — the critical path assuming unit task
	// cost. Condition edges are weak and excluded; spawned subflow nodes
	// are counted in Tasks but not in Span.
	Span int
	// Parallelism is Tasks/Span: the average work available per critical-
	// path step (the work/span ratio with unit task cost).
	Parallelism float64

	// Wall is the run's wall-clock time, measured from submission to
	// quiescence.
	Wall time.Duration
	// Busy is the summed task-body execution time across workers; zero
	// unless CollectRunStats was given timing=true.
	Busy time.Duration
	// AchievedParallelism is Busy/Wall — the mean number of workers
	// actually inside task bodies; zero without timing.
	AchievedParallelism float64

	// HotTasks ranks the run's tasks by self time (top-hotTaskK), using
	// the same display names as DOT dumps and trace spans (task name, or
	// the positional p<hex> fallback). Empty unless CollectRunStats was
	// given timing=true. Spawned subflow tasks are included.
	HotTasks []HotTask
}

// HotTask is one entry of RunStats.HotTasks: a task's display name with
// its execution count and summed body duration for the run.
type HotTask struct {
	Name  string
	Count uint64
	Total time.Duration
}

// hotTaskK is the hot-task ranking depth.
const hotTaskK = 5

// topoStats is the mutable per-run counter block attached to a topology
// when stats collection is on. Reset (never reallocated) at the start of
// each reusable run.
type topoStats struct {
	tasks   atomic.Int64
	retries atomic.Int64
	skipped atomic.Int64
	busyNs  atomic.Int64

	timing bool
	start  time.Time
	// wall is written by the finishing worker in topology.finish and read
	// by waiters after the done signal (the channel provides the
	// happens-before edge).
	wall time.Duration
}

func (st *topoStats) reset() {
	st.tasks.Store(0)
	st.retries.Store(0)
	st.skipped.Store(0)
	st.busyNs.Store(0)
	st.start = time.Now()
	st.wall = 0
}

// CollectRunStats enables per-run statistics for subsequent Run and
// Dispatch calls: execution/retry/skip counts, wall time, and per-node
// execution counts (read by DumpAnnotated). With timing=true, per-task
// durations are also captured — two monotonic clock reads per task body —
// populating RunStats.Busy/AchievedParallelism and the durations in
// annotated dumps. Collection stays allocation-free in steady state.
// Returns tf for chaining.
func (tf *Taskflow) CollectRunStats(timing bool) *Taskflow {
	tf.statsEnabled = true
	tf.statsTiming = timing
	tf.invalidateRun() // the cached run state predates the stats block
	return tf
}

// LastRunStats returns the statistics of the most recent completed Run.
// ok is false when CollectRunStats was not enabled or no Run has finished
// since. Must not be called concurrently with Run.
func (tf *Taskflow) LastRunStats() (RunStats, bool) {
	t := tf.runTopo
	if t == nil || t.stats == nil || t.stats.start.IsZero() {
		return RunStats{}, false
	}
	return t.runStats(structuralSpan(t.graph)), true
}

// Stats returns the statistics of a finished dispatched topology. ok is
// false when stats collection was not enabled at dispatch time or the
// topology has not finished yet.
func (f *Future) Stats() (RunStats, bool) {
	t := f.t
	if t.stats == nil {
		return RunStats{}, false
	}
	select {
	case <-t.done:
	default:
		return RunStats{}, false
	}
	return t.runStats(structuralSpan(t.graph)), true
}

// runStats assembles the RunStats view of the topology's counter block.
func (t *topology) runStats(span int) RunStats {
	st := t.stats
	rs := RunStats{
		Tasks:     st.tasks.Load(),
		Retries:   st.retries.Load(),
		Skipped:   st.skipped.Load(),
		Cancelled: t.cancelled.Load(),
		Span:      span,
		Wall:      st.wall,
		Busy:      time.Duration(st.busyNs.Load()),
	}
	t.errMu.Lock()
	rs.Errors = len(t.errs)
	t.errMu.Unlock()
	if span > 0 {
		rs.Parallelism = float64(rs.Tasks) / float64(span)
	}
	if rs.Wall > 0 && rs.Busy > 0 {
		rs.AchievedParallelism = float64(rs.Busy) / float64(rs.Wall)
	}
	if st.timing {
		rs.HotTasks = hotTasks(t.graph, hotTaskK)
	}
	return rs
}

// hotTasks ranks the graph's tasks (including spawned subflow tasks) by
// recorded self time, descending, returning at most k entries. Names
// follow node.label: the assigned name or the positional p<hex> fallback,
// so the ranking, the DOT dump and the trace timeline agree.
func hotTasks(g *graph, k int) []HotTask {
	var out []HotTask
	var walk func(*graph)
	walk = func(g *graph) {
		for _, n := range g.nodes {
			if d := n.execDurNs.Load(); d > 0 {
				out = append(out, HotTask{
					Name:  n.label(int(n.idx)),
					Count: n.execCount.Load(),
					Total: time.Duration(d),
				})
			}
			if sg := n.spawned(); sg != nil {
				walk(sg)
			}
		}
	}
	walk(g)
	sort.Slice(out, func(i, j int) bool { return out[i].Total > out[j].Total })
	if len(out) > k {
		out = out[:k]
	}
	return out
}

// structuralSpan computes the longest strong-edge dependency chain of g in
// tasks (the unit-cost critical path), by dynamic programming over a Kahn
// topological order. Weak (condition) edges are excluded, matching the
// dispatch-time cycle check, so the strong subgraph is acyclic whenever
// the graph was runnable.
func structuralSpan(g *graph) int {
	n := g.len()
	if n == 0 {
		return 0
	}
	indeg := make([]int32, n)
	depth := make([]int32, n)
	queue := make([]int32, 0, n)
	for i, nd := range g.nodes {
		indeg[i] = int32(nd.numDependents)
		depth[i] = 1
		if indeg[i] == 0 {
			queue = append(queue, int32(i))
		}
	}
	span := int32(1)
	for len(queue) > 0 {
		u := queue[len(queue)-1]
		queue = queue[:len(queue)-1]
		nd := g.nodes[u]
		if depth[u] > span {
			span = depth[u]
		}
		if nd.isCondition() {
			continue // out-edges are weak
		}
		nd.eachSuccessor(func(s *node) {
			if d := depth[u] + 1; d > depth[s.idx] {
				depth[s.idx] = d
			}
			indeg[s.idx]--
			if indeg[s.idx] == 0 {
				queue = append(queue, s.idx)
			}
		})
	}
	return int(span)
}

package core

// Semaphore-parked tasks under cancellation × retry — the interaction
// matrix of three features that each reschedule work outside the normal
// dependency flow. Six tasks contend on a one-unit semaphore; one fails
// every attempt (exhausting its retry budget and fail-fast-cancelling
// the topology while siblings are parked on the semaphore), two fail
// transiently and retry through scheduler timers, and the rest are
// plain. The laws: the run quiesces, the permanent failure surfaces,
// no task exceeds its attempt budget, and every semaphore unit is
// returned. The matrix runs on the real executor (-race in CI) and under
// deterministic simulation across 120 seeds per worker count.

import (
	"errors"
	"fmt"
	"sync/atomic"
	"testing"
	"time"

	"gotaskflow/internal/executor"
	"gotaskflow/internal/sim"
	"gotaskflow/internal/testutil"
)

var errPermanent = errors.New("permanent failure")

const semRetryTasks = 6

// buildSemRetryFlow wires the contention graph into tf and returns the
// per-task attempt counters.
func buildSemRetryFlow(tf *Taskflow, sem *Semaphore, perm int) []*atomic.Int32 {
	attempts := make([]*atomic.Int32, semRetryTasks)
	for i := 0; i < semRetryTasks; i++ {
		i := i
		attempts[i] = &atomic.Int32{}
		var task Task
		switch {
		case i == perm:
			task = tf.EmplaceErr(func() error {
				attempts[i].Add(1)
				return errPermanent
			}).Retry(1, time.Microsecond)
		case i == (perm+1)%semRetryTasks || i == (perm+2)%semRetryTasks:
			task = tf.EmplaceErr(func() error {
				if attempts[i].Add(1) == 1 {
					return fmt.Errorf("transient %d", i)
				}
				return nil
			}).Retry(2, time.Microsecond)
		default:
			task = tf.Emplace1(func() { attempts[i].Add(1) })
		}
		task.Acquire(sem).Release(sem)
	}
	return attempts
}

// checkSemRetryRun asserts the matrix laws after one Run of the graph.
func checkSemRetryRun(t *testing.T, err error, sem *Semaphore, attempts []*atomic.Int32, perm int, replay string) {
	t.Helper()
	if err == nil {
		t.Fatalf("run with a permanently failing task reported success\nreplay: %s", replay)
	}
	if !errors.Is(err, errPermanent) {
		t.Fatalf("run error %v does not wrap the permanent failure\nreplay: %s", err, replay)
	}
	for i, a := range attempts {
		budget := int32(1)
		switch {
		case i == perm:
			budget = 2 // 1 + Retry(1)
		case i == (perm+1)%semRetryTasks || i == (perm+2)%semRetryTasks:
			budget = 3 // 1 + Retry(2)
		}
		if got := a.Load(); got > budget {
			t.Fatalf("task %d attempted %d times, budget %d\nreplay: %s", i, got, budget, replay)
		}
	}
	// Every execution — run, skipped, retried or abandoned at
	// cancellation — must have returned its semaphore unit.
	if v := sem.Value(); v != 1 {
		t.Fatalf("semaphore holds %d units after quiescence, want 1\nreplay: %s", v, replay)
	}
}

func TestSemaphoreCancelRetrySim(t *testing.T) {
	seeds := int64(120)
	if testing.Short() {
		seeds = 20
	}
	for _, workers := range []int{1, 2, 4} {
		workers := workers
		t.Run(fmt.Sprintf("w%d", workers), func(t *testing.T) {
			for seed := int64(0); seed < seeds; seed++ {
				replay := fmt.Sprintf(
					"go test ./internal/core -run 'TestSemaphoreCancelRetrySim/w%d' -count=1 (failing seed %d)",
					workers, seed)
				s := sim.New(workers, sim.WithSeed(seed))
				tf := NewShared(s)
				sem := NewSemaphore(1)
				perm := int(seed) % semRetryTasks
				attempts := buildSemRetryFlow(tf, sem, perm)

				const runs = 2 // second run exercises the reusable topology after a failed run
				for run := 0; run < runs; run++ {
					for _, a := range attempts {
						a.Store(0)
					}
					checkSemRetryRun(t, tf.Run(), sem, attempts, perm, replay)
				}
				if err := s.Stats().Check(); err != nil {
					t.Fatalf("%v\nreplay: %s", err, replay)
				}
				if err := s.Failure(); err != nil {
					t.Fatalf("liveness failure: %v\nreplay: %s", err, replay)
				}
			}
		})
	}
}

func TestSemaphoreCancelRetryReal(t *testing.T) {
	testutil.NoLeaks(t)
	for _, workers := range []int{2, 4} {
		workers := workers
		t.Run(fmt.Sprintf("w%d", workers), func(t *testing.T) {
			for seed := int64(0); seed < 12; seed++ {
				replay := fmt.Sprintf(
					"go test -race ./internal/core -run 'TestSemaphoreCancelRetryReal/w%d' -count=1 (failing seed %d)",
					workers, seed)
				e := executor.New(workers, executor.WithSeed(seed))
				tf := NewShared(e)
				sem := NewSemaphore(1)
				perm := int(seed) % semRetryTasks
				attempts := buildSemRetryFlow(tf, sem, perm)
				checkSemRetryRun(t, tf.Run(), sem, attempts, perm, replay)
				e.Shutdown()
			}
		})
	}
}

// TestRetryTimerResolvedAtShutdown is the regression test for retry
// timers outliving the pool: a task fails with an hour-scale backoff
// (clamped to the 30s retry cap — still far beyond any test budget),
// the timer arms, and Shutdown must resolve it immediately: the future
// completes promptly wrapping ErrShutdown instead of waiting out the
// backoff or hanging forever on a pool that no longer exists.
func TestRetryTimerResolvedAtShutdown(t *testing.T) {
	testutil.NoLeaks(t)
	e := executor.New(2)
	tf := NewShared(e)
	tf.EmplaceErr(func() error { return errPermanent }).Retry(1, time.Hour)
	f := tf.Dispatch()

	testutil.Eventually(t, 5*time.Second, func() bool { return e.ArmedTimers() == 1 },
		"retry backoff timer never armed: ArmedTimers() = %d", e.ArmedTimers())
	e.Shutdown()

	done := make(chan error, 1)
	go func() { done <- f.Get() }()
	select {
	case err := <-done:
		if !errors.Is(err, executor.ErrShutdown) {
			t.Fatalf("Future.Get = %v, want error wrapping ErrShutdown", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("Future.Get still blocked 10s after Shutdown resolved the retry timer")
	}
	if n := e.ArmedTimers(); n != 0 {
		t.Fatalf("ArmedTimers() after Shutdown = %d, want 0", n)
	}
}

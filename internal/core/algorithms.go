package core

import "runtime"

// This file implements the built-in algorithm collection of the paper
// (Section III-F): parallel_for, reduce, and transform patterns expressed
// as spliceable task subgraphs. Each constructor returns a (source, target)
// pair of placeholder tasks delimiting the pattern, so users can compose
// larger application modules by wiring S/T into their own graphs:
//
//	S, T := core.ParallelFor(tf, data, work, 0)
//	before.Precede(S)
//	T.Precede(after)
//
// Because the constructors accept the unified FlowBuilder interface, the
// same patterns splice into static graphs (*Taskflow) and dynamic subflows
// (*Subflow) alike.

// chunkSize resolves a user-provided chunk size: non-positive means
// auto-partition into roughly 4 tasks per worker of the executor that will
// actually run the flow (falling back to GOMAXPROCS when the worker count
// is unknown), so a 2-worker executor gets ~8 chunks rather than 4×NumCPU.
func chunkSize(n, chunk, workers int) int {
	if chunk > 0 {
		return chunk
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	pieces := 4 * workers
	c := (n + pieces - 1) / pieces
	if c < 1 {
		c = 1
	}
	return c
}

// ParallelFor applies fn to every element of items using one task per chunk
// of the given size (non-positive chunk selects an automatic size). It
// returns the (source, target) placeholder pair delimiting the pattern.
func ParallelFor[T any](fb FlowBuilder, items []T, fn func(T), chunk int) (Task, Task) {
	s := fb.Placeholder().Name("pfor_S")
	t := fb.Placeholder().Name("pfor_T")
	n := len(items)
	if n == 0 {
		s.Precede(t)
		return s, t
	}
	c := chunkSize(n, chunk, fb.workerCount())
	for beg := 0; beg < n; beg += c {
		end := beg + c
		if end > n {
			end = n
		}
		part := items[beg:end]
		w := fb.Emplace(func() {
			for _, item := range part {
				fn(item)
			}
		})[0]
		s.Precede(w)
		w.Precede(t)
	}
	return s, t
}

// ParallelForPtr is ParallelFor with pointer access to each element, for
// in-place mutation.
func ParallelForPtr[T any](fb FlowBuilder, items []T, fn func(*T), chunk int) (Task, Task) {
	s := fb.Placeholder().Name("pforp_S")
	t := fb.Placeholder().Name("pforp_T")
	n := len(items)
	if n == 0 {
		s.Precede(t)
		return s, t
	}
	c := chunkSize(n, chunk, fb.workerCount())
	for beg := 0; beg < n; beg += c {
		end := beg + c
		if end > n {
			end = n
		}
		part := items[beg:end]
		w := fb.Emplace(func() {
			for i := range part {
				fn(&part[i])
			}
		})[0]
		s.Precede(w)
		w.Precede(t)
	}
	return s, t
}

// ParallelForIndex applies fn to every index in the arithmetic range
// [beg, end) with the given positive step, one task per chunk of indices.
func ParallelForIndex(fb FlowBuilder, beg, end, step int, fn func(int), chunk int) (Task, Task) {
	s := fb.Placeholder().Name("pfori_S")
	t := fb.Placeholder().Name("pfori_T")
	if step <= 0 {
		panic("core: ParallelForIndex requires a positive step")
	}
	if beg >= end {
		s.Precede(t)
		return s, t
	}
	total := (end - beg + step - 1) / step
	c := chunkSize(total, chunk, fb.workerCount())
	for i := 0; i < total; i += c {
		hi := i + c
		if hi > total {
			hi = total
		}
		lo, up := beg+i*step, beg+hi*step
		w := fb.Emplace(func() {
			for j := lo; j < up && j < end; j += step {
				fn(j)
			}
		})[0]
		s.Precede(w)
		w.Precede(t)
	}
	return s, t
}

// Reduce folds items into *result with the associative binary operator bop,
// using one task per chunk plus a final combine task. The initial value of
// *result at execution time seeds the fold, matching Cpp-Taskflow's
// reduce(beg, end, result, bop) convention.
func Reduce[T any](fb FlowBuilder, items []T, result *T, bop func(T, T) T, chunk int) (Task, Task) {
	s := fb.Placeholder().Name("reduce_S")
	t := fb.Placeholder().Name("reduce_T")
	n := len(items)
	if n == 0 {
		s.Precede(t)
		return s, t
	}
	c := chunkSize(n, chunk, fb.workerCount())
	numChunks := (n + c - 1) / c
	partials := make([]T, numChunks)
	have := make([]bool, numChunks)
	k := 0
	for beg := 0; beg < n; beg += c {
		end := beg + c
		if end > n {
			end = n
		}
		part := items[beg:end]
		slot := k
		w := fb.Emplace(func() {
			acc := part[0]
			for _, item := range part[1:] {
				acc = bop(acc, item)
			}
			partials[slot] = acc
			have[slot] = true
		})[0]
		s.Precede(w)
		w.Precede(t)
		k++
	}
	t.Work(func() {
		acc := *result
		for i, p := range partials {
			if have[i] {
				acc = bop(acc, p)
			}
		}
		*result = acc
	})
	return s, t
}

// Transform maps src through fn into dst (which must be at least as long as
// src), one task per chunk.
func Transform[T, U any](fb FlowBuilder, src []T, dst []U, fn func(T) U, chunk int) (Task, Task) {
	if len(dst) < len(src) {
		panic("core: Transform destination shorter than source")
	}
	s := fb.Placeholder().Name("transform_S")
	t := fb.Placeholder().Name("transform_T")
	n := len(src)
	if n == 0 {
		s.Precede(t)
		return s, t
	}
	c := chunkSize(n, chunk, fb.workerCount())
	for beg := 0; beg < n; beg += c {
		end := beg + c
		if end > n {
			end = n
		}
		in, out := src[beg:end], dst[beg:end]
		w := fb.Emplace(func() {
			for i := range in {
				out[i] = fn(in[i])
			}
		})[0]
		s.Precede(w)
		w.Precede(t)
	}
	return s, t
}

// TransformReduce maps each element through uop and folds the mapped values
// into *result with bop; the initial value of *result seeds the fold.
func TransformReduce[T, U any](fb FlowBuilder, items []T, result *U, bop func(U, U) U, uop func(T) U, chunk int) (Task, Task) {
	s := fb.Placeholder().Name("treduce_S")
	t := fb.Placeholder().Name("treduce_T")
	n := len(items)
	if n == 0 {
		s.Precede(t)
		return s, t
	}
	c := chunkSize(n, chunk, fb.workerCount())
	numChunks := (n + c - 1) / c
	partials := make([]U, numChunks)
	have := make([]bool, numChunks)
	k := 0
	for beg := 0; beg < n; beg += c {
		end := beg + c
		if end > n {
			end = n
		}
		part := items[beg:end]
		slot := k
		w := fb.Emplace(func() {
			acc := uop(part[0])
			for _, item := range part[1:] {
				acc = bop(acc, uop(item))
			}
			partials[slot] = acc
			have[slot] = true
		})[0]
		s.Precede(w)
		w.Precede(t)
		k++
	}
	t.Work(func() {
		acc := *result
		for i, p := range partials {
			if have[i] {
				acc = bop(acc, p)
			}
		}
		*result = acc
	})
	return s, t
}

package core

import (
	"runtime"
	"sync/atomic"
)

// This file implements the built-in algorithm collection of the paper
// (Section III-F): parallel_for, reduce, and transform patterns expressed
// as spliceable task subgraphs. Each constructor returns a (source, target)
// pair of placeholder tasks delimiting the pattern, so users can compose
// larger application modules by wiring S/T into their own graphs:
//
//	S, T := core.ParallelFor(tf, data, work, 0)
//	before.Precede(S)
//	T.Precede(after)
//
// Because the constructors accept the unified FlowBuilder interface, the
// same patterns splice into static graphs (*Taskflow) and dynamic subflows
// (*Subflow) alike.
//
// Every constructor takes an optional partitioner (WithPartitioner)
// deciding how the iteration space is split across workers, mirroring the
// partitioner abstraction of the successor Taskflow system: Static bakes
// one task per chunk into the graph; Dynamic and Guided emit only
// min(workers, n) claimant tasks that carve ranges off a shared atomic
// cursor at run time, so wide loops cost a handful of graph nodes and
// skewed per-element work rebalances itself.

// Partitioner selects how the algorithm constructors split an iteration
// space across workers.
type Partitioner int

const (
	// Static partitions at graph-construction time: one task per chunk of
	// the given size. Predictable, zero coordination at run time, and the
	// only strategy whose per-chunk tasks can be individually observed
	// (traced, profiled, stolen) — prefer it for uniform per-element cost
	// or when the per-chunk tasks themselves matter.
	Static Partitioner = iota
	// Dynamic emits min(workers, n) claimant tasks that repeatedly claim
	// fixed-size chunks (the chunk argument; default 1) from a shared
	// atomic cursor at run time. Best load balance for skewed bodies, at
	// one CAS per chunk.
	Dynamic
	// Guided is Dynamic with geometrically shrinking grants: each claim
	// takes remaining/(2*workers) indices (never below the chunk
	// argument), so the range drains in O(workers·log n) claims —
	// front-loaded big grants, tail balanced by small ones.
	Guided
)

// algConfig collects the optional knobs of the algorithm constructors.
type algConfig struct {
	part Partitioner
}

// AlgOption configures an algorithm constructor (currently the
// partitioner; defaults to Static).
type AlgOption func(*algConfig)

// WithPartitioner selects the strategy used to split the iteration space;
// see the Partitioner constants.
func WithPartitioner(p Partitioner) AlgOption {
	return func(c *algConfig) { c.part = p }
}

func resolveOpts(opts []AlgOption) algConfig {
	var c algConfig
	for _, o := range opts {
		o(&c)
	}
	return c
}

// chunkSize resolves a user-provided chunk size: non-positive means
// auto-partition into roughly 4 tasks per worker of the executor that will
// actually run the flow (falling back to GOMAXPROCS when the worker count
// is unknown), so a 2-worker executor gets ~8 chunks rather than 4×NumCPU.
// An empty or negative range needs no partitioning at all: n <= 0 returns
// 1 regardless of the requested chunk.
func chunkSize(n, chunk, workers int) int {
	if n <= 0 {
		return 1
	}
	if chunk > 0 {
		return chunk
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	pieces := 4 * workers
	c := (n + pieces - 1) / pieces
	if c < 1 {
		c = 1
	}
	return c
}

// rangeCursor is the shared run-time state of a Dynamic or Guided
// partition: claimant tasks carve [lo, hi) grants off it with a CAS loop.
// It is allocated once at graph construction and reset by the pattern's
// source placeholder, so re-running the flow (Taskflow.Run/RunN) replays
// the whole range without allocating.
type rangeCursor struct {
	next  atomic.Int64
	n     int64 // iteration-space size
	grain int64 // minimum grant
	div   int64 // guided: grant = max(grain, remaining/div); 0 = fixed grain
}

func newCursor(n, chunk, workers int, p Partitioner) *rangeCursor {
	grain := chunk
	if grain <= 0 {
		grain = 1
	}
	c := &rangeCursor{n: int64(n), grain: int64(grain)}
	if p == Guided {
		if workers <= 0 {
			workers = runtime.GOMAXPROCS(0)
		}
		c.div = int64(2 * workers)
	}
	return c
}

func (c *rangeCursor) reset() { c.next.Store(0) }

// claim carves the next grant off the cursor, returning ok=false once the
// range is drained. Safe for any number of concurrent claimants.
func (c *rangeCursor) claim() (int, int, bool) {
	for {
		lo := c.next.Load()
		if lo >= c.n {
			return 0, 0, false
		}
		size := c.grain
		if c.div > 0 {
			if g := (c.n - lo) / c.div; g > size {
				size = g
			}
		}
		hi := lo + size
		if hi > c.n {
			hi = c.n
		}
		if c.next.CompareAndSwap(lo, hi) {
			return int(lo), int(hi), true
		}
	}
}

// claimantCount returns how many claimant tasks a dynamic partition emits:
// one per worker, but never more than the iteration space could occupy.
func claimantCount(workers, total int) int {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > total {
		workers = total
	}
	if workers < 1 {
		workers = 1
	}
	return workers
}

// buildClaimants wires a dynamic partition between s and t: the cursor is
// re-armed by s (so the pattern is re-runnable), and each of the slots
// claimant tasks loops claiming ranges and passing them — with its own
// claimant index — to body.
func buildClaimants(fb FlowBuilder, s, t Task, cur *rangeCursor, slots int, rearm func(), body func(slot, lo, hi int)) {
	s.Work(func() {
		cur.reset()
		if rearm != nil {
			rearm()
		}
	})
	for i := 0; i < slots; i++ {
		slot := i
		w := fb.Emplace(func() {
			for {
				lo, hi, ok := cur.claim()
				if !ok {
					return
				}
				body(slot, lo, hi)
			}
		})[0]
		s.Precede(w)
		w.Precede(t)
	}
}

// ParallelFor applies fn to every element of items. With the default
// Static partitioner it emits one task per chunk of the given size
// (non-positive chunk selects an automatic size); with Dynamic or Guided
// it emits min(workers, n) claimant tasks that split the range at run time
// (chunk then sets the minimum grant). It returns the (source, target)
// placeholder pair delimiting the pattern.
func ParallelFor[T any](fb FlowBuilder, items []T, fn func(T), chunk int, opts ...AlgOption) (Task, Task) {
	s := fb.Placeholder().Name("pfor_S")
	t := fb.Placeholder().Name("pfor_T")
	n := len(items)
	if n == 0 {
		s.Precede(t)
		return s, t
	}
	if cfg := resolveOpts(opts); cfg.part != Static {
		cur := newCursor(n, chunk, fb.workerCount(), cfg.part)
		buildClaimants(fb, s, t, cur, claimantCount(fb.workerCount(), n), nil,
			func(_, lo, hi int) {
				for _, item := range items[lo:hi] {
					fn(item)
				}
			})
		return s, t
	}
	c := chunkSize(n, chunk, fb.workerCount())
	for beg := 0; beg < n; beg += c {
		end := beg + c
		if end > n {
			end = n
		}
		part := items[beg:end]
		w := fb.Emplace(func() {
			for _, item := range part {
				fn(item)
			}
		})[0]
		s.Precede(w)
		w.Precede(t)
	}
	return s, t
}

// ParallelForPtr is ParallelFor with pointer access to each element, for
// in-place mutation.
func ParallelForPtr[T any](fb FlowBuilder, items []T, fn func(*T), chunk int, opts ...AlgOption) (Task, Task) {
	s := fb.Placeholder().Name("pforp_S")
	t := fb.Placeholder().Name("pforp_T")
	n := len(items)
	if n == 0 {
		s.Precede(t)
		return s, t
	}
	if cfg := resolveOpts(opts); cfg.part != Static {
		cur := newCursor(n, chunk, fb.workerCount(), cfg.part)
		buildClaimants(fb, s, t, cur, claimantCount(fb.workerCount(), n), nil,
			func(_, lo, hi int) {
				for i := lo; i < hi; i++ {
					fn(&items[i])
				}
			})
		return s, t
	}
	c := chunkSize(n, chunk, fb.workerCount())
	for beg := 0; beg < n; beg += c {
		end := beg + c
		if end > n {
			end = n
		}
		part := items[beg:end]
		w := fb.Emplace(func() {
			for i := range part {
				fn(&part[i])
			}
		})[0]
		s.Precede(w)
		w.Precede(t)
	}
	return s, t
}

// ParallelForIndex applies fn to every index in the arithmetic range
// [beg, end) with the given positive step. Partitioning follows the same
// rules as ParallelFor, over the iteration count of the range.
func ParallelForIndex(fb FlowBuilder, beg, end, step int, fn func(int), chunk int, opts ...AlgOption) (Task, Task) {
	s := fb.Placeholder().Name("pfori_S")
	t := fb.Placeholder().Name("pfori_T")
	if step <= 0 {
		panic("core: ParallelForIndex requires a positive step")
	}
	if beg >= end {
		s.Precede(t)
		return s, t
	}
	total := (end - beg + step - 1) / step
	if cfg := resolveOpts(opts); cfg.part != Static {
		cur := newCursor(total, chunk, fb.workerCount(), cfg.part)
		buildClaimants(fb, s, t, cur, claimantCount(fb.workerCount(), total), nil,
			func(_, lo, hi int) {
				for i := lo; i < hi; i++ {
					fn(beg + i*step)
				}
			})
		return s, t
	}
	c := chunkSize(total, chunk, fb.workerCount())
	for i := 0; i < total; i += c {
		hi := i + c
		if hi > total {
			hi = total
		}
		lo, up := beg+i*step, beg+hi*step
		w := fb.Emplace(func() {
			for j := lo; j < up && j < end; j += step {
				fn(j)
			}
		})[0]
		s.Precede(w)
		w.Precede(t)
	}
	return s, t
}

// Reduce folds items into *result with the associative binary operator bop,
// using partial-fold tasks (one per chunk, or one claimant per worker under
// Dynamic/Guided) plus a final combine task. The value of *result when the
// combine task executes seeds the fold, matching Cpp-Taskflow's
// reduce(beg, end, result, bop) convention.
func Reduce[T any](fb FlowBuilder, items []T, result *T, bop func(T, T) T, chunk int, opts ...AlgOption) (Task, Task) {
	s := fb.Placeholder().Name("reduce_S")
	t := fb.Placeholder().Name("reduce_T")
	n := len(items)
	if n == 0 {
		s.Precede(t)
		return s, t
	}
	var partials []T
	var have []bool
	combine := func() {
		acc := *result
		for i, p := range partials {
			if have[i] {
				acc = bop(acc, p)
			}
		}
		*result = acc
	}
	if cfg := resolveOpts(opts); cfg.part != Static {
		slots := claimantCount(fb.workerCount(), n)
		partials = make([]T, slots)
		have = make([]bool, slots)
		cur := newCursor(n, chunk, fb.workerCount(), cfg.part)
		buildClaimants(fb, s, t, cur, slots,
			func() { clear(have) },
			func(slot, lo, hi int) {
				acc := items[lo]
				for _, item := range items[lo+1 : hi] {
					acc = bop(acc, item)
				}
				if have[slot] {
					acc = bop(partials[slot], acc)
				}
				partials[slot] = acc
				have[slot] = true
			})
		t.Work(combine)
		return s, t
	}
	c := chunkSize(n, chunk, fb.workerCount())
	numChunks := (n + c - 1) / c
	partials = make([]T, numChunks)
	have = make([]bool, numChunks)
	k := 0
	for beg := 0; beg < n; beg += c {
		end := beg + c
		if end > n {
			end = n
		}
		part := items[beg:end]
		slot := k
		w := fb.Emplace(func() {
			acc := part[0]
			for _, item := range part[1:] {
				acc = bop(acc, item)
			}
			partials[slot] = acc
			have[slot] = true
		})[0]
		s.Precede(w)
		w.Precede(t)
		k++
	}
	t.Work(combine)
	return s, t
}

// Transform maps src through fn into dst (which must be at least as long as
// src). Partitioning follows the same rules as ParallelFor.
func Transform[T, U any](fb FlowBuilder, src []T, dst []U, fn func(T) U, chunk int, opts ...AlgOption) (Task, Task) {
	if len(dst) < len(src) {
		panic("core: Transform destination shorter than source")
	}
	s := fb.Placeholder().Name("transform_S")
	t := fb.Placeholder().Name("transform_T")
	n := len(src)
	if n == 0 {
		s.Precede(t)
		return s, t
	}
	if cfg := resolveOpts(opts); cfg.part != Static {
		cur := newCursor(n, chunk, fb.workerCount(), cfg.part)
		buildClaimants(fb, s, t, cur, claimantCount(fb.workerCount(), n), nil,
			func(_, lo, hi int) {
				for i := lo; i < hi; i++ {
					dst[i] = fn(src[i])
				}
			})
		return s, t
	}
	c := chunkSize(n, chunk, fb.workerCount())
	for beg := 0; beg < n; beg += c {
		end := beg + c
		if end > n {
			end = n
		}
		in, out := src[beg:end], dst[beg:end]
		w := fb.Emplace(func() {
			for i := range in {
				out[i] = fn(in[i])
			}
		})[0]
		s.Precede(w)
		w.Precede(t)
	}
	return s, t
}

// TransformReduce maps each element through uop and folds the mapped values
// into *result with bop; the value of *result when the combine task
// executes seeds the fold. Partitioning follows the same rules as Reduce.
func TransformReduce[T, U any](fb FlowBuilder, items []T, result *U, bop func(U, U) U, uop func(T) U, chunk int, opts ...AlgOption) (Task, Task) {
	s := fb.Placeholder().Name("treduce_S")
	t := fb.Placeholder().Name("treduce_T")
	n := len(items)
	if n == 0 {
		s.Precede(t)
		return s, t
	}
	var partials []U
	var have []bool
	combine := func() {
		acc := *result
		for i, p := range partials {
			if have[i] {
				acc = bop(acc, p)
			}
		}
		*result = acc
	}
	if cfg := resolveOpts(opts); cfg.part != Static {
		slots := claimantCount(fb.workerCount(), n)
		partials = make([]U, slots)
		have = make([]bool, slots)
		cur := newCursor(n, chunk, fb.workerCount(), cfg.part)
		buildClaimants(fb, s, t, cur, slots,
			func() { clear(have) },
			func(slot, lo, hi int) {
				acc := uop(items[lo])
				for _, item := range items[lo+1 : hi] {
					acc = bop(acc, uop(item))
				}
				if have[slot] {
					acc = bop(partials[slot], acc)
				}
				partials[slot] = acc
				have[slot] = true
			})
		t.Work(combine)
		return s, t
	}
	c := chunkSize(n, chunk, fb.workerCount())
	numChunks := (n + c - 1) / c
	partials = make([]U, numChunks)
	have = make([]bool, numChunks)
	k := 0
	for beg := 0; beg < n; beg += c {
		end := beg + c
		if end > n {
			end = n
		}
		part := items[beg:end]
		slot := k
		w := fb.Emplace(func() {
			acc := uop(part[0])
			for _, item := range part[1:] {
				acc = bop(acc, uop(item))
			}
			partials[slot] = acc
			have[slot] = true
		})[0]
		s.Precede(w)
		w.Precede(t)
		k++
	}
	t.Work(combine)
	return s, t
}

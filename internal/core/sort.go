package core

import "sort"

// Parallel sort (Cpp-Taskflow's parallel_sort): a recursive merge sort
// expressed with dynamic tasking — each level spawns a subflow that sorts
// the two halves concurrently and merges them on join. It demonstrates the
// recursive-subflow capability of the unified interface while providing a
// practically useful algorithm.

// sortSequentialThreshold is the partition size below which the sort falls
// back to the standard library, keeping task granularity profitable.
const sortSequentialThreshold = 2048

// Sort creates tasks in fb that sort items by less. It returns the
// (source, target) placeholder pair delimiting the pattern so callers can
// splice it into a larger graph. The sort is stable across runs for a
// deterministic comparator.
func Sort[T any](fb FlowBuilder, items []T, less func(a, b T) bool) (Task, Task) {
	s := fb.Placeholder().Name("sort_S")
	t := fb.Placeholder().Name("sort_T")
	if len(items) <= sortSequentialThreshold {
		w := fb.Emplace(func() { sortSlice(items, less) })[0].Name("sort_leaf")
		s.Precede(w)
		w.Precede(t)
		return s, t
	}
	buf := make([]T, len(items))
	w := fb.EmplaceSubflow(func(sf *Subflow) {
		mergeSortTask(sf, items, buf, less)
	}).Name("sort_root")
	s.Precede(w)
	w.Precede(t)
	return s, t
}

// mergeSortTask sorts items in place using buf as scratch, spawning
// subflows for the halves.
func mergeSortTask[T any](sf *Subflow, items, buf []T, less func(a, b T) bool) {
	if len(items) <= sortSequentialThreshold {
		sortSlice(items, less)
		return
	}
	mid := len(items) / 2
	left := sf.EmplaceSubflow(func(inner *Subflow) {
		mergeSortTask(inner, items[:mid], buf[:mid], less)
	})
	right := sf.EmplaceSubflow(func(inner *Subflow) {
		mergeSortTask(inner, items[mid:], buf[mid:], less)
	})
	merge := sf.Emplace1(func() {
		mergeHalves(items, buf, mid, less)
	})
	left.Precede(merge)
	right.Precede(merge)
}

func sortSlice[T any](items []T, less func(a, b T) bool) {
	sort.SliceStable(items, func(i, j int) bool { return less(items[i], items[j]) })
}

// mergeHalves merges the sorted halves items[:mid] and items[mid:] through
// buf back into items.
func mergeHalves[T any](items, buf []T, mid int, less func(a, b T) bool) {
	copy(buf, items)
	i, j, k := 0, mid, 0
	for i < mid && j < len(items) {
		if less(buf[j], buf[i]) {
			items[k] = buf[j]
			j++
		} else {
			items[k] = buf[i]
			i++
		}
		k++
	}
	for i < mid {
		items[k] = buf[i]
		i++
		k++
	}
	for j < len(items) {
		items[k] = buf[j]
		j++
		k++
	}
}

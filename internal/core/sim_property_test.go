package core

// The property suite under deterministic simulation: the same
// exactly-once and stats-agreement laws as the -race sweep, but across
// hundreds of seeded schedules per graph instead of whatever
// interleavings the machine happens to produce. Each subtest name embeds
// the full parameter tuple, so any failure is replayed exactly by
// `go test ./internal/core -run 'TestPropertySimSeedSweep/<name>'` —
// the schedule is a pure function of the seed.

import (
	"fmt"
	"testing"

	"gotaskflow/internal/graphgen"
	"gotaskflow/internal/sim"
)

func TestPropertySimSeedSweep(t *testing.T) {
	seeds := int64(150)
	if testing.Short() {
		seeds = 25
	}
	for _, workers := range []int{1, 2, 4} {
		for _, n := range []int{1, 30, 150} {
			for seed := int64(0); seed < seeds; seed++ {
				name := fmt.Sprintf("w%d/n%d/seed%d", workers, n, seed)
				t.Run(name, func(t *testing.T) {
					checkSimDAG(t, workers, n, seed,
						fmt.Sprintf("go test ./internal/core -run 'TestPropertySimSeedSweep/%s' -count=1", name))
				})
			}
		}
	}
}

func checkSimDAG(t *testing.T, workers, n int, seed int64, replay string) {
	d := graphgen.Random(n, graphgen.Config{Seed: seed})
	s := sim.New(workers, sim.WithSeed(seed))
	tf := NewShared(s).CollectRunStats(false)

	execCounts := make([]int32, n)
	tasks := make([]Task, n)
	for i := 0; i < n; i++ {
		i := i
		tasks[i] = tf.Emplace1(func() { execCounts[i]++ })
	}
	for u := 0; u < n; u++ {
		d.Successors(u, func(v int) { tasks[u].Precede(tasks[v]) })
	}

	const runs = 2
	for run := 0; run < runs; run++ {
		if err := tf.Run(); err != nil {
			t.Fatalf("run %d: %v\nreplay: %s", run, err, replay)
		}
		for i, c := range execCounts {
			if int(c) != run+1 {
				t.Fatalf("run %d: node %d executed %d times, want %d\nreplay: %s",
					run, i, c, run+1, replay)
			}
		}
		rs, ok := tf.LastRunStats()
		if !ok {
			t.Fatalf("LastRunStats not ok\nreplay: %s", replay)
		}
		if rs.Tasks != int64(n) {
			t.Fatalf("run %d: RunStats.Tasks = %d, want %d\nreplay: %s", run, rs.Tasks, n, replay)
		}
		if rs.Skipped != 0 || rs.Retries != 0 || rs.Errors != 0 || rs.Cancelled {
			t.Fatalf("run %d: clean run reported failures: %+v\nreplay: %s", run, rs, replay)
		}
	}

	if err := s.Stats().Check(); err != nil {
		t.Fatalf("%v\nreplay: %s", err, replay)
	}
	if err := s.Failure(); err != nil {
		t.Fatalf("liveness failure: %v\nreplay: %s", err, replay)
	}
	if got, want := s.Stats().Executed, uint64(n*runs); got != want {
		t.Fatalf("sim executed %d tasks, want %d\nreplay: %s", got, want, replay)
	}
}

package core

import (
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

var updateGolden = flag.Bool("update", false, "rewrite DOT golden files under testdata/")

// checkGolden compares got against testdata/<name>.dot, rewriting the file
// when -update is set.
func checkGolden(t *testing.T, name, got string) {
	t.Helper()
	path := filepath.Join("testdata", name+".dot")
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("%v (run `go test -run Golden -update ./internal/core` to create it)", err)
	}
	if got != string(want) {
		t.Fatalf("DOT output diverged from %s.\n--- got ---\n%s\n--- want ---\n%s", path, got, want)
	}
}

// nestedSubflowTaskflow builds the paper-Figure-5 shape used by the golden
// dumps: a subflow spawning a nested subflow, joined into a successor.
func nestedSubflowTaskflow(t *testing.T) *Taskflow {
	t.Helper()
	tf := New(2).SetName("nested")
	A := tf.EmplaceSubflow(func(sf *Subflow) {
		A1 := sf.Emplace1(func() {}).Name("A1")
		A2 := sf.EmplaceSubflow(func(sf2 *Subflow) {
			inner := sf2.Emplace(func() {}, func() {})
			inner[0].Name("A2_1").Precede(inner[1].Name("A2_2"))
		}).Name("A2")
		A1.Precede(A2)
	}).Name("A")
	B := tf.Emplace1(func() {}).Name("B")
	A.Precede(B)
	return tf
}

// TestGoldenNestedSubflowDump pins the exact DOT text of a nested-subflow
// topology dump: cluster nesting, join edges, node order. Any formatting
// or structural change must be reviewed through the golden file.
func TestGoldenNestedSubflowDump(t *testing.T) {
	tf := nestedSubflowTaskflow(t)
	defer tf.Close()
	f := tf.Dispatch()
	if err := f.Get(); err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	if err := tf.DumpTopologies(&sb); err != nil {
		t.Fatal(err)
	}
	checkGolden(t, "nested_subflow", sb.String())
	tf.WaitForAll()
}

// TestGoldenNestedSubflowAnnotated pins the annotated dump of the same
// topology: each node carries an execution-count label (×1 everywhere for
// a plain dispatch). Timing is off, so durations never appear and the
// output is deterministic.
func TestGoldenNestedSubflowAnnotated(t *testing.T) {
	tf := nestedSubflowTaskflow(t)
	defer tf.Close()
	tf.CollectRunStats(false)
	f := tf.Dispatch()
	if err := f.Get(); err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	if err := tf.DumpTopologiesAnnotated(&sb); err != nil {
		t.Fatal(err)
	}
	checkGolden(t, "nested_subflow_annotated", sb.String())
	tf.WaitForAll()
}

// TestGoldenAnnotatedConditionLoop pins the annotated present-graph dump
// after a stats-collecting Run of a do-while loop: the loop body and the
// condition show ×10, the untaken path shows its real count, and the weak
// branch edges keep their dashed style and indices.
func TestGoldenAnnotatedConditionLoop(t *testing.T) {
	tf := New(1).SetName("loop")
	defer tf.Close()
	tf.CollectRunStats(false)
	iterations := 0
	init := tf.Emplace1(func() {}).Name("init")
	body := tf.Emplace1(func() { iterations++ }).Name("body")
	cond := tf.EmplaceCondition(func() int {
		if iterations < 10 {
			return 0
		}
		return 1
	}).Name("check")
	done := tf.Emplace1(func() {}).Name("done")
	init.Precede(body)
	body.Precede(cond)
	cond.Precede(body, done)
	if err := tf.Run(); err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	if err := tf.DumpAnnotated(&sb); err != nil {
		t.Fatal(err)
	}
	checkGolden(t, "annotated_loop", sb.String())
}

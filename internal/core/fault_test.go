package core

import (
	"context"
	"errors"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"gotaskflow/internal/executor"
)

func TestEmplaceErrSuccess(t *testing.T) {
	tf := New(2)
	defer tf.Close()
	var n atomic.Int64
	a := tf.EmplaceErr(func() error { n.Add(1); return nil })
	b := tf.EmplaceErr(func() error { n.Add(1); return nil })
	a.Precede(b)
	if err := tf.WaitForAll(); err != nil {
		t.Fatal(err)
	}
	if n.Load() != 2 {
		t.Fatalf("ran %d tasks, want 2", n.Load())
	}
}

func TestEmplaceErrFailFastCancelsTopology(t *testing.T) {
	tf := New(2)
	defer tf.Close()
	boom := errors.New("boom")
	var after atomic.Int64
	bad := tf.EmplaceErr(func() error { return boom }).Name("bad")
	// A long chain behind the failure: none of it may run.
	prev := bad
	for i := 0; i < 50; i++ {
		cur := tf.Emplace1(func() { after.Add(1) })
		prev.Precede(cur)
		prev = cur
	}
	f := tf.Dispatch()
	err := f.Get()
	if !errors.Is(err, boom) {
		t.Fatalf("Get() = %v, want wrapped boom", err)
	}
	if !strings.Contains(err.Error(), `task "bad"`) {
		t.Fatalf("error does not name the failing task: %v", err)
	}
	if !f.Cancelled() {
		t.Fatal("failing task did not cancel the topology")
	}
	if after.Load() != 0 {
		t.Fatalf("%d successors ran after a fail-fast cancel", after.Load())
	}
	tf.WaitForAll()
}

func TestGetJoinsAllErrors(t *testing.T) {
	tf := New(4)
	defer tf.Close()
	e1, e2 := errors.New("first"), errors.New("second")
	ready := make(chan struct{}, 2)
	gate := make(chan struct{})
	// Two independent tasks fail; both errors must surface from Get. Both
	// bodies are in flight before either returns, so neither failure can
	// cancel-skip the other.
	tf.EmplaceErr(func() error { ready <- struct{}{}; <-gate; return e1 })
	tf.EmplaceErr(func() error { ready <- struct{}{}; <-gate; return e2 })
	f := tf.Dispatch()
	<-ready
	<-ready
	close(gate)
	err := f.Get()
	if !errors.Is(err, e1) || !errors.Is(err, e2) {
		t.Fatalf("Get() = %v, want both errors joined", err)
	}
	tf.WaitForAll()
}

func TestEmplaceErrPanicConvertsToError(t *testing.T) {
	tf := New(2)
	defer tf.Close()
	tf.EmplaceErr(func() error { panic("kapow") })
	err := tf.WaitForAll()
	if err == nil || !strings.Contains(err.Error(), "kapow") {
		t.Fatalf("WaitForAll() = %v, want converted panic", err)
	}
}

func TestEmplaceCtxObservesFailFast(t *testing.T) {
	tf := New(2)
	defer tf.Close()
	boom := errors.New("boom")
	started := make(chan struct{})
	var ctxErr error
	slow := tf.EmplaceCtx(func(ctx context.Context) error {
		close(started)
		<-ctx.Done() // unblocked by the sibling's failure
		ctxErr = ctx.Err()
		return nil
	})
	_ = slow
	tf.EmplaceErr(func() error { <-started; return boom })
	if err := tf.WaitForAll(); !errors.Is(err, boom) {
		t.Fatalf("WaitForAll() = %v, want boom", err)
	}
	if !errors.Is(ctxErr, context.Canceled) {
		t.Fatalf("in-flight ctx task observed %v, want context.Canceled", ctxErr)
	}
}

func TestRetryEventuallySucceeds(t *testing.T) {
	tf := New(2)
	defer tf.Close()
	var attempts atomic.Int64
	tf.EmplaceErr(func() error {
		if attempts.Add(1) < 3 {
			return errors.New("transient")
		}
		return nil
	}).Retry(5, time.Millisecond)
	if err := tf.WaitForAll(); err != nil {
		t.Fatalf("WaitForAll() = %v after retries, want nil", err)
	}
	if attempts.Load() != 3 {
		t.Fatalf("body ran %d times, want 3", attempts.Load())
	}
}

func TestRetryExhaustedFails(t *testing.T) {
	tf := New(2)
	defer tf.Close()
	boom := errors.New("persistent")
	var attempts atomic.Int64
	tf.EmplaceErr(func() error { attempts.Add(1); return boom }).
		Name("flaky").Retry(3, time.Millisecond)
	err := tf.WaitForAll()
	if !errors.Is(err, boom) {
		t.Fatalf("WaitForAll() = %v, want persistent failure", err)
	}
	if attempts.Load() != 4 { // 1 initial + 3 retries
		t.Fatalf("body ran %d times, want 4", attempts.Load())
	}
}

func TestRetryOnPanickingPlainTask(t *testing.T) {
	tf := New(2)
	defer tf.Close()
	var attempts atomic.Int64
	tf.Emplace1(func() {
		if attempts.Add(1) < 2 {
			panic("flaky panic")
		}
	}).Retry(3, 0)
	if err := tf.WaitForAll(); err != nil {
		t.Fatalf("WaitForAll() = %v, want nil after panic retry", err)
	}
	if attempts.Load() != 2 {
		t.Fatalf("body ran %d times, want 2", attempts.Load())
	}
}

// A retrying task must wait on a timer, not on a worker: with a single
// worker, other ready tasks run during the backoff window.
func TestRetryDoesNotParkWorker(t *testing.T) {
	tf := New(1)
	defer tf.Close()
	var order []string
	var attempts int
	tf.EmplaceErr(func() error {
		attempts++
		if attempts == 1 {
			return errors.New("first attempt fails")
		}
		order = append(order, "retry")
		return nil
	}).Retry(1, 30*time.Millisecond)
	tf.Emplace1(func() { order = append(order, "other") })
	if err := tf.WaitForAll(); err != nil {
		t.Fatal(err)
	}
	// Appends are single-worker-serialized; no extra synchronization.
	if len(order) != 2 || order[0] != "other" {
		t.Fatalf("execution order %v: the other task did not run during the backoff", order)
	}
}

func TestRetryReacquiresSemaphore(t *testing.T) {
	tf := New(4)
	defer tf.Close()
	sem := NewSemaphore(1)
	var inside, peak atomic.Int64
	var attempts atomic.Int64
	enter := func() {
		v := inside.Add(1)
		for {
			p := peak.Load()
			if v <= p || peak.CompareAndSwap(p, v) {
				break
			}
		}
		inside.Add(-1)
	}
	flaky := tf.EmplaceErr(func() error {
		enter()
		if attempts.Add(1) == 1 {
			return errors.New("transient")
		}
		return nil
	})
	flaky.Acquire(sem).Release(sem).Retry(2, time.Millisecond)
	for i := 0; i < 3; i++ {
		tf.Emplace1(enter).Acquire(sem).Release(sem)
	}
	if err := tf.WaitForAll(); err != nil {
		t.Fatal(err)
	}
	if peak.Load() != 1 {
		t.Fatalf("semaphore admitted %d concurrent tasks across retries, want 1", peak.Load())
	}
}

func TestRunContextDeadline(t *testing.T) {
	tf := New(2)
	defer tf.Close()
	var done atomic.Int64
	gate := make(chan struct{})
	head := tf.Emplace1(func() { <-gate })
	tail := tf.Emplace1(func() { done.Add(1) })
	head.Precede(tail)
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	go func() { time.Sleep(60 * time.Millisecond); close(gate) }()
	err := tf.RunContext(ctx)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("RunContext = %v, want DeadlineExceeded", err)
	}
	if done.Load() != 0 {
		t.Fatal("successor ran after the deadline cancelled the run")
	}
	// The deadline does not stick: a later Run succeeds.
	if err := tf.Run(); err != nil {
		t.Fatalf("Run after expired RunContext = %v", err)
	}
	if done.Load() != 1 {
		t.Fatalf("tail ran %d times in the follow-up run, want 1", done.Load())
	}
}

func TestRunContextAlreadyCancelled(t *testing.T) {
	tf := New(2)
	defer tf.Close()
	var ran atomic.Int64
	tf.Emplace1(func() { ran.Add(1) })
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if err := tf.RunContext(ctx); !errors.Is(err, context.Canceled) {
		t.Fatalf("RunContext on done ctx = %v, want Canceled", err)
	}
	if ran.Load() != 0 {
		t.Fatal("task ran despite an already-cancelled context")
	}
}

func TestDispatchContextCancel(t *testing.T) {
	tf := New(2)
	defer tf.Close()
	started := make(chan struct{})
	gate := make(chan struct{})
	var after atomic.Int64
	head := tf.Emplace1(func() { close(started); <-gate })
	tail := tf.Emplace1(func() { after.Add(1) })
	head.Precede(tail)
	ctx, cancel := context.WithCancel(context.Background())
	f := tf.DispatchContext(ctx)
	<-started
	cancel()
	// The cancel watcher runs asynchronously; wait for it to take effect
	// before letting the head task finish.
	for !f.Cancelled() {
		time.Sleep(time.Millisecond)
	}
	close(gate)
	if err := f.Get(); !errors.Is(err, context.Canceled) {
		t.Fatalf("Get() = %v, want context.Canceled", err)
	}
	if after.Load() != 0 {
		t.Fatal("successor ran after context cancellation")
	}
	tf.WaitForAll()
}

func TestDispatchContextCtxTaskObservesDeadline(t *testing.T) {
	tf := New(2)
	defer tf.Close()
	observed := make(chan error, 1)
	tf.EmplaceCtx(func(ctx context.Context) error {
		<-ctx.Done()
		observed <- ctx.Err()
		return ctx.Err()
	})
	ctx, cancel := context.WithTimeout(context.Background(), 15*time.Millisecond)
	defer cancel()
	f := tf.DispatchContext(ctx)
	if err := f.Get(); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("Get() = %v, want DeadlineExceeded", err)
	}
	if err := <-observed; !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("body ctx reported %v, want DeadlineExceeded", err)
	}
	tf.WaitForAll()
}

func TestRunWithErrTasksResetsBetweenRuns(t *testing.T) {
	tf := New(2)
	defer tf.Close()
	fail := true
	tf.EmplaceErr(func() error {
		if fail {
			return errors.New("once")
		}
		return nil
	})
	if err := tf.Run(); err == nil {
		t.Fatal("first run should fail")
	}
	fail = false
	if err := tf.Run(); err != nil {
		t.Fatalf("second run = %v, want nil (error must not stick)", err)
	}
}

func TestDispatchCyclicGraphErrors(t *testing.T) {
	tf := New(2)
	defer tf.Close()
	src := tf.Emplace1(func() {}).Name("src")
	a := tf.Emplace1(func() {}).Name("a")
	b := tf.Emplace1(func() {}).Name("b")
	c := tf.Emplace1(func() {}).Name("c")
	src.Precede(a)
	a.Precede(b)
	b.Precede(c)
	c.Precede(a) // cycle a -> b -> c -> a behind a live source
	f := tf.Dispatch()
	err := f.Get()
	if !errors.Is(err, ErrCyclic) {
		t.Fatalf("Get() = %v, want ErrCyclic", err)
	}
	for _, name := range []string{"a", "b", "c"} {
		if !strings.Contains(err.Error(), name) {
			t.Fatalf("cycle error %q does not name task %q", err, name)
		}
	}
	tf.WaitForAll()
}

func TestRunCyclicGraphErrors(t *testing.T) {
	tf := New(2)
	defer tf.Close()
	src := tf.Emplace1(func() {})
	a := tf.Emplace1(func() {}).Name("x")
	b := tf.Emplace1(func() {}).Name("y")
	src.Precede(a)
	a.Precede(b)
	b.Precede(a)
	if err := tf.Run(); !errors.Is(err, ErrCyclic) {
		t.Fatalf("Run = %v, want ErrCyclic", err)
	}
}

// Condition-task loops are legal cycles and must not be rejected.
func TestDispatchConditionLoopNotFlaggedCyclic(t *testing.T) {
	tf := New(2)
	defer tf.Close()
	i := 0
	init := tf.Emplace1(func() {})
	body := tf.Emplace1(func() { i++ })
	cond := tf.EmplaceCondition(func() int {
		if i < 3 {
			return 0
		}
		return 1
	})
	exit := tf.Emplace1(func() {})
	init.Precede(body)
	body.Precede(cond)
	cond.Precede(body, exit)
	if err := tf.WaitForAll(); err != nil {
		t.Fatalf("condition loop rejected: %v", err)
	}
	if i != 3 {
		t.Fatalf("loop body ran %d times, want 3", i)
	}
}

func TestDispatchAfterShutdownReportsErrShutdown(t *testing.T) {
	tf := New(2)
	tf.Emplace1(func() {})
	tf.Close() // shuts down the owned executor
	f := tf.Dispatch()
	if err := f.Get(); !errors.Is(err, executor.ErrShutdown) {
		t.Fatalf("Get() after Close = %v, want ErrShutdown", err)
	}
}

func TestRunAfterShutdownReportsErrShutdown(t *testing.T) {
	tf := New(2)
	tf.Emplace1(func() {})
	tf.Close()
	if err := tf.Run(); !errors.Is(err, executor.ErrShutdown) {
		t.Fatalf("Run() after Close = %v, want ErrShutdown", err)
	}
}

func TestSubflowEmplaceErrFailFast(t *testing.T) {
	tf := New(2)
	defer tf.Close()
	boom := errors.New("inner")
	var after atomic.Int64
	sub := tf.EmplaceSubflow(func(sf *Subflow) {
		bad := sf.EmplaceErr(func() error { return boom })
		next := sf.Emplace1(func() { after.Add(1) })
		bad.Precede(next)
	})
	tail := tf.Emplace1(func() { after.Add(1) })
	sub.Precede(tail)
	err := tf.WaitForAll()
	if !errors.Is(err, boom) {
		t.Fatalf("WaitForAll() = %v, want inner failure", err)
	}
	if after.Load() != 0 {
		t.Fatalf("%d tasks ran after a subflow fail-fast", after.Load())
	}
}

// Steady-state alloc gate for the fault layer itself: a graph with
// error-returning tasks that succeed re-runs without allocating (the
// fallible path mints no per-execution objects).
func TestRunErrTasksZeroAllocWhenHealthy(t *testing.T) {
	tf := New(2)
	defer tf.Close()
	var n int64
	prev := tf.EmplaceErr(func() error { n++; return nil })
	for i := 0; i < 15; i++ {
		next := tf.EmplaceErr(func() error { n++; return nil })
		prev.Precede(next)
		prev = next
	}
	if err := tf.Run(); err != nil {
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(100, func() {
		if err := tf.Run(); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Fatalf("healthy EmplaceErr chain allocates %v objects/run, want 0", allocs)
	}
}

package core

// Core-layer admission tests: a topology bound to a flow must charge the
// quota exactly once per dispatch and undo the charge exactly once on
// every exit path — success, refusal, task failure, and shutdown during
// a retry backoff. The counters make both leak directions visible:
// admitted > released is a leaked reservation, released > admitted is a
// double undo.

import (
	"errors"
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"gotaskflow/internal/executor"
	"gotaskflow/internal/testutil"
)

// TestFlowAdmissionRejectLeavesNoCharge: a dispatch refused by the quota
// runs nothing and charges nothing — all-or-nothing admission.
func TestFlowAdmissionRejectLeavesNoCharge(t *testing.T) {
	e := executor.New(2)
	defer e.Shutdown()
	f := e.NewFlow("small", executor.FlowConfig{MaxInFlight: 4})

	tf := NewShared(e).SetFlow(f)
	var ran atomic.Int64
	for i := 0; i < 10; i++ {
		tf.Emplace1(func() { ran.Add(1) })
	}
	err := tf.Run()
	if !errors.Is(err, executor.ErrAdmission) {
		t.Fatalf("Run = %v, want ErrAdmission", err)
	}
	if ran.Load() != 0 {
		t.Fatalf("refused graph ran %d tasks, want 0", ran.Load())
	}
	st := f.Stats()
	if st.InFlight != 0 || st.AdmittedTasks != 0 || st.ReleasedTasks != 0 {
		t.Fatalf("refusal charged the flow: in-flight %d admitted %d released %d, want all 0",
			st.InFlight, st.AdmittedTasks, st.ReleasedTasks)
	}
	if st.AdmissionRejects != 10 {
		t.Fatalf("admission rejects = %d, want 10 (one per node)", st.AdmissionRejects)
	}
}

// TestFlowShedExactlyOnce: a dispatch shed at the backlog watermark runs
// nothing, charges nothing, and the admitted dispatches around it still
// balance — no double undo from mixing refusal paths.
func TestFlowShedExactlyOnce(t *testing.T) {
	e := executor.New(1)
	defer e.Shutdown()

	started := make(chan struct{})
	release := make(chan struct{})
	e.SubmitFunc(func(executor.Context) { close(started); <-release })
	<-started

	f := e.NewFlow("wm", executor.FlowConfig{MaxBacklog: 2})
	var ran atomic.Int64
	job := func() *Future {
		jf := NewShared(e).SetFlow(f)
		jf.Emplace1(func() { ran.Add(1) })
		return jf.Dispatch()
	}
	// Worker blocked: each admitted dispatch parks its source in the flow
	// queue, so the third meets the watermark and sheds.
	ok1, ok2 := job(), job()
	shed := job()
	if err := shed.Get(); !errors.Is(err, executor.ErrOverloaded) {
		t.Fatalf("third dispatch = %v, want ErrOverloaded", err)
	}
	st := f.Stats()
	if st.OverloadSheds != 1 || st.AdmittedTasks != 2 {
		t.Fatalf("sheds/admitted = %d/%d, want 1/2", st.OverloadSheds, st.AdmittedTasks)
	}
	if st.ReleasedTasks != 0 {
		t.Fatalf("shed released %d reservations it never took", st.ReleasedTasks)
	}

	close(release)
	if err := ok1.Get(); err != nil {
		t.Fatal(err)
	}
	if err := ok2.Get(); err != nil {
		t.Fatal(err)
	}
	if ran.Load() != 2 {
		t.Fatalf("ran %d tasks, want 2 (shed job must not run)", ran.Load())
	}
	st = f.Stats()
	if st.AdmittedTasks != st.ReleasedTasks || st.InFlight != 0 {
		t.Fatalf("admitted %d released %d in-flight %d: charge not undone exactly once",
			st.AdmittedTasks, st.ReleasedTasks, st.InFlight)
	}
}

// TestFlowFailureReleasesExactlyOnce: a flow-bound graph whose task fails
// still returns its whole reservation exactly once, and the same
// taskflow re-runs cleanly afterwards (the reservation is per-run).
func TestFlowFailureReleasesExactlyOnce(t *testing.T) {
	e := executor.New(2)
	defer e.Shutdown()
	f := e.NewFlow("fail", executor.FlowConfig{MaxInFlight: 8})

	tf := NewShared(e).SetFlow(f)
	boom := errors.New("boom")
	var fail atomic.Bool
	fail.Store(true)
	a := tf.EmplaceErr(func() error {
		if fail.Load() {
			return boom
		}
		return nil
	})
	b := tf.Emplace1(func() {})
	a.Precede(b)

	if err := tf.Run(); !errors.Is(err, boom) {
		t.Fatalf("Run = %v, want boom", err)
	}
	st := f.Stats()
	if st.AdmittedTasks != st.ReleasedTasks || st.InFlight != 0 {
		t.Fatalf("failed run leaked: admitted %d released %d in-flight %d",
			st.AdmittedTasks, st.ReleasedTasks, st.InFlight)
	}

	// The quota is whole again: an immediate re-run admits and succeeds.
	fail.Store(false)
	if err := tf.Run(); err != nil {
		t.Fatalf("re-run after failure: %v", err)
	}
	st = f.Stats()
	if st.AdmittedTasks != st.ReleasedTasks || st.InFlight != 0 {
		t.Fatalf("re-run leaked: admitted %d released %d in-flight %d",
			st.AdmittedTasks, st.ReleasedTasks, st.InFlight)
	}
}

// TestFlowShutdownReleasesExactlyOnce: shutting the executor down while a
// flow-bound retry backoff is armed resolves the timer, fails the
// topology, and returns the reservation exactly once — no leak, no
// double undo, no hung Future.
func TestFlowShutdownReleasesExactlyOnce(t *testing.T) {
	testutil.NoLeaks(t)
	e := executor.New(1)
	f := e.NewFlow("shut", executor.FlowConfig{MaxInFlight: 4})

	tf := NewShared(e).SetFlow(f)
	armed := make(chan struct{})
	var once sync.Once
	tf.EmplaceErr(func() error {
		once.Do(func() { close(armed) })
		return errors.New("transient")
	}).Retry(3, time.Hour)

	fut := tf.Dispatch()
	<-armed
	e.Shutdown()
	if err := fut.Get(); !errors.Is(err, executor.ErrShutdown) {
		t.Fatalf("Get after shutdown = %v, want ErrShutdown", err)
	}
	st := f.Stats()
	if st.AdmittedTasks != 1 || st.ReleasedTasks != 1 || st.InFlight != 0 {
		t.Fatalf("shutdown path: admitted %d released %d in-flight %d, want 1/1/0",
			st.AdmittedTasks, st.ReleasedTasks, st.InFlight)
	}
}

// TestFlowFairnessRaceMirror is the -race mirror of the sim fairness
// sweep: many goroutines run chains through three flows of different
// classes under real preemption, quota refusals are retried, and at the
// end the metrics reconcile, every reservation balances, and no
// goroutine leaks.
func TestFlowFairnessRaceMirror(t *testing.T) {
	testutil.NoLeaks(t)
	e := executor.New(4, executor.WithMetrics())
	defer e.Shutdown()
	flows := []executor.Flow{
		e.NewFlow("ia", executor.FlowConfig{Class: executor.Interactive, Weight: 2, MaxInFlight: 6}),
		e.NewFlow("batch", executor.FlowConfig{Class: executor.Batch, Weight: 3}),
		e.NewFlow("bg", executor.FlowConfig{Class: executor.Background, Weight: 1, MaxInFlight: 4}),
	}

	var done, refused atomic.Int64
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(g)))
			for i := 0; i < 50; i++ {
				tf := NewShared(e).SetFlow(flows[rng.Intn(len(flows))])
				var n atomic.Int64
				chain := 1 + rng.Intn(3)
				var prev Task
				for k := 0; k < chain; k++ {
					c := tf.Emplace1(func() { n.Add(1) })
					if k > 0 {
						prev.Precede(c)
					}
					prev = c
				}
				for {
					err := tf.Run()
					if err == nil {
						break
					}
					if !errors.Is(err, executor.ErrAdmission) && !errors.Is(err, executor.ErrOverloaded) {
						t.Errorf("g%d job %d: %v", g, i, err)
						return
					}
					refused.Add(1)
					time.Sleep(10 * time.Microsecond)
				}
				if n.Load() != int64(chain) {
					t.Errorf("g%d job %d: ran %d/%d nodes", g, i, n.Load(), chain)
					return
				}
				done.Add(1)
			}
		}(g)
	}
	wg.Wait()
	if done.Load() != 8*50 {
		t.Fatalf("completed %d/%d jobs", done.Load(), 8*50)
	}

	snap, ok := e.MetricsSnapshot()
	if !ok {
		t.Fatal("MetricsSnapshot unavailable despite WithMetrics")
	}
	if err := snap.Reconcile(); err != nil {
		t.Fatal(err)
	}
	for _, st := range e.FlowStats() {
		if st.AdmittedTasks != st.ReleasedTasks || st.InFlight != 0 {
			t.Fatalf("flow %q: admitted %d released %d in-flight %d",
				st.Name, st.AdmittedTasks, st.ReleasedTasks, st.InFlight)
		}
		if st.MaxInFlight > 0 && st.PeakInFlight > int64(st.MaxInFlight) {
			t.Fatalf("flow %q: peak %d exceeds quota %d", st.Name, st.PeakInFlight, st.MaxInFlight)
		}
	}
	t.Logf("race mirror: %d jobs, %d admission refusals retried", done.Load(), refused.Load())
}

// TestRunFlowBoundZeroAlloc: binding a taskflow to a flow must not put
// allocations on the steady-state re-run path — admission is atomics,
// the flow ring is warm, and the intrusive refs are reused.
func TestRunFlowBoundZeroAlloc(t *testing.T) {
	e := executor.New(2)
	defer e.Shutdown()
	f := e.NewFlow("hot", executor.FlowConfig{Class: executor.Interactive, MaxInFlight: 128})
	tf := NewShared(e).SetFlow(f)
	var n int64
	prev := tf.Emplace1(func() { n++ })
	for i := 0; i < 63; i++ {
		next := tf.Emplace1(func() { n++ })
		prev.Precede(next)
		prev = next
	}
	if err := tf.Run(); err != nil { // build run state outside measurement
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(100, func() {
		if err := tf.Run(); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Fatalf("flow-bound linear-chain Run allocates %v objects/run, want 0", allocs)
	}
}

package core

import (
	"fmt"
	"sync/atomic"
)

// node is one vertex of a task dependency graph. It stores a general-purpose
// work callable (static work or a subflow spawner — the Go counterpart of
// the paper's std::variant-based polymorphic function wrapper), its
// successor list, and the runtime join counter used during execution.
type node struct {
	name string

	// At most one of work/subflowWork/condWork is non-nil for a runnable
	// node; all nil means a placeholder that acts as a synchronization
	// point. condWork marks a condition task: its integer result selects
	// which successor to signal, and its out-edges are weak (they do not
	// count toward successors' join counters), enabling branches and
	// loops in the task graph.
	work        func()
	subflowWork func(*Subflow)
	condWork    func() int

	// Successor edges: the first two live inline (most task graphs —
	// wavefronts, circuit netlists, training pipelines — have fanout <= 2,
	// so the common case allocates nothing); the rest overflow to a slice.
	succInline [2]*node
	succCount  int
	succSpill  []*node

	// numDependents counts strong in-edges (those participating in the
	// join counter); numWeakPreds counts in-edges from condition tasks. A
	// node is a topology source only when both are zero.
	numDependents int
	numWeakPreds  int

	// join is the number of unfinished dependents; a node becomes ready
	// when it drops to zero. Reset from numDependents at dispatch.
	join atomic.Int32

	// children counts unfinished nodes of a joined spawned subflow; the
	// node's completion is deferred until it drains.
	children atomic.Int32

	// parent is the spawning node for joined-subflow members, nil for
	// top-level and detached nodes.
	parent *node

	// acquires lists semaphores the node must obtain before each
	// execution (kept sorted by identity); releases lists semaphores it
	// returns units to afterwards.
	acquires []*Semaphore
	releases []*Semaphore

	// subgraph records the child graph spawned at runtime (for joining,
	// re-dispatch invalidation and DOT dumps).
	subgraph *graph
	detached bool

	topo *topology
}

func (n *node) precede(m *node) {
	if n.succCount < len(n.succInline) {
		n.succInline[n.succCount] = m
	} else {
		n.succSpill = append(n.succSpill, m)
	}
	n.succCount++
	if n.isCondition() {
		m.numWeakPreds++
	} else {
		m.numDependents++
	}
}

func (n *node) isCondition() bool { return n.condWork != nil }

// isSource reports whether the node starts when its topology starts.
func (n *node) isSource() bool { return n.numDependents == 0 && n.numWeakPreds == 0 }

// successor returns the i-th successor in insertion order.
func (n *node) successor(i int) *node {
	if i < len(n.succInline) {
		return n.succInline[i]
	}
	return n.succSpill[i-len(n.succInline)]
}

// numSuccessors returns the out-degree.
func (n *node) numSuccessors() int { return n.succCount }

// eachSuccessor visits every successor in insertion order.
func (n *node) eachSuccessor(visit func(*node)) {
	k := n.succCount
	if k > len(n.succInline) {
		k = len(n.succInline)
	}
	for i := 0; i < k; i++ {
		visit(n.succInline[i])
	}
	for _, s := range n.succSpill {
		visit(s)
	}
}

// label returns the display name used in DOT dumps and errors.
func (n *node) label(i int) string {
	if n.name != "" {
		return n.name
	}
	return fmt.Sprintf("p%#x", i)
}

// arenaChunk is the node-arena block size: nodes are allocated in blocks
// to cut per-task allocation cost for large graphs (million-scale tasking,
// paper Section IV). Blocks give nodes stable addresses, which Task
// handles rely on.
const arenaChunk = 128

// graph is an ordered collection of nodes under construction or execution.
type graph struct {
	nodes []*node
	arena []node
}

// alloc returns a zeroed node from the arena.
func (g *graph) alloc() *node {
	if len(g.arena) == 0 {
		g.arena = make([]node, arenaChunk)
	}
	n := &g.arena[0]
	g.arena = g.arena[1:]
	return n
}

func (g *graph) emplace(n *node) *node {
	g.nodes = append(g.nodes, n)
	return n
}

// emplaceWork adds a node running fn.
func (g *graph) emplaceWork(fn func()) *node {
	n := g.alloc()
	n.work = fn
	return g.emplace(n)
}

// emplaceSubflow adds a dynamic-tasking node.
func (g *graph) emplaceSubflow(fn func(*Subflow)) *node {
	n := g.alloc()
	n.subflowWork = fn
	return g.emplace(n)
}

// emplaceCondition adds a condition task whose result selects the
// successor to signal.
func (g *graph) emplaceCondition(fn func() int) *node {
	n := g.alloc()
	n.condWork = fn
	return g.emplace(n)
}

// emplacePlaceholder adds a node with no work.
func (g *graph) emplacePlaceholder() *node {
	return g.emplace(g.alloc())
}

func (g *graph) len() int { return len(g.nodes) }

// totalNodes counts the nodes of g plus all recursively spawned subgraphs.
// Only meaningful after execution completes.
func (g *graph) totalNodes() int {
	total := len(g.nodes)
	for _, n := range g.nodes {
		if n.subgraph != nil {
			total += n.subgraph.totalNodes()
		}
	}
	return total
}

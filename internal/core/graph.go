package core

import (
	"context"
	"fmt"
	"sync/atomic"

	"gotaskflow/internal/executor"
)

// node is one vertex of a task dependency graph. It stores a general-purpose
// work callable (static work or a subflow spawner — the Go counterpart of
// the paper's std::variant-based polymorphic function wrapper), its
// successor list, and the runtime join counter used during execution.
type node struct {
	name string

	// At most one of work/errWork/ctxWork/subflowWork/condWork is non-nil
	// for a runnable node; all nil means a placeholder that acts as a
	// synchronization point. condWork marks a condition task: its integer
	// result selects which successor to signal, and its out-edges are weak
	// (they do not count toward successors' join counters), enabling
	// branches and loops in the task graph. errWork and ctxWork are the
	// fallible variants: a non-nil returned error fail-fast-cancels the
	// topology (see topology.runFallible).
	work        func()
	errWork     func() error
	ctxWork     func(context.Context) error
	subflowWork func(*Subflow)
	condWork    func() int

	// Successor edges: the first four live inline (most task graphs —
	// wavefronts, circuit netlists, training pipelines, and the paper's
	// degree-4-bounded random DAGs — have fanout <= 4, so the common case
	// allocates nothing); the rest overflow to a slice.
	succInline [4]*node
	succCount  int
	succSpill  []*node

	// numDependents counts strong in-edges (those participating in the
	// join counter); numWeakPreds counts in-edges from condition tasks. A
	// node is a topology source only when both are zero.
	numDependents int
	numWeakPreds  int

	// idx is the node's position in its graph's node list, assigned at
	// emplace time. Dispatch-time cycle detection indexes its scratch
	// arrays with it instead of allocating a map per dispatch.
	idx int32

	// traceID is a process-unique task identity assigned at allocation,
	// used by trace exports to match dependency-release events to the
	// spans they released (node pointers are unstable identity across
	// text formats; a counter is not).
	traceID uint64

	// join is the number of unfinished dependents; a node becomes ready
	// when it drops to zero. Reset from numDependents at dispatch.
	join atomic.Int32

	// children counts unfinished nodes of a joined spawned subflow; the
	// node's completion is deferred until it drains.
	children atomic.Int32

	// execCount/execDurNs record the node's body executions and their
	// summed duration within the current run. Written only when the
	// topology collects run stats (see stats.go); the annotated DOT dump
	// reads them. execDurNs stays zero unless timing was requested.
	execCount atomic.Uint64
	execDurNs atomic.Int64

	// readyAtNs is the monotonic instant (nowNanos, latency.go) the
	// node's current execution became ready, i.e. was queued. Written by
	// whichever goroutine queues the execution and read by the worker
	// that runs it; the queue publication provides the happens-before
	// edge, so a plain field suffices. Stamped only when the topology
	// records latency histograms (topology.lat non-nil).
	readyAtNs int64

	// parent is the spawning node for joined-subflow members, nil for
	// top-level and detached nodes.
	parent *node

	// ext holds the node's rarely used cold fields (display name,
	// semaphore lists, spawned subgraph), allocated on first use. Most
	// graphs never touch them, and large graphs are built in bulk, so
	// keeping them out of line shrinks every node the arena allocates —
	// less to zero and less for the garbage collector to scan.
	ext *nodeExt

	topo *topology

	// rbox is the node's intrusive task slot: a Runnable interface value
	// holding the node itself, initialized once at allocation. The
	// scheduler's currency is &n.rbox, so submitting an execution pushes a
	// pre-existing pointer — no closure is minted and nothing is boxed on
	// the hot path. A node has at most one outstanding scheduled execution
	// (the join-counter protocol guarantees it), so one slot suffices.
	rbox executor.Runnable
}

// nodeExt is the out-of-line cold part of a node; see node.ext.
type nodeExt struct {
	name string

	// acquires lists semaphores the node must obtain before each
	// execution (kept sorted by identity); releases lists semaphores it
	// returns units to afterwards.
	acquires []*Semaphore
	releases []*Semaphore

	// subgraph records the child graph spawned at runtime (for joining,
	// re-dispatch invalidation and DOT dumps).
	subgraph *graph
	detached bool

	// retry is the node's failure-retry policy (nil: fail immediately);
	// attempts counts the failures of the current execution. attempts is
	// only touched by the node's own execution and the timer resubmitting
	// it, which are strictly ordered.
	retry    *retryPolicy
	attempts int
}

// extra returns the node's cold-field block, allocating it on first use.
// Callers mutate it only while they own the node (graph construction, or
// the node's own execution).
func (n *node) extra() *nodeExt {
	if n.ext == nil {
		n.ext = &nodeExt{}
	}
	return n.ext
}

// nodeName returns the assigned display name ("" if unnamed).
func (n *node) nodeName() string {
	if n.ext != nil {
		return n.ext.name
	}
	return ""
}

// hasAcquires reports whether the node must obtain semaphores before each
// execution — the scheduling hot path's one-branch test for the rare case.
func (n *node) hasAcquires() bool {
	return n.ext != nil && len(n.ext.acquires) > 0
}

// retryPolicy returns the node's retry policy (nil when absent) — like
// hasAcquires, a one-branch test for the common no-retry case.
func (n *node) retryPolicy() *retryPolicy {
	if n.ext != nil {
		return n.ext.retry
	}
	return nil
}

// isFallible reports whether the node's body can report failure: an
// error-returning or context-aware work kind, or any work kind with a
// retry policy attached.
func (n *node) isFallible() bool {
	return n.errWork != nil || n.ctxWork != nil || n.retryPolicy() != nil
}

// semAcquires returns the node's acquisition list (nil when absent).
func (n *node) semAcquires() []*Semaphore {
	if n.ext != nil {
		return n.ext.acquires
	}
	return nil
}

// semReleases returns the node's release list (nil when absent).
func (n *node) semReleases() []*Semaphore {
	if n.ext != nil {
		return n.ext.releases
	}
	return nil
}

// spawned returns the child graph recorded by the node's last execution.
func (n *node) spawned() *graph {
	if n.ext != nil {
		return n.ext.subgraph
	}
	return nil
}

func (n *node) precede(m *node) {
	if n.succCount < len(n.succInline) {
		n.succInline[n.succCount] = m
	} else {
		if n.succSpill == nil {
			// Skip append's 1->2->4 regrowth: high-fanout nodes land here
			// once and then double from a useful size.
			n.succSpill = make([]*node, 0, 4)
		}
		n.succSpill = append(n.succSpill, m)
	}
	n.succCount++
	if n.isCondition() {
		m.numWeakPreds++
	} else {
		m.numDependents++
	}
}

func (n *node) isCondition() bool { return n.condWork != nil }

// Run implements executor.Runnable: one execution of the node under its
// current topology. The executor invokes it through the node's intrusive
// rbox slot.
func (n *node) Run(ctx executor.Context) { n.topo.runNode(ctx, n) }

// ref returns the node's submit-ready task reference.
func (n *node) ref() *executor.Runnable { return &n.rbox }

// isSource reports whether the node starts when its topology starts.
func (n *node) isSource() bool { return n.numDependents == 0 && n.numWeakPreds == 0 }

// successor returns the i-th successor in insertion order.
func (n *node) successor(i int) *node {
	if i < len(n.succInline) {
		return n.succInline[i]
	}
	return n.succSpill[i-len(n.succInline)]
}

// numSuccessors returns the out-degree.
func (n *node) numSuccessors() int { return n.succCount }

// eachSuccessor visits every successor in insertion order.
func (n *node) eachSuccessor(visit func(*node)) {
	k := n.succCount
	if k > len(n.succInline) {
		k = len(n.succInline)
	}
	for i := 0; i < k; i++ {
		visit(n.succInline[i])
	}
	for _, s := range n.succSpill {
		visit(s)
	}
}

// label returns the display name used in DOT dumps and errors.
func (n *node) label(i int) string {
	if name := n.nodeName(); name != "" {
		return name
	}
	return fmt.Sprintf("p%#x", i)
}

// traceIDCounter hands out process-unique node identities; see
// node.traceID. The zero value is reserved so a zero TaskMeta is
// distinguishable from any real task.
var traceIDCounter atomic.Uint64

// Describe implements executor.Described: the task identity carried into
// observer hooks and trace events. Building it copies string headers and
// integers — no allocation on the traced hot path.
func (n *node) Describe() executor.TaskMeta {
	m := executor.TaskMeta{
		Name: n.nodeName(),
		ID:   n.traceID,
		Idx:  n.idx,
	}
	if t := n.topo; t != nil {
		m.Flow = t.flowName
		m.Gen = t.gen.Load()
	}
	return m
}

// arenaChunk is the node-arena block size: nodes are allocated in blocks
// to cut per-task allocation cost for large graphs (million-scale tasking,
// paper Section IV). Blocks give nodes stable addresses, which Task
// handles rely on.
const arenaChunk = 128

// graph is an ordered collection of nodes under construction or execution.
type graph struct {
	nodes []*node
	arena []node
}

// alloc returns a zeroed node from the arena with its intrusive task slot
// armed.
func (g *graph) alloc() *node {
	if len(g.arena) == 0 {
		g.arena = make([]node, arenaChunk)
	}
	n := &g.arena[0]
	g.arena = g.arena[1:]
	n.rbox = n
	n.traceID = traceIDCounter.Add(1)
	return n
}

func (g *graph) emplace(n *node) *node {
	n.idx = int32(len(g.nodes))
	g.nodes = append(g.nodes, n)
	return n
}

// emplaceWork adds a node running fn.
func (g *graph) emplaceWork(fn func()) *node {
	n := g.alloc()
	n.work = fn
	return g.emplace(n)
}

// emplaceErr adds a node running the error-returning fn.
func (g *graph) emplaceErr(fn func() error) *node {
	n := g.alloc()
	n.errWork = fn
	return g.emplace(n)
}

// emplaceCtx adds a node running the context-aware fn.
func (g *graph) emplaceCtx(fn func(context.Context) error) *node {
	n := g.alloc()
	n.ctxWork = fn
	return g.emplace(n)
}

// emplaceSubflow adds a dynamic-tasking node.
func (g *graph) emplaceSubflow(fn func(*Subflow)) *node {
	n := g.alloc()
	n.subflowWork = fn
	return g.emplace(n)
}

// emplaceCondition adds a condition task whose result selects the
// successor to signal.
func (g *graph) emplaceCondition(fn func() int) *node {
	n := g.alloc()
	n.condWork = fn
	return g.emplace(n)
}

// emplacePlaceholder adds a node with no work.
func (g *graph) emplacePlaceholder() *node {
	return g.emplace(g.alloc())
}

func (g *graph) len() int { return len(g.nodes) }

// totalNodes counts the nodes of g plus all recursively spawned subgraphs.
// Only meaningful after execution completes.
func (g *graph) totalNodes() int {
	total := len(g.nodes)
	for _, n := range g.nodes {
		if sg := n.spawned(); sg != nil {
			total += sg.totalNodes()
		}
	}
	return total
}

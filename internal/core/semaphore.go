package core

import (
	"sync"
	"sync/atomic"

	"gotaskflow/internal/executor"
)

// Semaphore limits how many tasks run concurrently in a section of the
// graph — Cpp-Taskflow's tf::Semaphore. A task that lists a semaphore in
// Acquire is only submitted to the executor once it has obtained a unit
// from every listed semaphore; it never occupies a worker while blocked.
// Tasks listing a semaphore in Release return units on completion, waking
// parked tasks. A semaphore with count 1 acquired and released by the
// same tasks forms a critical section.
type Semaphore struct {
	id uint64

	mu      sync.Mutex
	count   int
	waiters []*node
}

var semaphoreIDs atomic.Uint64

// NewSemaphore creates a semaphore with the given initial unit count.
func NewSemaphore(count int) *Semaphore {
	if count < 0 {
		panic("core: negative semaphore count")
	}
	return &Semaphore{id: semaphoreIDs.Add(1), count: count}
}

// Value returns the currently available units (a racy snapshot).
func (s *Semaphore) Value() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.count
}

// tryAcquireOrPark takes one unit, or parks n on the waiter list. Returns
// whether the unit was obtained. A parked node is owned by the semaphore
// until a release hands it back.
func (s *Semaphore) tryAcquireOrPark(n *node) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.count > 0 {
		s.count--
		return true
	}
	s.waiters = append(s.waiters, n)
	return false
}

// release returns one unit and pops a parked node, if any, whose
// admission the caller must retry.
func (s *Semaphore) release() *node {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.count++
	if len(s.waiters) == 0 {
		return nil
	}
	w := s.waiters[0]
	s.waiters = s.waiters[:copy(s.waiters, s.waiters[1:])]
	return w
}

// Acquire makes the task take one unit from each semaphore before it
// starts (per execution). The acquisition list is kept sorted by semaphore
// identity so tasks acquiring the same set cannot deadlock each other.
func (t Task) Acquire(sems ...*Semaphore) Task {
	t.must("Acquire")
	ext := t.node.extra()
	for _, s := range sems {
		ext.acquires = insertSem(ext.acquires, s)
	}
	return t
}

// Release makes the task return one unit to each semaphore when its
// callable finishes (per execution).
func (t Task) Release(sems ...*Semaphore) Task {
	t.must("Release")
	ext := t.node.extra()
	ext.releases = append(ext.releases, sems...)
	return t
}

func insertSem(list []*Semaphore, s *Semaphore) []*Semaphore {
	pos := len(list)
	for i, other := range list {
		if s.id < other.id {
			pos = i
			break
		}
	}
	list = append(list, nil)
	copy(list[pos+1:], list[pos:])
	list[pos] = s
	return list
}

// submitter abstracts "where a semaphore-admitted task goes": a worker's
// scheduling Context during execution, or the scheduler's injection queue
// at dispatch and retry time (through the execSubmitter adapter, boxed
// once per topology as topology.sub). Admission paths pass them directly
// instead of minting a method-value closure per call.
type submitter interface {
	Submit(r *executor.Runnable)
}

// admit obtains every semaphore of n or parks it on the first unavailable
// one, rolling back units already taken (waking their waiters through
// sub). Returns whether n may be submitted now.
func (t *topology) admit(sub submitter, n *node) bool {
	acquires := n.semAcquires()
	for i, s := range acquires {
		if s.tryAcquireOrPark(n) {
			continue
		}
		// Roll back the units taken so far; each may admit a waiter.
		for j := 0; j < i; j++ {
			t.handBack(sub, acquires[j])
		}
		return false
	}
	return true
}

// handBack releases one unit of s and retries admission of a woken
// waiter.
func (t *topology) handBack(sub submitter, s *Semaphore) {
	if w := s.release(); w != nil {
		wt := w.topo
		if wt.admit(sub, w) {
			sub.Submit(w.ref())
		}
	}
}

// releaseSems runs after n's callable: return units and admit waiters.
// The common no-semaphore case costs one nil check.
func (t *topology) releaseSems(sub submitter, n *node) {
	if n.ext == nil {
		return
	}
	for _, s := range n.ext.releases {
		t.handBack(sub, s)
	}
}

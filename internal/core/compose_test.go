package core

import (
	"sync/atomic"
	"testing"
)

func TestComposedRunsChildGraph(t *testing.T) {
	tf := New(4)
	defer tf.Close()

	var n atomic.Int64
	child := NewShared(tf.Executor()).SetName("child")
	cs := child.Emplace(
		func() { n.Add(1) },
		func() { n.Add(10) },
		func() { n.Add(100) },
	)
	cs[0].Precede(cs[1])
	cs[1].Precede(cs[2])

	tr := newTracer()
	before := tf.Emplace1(tr.hit("before"))
	module := tf.Composed(child)
	after := tf.Emplace1(func() {
		tr.hit("after")()
		if n.Load() != 111 {
			t.Errorf("module completed with n = %d, want 111", n.Load())
		}
	})
	before.Precede(module)
	module.Precede(after)

	if err := tf.WaitForAll(); err != nil {
		t.Fatal(err)
	}
	if n.Load() != 111 {
		t.Fatalf("child graph incomplete: n = %d", n.Load())
	}
	tr.before(t, "before", "after")
}

func TestComposedModuleName(t *testing.T) {
	tf := New(1)
	defer tf.Close()
	child := NewShared(tf.Executor()).SetName("stage1")
	child.Emplace1(func() {})
	m := tf.Composed(child)
	if m.NameOf() != "stage1" {
		t.Fatalf("module name = %q, want stage1", m.NameOf())
	}
	anon := NewShared(tf.Executor())
	anon.Emplace1(func() {})
	tf2 := New(1)
	defer tf2.Close()
	if got := tf2.Composed(anon).NameOf(); got != "module" {
		t.Fatalf("anonymous module name = %q", got)
	}
	tf.WaitForAll()
	tf2.WaitForAll()
}

func TestComposedInsideSubflow(t *testing.T) {
	tf := New(2)
	defer tf.Close()
	var ran atomic.Bool
	child := NewShared(tf.Executor())
	child.Emplace1(func() { ran.Store(true) })
	tf.EmplaceSubflow(func(sf *Subflow) {
		sf.Composed(child)
	})
	if err := tf.WaitForAll(); err != nil {
		t.Fatal(err)
	}
	if !ran.Load() {
		t.Fatal("child composed inside subflow did not run")
	}
}

func TestComposedEmptyChild(t *testing.T) {
	tf := New(2)
	defer tf.Close()
	child := NewShared(tf.Executor())
	tr := newTracer()
	m := tf.Composed(child)
	end := tf.Emplace1(tr.hit("end"))
	m.Precede(end)
	if err := tf.WaitForAll(); err != nil {
		t.Fatal(err)
	}
	if _, ok := tr.pos["end"]; !ok {
		t.Fatal("successor of empty module did not run")
	}
}

func TestComposedSequentialReuse(t *testing.T) {
	// The same child may be composed into successive topologies as long
	// as they do not overlap in time.
	tf := New(2)
	defer tf.Close()
	var n atomic.Int64
	child := NewShared(tf.Executor())
	child.Emplace1(func() { n.Add(1) })
	for round := 0; round < 5; round++ {
		tf.Composed(child)
		if err := tf.WaitForAll(); err != nil {
			t.Fatal(err)
		}
	}
	if n.Load() != 5 {
		t.Fatalf("child ran %d times over 5 rounds", n.Load())
	}
}

func TestComposedChildWithInternalParallelism(t *testing.T) {
	tf := New(4)
	defer tf.Close()
	var sum atomic.Int64
	child := NewShared(tf.Executor())
	items := make([]int64, 500)
	for i := range items {
		items[i] = 1
	}
	ParallelFor(child, items, func(v int64) { sum.Add(v) }, 0)
	tf.Composed(child)
	if err := tf.WaitForAll(); err != nil {
		t.Fatal(err)
	}
	if sum.Load() != 500 {
		t.Fatalf("composed ParallelFor summed %d, want 500", sum.Load())
	}
}

func TestSpawnGraphOnDirtySubflowPanics(t *testing.T) {
	tf := New(2)
	defer tf.Close()
	child := NewShared(tf.Executor())
	child.Emplace1(func() {})
	tf.EmplaceSubflow(func(sf *Subflow) {
		defer func() {
			if recover() == nil {
				t.Error("spawnGraph on dirty subflow did not panic")
			}
		}()
		sf.Emplace1(func() {})
		sf.spawnGraph(child.present)
	})
	tf.WaitForAll()
}

// Package core implements the Cpp-Taskflow programming model in Go: a
// task-dependency-graph parallel programming library (IPDPS 2019,
// "Cpp-Taskflow: Fast Task-based Parallel Programming using Modern C++").
//
// # Programming model
//
// Users create tasks from ordinary functions, wire dependencies with
// Precede/Succeed, and dispatch the resulting directed acyclic graph to a
// work-stealing executor:
//
//	tf := core.New(0) // worker count; 0 = GOMAXPROCS
//	defer tf.Close()
//
//	ts := tf.Emplace(
//		func() { fmt.Println("Task A") },
//		func() { fmt.Println("Task B") },
//		func() { fmt.Println("Task C") },
//		func() { fmt.Println("Task D") },
//	)
//	A, B, C, D := ts[0], ts[1], ts[2], ts[3]
//	A.Precede(B, C) // A runs before B and C
//	B.Precede(D)    // B runs before D
//	C.Precede(D)    // C runs before D
//
//	tf.WaitForAll() // block until finish
//
// There are no explicit thread managements nor lock controls in user code
// (paper Listing 1).
//
// # Static and dynamic tasking, one interface
//
// A task created with EmplaceSubflow receives a *Subflow at runtime and can
// spawn a child task graph using exactly the same building methods
// (Emplace, Precede, ...). A subflow joins its parent by default — the
// parent's successors wait for the whole child graph — or can be detached to
// run independently, in which case it only holds the enclosing topology open
// (paper Section III-D). Subflows nest arbitrarily.
//
// # Dispatch semantics
//
// A Taskflow holds exactly one "present" graph under construction. Dispatch
// moves it into a Topology and schedules it without blocking, returning a
// Future (the shared_future equivalent); SilentDispatch discards the future;
// WaitForAll dispatches the present graph and blocks until every dispatched
// topology finishes (paper Section III-C, Figure 3).
//
// # Executor
//
// Scheduling is delegated to internal/executor, a faithful implementation of
// the paper's Algorithm 1 (work stealing with a per-worker task cache and an
// idlers list). Executors are pluggable and shareable across Taskflow
// instances via NewShared, avoiding thread over-subscription.
//
// # Algorithms and debugging
//
// ParallelFor, ParallelForIndex, Reduce, Transform, TransformReduce and
// Sort build common parallel patterns as spliceable task subgraphs (paper
// Section III-F). Dump writes the (possibly nested) task graph in GraphViz
// DOT format (Section III-G).
//
// # Control flow, composition and resources
//
// Beyond the paper's core model, the package implements the features the
// Taskflow project grew next: condition tasks (EmplaceCondition — weak
// out-edges, branches and loops), taskflow composition (Composed),
// cooperative cancellation (Future.Cancel) and semaphores
// (Task.Acquire/Release) for limiting concurrency without blocking
// workers.
package core

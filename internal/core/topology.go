package core

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"gotaskflow/internal/executor"
)

// topology wraps a dispatched graph and the metadata needed to track its
// execution status (paper Section III-C, Figure 3).
//
// Completion protocol: pending counts scheduled-but-unfinished node
// *executions* rather than nodes, because condition tasks (branches and
// loops) mean a node may execute zero or many times. Every schedule
// increments pending before the new execution can retire, and every
// execution decrements it exactly once at retirement, so pending reaching
// zero is exactly quiescence.
//
// Scheduling pushes each node's intrusive task reference (&n.rbox) rather
// than a freshly allocated closure, so steady-state execution performs no
// allocation; see graph.go and the executor package documentation.
type topology struct {
	graph     *graph
	exec      executor.Scheduler
	pending   atomic.Int64
	cancelled atomic.Bool
	done      chan struct{}

	// sub is exec pre-boxed into the submitter interface used by
	// semaphore admission and retry resubmission. Since exec became an
	// interface value the execSubmitter wrapper is two words, so boxing
	// it per admit call would allocate; building it once per topology
	// keeps the steady-state Run path allocation-free.
	sub submitter

	// flow is the multi-tenant flow this topology is bound to (nil for
	// unbound topologies — the pre-multi-tenancy behavior). flowReserved
	// is the number of in-flight task units Admit charged at dispatch/run
	// time; finish returns them through Release exactly once (including
	// the failed-submission undo paths, which drain through finish).
	flow         executor.Flow
	flowReserved int

	// reusable marks a topology driven by Taskflow.Run: completion is
	// signalled with a token on the (buffered) done channel instead of a
	// close, so the same topology object serves many runs without
	// reallocating. builtLen records the graph size the cached run state
	// was prepared for, invalidating it when tasks are added. hasCtx
	// records whether the graph contains context-aware tasks, so each run
	// materializes a cancellable context for them.
	reusable bool
	builtLen int
	hasCtx   bool

	// errMu guards the captured-error list, the derived context, and the
	// run generation counter. errs accumulates every task failure (plus
	// cancellation/deadline causes); Future.Get joins them.
	errMu sync.Mutex
	errs  []error

	// ctx/cancelCtx is the topology's derived context, materialized only
	// when a context feature is in use (ctx tasks, RunContext or
	// DispatchContext). Failure and cancellation cancel it, signalling
	// in-flight context-aware bodies. gen guards reusable topologies
	// against stale deadline callbacks from a previous run; it is atomic
	// because trace events read it from worker goroutines (TaskMeta.Gen)
	// while the run loop advances it.
	ctx       context.Context
	cancelCtx context.CancelFunc
	gen       atomic.Uint64

	// flowName is the owning Taskflow's display name at dispatch time,
	// carried into trace spans and pprof labels. pprofLabels enables
	// runtime/pprof label propagation around task bodies (see
	// Taskflow.EnablePprofLabels).
	flowName    string
	pprofLabels bool

	// stats is the per-run counter block, non-nil only when the owning
	// Taskflow enabled CollectRunStats. Reset per run, never reallocated.
	stats *topoStats

	// lat is the executor's latency histogram sink for this topology's
	// flow, non-nil only when the scheduler implements
	// executor.LatencyProvider with histograms enabled (see latency.go).
	lat executor.LatencySink
}

// finish signals quiescence: close for one-shot (dispatched) topologies,
// a token for reusable (Run) topologies. The derived context (if any) is
// cancelled so deadline timers and ctx-task observers are released.
func (t *topology) finish() {
	if st := t.stats; st != nil {
		// Written by the single finishing worker; waiters read it after the
		// done signal below, which provides the happens-before edge.
		st.wall = time.Since(st.start)
	}
	t.cancelDerivedCtx()
	if f := t.flow; f != nil && t.flowReserved > 0 {
		// Release the admission reservation BEFORE the done signal: a
		// waiter that re-runs the moment done fires must find its units
		// returned, not race a stale reservation into ErrAdmission.
		f.Release(t.flowReserved)
	}
	if t.reusable {
		t.done <- struct{}{}
	} else {
		close(t.done)
	}
}

// Future provides access to the execution status of a dispatched task
// dependency graph — the equivalent of the std::shared_future returned by
// Cpp-Taskflow's dispatch. A Future may be waited on by any number of
// goroutines.
type Future struct {
	t *topology
}

// Done returns a channel closed when the topology has finished executing.
func (f *Future) Done() <-chan struct{} { return f.t.done }

// Wait blocks until the topology has finished executing.
func (f *Future) Wait() { <-f.t.done }

// Get blocks until the topology finishes and returns nil on full success,
// or every captured failure — task errors, converted panics, ErrCancelled
// after Cancel, the context error after a deadline — aggregated with
// errors.Join (a single failure is returned unwrapped).
func (f *Future) Get() error {
	<-f.t.done
	return f.t.joinedErr()
}

// Cancel requests cooperative cancellation of the topology: tasks that
// have not started yet are skipped (their bodies never run), while tasks
// already executing finish normally. The dependency structure still
// drains, so Wait/Get return promptly; Get reports ErrCancelled.
// Cancelling a finished topology has no effect.
func (f *Future) Cancel() {
	select {
	case <-f.t.done:
		return
	default:
	}
	if !f.t.cancelled.Swap(true) {
		f.t.addErr(ErrCancelled)
		f.t.traceCancel()
		f.t.cancelDerivedCtx()
	}
}

// traceCancel records a topology cancellation into an active trace capture
// (external ring: cancellation originates off the worker pool or must not
// be attributed to the worker that happened to observe it).
func (t *topology) traceCancel() {
	t.exec.TraceExternal(executor.EvCancel, executor.TaskMeta{Flow: t.flowName, Gen: t.gen.Load()}, 0)
}

// Cancelled reports whether the topology was cancelled — by Cancel, by a
// failing task (fail-fast), or by a context deadline.
func (f *Future) Cancelled() bool { return f.t.cancelled.Load() }

// addErr records one captured failure.
func (t *topology) addErr(err error) {
	t.errMu.Lock()
	t.errs = append(t.errs, err)
	t.errMu.Unlock()
}

// setErr is addErr under its historical name for the dispatch-time
// structural errors (no source, cycle).
func (t *topology) setErr(err error) { t.addErr(err) }

// joinedErr aggregates the captured failures: nil, the sole error, or
// errors.Join of all of them.
func (t *topology) joinedErr() error {
	t.errMu.Lock()
	defer t.errMu.Unlock()
	return joinErrs(t.errs)
}

// joinErrs joins errs without wrapping a sole error.
func joinErrs(errs []error) error {
	switch len(errs) {
	case 0:
		return nil
	case 1:
		return errs[0]
	}
	return errors.Join(errs...)
}

// fail records a task failure and fail-fast-cancels the topology: tasks
// that have not started are skipped while the dependency structure drains,
// so waiters observe the failure promptly and never hang.
func (t *topology) fail(err error) {
	t.addErr(err)
	if !t.cancelled.Swap(true) {
		t.traceCancel()
	}
	t.cancelDerivedCtx()
}

// cancelWith cancels the topology attributing err as the cause — the
// cooperative-cancel path used by context deadlines. gen must be the run
// generation the caller observed; a stale callback from a previous run of
// a reusable topology is ignored.
func (t *topology) cancelWith(gen uint64, err error) {
	t.errMu.Lock()
	if gen != t.gen.Load() {
		t.errMu.Unlock()
		return
	}
	t.errs = append(t.errs, err)
	cancel := t.cancelCtx
	t.errMu.Unlock()
	if !t.cancelled.Swap(true) {
		t.traceCancel()
	}
	if cancel != nil {
		cancel()
	}
}

// ensureCtx materializes the topology's derived context (parent nil means
// Background). Safe for concurrent use; no-op once materialized.
func (t *topology) ensureCtx(parent context.Context) {
	t.errMu.Lock()
	if t.ctx == nil {
		if parent == nil {
			parent = context.Background()
		}
		t.ctx, t.cancelCtx = context.WithCancel(parent)
		if t.cancelled.Load() {
			t.cancelCtx()
		}
	}
	t.errMu.Unlock()
}

// taskContext returns the context handed to context-aware task bodies.
func (t *topology) taskContext() context.Context {
	t.errMu.Lock()
	c := t.ctx
	t.errMu.Unlock()
	if c == nil {
		return context.Background()
	}
	return c
}

// cancelDerivedCtx cancels the derived context, if one was materialized.
func (t *topology) cancelDerivedCtx() {
	t.errMu.Lock()
	cancel := t.cancelCtx
	t.errMu.Unlock()
	if cancel != nil {
		cancel()
	}
}

// schedule accounts for and submits one new execution of node s from
// within a running execution. The join counter is re-armed so the node can
// run again on a later loop iteration.
func (t *topology) schedule(ctx executor.Context, s *node, cached bool) {
	s.join.Store(int32(s.numDependents))
	if s.parent != nil {
		s.parent.children.Add(1)
	}
	t.pending.Add(1)
	if t.lat != nil {
		s.readyAtNs = nowNanos()
	}
	if s.hasAcquires() && !t.admit(ctx, s) {
		return // parked on a semaphore; a release will submit it
	}
	if cached {
		ctx.SubmitCached(s.ref())
	} else {
		ctx.Submit(s.ref())
	}
}

// runNode executes one node: invoke its work, spawn its subflow if it is a
// dynamic task, signal the selected branch if it is a condition task, then
// (unless deferred by a joined subflow) complete it.
func (t *topology) runNode(ctx executor.Context, n *node) {
	if t.cancelled.Load() {
		// Cooperative cancellation: skip the body but keep draining the
		// dependency structure so waiters unblock (including semaphore
		// units this execution was admitted with). Condition tasks signal
		// nothing, which terminates loops.
		if st := t.stats; st != nil {
			st.skipped.Add(1)
		}
		if ctx.Tracing() {
			ctx.Trace(executor.EvSkip, n.Describe(), 0)
		}
		t.releaseSems(ctx, n)
		if n.condWork != nil {
			t.retire(ctx, n)
			return
		}
		t.finishNode(ctx, n)
		return
	}
	if st := t.stats; st != nil {
		// Count every non-skipped execution — retry attempts and condition-
		// loop iterations included — and mirror it on the node for the
		// annotated DOT dump.
		st.tasks.Add(1)
		n.execCount.Add(1)
	}
	var lstart int64
	if t.lat != nil {
		lstart = nowNanos()
	}
	switch {
	case n.condWork != nil:
		idx := -1
		t.invoke(n, func() { idx = n.condWork() })
		if t.lat != nil {
			t.noteLatency(ctx, n, lstart)
		}
		t.releaseSems(ctx, n)
		// Signal exactly the chosen successor; an out-of-range index
		// (including the -1 left by a panic) signals nothing, which is
		// how a branch terminates.
		if idx >= 0 && idx < n.succCount {
			s := n.successor(idx)
			if ctx.Tracing() {
				// A taken condition branch releases its target exactly
				// like a final join-decrement releases a strong successor.
				ctx.Trace(executor.EvDepRelease, n.Describe(), s.traceID)
			}
			t.schedule(ctx, s, true)
		}
		t.retire(ctx, n)
		return
	case n.subflowWork != nil:
		sf := &Subflow{topo: t, parent: n}
		sf.g = &graph{}
		n.extra().subgraph = sf.g
		t.invoke(n, func() { n.subflowWork(sf) })
		if t.lat != nil {
			t.noteLatency(ctx, n, lstart)
		}
		t.releaseSems(ctx, n)
		if sf.g.len() > 0 && ctx.Tracing() {
			ctx.Trace(executor.EvSubflowSpawn, n.Describe(), uint64(sf.g.len()))
		}
		if sf.g.len() > 0 {
			if !sf.detached {
				// Joined subflow: the parent completes only after every
				// spawned execution (recursively) finishes.
				n.ext.detached = false
				if t.spawn(ctx, sf.g, n) {
					return
				}
			} else {
				// Detached subflow: flows independently but holds the
				// enclosing topology open until it drains.
				n.ext.detached = true
				t.spawn(ctx, sf.g, nil)
			}
		}
	case n.isFallible():
		if !t.runFallible(ctx, n) {
			return // retry scheduled; the execution is still outstanding
		}
		// Resolved (success or final failure): the end-to-end timing spans
		// from the last (re)submission, not the first — see latency.go.
		if t.lat != nil {
			t.noteLatency(ctx, n, lstart)
		}
	case n.work != nil:
		t.invoke(n, n.work)
		if t.lat != nil {
			t.noteLatency(ctx, n, lstart)
		}
		t.releaseSems(ctx, n)
	default:
		if t.lat != nil {
			t.noteLatency(ctx, n, lstart)
		}
		t.releaseSems(ctx, n)
	}
	t.finishNode(ctx, n)
}

// runFallible executes the body of an error-returning, context-aware or
// retryable task. It reports whether the execution resolved (success or
// final failure) — false means a retry was scheduled and the execution
// remains outstanding. A final failure fail-fast-cancels the topology.
func (t *topology) runFallible(ctx executor.Context, n *node) bool {
	err := t.captureErr(n)
	if err == nil {
		if n.ext != nil {
			n.ext.attempts = 0
		}
		t.releaseSems(ctx, n)
		return true
	}
	if rp := n.retryPolicy(); rp != nil && n.ext.attempts < rp.max && !t.cancelled.Load() {
		n.ext.attempts++
		if st := t.stats; st != nil {
			st.retries.Add(1)
		}
		if ctx.Tracing() {
			ctx.Trace(executor.EvRetryArm, n.Describe(), uint64(n.ext.attempts))
		}
		// Release units now: the retry waits on a timer, not on a worker,
		// and re-admits through the semaphores when it resubmits.
		t.releaseSems(ctx, n)
		t.resubmitAfter(rp.delay(n.ext.attempts), n)
		return false
	}
	if n.ext != nil {
		n.ext.attempts = 0
	}
	t.fail(fmt.Errorf("core: task %q failed: %w", n.nodeName(), err))
	t.releaseSems(ctx, n)
	return true
}

// captureErr invokes n's body, converting a panic into an error.
func (t *topology) captureErr(n *node) (err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("task panicked: %v", r)
		}
	}()
	if st := t.stats; st != nil && st.timing {
		start := time.Now()
		defer func() {
			d := time.Since(start).Nanoseconds()
			st.busyNs.Add(d)
			n.execDurNs.Add(d)
		}()
	}
	if t.pprofLabels {
		// Cold profiling path: the closure allocation is acceptable here
		// and only here (see EnablePprofLabels).
		t.labeled(n, func() {
			switch {
			case n.errWork != nil:
				err = n.errWork()
			case n.ctxWork != nil:
				err = n.ctxWork(t.taskContext())
			case n.work != nil:
				n.work()
			}
		})
		return err
	}
	switch {
	case n.errWork != nil:
		return n.errWork()
	case n.ctxWork != nil:
		return n.ctxWork(t.taskContext())
	case n.work != nil:
		n.work()
	}
	return nil
}

// invoke runs fn, converting a panic into a recorded topology error so the
// graph still drains and WaitForAll terminates.
func (t *topology) invoke(n *node, fn func()) {
	defer func() {
		if r := recover(); r != nil {
			t.setErr(fmt.Errorf("core: task %q panicked: %v", n.nodeName(), r))
		}
	}()
	if st := t.stats; st != nil && st.timing {
		start := time.Now()
		defer func() {
			d := time.Since(start).Nanoseconds()
			st.busyNs.Add(d)
			n.execDurNs.Add(d)
		}()
	}
	t.labeled(n, fn)
}

// spawn schedules a freshly built subflow graph. parent is non-nil for
// joined subflows (its completion is deferred until the children drain) and
// nil for detached ones. It reports whether any child execution was
// actually started; false means the subflow could not start (no source)
// and the caller must complete the parent itself.
func (t *topology) spawn(ctx executor.Context, g *graph, parent *node) bool {
	nsrc := 0
	needCtx := false
	var readyNs int64
	if t.lat != nil {
		readyNs = nowNanos()
	}
	for _, c := range g.nodes {
		c.topo = t
		c.parent = parent
		c.join.Store(int32(c.numDependents))
		if c.ctxWork != nil {
			needCtx = true
		}
		if c.isSource() {
			nsrc++
			if t.lat != nil {
				c.readyAtNs = readyNs
			}
		}
	}
	if nsrc == 0 {
		t.setErr(ErrNoSource)
		return false
	}
	if needCtx {
		t.ensureCtx(nil)
	}
	// Pre-count all sources before submitting any, so an early-finishing
	// child cannot observe a transiently zero counter.
	t.pending.Add(int64(nsrc))
	if parent != nil {
		parent.children.Store(int32(nsrc))
	}
	// The first source goes to the worker's speculative cache slot; the
	// rest are published as one batch with a single computed wake count.
	var batch []*executor.Runnable
	if nsrc > 1 {
		batch = make([]*executor.Runnable, 0, nsrc-1)
	}
	cached := false
	for _, c := range g.nodes {
		if !c.isSource() {
			continue
		}
		if c.hasAcquires() && !t.admit(ctx, c) {
			continue // parked; a release will submit it
		}
		if !cached {
			ctx.SubmitCached(c.ref())
			cached = true
		} else {
			batch = append(batch, c.ref())
		}
	}
	ctx.SubmitBatch(batch)
	return true
}

// finishNode completes an execution of n: release its strong successors,
// then retire. The first ready successor goes into the worker's cache slot
// so linear chains run back-to-back (Algorithm 1 speculative execution);
// the rest are pushed without individual wakeups and a single Wake with
// the batch's ready count replaces one wake attempt per successor.
func (t *topology) finishNode(ctx executor.Context, n *node) {
	cached := false
	extra := 0
	k := n.succCount
	if k > len(n.succInline) {
		k = len(n.succInline)
	}
	for i := 0; i < k; i++ {
		cached, extra = t.notifySucc(ctx, n, n.succInline[i], cached, extra)
	}
	for _, s := range n.succSpill {
		cached, extra = t.notifySucc(ctx, n, s, cached, extra)
	}
	if extra > 0 {
		ctx.Wake(extra)
	}
	t.retire(ctx, n)
}

// notifySucc decrements s's join counter and, on readiness, accounts and
// submits a new execution: the first ready successor of the batch goes to
// the speculative cache slot, later ones are queued without waking (the
// caller issues one Wake for the whole batch). src is the finishing node
// whose edge performed the decrement; when its decrement is the one that
// released s, that edge is recorded as a dependency-release trace event —
// the exporter draws it as a flow arrow along the graph edge that actually
// gated s this run.
func (t *topology) notifySucc(ctx executor.Context, src, s *node, cached bool, extra int) (bool, int) {
	if s.join.Add(-1) != 0 {
		return cached, extra
	}
	if ctx.Tracing() {
		ctx.Trace(executor.EvDepRelease, src.Describe(), s.traceID)
	}
	s.join.Store(int32(s.numDependents))
	if s.parent != nil {
		s.parent.children.Add(1)
	}
	t.pending.Add(1)
	if t.lat != nil {
		s.readyAtNs = nowNanos()
	}
	if s.hasAcquires() && !t.admit(ctx, s) {
		return cached, extra // parked on a semaphore; a release will submit it
	}
	if !cached {
		ctx.SubmitCached(s.ref())
		return true, extra
	}
	ctx.SubmitNoWake(s.ref())
	return cached, extra + 1
}

// retire performs the bookkeeping tail of an execution: notify a joined
// subflow parent and decrement the outstanding-execution count, closing
// the topology at quiescence.
func (t *topology) retire(ctx executor.Context, n *node) {
	if f := t.flow; f != nil {
		f.NoteExecuted(1)
	}
	if p := n.parent; p != nil {
		if p.children.Add(-1) == 0 {
			if ctx.Tracing() {
				ctx.Trace(executor.EvSubflowJoin, p.Describe(), 0)
			}
			t.finishNode(ctx, p)
		}
	}
	if t.pending.Add(-1) == 0 {
		t.finish()
	}
}

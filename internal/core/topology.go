package core

import (
	"fmt"
	"sync"
	"sync/atomic"

	"gotaskflow/internal/executor"
)

// topology wraps a dispatched graph and the metadata needed to track its
// execution status (paper Section III-C, Figure 3).
//
// Completion protocol: pending counts scheduled-but-unfinished node
// *executions* rather than nodes, because condition tasks (branches and
// loops) mean a node may execute zero or many times. Every schedule
// increments pending before the new execution can retire, and every
// execution decrements it exactly once at retirement, so pending reaching
// zero is exactly quiescence.
type topology struct {
	graph     *graph
	pending   atomic.Int64
	cancelled atomic.Bool
	done      chan struct{}

	errMu sync.Mutex
	err   error
}

// Future provides access to the execution status of a dispatched task
// dependency graph — the equivalent of the std::shared_future returned by
// Cpp-Taskflow's dispatch. A Future may be waited on by any number of
// goroutines.
type Future struct {
	t *topology
}

// Done returns a channel closed when the topology has finished executing.
func (f *Future) Done() <-chan struct{} { return f.t.done }

// Wait blocks until the topology has finished executing.
func (f *Future) Wait() { <-f.t.done }

// Get blocks until the topology finishes and returns the first error
// captured from a panicking task, or ErrCancelled after Cancel.
func (f *Future) Get() error {
	<-f.t.done
	f.t.errMu.Lock()
	defer f.t.errMu.Unlock()
	return f.t.err
}

// Cancel requests cooperative cancellation of the topology: tasks that
// have not started yet are skipped (their bodies never run), while tasks
// already executing finish normally. The dependency structure still
// drains, so Wait/Get return promptly; Get reports ErrCancelled.
// Cancelling a finished topology has no effect.
func (f *Future) Cancel() {
	select {
	case <-f.t.done:
		return
	default:
	}
	if !f.t.cancelled.Swap(true) {
		f.t.setErr(ErrCancelled)
	}
}

// Cancelled reports whether Cancel was called.
func (f *Future) Cancelled() bool { return f.t.cancelled.Load() }

func (t *topology) setErr(err error) {
	t.errMu.Lock()
	if t.err == nil {
		t.err = err
	}
	t.errMu.Unlock()
}

// nodeTask wraps a node into an executor task.
func (t *topology) nodeTask(n *node) executor.Task {
	return func(ctx executor.Context) { t.runNode(ctx, n) }
}

// schedule accounts for and submits one new execution of node s from
// within a running execution. The join counter is re-armed so the node can
// run again on a later loop iteration.
func (t *topology) schedule(ctx executor.Context, s *node, cached bool) {
	s.join.Store(int32(s.numDependents))
	if s.parent != nil {
		s.parent.children.Add(1)
	}
	t.pending.Add(1)
	if len(s.acquires) > 0 && !t.admit(ctx.Submit, s) {
		return // parked on a semaphore; a release will submit it
	}
	if cached {
		ctx.SubmitCached(t.nodeTask(s))
	} else {
		ctx.Submit(t.nodeTask(s))
	}
}

// runNode executes one node: invoke its work, spawn its subflow if it is a
// dynamic task, signal the selected branch if it is a condition task, then
// (unless deferred by a joined subflow) complete it.
func (t *topology) runNode(ctx executor.Context, n *node) {
	if t.cancelled.Load() {
		// Cooperative cancellation: skip the body but keep draining the
		// dependency structure so waiters unblock (including semaphore
		// units this execution was admitted with). Condition tasks signal
		// nothing, which terminates loops.
		t.releaseSems(ctx.Submit, n)
		if n.condWork != nil {
			t.retire(ctx, n)
			return
		}
		t.finishNode(ctx, n)
		return
	}
	switch {
	case n.condWork != nil:
		idx := -1
		t.invoke(n, func() { idx = n.condWork() })
		t.releaseSems(ctx.Submit, n)
		// Signal exactly the chosen successor; an out-of-range index
		// (including the -1 left by a panic) signals nothing, which is
		// how a branch terminates.
		if idx >= 0 && idx < n.succCount {
			t.schedule(ctx, n.successor(idx), true)
		}
		t.retire(ctx, n)
		return
	case n.subflowWork != nil:
		sf := &Subflow{topo: t, parent: n}
		sf.g = &graph{}
		n.subgraph = sf.g
		t.invoke(n, func() { n.subflowWork(sf) })
		t.releaseSems(ctx.Submit, n)
		if sf.g.len() > 0 {
			if !sf.detached {
				// Joined subflow: the parent completes only after every
				// spawned execution (recursively) finishes.
				n.detached = false
				if t.spawn(ctx, sf.g, n) {
					return
				}
			} else {
				// Detached subflow: flows independently but holds the
				// enclosing topology open until it drains.
				n.detached = true
				t.spawn(ctx, sf.g, nil)
			}
		}
	case n.work != nil:
		t.invoke(n, n.work)
		t.releaseSems(ctx.Submit, n)
	default:
		t.releaseSems(ctx.Submit, n)
	}
	t.finishNode(ctx, n)
}

// invoke runs fn, converting a panic into a recorded topology error so the
// graph still drains and WaitForAll terminates.
func (t *topology) invoke(n *node, fn func()) {
	defer func() {
		if r := recover(); r != nil {
			t.setErr(fmt.Errorf("core: task %q panicked: %v", n.name, r))
		}
	}()
	fn()
}

// spawn schedules a freshly built subflow graph. parent is non-nil for
// joined subflows (its completion is deferred until the children drain) and
// nil for detached ones. It reports whether any child execution was
// actually started; false means the subflow could not start (no source)
// and the caller must complete the parent itself.
func (t *topology) spawn(ctx executor.Context, g *graph, parent *node) bool {
	nsrc := 0
	for _, c := range g.nodes {
		c.topo = t
		c.parent = parent
		c.join.Store(int32(c.numDependents))
		if c.isSource() {
			nsrc++
		}
	}
	if nsrc == 0 {
		t.setErr(ErrNoSource)
		return false
	}
	// Pre-count all sources before submitting any, so an early-finishing
	// child cannot observe a transiently zero counter.
	t.pending.Add(int64(nsrc))
	if parent != nil {
		parent.children.Store(int32(nsrc))
	}
	cached := false
	for _, c := range g.nodes {
		if !c.isSource() {
			continue
		}
		if len(c.acquires) > 0 && !t.admit(ctx.Submit, c) {
			continue // parked; a release will submit it
		}
		if !cached {
			ctx.SubmitCached(t.nodeTask(c))
			cached = true
		} else {
			ctx.Submit(t.nodeTask(c))
		}
	}
	return true
}

// finishNode completes an execution of n: release its strong successors,
// then retire. The first ready successor goes into the worker's cache slot
// so linear chains run back-to-back (Algorithm 1 speculative execution).
func (t *topology) finishNode(ctx executor.Context, n *node) {
	cached := false
	notify := func(s *node) {
		if s.join.Add(-1) == 0 {
			t.schedule(ctx, s, !cached)
			cached = true
		}
	}
	k := n.succCount
	if k > len(n.succInline) {
		k = len(n.succInline)
	}
	for i := 0; i < k; i++ {
		notify(n.succInline[i])
	}
	for _, s := range n.succSpill {
		notify(s)
	}
	t.retire(ctx, n)
}

// retire performs the bookkeeping tail of an execution: notify a joined
// subflow parent and decrement the outstanding-execution count, closing
// the topology at quiescence.
func (t *topology) retire(ctx executor.Context, n *node) {
	if p := n.parent; p != nil {
		if p.children.Add(-1) == 0 {
			t.finishNode(ctx, p)
		}
	}
	if t.pending.Add(-1) == 0 {
		close(t.done)
	}
}

package core

import (
	"errors"
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"testing/quick"

	"gotaskflow/internal/executor"
)

// tracer records task completion order for dependency-order assertions.
type tracer struct {
	mu    sync.Mutex
	order []string
	pos   map[string]int
}

func newTracer() *tracer { return &tracer{pos: map[string]int{}} }

func (tr *tracer) hit(name string) func() {
	return func() {
		tr.mu.Lock()
		tr.pos[name] = len(tr.order)
		tr.order = append(tr.order, name)
		tr.mu.Unlock()
	}
}

func (tr *tracer) before(t *testing.T, a, b string) {
	t.Helper()
	pa, oka := tr.pos[a]
	pb, okb := tr.pos[b]
	if !oka || !okb {
		t.Fatalf("missing tasks in trace: %s=%v %s=%v (trace %v)", a, oka, b, okb, tr.order)
	}
	if pa >= pb {
		t.Fatalf("%s (pos %d) did not run before %s (pos %d); trace %v", a, pa, b, pb, tr.order)
	}
}

func TestListing1Diamond(t *testing.T) {
	tf := New(4)
	defer tf.Close()
	tr := newTracer()
	ts := tf.Emplace(tr.hit("A"), tr.hit("B"), tr.hit("C"), tr.hit("D"))
	A, B, C, D := ts[0], ts[1], ts[2], ts[3]
	A.Precede(B, C)
	B.Precede(D)
	C.Precede(D)
	if err := tf.WaitForAll(); err != nil {
		t.Fatal(err)
	}
	tr.before(t, "A", "B")
	tr.before(t, "A", "C")
	tr.before(t, "B", "D")
	tr.before(t, "C", "D")
	if len(tr.order) != 4 {
		t.Fatalf("ran %d tasks, want 4", len(tr.order))
	}
}

func TestFigure2StaticGraph(t *testing.T) {
	// The 7-task 8-edge graph of paper Figure 2 / Listing 3.
	tf := New(2)
	defer tf.Close()
	tr := newTracer()
	ts := tf.Emplace(
		tr.hit("a0"), tr.hit("a1"), tr.hit("a2"), tr.hit("a3"),
		tr.hit("b0"), tr.hit("b1"), tr.hit("b2"),
	)
	a0, a1, a2, a3, b0, b1, b2 := ts[0], ts[1], ts[2], ts[3], ts[4], ts[5], ts[6]
	a0.Precede(a1)
	a1.Precede(a2, b2)
	a2.Precede(a3)
	b0.Precede(b1)
	b1.Precede(a2, b2)
	b2.Precede(a3)
	if err := tf.WaitForAll(); err != nil {
		t.Fatal(err)
	}
	for _, e := range [][2]string{
		{"a0", "a1"}, {"a1", "a2"}, {"a1", "b2"}, {"a2", "a3"},
		{"b0", "b1"}, {"b1", "b2"}, {"b1", "a2"}, {"b2", "a3"},
	} {
		tr.before(t, e[0], e[1])
	}
}

func TestSucceed(t *testing.T) {
	tf := New(2)
	defer tf.Close()
	tr := newTracer()
	ts := tf.Emplace(tr.hit("X"), tr.hit("Y"), tr.hit("Z"))
	X, Y, Z := ts[0], ts[1], ts[2]
	Z.Succeed(X, Y)
	if err := tf.WaitForAll(); err != nil {
		t.Fatal(err)
	}
	tr.before(t, "X", "Z")
	tr.before(t, "Y", "Z")
}

func TestSingleTask(t *testing.T) {
	tf := New(1)
	defer tf.Close()
	ran := false
	tf.Emplace1(func() { ran = true })
	if err := tf.WaitForAll(); err != nil {
		t.Fatal(err)
	}
	if !ran {
		t.Fatal("task did not run")
	}
}

func TestEmptyGraphWaitForAll(t *testing.T) {
	tf := New(2)
	defer tf.Close()
	if err := tf.WaitForAll(); err != nil {
		t.Fatal(err)
	}
}

func TestDispatchNonBlocking(t *testing.T) {
	tf := New(2)
	defer tf.Close()
	gate := make(chan struct{})
	var done atomic.Bool
	tf.Emplace1(func() { <-gate; done.Store(true) })
	f := tf.Dispatch()
	select {
	case <-f.Done():
		t.Fatal("future done before task could finish")
	default:
	}
	close(gate)
	f.Wait()
	if !done.Load() {
		t.Fatal("task not complete after Wait")
	}
	if err := tf.WaitForAll(); err != nil {
		t.Fatal(err)
	}
}

func TestDispatchThenNewGraph(t *testing.T) {
	// Paper Listing 6: after a dispatch, the taskflow holds a fresh graph;
	// emplacing again must not disturb the dispatched topology.
	tf := New(2)
	defer tf.Close()
	tr := newTracer()
	ts := tf.Emplace(tr.hit("A1"), tr.hit("B1"))
	ts[0].Precede(ts[1])
	if err := tf.WaitForAll(); err != nil {
		t.Fatal(err)
	}

	ts2 := tf.Emplace(tr.hit("A2"), tr.hit("B2"))
	ts2[1].Precede(ts2[0]) // reversed order this time
	f := tf.Dispatch()
	if err := f.Get(); err != nil {
		t.Fatal(err)
	}
	tr.before(t, "A1", "B1")
	tr.before(t, "B2", "A2")
}

func TestSilentDispatch(t *testing.T) {
	tf := New(2)
	defer tf.Close()
	var n atomic.Int64
	for i := 0; i < 10; i++ {
		tf.Emplace1(func() { n.Add(1) })
	}
	tf.SilentDispatch()
	if tf.NumNodes() != 0 {
		t.Fatalf("present graph has %d nodes after dispatch, want 0", tf.NumNodes())
	}
	if err := tf.WaitForAll(); err != nil {
		t.Fatal(err)
	}
	if n.Load() != 10 {
		t.Fatalf("ran %d tasks, want 10", n.Load())
	}
}

func TestMultipleTopologies(t *testing.T) {
	tf := New(4)
	defer tf.Close()
	var n atomic.Int64
	futures := make([]*Future, 5)
	for k := 0; k < 5; k++ {
		for i := 0; i < 20; i++ {
			tf.Emplace1(func() { n.Add(1) })
		}
		futures[k] = tf.Dispatch()
	}
	if tf.NumTopologies() != 5 {
		t.Fatalf("NumTopologies() = %d, want 5", tf.NumTopologies())
	}
	for _, f := range futures {
		if err := f.Get(); err != nil {
			t.Fatal(err)
		}
	}
	if n.Load() != 100 {
		t.Fatalf("ran %d tasks, want 100", n.Load())
	}
	if err := tf.WaitForAll(); err != nil {
		t.Fatal(err)
	}
	if tf.NumTopologies() != 0 {
		t.Fatalf("topologies not reclaimed: %d", tf.NumTopologies())
	}
}

func TestFutureSharedAcrossGoroutines(t *testing.T) {
	tf := New(2)
	defer tf.Close()
	tf.Emplace1(func() {})
	f := tf.Dispatch()
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if err := f.Get(); err != nil {
				t.Error(err)
			}
		}()
	}
	wg.Wait()
	tf.WaitForAll()
}

func TestPlaceholderWorkAssignment(t *testing.T) {
	tf := New(2)
	defer tf.Close()
	tr := newTracer()
	p := tf.Placeholder()
	if !p.IsPlaceholder() {
		t.Fatal("fresh placeholder reports work")
	}
	a := tf.Emplace1(tr.hit("A"))
	a.Precede(p)
	p.Work(tr.hit("P")) // decide the callable later (paper Section III-A)
	if p.IsPlaceholder() {
		t.Fatal("placeholder still empty after Work")
	}
	if err := tf.WaitForAll(); err != nil {
		t.Fatal(err)
	}
	tr.before(t, "A", "P")
}

func TestPlaceholderRunsAsNoop(t *testing.T) {
	tf := New(2)
	defer tf.Close()
	tr := newTracer()
	a := tf.Emplace1(tr.hit("A"))
	p := tf.Placeholder() // pure synchronization point
	b := tf.Emplace1(tr.hit("B"))
	a.Precede(p)
	p.Precede(b)
	if err := tf.WaitForAll(); err != nil {
		t.Fatal(err)
	}
	tr.before(t, "A", "B")
}

func TestEmptyTaskHandle(t *testing.T) {
	var empty Task
	if !empty.IsEmpty() {
		t.Fatal("zero Task not IsEmpty")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("Precede on empty handle did not panic")
		}
	}()
	empty.Precede(empty)
}

func TestTaskIntrospection(t *testing.T) {
	tf := New(1)
	defer tf.Close()
	ts := tf.Emplace(func() {}, func() {}, func() {})
	a, b, c := ts[0].Name("a"), ts[1], ts[2]
	a.Precede(b, c)
	if got := a.NumSuccessors(); got != 2 {
		t.Fatalf("NumSuccessors = %d, want 2", got)
	}
	if got := b.NumDependents(); got != 1 {
		t.Fatalf("NumDependents = %d, want 1", got)
	}
	if a.NameOf() != "a" {
		t.Fatalf("NameOf = %q, want a", a.NameOf())
	}
	if a.IsEmpty() {
		t.Fatal("bound task reports IsEmpty")
	}
	tf.WaitForAll()
}

func TestPanicBecomesError(t *testing.T) {
	tf := New(2)
	defer tf.Close()
	var after atomic.Bool
	ts := tf.Emplace(func() { panic("boom") }, func() { after.Store(true) })
	ts[0].Name("bad").Precede(ts[1])
	err := tf.WaitForAll()
	if err == nil {
		t.Fatal("WaitForAll returned nil error after task panic")
	}
	if !after.Load() {
		t.Fatal("successor of panicking task did not run; graph must drain")
	}
}

func TestPanicViaFutureGet(t *testing.T) {
	tf := New(2)
	defer tf.Close()
	tf.Emplace1(func() { panic(42) })
	f := tf.Dispatch()
	if err := f.Get(); err == nil {
		t.Fatal("Future.Get() = nil, want panic error")
	}
	tf.WaitForAll()
}

func TestNoSourceCycleDetected(t *testing.T) {
	tf := New(2)
	defer tf.Close()
	ts := tf.Emplace(func() {}, func() {})
	ts[0].Precede(ts[1])
	ts[1].Precede(ts[0]) // 2-cycle: no source
	f := tf.Dispatch()
	if err := f.Get(); err != ErrNoSource {
		t.Fatalf("Future.Get() = %v, want ErrNoSource", err)
	}
	tf.WaitForAll()
}

func TestValidate(t *testing.T) {
	tf := New(1)
	defer tf.Close()
	ts := tf.Emplace(func() {}, func() {}, func() {})
	ts[0].Precede(ts[1])
	ts[1].Precede(ts[2])
	if err := tf.Validate(); err != nil {
		t.Fatalf("Validate() on DAG = %v", err)
	}
	ts[2].Precede(ts[1]) // introduce cycle reachable from a source
	err := tf.Validate()
	if !errors.Is(err, ErrCyclic) {
		t.Fatalf("Validate() = %v, want ErrCyclic", err)
	}
	// The error names the offending tasks (placeholder labels here).
	if !strings.Contains(err.Error(), "->") {
		t.Fatalf("Validate() error does not name the cycle: %v", err)
	}
	// Do not dispatch the cyclic graph; rebuild.
	tf.present = &graph{}
	tf.WaitForAll()
}

func TestSharedExecutor(t *testing.T) {
	e := executor.New(4)
	defer e.Shutdown()
	var n atomic.Int64
	tfs := make([]*Taskflow, 3)
	for i := range tfs {
		tfs[i] = NewShared(e)
		for k := 0; k < 50; k++ {
			tfs[i].Emplace1(func() { n.Add(1) })
		}
	}
	for _, tf := range tfs {
		tf.SilentDispatch()
	}
	for _, tf := range tfs {
		if err := tf.WaitForAll(); err != nil {
			t.Fatal(err)
		}
		tf.Close() // must not shut down the shared executor
	}
	if n.Load() != 150 {
		t.Fatalf("ran %d tasks, want 150", n.Load())
	}
	// Executor must still be usable after taskflow Close.
	tf := NewShared(e)
	tf.Emplace1(func() { n.Add(1) })
	if err := tf.WaitForAll(); err != nil {
		t.Fatal(err)
	}
	if n.Load() != 151 {
		t.Fatal("shared executor unusable after Taskflow.Close")
	}
}

func TestWideFanOutFanIn(t *testing.T) {
	tf := New(4)
	defer tf.Close()
	var n atomic.Int64
	src := tf.Emplace1(func() { n.Add(1) })
	sink := tf.Emplace1(func() {
		if n.Load() != 1001 {
			t.Errorf("sink saw %d completions, want 1001", n.Load())
		}
	})
	for i := 0; i < 1000; i++ {
		mid := tf.Emplace1(func() { n.Add(1) })
		src.Precede(mid)
		mid.Precede(sink)
	}
	if err := tf.WaitForAll(); err != nil {
		t.Fatal(err)
	}
}

func TestLongLinearChain(t *testing.T) {
	tf := New(4)
	defer tf.Close()
	const n = 10000
	counter := 0
	prev := tf.Emplace1(func() { counter++ })
	for i := 1; i < n; i++ {
		cur := tf.Emplace1(func() { counter++ })
		prev.Precede(cur)
		prev = cur
	}
	if err := tf.WaitForAll(); err != nil {
		t.Fatal(err)
	}
	// A linear chain is sequentialized by dependencies, so no data race on
	// counter and the count must be exact.
	if counter != n {
		t.Fatalf("counter = %d, want %d", counter, n)
	}
}

// Property: for random DAGs, every edge (u,v) observes u finishing before v
// starts.
func TestQuickRandomDAGRespectsDependencies(t *testing.T) {
	tf := New(4)
	defer tf.Close()
	f := func(adj [][]byte, seed uint8) bool {
		n := len(adj)
		if n == 0 {
			return true
		}
		if n > 24 {
			n = 24
		}
		start := make([]atomic.Int64, n)
		finish := make([]atomic.Int64, n)
		var clock atomic.Int64
		tasks := make([]Task, n)
		for i := 0; i < n; i++ {
			i := i
			tasks[i] = tf.Emplace1(func() {
				start[i].Store(clock.Add(1))
				finish[i].Store(clock.Add(1))
			})
		}
		type edge struct{ u, v int }
		var edges []edge
		for u := 0; u < n; u++ {
			row := adj[u]
			for k := range row {
				v := u + 1 + (int(row[k]) % (n - u))
				if v <= u || v >= n {
					continue
				}
				tasks[u].Precede(tasks[v])
				edges = append(edges, edge{u, v})
			}
		}
		if err := tf.WaitForAll(); err != nil {
			return false
		}
		for _, e := range edges {
			if finish[e.u].Load() >= start[e.v].Load() {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestTaskflowNameAndSetName(t *testing.T) {
	tf := New(1).SetName("mygraph")
	defer tf.Close()
	if tf.name != "mygraph" {
		t.Fatalf("name = %q", tf.name)
	}
	tf.WaitForAll()
}

func TestReDispatchManyRounds(t *testing.T) {
	// Stress topology reclamation: many build/dispatch/wait rounds on one
	// taskflow instance.
	tf := New(4)
	defer tf.Close()
	var n atomic.Int64
	for round := 0; round < 100; round++ {
		ts := tf.Emplace(func() { n.Add(1) }, func() { n.Add(1) }, func() { n.Add(1) })
		ts[0].Precede(ts[1], ts[2])
		if err := tf.WaitForAll(); err != nil {
			t.Fatal(err)
		}
	}
	if n.Load() != 300 {
		t.Fatalf("ran %d tasks, want 300", n.Load())
	}
}

func TestConcurrentFutureWaiters(t *testing.T) {
	tf := New(2)
	defer tf.Close()
	const rounds = 20
	for r := 0; r < rounds; r++ {
		var n atomic.Int64
		for i := 0; i < 10; i++ {
			tf.Emplace1(func() { n.Add(1) })
		}
		f := tf.Dispatch()
		var wg sync.WaitGroup
		for w := 0; w < 4; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				f.Wait()
				if n.Load() != 10 {
					t.Errorf("waiter observed %d completions, want 10", n.Load())
				}
			}()
		}
		wg.Wait()
		tf.WaitForAll()
	}
}

func TestMillionTaskGraph(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	// The paper targets million-scale tasking; verify correctness at scale.
	tf := New(0)
	defer tf.Close()
	const n = 1 << 20
	var sum atomic.Int64
	ts := make([]Task, 0, n)
	for i := 0; i < n; i++ {
		ts = append(ts, tf.Emplace1(func() { sum.Add(1) }))
	}
	// Sparse random-ish dependencies: i -> i+1 for every 2nd node.
	for i := 0; i+1 < n; i += 2 {
		ts[i].Precede(ts[i+1])
	}
	if err := tf.WaitForAll(); err != nil {
		t.Fatal(err)
	}
	if sum.Load() != n {
		t.Fatalf("ran %d tasks, want %d", sum.Load(), n)
	}
}

func ExampleTaskflow() {
	tf := New(1) // single worker for deterministic output
	defer tf.Close()
	ts := tf.Emplace(
		func() { fmt.Println("Task A") },
		func() { fmt.Println("Task B") },
	)
	ts[0].Precede(ts[1])
	tf.WaitForAll()
	// Output:
	// Task A
	// Task B
}

package core

import (
	"bytes"
	"errors"
	"runtime/pprof"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"gotaskflow/internal/executor"
)

// collectTrace runs fn inside a StartTrace/StopTrace window on e.
func collectTrace(t *testing.T, e *executor.Executor, fn func()) executor.Trace {
	t.Helper()
	if !e.StartTrace() {
		t.Fatal("StartTrace failed")
	}
	fn()
	tr, ok := e.StopTrace()
	if !ok {
		t.Fatal("StopTrace failed")
	}
	return tr
}

func kindCounts(tr executor.Trace) map[executor.EventKind]int {
	m := map[executor.EventKind]int{}
	for _, ev := range tr.Events {
		m[ev.Kind]++
	}
	return m
}

func TestTraceDiamondSpansAndFlowArrows(t *testing.T) {
	e := executor.New(2, executor.WithTracing(1<<12))
	defer e.Shutdown()
	tf := NewShared(e).SetName("diamond")
	ts := tf.Emplace(func() {}, func() {}, func() {}, func() {})
	names := []string{"A", "B", "C", "D"}
	for i, task := range ts {
		task.Name(names[i])
	}
	ts[0].Precede(ts[1], ts[2])
	ts[1].Precede(ts[3])
	ts[2].Precede(ts[3])

	tr := collectTrace(t, e, func() {
		if err := tf.Run(); err != nil {
			t.Fatal(err)
		}
	})

	// Each task executes exactly once: 4 named start/end pairs carrying
	// the flow name and the run generation.
	starts := map[string]executor.TaskMeta{}
	for _, ev := range tr.Events {
		if ev.Kind == executor.EvTaskStart {
			starts[ev.Meta.Name] = ev.Meta
		}
	}
	for _, name := range names {
		m, ok := starts[name]
		if !ok {
			t.Fatalf("no span start for task %s (got %v)", name, starts)
		}
		if m.Flow != "diamond" {
			t.Fatalf("task %s Flow = %q, want diamond", name, m.Flow)
		}
		if m.Gen != 1 {
			t.Fatalf("task %s Gen = %d, want 1 (first Run)", name, m.Gen)
		}
		if m.ID == 0 {
			t.Fatalf("task %s has zero trace ID", name)
		}
	}

	// Dependency releases: B and C are released by A, D by the later of
	// B/C — exactly one release per dependent node, along a real edge.
	edges := map[uint64][]string{ // released ID -> legal releasers
		ts[1].node.traceID: {"A"},
		ts[2].node.traceID: {"A"},
		ts[3].node.traceID: {"B", "C"},
	}
	releases := 0
	for _, ev := range tr.Events {
		if ev.Kind != executor.EvDepRelease {
			continue
		}
		releases++
		legal, ok := edges[ev.Arg]
		if !ok {
			t.Fatalf("dep release of unknown task ID %d", ev.Arg)
		}
		found := false
		for _, l := range legal {
			if ev.Meta.Name == l {
				found = true
			}
		}
		if !found {
			t.Fatalf("task %q released ID %d: not a graph edge", ev.Meta.Name, ev.Arg)
		}
	}
	if releases != 3 {
		t.Fatalf("recorded %d dep releases, want 3 (one per dependent node)", releases)
	}

	// A release happens before the released task's span starts — the
	// invariant the exporter's flow-arrow matching relies on.
	startTs := map[uint64]time.Duration{}
	for _, ev := range tr.Events {
		if ev.Kind == executor.EvTaskStart {
			startTs[ev.Meta.ID] = ev.Ts
		}
	}
	for _, ev := range tr.Events {
		if ev.Kind == executor.EvDepRelease {
			if st, ok := startTs[ev.Arg]; ok && ev.Ts > st {
				t.Fatalf("dep release at %v after released span start %v", ev.Ts, st)
			}
		}
	}
}

func TestTraceSecondRunBumpsGeneration(t *testing.T) {
	e := executor.New(2, executor.WithTracing(1<<12))
	defer e.Shutdown()
	tf := NewShared(e)
	tf.Emplace1(func() {}).Name("only")
	if err := tf.Run(); err != nil {
		t.Fatal(err)
	}
	tr := collectTrace(t, e, func() {
		if err := tf.Run(); err != nil {
			t.Fatal(err)
		}
	})
	for _, ev := range tr.Events {
		if ev.Kind == executor.EvTaskStart && ev.Meta.Name == "only" {
			if ev.Meta.Gen != 2 {
				t.Fatalf("second Run Gen = %d, want 2", ev.Meta.Gen)
			}
			return
		}
	}
	t.Fatal("no span for task in second run")
}

func TestTraceSubflowSpawnJoin(t *testing.T) {
	e := executor.New(2, executor.WithTracing(1<<12))
	defer e.Shutdown()
	tf := NewShared(e)
	var ran atomic.Int64
	tf.EmplaceSubflow(func(sf *Subflow) {
		sub := sf.Emplace(func() { ran.Add(1) }, func() { ran.Add(1) })
		sub[0].Precede(sub[1])
	}).Name("spawner")

	tr := collectTrace(t, e, func() {
		if err := tf.Run(); err != nil {
			t.Fatal(err)
		}
	})
	if ran.Load() != 2 {
		t.Fatalf("subflow ran %d tasks, want 2", ran.Load())
	}
	kinds := kindCounts(tr)
	if kinds[executor.EvSubflowSpawn] != 1 {
		t.Fatalf("subflow spawns = %d, want 1", kinds[executor.EvSubflowSpawn])
	}
	if kinds[executor.EvSubflowJoin] != 1 {
		t.Fatalf("subflow joins = %d, want 1", kinds[executor.EvSubflowJoin])
	}
	for _, ev := range tr.Events {
		if ev.Kind == executor.EvSubflowSpawn {
			if ev.Meta.Name != "spawner" || ev.Arg != 2 {
				t.Fatalf("spawn event meta/arg = %q/%d, want spawner/2", ev.Meta.Name, ev.Arg)
			}
		}
	}
}

func TestTraceRetryArmFire(t *testing.T) {
	e := executor.New(2, executor.WithTracing(1<<12))
	defer e.Shutdown()
	tf := NewShared(e)
	var attempts atomic.Int64
	tf.EmplaceErr(func() error {
		if attempts.Add(1) < 3 {
			return errors.New("flaky")
		}
		return nil
	}).Name("flaky").Retry(5, 0)

	tr := collectTrace(t, e, func() {
		if err := tf.Run(); err != nil {
			t.Fatal(err)
		}
	})
	kinds := kindCounts(tr)
	if kinds[executor.EvRetryArm] != 2 || kinds[executor.EvRetryFire] != 2 {
		t.Fatalf("retry arm/fire = %d/%d, want 2/2", kinds[executor.EvRetryArm], kinds[executor.EvRetryFire])
	}
}

func TestTraceCancelAndSkip(t *testing.T) {
	e := executor.New(2, executor.WithTracing(1<<12))
	defer e.Shutdown()
	tf := NewShared(e)
	ts := tf.Emplace(func() {}, func() {})
	ts[0].Name("boom").WorkErr(func() error { return errors.New("boom") })
	ts[1].Name("skipped")
	ts[0].Precede(ts[1])

	tr := collectTrace(t, e, func() {
		if err := tf.Run(); err == nil {
			t.Fatal("run succeeded despite failing task")
		}
	})
	kinds := kindCounts(tr)
	if kinds[executor.EvCancel] != 1 {
		t.Fatalf("cancel events = %d, want 1", kinds[executor.EvCancel])
	}
	if kinds[executor.EvSkip] != 1 {
		t.Fatalf("skip events = %d, want 1", kinds[executor.EvSkip])
	}
	for _, ev := range tr.Events {
		if ev.Kind == executor.EvSkip && ev.Meta.Name != "skipped" {
			t.Fatalf("skip event names %q, want skipped", ev.Meta.Name)
		}
	}
}

func TestPprofLabelsAroundTaskBodies(t *testing.T) {
	tf := New(2).SetName("labeledflow").EnablePprofLabels(true)
	defer tf.Close()

	block := make(chan struct{})
	entered := make(chan struct{})
	tf.Emplace1(func() {
		close(entered)
		<-block
	}).Name("blocker")
	fut := tf.Dispatch()
	<-entered

	// The goroutine profile (debug=1) prints each goroutine's pprof
	// labels; the blocked task body must carry ours.
	var buf bytes.Buffer
	if err := pprof.Lookup("goroutine").WriteTo(&buf, 1); err != nil {
		t.Fatal(err)
	}
	prof := buf.String()
	if !strings.Contains(prof, `"taskflow":"labeledflow"`) ||
		!strings.Contains(prof, `"task":"blocker"`) {
		t.Fatalf("goroutine profile lacks task labels:\n%s", prof)
	}
	close(block)
	if err := fut.Get(); err != nil {
		t.Fatal(err)
	}

	// Off by default: without EnablePprofLabels no labels appear.
	tf2 := New(1)
	defer tf2.Close()
	block2 := make(chan struct{})
	entered2 := make(chan struct{})
	tf2.Emplace1(func() {
		close(entered2)
		<-block2
	})
	fut2 := tf2.Dispatch()
	<-entered2
	buf.Reset()
	if err := pprof.Lookup("goroutine").WriteTo(&buf, 1); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(buf.String(), `"taskflow":`) {
		t.Fatal("labels leaked into a flow without EnablePprofLabels")
	}
	close(block2)
	if err := fut2.Get(); err != nil {
		t.Fatal(err)
	}
}

func TestHotTasksRanking(t *testing.T) {
	tf := New(2).CollectRunStats(true)
	defer tf.Close()
	spin := func(d time.Duration) func() {
		return func() {
			for end := time.Now().Add(d); time.Now().Before(end); {
			}
		}
	}
	tf.Emplace1(spin(20 * time.Millisecond)).Name("heavy")
	tf.Emplace1(spin(4 * time.Millisecond)).Name("medium")
	for i := 0; i < 6; i++ {
		tf.Emplace1(spin(time.Millisecond))
	}
	if err := tf.Run(); err != nil {
		t.Fatal(err)
	}
	rs, ok := tf.LastRunStats()
	if !ok {
		t.Fatal("no run stats")
	}
	if len(rs.HotTasks) != hotTaskK {
		t.Fatalf("HotTasks has %d entries, want %d", len(rs.HotTasks), hotTaskK)
	}
	if rs.HotTasks[0].Name != "heavy" {
		t.Fatalf("hottest task = %q, want heavy", rs.HotTasks[0].Name)
	}
	if rs.HotTasks[1].Name != "medium" {
		t.Fatalf("second task = %q, want medium", rs.HotTasks[1].Name)
	}
	for i := 1; i < len(rs.HotTasks); i++ {
		if rs.HotTasks[i].Total > rs.HotTasks[i-1].Total {
			t.Fatal("HotTasks not sorted by self time")
		}
	}
	if rs.HotTasks[0].Count != 1 {
		t.Fatalf("heavy Count = %d, want 1", rs.HotTasks[0].Count)
	}

	// The annotated DOT dump leads with the same ranking.
	var sb strings.Builder
	if err := tf.DumpAnnotated(&sb); err != nil {
		t.Fatal(err)
	}
	dot := sb.String()
	if !strings.Contains(dot, "// hot tasks (top 5 by self time):") ||
		!strings.Contains(dot, "1. heavy") {
		t.Fatalf("annotated dump lacks hot-task ranking:\n%s", dot)
	}
}

func TestHotTasksEmptyWithoutTiming(t *testing.T) {
	tf := New(2).CollectRunStats(false)
	defer tf.Close()
	tf.Emplace1(func() {})
	if err := tf.Run(); err != nil {
		t.Fatal(err)
	}
	rs, ok := tf.LastRunStats()
	if !ok {
		t.Fatal("no run stats")
	}
	if len(rs.HotTasks) != 0 {
		t.Fatalf("HotTasks populated without timing: %v", rs.HotTasks)
	}
	var sb strings.Builder
	if err := tf.DumpAnnotated(&sb); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(sb.String(), "hot tasks") {
		t.Fatal("count-only annotated dump emitted a hot-task ranking")
	}
}

// buildChain emplaces a 64-node linear chain on tf.
func buildChain(tf *Taskflow, n *int64) {
	prev := tf.Emplace1(func() { *n++ })
	for i := 0; i < 63; i++ {
		next := tf.Emplace1(func() { *n++ })
		prev.Precede(next)
		prev = next
	}
}

// TestRunZeroAllocTracingArmedIdle gates the tracing disabled path: an
// executor built WithTracing but with no active capture must keep the
// linear-chain steady state at zero allocations per run — arming tracing
// costs one atomic flag load per instrumentation point, nothing more.
func TestRunZeroAllocTracingArmedIdle(t *testing.T) {
	e := executor.New(2, executor.WithTracing(1<<12))
	defer e.Shutdown()
	tf := NewShared(e)
	var n int64
	buildChain(tf, &n)
	if err := tf.Run(); err != nil {
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(100, func() {
		if err := tf.Run(); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Fatalf("armed-idle tracing Run allocates %v objects/run, want 0", allocs)
	}
}

// TestRunTracingActiveAllocBound gates the tracing enabled path: with a
// capture recording every span and scheduler event into the pre-allocated
// rings, a linear-chain run must stay within 2 allocations per run (in
// practice zero: ring slots are written in place and TaskMeta is carried
// by value).
func TestRunTracingActiveAllocBound(t *testing.T) {
	e := executor.New(2, executor.WithTracing(1<<16))
	defer e.Shutdown()
	tf := NewShared(e)
	var n int64
	buildChain(tf, &n)
	if err := tf.Run(); err != nil {
		t.Fatal(err)
	}
	if !e.StartTrace() {
		t.Fatal("StartTrace failed")
	}
	allocs := testing.AllocsPerRun(100, func() {
		if err := tf.Run(); err != nil {
			t.Fatal(err)
		}
	})
	tr, ok := e.StopTrace()
	if !ok {
		t.Fatal("StopTrace failed")
	}
	if allocs > 2 {
		t.Fatalf("active tracing Run allocates %v objects/run, want <= 2", allocs)
	}
	if len(tr.Events) == 0 {
		t.Fatal("active capture recorded nothing")
	}
}

package core

import (
	"sync/atomic"
	"testing"
)

// concurrencyProbe records the peak number of simultaneously running
// bodies.
type concurrencyProbe struct {
	cur, peak atomic.Int64
}

func (p *concurrencyProbe) body(spin int) func() {
	return func() {
		c := p.cur.Add(1)
		for {
			pk := p.peak.Load()
			if c <= pk || p.peak.CompareAndSwap(pk, c) {
				break
			}
		}
		for i := 0; i < spin; i++ {
			_ = i * i
		}
		p.cur.Add(-1)
	}
}

func TestSemaphoreLimitsConcurrency(t *testing.T) {
	tf := New(4)
	defer tf.Close()
	sem := NewSemaphore(1)
	var probe concurrencyProbe
	var ran atomic.Int64
	for i := 0; i < 200; i++ {
		tf.Emplace1(func() {
			probe.body(2000)()
			ran.Add(1)
		}).Acquire(sem).Release(sem)
	}
	if err := tf.WaitForAll(); err != nil {
		t.Fatal(err)
	}
	if ran.Load() != 200 {
		t.Fatalf("ran %d of 200 tasks", ran.Load())
	}
	if probe.peak.Load() != 1 {
		t.Fatalf("peak concurrency %d under a unit semaphore", probe.peak.Load())
	}
	if sem.Value() != 1 {
		t.Fatalf("semaphore leaked: value %d", sem.Value())
	}
}

func TestSemaphoreCountN(t *testing.T) {
	tf := New(4)
	defer tf.Close()
	sem := NewSemaphore(3)
	var probe concurrencyProbe
	for i := 0; i < 100; i++ {
		tf.Emplace1(probe.body(5000)).Acquire(sem).Release(sem)
	}
	if err := tf.WaitForAll(); err != nil {
		t.Fatal(err)
	}
	if probe.peak.Load() > 3 {
		t.Fatalf("peak concurrency %d exceeds semaphore count 3", probe.peak.Load())
	}
	if sem.Value() != 3 {
		t.Fatalf("semaphore leaked: value %d", sem.Value())
	}
}

func TestSemaphoreAcrossGraphSections(t *testing.T) {
	// Two independent fan-outs share a unit semaphore: their bodies never
	// overlap even though the graph allows it.
	tf := New(4)
	defer tf.Close()
	sem := NewSemaphore(1)
	var probe concurrencyProbe
	a := tf.Emplace1(func() {})
	b := tf.Emplace1(func() {})
	for i := 0; i < 30; i++ {
		ta := tf.Emplace1(probe.body(1000)).Acquire(sem).Release(sem)
		tb := tf.Emplace1(probe.body(1000)).Acquire(sem).Release(sem)
		a.Precede(ta)
		b.Precede(tb)
	}
	if err := tf.WaitForAll(); err != nil {
		t.Fatal(err)
	}
	if probe.peak.Load() != 1 {
		t.Fatalf("peak = %d", probe.peak.Load())
	}
}

func TestMultipleSemaphores(t *testing.T) {
	tf := New(4)
	defer tf.Close()
	s1 := NewSemaphore(1)
	s2 := NewSemaphore(1)
	var probe concurrencyProbe
	var ran atomic.Int64
	// Tasks acquiring {s1}, {s2} and {s1,s2}: the sorted acquisition
	// order prevents deadlock.
	for i := 0; i < 30; i++ {
		tf.Emplace1(func() { probe.body(500)(); ran.Add(1) }).Acquire(s1).Release(s1)
		tf.Emplace1(func() { probe.body(500)(); ran.Add(1) }).Acquire(s2).Release(s2)
		tf.Emplace1(func() { probe.body(500)(); ran.Add(1) }).Acquire(s1, s2).Release(s1, s2)
	}
	if err := tf.WaitForAll(); err != nil {
		t.Fatal(err)
	}
	if ran.Load() != 90 {
		t.Fatalf("ran %d of 90", ran.Load())
	}
	if s1.Value() != 1 || s2.Value() != 1 {
		t.Fatal("semaphores leaked")
	}
}

func TestSemaphoreAsymmetricProducerConsumer(t *testing.T) {
	// Producers release units that consumers acquire: a dependency
	// expressed purely through semaphores.
	tf := New(4)
	defer tf.Close()
	sem := NewSemaphore(0)
	var produced, consumed atomic.Int64
	const n = 25
	for i := 0; i < n; i++ {
		tf.Emplace1(func() { produced.Add(1) }).Release(sem)
		tf.Emplace1(func() { consumed.Add(1) }).Acquire(sem)
	}
	if err := tf.WaitForAll(); err != nil {
		t.Fatal(err)
	}
	if produced.Load() != n || consumed.Load() != n {
		t.Fatalf("produced %d consumed %d", produced.Load(), consumed.Load())
	}
	if sem.Value() != 0 {
		t.Fatalf("unbalanced semaphore: %d", sem.Value())
	}
}

func TestSemaphoreWithConditionLoop(t *testing.T) {
	// Each loop iteration re-acquires and re-releases the semaphore.
	tf := New(2)
	defer tf.Close()
	sem := NewSemaphore(1)
	var iters atomic.Int64
	init := tf.Emplace1(func() {})
	body := tf.Emplace1(func() { iters.Add(1) }).Acquire(sem).Release(sem)
	cond := tf.EmplaceCondition(func() int {
		if iters.Load() < 7 {
			return 0
		}
		return 1
	})
	exit := tf.Emplace1(func() {})
	init.Precede(body)
	body.Precede(cond)
	cond.Precede(body, exit)
	if err := tf.WaitForAll(); err != nil {
		t.Fatal(err)
	}
	if iters.Load() != 7 {
		t.Fatalf("iterations = %d", iters.Load())
	}
	if sem.Value() != 1 {
		t.Fatalf("semaphore leaked after loop: %d", sem.Value())
	}
}

func TestSemaphoreSourceTasksParked(t *testing.T) {
	// All sources guarded by a unit semaphore: dispatch must park all but
	// one and the releases must drain the rest.
	tf := New(4)
	defer tf.Close()
	sem := NewSemaphore(1)
	var probe concurrencyProbe
	var ran atomic.Int64
	for i := 0; i < 50; i++ {
		tf.Emplace1(func() { probe.body(500)(); ran.Add(1) }).Acquire(sem).Release(sem)
	}
	f := tf.Dispatch()
	if err := f.Get(); err != nil {
		t.Fatal(err)
	}
	if ran.Load() != 50 || probe.peak.Load() != 1 {
		t.Fatalf("ran=%d peak=%d", ran.Load(), probe.peak.Load())
	}
	tf.WaitForAll()
}

func TestNegativeSemaphorePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewSemaphore(-1) did not panic")
		}
	}()
	NewSemaphore(-1)
}

func TestSemaphoreInsertSorted(t *testing.T) {
	a, b, c := NewSemaphore(1), NewSemaphore(1), NewSemaphore(1)
	tf := New(1)
	defer tf.Close()
	task := tf.Emplace1(func() {}).Acquire(c, a, b)
	sems := task.node.semAcquires()
	if len(sems) != 3 {
		t.Fatalf("len = %d", len(sems))
	}
	for i := 1; i < len(sems); i++ {
		if sems[i-1].id >= sems[i].id {
			t.Fatal("acquire list not sorted by id")
		}
	}
	tf.present = &graph{} // the semaphores are not released; skip running
}

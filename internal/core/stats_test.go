package core

import (
	"errors"
	"sync/atomic"
	"testing"
	"time"

	"gotaskflow/internal/executor"
)

func TestRunStatsDisabledByDefault(t *testing.T) {
	tf := New(2)
	defer tf.Close()
	tf.Emplace1(func() {})
	if err := tf.Run(); err != nil {
		t.Fatal(err)
	}
	if _, ok := tf.LastRunStats(); ok {
		t.Fatal("LastRunStats ok without CollectRunStats")
	}
}

func TestRunStatsLinearChain(t *testing.T) {
	tf := New(2).CollectRunStats(false)
	defer tf.Close()
	prev := tf.Emplace1(func() {})
	for i := 0; i < 9; i++ {
		next := tf.Emplace1(func() {})
		prev.Precede(next)
		prev = next
	}
	if err := tf.Run(); err != nil {
		t.Fatal(err)
	}
	rs, ok := tf.LastRunStats()
	if !ok {
		t.Fatal("LastRunStats not ok after a stats-collecting Run")
	}
	if rs.Tasks != 10 {
		t.Fatalf("Tasks = %d, want 10", rs.Tasks)
	}
	if rs.Span != 10 {
		t.Fatalf("Span = %d, want 10 for a 10-node chain", rs.Span)
	}
	if rs.Parallelism != 1 {
		t.Fatalf("Parallelism = %v, want 1 for a chain", rs.Parallelism)
	}
	if rs.Wall <= 0 {
		t.Fatalf("Wall = %v, want > 0", rs.Wall)
	}
	if rs.Busy != 0 || rs.AchievedParallelism != 0 {
		t.Fatalf("timing fields set without timing: Busy=%v AP=%v", rs.Busy, rs.AchievedParallelism)
	}
	if rs.Retries != 0 || rs.Skipped != 0 || rs.Errors != 0 || rs.Cancelled {
		t.Fatalf("clean run reported failures: %+v", rs)
	}
}

func TestRunStatsFanOutSpan(t *testing.T) {
	tf := New(4).CollectRunStats(false)
	defer tf.Close()
	src := tf.Emplace1(func() {})
	sink := tf.Emplace1(func() {})
	for i := 0; i < 8; i++ {
		mid := tf.Emplace1(func() {})
		src.Precede(mid)
		mid.Precede(sink)
	}
	if err := tf.Run(); err != nil {
		t.Fatal(err)
	}
	rs, _ := tf.LastRunStats()
	if rs.Tasks != 10 {
		t.Fatalf("Tasks = %d, want 10", rs.Tasks)
	}
	if rs.Span != 3 {
		t.Fatalf("Span = %d, want 3 for src->mid->sink", rs.Span)
	}
	if want := 10.0 / 3.0; rs.Parallelism != want {
		t.Fatalf("Parallelism = %v, want %v", rs.Parallelism, want)
	}
}

func TestRunStatsTiming(t *testing.T) {
	tf := New(2).CollectRunStats(true)
	defer tf.Close()
	ts := tf.Emplace(
		func() { time.Sleep(2 * time.Millisecond) },
		func() { time.Sleep(2 * time.Millisecond) },
	)
	_ = ts
	if err := tf.Run(); err != nil {
		t.Fatal(err)
	}
	rs, _ := tf.LastRunStats()
	if rs.Busy < 4*time.Millisecond {
		t.Fatalf("Busy = %v, want >= 4ms of summed sleeps", rs.Busy)
	}
	if rs.AchievedParallelism <= 0 {
		t.Fatalf("AchievedParallelism = %v, want > 0", rs.AchievedParallelism)
	}
}

func TestRunStatsConditionLoopCountsIterations(t *testing.T) {
	tf := New(2).CollectRunStats(false)
	defer tf.Close()
	var iterations atomic.Int64
	init := tf.Emplace1(func() {})
	body := tf.Emplace1(func() { iterations.Add(1) })
	cond := tf.EmplaceCondition(func() int {
		if iterations.Load() < 10 {
			return 0
		}
		return 1
	})
	done := tf.Emplace1(func() {})
	init.Precede(body)
	body.Precede(cond)
	cond.Precede(body, done)
	if err := tf.Run(); err != nil {
		t.Fatal(err)
	}
	rs, _ := tf.LastRunStats()
	// init + 10 body iterations + 10 condition evaluations + done.
	if rs.Tasks != 22 {
		t.Fatalf("Tasks = %d, want 22 (executions, not nodes)", rs.Tasks)
	}
	// Strong edges only: init -> body -> cond; the loop back-edge is weak.
	if rs.Span != 3 {
		t.Fatalf("Span = %d, want 3 over strong edges", rs.Span)
	}
}

func TestRunStatsCountsRetries(t *testing.T) {
	tf := New(2).CollectRunStats(false)
	defer tf.Close()
	fails := 2
	tf.EmplaceErr(func() error {
		if fails > 0 {
			fails--
			return errors.New("transient")
		}
		return nil
	}).Retry(3, 0)
	if err := tf.Run(); err != nil {
		t.Fatal(err)
	}
	rs, _ := tf.LastRunStats()
	if rs.Retries != 2 {
		t.Fatalf("Retries = %d, want 2", rs.Retries)
	}
	if rs.Tasks != 3 {
		t.Fatalf("Tasks = %d, want 3 (two failures + the success)", rs.Tasks)
	}
	if rs.Errors != 0 {
		t.Fatalf("Errors = %d for a recovered run, want 0", rs.Errors)
	}
}

func TestRunStatsCountsSkipsOnFailure(t *testing.T) {
	tf := New(2).CollectRunStats(false)
	defer tf.Close()
	a := tf.EmplaceErr(func() error { return errors.New("boom") })
	b := tf.Emplace1(func() { t.Error("skipped task body ran") })
	a.Precede(b)
	if err := tf.Run(); err == nil {
		t.Fatal("failing run reported no error")
	}
	rs, _ := tf.LastRunStats()
	if rs.Tasks != 1 {
		t.Fatalf("Tasks = %d, want 1 (only the failing task executed)", rs.Tasks)
	}
	if rs.Skipped != 1 {
		t.Fatalf("Skipped = %d, want 1", rs.Skipped)
	}
	if !rs.Cancelled || rs.Errors != 1 {
		t.Fatalf("Cancelled=%v Errors=%d, want true/1", rs.Cancelled, rs.Errors)
	}
}

func TestRunStatsResetBetweenRuns(t *testing.T) {
	tf := New(2).CollectRunStats(false)
	defer tf.Close()
	tf.Emplace(func() {}, func() {}, func() {})
	for i := 0; i < 3; i++ {
		if err := tf.Run(); err != nil {
			t.Fatal(err)
		}
		rs, _ := tf.LastRunStats()
		if rs.Tasks != 3 {
			t.Fatalf("run %d: Tasks = %d, want 3 (no accumulation)", i, rs.Tasks)
		}
	}
}

func TestRunStatsSubflowTasks(t *testing.T) {
	tf := New(2).CollectRunStats(false)
	defer tf.Close()
	tf.EmplaceSubflow(func(sf *Subflow) {
		sf.Emplace(func() {}, func() {}, func() {})
	})
	if err := tf.Run(); err != nil {
		t.Fatal(err)
	}
	rs, _ := tf.LastRunStats()
	// The spawner plus its three spawned children.
	if rs.Tasks != 4 {
		t.Fatalf("Tasks = %d, want 4 including spawned subflow nodes", rs.Tasks)
	}
}

func TestFutureStats(t *testing.T) {
	tf := New(2).CollectRunStats(false)
	defer tf.Close()
	ts := tf.Emplace(func() {}, func() {}, func() {})
	ts[0].Precede(ts[1], ts[2])
	f := tf.Dispatch()
	if err := f.Get(); err != nil {
		t.Fatal(err)
	}
	rs, ok := f.Stats()
	if !ok {
		t.Fatal("Future.Stats not ok after completion")
	}
	if rs.Tasks != 3 {
		t.Fatalf("Tasks = %d, want 3", rs.Tasks)
	}
	if rs.Span != 2 {
		t.Fatalf("Span = %d, want 2", rs.Span)
	}
	if rs.Wall <= 0 {
		t.Fatalf("Wall = %v, want > 0", rs.Wall)
	}
	tf.WaitForAll()
}

func TestFutureStatsNotReadyBeforeFinish(t *testing.T) {
	tf := New(2).CollectRunStats(false)
	defer tf.Close()
	release := make(chan struct{})
	tf.Emplace1(func() { <-release })
	f := tf.Dispatch()
	if _, ok := f.Stats(); ok {
		t.Fatal("Stats ok while the topology is still running")
	}
	close(release)
	if err := f.Get(); err != nil {
		t.Fatal(err)
	}
	if _, ok := f.Stats(); !ok {
		t.Fatal("Stats not ok after completion")
	}
	tf.WaitForAll()
}

// TestRunZeroAllocMetricsEnabled is the enabled-path allocation gate from
// the observability work: steady-state re-runs must stay allocation-free
// with BOTH the executor's scheduler metrics and the taskflow's run stats
// (including timing) turned on. Counting is atomic adds into pre-allocated
// blocks; nothing may be minted per task.
func TestRunZeroAllocMetricsEnabled(t *testing.T) {
	e := executor.New(2, executor.WithMetrics())
	defer e.Shutdown()
	tf := NewShared(e).CollectRunStats(true)
	var n int64
	prev := tf.Emplace1(func() { n++ })
	for i := 0; i < 63; i++ {
		next := tf.Emplace1(func() { n++ })
		prev.Precede(next)
		prev = next
	}
	if err := tf.Run(); err != nil { // build run state outside measurement
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(100, func() {
		if err := tf.Run(); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Fatalf("metrics-enabled Run allocates %v objects/run, want 0", allocs)
	}
	if rs, ok := tf.LastRunStats(); !ok || rs.Tasks != 64 {
		t.Fatalf("stats lost under the alloc gate: ok=%v rs=%+v", ok, rs)
	}
	if snap, ok := e.MetricsSnapshot(); !ok || snap.Total().Executed == 0 {
		t.Fatal("executor metrics lost under the alloc gate")
	}
}

func TestStructuralSpanEmptyGraph(t *testing.T) {
	if got := structuralSpan(&graph{}); got != 0 {
		t.Fatalf("span of empty graph = %d, want 0", got)
	}
}

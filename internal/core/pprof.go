package core

// runtime/pprof label propagation: with EnablePprofLabels, every task body
// runs under pprof labels ("taskflow", "task"), so a standard CPU profile
// (go tool pprof, -tagfocus/-tagshow) attributes samples to named tasks
// instead of anonymous worker goroutines — the profile-side counterpart of
// the trace timeline.

import (
	"context"
	"runtime/pprof"
)

// EnablePprofLabels makes task bodies of subsequently dispatched (or
// prepared Run) topologies execute under runtime/pprof labels: "taskflow"
// is the flow's display name, "task" the task's name (or its positional
// p<hex> fallback, matching DOT dumps and trace spans). Off by default:
// label propagation costs one goroutine label swap and a small allocation
// per task body, which would break the scheduler's zero-allocation
// steady state. Enable it for profiling sessions only. Returns tf for
// chaining.
func (tf *Taskflow) EnablePprofLabels(enable bool) *Taskflow {
	tf.pprofLabels = enable
	tf.invalidateRun() // the cached run state predates the setting
	return tf
}

// labeled runs fn, wrapped in the topology's pprof labels when enabled.
func (t *topology) labeled(n *node, fn func()) {
	if !t.pprofLabels {
		fn()
		return
	}
	flow := t.flowName
	if flow == "" {
		flow = "taskflow"
	}
	pprof.Do(context.Background(),
		pprof.Labels("taskflow", flow, "task", n.label(int(n.idx))),
		func(context.Context) { fn() })
}

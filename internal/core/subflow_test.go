package core

import (
	"strings"
	"sync"
	"sync/atomic"
	"testing"
)

func TestFigure4JoinedSubflow(t *testing.T) {
	// Paper Figure 4 / Listing 7: B spawns {B1, B2} -> B3, joined; D must
	// run after the whole subflow.
	tf := New(4)
	defer tf.Close()
	tr := newTracer()
	ts := tf.Emplace(tr.hit("A"), tr.hit("C"), tr.hit("D"))
	A, C, D := ts[0], ts[1], ts[2]
	B := tf.EmplaceSubflow(func(sf *Subflow) {
		tr.hit("B")()
		bs := sf.Emplace(tr.hit("B1"), tr.hit("B2"), tr.hit("B3"))
		bs[0].Precede(bs[2])
		bs[1].Precede(bs[2])
	})
	A.Precede(B, C)
	B.Precede(D)
	C.Precede(D)
	if err := tf.WaitForAll(); err != nil {
		t.Fatal(err)
	}
	tr.before(t, "A", "B")
	tr.before(t, "A", "C")
	tr.before(t, "B", "B1")
	tr.before(t, "B", "B2")
	tr.before(t, "B1", "B3")
	tr.before(t, "B2", "B3")
	// Joined subflow: D waits for the full child graph, not just B.
	tr.before(t, "B3", "D")
	tr.before(t, "C", "D")
}

func TestDetachedSubflow(t *testing.T) {
	tf := New(4)
	defer tf.Close()
	var childDone atomic.Bool
	gate := make(chan struct{})
	var successorRan atomic.Bool
	B := tf.EmplaceSubflow(func(sf *Subflow) {
		sf.Emplace1(func() { <-gate; childDone.Store(true) })
		sf.Detach()
		if !sf.IsDetached() {
			t.Error("IsDetached() = false after Detach")
		}
	})
	D := tf.Emplace1(func() { successorRan.Store(true) })
	B.Precede(D)
	f := tf.Dispatch()

	// D may run while the detached child is still blocked on gate.
	for !successorRan.Load() {
	}
	if childDone.Load() {
		t.Fatal("detached child finished before gate opened")
	}
	select {
	case <-f.Done():
		t.Fatal("topology completed before detached subflow finished")
	default:
	}
	close(gate)
	f.Wait() // detached subflow joins the end of the topology
	if !childDone.Load() {
		t.Fatal("detached child not complete at topology end")
	}
	tf.WaitForAll()
}

func TestDetachThenJoinRestoresDefault(t *testing.T) {
	tf := New(2)
	defer tf.Close()
	tr := newTracer()
	B := tf.EmplaceSubflow(func(sf *Subflow) {
		sf.Emplace1(tr.hit("child"))
		sf.Detach()
		sf.Join() // undo: joined semantics again
	})
	D := tf.Emplace1(tr.hit("D"))
	B.Precede(D)
	if err := tf.WaitForAll(); err != nil {
		t.Fatal(err)
	}
	tr.before(t, "child", "D")
}

func TestEmptySubflow(t *testing.T) {
	tf := New(2)
	defer tf.Close()
	tr := newTracer()
	B := tf.EmplaceSubflow(func(sf *Subflow) {
		tr.hit("B")()
		if sf.NumNodes() != 0 {
			t.Error("fresh subflow has nodes")
		}
	})
	D := tf.Emplace1(tr.hit("D"))
	B.Precede(D)
	if err := tf.WaitForAll(); err != nil {
		t.Fatal(err)
	}
	tr.before(t, "B", "D")
}

func TestNestedSubflows(t *testing.T) {
	// Paper Figure 5: subflows can nest recursively.
	tf := New(4)
	defer tf.Close()
	tr := newTracer()
	A := tf.EmplaceSubflow(func(sf *Subflow) {
		tr.hit("A")()
		A1 := sf.Emplace1(tr.hit("A1"))
		A2 := sf.EmplaceSubflow(func(sf2 *Subflow) {
			tr.hit("A2")()
			inner := sf2.Emplace(tr.hit("A2_1"), tr.hit("A2_2"))
			inner[0].Precede(inner[1])
		})
		A1.Precede(A2)
	})
	done := tf.Emplace1(tr.hit("done"))
	A.Precede(done)
	if err := tf.WaitForAll(); err != nil {
		t.Fatal(err)
	}
	tr.before(t, "A", "A1")
	tr.before(t, "A1", "A2")
	tr.before(t, "A2", "A2_1")
	tr.before(t, "A2_1", "A2_2")
	tr.before(t, "A2_2", "done") // nested join propagates to the top
}

func TestDeeplyNestedSubflowChain(t *testing.T) {
	tf := New(2)
	defer tf.Close()
	const depth = 50
	var leaves atomic.Int64
	var spawn func(sf *Subflow, d int)
	spawn = func(sf *Subflow, d int) {
		if d == 0 {
			sf.Emplace1(func() { leaves.Add(1) })
			return
		}
		sf.EmplaceSubflow(func(inner *Subflow) { spawn(inner, d-1) })
	}
	end := tf.Emplace1(func() {
		if leaves.Load() != 1 {
			t.Errorf("leaves = %d at join, want 1", leaves.Load())
		}
	})
	root := tf.EmplaceSubflow(func(sf *Subflow) { spawn(sf, depth) })
	root.Precede(end)
	if err := tf.WaitForAll(); err != nil {
		t.Fatal(err)
	}
}

func TestRecursiveFibonacciSubflow(t *testing.T) {
	// Classic dynamic-tasking workload: compute fib(n) by spawning
	// subflows recursively.
	tf := New(4)
	defer tf.Close()
	var fib func(sf *Subflow, n int, out *int64)
	fib = func(sf *Subflow, n int, out *int64) {
		if n < 2 {
			*out = int64(n)
			return
		}
		var a, b int64
		l := sf.EmplaceSubflow(func(inner *Subflow) { fib(inner, n-1, &a) })
		r := sf.EmplaceSubflow(func(inner *Subflow) { fib(inner, n-2, &b) })
		sum := sf.Emplace1(func() { *out = a + b })
		l.Precede(sum)
		r.Precede(sum)
	}
	var result int64
	tf.EmplaceSubflow(func(sf *Subflow) { fib(sf, 15, &result) })
	if err := tf.WaitForAll(); err != nil {
		t.Fatal(err)
	}
	if result != 610 {
		t.Fatalf("fib(15) = %d, want 610", result)
	}
}

func TestSubflowWithInternalDependencies(t *testing.T) {
	tf := New(4)
	defer tf.Close()
	var order []int
	var mu sync.Mutex
	rec := func(i int) func() {
		return func() {
			mu.Lock()
			order = append(order, i)
			mu.Unlock()
		}
	}
	tf.EmplaceSubflow(func(sf *Subflow) {
		// chain 0 -> 1 -> 2 -> 3 inside the subflow
		prev := sf.Emplace1(rec(0))
		for i := 1; i < 4; i++ {
			cur := sf.Emplace1(rec(i))
			prev.Precede(cur)
			prev = cur
		}
	})
	if err := tf.WaitForAll(); err != nil {
		t.Fatal(err)
	}
	mu.Lock()
	defer mu.Unlock()
	for i, v := range order {
		if v != i {
			t.Fatalf("order = %v, want ascending chain", order)
		}
	}
}

func TestSubflowPanicPropagates(t *testing.T) {
	tf := New(2)
	defer tf.Close()
	var after atomic.Bool
	B := tf.EmplaceSubflow(func(sf *Subflow) {
		sf.Emplace1(func() {})
		panic("subflow builder exploded")
	})
	D := tf.Emplace1(func() { after.Store(true) })
	B.Precede(D)
	err := tf.WaitForAll()
	if err == nil {
		t.Fatal("WaitForAll = nil, want panic error")
	}
	if !strings.Contains(err.Error(), "exploded") {
		t.Fatalf("err = %v", err)
	}
	if !after.Load() {
		t.Fatal("graph did not drain after subflow panic")
	}
}

func TestSubflowChildPanicPropagates(t *testing.T) {
	tf := New(2)
	defer tf.Close()
	tf.EmplaceSubflow(func(sf *Subflow) {
		sf.Emplace1(func() { panic("child boom") })
	})
	if err := tf.WaitForAll(); err == nil {
		t.Fatal("WaitForAll = nil, want child panic error")
	}
}

func TestManyParallelSubflows(t *testing.T) {
	tf := New(4)
	defer tf.Close()
	var n atomic.Int64
	for i := 0; i < 100; i++ {
		tf.EmplaceSubflow(func(sf *Subflow) {
			for k := 0; k < 10; k++ {
				sf.Emplace1(func() { n.Add(1) })
			}
		})
	}
	if err := tf.WaitForAll(); err != nil {
		t.Fatal(err)
	}
	if n.Load() != 1000 {
		t.Fatalf("ran %d subflow tasks, want 1000", n.Load())
	}
}

func TestSubflowPlaceholderAndWork(t *testing.T) {
	tf := New(2)
	defer tf.Close()
	tr := newTracer()
	tf.EmplaceSubflow(func(sf *Subflow) {
		p := sf.Placeholder()
		a := sf.Emplace1(tr.hit("a"))
		a.Precede(p)
		p.Work(tr.hit("p"))
	})
	if err := tf.WaitForAll(); err != nil {
		t.Fatal(err)
	}
	tr.before(t, "a", "p")
}

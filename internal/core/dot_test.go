package core

import (
	"strings"
	"testing"
)

func TestDumpPresentGraph(t *testing.T) {
	tf := New(1).SetName("demo")
	defer tf.Close()
	ts := tf.Emplace(func() {}, func() {}, func() {})
	A, B, C := ts[0].Name("A"), ts[1].Name("B"), ts[2].Name("C")
	A.Precede(B, C)
	var sb strings.Builder
	if err := tf.Dump(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		`digraph "demo"`,
		`"A";`, `"B";`, `"C";`,
		`"A" -> "B";`, `"A" -> "C";`,
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("dump missing %q:\n%s", want, out)
		}
	}
	tf.WaitForAll()
}

func TestDumpUnnamedNodesGetStableIDs(t *testing.T) {
	tf := New(1)
	defer tf.Close()
	ts := tf.Emplace(func() {}, func() {})
	ts[0].Precede(ts[1])
	var sb strings.Builder
	if err := tf.Dump(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if !strings.Contains(out, `"p0x0" -> "p0x1";`) {
		t.Fatalf("expected synthesized ids in dump:\n%s", out)
	}
	tf.WaitForAll()
}

func TestDumpDuplicateNamesDisambiguated(t *testing.T) {
	tf := New(1)
	defer tf.Close()
	ts := tf.Emplace(func() {}, func() {})
	ts[0].Name("same")
	ts[1].Name("same")
	ts[0].Precede(ts[1])
	var sb strings.Builder
	if err := tf.Dump(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if !strings.Contains(out, `"same"`) || !strings.Contains(out, `"same_1"`) {
		t.Fatalf("duplicate names not disambiguated:\n%s", out)
	}
	tf.WaitForAll()
}

func TestDumpTopologiesWithSubflow(t *testing.T) {
	// Paper Figure 5: nested subflows appear as clusters after execution.
	tf := New(2).SetName("nested")
	defer tf.Close()
	A := tf.EmplaceSubflow(func(sf *Subflow) {
		A1 := sf.Emplace1(func() {}).Name("A1")
		A2 := sf.EmplaceSubflow(func(sf2 *Subflow) {
			inner := sf2.Emplace(func() {}, func() {})
			inner[0].Name("A2_1").Precede(inner[1].Name("A2_2"))
		}).Name("A2")
		A1.Precede(A2)
	}).Name("A")
	B := tf.Emplace1(func() {}).Name("B")
	A.Precede(B)

	f := tf.Dispatch()
	if err := f.Get(); err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	if err := tf.DumpTopologies(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		`subgraph "cluster_A"`,
		`label = "Subflow_A";`,
		`subgraph "cluster_A2"`,
		`label = "Subflow_A2";`,
		`"A1" -> "A2";`,
		`"A2_1" -> "A2_2";`,
		`"A" -> "B";`,
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("topology dump missing %q:\n%s", want, out)
		}
	}
	tf.WaitForAll()
}

func TestDumpDetachedSubflowNoJoinEdges(t *testing.T) {
	tf := New(2)
	defer tf.Close()
	A := tf.EmplaceSubflow(func(sf *Subflow) {
		sf.Emplace1(func() {}).Name("child")
		sf.Detach()
	}).Name("A")
	B := tf.Emplace1(func() {}).Name("B")
	A.Precede(B)
	f := tf.Dispatch()
	if err := f.Get(); err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	if err := tf.DumpTopologies(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if strings.Contains(out, `"child" -> "B" [style=dashed];`) {
		t.Fatalf("detached subflow must not draw join edges:\n%s", out)
	}
	if !strings.Contains(out, `subgraph "cluster_A"`) {
		t.Fatalf("detached subflow cluster missing:\n%s", out)
	}
	tf.WaitForAll()
}

func TestDumpJoinedSubflowDrawsJoinEdges(t *testing.T) {
	tf := New(2)
	defer tf.Close()
	A := tf.EmplaceSubflow(func(sf *Subflow) {
		sf.Emplace1(func() {}).Name("child")
	}).Name("A")
	B := tf.Emplace1(func() {}).Name("B")
	A.Precede(B)
	f := tf.Dispatch()
	if err := f.Get(); err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	if err := tf.DumpTopologies(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), `"child" -> "B" [style=dashed];`) {
		t.Fatalf("joined subflow should draw join edge:\n%s", sb.String())
	}
	tf.WaitForAll()
}

type failingWriter struct{ n int }

func (w *failingWriter) Write(p []byte) (int, error) {
	w.n += len(p)
	if w.n > 10 {
		return 0, errWrite
	}
	return len(p), nil
}

var errWrite = &writeError{}

type writeError struct{}

func (*writeError) Error() string { return "synthetic write failure" }

func TestDumpPropagatesWriterError(t *testing.T) {
	tf := New(1)
	defer tf.Close()
	ts := tf.Emplace(func() {}, func() {}, func() {}, func() {})
	ts[0].Precede(ts[1], ts[2], ts[3])
	if err := tf.Dump(&failingWriter{}); err == nil {
		t.Fatal("Dump ignored writer error")
	}
	tf.WaitForAll()
}

package core

import (
	"fmt"
	"io"
	"time"
)

// Dump writes the present (not yet dispatched) task dependency graph in
// GraphViz DOT format (paper Section III-G). Spawned subflows only exist
// after execution; use DumpTopologies to visualize them.
func (tf *Taskflow) Dump(w io.Writer) error {
	d := dotDumper{w: w, ids: map[*node]string{}}
	d.printf("digraph %s {\n", dotName(tf.name, "Taskflow"))
	d.dumpGraph(tf.present, "")
	d.printf("}\n")
	return d.err
}

// DumpAnnotated writes the present graph in DOT format with each node's
// label annotated with its execution count — and, when CollectRunStats
// was enabled with timing, its summed body duration — from the most
// recent Run. A node reads "name\n×count" or "name\n×count (duration)";
// a condition-loop body that iterated five times shows ×5, a branch
// never taken shows ×0. Without a prior stats-collecting Run all counts
// are zero.
// A timed run additionally prefixes the dump with the hot-task ranking
// (top tasks by self time) as DOT comments, using the same names as the
// node labels and trace spans.
func (tf *Taskflow) DumpAnnotated(w io.Writer) error {
	d := dotDumper{w: w, ids: map[*node]string{}, annotate: true}
	d.printf("digraph %s {\n", dotName(tf.name, "Taskflow"))
	d.dumpHot(tf.present)
	d.dumpGraph(tf.present, "")
	d.printf("}\n")
	return d.err
}

// dumpHot emits the graph's hot-task ranking as DOT comments. Rankings
// need per-task durations, so a count-only (or stats-less) dump emits
// nothing and stays byte-identical to earlier releases.
func (d *dotDumper) dumpHot(g *graph) {
	hot := hotTasks(g, hotTaskK)
	if len(hot) == 0 {
		return
	}
	d.printf("  // hot tasks (top %d by self time):\n", len(hot))
	for i, h := range hot {
		d.printf("  //   %d. %s ×%d (%s)\n",
			i+1, h.Name, h.Count, h.Total.Round(time.Microsecond))
	}
}

// DumpTopologiesAnnotated is DumpTopologies with the per-task execution
// annotations of DumpAnnotated, covering dispatched topologies and the
// subflows they spawned at runtime.
func (tf *Taskflow) DumpTopologiesAnnotated(w io.Writer) error {
	d := dotDumper{w: w, ids: map[*node]string{}, annotate: true}
	for i, t := range tf.topologies {
		d.printf("digraph %s {\n", dotName(tf.name, fmt.Sprintf("Topology%d", i)))
		d.dumpGraph(t.graph, "")
		d.printf("}\n")
	}
	return d.err
}

// DumpTopologies writes every dispatched, not yet reclaimed topology,
// including task graphs spawned dynamically at runtime, which appear as
// nested clusters (paper Figure 5). Call it after the futures complete and
// before WaitForAll reclaims the topologies.
func (tf *Taskflow) DumpTopologies(w io.Writer) error {
	d := dotDumper{w: w, ids: map[*node]string{}}
	for i, t := range tf.topologies {
		d.printf("digraph %s {\n", dotName(tf.name, fmt.Sprintf("Topology%d", i)))
		d.dumpGraph(t.graph, "")
		d.printf("}\n")
	}
	return d.err
}

type dotDumper struct {
	w    io.Writer
	err  error
	ids  map[*node]string
	next int

	// annotate labels each node with its execution count (and duration,
	// when timed) from the node's per-run stat counters.
	annotate bool
}

func (d *dotDumper) printf(format string, args ...any) {
	if d.err != nil {
		return
	}
	_, d.err = fmt.Fprintf(d.w, format, args...)
}

func (d *dotDumper) id(n *node) string {
	if s, ok := d.ids[n]; ok {
		return s
	}
	s := n.label(d.next)
	// Disambiguate duplicate user names.
	for _, existing := range d.ids {
		if existing == s {
			s = fmt.Sprintf("%s_%d", s, d.next)
			break
		}
	}
	d.next++
	d.ids[n] = s
	return s
}

// dumpGraph emits the nodes and edges of g at the given indentation,
// recursing into spawned subflows as clusters.
func (d *dotDumper) dumpGraph(g *graph, indent string) {
	for _, n := range g.nodes {
		if d.annotate {
			d.printf("%s  %q [label=%q];\n", indent, d.id(n), d.annotation(n))
		} else {
			d.printf("%s  %q;\n", indent, d.id(n))
		}
	}
	for _, n := range g.nodes {
		if n.isCondition() {
			// Weak edges: dashed, labeled with the branch index.
			for i := 0; i < n.succCount; i++ {
				d.printf("%s  %q -> %q [style=dashed label=\"%d\"];\n",
					indent, d.id(n), d.id(n.successor(i)), i)
			}
		} else {
			n.eachSuccessor(func(s *node) {
				d.printf("%s  %q -> %q;\n", indent, d.id(n), d.id(s))
			})
		}
		if sg := n.spawned(); sg != nil && sg.len() > 0 {
			d.printf("%s  subgraph \"cluster_%s\" {\n", indent, d.id(n))
			d.printf("%s    label = \"Subflow_%s\";\n", indent, d.id(n))
			d.dumpGraph(sg, indent+"    ")
			// Joined subflows complete before the parent's successors run;
			// draw the join edges from the subflow sinks to the parent's
			// successors for readability.
			d.printf("%s  }\n", indent)
			if !n.ext.detached {
				for _, c := range sg.nodes {
					if c.numSuccessors() == 0 {
						n.eachSuccessor(func(s *node) {
							d.printf("%s  %q -> %q [style=dashed];\n", indent, d.id(c), d.id(s))
						})
					}
				}
			}
		}
	}
}

// annotation renders a node's annotated label: its id, the execution count
// of the last stats-collecting run, and the summed body duration when
// timing was on (execDurNs stays zero otherwise, keeping count-only dumps
// deterministic for golden tests).
func (d *dotDumper) annotation(n *node) string {
	s := fmt.Sprintf("%s\n×%d", d.id(n), n.execCount.Load())
	if dur := n.execDurNs.Load(); dur > 0 {
		s += fmt.Sprintf(" (%s)", time.Duration(dur).Round(time.Microsecond))
	}
	return s
}

func dotName(name, fallback string) string {
	if name == "" {
		name = fallback
	}
	return fmt.Sprintf("%q", name)
}

package core

import (
	"fmt"
	"io"
)

// Dump writes the present (not yet dispatched) task dependency graph in
// GraphViz DOT format (paper Section III-G). Spawned subflows only exist
// after execution; use DumpTopologies to visualize them.
func (tf *Taskflow) Dump(w io.Writer) error {
	d := dotDumper{w: w, ids: map[*node]string{}}
	d.printf("digraph %s {\n", dotName(tf.name, "Taskflow"))
	d.dumpGraph(tf.present, "")
	d.printf("}\n")
	return d.err
}

// DumpTopologies writes every dispatched, not yet reclaimed topology,
// including task graphs spawned dynamically at runtime, which appear as
// nested clusters (paper Figure 5). Call it after the futures complete and
// before WaitForAll reclaims the topologies.
func (tf *Taskflow) DumpTopologies(w io.Writer) error {
	d := dotDumper{w: w, ids: map[*node]string{}}
	for i, t := range tf.topologies {
		d.printf("digraph %s {\n", dotName(tf.name, fmt.Sprintf("Topology%d", i)))
		d.dumpGraph(t.graph, "")
		d.printf("}\n")
	}
	return d.err
}

type dotDumper struct {
	w    io.Writer
	err  error
	ids  map[*node]string
	next int
}

func (d *dotDumper) printf(format string, args ...any) {
	if d.err != nil {
		return
	}
	_, d.err = fmt.Fprintf(d.w, format, args...)
}

func (d *dotDumper) id(n *node) string {
	if s, ok := d.ids[n]; ok {
		return s
	}
	s := n.label(d.next)
	// Disambiguate duplicate user names.
	for _, existing := range d.ids {
		if existing == s {
			s = fmt.Sprintf("%s_%d", s, d.next)
			break
		}
	}
	d.next++
	d.ids[n] = s
	return s
}

// dumpGraph emits the nodes and edges of g at the given indentation,
// recursing into spawned subflows as clusters.
func (d *dotDumper) dumpGraph(g *graph, indent string) {
	for _, n := range g.nodes {
		d.printf("%s  %q;\n", indent, d.id(n))
	}
	for _, n := range g.nodes {
		if n.isCondition() {
			// Weak edges: dashed, labeled with the branch index.
			for i := 0; i < n.succCount; i++ {
				d.printf("%s  %q -> %q [style=dashed label=\"%d\"];\n",
					indent, d.id(n), d.id(n.successor(i)), i)
			}
		} else {
			n.eachSuccessor(func(s *node) {
				d.printf("%s  %q -> %q;\n", indent, d.id(n), d.id(s))
			})
		}
		if sg := n.spawned(); sg != nil && sg.len() > 0 {
			d.printf("%s  subgraph \"cluster_%s\" {\n", indent, d.id(n))
			d.printf("%s    label = \"Subflow_%s\";\n", indent, d.id(n))
			d.dumpGraph(sg, indent+"    ")
			// Joined subflows complete before the parent's successors run;
			// draw the join edges from the subflow sinks to the parent's
			// successors for readability.
			d.printf("%s  }\n", indent)
			if !n.ext.detached {
				for _, c := range sg.nodes {
					if c.numSuccessors() == 0 {
						n.eachSuccessor(func(s *node) {
							d.printf("%s  %q -> %q [style=dashed];\n", indent, d.id(c), d.id(s))
						})
					}
				}
			}
		}
	}
}

func dotName(name, fallback string) string {
	if name == "" {
		name = fallback
	}
	return fmt.Sprintf("%q", name)
}

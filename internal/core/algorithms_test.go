package core

import (
	"runtime"
	"sync/atomic"
	"testing"
	"testing/quick"
)

func TestParallelFor(t *testing.T) {
	tf := New(4)
	defer tf.Close()
	var sum atomic.Int64
	items := make([]int64, 1000)
	for i := range items {
		items[i] = int64(i)
	}
	S, T := ParallelFor(tf, items, func(v int64) { sum.Add(v) }, 37)
	pre := tf.Emplace1(func() { sum.Add(1) })
	post := tf.Emplace1(func() {
		if got := sum.Load(); got != 1000*999/2+1 {
			t.Errorf("sum at post = %d", got)
		}
	})
	pre.Precede(S)
	T.Precede(post)
	if err := tf.WaitForAll(); err != nil {
		t.Fatal(err)
	}
	if got := sum.Load(); got != 1000*999/2+1 {
		t.Fatalf("sum = %d, want %d", got, 1000*999/2+1)
	}
}

func TestParallelForEmpty(t *testing.T) {
	tf := New(2)
	defer tf.Close()
	ran := false
	S, T := ParallelFor(tf, []int{}, func(int) { ran = true }, 0)
	end := tf.Emplace1(func() {})
	S.Precede(end) // S/T still valid splice points
	T.Precede(end)
	if err := tf.WaitForAll(); err != nil {
		t.Fatal(err)
	}
	if ran {
		t.Fatal("fn ran on empty input")
	}
}

func TestParallelForPtrMutates(t *testing.T) {
	tf := New(4)
	defer tf.Close()
	items := make([]int, 500)
	ParallelForPtr(tf, items, func(p *int) { *p = 7 }, 0)
	if err := tf.WaitForAll(); err != nil {
		t.Fatal(err)
	}
	for i, v := range items {
		if v != 7 {
			t.Fatalf("items[%d] = %d, want 7", i, v)
		}
	}
}

func TestParallelForIndex(t *testing.T) {
	tf := New(4)
	defer tf.Close()
	hits := make([]atomic.Int32, 100)
	ParallelForIndex(tf, 0, 100, 3, func(i int) { hits[i].Add(1) }, 4)
	if err := tf.WaitForAll(); err != nil {
		t.Fatal(err)
	}
	for i := range hits {
		want := int32(0)
		if i%3 == 0 {
			want = 1
		}
		if got := hits[i].Load(); got != want {
			t.Fatalf("index %d hit %d times, want %d", i, got, want)
		}
	}
}

func TestParallelForIndexBadStep(t *testing.T) {
	tf := New(1)
	defer tf.Close()
	defer func() {
		if recover() == nil {
			t.Fatal("non-positive step did not panic")
		}
	}()
	ParallelForIndex(tf, 0, 10, 0, func(int) {}, 1)
}

func TestParallelForIndexEmptyRange(t *testing.T) {
	tf := New(1)
	defer tf.Close()
	ParallelForIndex(tf, 5, 5, 1, func(int) { t.Error("ran on empty range") }, 1)
	if err := tf.WaitForAll(); err != nil {
		t.Fatal(err)
	}
}

func TestReduce(t *testing.T) {
	tf := New(4)
	defer tf.Close()
	items := make([]int, 777)
	for i := range items {
		items[i] = i + 1
	}
	result := 100 // initial value seeds the fold
	Reduce(tf, items, &result, func(a, b int) int { return a + b }, 10)
	if err := tf.WaitForAll(); err != nil {
		t.Fatal(err)
	}
	want := 100 + 777*778/2
	if result != want {
		t.Fatalf("Reduce = %d, want %d", result, want)
	}
}

func TestReduceMax(t *testing.T) {
	tf := New(4)
	defer tf.Close()
	items := []int{3, 1, 4, 1, 5, 9, 2, 6, 5, 3, 5}
	result := -1 << 60
	Reduce(tf, items, &result, func(a, b int) int {
		if a > b {
			return a
		}
		return b
	}, 2)
	if err := tf.WaitForAll(); err != nil {
		t.Fatal(err)
	}
	if result != 9 {
		t.Fatalf("max = %d, want 9", result)
	}
}

func TestReduceEmpty(t *testing.T) {
	tf := New(2)
	defer tf.Close()
	result := 42
	Reduce(tf, []int{}, &result, func(a, b int) int { return a + b }, 0)
	if err := tf.WaitForAll(); err != nil {
		t.Fatal(err)
	}
	if result != 42 {
		t.Fatalf("empty Reduce changed result to %d", result)
	}
}

func TestTransform(t *testing.T) {
	tf := New(4)
	defer tf.Close()
	src := make([]int, 333)
	for i := range src {
		src[i] = i
	}
	dst := make([]string, 333)
	Transform(tf, src, dst, func(v int) string {
		if v%2 == 0 {
			return "even"
		}
		return "odd"
	}, 16)
	if err := tf.WaitForAll(); err != nil {
		t.Fatal(err)
	}
	for i := range src {
		want := "odd"
		if i%2 == 0 {
			want = "even"
		}
		if dst[i] != want {
			t.Fatalf("dst[%d] = %q, want %q", i, dst[i], want)
		}
	}
}

func TestTransformShortDstPanics(t *testing.T) {
	tf := New(1)
	defer tf.Close()
	defer func() {
		if recover() == nil {
			t.Fatal("short destination did not panic")
		}
	}()
	Transform(tf, []int{1, 2, 3}, make([]int, 2), func(v int) int { return v }, 1)
}

func TestTransformReduce(t *testing.T) {
	tf := New(4)
	defer tf.Close()
	words := []string{"a", "bb", "ccc", "dddd"}
	total := 0
	TransformReduce(tf, words, &total,
		func(a, b int) int { return a + b },
		func(s string) int { return len(s) }, 1)
	if err := tf.WaitForAll(); err != nil {
		t.Fatal(err)
	}
	if total != 10 {
		t.Fatalf("TransformReduce = %d, want 10", total)
	}
}

func TestAlgorithmsInsideSubflow(t *testing.T) {
	// The unified interface: the same algorithm constructors work on a
	// *Subflow (dynamic tasking).
	tf := New(4)
	defer tf.Close()
	var sum atomic.Int64
	items := make([]int64, 200)
	for i := range items {
		items[i] = 1
	}
	result := int64(0)
	tf.EmplaceSubflow(func(sf *Subflow) {
		S, T := ParallelFor(sf, items, func(v int64) { sum.Add(v) }, 0)
		RS, RT := Reduce(sf, items, &result, func(a, b int64) int64 { return a + b }, 0)
		T.Precede(RS)
		_, _ = S, RT
	})
	if err := tf.WaitForAll(); err != nil {
		t.Fatal(err)
	}
	if sum.Load() != 200 {
		t.Fatalf("subflow ParallelFor sum = %d, want 200", sum.Load())
	}
	if result != 200 {
		t.Fatalf("subflow Reduce = %d, want 200", result)
	}
}

// Property: parallel Reduce with + equals sequential sum for any input.
func TestQuickReduceMatchesSequential(t *testing.T) {
	tf := New(4)
	defer tf.Close()
	f := func(xs []int32, chunk uint8) bool {
		want := int64(0)
		for _, x := range xs {
			want += int64(x)
		}
		items := make([]int64, len(xs))
		for i, x := range xs {
			items[i] = int64(x)
		}
		got := int64(0)
		Reduce(tf, items, &got, func(a, b int64) int64 { return a + b }, int(chunk))
		if err := tf.WaitForAll(); err != nil {
			return false
		}
		return got == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// Property: Transform equals sequential map for any input and chunking.
func TestQuickTransformMatchesSequential(t *testing.T) {
	tf := New(4)
	defer tf.Close()
	f := func(xs []int16, chunk uint8) bool {
		dst := make([]int32, len(xs))
		Transform(tf, xs, dst, func(v int16) int32 { return int32(v) * 3 }, int(chunk))
		if err := tf.WaitForAll(); err != nil {
			return false
		}
		for i, x := range xs {
			if dst[i] != int32(x)*3 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// partitioners is the test matrix over partition strategies.
var partitioners = []struct {
	name string
	p    Partitioner
}{
	{"Static", Static},
	{"Dynamic", Dynamic},
	{"Guided", Guided},
}

// TestParallelForPartitioners checks every strategy against the same
// sum, with the S/T placeholders wired between pre and post tasks so the
// beg→end ordering contract is asserted too.
func TestParallelForPartitioners(t *testing.T) {
	for _, pt := range partitioners {
		t.Run(pt.name, func(t *testing.T) {
			tf := New(4)
			defer tf.Close()
			var sum atomic.Int64
			items := make([]int64, 1000)
			for i := range items {
				items[i] = int64(i)
			}
			S, T := ParallelFor(tf, items, func(v int64) { sum.Add(v) }, 0, WithPartitioner(pt.p))
			pre := tf.Emplace1(func() { sum.Add(1) })
			post := tf.Emplace1(func() {
				if got := sum.Load(); got != 1000*999/2+1 {
					t.Errorf("sum at post = %d, want %d", got, 1000*999/2+1)
				}
			})
			pre.Precede(S)
			T.Precede(post)
			if err := tf.WaitForAll(); err != nil {
				t.Fatal(err)
			}
			if got := sum.Load(); got != 1000*999/2+1 {
				t.Fatalf("sum = %d, want %d", got, 1000*999/2+1)
			}
		})
	}
}

// A chunk larger than the input must still visit every element exactly
// once, under every strategy.
func TestParallelForChunkLargerThanN(t *testing.T) {
	for _, pt := range partitioners {
		t.Run(pt.name, func(t *testing.T) {
			tf := New(4)
			defer tf.Close()
			hits := make([]atomic.Int32, 5)
			idx := make([]int, 5)
			for i := range idx {
				idx[i] = i
			}
			ParallelFor(tf, idx, func(i int) { hits[i].Add(1) }, 1000, WithPartitioner(pt.p))
			if err := tf.WaitForAll(); err != nil {
				t.Fatal(err)
			}
			for i := range hits {
				if got := hits[i].Load(); got != 1 {
					t.Fatalf("element %d visited %d times, want 1", i, got)
				}
			}
		})
	}
}

// A single-worker executor must still drain every strategy (Dynamic and
// Guided emit exactly one claimant there).
func TestParallelForSingleWorker(t *testing.T) {
	for _, pt := range partitioners {
		t.Run(pt.name, func(t *testing.T) {
			tf := New(1)
			defer tf.Close()
			var sum int64 // single worker: no atomics needed
			items := make([]int64, 300)
			for i := range items {
				items[i] = 1
			}
			ParallelFor(tf, items, func(v int64) { sum += v }, 0, WithPartitioner(pt.p))
			if err := tf.WaitForAll(); err != nil {
				t.Fatal(err)
			}
			if sum != 300 {
				t.Fatalf("sum = %d, want 300", sum)
			}
		})
	}
}

// step > 1 must hit exactly the arithmetic sequence beg, beg+step, ...,
// under every strategy, matching a sequential reference.
func TestParallelForIndexStepPartitioned(t *testing.T) {
	for _, pt := range partitioners {
		t.Run(pt.name, func(t *testing.T) {
			tf := New(4)
			defer tf.Close()
			const beg, end, step = 3, 250, 7
			hits := make([]atomic.Int32, end)
			ParallelForIndex(tf, beg, end, step, func(i int) { hits[i].Add(1) }, 4, WithPartitioner(pt.p))
			if err := tf.WaitForAll(); err != nil {
				t.Fatal(err)
			}
			want := make([]int32, end)
			for j := beg; j < end; j += step {
				want[j] = 1
			}
			for i := range hits {
				if got := hits[i].Load(); got != want[i] {
					t.Fatalf("index %d hit %d times, want %d", i, got, want[i])
				}
			}
		})
	}
}

func TestReducePartitioners(t *testing.T) {
	for _, pt := range partitioners {
		t.Run(pt.name, func(t *testing.T) {
			tf := New(4)
			defer tf.Close()
			items := make([]int, 777)
			for i := range items {
				items[i] = i + 1
			}
			result := 100 // initial value seeds the fold
			Reduce(tf, items, &result, func(a, b int) int { return a + b }, 10, WithPartitioner(pt.p))
			if err := tf.WaitForAll(); err != nil {
				t.Fatal(err)
			}
			if want := 100 + 777*778/2; result != want {
				t.Fatalf("Reduce = %d, want %d", result, want)
			}
		})
	}
}

func TestTransformPartitioners(t *testing.T) {
	for _, pt := range partitioners {
		t.Run(pt.name, func(t *testing.T) {
			tf := New(4)
			defer tf.Close()
			src := make([]int, 333)
			for i := range src {
				src[i] = i
			}
			dst := make([]int, 333)
			Transform(tf, src, dst, func(v int) int { return v * 3 }, 0, WithPartitioner(pt.p))
			if err := tf.WaitForAll(); err != nil {
				t.Fatal(err)
			}
			for i := range src {
				if dst[i] != i*3 {
					t.Fatalf("dst[%d] = %d, want %d", i, dst[i], i*3)
				}
			}
		})
	}
}

func TestTransformReducePartitioners(t *testing.T) {
	for _, pt := range partitioners {
		t.Run(pt.name, func(t *testing.T) {
			tf := New(4)
			defer tf.Close()
			items := make([]int, 500)
			for i := range items {
				items[i] = i
			}
			total := 7
			TransformReduce(tf, items, &total,
				func(a, b int) int { return a + b },
				func(v int) int { return v * 2 }, 8, WithPartitioner(pt.p))
			if err := tf.WaitForAll(); err != nil {
				t.Fatal(err)
			}
			if want := 7 + 2*(500*499/2); total != want {
				t.Fatalf("TransformReduce = %d, want %d", total, want)
			}
		})
	}
}

// Re-running a dynamically partitioned flow must replay the whole range
// each time: the source placeholder re-arms the shared cursor (and the
// reduce partial-slot flags) before the claimants run.
func TestPartitionedRerun(t *testing.T) {
	for _, pt := range partitioners {
		t.Run(pt.name, func(t *testing.T) {
			tf := New(4)
			defer tf.Close()
			var count atomic.Int64
			items := make([]int, 512)
			ParallelFor(tf, items, func(int) { count.Add(1) }, 0, WithPartitioner(pt.p))
			const runs = 10
			if err := tf.RunN(runs); err != nil {
				t.Fatal(err)
			}
			if got := count.Load(); got != runs*512 {
				t.Fatalf("after %d runs: %d iterations, want %d", runs, got, runs*512)
			}
		})
	}
}

func TestPartitionedReduceRerun(t *testing.T) {
	for _, pt := range partitioners {
		t.Run(pt.name, func(t *testing.T) {
			tf := New(4)
			defer tf.Close()
			items := make([]int, 400)
			for i := range items {
				items[i] = 1
			}
			result := 0
			Reduce(tf, items, &result, func(a, b int) int { return a + b }, 3, WithPartitioner(pt.p))
			for run := 0; run < 3; run++ {
				result = 0
				if err := tf.Run(); err != nil {
					t.Fatal(err)
				}
				if result != 400 {
					t.Fatalf("run %d: Reduce = %d, want 400", run, result)
				}
			}
		})
	}
}

// Dynamic partitioners inside a subflow: same unified-interface contract
// as the static strategies.
func TestGuidedInsideSubflow(t *testing.T) {
	tf := New(4)
	defer tf.Close()
	var sum atomic.Int64
	items := make([]int64, 200)
	for i := range items {
		items[i] = 1
	}
	tf.EmplaceSubflow(func(sf *Subflow) {
		ParallelFor(sf, items, func(v int64) { sum.Add(v) }, 0, WithPartitioner(Guided))
	})
	if err := tf.WaitForAll(); err != nil {
		t.Fatal(err)
	}
	if sum.Load() != 200 {
		t.Fatalf("subflow guided ParallelFor sum = %d, want 200", sum.Load())
	}
}

// Property: every partitioner matches the sequential fold for any input,
// chunk, and strategy.
func TestQuickPartitionedReduceMatchesSequential(t *testing.T) {
	tf := New(4)
	defer tf.Close()
	f := func(xs []int32, chunk uint8, strat uint8) bool {
		p := Partitioner(strat % 3)
		want := int64(0)
		for _, x := range xs {
			want += int64(x)
		}
		items := make([]int64, len(xs))
		for i, x := range xs {
			items[i] = int64(x)
		}
		got := int64(0)
		Reduce(tf, items, &got, func(a, b int64) int64 { return a + b }, int(chunk), WithPartitioner(p))
		if err := tf.WaitForAll(); err != nil {
			return false
		}
		return got == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// TestRunParallelForGuidedZeroAlloc gates the dynamic-partitioner
// steady state: re-running a guided loop claims ranges off the shared
// cursor without allocating.
func TestRunParallelForGuidedZeroAlloc(t *testing.T) {
	tf := New(2)
	defer tf.Close()
	var n atomic.Int64
	items := make([]int64, 1024)
	for i := range items {
		items[i] = 1
	}
	ParallelFor(tf, items, func(v int64) { n.Add(v) }, 0, WithPartitioner(Guided))
	if err := tf.Run(); err != nil { // build run state outside measurement
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(100, func() {
		if err := tf.Run(); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Fatalf("guided ParallelFor Run allocates %v objects/run, want 0", allocs)
	}
}

func TestChunkSize(t *testing.T) {
	if got := chunkSize(100, 7, 4); got != 7 {
		t.Fatalf("chunkSize(100,7,4) = %d", got)
	}
	if got := chunkSize(0, 0, 4); got < 1 {
		t.Fatalf("chunkSize(0,0,4) = %d, want >= 1", got)
	}
	// Empty-range contract: n <= 0 returns 1 regardless of the requested
	// chunk — an empty range needs no partitioning.
	if got := chunkSize(0, 7, 4); got != 1 {
		t.Fatalf("chunkSize(0,7,4) = %d, want 1", got)
	}
	if got := chunkSize(-3, 50, 2); got != 1 {
		t.Fatalf("chunkSize(-3,50,2) = %d, want 1", got)
	}
	if got := chunkSize(5, -1, 4); got < 1 {
		t.Fatalf("chunkSize(5,-1,4) = %d, want >= 1", got)
	}
	// Auto-chunking partitions by the actual worker count: 4 chunks per
	// worker, so 2 workers split 80 items into 8 chunks of 10.
	if got := chunkSize(80, 0, 2); got != 10 {
		t.Fatalf("chunkSize(80,0,2) = %d, want 10", got)
	}
	// Unknown worker count falls back to GOMAXPROCS.
	pieces := 4 * runtime.GOMAXPROCS(0)
	want := (1000 + pieces - 1) / pieces
	if got := chunkSize(1000, 0, 0); got != want {
		t.Fatalf("chunkSize(1000,0,0) = %d, want %d", got, want)
	}
}

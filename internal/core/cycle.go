package core

import (
	"fmt"
	"strings"
)

// findCycleError checks g for strong dependency cycles with Kahn's
// algorithm (weak edges leaving condition tasks are legal cycles — that is
// how task-graph loops are expressed — so they are ignored). It returns
// nil for an acyclic graph, or a descriptive error naming the tasks on one
// cycle, wrapping ErrCyclic. The happy path costs two O(V) scratch slices
// and one O(V+E) sweep; the error path allocates freely.
func findCycleError(g *graph) error {
	n := g.len()
	indeg := make([]int32, n)
	for _, nd := range g.nodes {
		indeg[nd.idx] = int32(nd.numDependents)
	}
	queue := make([]*node, 0, n)
	for _, nd := range g.nodes {
		if indeg[nd.idx] == 0 {
			queue = append(queue, nd)
		}
	}
	visited := 0
	for len(queue) > 0 {
		nd := queue[len(queue)-1]
		queue = queue[:len(queue)-1]
		visited++
		if nd.isCondition() {
			continue // out-edges of condition tasks are weak
		}
		nd.eachSuccessor(func(s *node) {
			indeg[s.idx]--
			if indeg[s.idx] == 0 {
				queue = append(queue, s)
			}
		})
	}
	if visited == n {
		return nil
	}
	return cycleError(g, indeg)
}

// cycleError names the tasks on one strong cycle of the residual graph
// left by Kahn's algorithm (every node with a positive residual in-degree
// has at least one residual strong predecessor, so walking predecessors
// inside the residual set must revisit a node — that revisit closes a
// cycle).
func cycleError(g *graph, indeg []int32) error {
	residual := func(nd *node) bool { return indeg[nd.idx] > 0 }
	// Invert the strong edges of the residual subgraph.
	pred := make(map[*node]*node, len(g.nodes))
	var start *node
	for _, nd := range g.nodes {
		if !residual(nd) {
			continue
		}
		if start == nil {
			start = nd
		}
		if nd.isCondition() {
			continue
		}
		nd.eachSuccessor(func(s *node) {
			if residual(s) && pred[s] == nil {
				pred[s] = nd
			}
		})
	}
	// Walk predecessors until a node repeats; the repeated node anchors
	// the cycle.
	seen := make(map[*node]int, len(pred))
	walk := []*node{}
	cur := start
	for cur != nil {
		if at, ok := seen[cur]; ok {
			walk = walk[at:] // drop the tail leading into the cycle
			break
		}
		seen[cur] = len(walk)
		walk = append(walk, cur)
		cur = pred[cur]
	}
	// The walk followed predecessors, so reverse it into execution order.
	for i, j := 0, len(walk)-1; i < j; i, j = i+1, j-1 {
		walk[i], walk[j] = walk[j], walk[i]
	}
	const maxNamed = 8
	names := make([]string, 0, maxNamed+1)
	for i, nd := range walk {
		if i == maxNamed {
			names = append(names, fmt.Sprintf("… %d more", len(walk)-maxNamed))
			break
		}
		names = append(names, nd.label(int(nd.idx)))
	}
	return fmt.Errorf("core: cycle through tasks %s: %w",
		strings.Join(names, " -> "), ErrCyclic)
}

package core

import (
	"errors"
	"sync/atomic"
	"testing"
	"time"

	"gotaskflow/internal/executor"
)

// TestLatencyHistogramsRecordPerExecution wires a real executor built
// WithLatencyHistograms through the LatencyProvider seam: every completed
// task execution records exactly one observation into the topology's sink
// — the unbound default for plain taskflows, the flow's own set for
// flow-bound ones.
func TestLatencyHistogramsRecordPerExecution(t *testing.T) {
	e := executor.New(2, executor.WithLatencyHistograms())
	defer e.Shutdown()

	const chain, runs = 16, 5
	tf := NewShared(e)
	var n atomic.Int64
	prev := tf.Emplace1(func() { n.Add(1) })
	for i := 1; i < chain; i++ {
		next := tf.Emplace1(func() { n.Add(1) })
		prev.Precede(next)
		prev = next
	}
	for r := 0; r < runs; r++ {
		if err := tf.Run(); err != nil {
			t.Fatal(err)
		}
	}

	flows, ok := e.LatencyStats()
	if !ok || len(flows) == 0 || !flows[0].Unbound {
		t.Fatalf("LatencyStats = %v (ok=%v), want unbound sink first", flows, ok)
	}
	unbound := &flows[0]
	if want := uint64(chain * runs); unbound.EndToEnd.Count != want {
		t.Fatalf("unbound e2e count = %d, want %d (one per execution)", unbound.EndToEnd.Count, want)
	}
	if unbound.QueueWait.Count != unbound.EndToEnd.Count || unbound.Exec.Count != unbound.EndToEnd.Count {
		t.Fatal("the three series must record in lockstep")
	}
	// End-to-end is the sum of the two components, recorded from the same
	// instants, so the sums must match exactly.
	if unbound.EndToEnd.Sum != unbound.QueueWait.Sum+unbound.Exec.Sum {
		t.Fatalf("e2e sum %d != queue-wait %d + exec %d",
			unbound.EndToEnd.Sum, unbound.QueueWait.Sum, unbound.Exec.Sum)
	}

	// A flow-bound topology records into the flow's sink, not the default.
	f := e.NewFlow("tenant", executor.FlowConfig{Class: executor.Interactive})
	btf := NewShared(e).SetFlow(f)
	btf.Emplace(func() {}, func() {}, func() {})
	if err := btf.Run(); err != nil {
		t.Fatal(err)
	}
	flows, _ = e.LatencyStats()
	if flows[0].EndToEnd.Count != uint64(chain*runs) {
		t.Fatal("flow-bound run leaked records into the unbound sink")
	}
	var tenant *executor.FlowLatencySummary
	for i := range flows {
		if flows[i].Flow == "tenant" {
			tenant = &flows[i]
		}
	}
	if tenant == nil || tenant.EndToEnd.Count != 3 {
		t.Fatalf("tenant sink = %+v, want 3 records", tenant)
	}
}

// TestLatencyMeasuresExecutionTime sanity-checks the split: a sleeping
// task's execution histogram must dominate its queue wait.
func TestLatencyMeasuresExecutionTime(t *testing.T) {
	e := executor.New(1, executor.WithLatencyHistograms())
	defer e.Shutdown()
	tf := NewShared(e)
	tf.Emplace1(func() { time.Sleep(20 * time.Millisecond) })
	if err := tf.Run(); err != nil {
		t.Fatal(err)
	}
	flows, _ := e.LatencyStats()
	exec := flows[0].Exec.Mean()
	if exec < 15*time.Millisecond {
		t.Fatalf("exec mean = %v for a 20ms task, want >= 15ms", exec)
	}
	if e2e := flows[0].EndToEnd.Mean(); e2e < exec {
		t.Fatalf("e2e mean %v < exec mean %v", e2e, exec)
	}
}

// TestLatencyRetryChargesLastSubmission pins the retry policy: the
// backoff sleep between attempts is policy, not queue wait, so a retried
// task's recorded end-to-end spans only its final (re)submission — not
// the backoff. Only completed executions record: the failed first attempt
// contributes nothing.
func TestLatencyRetryChargesLastSubmission(t *testing.T) {
	const backoff = 60 * time.Millisecond
	e := executor.New(1, executor.WithLatencyHistograms())
	defer e.Shutdown()
	tf := NewShared(e)
	attempts := 0
	tf.EmplaceErr(func() error {
		attempts++
		if attempts == 1 {
			return errors.New("transient")
		}
		return nil
	}).Retry(2, backoff)
	if err := tf.Run(); err != nil {
		t.Fatal(err)
	}
	if attempts != 2 {
		t.Fatalf("attempts = %d, want 2", attempts)
	}
	flows, _ := e.LatencyStats()
	st := &flows[0]
	if st.EndToEnd.Count != 1 {
		t.Fatalf("e2e count = %d, want 1 (only the completed execution records)", st.EndToEnd.Count)
	}
	// The backoff waits at least backoff/2 (jittered); an un-restamped
	// ready time would charge that whole wait to queue-wait.
	if got := st.EndToEnd.Mean(); got >= backoff/2 {
		t.Fatalf("e2e mean = %v, includes the retry backoff (>= %v)", got, backoff/2)
	}
}

// TestLatencySkippedTasksNotRecorded: condition branches not taken are
// skipped, not executed, and must record nothing.
func TestLatencySkippedTasksNotRecorded(t *testing.T) {
	e := executor.New(2, executor.WithLatencyHistograms())
	defer e.Shutdown()
	tf := NewShared(e)
	var executed atomic.Uint64
	cond := tf.EmplaceCondition(func() int { executed.Add(1); return 0 })
	taken := tf.Emplace1(func() { executed.Add(1) })
	skipped := tf.Emplace1(func() { executed.Add(1) })
	cond.Precede(taken, skipped)
	if err := tf.Run(); err != nil {
		t.Fatal(err)
	}
	flows, _ := e.LatencyStats()
	if flows[0].EndToEnd.Count != executed.Load() {
		t.Fatalf("recorded %d observations for %d executions — skipped task recorded",
			flows[0].EndToEnd.Count, executed.Load())
	}
	if executed.Load() != 2 {
		t.Fatalf("executed = %d, want 2 (cond + taken branch)", executed.Load())
	}
}

// TestRunLinearChainZeroAllocHistogramsOn is TestRunLinearChainZeroAlloc
// with latency histograms armed: the record path (two clock reads, a
// stamp, three shard-local atomic adds per dimension) must not add a
// single allocation to the steady-state re-run.
func TestRunLinearChainZeroAllocHistogramsOn(t *testing.T) {
	e := executor.New(2, executor.WithLatencyHistograms())
	defer e.Shutdown()
	tf := NewShared(e)
	var n int64
	prev := tf.Emplace1(func() { n++ })
	for i := 0; i < 63; i++ {
		next := tf.Emplace1(func() { n++ })
		prev.Precede(next)
		prev = next
	}
	if err := tf.Run(); err != nil { // build run state outside measurement
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(100, func() {
		if err := tf.Run(); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Fatalf("linear-chain Run with histograms allocates %v objects/run, want 0", allocs)
	}
}

// TestRunLinearChainZeroAllocFlightOn is the same gate with the flight
// recorder armed: continuous event recording into the wrap-around rings
// must stay allocation-free across re-runs.
func TestRunLinearChainZeroAllocFlightOn(t *testing.T) {
	e := executor.New(2, executor.WithFlightRecorder(1<<10))
	defer e.Shutdown()
	tf := NewShared(e)
	var n int64
	prev := tf.Emplace1(func() { n++ })
	for i := 0; i < 63; i++ {
		next := tf.Emplace1(func() { n++ })
		prev.Precede(next)
		prev = next
	}
	if err := tf.Run(); err != nil {
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(100, func() {
		if err := tf.Run(); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Fatalf("linear-chain Run with flight recorder allocates %v objects/run, want 0", allocs)
	}
}

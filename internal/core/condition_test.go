package core

import (
	"strings"
	"sync/atomic"
	"testing"
)

func TestConditionSelectsBranch(t *testing.T) {
	tf := New(2)
	defer tf.Close()
	var thenRan, elseRan atomic.Bool
	init := tf.Emplace1(func() {})
	cond := tf.EmplaceCondition(func() int { return 1 }) // take branch 1
	thenT := tf.Emplace1(func() { thenRan.Store(true) })
	elseT := tf.Emplace1(func() { elseRan.Store(true) })
	init.Precede(cond)
	cond.Precede(thenT, elseT) // branch 0 = then, branch 1 = else
	if err := tf.WaitForAll(); err != nil {
		t.Fatal(err)
	}
	if thenRan.Load() {
		t.Fatal("branch 0 ran although condition returned 1")
	}
	if !elseRan.Load() {
		t.Fatal("branch 1 did not run")
	}
}

func TestConditionOutOfRangeSignalsNothing(t *testing.T) {
	tf := New(2)
	defer tf.Close()
	var ran atomic.Bool
	cond := tf.EmplaceCondition(func() int { return 7 })
	next := tf.Emplace1(func() { ran.Store(true) })
	cond.Precede(next)
	if err := tf.WaitForAll(); err != nil {
		t.Fatal(err)
	}
	if ran.Load() {
		t.Fatal("out-of-range branch ran")
	}
}

func TestConditionLoop(t *testing.T) {
	// The canonical do-while: body -> cond; cond(0) -> body (loop),
	// cond(1) -> done.
	tf := New(4)
	defer tf.Close()
	var iterations atomic.Int64
	var doneRan atomic.Bool
	init := tf.Emplace1(func() {}).Name("init")
	body := tf.Emplace1(func() { iterations.Add(1) }).Name("body")
	cond := tf.EmplaceCondition(func() int {
		if iterations.Load() < 10 {
			return 0
		}
		return 1
	}).Name("cond")
	done := tf.Emplace1(func() { doneRan.Store(true) }).Name("done")
	init.Precede(body)
	body.Precede(cond)
	cond.Precede(body, done)
	if err := tf.Validate(); err != nil {
		t.Fatalf("Validate rejected a legal condition loop: %v", err)
	}
	if err := tf.WaitForAll(); err != nil {
		t.Fatal(err)
	}
	if got := iterations.Load(); got != 10 {
		t.Fatalf("loop body ran %d times, want 10", got)
	}
	if !doneRan.Load() {
		t.Fatal("loop exit task did not run")
	}
}

func TestConditionLoopWithStrongChainInBody(t *testing.T) {
	// Loop body is a chain b1 -> b2: the strong join counter of b2 must
	// re-arm on every iteration.
	tf := New(4)
	defer tf.Close()
	var b1n, b2n atomic.Int64
	init := tf.Emplace1(func() {})
	b1 := tf.Emplace1(func() { b1n.Add(1) })
	b2 := tf.Emplace1(func() { b2n.Add(1) })
	cond := tf.EmplaceCondition(func() int {
		if b2n.Load() < 5 {
			return 0
		}
		return 1
	})
	exit := tf.Emplace1(func() {})
	init.Precede(b1)
	b1.Precede(b2)
	b2.Precede(cond)
	cond.Precede(b1, exit)
	if err := tf.WaitForAll(); err != nil {
		t.Fatal(err)
	}
	if b1n.Load() != 5 || b2n.Load() != 5 {
		t.Fatalf("body counts = (%d, %d), want (5, 5)", b1n.Load(), b2n.Load())
	}
}

func TestConditionSwitchThreeWays(t *testing.T) {
	for want := 0; want < 3; want++ {
		want := want
		tf := New(2)
		var ran [3]atomic.Bool
		cond := tf.EmplaceCondition(func() int { return want })
		for i := 0; i < 3; i++ {
			i := i
			cond.Precede(tf.Emplace1(func() { ran[i].Store(true) }))
		}
		if err := tf.WaitForAll(); err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 3; i++ {
			if ran[i].Load() != (i == want) {
				t.Fatalf("branch %d ran=%v, want %v", i, ran[i].Load(), i == want)
			}
		}
		tf.Close()
	}
}

func TestConditionCascade(t *testing.T) {
	// cond1 -> cond2 -> task: conditions chain through weak edges.
	tf := New(2)
	defer tf.Close()
	var hits atomic.Int64
	c1 := tf.EmplaceCondition(func() int { return 0 })
	c2 := tf.EmplaceCondition(func() int { return 0 })
	end := tf.Emplace1(func() { hits.Add(1) })
	c1.Precede(c2)
	c2.Precede(end)
	if err := tf.WaitForAll(); err != nil {
		t.Fatal(err)
	}
	if hits.Load() != 1 {
		t.Fatalf("end ran %d times, want 1", hits.Load())
	}
}

func TestConditionInsideSubflow(t *testing.T) {
	tf := New(4)
	defer tf.Close()
	var iterations atomic.Int64
	var after atomic.Bool
	parent := tf.EmplaceSubflow(func(sf *Subflow) {
		init := sf.Emplace1(func() {})
		body := sf.Emplace1(func() { iterations.Add(1) })
		cond := sf.EmplaceCondition(func() int {
			if iterations.Load() < 4 {
				return 0
			}
			return 1
		})
		exit := sf.Emplace1(func() {})
		init.Precede(body)
		body.Precede(cond)
		cond.Precede(body, exit)
	})
	post := tf.Emplace1(func() { after.Store(true) })
	parent.Precede(post)
	if err := tf.WaitForAll(); err != nil {
		t.Fatal(err)
	}
	if iterations.Load() != 4 {
		t.Fatalf("subflow loop ran %d times, want 4", iterations.Load())
	}
	if !after.Load() {
		t.Fatal("joined subflow with condition loop did not release parent successor")
	}
}

func TestConditionPanicTerminatesBranch(t *testing.T) {
	tf := New(2)
	defer tf.Close()
	var ran atomic.Bool
	cond := tf.EmplaceCondition(func() int { panic("cond exploded") })
	next := tf.Emplace1(func() { ran.Store(true) })
	cond.Precede(next)
	err := tf.WaitForAll()
	if err == nil {
		t.Fatal("panicking condition produced no error")
	}
	if ran.Load() {
		t.Fatal("successor of panicking condition ran")
	}
}

func TestConditionMixedWithStrongJoin(t *testing.T) {
	// D has one strong pred (B) and one weak pred (cond): signalling
	// either path must run D; here the condition picks D directly.
	tf := New(2)
	defer tf.Close()
	var dRuns atomic.Int64
	a := tf.Emplace1(func() {})
	cond := tf.EmplaceCondition(func() int { return 0 })
	b := tf.Emplace1(func() {})
	d := tf.Emplace1(func() { dRuns.Add(1) })
	a.Precede(cond)
	a.Precede(b)
	cond.Precede(d)
	b.Precede(d)
	if err := tf.WaitForAll(); err != nil {
		t.Fatal(err)
	}
	// D has numDependents 1 (from B) and one weak pred: it runs once when
	// B finishes and once when the condition signals it.
	if got := dRuns.Load(); got != 2 {
		t.Fatalf("D ran %d times, want 2 (one strong, one weak signal)", got)
	}
}

func TestWorkConditionOnPlaceholder(t *testing.T) {
	tf := New(2)
	defer tf.Close()
	var ran atomic.Bool
	p := tf.Placeholder()
	if p.IsCondition() {
		t.Fatal("placeholder is condition")
	}
	exit := tf.Emplace1(func() { ran.Store(true) })
	p.WorkCondition(func() int { return 0 })
	if !p.IsCondition() {
		t.Fatal("WorkCondition did not mark the task")
	}
	p.Precede(exit)
	if err := tf.WaitForAll(); err != nil {
		t.Fatal(err)
	}
	if !ran.Load() {
		t.Fatal("condition branch did not run")
	}
}

func TestWorkConditionAfterWiringPanics(t *testing.T) {
	tf := New(1)
	defer tf.Close()
	a := tf.Emplace1(func() {})
	b := tf.Emplace1(func() {})
	a.Precede(b)
	defer func() {
		tf.present = &graph{} // do not dispatch the half-mutated graph
		if recover() == nil {
			t.Fatal("WorkCondition after wiring did not panic")
		}
	}()
	a.WorkCondition(func() int { return 0 })
}

func TestWorkAfterConditionWiringPanics(t *testing.T) {
	tf := New(1)
	defer tf.Close()
	c := tf.EmplaceCondition(func() int { return 0 })
	b := tf.Emplace1(func() {})
	c.Precede(b)
	defer func() {
		tf.present = &graph{}
		if recover() == nil {
			t.Fatal("Work on wired condition task did not panic")
		}
	}()
	c.Work(func() {})
}

func TestConditionDumpDashedEdges(t *testing.T) {
	tf := New(1)
	defer tf.Close()
	cond := tf.EmplaceCondition(func() int { return 0 }).Name("cond")
	a := tf.Emplace1(func() {}).Name("a")
	b := tf.Emplace1(func() {}).Name("b")
	cond.Precede(a, b)
	var sb strings.Builder
	if err := tf.Dump(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if !strings.Contains(out, `"cond" -> "a" [style=dashed label="0"];`) {
		t.Fatalf("weak edge 0 not dashed:\n%s", out)
	}
	if !strings.Contains(out, `"cond" -> "b" [style=dashed label="1"];`) {
		t.Fatalf("weak edge 1 not dashed:\n%s", out)
	}
	tf.present = &graph{} // don't run the dangling graph
}

func TestLongRunningLoopManyIterations(t *testing.T) {
	tf := New(4)
	defer tf.Close()
	const target = 5000
	var n atomic.Int64
	init := tf.Emplace1(func() {})
	body := tf.Emplace1(func() { n.Add(1) })
	cond := tf.EmplaceCondition(func() int {
		if n.Load() < target {
			return 0
		}
		return 1
	})
	exit := tf.Emplace1(func() {})
	init.Precede(body)
	body.Precede(cond)
	cond.Precede(body, exit)
	if err := tf.WaitForAll(); err != nil {
		t.Fatal(err)
	}
	if n.Load() != target {
		t.Fatalf("loop ran %d times, want %d", n.Load(), target)
	}
}

func TestNestedConditionLoops(t *testing.T) {
	// Outer loop runs 3 times; each iteration runs an inner loop 4 times.
	tf := New(4)
	defer tf.Close()
	var inner, outer atomic.Int64
	var innerThisRound atomic.Int64

	// As in canonical condition-task patterns, the loop nest starts from
	// an init task — every other node has in-edges.
	init := tf.Emplace1(func() {})
	outerBody := tf.Emplace1(func() { innerThisRound.Store(0) })
	innerBody := tf.Emplace1(func() { inner.Add(1); innerThisRound.Add(1) })
	innerCond := tf.EmplaceCondition(func() int {
		if innerThisRound.Load() < 4 {
			return 0
		}
		return 1
	})
	outerCond := tf.EmplaceCondition(func() int {
		outer.Add(1)
		if outer.Load() < 3 {
			return 0
		}
		return 1
	})
	exit := tf.Emplace1(func() {})

	init.Precede(outerBody)
	outerBody.Precede(innerBody)
	innerBody.Precede(innerCond)
	innerCond.Precede(innerBody, outerCond)
	outerCond.Precede(outerBody, exit)

	if err := tf.WaitForAll(); err != nil {
		t.Fatal(err)
	}
	if outer.Load() != 3 || inner.Load() != 12 {
		t.Fatalf("outer=%d inner=%d, want 3 and 12", outer.Load(), inner.Load())
	}
}

package core

import (
	"errors"
	"sync"
	"sync/atomic"
	"testing"
)

func TestCancelSkipsPendingTasks(t *testing.T) {
	tf := New(2)
	defer tf.Close()
	gate := make(chan struct{})
	started := make(chan struct{})
	var tail atomic.Int64

	head := tf.Emplace1(func() {
		close(started)
		<-gate
	})
	// A long chain behind the gate: everything after head should be
	// skipped once cancelled.
	prev := head
	for i := 0; i < 100; i++ {
		cur := tf.Emplace1(func() { tail.Add(1) })
		prev.Precede(cur)
		prev = cur
	}
	f := tf.Dispatch()
	<-started
	f.Cancel()
	if !f.Cancelled() {
		t.Fatal("Cancelled() = false after Cancel")
	}
	close(gate)
	if err := f.Get(); !errors.Is(err, ErrCancelled) {
		t.Fatalf("Get() = %v, want ErrCancelled", err)
	}
	if tail.Load() != 0 {
		t.Fatalf("%d chain tasks ran after cancellation", tail.Load())
	}
	tf.WaitForAll()
}

func TestCancelTerminatesConditionLoop(t *testing.T) {
	tf := New(2)
	defer tf.Close()
	var iters atomic.Int64
	cancelAt := make(chan *Future, 1)

	init := tf.Emplace1(func() {})
	body := tf.Emplace1(func() {
		if iters.Add(1) == 3 {
			f := <-cancelAt
			f.Cancel()
		}
	})
	cond := tf.EmplaceCondition(func() int { return 0 }) // loop forever
	init.Precede(body)
	body.Precede(cond)
	cond.Precede(body)

	f := tf.Dispatch()
	cancelAt <- f
	if err := f.Get(); !errors.Is(err, ErrCancelled) {
		t.Fatalf("Get() = %v, want ErrCancelled", err)
	}
	// The loop may complete the in-flight iteration but must stop.
	if got := iters.Load(); got > 4 {
		t.Fatalf("loop ran %d iterations after cancel", got)
	}
	tf.WaitForAll()
}

func TestCancelAfterCompletionIsNoop(t *testing.T) {
	tf := New(2)
	defer tf.Close()
	tf.Emplace1(func() {})
	f := tf.Dispatch()
	f.Wait()
	f.Cancel()
	if err := f.Get(); err != nil {
		t.Fatalf("Cancel after completion produced error %v", err)
	}
	if f.Cancelled() {
		t.Fatal("completed topology reports cancelled")
	}
	tf.WaitForAll()
}

func TestCancelWithSubflows(t *testing.T) {
	tf := New(2)
	defer tf.Close()
	gate := make(chan struct{})
	started := make(chan struct{})
	var spawned atomic.Int64
	blocker := tf.Emplace1(func() {
		close(started)
		<-gate
	})
	sub := tf.EmplaceSubflow(func(sf *Subflow) {
		for i := 0; i < 50; i++ {
			sf.Emplace1(func() { spawned.Add(1) })
		}
	})
	blocker.Precede(sub)
	f := tf.Dispatch()
	<-started
	f.Cancel()
	close(gate)
	if err := f.Get(); !errors.Is(err, ErrCancelled) {
		t.Fatalf("Get() = %v", err)
	}
	if spawned.Load() != 0 {
		t.Fatalf("cancelled subflow spawned %d tasks", spawned.Load())
	}
	tf.WaitForAll()
}

func TestCancelDoesNotAffectOtherTopologies(t *testing.T) {
	tf := New(2)
	defer tf.Close()
	gate := make(chan struct{})
	started := make(chan struct{})
	var skipped atomic.Int64
	h := tf.Emplace1(func() { close(started); <-gate })
	s := tf.Emplace1(func() { skipped.Add(1) })
	h.Precede(s)
	f1 := tf.Dispatch()

	var ran atomic.Int64
	for i := 0; i < 20; i++ {
		tf.Emplace1(func() { ran.Add(1) })
	}
	f2 := tf.Dispatch()

	<-started
	f1.Cancel()
	close(gate)
	if err := f1.Get(); !errors.Is(err, ErrCancelled) {
		t.Fatalf("f1.Get() = %v", err)
	}
	if err := f2.Get(); err != nil {
		t.Fatalf("f2.Get() = %v; sibling topology affected", err)
	}
	if ran.Load() != 20 {
		t.Fatalf("sibling topology ran %d of 20 tasks", ran.Load())
	}
	tf.WaitForAll()
}

// Cancel racing a semaphore-parked node: the parked node is owned by the
// semaphore when cancellation lands. It must still be handed back and
// drained — body skipped, units returned — or the topology never
// completes.
func TestCancelRacesSemaphoreParkedNode(t *testing.T) {
	tf := New(4)
	defer tf.Close()
	sem := NewSemaphore(1)
	gate := make(chan struct{})
	started := make(chan struct{})
	var parkedRan atomic.Int64

	holder := tf.Emplace1(func() { close(started); <-gate })
	holder.Acquire(sem).Release(sem)
	// This source cannot get a unit while holder runs: it parks.
	parked := tf.Emplace1(func() { parkedRan.Add(1) })
	parked.Acquire(sem).Release(sem)

	f := tf.Dispatch()
	<-started
	f.Cancel()
	close(gate)
	if err := f.Get(); !errors.Is(err, ErrCancelled) {
		t.Fatalf("Get() = %v, want ErrCancelled", err)
	}
	if parkedRan.Load() != 0 {
		t.Fatal("parked node body ran after cancellation")
	}
	if got := sem.Value(); got != 1 {
		t.Fatalf("semaphore has %d units after drain, want 1", got)
	}
	tf.WaitForAll()
}

// Cancel landing while a joined subflow's children are in flight: the
// join must still retire so the parent graph drains.
func TestCancelDuringJoinedSubflow(t *testing.T) {
	tf := New(4)
	defer tf.Close()
	gate := make(chan struct{})
	started := make(chan struct{})
	var once sync.Once
	var after atomic.Int64

	sub := tf.EmplaceSubflow(func(sf *Subflow) {
		for i := 0; i < 8; i++ {
			sf.Emplace1(func() {
				once.Do(func() { close(started) })
				<-gate
			})
		}
	})
	tail := tf.Emplace1(func() { after.Add(1) })
	sub.Precede(tail)

	f := tf.Dispatch()
	<-started // at least one child is executing
	f.Cancel()
	close(gate)
	if err := f.Get(); !errors.Is(err, ErrCancelled) {
		t.Fatalf("Get() = %v, want ErrCancelled", err)
	}
	if after.Load() != 0 {
		t.Fatal("successor of the cancelled subflow ran")
	}
	tf.WaitForAll()
}

// Double-Cancel is idempotent: one ErrCancelled, no panic, no duplicate
// aggregation.
func TestDoubleCancel(t *testing.T) {
	tf := New(2)
	defer tf.Close()
	gate := make(chan struct{})
	started := make(chan struct{})
	tf.Emplace1(func() { close(started); <-gate })
	f := tf.Dispatch()
	<-started
	f.Cancel()
	f.Cancel()
	close(gate)
	err := f.Get()
	if !errors.Is(err, ErrCancelled) {
		t.Fatalf("Get() = %v, want ErrCancelled", err)
	}
	// The guard must keep the second Cancel from appending a second
	// ErrCancelled: a single failure comes back unwrapped.
	if err != ErrCancelled {
		t.Fatalf("Get() = %v, want the bare ErrCancelled sentinel", err)
	}
	tf.WaitForAll()
}

// Cancel after the topology finished stays a no-op even when racing Get.
func TestCancelAfterDoneConcurrentWithGet(t *testing.T) {
	tf := New(2)
	defer tf.Close()
	for i := 0; i < 20; i++ {
		tf.Emplace1(func() {})
	}
	f := tf.Dispatch()
	f.Wait()
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() { defer wg.Done(); f.Cancel() }()
	}
	wg.Wait()
	if err := f.Get(); err != nil {
		t.Fatalf("Get() = %v after post-completion Cancels", err)
	}
	if f.Cancelled() {
		t.Fatal("finished topology reports cancelled")
	}
	tf.WaitForAll()
}

package core

import (
	"errors"
	"sync/atomic"
	"testing"
)

func TestCancelSkipsPendingTasks(t *testing.T) {
	tf := New(2)
	defer tf.Close()
	gate := make(chan struct{})
	started := make(chan struct{})
	var tail atomic.Int64

	head := tf.Emplace1(func() {
		close(started)
		<-gate
	})
	// A long chain behind the gate: everything after head should be
	// skipped once cancelled.
	prev := head
	for i := 0; i < 100; i++ {
		cur := tf.Emplace1(func() { tail.Add(1) })
		prev.Precede(cur)
		prev = cur
	}
	f := tf.Dispatch()
	<-started
	f.Cancel()
	if !f.Cancelled() {
		t.Fatal("Cancelled() = false after Cancel")
	}
	close(gate)
	if err := f.Get(); !errors.Is(err, ErrCancelled) {
		t.Fatalf("Get() = %v, want ErrCancelled", err)
	}
	if tail.Load() != 0 {
		t.Fatalf("%d chain tasks ran after cancellation", tail.Load())
	}
	tf.WaitForAll()
}

func TestCancelTerminatesConditionLoop(t *testing.T) {
	tf := New(2)
	defer tf.Close()
	var iters atomic.Int64
	cancelAt := make(chan *Future, 1)

	init := tf.Emplace1(func() {})
	body := tf.Emplace1(func() {
		if iters.Add(1) == 3 {
			f := <-cancelAt
			f.Cancel()
		}
	})
	cond := tf.EmplaceCondition(func() int { return 0 }) // loop forever
	init.Precede(body)
	body.Precede(cond)
	cond.Precede(body)

	f := tf.Dispatch()
	cancelAt <- f
	if err := f.Get(); !errors.Is(err, ErrCancelled) {
		t.Fatalf("Get() = %v, want ErrCancelled", err)
	}
	// The loop may complete the in-flight iteration but must stop.
	if got := iters.Load(); got > 4 {
		t.Fatalf("loop ran %d iterations after cancel", got)
	}
	tf.WaitForAll()
}

func TestCancelAfterCompletionIsNoop(t *testing.T) {
	tf := New(2)
	defer tf.Close()
	tf.Emplace1(func() {})
	f := tf.Dispatch()
	f.Wait()
	f.Cancel()
	if err := f.Get(); err != nil {
		t.Fatalf("Cancel after completion produced error %v", err)
	}
	if f.Cancelled() {
		t.Fatal("completed topology reports cancelled")
	}
	tf.WaitForAll()
}

func TestCancelWithSubflows(t *testing.T) {
	tf := New(2)
	defer tf.Close()
	gate := make(chan struct{})
	started := make(chan struct{})
	var spawned atomic.Int64
	blocker := tf.Emplace1(func() {
		close(started)
		<-gate
	})
	sub := tf.EmplaceSubflow(func(sf *Subflow) {
		for i := 0; i < 50; i++ {
			sf.Emplace1(func() { spawned.Add(1) })
		}
	})
	blocker.Precede(sub)
	f := tf.Dispatch()
	<-started
	f.Cancel()
	close(gate)
	if err := f.Get(); !errors.Is(err, ErrCancelled) {
		t.Fatalf("Get() = %v", err)
	}
	if spawned.Load() != 0 {
		t.Fatalf("cancelled subflow spawned %d tasks", spawned.Load())
	}
	tf.WaitForAll()
}

func TestCancelDoesNotAffectOtherTopologies(t *testing.T) {
	tf := New(2)
	defer tf.Close()
	gate := make(chan struct{})
	started := make(chan struct{})
	var skipped atomic.Int64
	h := tf.Emplace1(func() { close(started); <-gate })
	s := tf.Emplace1(func() { skipped.Add(1) })
	h.Precede(s)
	f1 := tf.Dispatch()

	var ran atomic.Int64
	for i := 0; i < 20; i++ {
		tf.Emplace1(func() { ran.Add(1) })
	}
	f2 := tf.Dispatch()

	<-started
	f1.Cancel()
	close(gate)
	if err := f1.Get(); !errors.Is(err, ErrCancelled) {
		t.Fatalf("f1.Get() = %v", err)
	}
	if err := f2.Get(); err != nil {
		t.Fatalf("f2.Get() = %v; sibling topology affected", err)
	}
	if ran.Load() != 20 {
		t.Fatalf("sibling topology ran %d of 20 tasks", ran.Load())
	}
	tf.WaitForAll()
}

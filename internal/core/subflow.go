package core

// Subflow builds a dynamic task dependency graph from inside a running task
// (paper Section III-D). It inherits all graph building blocks from static
// tasking: the same Emplace / EmplaceSubflow / Placeholder / Precede calls
// apply, so programmers need not learn a different API set.
//
// By default a spawned subflow joins its parent task: the parent's
// successors observe the completion of the entire child graph. Detach makes
// the subflow execute independently; a detached subflow eventually joins the
// end of the topology of its parent task.
//
// A Subflow is only valid during the invocation of the task it was passed
// to; retaining it afterwards is a programming error.
type Subflow struct {
	g        *graph
	topo     *topology
	parent   *node
	detached bool
}

var _ FlowBuilder = (*Subflow)(nil)

// Emplace creates one task per callable in the subflow and returns their
// handles in order.
func (sf *Subflow) Emplace(fns ...func()) []Task {
	ts := make([]Task, len(fns))
	for i, fn := range fns {
		ts[i] = Task{sf.g.emplaceWork(fn)}
	}
	return ts
}

// Emplace1 creates a single task in the subflow.
func (sf *Subflow) Emplace1(fn func()) Task {
	return Task{sf.g.emplaceWork(fn)}
}

// EmplaceSubflow creates a nested dynamic task: subflows may recursively
// spawn subflows of their own.
func (sf *Subflow) EmplaceSubflow(fn func(*Subflow)) Task {
	return Task{sf.g.emplaceSubflow(fn)}
}

// EmplaceCondition creates a condition task inside the subflow; see
// FlowBuilder.EmplaceCondition.
func (sf *Subflow) EmplaceCondition(fn func() int) Task {
	return Task{sf.g.emplaceCondition(fn)}
}

// Placeholder creates a task with no work assigned.
func (sf *Subflow) Placeholder() Task {
	return Task{sf.g.emplacePlaceholder()}
}

// Detach severs the subflow from its parent task, letting its execution
// flow independently of the parent's subsequent dependency constraints.
func (sf *Subflow) Detach() { sf.detached = true }

// Join re-attaches the subflow to its parent task (the default behaviour),
// undoing a previous Detach.
func (sf *Subflow) Join() { sf.detached = false }

// IsDetached reports whether the subflow is currently detached.
func (sf *Subflow) IsDetached() bool { return sf.detached }

// NumNodes returns the number of tasks spawned so far.
func (sf *Subflow) NumNodes() int { return sf.g.len() }

// workerCount implements FlowBuilder: a subflow runs on the executor of
// the topology that spawned it.
func (sf *Subflow) workerCount() int {
	if sf.topo == nil || sf.topo.exec == nil {
		return 0
	}
	return sf.topo.exec.NumWorkers()
}

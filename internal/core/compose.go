package core

// Composition lets a taskflow embed another taskflow as a single module
// task (Cpp-Taskflow's composed_of), promoting the paper's Section III-F
// goal of building large parallel programs from smaller, structurally
// correct patterns. The child keeps ownership of its graph; the module
// task spawns it as a joined subflow at runtime, so the parent's
// successors wait for the whole child graph.

// Composed creates a module task in tf that runs the present graph of
// child when executed. The child graph is shared, not copied: it must stay
// unmodified and must not be dispatched on its own (or composed a second
// time into a concurrently running graph) while a topology containing the
// module task is executing — the same aliasing rule as Cpp-Taskflow's
// composed_of.
func (tf *Taskflow) Composed(child *Taskflow) Task {
	return composed(tf, child)
}

// Composed creates a module task inside a subflow — composition works in
// dynamic tasking through the same unified interface.
func (sf *Subflow) Composed(child *Taskflow) Task {
	return composed(sf, child)
}

func composed(fb FlowBuilder, child *Taskflow) Task {
	name := child.name
	if name == "" {
		name = "module"
	}
	t := fb.EmplaceSubflow(func(sf *Subflow) {
		sf.spawnGraph(child.present)
	})
	return t.Name(name)
}

// spawnGraph splices a prebuilt graph into the subflow's spawn slot so it
// executes as this subflow's child graph. It may be called at most once
// per Subflow and must not be mixed with Emplace calls on the same
// subflow.
func (sf *Subflow) spawnGraph(g *graph) {
	if sf.g.len() > 0 {
		panic("core: spawnGraph on a non-empty subflow")
	}
	sf.g.nodes = append(sf.g.nodes, g.nodes...)
}

package celllib

import (
	"math"
	"strings"
	"testing"
)

func TestLibertyRoundTrip(t *testing.T) {
	lib := NewNanGate45Like()
	var sb strings.Builder
	if err := lib.WriteLiberty(&sb, "gotaskflow45"); err != nil {
		t.Fatal(err)
	}
	got, err := ParseLiberty(strings.NewReader(sb.String()))
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Cells) != len(lib.Cells) {
		t.Fatalf("round-trip has %d cells, want %d", len(got.Cells), len(lib.Cells))
	}
	for name, want := range lib.Cells {
		c := got.Cell(name)
		if c == nil {
			t.Fatalf("cell %s missing after round-trip", name)
		}
		if c.Family != want.Family || c.Drive != want.Drive {
			t.Fatalf("%s family/drive = %s/%d, want %s/%d", name, c.Family, c.Drive, want.Family, want.Drive)
		}
		if c.NumInputs != want.NumInputs || c.Sequential != want.Sequential || c.Unate != want.Unate {
			t.Fatalf("%s shape mismatch", name)
		}
		if math.Abs(c.InputCap-want.InputCap) > 1e-12 {
			t.Fatalf("%s input cap %v, want %v", name, c.InputCap, want.InputCap)
		}
		for k := range want.Arcs {
			for _, pair := range [][2]*Table{
				{c.Arcs[k].DelayRise, want.Arcs[k].DelayRise},
				{c.Arcs[k].DelayFall, want.Arcs[k].DelayFall},
				{c.Arcs[k].OutSlewRise, want.Arcs[k].OutSlewRise},
				{c.Arcs[k].OutSlewFall, want.Arcs[k].OutSlewFall},
			} {
				if !tablesEqual(pair[0], pair[1]) {
					t.Fatalf("%s arc %d table mismatch", name, k)
				}
			}
		}
	}
	// Family index must work after parsing.
	if len(got.Family("INV")) != 3 {
		t.Fatalf("INV family = %d variants", len(got.Family("INV")))
	}
	if got.Resize(got.Cell("INV_X1"), +1) != got.Cell("INV_X2") {
		t.Fatal("Resize broken after round-trip")
	}
}

func tablesEqual(a, b *Table) bool {
	if a == nil || b == nil {
		return false
	}
	if len(a.SlewIndex) != len(b.SlewIndex) || len(a.LoadIndex) != len(b.LoadIndex) {
		return false
	}
	for i := range a.SlewIndex {
		if a.SlewIndex[i] != b.SlewIndex[i] {
			return false
		}
	}
	for i := range a.LoadIndex {
		if a.LoadIndex[i] != b.LoadIndex[i] {
			return false
		}
	}
	for i := range a.Values {
		for j := range a.Values[i] {
			if a.Values[i][j] != b.Values[i][j] {
				return false
			}
		}
	}
	return true
}

func TestLibertyOutputLooksLikeLiberty(t *testing.T) {
	lib := NewNanGate45Like()
	var sb strings.Builder
	if err := lib.WriteLiberty(&sb, "lib45"); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		"library (lib45) {",
		"cell (INV_X1) {",
		"timing_sense : negative_unate;",
		"related_pin : \"A\";",
		"cell_rise (delay_template) {",
		"index_1 (",
		"ff (IQ,IQN)",
		"direction : input;",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("liberty output missing %q", want)
		}
	}
}

func TestParseLibertyErrors(t *testing.T) {
	cases := map[string]string{
		"notLibrary":  `cell (X) { }`,
		"eofInGroup":  `library (x) { cell (A) {`,
		"badTable":    `library (x) { cell (A_X1) { pin (A) { direction : input; capacitance : 1; } pin (Y) { direction : output; timing () { related_pin : "A"; timing_sense : positive_unate; cell_rise (t) { index_1 ("1,2"); index_2 ("1,2"); values ("1,2"); } } } } }`,
		"unknownPin":  `library (x) { cell (A_X1) { pin (A) { direction : input; capacitance : 1; } pin (Y) { direction : output; timing () { related_pin : "Z"; } } } }`,
		"badFloat":    `library (x) { cell (A_X1) { pin (A) { direction : input; capacitance : 1; } pin (Y) { direction : output; timing () { related_pin : "A"; cell_rise (t) { index_1 ("abc"); index_2 ("1"); values ("1"); } } } } }`,
		"missingArcs": `library (x) { cell (A_X1) { pin (A) { direction : input; capacitance : 1; } pin (Y) { direction : output; } } }`,
	}
	for name, src := range cases {
		if _, err := ParseLiberty(strings.NewReader(src)); err == nil {
			t.Fatalf("%s: parse accepted invalid input", name)
		}
	}
}

func TestParseLibertyTolerant(t *testing.T) {
	// Unknown attributes and comments must be skipped.
	src := `// a comment
library (tiny) {
  time_unit : "1ps";
  operating_conditions (typ) { process : 1; }
  cell (BUF_X1) {
    area : 1.5;
    pin (A) { direction : input; capacitance : 2.0; }
    pin (Y) {
      direction : output;
      max_capacitance : 50;
      timing () {
        related_pin : "A";
        timing_sense : positive_unate;
        cell_rise (t) { index_1 ("1,2"); index_2 ("1,2"); values ("1,2", "3,4"); }
        cell_fall (t) { index_1 ("1,2"); index_2 ("1,2"); values ("1,2", "3,4"); }
        rise_transition (t) { index_1 ("1,2"); index_2 ("1,2"); values ("1,2", "3,4"); }
        fall_transition (t) { index_1 ("1,2"); index_2 ("1,2"); values ("1,2", "3,4"); }
      }
    }
  }
}`
	lib, err := ParseLiberty(strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	c := lib.Cell("BUF_X1")
	if c == nil || c.NumInputs != 1 || c.InputCap != 2.0 || c.Unate != PositiveUnate {
		t.Fatalf("parsed cell wrong: %+v", c)
	}
	if got := c.Arcs[0].DelayRise.Lookup(1, 1); got != 1 {
		t.Fatalf("table corner = %v", got)
	}
}

package celllib

import (
	"testing"
	"testing/quick"
)

func TestLibraryContents(t *testing.T) {
	lib := NewNanGate45Like()
	for _, name := range []string{"INV_X1", "INV_X2", "INV_X4", "NAND2_X1", "DFF_X1", "XOR2_X4"} {
		if lib.Cell(name) == nil {
			t.Fatalf("missing cell %s", name)
		}
	}
	if lib.Cell("NAND3_X1") != nil {
		t.Fatal("unexpected cell")
	}
	if got := len(lib.Family("INV")); got != 3 {
		t.Fatalf("INV family has %d variants, want 3", got)
	}
	inv := lib.Cell("INV_X1")
	if inv.NumInputs != 1 || len(inv.Arcs) != 1 {
		t.Fatal("INV_X1 malformed")
	}
	nand := lib.Cell("NAND2_X1")
	if nand.NumInputs != 2 || len(nand.Arcs) != 2 {
		t.Fatal("NAND2_X1 malformed")
	}
}

func TestLookupAtGridPoints(t *testing.T) {
	tab := genTable(10, 2, 0.5, 0.01)
	for i, s := range tab.SlewIndex {
		for j, l := range tab.LoadIndex {
			want := tab.Values[i][j]
			if got := tab.Lookup(s, l); !close(got, want) {
				t.Fatalf("Lookup(%v,%v) = %v, want %v", s, l, got, want)
			}
		}
	}
}

func close(a, b float64) bool {
	d := a - b
	if d < 0 {
		d = -d
	}
	return d < 1e-9
}

func TestLookupInterpolatesLinearModel(t *testing.T) {
	// The generating model is bilinear, so interpolation must reproduce it
	// exactly inside the grid.
	a, b, c, e := 7.0, 1.5, 0.3, 0.02
	tab := genTable(a, b, c, e)
	f := func(sRaw, lRaw uint16) bool {
		s := 5 + float64(sRaw%315)  // inside [5, 320)
		l := 0.5 + float64(lRaw%31) // inside [0.5, 31.5)
		want := a + b*l + c*s + e*l*s
		return close(tab.Lookup(s, l), want)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestLookupClampsOutsideGrid(t *testing.T) {
	tab := genTable(10, 2, 0.5, 0.01)
	lo := tab.Lookup(0, 0)
	if !close(lo, tab.Values[0][0]) {
		t.Fatalf("below-range lookup = %v, want corner %v", lo, tab.Values[0][0])
	}
	hi := tab.Lookup(1e6, 1e6)
	n, m := len(tab.SlewIndex)-1, len(tab.LoadIndex)-1
	if !close(hi, tab.Values[n][m]) {
		t.Fatalf("above-range lookup = %v, want corner %v", hi, tab.Values[n][m])
	}
}

func TestTablesMonotone(t *testing.T) {
	lib := NewNanGate45Like()
	for name, c := range lib.Cells {
		for k, arc := range c.Arcs {
			for _, tab := range []*Table{arc.DelayRise, arc.DelayFall, arc.OutSlewRise, arc.OutSlewFall} {
				for i := range tab.Values {
					for j := range tab.Values[i] {
						if tab.Values[i][j] <= 0 {
							t.Fatalf("%s arc %d: non-positive entry", name, k)
						}
						if j > 0 && tab.Values[i][j] < tab.Values[i][j-1] {
							t.Fatalf("%s arc %d: not monotone in load", name, k)
						}
						if i > 0 && tab.Values[i][j] < tab.Values[i-1][j] {
							t.Fatalf("%s arc %d: not monotone in slew", name, k)
						}
					}
				}
			}
		}
	}
}

func TestDriveStrengthTradeoff(t *testing.T) {
	lib := NewNanGate45Like()
	x1, x4 := lib.Cell("INV_X1"), lib.Cell("INV_X4")
	// Higher drive: larger input cap, lower delay under heavy load.
	if x4.InputCap <= x1.InputCap {
		t.Fatal("X4 input cap should exceed X1")
	}
	heavyLoad := 30.0
	if x4.Arcs[0].DelayRise.Lookup(20, heavyLoad) >= x1.Arcs[0].DelayRise.Lookup(20, heavyLoad) {
		t.Fatal("X4 should be faster than X1 under heavy load")
	}
}

func TestTransitionAccessors(t *testing.T) {
	lib := NewNanGate45Like()
	arc := &lib.Cell("INV_X1").Arcs[0]
	if arc.Delay(Rise) != arc.DelayRise || arc.Delay(Fall) != arc.DelayFall {
		t.Fatal("Arc.Delay accessor wrong")
	}
	if arc.OutSlew(Rise) != arc.OutSlewRise || arc.OutSlew(Fall) != arc.OutSlewFall {
		t.Fatal("Arc.OutSlew accessor wrong")
	}
}

func TestFallFasterThanRise(t *testing.T) {
	// NMOS pulldowns beat PMOS pullups: falling-edge tables must be
	// uniformly faster.
	lib := NewNanGate45Like()
	for name, c := range lib.Cells {
		for k := range c.Arcs {
			arc := &c.Arcs[k]
			if arc.DelayFall.Lookup(20, 4) >= arc.DelayRise.Lookup(20, 4) {
				t.Fatalf("%s arc %d: fall delay not below rise delay", name, k)
			}
		}
	}
}

func TestUnateness(t *testing.T) {
	lib := NewNanGate45Like()
	for family, want := range map[string]Unateness{
		"INV": NegativeUnate, "NAND2": NegativeUnate, "NOR2": NegativeUnate,
		"AOI21": NegativeUnate, "BUF": PositiveUnate, "AND2": PositiveUnate,
		"OR2": PositiveUnate, "XOR2": NonUnate, "DFF": PositiveUnate,
	} {
		for _, c := range lib.Family(family) {
			if c.Unate != want {
				t.Fatalf("%s unateness = %d, want %d", c.Name, c.Unate, want)
			}
		}
	}
}

func TestResize(t *testing.T) {
	lib := NewNanGate45Like()
	x1 := lib.Cell("NAND2_X1")
	x2 := lib.Resize(x1, +1)
	if x2.Drive != 2 || x2.Family != "NAND2" {
		t.Fatalf("Resize up = %s", x2.Name)
	}
	x4 := lib.Resize(x2, +1)
	if x4.Drive != 4 {
		t.Fatalf("Resize up twice = %s", x4.Name)
	}
	if lib.Resize(x4, +1) != x4 {
		t.Fatal("Resize beyond X4 should clamp")
	}
	if lib.Resize(x1, -1) != x1 {
		t.Fatal("Resize below X1 should clamp")
	}
	if lib.Resize(x4, -1) != x2 {
		t.Fatal("Resize down broken")
	}
}

func TestCombinationalSelection(t *testing.T) {
	lib := NewNanGate45Like()
	one := lib.Combinational(1)
	two := lib.Combinational(2)
	if len(one) != 6 { // INV, BUF × 3 drives
		t.Fatalf("Combinational(1) = %d cells", len(one))
	}
	if len(two) != 18 { // NAND2, NOR2, AND2, OR2, XOR2, AOI21 × 3 drives
		t.Fatalf("Combinational(2) = %d cells", len(two))
	}
	for _, c := range append(one, two...) {
		if c.Sequential {
			t.Fatalf("Combinational returned sequential cell %s", c.Name)
		}
	}
	if len(lib.DFF()) != 3 {
		t.Fatalf("DFF variants = %d", len(lib.DFF()))
	}
}

func TestArcSkewAcrossPins(t *testing.T) {
	lib := NewNanGate45Like()
	nand := lib.Cell("NAND2_X1")
	d0 := nand.Arcs[0].DelayRise.Lookup(20, 4)
	d1 := nand.Arcs[1].DelayRise.Lookup(20, 4)
	if d1 <= d0 {
		t.Fatal("second pin should be marginally slower")
	}
}

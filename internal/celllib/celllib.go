// Package celllib provides a synthetic standard-cell timing library in the
// style of the NanGate 45nm library the Cpp-Taskflow paper's OpenTimer
// experiments use (Section IV-B). Since the real Liberty files are not
// redistributable here, the library is generated formulaically: each cell
// carries NLDM-style two-dimensional lookup tables (input slew × output
// load -> delay / output slew) whose values follow the standard linear
// delay model d = a + b·load + c·slew + e·load·slew with
// drive-strength-dependent coefficients in 45nm-like magnitudes
// (picoseconds, femtofarads). The substitution preserves what the
// experiments measure: lookup-table interpolation cost per propagation task
// and realistic relative deltas under gate resizing.
package celllib

import "fmt"

// Table is a two-dimensional NLDM lookup table indexed by input slew (ps)
// and output load (fF).
type Table struct {
	SlewIndex []float64 // ascending, ps
	LoadIndex []float64 // ascending, fF
	Values    [][]float64
}

// Lookup bilinearly interpolates the table at (slew, load), clamping to the
// table boundary like standard STA engines do outside the characterized
// range.
func (t *Table) Lookup(slew, load float64) float64 {
	si, sf := locate(t.SlewIndex, slew)
	li, lf := locate(t.LoadIndex, load)
	v00 := t.Values[si][li]
	v01 := t.Values[si][li+1]
	v10 := t.Values[si+1][li]
	v11 := t.Values[si+1][li+1]
	return v00*(1-sf)*(1-lf) + v01*(1-sf)*lf + v10*sf*(1-lf) + v11*sf*lf
}

// locate returns the lower index and fractional position of x within the
// ascending axis, clamped to [0, 1] at the boundaries.
func locate(axis []float64, x float64) (int, float64) {
	n := len(axis)
	if x <= axis[0] {
		return 0, 0
	}
	if x >= axis[n-1] {
		return n - 2, 1
	}
	lo := 0
	for lo+1 < n-1 && axis[lo+1] <= x {
		lo++
	}
	frac := (x - axis[lo]) / (axis[lo+1] - axis[lo])
	return lo, frac
}

// Unateness describes how an input transition maps to the output
// transition of a timing arc, as in Liberty timing_sense.
type Unateness uint8

const (
	// PositiveUnate: a rising input produces a rising output (BUF, AND).
	PositiveUnate Unateness = iota
	// NegativeUnate: a rising input produces a falling output (INV, NAND).
	NegativeUnate
	// NonUnate: either input transition can produce either output
	// transition (XOR).
	NonUnate
)

// Transition selects the signal edge of a timing quantity.
type Transition uint8

const (
	// Rise selects the rising edge.
	Rise Transition = 0
	// Fall selects the falling edge.
	Fall Transition = 1
)

// NumTransitions is the number of signal edges analyzed.
const NumTransitions = 2

// Arc is a timing arc from one input pin to the cell output, with
// separate NLDM tables per output transition as in real Liberty cells.
type Arc struct {
	DelayRise   *Table // ps, output rising
	DelayFall   *Table // ps, output falling
	OutSlewRise *Table // ps
	OutSlewFall *Table // ps
}

// Delay returns the delay table for the given output transition.
func (a *Arc) Delay(tr Transition) *Table {
	if tr == Rise {
		return a.DelayRise
	}
	return a.DelayFall
}

// OutSlew returns the output-slew table for the given output transition.
func (a *Arc) OutSlew(tr Transition) *Table {
	if tr == Rise {
		return a.OutSlewRise
	}
	return a.OutSlewFall
}

// Cell is one library cell: n-input, single-output combinational logic or
// a sequential element.
type Cell struct {
	Name       string
	Family     string // e.g. "INV", "NAND2"; resize swaps within a family
	Drive      int    // drive strength (X1, X2, X4)
	NumInputs  int
	InputCap   float64 // fF per input pin
	Arcs       []Arc   // one per input pin
	Unate      Unateness
	Sequential bool // DFF family
}

// Library is a collection of cells indexed by name and by family/drive.
type Library struct {
	Cells    map[string]*Cell
	families map[string][]*Cell // family -> cells sorted by drive
}

// standard NLDM axes (7x7), 45nm-like ranges.
var (
	slewAxis = []float64{5, 10, 20, 40, 80, 160, 320} // ps
	loadAxis = []float64{0.5, 1, 2, 4, 8, 16, 32}     // fF
)

// genTable builds a monotone table from the linear delay model.
func genTable(a, b, c, e float64) *Table {
	t := &Table{SlewIndex: slewAxis, LoadIndex: loadAxis}
	t.Values = make([][]float64, len(slewAxis))
	for i, s := range slewAxis {
		t.Values[i] = make([]float64, len(loadAxis))
		for j, l := range loadAxis {
			t.Values[i][j] = a + b*l + c*s + e*l*s
		}
	}
	return t
}

type proto struct {
	family    string
	numInputs int
	baseDelay float64 // intrinsic delay of the X1 variant, ps
	baseCap   float64 // input cap of the X1 variant, fF
	unate     Unateness
	seq       bool
}

var prototypes = []proto{
	{"INV", 1, 8, 1.0, NegativeUnate, false},
	{"BUF", 1, 14, 1.1, PositiveUnate, false},
	{"NAND2", 2, 12, 1.2, NegativeUnate, false},
	{"NOR2", 2, 14, 1.3, NegativeUnate, false},
	{"AND2", 2, 18, 1.2, PositiveUnate, false},
	{"OR2", 2, 19, 1.3, PositiveUnate, false},
	{"XOR2", 2, 26, 1.8, NonUnate, false},
	{"AOI21", 2, 16, 1.4, NegativeUnate, false},
	{"DFF", 1, 30, 1.5, PositiveUnate, true},
}

// fallFactor skews falling-edge tables against rising ones: NMOS pulldown
// networks are a bit faster than PMOS pullups in typical libraries.
const fallFactor = 0.92

// NewNanGate45Like builds the synthetic library: every prototype in drive
// strengths X1, X2 and X4. Higher drive means lower delay sensitivity to
// load but higher input capacitance, as in real libraries — which is what
// gives gate resizing its timing effect.
func NewNanGate45Like() *Library {
	lib := &Library{Cells: map[string]*Cell{}, families: map[string][]*Cell{}}
	for _, p := range prototypes {
		for _, drive := range []int{1, 2, 4} {
			d := float64(drive)
			cell := &Cell{
				Name:       fmt.Sprintf("%s_X%d", p.family, drive),
				Family:     p.family,
				Drive:      drive,
				NumInputs:  p.numInputs,
				InputCap:   p.baseCap * (1 + 0.6*(d-1)),
				Unate:      p.unate,
				Sequential: p.seq,
			}
			for k := 0; k < p.numInputs; k++ {
				// Later pins are marginally slower, like real cells.
				skew := 1 + 0.07*float64(k)
				f := fallFactor
				cell.Arcs = append(cell.Arcs, Arc{
					DelayRise:   genTable(p.baseDelay*skew, 3.2/d, 0.10, 0.012/d),
					DelayFall:   genTable(p.baseDelay*skew*f, 3.2*f/d, 0.10*f, 0.012/d),
					OutSlewRise: genTable(p.baseDelay*0.6*skew, 2.4/d, 0.16, 0.010/d),
					OutSlewFall: genTable(p.baseDelay*0.6*skew*f, 2.4*f/d, 0.16*f, 0.010/d),
				})
			}
			lib.Cells[cell.Name] = cell
			lib.families[p.family] = append(lib.families[p.family], cell)
		}
	}
	return lib
}

// Cell returns the named cell or nil.
func (l *Library) Cell(name string) *Cell { return l.Cells[name] }

// Family returns the drive variants of a family in ascending drive order.
func (l *Library) Family(name string) []*Cell { return l.families[name] }

// Resize returns the variant of c's family with the next drive strength in
// the given direction (+1 up, -1 down), or c itself at the range ends.
func (l *Library) Resize(c *Cell, dir int) *Cell {
	variants := l.families[c.Family]
	for i, v := range variants {
		if v == c {
			j := i + dir
			if j < 0 {
				j = 0
			}
			if j >= len(variants) {
				j = len(variants) - 1
			}
			return variants[j]
		}
	}
	return c
}

// Combinational returns all non-sequential cells with the given number of
// inputs, in deterministic order.
func (l *Library) Combinational(numInputs int) []*Cell {
	var out []*Cell
	for _, p := range prototypes {
		if p.seq || p.numInputs != numInputs {
			continue
		}
		out = append(out, l.families[p.family]...)
	}
	return out
}

// DFF returns the flip-flop family variants.
func (l *Library) DFF() []*Cell { return l.families["DFF"] }

package celllib

// Liberty-format serialization: real timing analyzers (including the
// OpenTimer of the paper's Section IV-B) exchange cell libraries as
// Synopsys Liberty (.lib) files. This file implements the subset needed to
// round-trip this package's libraries — library/cell/pin/timing groups,
// NLDM lookup tables with index_1/index_2/values, timing_sense, pin
// capacitance — so a user with a real characterized library can substitute
// it, and our synthetic library can be inspected with standard tooling.

import (
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
)

// WriteLiberty serializes the library in Liberty format.
func (l *Library) WriteLiberty(w io.Writer, name string) error {
	var sb strings.Builder
	fmt.Fprintf(&sb, "library (%s) {\n", name)
	sb.WriteString("  time_unit : \"1ps\";\n")
	sb.WriteString("  capacitive_load_unit (1,ff);\n")

	names := make([]string, 0, len(l.Cells))
	for n := range l.Cells {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, cn := range names {
		writeCell(&sb, l.Cells[cn])
	}
	sb.WriteString("}\n")
	_, err := io.WriteString(w, sb.String())
	return err
}

func writeCell(sb *strings.Builder, c *Cell) {
	fmt.Fprintf(sb, "  cell (%s) {\n", c.Name)
	if c.Sequential {
		sb.WriteString("    ff (IQ,IQN) { clocked_on : \"CK\"; next_state : \"D\"; }\n")
	}
	for k := 0; k < c.NumInputs; k++ {
		fmt.Fprintf(sb, "    pin (%s) {\n", inputPinName(c, k))
		sb.WriteString("      direction : input;\n")
		fmt.Fprintf(sb, "      capacitance : %s;\n", ftoa(c.InputCap))
		sb.WriteString("    }\n")
	}
	fmt.Fprintf(sb, "    pin (%s) {\n", outputPinName(c))
	sb.WriteString("      direction : output;\n")
	for k := 0; k < c.NumInputs; k++ {
		arc := &c.Arcs[k]
		sb.WriteString("      timing () {\n")
		fmt.Fprintf(sb, "        related_pin : \"%s\";\n", inputPinName(c, k))
		fmt.Fprintf(sb, "        timing_sense : %s;\n", senseName(c.Unate))
		writeTable(sb, "cell_rise", arc.DelayRise)
		writeTable(sb, "cell_fall", arc.DelayFall)
		writeTable(sb, "rise_transition", arc.OutSlewRise)
		writeTable(sb, "fall_transition", arc.OutSlewFall)
		sb.WriteString("      }\n")
	}
	sb.WriteString("    }\n")
	sb.WriteString("  }\n")
}

func writeTable(sb *strings.Builder, kind string, t *Table) {
	fmt.Fprintf(sb, "        %s (delay_template) {\n", kind)
	fmt.Fprintf(sb, "          index_1 (\"%s\");\n", joinFloats(t.SlewIndex))
	fmt.Fprintf(sb, "          index_2 (\"%s\");\n", joinFloats(t.LoadIndex))
	sb.WriteString("          values (")
	for i, row := range t.Values {
		if i > 0 {
			sb.WriteString(", \\\n                  ")
		}
		fmt.Fprintf(sb, "\"%s\"", joinFloats(row))
	}
	sb.WriteString(");\n        }\n")
}

// inputPinName follows the NanGate convention: A, B for combinational
// inputs; D for the flip-flop data pin.
func inputPinName(c *Cell, k int) string {
	if c.Sequential {
		return "D"
	}
	return string(rune('A' + k))
}

// outputPinName is Y for combinational cells and Q for flip-flops.
func outputPinName(c *Cell) string {
	if c.Sequential {
		return "Q"
	}
	return "Y"
}

func senseName(u Unateness) string {
	switch u {
	case PositiveUnate:
		return "positive_unate"
	case NegativeUnate:
		return "negative_unate"
	}
	return "non_unate"
}

func ftoa(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }

func joinFloats(vs []float64) string {
	parts := make([]string, len(vs))
	for i, v := range vs {
		parts[i] = ftoa(v)
	}
	return strings.Join(parts, ",")
}

// ---- Parsing ----

// group is a node of the generic Liberty syntax tree:
// name (args) { attributes and subgroups }.
type group struct {
	name  string
	args  []string
	attrs map[string][]string // simple attributes: name : value ;
	subs  []*group
}

// ParseLiberty reads a Liberty subset back into a Library. It understands
// the structure WriteLiberty emits (and tolerates unknown attributes and
// groups, skipping them).
func ParseLiberty(r io.Reader) (*Library, error) {
	src, err := io.ReadAll(r)
	if err != nil {
		return nil, err
	}
	p := &libParser{src: string(src)}
	root, err := p.parseGroup()
	if err != nil {
		return nil, err
	}
	if root.name != "library" {
		return nil, fmt.Errorf("liberty: top group is %q, want library", root.name)
	}
	lib := &Library{Cells: map[string]*Cell{}, families: map[string][]*Cell{}}
	for _, g := range root.subs {
		if g.name != "cell" {
			continue
		}
		cell, err := parseCell(g)
		if err != nil {
			return nil, err
		}
		lib.Cells[cell.Name] = cell
		lib.families[cell.Family] = append(lib.families[cell.Family], cell)
	}
	// Keep family variants in ascending drive order, as the generator does.
	for f := range lib.families {
		sort.Slice(lib.families[f], func(i, j int) bool {
			return lib.families[f][i].Drive < lib.families[f][j].Drive
		})
	}
	return lib, nil
}

func parseCell(g *group) (*Cell, error) {
	if len(g.args) != 1 {
		return nil, fmt.Errorf("liberty: cell group needs one name argument")
	}
	c := &Cell{Name: g.args[0]}
	// Family/drive from the NAME_Xn convention; tolerate other names.
	if i := strings.LastIndex(c.Name, "_X"); i > 0 {
		c.Family = c.Name[:i]
		if d, err := strconv.Atoi(c.Name[i+2:]); err == nil {
			c.Drive = d
		}
	} else {
		c.Family = c.Name
		c.Drive = 1
	}
	type inPin struct {
		name string
		cap  float64
	}
	var inputs []inPin
	var timings []*group
	for _, sub := range g.subs {
		switch sub.name {
		case "ff":
			c.Sequential = true
		case "pin":
			dir := attr1(sub, "direction")
			if dir == "input" {
				capv, _ := strconv.ParseFloat(attr1(sub, "capacitance"), 64)
				inputs = append(inputs, inPin{name: sub.args[0], cap: capv})
			} else if dir == "output" {
				for _, t := range sub.subs {
					if t.name == "timing" {
						timings = append(timings, t)
					}
				}
			}
		}
	}
	sort.Slice(inputs, func(i, j int) bool { return inputs[i].name < inputs[j].name })
	c.NumInputs = len(inputs)
	if len(inputs) > 0 {
		c.InputCap = inputs[0].cap
	}
	c.Arcs = make([]Arc, c.NumInputs)
	pinIndex := map[string]int{}
	for i, p := range inputs {
		pinIndex[p.name] = i
	}
	for _, tg := range timings {
		rel := strings.Trim(attr1(tg, "related_pin"), `"`)
		k, ok := pinIndex[rel]
		if !ok {
			return nil, fmt.Errorf("liberty: cell %s: timing for unknown pin %q", c.Name, rel)
		}
		switch strings.Trim(attr1(tg, "timing_sense"), `"`) {
		case "positive_unate":
			c.Unate = PositiveUnate
		case "negative_unate":
			c.Unate = NegativeUnate
		case "non_unate":
			c.Unate = NonUnate
		}
		for _, tb := range tg.subs {
			tab, err := parseTable(tb)
			if err != nil {
				return nil, fmt.Errorf("liberty: cell %s: %w", c.Name, err)
			}
			switch tb.name {
			case "cell_rise":
				c.Arcs[k].DelayRise = tab
			case "cell_fall":
				c.Arcs[k].DelayFall = tab
			case "rise_transition":
				c.Arcs[k].OutSlewRise = tab
			case "fall_transition":
				c.Arcs[k].OutSlewFall = tab
			}
		}
	}
	for k := range c.Arcs {
		a := &c.Arcs[k]
		if a.DelayRise == nil || a.DelayFall == nil || a.OutSlewRise == nil || a.OutSlewFall == nil {
			return nil, fmt.Errorf("liberty: cell %s: arc %d missing tables", c.Name, k)
		}
	}
	return c, nil
}

func parseTable(g *group) (*Table, error) {
	t := &Table{}
	var err error
	if t.SlewIndex, err = parseFloatList(attr1(g, "index_1")); err != nil {
		return nil, err
	}
	if t.LoadIndex, err = parseFloatList(attr1(g, "index_2")); err != nil {
		return nil, err
	}
	for _, row := range g.attrs["values"] {
		vals, err := parseFloatList(row)
		if err != nil {
			return nil, err
		}
		t.Values = append(t.Values, vals)
	}
	if len(t.Values) != len(t.SlewIndex) {
		return nil, fmt.Errorf("table has %d rows for %d slew indices", len(t.Values), len(t.SlewIndex))
	}
	for _, row := range t.Values {
		if len(row) != len(t.LoadIndex) {
			return nil, fmt.Errorf("table row width %d for %d load indices", len(row), len(t.LoadIndex))
		}
	}
	return t, nil
}

func parseFloatList(s string) ([]float64, error) {
	s = strings.Trim(s, `"`)
	parts := strings.Split(s, ",")
	out := make([]float64, 0, len(parts))
	for _, p := range parts {
		p = strings.TrimSpace(p)
		if p == "" {
			continue
		}
		v, err := strconv.ParseFloat(p, 64)
		if err != nil {
			return nil, fmt.Errorf("bad number %q", p)
		}
		out = append(out, v)
	}
	return out, nil
}

func attr1(g *group, name string) string {
	if vs := g.attrs[name]; len(vs) > 0 {
		return vs[0]
	}
	return ""
}

// libParser is a recursive-descent parser for the Liberty subset.
type libParser struct {
	src string
	pos int
}

func (p *libParser) parseGroup() (*group, error) {
	name, err := p.ident()
	if err != nil {
		return nil, err
	}
	args, err := p.argList()
	if err != nil {
		return nil, err
	}
	if err := p.expect('{'); err != nil {
		return nil, err
	}
	g := &group{name: name, args: args, attrs: map[string][]string{}}
	for {
		p.skipSpace()
		if p.pos >= len(p.src) {
			return nil, fmt.Errorf("liberty: unexpected EOF in group %s", name)
		}
		if p.src[p.pos] == '}' {
			p.pos++
			return g, nil
		}
		ident, err := p.ident()
		if err != nil {
			return nil, err
		}
		p.skipSpace()
		switch {
		case p.pos < len(p.src) && p.src[p.pos] == ':':
			p.pos++
			val, err := p.attrValue()
			if err != nil {
				return nil, err
			}
			g.attrs[ident] = append(g.attrs[ident], val)
		case p.pos < len(p.src) && p.src[p.pos] == '(':
			// Either a subgroup or a parenthesized attribute
			// (capacitive_load_unit, index_1, values...).
			args, err := p.argList()
			if err != nil {
				return nil, err
			}
			p.skipSpace()
			if p.pos < len(p.src) && p.src[p.pos] == '{' {
				p.pos++
				sub := &group{name: ident, args: args, attrs: map[string][]string{}}
				if err := p.fillGroup(sub); err != nil {
					return nil, err
				}
				g.subs = append(g.subs, sub)
			} else {
				p.accept(';')
				g.attrs[ident] = append(g.attrs[ident], args...)
			}
		default:
			return nil, fmt.Errorf("liberty: unexpected token after %q at %d", ident, p.pos)
		}
	}
}

// fillGroup parses the body of a group whose header was already consumed.
func (p *libParser) fillGroup(g *group) error {
	for {
		p.skipSpace()
		if p.pos >= len(p.src) {
			return fmt.Errorf("liberty: unexpected EOF in group %s", g.name)
		}
		if p.src[p.pos] == '}' {
			p.pos++
			return nil
		}
		ident, err := p.ident()
		if err != nil {
			return err
		}
		p.skipSpace()
		switch {
		case p.pos < len(p.src) && p.src[p.pos] == ':':
			p.pos++
			val, err := p.attrValue()
			if err != nil {
				return err
			}
			g.attrs[ident] = append(g.attrs[ident], val)
		case p.pos < len(p.src) && p.src[p.pos] == '(':
			args, err := p.argList()
			if err != nil {
				return err
			}
			p.skipSpace()
			if p.pos < len(p.src) && p.src[p.pos] == '{' {
				p.pos++
				sub := &group{name: ident, args: args, attrs: map[string][]string{}}
				if err := p.fillGroup(sub); err != nil {
					return err
				}
				g.subs = append(g.subs, sub)
			} else {
				p.accept(';')
				g.attrs[ident] = append(g.attrs[ident], args...)
			}
		default:
			return fmt.Errorf("liberty: unexpected token after %q at %d", ident, p.pos)
		}
	}
}

func (p *libParser) skipSpace() {
	for p.pos < len(p.src) {
		c := p.src[p.pos]
		switch {
		case c == ' ' || c == '\t' || c == '\n' || c == '\r' || c == '\\':
			p.pos++
		case c == '/' && p.pos+1 < len(p.src) && p.src[p.pos+1] == '/':
			for p.pos < len(p.src) && p.src[p.pos] != '\n' {
				p.pos++
			}
		default:
			return
		}
	}
}

func (p *libParser) ident() (string, error) {
	p.skipSpace()
	start := p.pos
	for p.pos < len(p.src) && isIdentChar(p.src[p.pos]) {
		p.pos++
	}
	if p.pos == start {
		return "", fmt.Errorf("liberty: expected identifier at %d", p.pos)
	}
	return p.src[start:p.pos], nil
}

func isIdentChar(c byte) bool {
	return c == '_' || c == '.' || c == '-' ||
		(c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || (c >= '0' && c <= '9')
}

// argList parses "( a, b, "c,d" )" into its comma-separated arguments.
func (p *libParser) argList() ([]string, error) {
	if err := p.expect('('); err != nil {
		return nil, err
	}
	var args []string
	var cur strings.Builder
	flush := func() {
		s := strings.TrimSpace(cur.String())
		if s != "" {
			args = append(args, s)
		}
		cur.Reset()
	}
	for {
		p.skipSpace()
		if p.pos >= len(p.src) {
			return nil, fmt.Errorf("liberty: unexpected EOF in argument list")
		}
		c := p.src[p.pos]
		switch c {
		case ')':
			p.pos++
			flush()
			return args, nil
		case ',':
			p.pos++
			flush()
		case '"':
			s, err := p.quoted()
			if err != nil {
				return nil, err
			}
			cur.WriteString(s)
		default:
			cur.WriteByte(c)
			p.pos++
		}
	}
}

func (p *libParser) quoted() (string, error) {
	if p.src[p.pos] != '"' {
		return "", fmt.Errorf("liberty: expected quote at %d", p.pos)
	}
	p.pos++
	start := p.pos
	for p.pos < len(p.src) && p.src[p.pos] != '"' {
		p.pos++
	}
	if p.pos >= len(p.src) {
		return "", fmt.Errorf("liberty: unterminated string")
	}
	s := p.src[start:p.pos]
	p.pos++
	return s, nil
}

// attrValue parses everything up to the terminating semicolon.
func (p *libParser) attrValue() (string, error) {
	p.skipSpace()
	var sb strings.Builder
	for {
		if p.pos >= len(p.src) {
			return "", fmt.Errorf("liberty: unexpected EOF in attribute value")
		}
		c := p.src[p.pos]
		if c == ';' {
			p.pos++
			return strings.TrimSpace(sb.String()), nil
		}
		if c == '"' {
			s, err := p.quoted()
			if err != nil {
				return "", err
			}
			sb.WriteString(s)
			continue
		}
		if c == '\n' {
			return "", fmt.Errorf("liberty: unterminated attribute near %d", p.pos)
		}
		sb.WriteByte(c)
		p.pos++
	}
}

func (p *libParser) expect(c byte) error {
	p.skipSpace()
	if p.pos >= len(p.src) || p.src[p.pos] != c {
		return fmt.Errorf("liberty: expected %q at %d", string(c), p.pos)
	}
	p.pos++
	return nil
}

func (p *libParser) accept(c byte) {
	p.skipSpace()
	if p.pos < len(p.src) && p.src[p.pos] == c {
		p.pos++
	}
}

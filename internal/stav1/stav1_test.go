package stav1

import (
	"math/rand"
	"testing"

	"gotaskflow/internal/circuit"
	"gotaskflow/internal/sta"
)

const clock = 2000.0

func compare(t *testing.T, got, ref *sta.Timing, label string) {
	t.Helper()
	for v := range got.Ckt.Gates {
		for tr := 0; tr < 2; tr++ {
			if got.Arrival[tr][v] != ref.Arrival[tr][v] {
				t.Fatalf("%s: arrival[%d][%d] = %v, want %v", label, tr, v, got.Arrival[tr][v], ref.Arrival[tr][v])
			}
			if got.Slew[tr][v] != ref.Slew[tr][v] {
				t.Fatalf("%s: slew[%d][%d] mismatch", label, tr, v)
			}
			if got.Required[tr][v] != ref.Required[tr][v] {
				t.Fatalf("%s: required[%d][%d] = %v, want %v", label, tr, v, got.Required[tr][v], ref.Required[tr][v])
			}
			if got.Slack[tr][v] != ref.Slack[tr][v] {
				t.Fatalf("%s: slack[%d][%d] mismatch", label, tr, v)
			}
			if got.EarlyArrival[tr][v] != ref.EarlyArrival[tr][v] {
				t.Fatalf("%s: early arrival[%d][%d] mismatch", label, tr, v)
			}
			if got.EarlySlack[tr][v] != ref.EarlySlack[tr][v] {
				t.Fatalf("%s: early slack[%d][%d] mismatch", label, tr, v)
			}
		}
	}
}

func TestFullUpdateMatchesSequential(t *testing.T) {
	ckt := circuit.Generate("t", circuit.Config{Gates: 1500, Seed: 8})
	tm := sta.New(ckt, clock)
	a := New(tm, 4)
	defer a.Close()
	a.Run(tm.FullUpdate())

	ref := sta.New(ckt, clock)
	ref.FullUpdateSequential()
	compare(t, tm, ref, "full")
}

func TestIncrementalMatchesSequential(t *testing.T) {
	ckt := circuit.Generate("t", circuit.Config{Gates: 1000, Seed: 17})
	tm := sta.New(ckt, clock)
	a := New(tm, 4)
	defer a.Close()
	a.Run(tm.FullUpdate())

	rng := rand.New(rand.NewSource(5))
	for iter := 0; iter < 20; iter++ {
		seeds := tm.RandomModifier(rng)
		if len(seeds) == 0 {
			continue
		}
		a.Run(tm.PrepareUpdate(seeds))
		ref := sta.New(ckt, clock)
		ref.FullUpdateSequential()
		compare(t, tm, ref, "incremental")
	}
}

func TestSingleThread(t *testing.T) {
	ckt := circuit.Generate("t", circuit.Config{Gates: 400, Seed: 2})
	tm := sta.New(ckt, clock)
	a := New(tm, 1)
	defer a.Close()
	a.Run(tm.FullUpdate())
	ref := sta.New(ckt, clock)
	ref.FullUpdateSequential()
	compare(t, tm, ref, "1-thread")
	if a.NumThreads() != 1 {
		t.Fatalf("NumThreads = %d", a.NumThreads())
	}
}

func TestRepeatedRunsStable(t *testing.T) {
	// Running the same update twice must be idempotent (scratch state
	// fully unwound between runs).
	ckt := circuit.Figure8()
	tm := sta.New(ckt, clock)
	a := New(tm, 2)
	defer a.Close()
	a.Run(tm.FullUpdate())
	var first [2][]float64
	for tr := 0; tr < 2; tr++ {
		first[tr] = append([]float64(nil), tm.Slack[tr]...)
	}
	a.Run(tm.FullUpdate())
	for tr := 0; tr < 2; tr++ {
		for v := range first[tr] {
			if tm.Slack[tr][v] != first[tr][v] {
				t.Fatalf("slack[%d][%d] drifted on re-run", tr, v)
			}
		}
	}
}

// Package stav1 is the OpenTimer-v1-style timing driver of the
// Cpp-Taskflow paper (Sections II-D and IV-B): parallelization by
// levelization. Each timing update rebuilds a bucket-list of topological
// levels restricted to the affected cone and applies an OpenMP-style
// parallel-for with a full barrier level by level — first forward, then
// backward. The per-update bucket reconstruction and the barrier per level
// are exactly the structural costs the paper attributes to the v1 engine.
package stav1

import (
	"gotaskflow/internal/omp"
	"gotaskflow/internal/sta"
)

// Analyzer drives incremental timing updates with the levelized idiom.
type Analyzer struct {
	T    *sta.Timing
	team *omp.Parallel

	// level is an n-sized scratch of cone-local level numbers. Outside an
	// update every entry is -1; during an update, cone members carry their
	// level, which doubles as the membership test. The scratch is
	// allocated once, but the bucket lists are rebuilt every update —
	// v1's bucket-list reconstruction cost.
	level []int32
}

// New creates an analyzer running on its own OpenMP-style team of the
// given size.
func New(t *sta.Timing, threads int) *Analyzer {
	a := &Analyzer{
		T:     t,
		team:  omp.NewParallel(threads),
		level: make([]int32, t.Ckt.NumGates()),
	}
	for i := range a.level {
		a.level[i] = -1
	}
	return a
}

// Close stops the thread team.
func (a *Analyzer) Close() { a.team.Close() }

// NumThreads returns the team size.
func (a *Analyzer) NumThreads() int { return a.team.NumThreads() }

// minLevelGrain keeps per-task work reasonable when a level is wide.
const minLevelGrain = 16

func grain(n, threads int) int {
	c := (n + threads - 1) / threads
	if c < minLevelGrain {
		c = minLevelGrain
	}
	return c
}

// Run applies one timing update: levelize the forward cone and relax it
// level by level under a barrier, then do the same for the backward cone.
func (a *Analyzer) Run(u sta.Update) {
	t := a.T
	g := t.Ckt.Gates

	// ---- Forward phase. u.Fwd is in topological order: one ascending
	// sweep assigns cone-local levels (fanins are finalized before use).
	for _, v := range u.Fwd {
		a.level[v] = 0 // mark membership
	}
	buckets := make([][]int, 0, 16)
	for _, v := range u.Fwd {
		lvl := int32(0)
		for _, ui := range g[v].Fanin {
			if l := a.level[ui]; l >= 0 && l+1 > lvl {
				lvl = l + 1
			}
		}
		a.level[v] = lvl
		for int(lvl) >= len(buckets) {
			buckets = append(buckets, nil)
		}
		buckets[lvl] = append(buckets[lvl], v)
	}
	for _, bucket := range buckets {
		bucket := bucket
		a.team.ParallelFor(len(bucket), grain(len(bucket), a.team.NumThreads()), func(i int) {
			t.RelaxForward(bucket[i])
		})
	}
	for _, v := range u.Fwd {
		a.level[v] = -1
	}

	// ---- Backward phase. u.Bwd is in reverse topological order: one
	// descending sweep assigns levels along reversed cone edges (fanouts
	// are finalized before use).
	for _, v := range u.Bwd {
		a.level[v] = 0
	}
	buckets = buckets[:0]
	for _, v := range u.Bwd {
		lvl := int32(0)
		for _, wi := range g[v].Fanout {
			if l := a.level[wi]; l >= 0 && l+1 > lvl {
				lvl = l + 1
			}
		}
		a.level[v] = lvl
		for int(lvl) >= len(buckets) {
			buckets = append(buckets, nil)
		}
		buckets[lvl] = append(buckets[lvl], v)
	}
	for _, bucket := range buckets {
		bucket := bucket
		a.team.ParallelFor(len(bucket), grain(len(bucket), a.team.NumThreads()), func(i int) {
			t.RelaxBackward(bucket[i])
		})
	}
	for _, v := range u.Bwd {
		a.level[v] = -1
	}
}

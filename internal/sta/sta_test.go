package sta

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"gotaskflow/internal/celllib"
	"gotaskflow/internal/circuit"
)

const clock = 2000.0

func TestFullUpdateFigure8(t *testing.T) {
	ckt := circuit.Figure8()
	tm := New(ckt, clock)
	tm.FullUpdateSequential()
	for v, g := range ckt.Gates {
		for tr := 0; tr < ntr; tr++ {
			if math.IsNaN(tm.Arrival[tr][v]) || math.IsInf(tm.Arrival[tr][v], 0) {
				t.Fatalf("gate %s arrival[%d] = %v", g.Name, tr, tm.Arrival[tr][v])
			}
			if g.Kind == circuit.PI && tm.Arrival[tr][v] != 0 {
				t.Fatalf("PI %s arrival = %v", g.Name, tm.Arrival[tr][v])
			}
			if tm.Slew[tr][v] <= 0 {
				t.Fatalf("gate %s slew = %v", g.Name, tm.Slew[tr][v])
			}
			if got := tm.Required[tr][v] - tm.Arrival[tr][v]; math.Abs(got-tm.Slack[tr][v]) > 1e-12 {
				t.Fatalf("gate %s slack inconsistent", g.Name)
			}
		}
	}
	ws, at := tm.WorstSlack()
	if at < 0 || !ckt.Gates[at].IsEnd() {
		t.Fatalf("worst slack at non-endpoint %d", at)
	}
	if ws >= clock {
		t.Fatalf("worst slack %v >= clock period; no delay accumulated?", ws)
	}
}

func TestRiseFallDiffer(t *testing.T) {
	// The fall tables are faster, so the two transitions must produce
	// different arrivals downstream of any gate.
	ckt := circuit.Figure8()
	tm := New(ckt, clock)
	tm.FullUpdateSequential()
	var diff bool
	for v, g := range ckt.Gates {
		if g.Kind == circuit.Comb && tm.Arrival[0][v] != tm.Arrival[1][v] {
			diff = true
		}
	}
	if !diff {
		t.Fatal("rise and fall arrivals identical everywhere")
	}
}

func TestNegativeUnateSwapsTransitions(t *testing.T) {
	// A lone inverter: output rise arrival must derive from the input's
	// FALL arrival (negative unate).
	lib := celllib.NewNanGate45Like()
	c := &circuit.Circuit{Name: "inv", Lib: lib}
	addGate := func(name string, kind circuit.Kind, cell *celllib.Cell) int {
		g := &circuit.Gate{ID: len(c.Gates), Name: name, Kind: kind, Cell: cell, WireCap: 1}
		c.Gates = append(c.Gates, g)
		return g.ID
	}
	pi := addGate("in", circuit.PI, nil)
	inv := addGate("inv", circuit.Comb, lib.Cell("INV_X1"))
	po := addGate("out", circuit.PO, nil)
	c.Gates[pi].Fanout = append(c.Gates[pi].Fanout, int32(inv))
	c.Gates[inv].Fanin = append(c.Gates[inv].Fanin, int32(pi))
	c.Gates[inv].Fanout = append(c.Gates[inv].Fanout, int32(po))
	c.Gates[po].Fanin = append(c.Gates[po].Fanin, int32(inv))

	tm := New(c, clock)
	tm.FullUpdateSequential()
	arc := &lib.Cell("INV_X1").Arcs[0]
	load := tm.Load[inv]
	wantRise := arc.DelayRise.Lookup(tm.InputSlew, load) // from input fall
	wantFall := arc.DelayFall.Lookup(tm.InputSlew, load)
	if math.Abs(tm.Arrival[int(celllib.Rise)][inv]-wantRise) > 1e-9 {
		t.Fatalf("inv rise arrival = %v, want %v", tm.Arrival[0][inv], wantRise)
	}
	if math.Abs(tm.Arrival[int(celllib.Fall)][inv]-wantFall) > 1e-9 {
		t.Fatalf("inv fall arrival = %v, want %v", tm.Arrival[1][inv], wantFall)
	}
	// Forbidden unate combinations must be NaN in the delay store.
	if !math.IsNaN(tm.Delay[inv][delayIndex(0, celllib.Rise, celllib.Rise)]) {
		t.Fatal("rise->rise through an inverter should be NaN")
	}
	if math.IsNaN(tm.Delay[inv][delayIndex(0, celllib.Fall, celllib.Rise)]) {
		t.Fatal("fall->rise through an inverter should be valid")
	}
}

func TestArrivalMonotoneAlongEdges(t *testing.T) {
	ckt := circuit.Generate("t", circuit.Config{Gates: 1000, Seed: 3})
	tm := New(ckt, clock)
	tm.FullUpdateSequential()
	for u, g := range ckt.Gates {
		// The earliest output transition of a gate cannot be earlier than
		// the earliest arrival at its driver (positive delays).
		for _, wi := range g.Fanout {
			w := int(wi)
			minU := math.Min(tm.Arrival[0][u], tm.Arrival[1][u])
			minW := math.Min(tm.Arrival[0][w], tm.Arrival[1][w])
			if minW < minU-1e-9 {
				t.Fatalf("arrival decreases along %d->%d: %v -> %v", u, w, minU, minW)
			}
		}
	}
}

func TestCriticalPath(t *testing.T) {
	ckt := circuit.Generate("t", circuit.Config{Gates: 2000, Seed: 9})
	tm := New(ckt, clock)
	tm.FullUpdateSequential()
	path := tm.CriticalPath()
	if len(path) < 2 {
		t.Fatalf("critical path too short: %v", path)
	}
	if !ckt.Gates[path[0]].IsStart() {
		t.Fatalf("critical path starts at %s (%s)", ckt.Gates[path[0]].Name, ckt.Gates[path[0]].Kind)
	}
	if !ckt.Gates[path[len(path)-1]].IsEnd() {
		t.Fatal("critical path does not end at an endpoint")
	}
	for i := 0; i+1 < len(path); i++ {
		connected := false
		for _, w := range ckt.Gates[path[i]].Fanout {
			if int(w) == path[i+1] {
				connected = true
			}
		}
		if !connected {
			t.Fatalf("path hop %d->%d not an edge", path[i], path[i+1])
		}
	}
	_, at := tm.WorstSlack()
	if path[len(path)-1] != at {
		t.Fatalf("path endpoint %d != worst endpoint %d", path[len(path)-1], at)
	}
}

func TestResizeChangesTiming(t *testing.T) {
	ckt := circuit.Generate("t", circuit.Config{Gates: 500, Seed: 6})
	tm := New(ckt, clock)
	tm.FullUpdateSequential()
	before, _ := tm.WorstSlack()
	for _, v := range tm.CriticalPath() {
		if ckt.Gates[v].Kind == circuit.Comb {
			tm.ResizeGate(v, +1)
		}
	}
	tm.FullUpdateSequential()
	after, _ := tm.WorstSlack()
	if after == before {
		t.Fatal("resizing critical path did not change worst slack")
	}
}

// equalState compares every timing quantity of two engines exactly.
func equalState(t *testing.T, label string, a, b *Timing) {
	t.Helper()
	for v := range a.Ckt.Gates {
		if a.Load[v] != b.Load[v] {
			t.Fatalf("%s: load[%d] mismatch", label, v)
		}
		for tr := 0; tr < ntr; tr++ {
			if a.Arrival[tr][v] != b.Arrival[tr][v] {
				t.Fatalf("%s: arrival[%d][%d] = %v, want %v", label, tr, v, a.Arrival[tr][v], b.Arrival[tr][v])
			}
			if a.Slew[tr][v] != b.Slew[tr][v] {
				t.Fatalf("%s: slew[%d][%d] mismatch", label, tr, v)
			}
			if a.Required[tr][v] != b.Required[tr][v] {
				t.Fatalf("%s: required[%d][%d] mismatch", label, tr, v)
			}
			if a.Slack[tr][v] != b.Slack[tr][v] {
				t.Fatalf("%s: slack[%d][%d] mismatch", label, tr, v)
			}
			if a.EarlyArrival[tr][v] != b.EarlyArrival[tr][v] {
				t.Fatalf("%s: early arrival[%d][%d] mismatch", label, tr, v)
			}
			if a.EarlySlack[tr][v] != b.EarlySlack[tr][v] {
				t.Fatalf("%s: early slack[%d][%d] mismatch", label, tr, v)
			}
		}
	}
}

func TestEarlyLateOrdering(t *testing.T) {
	// Early (best-case) arrivals can never exceed late (worst-case)
	// arrivals, and early slews can never exceed late slews.
	ckt := circuit.Generate("t", circuit.Config{Gates: 1500, Seed: 14})
	tm := New(ckt, clock)
	tm.FullUpdateSequential()
	for v := range ckt.Gates {
		for tr := 0; tr < ntr; tr++ {
			if tm.EarlyArrival[tr][v] > tm.Arrival[tr][v]+1e-9 {
				t.Fatalf("early arrival exceeds late at [%d][%d]: %v > %v",
					tr, v, tm.EarlyArrival[tr][v], tm.Arrival[tr][v])
			}
			if tm.EarlySlew[tr][v] > tm.Slew[tr][v]+1e-9 {
				t.Fatalf("early slew exceeds late at [%d][%d]", tr, v)
			}
		}
	}
}

func TestHoldAnalysis(t *testing.T) {
	ckt := circuit.Generate("t", circuit.Config{Gates: 800, Seed: 31})
	tm := New(ckt, clock)
	tm.FullUpdateSequential()
	hs, at := tm.WorstHoldSlack()
	if at < 0 || !ckt.Gates[at].IsEnd() {
		t.Fatalf("worst hold slack at %d", at)
	}
	if math.IsInf(hs, 0) || math.IsNaN(hs) {
		t.Fatalf("hold slack = %v", hs)
	}
	// Every path goes through at least one gate (>= a few ps), so with a
	// small hold constraint the circuit should be hold-clean.
	if hs < 0 {
		t.Logf("note: hold violation of %v ps in synthetic circuit", hs)
	}
}

func TestIncrementalMatchesFullAfterResize(t *testing.T) {
	ckt := circuit.Generate("t", circuit.Config{Gates: 800, Seed: 12})
	tm := New(ckt, clock)
	tm.FullUpdateSequential()

	rng := rand.New(rand.NewSource(99))
	for iter := 0; iter < 25; iter++ {
		seeds := tm.RandomModifier(rng)
		if len(seeds) == 0 {
			continue
		}
		u := tm.PrepareUpdate(seeds)
		tm.RunSequential(u)

		ref := New(ckt, clock)
		ref.FullUpdateSequential()
		equalState(t, "incremental", tm, ref)
	}
}

func TestPrepareUpdateCones(t *testing.T) {
	ckt := circuit.Figure8()
	tm := New(ckt, clock)
	tm.FullUpdateSequential()
	var u2 int
	for v, g := range ckt.Gates {
		if g.Name == "u2" {
			u2 = v
		}
	}
	upd := tm.PrepareUpdate([]int{u2})
	// Forward cone of u2: u2, u3, u4, f1:D, out.
	if len(upd.Fwd) != 5 {
		t.Fatalf("fwd cone size %d, want 5 (%v)", len(upd.Fwd), upd.Fwd)
	}
	for i := 1; i < len(upd.Fwd); i++ {
		if upd.Fwd[i] <= upd.Fwd[i-1] {
			t.Fatal("Fwd not ascending")
		}
	}
	for i := 1; i < len(upd.Bwd); i++ {
		if upd.Bwd[i] >= upd.Bwd[i-1] {
			t.Fatal("Bwd not descending")
		}
	}
	if len(upd.Bwd) != 9 {
		t.Fatalf("bwd cone size %d, want 9", len(upd.Bwd))
	}
	if upd.NumTasks() != 14 {
		t.Fatalf("NumTasks = %d", upd.NumTasks())
	}
}

func TestFullUpdateCoversAll(t *testing.T) {
	ckt := circuit.Generate("t", circuit.Config{Gates: 100, Seed: 2})
	tm := New(ckt, clock)
	u := tm.FullUpdate()
	if len(u.Fwd) != ckt.NumGates() || len(u.Bwd) != ckt.NumGates() {
		t.Fatal("FullUpdate does not cover the circuit")
	}
	tm.RunSequential(u)
	ref := New(ckt, clock)
	ref.FullUpdateSequential()
	equalState(t, "full", tm, ref)
}

// Property: incremental updates after a random wire-cap change always
// reproduce the from-scratch result exactly.
func TestQuickIncrementalWireCap(t *testing.T) {
	ckt := circuit.Generate("t", circuit.Config{Gates: 300, Seed: 21})
	tm := New(ckt, clock)
	tm.FullUpdateSequential()
	f := func(gateSel uint16, capSel uint8) bool {
		v := int(gateSel) % ckt.NumGates()
		seeds := tm.SetWireCap(v, 0.5+float64(capSel)/16)
		tm.RunSequential(tm.PrepareUpdate(seeds))
		ref := New(ckt, clock)
		ref.FullUpdateSequential()
		for i := range ckt.Gates {
			for tr := 0; tr < ntr; tr++ {
				if tm.Slack[tr][i] != ref.Slack[tr][i] || tm.Arrival[tr][i] != ref.Arrival[tr][i] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestWorstSlackNoEndpoints(t *testing.T) {
	ckt := &circuit.Circuit{Name: "empty"}
	tm := New(ckt, clock)
	if _, at := tm.WorstSlack(); at != -1 {
		t.Fatal("WorstSlack on empty circuit")
	}
	if tm.CriticalPath() != nil {
		t.Fatal("CriticalPath on empty circuit")
	}
}

package sta

import (
	"strings"
	"testing"

	"gotaskflow/internal/celllib"
	"gotaskflow/internal/circuit"
)

// TestTimingSurvivesVerilogAndLibertyRoundTrip runs full STA on a
// generated circuit, serializes the netlist to Verilog and the library to
// Liberty, reads both back, re-runs STA and compares every timing quantity
// by gate name — the end-to-end interchange fidelity a real timing flow
// depends on.
func TestTimingSurvivesVerilogAndLibertyRoundTrip(t *testing.T) {
	orig := circuit.Generate("rt", circuit.Config{Gates: 600, Seed: 23})
	tmOrig := New(orig, clock)
	tmOrig.FullUpdateSequential()

	// Library through Liberty.
	var libText strings.Builder
	if err := orig.Lib.WriteLiberty(&libText, "rt45"); err != nil {
		t.Fatal(err)
	}
	lib2, err := celllib.ParseLiberty(strings.NewReader(libText.String()))
	if err != nil {
		t.Fatal(err)
	}

	// Netlist through Verilog, resolved against the round-tripped library.
	var vText strings.Builder
	if err := orig.WriteVerilog(&vText); err != nil {
		t.Fatal(err)
	}
	ckt2, err := circuit.ParseVerilog(strings.NewReader(vText.String()), lib2)
	if err != nil {
		t.Fatal(err)
	}
	tm2 := New(ckt2, clock)
	tm2.FullUpdateSequential()

	// Compare by gate name: node ids may be permuted by re-indexing.
	idByName := map[string]int{}
	for v, g := range ckt2.Gates {
		idByName[g.Name] = v
	}
	for v, g := range orig.Gates {
		v2, ok := idByName[g.Name]
		if !ok {
			t.Fatalf("gate %s missing after round-trip", g.Name)
		}
		for tr := 0; tr < ntr; tr++ {
			if tmOrig.Arrival[tr][v] != tm2.Arrival[tr][v2] {
				t.Fatalf("gate %s arrival[%d]: %v vs %v", g.Name, tr, tmOrig.Arrival[tr][v], tm2.Arrival[tr][v2])
			}
			if tmOrig.Slack[tr][v] != tm2.Slack[tr][v2] {
				t.Fatalf("gate %s slack[%d] differs", g.Name, tr)
			}
			if tmOrig.EarlySlack[tr][v] != tm2.EarlySlack[tr][v2] {
				t.Fatalf("gate %s early slack[%d] differs", g.Name, tr)
			}
		}
	}
	ws1, _ := tmOrig.WorstSlack()
	ws2, _ := tm2.WorstSlack()
	if ws1 != ws2 {
		t.Fatalf("worst slack %v vs %v", ws1, ws2)
	}
}

package sta

import (
	"math/rand"
	"sort"

	"gotaskflow/internal/circuit"
)

// This file implements the incremental-timing machinery (paper Section
// IV-B, Figure 9): design modifiers dirty a set of seed gates, the engine
// extracts the affected forward and backward cones, and a driver (stav1 or
// stav2) re-propagates exactly those cones.

// Update describes one incremental timing update: Fwd lists the nodes
// whose forward state must be recomputed, in ascending (topological)
// order; Bwd lists the nodes whose required/slack must be recomputed, in
// descending (reverse topological) order.
type Update struct {
	Fwd []int
	Bwd []int
}

// NumTasks returns the total number of propagation tasks in the update.
func (u Update) NumTasks() int { return len(u.Fwd) + len(u.Bwd) }

// ResizeGate swaps gate v's cell for the next drive variant in the given
// direction (+1 up, -1 down) and returns the dirty seeds: v itself plus
// its fanins, whose output loads change with v's input capacitance.
func (t *Timing) ResizeGate(v int, dir int) []int {
	g := t.Ckt.Gates[v]
	if g.Cell == nil {
		return nil
	}
	g.Cell = t.Ckt.Lib.Resize(g.Cell, dir)
	seeds := []int{v}
	for _, u := range g.Fanin {
		seeds = append(seeds, int(u))
	}
	return seeds
}

// SetWireCap changes the wire capacitance of the net driven by v and
// returns the dirty seed.
func (t *Timing) SetWireCap(v int, cap float64) []int {
	t.Ckt.Gates[v].WireCap = cap
	return []int{v}
}

// RandomModifier applies one random design transform — a gate resize or a
// wire-capacitance change, the local edits an optimization engine makes —
// and returns the dirty seeds. Deterministic under a seeded rng.
func (t *Timing) RandomModifier(rng *rand.Rand) []int {
	// Pick a combinational gate.
	for tries := 0; tries < 64; tries++ {
		v := rng.Intn(t.Ckt.NumGates())
		g := t.Ckt.Gates[v]
		if g.Kind != circuit.Comb {
			continue
		}
		if rng.Intn(3) == 0 {
			return t.SetWireCap(v, 0.5+4*rng.Float64())
		}
		dir := 1
		if rng.Intn(2) == 0 {
			dir = -1
		}
		return t.ResizeGate(v, dir)
	}
	return nil
}

// PrepareUpdate extracts the affected cones of the dirty seeds: the
// forward cone is everything reachable through fanouts (arrival, slew and
// load may change there); the backward cone is everything that reaches the
// forward cone through fanins (required time may change there).
func (t *Timing) PrepareUpdate(seeds []int) Update {
	n := t.Ckt.NumGates()
	inFwd := make([]bool, n)
	queue := make([]int, 0, len(seeds))
	for _, s := range seeds {
		if !inFwd[s] {
			inFwd[s] = true
			queue = append(queue, s)
		}
	}
	for len(queue) > 0 {
		v := queue[len(queue)-1]
		queue = queue[:len(queue)-1]
		for _, wi := range t.Ckt.Gates[v].Fanout {
			if w := int(wi); !inFwd[w] {
				inFwd[w] = true
				queue = append(queue, w)
			}
		}
	}
	inBwd := make([]bool, n)
	for v := 0; v < n; v++ {
		if inFwd[v] && !inBwd[v] {
			inBwd[v] = true
			queue = append(queue, v)
		}
	}
	for len(queue) > 0 {
		v := queue[len(queue)-1]
		queue = queue[:len(queue)-1]
		for _, ui := range t.Ckt.Gates[v].Fanin {
			if u := int(ui); !inBwd[u] {
				inBwd[u] = true
				queue = append(queue, u)
			}
		}
	}
	var u Update
	for v := 0; v < n; v++ {
		if inFwd[v] {
			u.Fwd = append(u.Fwd, v)
		}
		if inBwd[v] {
			u.Bwd = append(u.Bwd, v)
		}
	}
	sort.Sort(sort.Reverse(sort.IntSlice(u.Bwd)))
	return u
}

// FullUpdate returns the Update covering the entire circuit — what a
// from-scratch timing run propagates.
func (t *Timing) FullUpdate() Update {
	n := t.Ckt.NumGates()
	u := Update{Fwd: make([]int, n), Bwd: make([]int, n)}
	for v := 0; v < n; v++ {
		u.Fwd[v] = v
		u.Bwd[v] = n - 1 - v
	}
	return u
}

// RunSequential applies an update on the calling goroutine in dependency
// order — the reference result for the parallel drivers.
func (t *Timing) RunSequential(u Update) {
	for _, v := range u.Fwd {
		t.RelaxForward(v)
	}
	for _, v := range u.Bwd {
		t.RelaxBackward(v)
	}
}

// Package sta is the static timing analysis engine behind the OpenTimer
// experiments of the Cpp-Taskflow paper (Section IV-B). It implements the
// standard gate-level STA pipeline with rise/fall transition analysis:
// forward propagation of output load, per-arc per-transition delay (NLDM
// table lookups under the cell's unateness), arrival time and slew from
// the startpoints, then backward propagation of required time and slack
// from the endpoints, plus the incremental machinery — design modifiers,
// dirty seeds and affected-cone extraction — that optimization loops
// hammer with millions of small timing queries.
//
// The engine deliberately separates the *numerics* (RelaxForward /
// RelaxBackward, pure functions of neighbor state) from the *parallel
// decomposition*, which is supplied by the two drivers: stav1 parallelizes
// with the levelize-and-barrier idiom of OpenTimer v1 (OpenMP), stav2 with
// a per-update task dependency graph as in OpenTimer v2 (Cpp-Taskflow).
// Both produce bit-identical results, which the tests verify.
package sta

import (
	"math"

	"gotaskflow/internal/celllib"
	"gotaskflow/internal/circuit"
)

// poCap is the fixed capacitive load a primary output presents, fF.
const poCap = 2.0

// ntr is shorthand for the number of transitions analyzed (rise, fall).
const ntr = celllib.NumTransitions

// Timing holds the analysis state for one circuit. Per-node quantities
// are indexed [transition][node].
type Timing struct {
	Ckt *circuit.Circuit

	// ClockPeriod, Setup and Hold define the endpoint constraints, ps.
	// Late (setup) analysis checks the latest arrival against
	// ClockPeriod-Setup; early (hold) analysis checks the earliest arrival
	// against Hold.
	ClockPeriod float64
	Setup       float64
	Hold        float64
	// InputSlew is the slew at startpoints, ps.
	InputSlew float64

	// Late-mode (setup) quantities: worst-case arrivals and slews
	// propagate by max, required times by min.
	Load     []float64
	Arrival  [ntr][]float64
	Slew     [ntr][]float64
	Required [ntr][]float64
	Slack    [ntr][]float64
	// Delay[v] stores the per-arc per-transition late propagation delays
	// of v's input arcs, laid out as [k*4 + trIn*2 + trOut]. Combinations
	// forbidden by the cell's unateness hold NaN. Filled by the forward
	// pass, consumed by the backward pass.
	Delay [][]float64

	// Early-mode (hold) quantities: best-case arrivals and slews
	// propagate by min, required times by max, and slack is
	// arrival - required.
	EarlyArrival  [ntr][]float64
	EarlySlew     [ntr][]float64
	EarlyRequired [ntr][]float64
	EarlySlack    [ntr][]float64
	EarlyDelay    [][]float64
}

// New creates a Timing for ckt with the given clock period (ps).
func New(ckt *circuit.Circuit, clockPeriod float64) *Timing {
	n := ckt.NumGates()
	t := &Timing{
		Ckt:         ckt,
		ClockPeriod: clockPeriod,
		Setup:       clockPeriod * 0.02,
		Hold:        clockPeriod * 0.008,
		InputSlew:   20,
		Load:        make([]float64, n),
		Delay:       make([][]float64, n),
		EarlyDelay:  make([][]float64, n),
	}
	for tr := 0; tr < ntr; tr++ {
		t.Arrival[tr] = make([]float64, n)
		t.Slew[tr] = make([]float64, n)
		t.Required[tr] = make([]float64, n)
		t.Slack[tr] = make([]float64, n)
		t.EarlyArrival[tr] = make([]float64, n)
		t.EarlySlew[tr] = make([]float64, n)
		t.EarlyRequired[tr] = make([]float64, n)
		t.EarlySlack[tr] = make([]float64, n)
	}
	for v, g := range ckt.Gates {
		t.Delay[v] = make([]float64, 4*len(g.Fanin))
		t.EarlyDelay[v] = make([]float64, 4*len(g.Fanin))
	}
	return t
}

// delayIndex computes the layout offset of (arc k, input transition,
// output transition) in Delay[v].
func delayIndex(k int, trIn, trOut celllib.Transition) int {
	return k*4 + int(trIn)*2 + int(trOut)
}

// inputTransitions returns the input transitions that can cause the given
// output transition under the cell's unateness.
func inputTransitions(u celllib.Unateness, trOut celllib.Transition) [2]int {
	// The second slot is -1 when only one input transition applies.
	switch u {
	case celllib.PositiveUnate:
		return [2]int{int(trOut), -1}
	case celllib.NegativeUnate:
		return [2]int{1 - int(trOut), -1}
	default:
		return [2]int{0, 1}
	}
}

// RelaxForward recomputes node v's output load, input-arc delays, arrival
// times and slews (both transitions) from its fanins' state. It is a pure
// function of the fanins' Arrival/Slew and the fanouts' input capacitance,
// so independent nodes may be relaxed concurrently as long as dependency
// order holds.
func (t *Timing) RelaxForward(v int) {
	g := t.Ckt.Gates[v]
	t.Load[v] = t.computeLoad(v)
	switch g.Kind {
	case circuit.PI:
		for tr := 0; tr < ntr; tr++ {
			t.Arrival[tr][v] = 0
			t.Slew[tr][v] = t.InputSlew
			t.EarlyArrival[tr][v] = 0
			t.EarlySlew[tr][v] = t.InputSlew
		}
	case circuit.FFQ:
		// Clock-to-Q: the rising clock edge launches both output
		// transitions through the flip-flop's arc at the node's load.
		arc := &g.Cell.Arcs[0]
		for tr := celllib.Rise; tr <= celllib.Fall; tr++ {
			d := arc.Delay(tr).Lookup(t.InputSlew, t.Load[v])
			s := arc.OutSlew(tr).Lookup(t.InputSlew, t.Load[v])
			t.Arrival[tr][v] = d
			t.Slew[tr][v] = s
			t.EarlyArrival[tr][v] = d
			t.EarlySlew[tr][v] = s
		}
	case circuit.Comb:
		for trOut := celllib.Rise; trOut <= celllib.Fall; trOut++ {
			arr, slew := math.Inf(-1), math.Inf(-1)
			eArr, eSlew := math.Inf(1), math.Inf(1)
			ins := inputTransitions(g.Cell.Unate, trOut)
			for k, ui := range g.Fanin {
				u := int(ui)
				arc := &g.Cell.Arcs[k%len(g.Cell.Arcs)]
				dTab := arc.Delay(trOut)
				sTab := arc.OutSlew(trOut)
				for _, trInI := range ins {
					if trInI < 0 {
						continue
					}
					trIn := celllib.Transition(trInI)
					// Late mode: worst-case slews, max reduction.
					d := dTab.Lookup(t.Slew[trIn][u], t.Load[v])
					t.Delay[v][delayIndex(k, trIn, trOut)] = d
					if a := t.Arrival[trIn][u] + d; a > arr {
						arr = a
					}
					if s := sTab.Lookup(t.Slew[trIn][u], t.Load[v]); s > slew {
						slew = s
					}
					// Early mode: best-case slews, min reduction.
					ed := dTab.Lookup(t.EarlySlew[trIn][u], t.Load[v])
					t.EarlyDelay[v][delayIndex(k, trIn, trOut)] = ed
					if a := t.EarlyArrival[trIn][u] + ed; a < eArr {
						eArr = a
					}
					if s := sTab.Lookup(t.EarlySlew[trIn][u], t.Load[v]); s < eSlew {
						eSlew = s
					}
				}
				// Mark the forbidden combination NaN so the backward pass
				// skips it.
				if g.Cell.Unate != celllib.NonUnate {
					var forbidden celllib.Transition
					if ins[0] == int(celllib.Rise) {
						forbidden = celllib.Fall
					} else {
						forbidden = celllib.Rise
					}
					t.Delay[v][delayIndex(k, forbidden, trOut)] = math.NaN()
					t.EarlyDelay[v][delayIndex(k, forbidden, trOut)] = math.NaN()
				}
			}
			t.Arrival[trOut][v], t.Slew[trOut][v] = arr, slew
			t.EarlyArrival[trOut][v], t.EarlySlew[trOut][v] = eArr, eSlew
		}
	case circuit.FFD, circuit.PO:
		// Endpoint pins: the net delivers the driver's signal directly
		// (identity arc, zero delay, transition preserved).
		u := int(g.Fanin[0])
		for tr := celllib.Rise; tr <= celllib.Fall; tr++ {
			t.Delay[v][delayIndex(0, tr, tr)] = 0
			t.Delay[v][delayIndex(0, tr, 1-tr)] = math.NaN()
			t.EarlyDelay[v][delayIndex(0, tr, tr)] = 0
			t.EarlyDelay[v][delayIndex(0, tr, 1-tr)] = math.NaN()
			t.Arrival[tr][v] = t.Arrival[tr][u]
			t.Slew[tr][v] = t.Slew[tr][u]
			t.EarlyArrival[tr][v] = t.EarlyArrival[tr][u]
			t.EarlySlew[tr][v] = t.EarlySlew[tr][u]
		}
	}
}

// RelaxBackward recomputes node v's required times and slacks from its
// fanouts' state (or its endpoint constraint).
func (t *Timing) RelaxBackward(v int) {
	g := t.Ckt.Gates[v]
	switch g.Kind {
	case circuit.FFD:
		for tr := 0; tr < ntr; tr++ {
			t.Required[tr][v] = t.ClockPeriod - t.Setup
			t.EarlyRequired[tr][v] = t.Hold
		}
	case circuit.PO:
		for tr := 0; tr < ntr; tr++ {
			t.Required[tr][v] = t.ClockPeriod
			t.EarlyRequired[tr][v] = 0
		}
	default:
		for trIn := celllib.Rise; trIn <= celllib.Fall; trIn++ {
			req := math.Inf(1)
			eReq := math.Inf(-1)
			for _, wi := range g.Fanout {
				w := int(wi)
				for k, ui := range t.Ckt.Gates[w].Fanin {
					if int(ui) != v {
						continue
					}
					for trOut := celllib.Rise; trOut <= celllib.Fall; trOut++ {
						d := t.Delay[w][delayIndex(k, trIn, trOut)]
						if !math.IsNaN(d) {
							if r := t.Required[trOut][w] - d; r < req {
								req = r
							}
						}
						ed := t.EarlyDelay[w][delayIndex(k, trIn, trOut)]
						if !math.IsNaN(ed) {
							if r := t.EarlyRequired[trOut][w] - ed; r > eReq {
								eReq = r
							}
						}
					}
				}
			}
			t.Required[trIn][v] = req
			t.EarlyRequired[trIn][v] = eReq
		}
	}
	for tr := 0; tr < ntr; tr++ {
		t.Slack[tr][v] = t.Required[tr][v] - t.Arrival[tr][v]
		t.EarlySlack[tr][v] = t.EarlyArrival[tr][v] - t.EarlyRequired[tr][v]
	}
}

// computeLoad sums the input capacitance of every sink on v's net plus the
// net's wire capacitance.
func (t *Timing) computeLoad(v int) float64 {
	g := t.Ckt.Gates[v]
	load := g.WireCap
	for _, wi := range g.Fanout {
		w := t.Ckt.Gates[wi]
		switch {
		case w.Kind == circuit.PO:
			load += poCap
		case w.Cell != nil:
			load += w.Cell.InputCap
		}
	}
	return load
}

// FullUpdateSequential runs a complete forward and backward propagation in
// topological order on the calling goroutine — the reference for every
// parallel driver.
func (t *Timing) FullUpdateSequential() {
	n := t.Ckt.NumGates()
	for v := 0; v < n; v++ {
		t.RelaxForward(v)
	}
	for v := n - 1; v >= 0; v-- {
		t.RelaxBackward(v)
	}
}

// WorstSlack returns the minimum late (setup) slack over all endpoints and
// transitions, and the endpoint realizing it (-1 if the circuit has no
// endpoints).
func (t *Timing) WorstSlack() (float64, int) {
	worst, at := math.Inf(1), -1
	for v, g := range t.Ckt.Gates {
		if !g.IsEnd() {
			continue
		}
		for tr := 0; tr < ntr; tr++ {
			if t.Slack[tr][v] < worst {
				worst, at = t.Slack[tr][v], v
			}
		}
	}
	return worst, at
}

// WorstHoldSlack returns the minimum early (hold) slack over all endpoints
// and transitions, and the endpoint realizing it.
func (t *Timing) WorstHoldSlack() (float64, int) {
	worst, at := math.Inf(1), -1
	for v, g := range t.Ckt.Gates {
		if !g.IsEnd() {
			continue
		}
		for tr := 0; tr < ntr; tr++ {
			if t.EarlySlack[tr][v] < worst {
				worst, at = t.EarlySlack[tr][v], v
			}
		}
	}
	return worst, at
}

// CriticalPath walks from the worst endpoint back through the
// (fanin, transition) pairs that determine each arrival time, returning
// gate IDs from startpoint to endpoint.
func (t *Timing) CriticalPath() []int {
	_, v := t.WorstSlack()
	if v < 0 {
		return nil
	}
	tr := celllib.Rise
	if t.Slack[celllib.Fall][v] < t.Slack[celllib.Rise][v] {
		tr = celllib.Fall
	}
	var rev []int
	for {
		rev = append(rev, v)
		g := t.Ckt.Gates[v]
		if len(g.Fanin) == 0 {
			break
		}
		bestU, bestTr, bestA := -1, celllib.Rise, math.Inf(-1)
		for k, ui := range g.Fanin {
			u := int(ui)
			for trIn := celllib.Rise; trIn <= celllib.Fall; trIn++ {
				d := t.Delay[v][delayIndex(k, trIn, tr)]
				if math.IsNaN(d) {
					continue
				}
				if a := t.Arrival[trIn][u] + d; a > bestA {
					bestA, bestU, bestTr = a, u, trIn
				}
			}
		}
		if bestU < 0 {
			break
		}
		v, tr = bestU, bestTr
	}
	for i, j := 0, len(rev)-1; i < j; i, j = i+1, j-1 {
		rev[i], rev[j] = rev[j], rev[i]
	}
	return rev
}

// Package flowgraph is a faithful Go model of the Intel TBB FlowGraph
// programming interface, the stronger of the two baselines in the
// Cpp-Taskflow paper (Listings 5 and 8).
//
// The model reproduces TBB's structural costs as described in the paper:
// users build a Graph of ContinueNodes, connect them with MakeEdge, must
// identify and fire the source nodes explicitly with TryPut, and wait with
// WaitForAll. Every dependency is carried by an explicit continue message
// with per-node message bookkeeping, and ready nodes funnel through a
// shared run queue (TBB's flow-graph layer enqueues spawned bodies into its
// scheduler) — exactly the per-node data-structure overhead the paper
// measures against.
//
//	g := flowgraph.NewGraph(4)
//	defer g.Close()
//	a := flowgraph.NewContinueNode(g, func(flowgraph.ContinueMsg) { ... })
//	b := flowgraph.NewContinueNode(g, func(flowgraph.ContinueMsg) { ... })
//	flowgraph.MakeEdge(a, b)
//	a.TryPut(flowgraph.ContinueMsg{})
//	g.WaitForAll()
package flowgraph

import (
	"sync"
	"sync/atomic"
)

// ContinueMsg is the nominal message type flowing along edges, mirroring
// tbb::flow::continue_msg.
type ContinueMsg struct{}

// Graph owns a set of nodes and a worker pool that executes triggered node
// bodies. Outstanding work is reference-counted, mirroring the root-task
// reference count behind tbb::flow::graph::wait_for_all.
type Graph struct {
	pool    *pool
	mu      sync.Mutex
	cond    *sync.Cond
	pending int64
}

// NewGraph creates a graph executed by n pool workers (n <= 0 selects 1).
func NewGraph(n int) *Graph {
	if n < 1 {
		n = 1
	}
	g := &Graph{pool: newPool(n)}
	g.cond = sync.NewCond(&g.mu)
	return g
}

// Close stops the worker pool. The graph must be quiescent (WaitForAll).
func (g *Graph) Close() { g.pool.close() }

// WaitForAll blocks until every triggered node body and its transitively
// triggered successors have completed.
func (g *Graph) WaitForAll() {
	g.mu.Lock()
	for g.pending > 0 {
		g.cond.Wait()
	}
	g.mu.Unlock()
}

func (g *Graph) incr() {
	g.mu.Lock()
	g.pending++
	g.mu.Unlock()
}

func (g *Graph) decr() {
	g.mu.Lock()
	g.pending--
	if g.pending == 0 {
		g.cond.Broadcast()
	}
	g.mu.Unlock()
}

// ContinueNode executes its body after receiving one continue message per
// predecessor edge, mirroring tbb::flow::continue_node<continue_msg>.
type ContinueNode struct {
	g     *Graph
	body  func(ContinueMsg)
	preds int32
	count atomic.Int32
	succs []*ContinueNode
}

// NewContinueNode creates a node in g with the given body.
func NewContinueNode(g *Graph, body func(ContinueMsg)) *ContinueNode {
	return &ContinueNode{g: g, body: body}
}

// MakeEdge adds a dependency edge: to's body runs only after receiving a
// message from every predecessor, including from.
func MakeEdge(from, to *ContinueNode) {
	from.succs = append(from.succs, to)
	to.preds++
}

// TryPut delivers a continue message to the node. When the node has
// received messages on all its predecessor edges (or any single message for
// a source node with no predecessors), its body is enqueued for execution.
// It always reports true, matching continue_node semantics.
func (n *ContinueNode) TryPut(ContinueMsg) bool {
	threshold := n.preds
	if threshold == 0 {
		threshold = 1
	}
	if c := n.count.Add(1); c == threshold {
		n.count.Store(0) // reset so the graph is re-runnable, like TBB
		n.trigger()
	}
	return true
}

func (n *ContinueNode) trigger() {
	n.g.incr()
	n.g.pool.submit(func() {
		n.body(ContinueMsg{})
		for _, s := range n.succs {
			s.TryPut(ContinueMsg{})
		}
		n.g.decr()
	})
}

// pool is a fixed-size work-sharing worker pool fed from one shared queue,
// standing in for the scheduler queue the TBB flow-graph layer spawns its
// node bodies into.
type pool struct {
	mu     sync.Mutex
	cond   *sync.Cond
	queue  []func()
	closed bool
	wg     sync.WaitGroup
}

func newPool(n int) *pool {
	p := &pool{}
	p.cond = sync.NewCond(&p.mu)
	p.wg.Add(n)
	for i := 0; i < n; i++ {
		go p.run()
	}
	return p
}

func (p *pool) submit(fn func()) {
	p.mu.Lock()
	p.queue = append(p.queue, fn)
	p.mu.Unlock()
	p.cond.Signal()
}

func (p *pool) run() {
	defer p.wg.Done()
	for {
		p.mu.Lock()
		for len(p.queue) == 0 && !p.closed {
			p.cond.Wait()
		}
		if len(p.queue) == 0 && p.closed {
			p.mu.Unlock()
			return
		}
		fn := p.queue[0]
		p.queue[0] = nil
		p.queue = p.queue[1:]
		p.mu.Unlock()
		fn()
	}
}

func (p *pool) close() {
	p.mu.Lock()
	p.closed = true
	p.mu.Unlock()
	p.cond.Broadcast()
	p.wg.Wait()
}

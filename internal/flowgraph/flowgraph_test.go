package flowgraph

import (
	"sync"
	"sync/atomic"
	"testing"
)

// trace records completion order.
type trace struct {
	mu  sync.Mutex
	pos map[string]int
	n   int
}

func newTrace() *trace { return &trace{pos: map[string]int{}} }

func (tr *trace) hit(name string) func(ContinueMsg) {
	return func(ContinueMsg) {
		tr.mu.Lock()
		tr.pos[name] = tr.n
		tr.n++
		tr.mu.Unlock()
	}
}

func (tr *trace) before(t *testing.T, a, b string) {
	t.Helper()
	pa, oka := tr.pos[a]
	pb, okb := tr.pos[b]
	if !oka || !okb || pa >= pb {
		t.Fatalf("want %s before %s; pos=%v", a, b, tr.pos)
	}
}

func TestListing5StaticGraph(t *testing.T) {
	// The Figure 2 graph exactly as the paper's TBB Listing 5 writes it.
	g := NewGraph(4)
	defer g.Close()
	tr := newTrace()
	a0 := NewContinueNode(g, tr.hit("a0"))
	a1 := NewContinueNode(g, tr.hit("a1"))
	a2 := NewContinueNode(g, tr.hit("a2"))
	a3 := NewContinueNode(g, tr.hit("a3"))
	b0 := NewContinueNode(g, tr.hit("b0"))
	b1 := NewContinueNode(g, tr.hit("b1"))
	b2 := NewContinueNode(g, tr.hit("b2"))
	MakeEdge(a0, a1)
	MakeEdge(a1, a2)
	MakeEdge(a1, b2)
	MakeEdge(a2, a3)
	MakeEdge(b0, b1)
	MakeEdge(b1, b2)
	MakeEdge(b1, a2)
	MakeEdge(b2, a3)
	a0.TryPut(ContinueMsg{})
	b0.TryPut(ContinueMsg{})
	g.WaitForAll()
	for _, e := range [][2]string{
		{"a0", "a1"}, {"a1", "a2"}, {"a1", "b2"}, {"a2", "a3"},
		{"b0", "b1"}, {"b1", "b2"}, {"b1", "a2"}, {"b2", "a3"},
	} {
		tr.before(t, e[0], e[1])
	}
	if tr.n != 7 {
		t.Fatalf("ran %d nodes, want 7", tr.n)
	}
}

func TestSourceNeedsExplicitTryPut(t *testing.T) {
	g := NewGraph(2)
	defer g.Close()
	var ran atomic.Bool
	NewContinueNode(g, func(ContinueMsg) { ran.Store(true) })
	g.WaitForAll() // nothing fired: returns immediately
	if ran.Load() {
		t.Fatal("node ran without TryPut")
	}
}

func TestFanInWaitsForAllPreds(t *testing.T) {
	g := NewGraph(4)
	defer g.Close()
	var order []string
	var mu sync.Mutex
	rec := func(s string) func(ContinueMsg) {
		return func(ContinueMsg) {
			mu.Lock()
			order = append(order, s)
			mu.Unlock()
		}
	}
	sink := NewContinueNode(g, rec("sink"))
	srcs := make([]*ContinueNode, 10)
	for i := range srcs {
		srcs[i] = NewContinueNode(g, rec("src"))
		MakeEdge(srcs[i], sink)
	}
	// Edge construction must finish before firing: mutating a running
	// graph is undefined in TBB as well.
	for _, src := range srcs {
		src.TryPut(ContinueMsg{})
	}
	g.WaitForAll()
	mu.Lock()
	defer mu.Unlock()
	if len(order) != 11 || order[10] != "sink" {
		t.Fatalf("order = %v; sink must run last exactly once", order)
	}
}

func TestGraphReRunnable(t *testing.T) {
	g := NewGraph(2)
	defer g.Close()
	var n atomic.Int64
	a := NewContinueNode(g, func(ContinueMsg) { n.Add(1) })
	b := NewContinueNode(g, func(ContinueMsg) { n.Add(1) })
	MakeEdge(a, b)
	for round := 0; round < 5; round++ {
		a.TryPut(ContinueMsg{})
		g.WaitForAll()
	}
	if n.Load() != 10 {
		t.Fatalf("ran %d bodies over 5 rounds, want 10", n.Load())
	}
}

func TestInnerGraphInsideNode(t *testing.T) {
	// Paper Listing 8: dynamic tasking in TBB needs a separate inner graph
	// created inside the node body.
	outer := NewGraph(2)
	defer outer.Close()
	tr := newTrace()
	B := NewContinueNode(outer, func(ContinueMsg) {
		tr.hit("B")(ContinueMsg{})
		inner := NewGraph(2)
		defer inner.Close()
		b1 := NewContinueNode(inner, tr.hit("B1"))
		b2 := NewContinueNode(inner, tr.hit("B2"))
		b3 := NewContinueNode(inner, tr.hit("B3"))
		MakeEdge(b1, b3)
		MakeEdge(b2, b3)
		b1.TryPut(ContinueMsg{})
		b2.TryPut(ContinueMsg{})
		inner.WaitForAll()
	})
	D := NewContinueNode(outer, tr.hit("D"))
	MakeEdge(B, D)
	B.TryPut(ContinueMsg{})
	outer.WaitForAll()
	tr.before(t, "B", "B1")
	tr.before(t, "B1", "B3")
	tr.before(t, "B2", "B3")
	tr.before(t, "B3", "D")
}

func TestLargeDiamondCascade(t *testing.T) {
	g := NewGraph(4)
	defer g.Close()
	var n atomic.Int64
	body := func(ContinueMsg) { n.Add(1) }
	const width = 200
	src := NewContinueNode(g, body)
	sink := NewContinueNode(g, body)
	for i := 0; i < width; i++ {
		mid := NewContinueNode(g, body)
		MakeEdge(src, mid)
		MakeEdge(mid, sink)
	}
	src.TryPut(ContinueMsg{})
	g.WaitForAll()
	if n.Load() != width+2 {
		t.Fatalf("ran %d bodies, want %d", n.Load(), width+2)
	}
}

func TestWaitForAllIdleGraph(t *testing.T) {
	g := NewGraph(1)
	defer g.Close()
	g.WaitForAll() // must not block
}

func TestSingleWorkerDeterministicChain(t *testing.T) {
	g := NewGraph(1)
	defer g.Close()
	var order []int
	prev := NewContinueNode(g, func(ContinueMsg) { order = append(order, 0) })
	first := prev
	for i := 1; i < 100; i++ {
		i := i
		cur := NewContinueNode(g, func(ContinueMsg) { order = append(order, i) })
		MakeEdge(prev, cur)
		prev = cur
	}
	first.TryPut(ContinueMsg{})
	g.WaitForAll()
	for i, v := range order {
		if v != i {
			t.Fatalf("order[%d] = %d", i, v)
		}
	}
}

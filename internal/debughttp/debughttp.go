// Package debughttp serves the live observability surface of a running
// executor and its taskflows under /debug/taskflow/, in the spirit of the
// standard library's /debug/pprof/:
//
//	/debug/taskflow/            index: endpoints and registered taskflows
//	/debug/taskflow/metrics     scheduler counters, Prometheus text format
//	/debug/taskflow/flows       multi-tenant flow stats (always-on counters)
//	/debug/taskflow/latency     per-flow latency quantile table (p50/p90/p99/p999)
//	/debug/taskflow/trace/start begin an event-trace capture
//	/debug/taskflow/trace/stop  end it and stream Chrome trace-event JSON
//	/debug/taskflow/flight      snapshot the flight recorder as Chrome trace JSON
//	/debug/taskflow/dot         annotated DOT of a registered taskflow
//
// Mount Registry.Handler on any mux, or call ListenAndServe for a
// dedicated debug listener. Everything uses only the standard library.
//
// The trace endpoints drive the executor's Start/StopTrace capture
// window: start it, let the workload run, then stop it and load the
// response straight into Perfetto (https://ui.perfetto.dev) or
// chrome://tracing. The executor must have been built with
// executor.WithTracing, otherwise trace/start reports 409 Conflict.
package debughttp

import (
	"fmt"
	"net"
	"net/http"
	"sort"
	"sync"

	"gotaskflow/internal/core"
	"gotaskflow/internal/executor"
	"gotaskflow/internal/metrics"
	"gotaskflow/internal/tracing"
)

// Prefix is the URL prefix all endpoints live under.
const Prefix = "/debug/taskflow/"

// Registry binds one executor and any number of named taskflows to the
// debug endpoints. The zero value is not usable; construct with New.
type Registry struct {
	exec *executor.Executor

	mu    sync.Mutex
	flows map[string]*core.Taskflow
}

// New returns a Registry serving e's metrics and trace captures.
func New(e *executor.Executor) *Registry {
	return &Registry{exec: e, flows: map[string]*core.Taskflow{}}
}

// Register makes tf's annotated DOT dump available under
// /debug/taskflow/dot?flow=name. Re-registering a name replaces the
// previous taskflow. Returns r for chaining.
//
// The dump walks the graph without synchronizing against a concurrent
// Run, so mid-run snapshots are best-effort: counts may be mid-update,
// but the structure is stable once construction has finished.
func (r *Registry) Register(name string, tf *core.Taskflow) *Registry {
	r.mu.Lock()
	r.flows[name] = tf
	r.mu.Unlock()
	return r
}

// flowNames returns the registered names, sorted.
func (r *Registry) flowNames() []string {
	r.mu.Lock()
	defer r.mu.Unlock()
	names := make([]string, 0, len(r.flows))
	for name := range r.flows {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// flow resolves a ?flow= query value. An empty name resolves when exactly
// one taskflow is registered.
func (r *Registry) flow(name string) (*core.Taskflow, bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if name == "" && len(r.flows) == 1 {
		for _, tf := range r.flows {
			return tf, true
		}
	}
	tf, ok := r.flows[name]
	return tf, ok
}

// Handler returns the http.Handler serving every endpoint under Prefix.
// Mount it on a mux at Prefix (or at "/" — all routes are absolute).
func (r *Registry) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc(Prefix, r.index)
	mux.HandleFunc(Prefix+"metrics", r.serveMetrics)
	mux.HandleFunc(Prefix+"flows", r.serveFlows)
	mux.HandleFunc(Prefix+"latency", r.serveLatency)
	mux.HandleFunc(Prefix+"trace/start", r.traceStart)
	mux.HandleFunc(Prefix+"trace/stop", r.traceStop)
	mux.HandleFunc(Prefix+"flight", r.serveFlight)
	mux.HandleFunc(Prefix+"dot", r.dot)
	return mux
}

// ListenAndServe starts a dedicated debug server on addr (e.g.
// "localhost:6060"; port 0 picks a free one) in a background goroutine.
// It returns the bound address and a stop function that closes the
// listener.
func (r *Registry) ListenAndServe(addr string) (actual string, stop func() error, err error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", nil, err
	}
	srv := &http.Server{Handler: r.Handler()}
	go srv.Serve(ln) //nolint:errcheck // Serve always returns on Close
	return ln.Addr().String(), srv.Close, nil
}

func (r *Registry) index(w http.ResponseWriter, req *http.Request) {
	if req.URL.Path != Prefix && req.URL.Path != Prefix[:len(Prefix)-1] {
		http.NotFound(w, req)
		return
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	fmt.Fprintf(w, "gotaskflow debug endpoints (%d workers)\n\n", r.exec.NumWorkers())
	fmt.Fprintf(w, "%smetrics      scheduler counters (Prometheus text; enabled=%v)\n", Prefix, r.exec.MetricsEnabled())
	fmt.Fprintf(w, "%sflows        multi-tenant flow stats (%d flows registered)\n", Prefix, len(r.exec.FlowStats()))
	fmt.Fprintf(w, "%slatency      per-flow latency quantiles (enabled=%v)\n", Prefix, r.exec.LatencyEnabled())
	fmt.Fprintf(w, "%strace/start  begin an event-trace capture (enabled=%v, active=%v)\n", Prefix, r.exec.TracingEnabled(), r.exec.TraceActive())
	fmt.Fprintf(w, "%strace/stop   end the capture, respond with Chrome trace-event JSON\n", Prefix)
	fmt.Fprintf(w, "%sflight       flight-recorder snapshot, Chrome trace-event JSON (enabled=%v)\n", Prefix, r.exec.FlightEnabled())
	fmt.Fprintf(w, "%sdot?flow=NAME  annotated DOT dump of a registered taskflow\n\n", Prefix)
	names := r.flowNames()
	fmt.Fprintf(w, "registered taskflows: %d\n", len(names))
	for _, name := range names {
		fmt.Fprintf(w, "  %s\n", name)
	}
}

func (r *Registry) serveMetrics(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	if !r.exec.MetricsEnabled() {
		fmt.Fprintln(w, "# scheduler metrics disabled: build the executor with executor.WithMetrics()")
		return
	}
	if err := metrics.WritePrometheus(w, r.exec); err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
	}
}

// serveFlows renders the multi-tenant flow table. Flow counters are
// always-on atomics, so this endpoint works on executors built without
// WithMetrics.
func (r *Registry) serveFlows(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	stats := r.exec.FlowStats()
	fmt.Fprintf(w, "multi-tenant flows: %d\n", len(stats))
	if len(stats) == 0 {
		fmt.Fprintln(w, "no flows registered: create them with Executor.NewFlow")
		return
	}
	for _, st := range stats {
		quota, wm := "-", "-"
		if st.MaxInFlight > 0 {
			quota = fmt.Sprint(st.MaxInFlight)
		}
		if st.MaxBacklog > 0 {
			wm = fmt.Sprint(st.MaxBacklog)
		}
		fmt.Fprintf(w,
			"%-16s class=%-11s weight=%-2d quota=%-4s watermark=%-4s backlog=%-5d in-flight=%d/%d-peak "+
				"admitted=%d released=%d rejects=%d sheds=%d pushes=%d drained=%d/%d-drains executed=%d\n",
			st.Name, st.Class, st.Weight, quota, wm, st.Backlog, st.InFlight, st.PeakInFlight,
			st.AdmittedTasks, st.ReleasedTasks, st.AdmissionRejects, st.OverloadSheds,
			st.Pushes, st.DrainedTasks, st.DrainOps, st.Executed)
	}
}

// serveLatency renders the per-flow latency quantile table from the
// always-on histograms (executor.WithLatencyHistograms).
func (r *Registry) serveLatency(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	flows, ok := r.exec.LatencyStats()
	if !ok {
		fmt.Fprintln(w, "latency histograms disabled: build the executor with executor.WithLatencyHistograms()")
		return
	}
	digests := metrics.Digest(flows)
	fmt.Fprintf(w, "per-flow latency (histogram quantiles, linear interpolation): %d sinks\n\n", len(digests))
	fmt.Fprintf(w, "%-16s %-11s %-10s %10s %10s %10s %10s %10s %10s\n",
		"flow", "class", "dimension", "count", "mean", "p50", "p90", "p99", "p999")
	for _, d := range digests {
		for _, row := range []struct {
			dim string
			q   metrics.QuantileDigest
		}{
			{"queue-wait", d.QueueWait},
			{"exec", d.Exec},
			{"end-to-end", d.EndToEnd},
		} {
			fmt.Fprintf(w, "%-16s %-11s %-10s %10d %10v %10v %10v %10v %10v\n",
				d.Flow, d.Class, row.dim, row.q.Count, row.q.Mean, row.q.P50, row.q.P90, row.q.P99, row.q.P999)
		}
	}
}

// serveFlight snapshots the always-armed flight recorder and streams it
// as Chrome trace-event JSON — the on-demand "what just happened" dump,
// with no capture session required.
func (r *Registry) serveFlight(w http.ResponseWriter, _ *http.Request) {
	tr, ok := r.exec.FlightSnapshot()
	if !ok {
		http.Error(w, "flight recorder disabled: build the executor with executor.WithFlightRecorder(0)", http.StatusConflict)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.Header().Set("Content-Disposition", `attachment; filename="taskflow_flight.json"`)
	if err := tracing.WriteTrace(w, tr); err != nil {
		// Headers are gone; the truncated body fails JSON parsing, which
		// is the strongest signal still available to the client.
		return
	}
}

func (r *Registry) traceStart(w http.ResponseWriter, _ *http.Request) {
	if !r.exec.TracingEnabled() {
		http.Error(w, "tracing disabled: build the executor with executor.WithTracing(0)", http.StatusConflict)
		return
	}
	if !r.exec.StartTrace() {
		http.Error(w, "a trace capture is already active; stop it first", http.StatusConflict)
		return
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	fmt.Fprintln(w, "trace capture started; fetch trace/stop to collect it")
}

func (r *Registry) traceStop(w http.ResponseWriter, _ *http.Request) {
	if !r.exec.TraceActive() {
		http.Error(w, "no trace capture is active; fetch trace/start first", http.StatusConflict)
		return
	}
	tr, ok := r.exec.StopTrace()
	if !ok {
		http.Error(w, "no trace capture is active; fetch trace/start first", http.StatusConflict)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.Header().Set("Content-Disposition", `attachment; filename="taskflow_trace.json"`)
	if err := tracing.WriteTrace(w, tr); err != nil {
		// Headers are gone; the truncated body fails JSON parsing, which
		// is the strongest signal still available to the client.
		return
	}
}

func (r *Registry) dot(w http.ResponseWriter, req *http.Request) {
	name := req.URL.Query().Get("flow")
	tf, ok := r.flow(name)
	if !ok {
		http.Error(w, fmt.Sprintf("unknown taskflow %q; registered: %v", name, r.flowNames()),
			http.StatusNotFound)
		return
	}
	w.Header().Set("Content-Type", "text/vnd.graphviz; charset=utf-8")
	if err := tf.DumpAnnotated(w); err != nil {
		return
	}
}

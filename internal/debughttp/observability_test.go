package debughttp

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"

	"gotaskflow/internal/core"
	"gotaskflow/internal/executor"
)

// TestLatencyAndFlightEndpoints is the integration gate for the always-on
// observability surface: /latency renders the quantile table, /flight
// streams a valid Chrome trace JSON dump of the armed recorder, and both
// report their disabled state cleanly on a bare executor.
func TestLatencyAndFlightEndpoints(t *testing.T) {
	e := executor.New(2,
		executor.WithMetrics(),
		executor.WithLatencyHistograms(),
		executor.WithFlightRecorder(0))
	defer e.Shutdown()
	tf := core.NewShared(e)
	a := tf.Emplace1(func() {}).Name("first")
	b := tf.Emplace1(func() {}).Name("second")
	a.Precede(b)
	for i := 0; i < 10; i++ {
		if err := tf.Run(); err != nil {
			t.Fatal(err)
		}
	}

	srv := httptest.NewServer(New(e).Handler())
	defer srv.Close()

	status, body := get(t, srv, "/debug/taskflow/latency")
	if status != http.StatusOK {
		t.Fatalf("latency status %d", status)
	}
	for _, want := range []string{"queue-wait", "exec", "end-to-end", "p99", "_unbound"} {
		if !strings.Contains(body, want) {
			t.Fatalf("latency table lacks %q:\n%s", want, body)
		}
	}

	// The Prometheus scrape carries the histogram series alongside the
	// counters.
	status, body = get(t, srv, "/debug/taskflow/metrics")
	if status != http.StatusOK {
		t.Fatalf("metrics status %d", status)
	}
	for _, want := range []string{
		"# TYPE gotaskflow_flow_latency_e2e_seconds histogram",
		`gotaskflow_flow_latency_e2e_seconds_bucket{flow="_unbound",class="none",le="+Inf"}`,
		"gotaskflow_flow_latency_queue_wait_seconds_count",
	} {
		if !strings.Contains(body, want) {
			t.Fatalf("metrics scrape lacks %q", want)
		}
	}

	status, body = get(t, srv, "/debug/taskflow/flight")
	if status != http.StatusOK {
		t.Fatalf("flight status %d", status)
	}
	var doc struct {
		TraceEvents []map[string]any `json:"traceEvents"`
		OtherData   map[string]any   `json:"otherData"`
	}
	if err := json.Unmarshal([]byte(body), &doc); err != nil {
		t.Fatalf("flight dump is not valid trace JSON: %v", err)
	}
	if len(doc.TraceEvents) == 0 {
		t.Fatal("flight dump holds no events")
	}
	if _, ok := doc.OtherData["droppedEvents"]; !ok {
		t.Fatal("flight dump missing droppedEvents accounting")
	}

	// Disabled paths: friendly message for /latency, 409 for /flight.
	bare := executor.New(1)
	defer bare.Shutdown()
	bsrv := httptest.NewServer(New(bare).Handler())
	defer bsrv.Close()
	if status, body = get(t, bsrv, "/debug/taskflow/latency"); status != http.StatusOK || !strings.Contains(body, "disabled") {
		t.Fatalf("bare latency = %d %q, want 200 + disabled notice", status, body)
	}
	if status, _ = get(t, bsrv, "/debug/taskflow/flight"); status != http.StatusConflict {
		t.Fatalf("bare flight status %d, want 409", status)
	}
}

// TestObservabilityEndpointsUnderConcurrency hammers the full debug
// surface while the executor is live: trace start/stop racing flight
// snapshots, /flows and /latency racing flow registration, all under
// -race. Responses must stay well-formed; start/stop may 409 when the
// race loses, which is the documented contract.
func TestObservabilityEndpointsUnderConcurrency(t *testing.T) {
	e := executor.New(4,
		executor.WithMetrics(),
		executor.WithTracing(1<<10),
		executor.WithLatencyHistograms(),
		executor.WithFlightRecorder(1<<10))
	defer e.Shutdown()
	srv := httptest.NewServer(New(e).Handler())
	defer srv.Close()

	stop := make(chan struct{})
	var workload, hammers sync.WaitGroup

	// Workload: flow-bound topologies churning while new flows register,
	// until the hammers finish.
	workload.Add(1)
	go func() {
		defer workload.Done()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			f := e.NewFlow(fmt.Sprintf("tenant-%d", i), executor.FlowConfig{Class: executor.Batch})
			tf := core.NewShared(e).SetFlow(f)
			tf.Emplace(func() {}, func() {}, func() {})
			if err := tf.Run(); err != nil {
				t.Error(err)
				return
			}
		}
	}()

	hammer := func(path string, okStatuses ...int) {
		defer hammers.Done()
		for i := 0; i < 50; i++ {
			status, _ := get(t, srv, path)
			ok := false
			for _, s := range okStatuses {
				if status == s {
					ok = true
				}
			}
			if !ok {
				t.Errorf("%s returned %d", path, status)
				return
			}
		}
	}
	hammers.Add(5)
	go hammer("/debug/taskflow/flows", http.StatusOK)
	go hammer("/debug/taskflow/latency", http.StatusOK)
	go hammer("/debug/taskflow/flight", http.StatusOK)
	go hammer("/debug/taskflow/trace/start", http.StatusOK, http.StatusConflict)
	go hammer("/debug/taskflow/trace/stop", http.StatusOK, http.StatusConflict)

	hammers.Wait()
	close(stop)
	workload.Wait()
	// A start-hammer may have left a capture active; stop it so the
	// executor shuts down with no armed session.
	e.StopTrace()
}

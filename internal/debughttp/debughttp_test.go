package debughttp

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"gotaskflow/internal/core"
	"gotaskflow/internal/executor"
)

// get fetches path from the test server and returns status and body.
func get(t *testing.T, srv *httptest.Server, path string) (int, string) {
	t.Helper()
	resp, err := http.Get(srv.URL + path)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, string(body)
}

// TestDebugEndpointLifecycle is the integration gate for the live debug
// surface: metrics scrape, a full trace start → run → stop round trip
// whose response is valid Chrome trace JSON, and the annotated DOT dump.
func TestDebugEndpointLifecycle(t *testing.T) {
	e := executor.New(2, executor.WithMetrics(), executor.WithTracing(1<<12))
	defer e.Shutdown()
	tf := core.NewShared(e).SetName("debugflow").CollectRunStats(true)
	a := tf.Emplace1(func() {}).Name("first")
	b := tf.Emplace1(func() {}).Name("second")
	a.Precede(b)

	reg := New(e).Register("debugflow", tf)
	srv := httptest.NewServer(reg.Handler())
	defer srv.Close()

	// One run before the scrape so the counters are non-zero.
	if err := tf.Run(); err != nil {
		t.Fatal(err)
	}

	status, body := get(t, srv, "/debug/taskflow/")
	if status != http.StatusOK {
		t.Fatalf("index status %d", status)
	}
	for _, want := range []string{"metrics", "trace/start", "trace/stop", "dot?flow=NAME", "debugflow"} {
		if !strings.Contains(body, want) {
			t.Fatalf("index page lacks %q:\n%s", want, body)
		}
	}

	status, body = get(t, srv, "/debug/taskflow/metrics")
	if status != http.StatusOK {
		t.Fatalf("metrics status %d", status)
	}
	for _, want := range []string{
		"# TYPE gotaskflow_executed_total counter",
		"gotaskflow_executed_total{worker=\"0\"}",
		"gotaskflow_wakes_precise_total",
	} {
		if !strings.Contains(body, want) {
			t.Fatalf("metrics scrape lacks %q:\n%s", want, body)
		}
	}

	// trace/stop before any start is a client error.
	if status, _ = get(t, srv, "/debug/taskflow/trace/stop"); status != http.StatusConflict {
		t.Fatalf("premature trace/stop status %d, want 409", status)
	}

	if status, _ = get(t, srv, "/debug/taskflow/trace/start"); status != http.StatusOK {
		t.Fatalf("trace/start status %d", status)
	}
	// Double start conflicts.
	if status, _ = get(t, srv, "/debug/taskflow/trace/start"); status != http.StatusConflict {
		t.Fatalf("double trace/start status %d, want 409", status)
	}

	if err := tf.Run(); err != nil {
		t.Fatal(err)
	}

	status, body = get(t, srv, "/debug/taskflow/trace/stop")
	if status != http.StatusOK {
		t.Fatalf("trace/stop status %d", status)
	}
	var doc struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal([]byte(body), &doc); err != nil {
		t.Fatalf("trace/stop body is not valid JSON: %v", err)
	}
	spans := map[string]bool{}
	for _, ev := range doc.TraceEvents {
		if ev["ph"] == "X" && ev["cat"] == "task" {
			spans[ev["name"].(string)] = true
		}
	}
	if !spans["first"] || !spans["second"] {
		t.Fatalf("trace lacks the named task spans: %v", spans)
	}

	status, body = get(t, srv, "/debug/taskflow/dot?flow=debugflow")
	if status != http.StatusOK {
		t.Fatalf("dot status %d", status)
	}
	for _, want := range []string{"digraph", "first", "second", "×"} {
		if !strings.Contains(body, want) {
			t.Fatalf("dot dump lacks %q:\n%s", want, body)
		}
	}
	// Single registered flow: the name may be omitted.
	if status, _ = get(t, srv, "/debug/taskflow/dot"); status != http.StatusOK {
		t.Fatalf("nameless dot status %d", status)
	}
	if status, _ = get(t, srv, "/debug/taskflow/dot?flow=nope"); status != http.StatusNotFound {
		t.Fatalf("unknown-flow dot status %d, want 404", status)
	}

	if status, _ = get(t, srv, "/debug/taskflow/bogus"); status != http.StatusNotFound {
		t.Fatalf("unknown endpoint status %d, want 404", status)
	}
}

// TestDebugEndpointsDisabledExecutor covers an executor built without
// metrics or tracing: metrics serves a comment, trace/start conflicts.
func TestDebugEndpointsDisabledExecutor(t *testing.T) {
	e := executor.New(1)
	defer e.Shutdown()
	srv := httptest.NewServer(New(e).Handler())
	defer srv.Close()

	status, body := get(t, srv, "/debug/taskflow/metrics")
	if status != http.StatusOK || !strings.Contains(body, "disabled") {
		t.Fatalf("disabled metrics scrape: status %d body %q", status, body)
	}
	if status, _ = get(t, srv, "/debug/taskflow/trace/start"); status != http.StatusConflict {
		t.Fatalf("trace/start without WithTracing: status %d, want 409", status)
	}
}

// TestListenAndServe exercises the dedicated-listener helper end to end
// over a real TCP socket.
func TestListenAndServe(t *testing.T) {
	e := executor.New(1, executor.WithMetrics())
	defer e.Shutdown()
	addr, stop, err := New(e).ListenAndServe("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer stop() //nolint:errcheck

	resp, err := http.Get("http://" + addr + "/debug/taskflow/")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || !strings.Contains(string(body), "gotaskflow debug endpoints") {
		t.Fatalf("debug listener: status %d body %q", resp.StatusCode, body)
	}
}

// TestFlowsEndpoint: the multi-tenant flow table serves with and without
// registered flows, on a metrics-disabled executor (flow counters are
// always on).
func TestFlowsEndpoint(t *testing.T) {
	e := executor.New(1)
	defer e.Shutdown()
	reg := New(e)
	srv := httptest.NewServer(reg.Handler())
	defer srv.Close()

	status, body := get(t, srv, "/debug/taskflow/flows")
	if status != http.StatusOK {
		t.Fatalf("flows status %d", status)
	}
	if !strings.Contains(body, "no flows registered") {
		t.Fatalf("empty flow table unexpected:\n%s", body)
	}

	f := e.NewFlow("tenant-a", executor.FlowConfig{Class: executor.Interactive, Weight: 2, MaxInFlight: 8})
	tf := core.NewShared(e).SetFlow(f)
	tf.Emplace1(func() {})
	tf.Emplace1(func() {})
	if err := tf.Run(); err != nil {
		t.Fatal(err)
	}

	status, body = get(t, srv, "/debug/taskflow/flows")
	if status != http.StatusOK {
		t.Fatalf("flows status %d", status)
	}
	for _, want := range []string{
		"multi-tenant flows: 1",
		"tenant-a",
		"class=interactive",
		"weight=2",
		"quota=8",
		"admitted=2 released=2",
	} {
		if !strings.Contains(body, want) {
			t.Fatalf("flow table lacks %q:\n%s", want, body)
		}
	}

	// The index advertises the endpoint.
	_, index := get(t, srv, "/debug/taskflow/")
	if !strings.Contains(index, "flows") || !strings.Contains(index, "1 flows registered") {
		t.Fatalf("index page lacks flows endpoint line:\n%s", index)
	}
}

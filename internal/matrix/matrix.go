// Package matrix provides the dense float64 kernels the DNN experiment of
// the Cpp-Taskflow paper needs (Section IV-C). The paper encapsulates all
// matrix operations in standalone Eigen-3.3.7 calls; this package is the
// stdlib substitute. Operations are single-threaded on purpose — the
// experiment measures the tasking layer's ability to exploit coarse-grained
// parallelism across operations, not intra-operation parallelism.
package matrix

import (
	"fmt"
	"math"
	"math/rand"
)

// Matrix is a dense row-major matrix.
type Matrix struct {
	Rows, Cols int
	Data       []float64
}

// New returns a zero matrix of the given shape.
func New(rows, cols int) *Matrix {
	if rows < 0 || cols < 0 {
		panic("matrix: negative dimension")
	}
	return &Matrix{Rows: rows, Cols: cols, Data: make([]float64, rows*cols)}
}

// Randn returns a matrix with N(0, std) entries from a seeded generator.
func Randn(rows, cols int, std float64, seed int64) *Matrix {
	rng := rand.New(rand.NewSource(seed))
	m := New(rows, cols)
	for i := range m.Data {
		m.Data[i] = rng.NormFloat64() * std
	}
	return m
}

// At returns m[i,j].
func (m *Matrix) At(i, j int) float64 { return m.Data[i*m.Cols+j] }

// Set assigns m[i,j] = v.
func (m *Matrix) Set(i, j int, v float64) { m.Data[i*m.Cols+j] = v }

// Row returns a view of row i.
func (m *Matrix) Row(i int) []float64 { return m.Data[i*m.Cols : (i+1)*m.Cols] }

// Clone returns a deep copy.
func (m *Matrix) Clone() *Matrix {
	c := New(m.Rows, m.Cols)
	copy(c.Data, m.Data)
	return c
}

// CopyFrom copies src into m (shapes must match).
func (m *Matrix) CopyFrom(src *Matrix) {
	if m.Rows != src.Rows || m.Cols != src.Cols {
		panic(shapeErr("CopyFrom", m, src))
	}
	copy(m.Data, src.Data)
}

// Zero clears all entries.
func (m *Matrix) Zero() {
	for i := range m.Data {
		m.Data[i] = 0
	}
}

func shapeErr(op string, a, b *Matrix) string {
	return fmt.Sprintf("matrix: %s shape mismatch (%dx%d vs %dx%d)", op, a.Rows, a.Cols, b.Rows, b.Cols)
}

// MulTo computes dst = a·b. dst must be preallocated with shape
// (a.Rows × b.Cols) and must not alias a or b. The i-k-j loop order keeps
// the inner loop streaming over contiguous rows.
func MulTo(dst, a, b *Matrix) {
	if a.Cols != b.Rows || dst.Rows != a.Rows || dst.Cols != b.Cols {
		panic(fmt.Sprintf("matrix: MulTo shapes %dx%d · %dx%d -> %dx%d",
			a.Rows, a.Cols, b.Rows, b.Cols, dst.Rows, dst.Cols))
	}
	dst.Zero()
	for i := 0; i < a.Rows; i++ {
		arow := a.Row(i)
		drow := dst.Row(i)
		for k := 0; k < a.Cols; k++ {
			aik := arow[k]
			if aik == 0 {
				continue
			}
			brow := b.Row(k)
			for j := range brow {
				drow[j] += aik * brow[j]
			}
		}
	}
}

// MulATBTo computes dst = aᵀ·b without materializing the transpose.
func MulATBTo(dst, a, b *Matrix) {
	if a.Rows != b.Rows || dst.Rows != a.Cols || dst.Cols != b.Cols {
		panic(fmt.Sprintf("matrix: MulATBTo shapes %dx%d ᵀ· %dx%d -> %dx%d",
			a.Rows, a.Cols, b.Rows, b.Cols, dst.Rows, dst.Cols))
	}
	dst.Zero()
	for r := 0; r < a.Rows; r++ {
		arow := a.Row(r)
		brow := b.Row(r)
		for i, aval := range arow {
			if aval == 0 {
				continue
			}
			drow := dst.Row(i)
			for j := range brow {
				drow[j] += aval * brow[j]
			}
		}
	}
}

// MulABTTo computes dst = a·bᵀ without materializing the transpose.
func MulABTTo(dst, a, b *Matrix) {
	if a.Cols != b.Cols || dst.Rows != a.Rows || dst.Cols != b.Rows {
		panic(fmt.Sprintf("matrix: MulABTTo shapes %dx%d · %dx%dᵀ -> %dx%d",
			a.Rows, a.Cols, b.Rows, b.Cols, dst.Rows, dst.Cols))
	}
	for i := 0; i < a.Rows; i++ {
		arow := a.Row(i)
		drow := dst.Row(i)
		for j := 0; j < b.Rows; j++ {
			brow := b.Row(j)
			var s float64
			for k := range arow {
				s += arow[k] * brow[k]
			}
			drow[j] = s
		}
	}
}

// AddScaled computes m += alpha·g (the SGD update kernel).
func (m *Matrix) AddScaled(alpha float64, g *Matrix) {
	if m.Rows != g.Rows || m.Cols != g.Cols {
		panic(shapeErr("AddScaled", m, g))
	}
	for i := range m.Data {
		m.Data[i] += alpha * g.Data[i]
	}
}

// AddRowVec adds the 1×Cols row vector b to every row of m.
func (m *Matrix) AddRowVec(b *Matrix) {
	if b.Rows != 1 || b.Cols != m.Cols {
		panic(shapeErr("AddRowVec", m, b))
	}
	for i := 0; i < m.Rows; i++ {
		row := m.Row(i)
		for j := range row {
			row[j] += b.Data[j]
		}
	}
}

// ColSumTo computes the 1×Cols column sums of m into dst.
func ColSumTo(dst, m *Matrix) {
	if dst.Rows != 1 || dst.Cols != m.Cols {
		panic(shapeErr("ColSumTo", dst, m))
	}
	dst.Zero()
	for i := 0; i < m.Rows; i++ {
		row := m.Row(i)
		for j := range row {
			dst.Data[j] += row[j]
		}
	}
}

// Sigmoid applies the logistic function elementwise in place.
func (m *Matrix) Sigmoid() {
	for i, v := range m.Data {
		m.Data[i] = 1 / (1 + math.Exp(-v))
	}
}

// SigmoidGradFrom computes m[i] *= a[i]·(1-a[i]) where a holds sigmoid
// activations — the backprop Hadamard with σ'(z) expressed via σ(z).
func (m *Matrix) SigmoidGradFrom(a *Matrix) {
	if m.Rows != a.Rows || m.Cols != a.Cols {
		panic(shapeErr("SigmoidGradFrom", m, a))
	}
	for i, av := range a.Data {
		m.Data[i] *= av * (1 - av)
	}
}

// SoftmaxRows applies a numerically stable softmax to every row in place.
func (m *Matrix) SoftmaxRows() {
	for i := 0; i < m.Rows; i++ {
		row := m.Row(i)
		maxv := row[0]
		for _, v := range row[1:] {
			if v > maxv {
				maxv = v
			}
		}
		var sum float64
		for j, v := range row {
			e := math.Exp(v - maxv)
			row[j] = e
			sum += e
		}
		for j := range row {
			row[j] /= sum
		}
	}
}

// CrossEntropy returns the mean cross-entropy of softmax probabilities
// against one-hot labels.
func CrossEntropy(probs *Matrix, labels []uint8) float64 {
	var loss float64
	for i := 0; i < probs.Rows; i++ {
		p := probs.At(i, int(labels[i]))
		if p < 1e-15 {
			p = 1e-15
		}
		loss -= math.Log(p)
	}
	return loss / float64(probs.Rows)
}

// SoftmaxCrossEntropyGrad overwrites m (softmax probabilities) with the
// batch-mean gradient of the cross-entropy loss: (p - onehot) / batch.
func (m *Matrix) SoftmaxCrossEntropyGrad(labels []uint8) {
	inv := 1 / float64(m.Rows)
	for i := 0; i < m.Rows; i++ {
		row := m.Row(i)
		row[labels[i]] -= 1
		for j := range row {
			row[j] *= inv
		}
	}
}

// Equal reports elementwise equality within eps.
func Equal(a, b *Matrix, eps float64) bool {
	if a.Rows != b.Rows || a.Cols != b.Cols {
		return false
	}
	for i := range a.Data {
		if math.Abs(a.Data[i]-b.Data[i]) > eps {
			return false
		}
	}
	return true
}

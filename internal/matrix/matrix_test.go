package matrix

import (
	"math"
	"testing"
	"testing/quick"
)

func naiveMul(a, b *Matrix) *Matrix {
	d := New(a.Rows, b.Cols)
	for i := 0; i < a.Rows; i++ {
		for j := 0; j < b.Cols; j++ {
			var s float64
			for k := 0; k < a.Cols; k++ {
				s += a.At(i, k) * b.At(k, j)
			}
			d.Set(i, j, s)
		}
	}
	return d
}

func fill(m *Matrix, seed int64) *Matrix {
	x := uint64(seed)*2654435761 + 1
	for i := range m.Data {
		x = x*6364136223846793005 + 1442695040888963407
		m.Data[i] = float64(int64(x>>33))/float64(1<<30) - 1
	}
	return m
}

func TestMulToMatchesNaive(t *testing.T) {
	a := fill(New(7, 5), 1)
	b := fill(New(5, 9), 2)
	d := New(7, 9)
	MulTo(d, a, b)
	if !Equal(d, naiveMul(a, b), 1e-12) {
		t.Fatal("MulTo != naive")
	}
}

func TestQuickMulAgainstNaive(t *testing.T) {
	f := func(r1, c1, c2 uint8, seed int64) bool {
		m, k, n := int(r1%8)+1, int(c1%8)+1, int(c2%8)+1
		a := fill(New(m, k), seed)
		b := fill(New(k, n), seed+1)
		d := New(m, n)
		MulTo(d, a, b)
		return Equal(d, naiveMul(a, b), 1e-10)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestMulATB(t *testing.T) {
	a := fill(New(6, 4), 3) // aᵀ is 4x6
	b := fill(New(6, 5), 4)
	d := New(4, 5)
	MulATBTo(d, a, b)
	at := New(4, 6)
	for i := 0; i < 6; i++ {
		for j := 0; j < 4; j++ {
			at.Set(j, i, a.At(i, j))
		}
	}
	if !Equal(d, naiveMul(at, b), 1e-12) {
		t.Fatal("MulATBTo != naive(aᵀ·b)")
	}
}

func TestMulABT(t *testing.T) {
	a := fill(New(6, 4), 5)
	b := fill(New(7, 4), 6) // bᵀ is 4x7
	d := New(6, 7)
	MulABTTo(d, a, b)
	bt := New(4, 7)
	for i := 0; i < 7; i++ {
		for j := 0; j < 4; j++ {
			bt.Set(j, i, b.At(i, j))
		}
	}
	if !Equal(d, naiveMul(a, bt), 1e-12) {
		t.Fatal("MulABTTo != naive(a·bᵀ)")
	}
}

func TestShapePanics(t *testing.T) {
	cases := []func(){
		func() { MulTo(New(2, 2), New(2, 3), New(2, 2)) },
		func() { MulATBTo(New(2, 2), New(3, 2), New(4, 2)) },
		func() { MulABTTo(New(2, 2), New(2, 3), New(2, 4)) },
		func() { New(2, 2).AddScaled(1, New(3, 2)) },
		func() { New(2, 2).AddRowVec(New(1, 3)) },
		func() { ColSumTo(New(1, 3), New(2, 2)) },
		func() { New(2, 2).SigmoidGradFrom(New(2, 3)) },
		func() { New(2, 2).CopyFrom(New(2, 3)) },
		func() { New(-1, 2) },
	}
	for i, fn := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("case %d did not panic", i)
				}
			}()
			fn()
		}()
	}
}

func TestAddScaled(t *testing.T) {
	m := fill(New(3, 3), 7)
	g := fill(New(3, 3), 8)
	want := New(3, 3)
	for i := range want.Data {
		want.Data[i] = m.Data[i] - 0.5*g.Data[i]
	}
	m.AddScaled(-0.5, g)
	if !Equal(m, want, 1e-15) {
		t.Fatal("AddScaled wrong")
	}
}

func TestAddRowVecAndColSum(t *testing.T) {
	m := New(3, 2)
	b := New(1, 2)
	b.Data[0], b.Data[1] = 10, 20
	m.AddRowVec(b)
	for i := 0; i < 3; i++ {
		if m.At(i, 0) != 10 || m.At(i, 1) != 20 {
			t.Fatal("AddRowVec wrong")
		}
	}
	s := New(1, 2)
	ColSumTo(s, m)
	if s.Data[0] != 30 || s.Data[1] != 60 {
		t.Fatalf("ColSumTo = %v", s.Data)
	}
}

func TestSigmoid(t *testing.T) {
	m := New(1, 3)
	m.Data = []float64{0, 100, -100}
	m.Sigmoid()
	if math.Abs(m.Data[0]-0.5) > 1e-12 || m.Data[1] < 0.999 || m.Data[2] > 0.001 {
		t.Fatalf("Sigmoid = %v", m.Data)
	}
}

func TestSigmoidGradFrom(t *testing.T) {
	a := New(1, 2)
	a.Data = []float64{0.5, 0.9}
	d := New(1, 2)
	d.Data = []float64{2, 2}
	d.SigmoidGradFrom(a)
	if math.Abs(d.Data[0]-2*0.25) > 1e-12 || math.Abs(d.Data[1]-2*0.09) > 1e-12 {
		t.Fatalf("SigmoidGradFrom = %v", d.Data)
	}
}

func TestSoftmaxRows(t *testing.T) {
	m := New(2, 3)
	m.Data = []float64{1, 2, 3, 1000, 1000, 1000}
	m.SoftmaxRows()
	for i := 0; i < 2; i++ {
		var sum float64
		for j := 0; j < 3; j++ {
			v := m.At(i, j)
			if v <= 0 || v >= 1.0000001 {
				t.Fatalf("softmax out of range: %v", v)
			}
			sum += v
		}
		if math.Abs(sum-1) > 1e-12 {
			t.Fatalf("row %d sums to %v", i, sum)
		}
	}
	if !(m.At(0, 2) > m.At(0, 1) && m.At(0, 1) > m.At(0, 0)) {
		t.Fatal("softmax not monotone")
	}
	if math.Abs(m.At(1, 0)-1.0/3) > 1e-12 {
		t.Fatal("uniform row not uniform after softmax")
	}
}

// Property: softmax rows always sum to 1, even for extreme inputs.
func TestQuickSoftmaxNormalized(t *testing.T) {
	f := func(vals [6]int32) bool {
		m := New(2, 3)
		for i, v := range vals {
			m.Data[i] = float64(v) / 1000
		}
		m.SoftmaxRows()
		for i := 0; i < 2; i++ {
			var sum float64
			for j := 0; j < 3; j++ {
				sum += m.At(i, j)
			}
			if math.Abs(sum-1) > 1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestCrossEntropyAndGrad(t *testing.T) {
	p := New(2, 3)
	p.Data = []float64{0.7, 0.2, 0.1, 0.1, 0.8, 0.1}
	labels := []uint8{0, 1}
	loss := CrossEntropy(p, labels)
	want := -(math.Log(0.7) + math.Log(0.8)) / 2
	if math.Abs(loss-want) > 1e-12 {
		t.Fatalf("CrossEntropy = %v, want %v", loss, want)
	}
	g := p.Clone()
	g.SoftmaxCrossEntropyGrad(labels)
	if math.Abs(g.At(0, 0)-(0.7-1)/2) > 1e-12 {
		t.Fatalf("grad[0,0] = %v", g.At(0, 0))
	}
	if math.Abs(g.At(1, 2)-0.1/2) > 1e-12 {
		t.Fatalf("grad[1,2] = %v", g.At(1, 2))
	}
}

func TestRandnDeterministic(t *testing.T) {
	a := Randn(4, 4, 0.1, 42)
	b := Randn(4, 4, 0.1, 42)
	if !Equal(a, b, 0) {
		t.Fatal("Randn not deterministic")
	}
	c := Randn(4, 4, 0.1, 43)
	if Equal(a, c, 0) {
		t.Fatal("Randn ignores seed")
	}
}

func TestCloneIndependent(t *testing.T) {
	a := fill(New(2, 2), 1)
	b := a.Clone()
	b.Data[0] = 999
	if a.Data[0] == 999 {
		t.Fatal("Clone shares storage")
	}
	a.CopyFrom(b)
	if a.Data[0] != 999 {
		t.Fatal("CopyFrom failed")
	}
}

package experiments

import (
	"fmt"
	"io"
	"path/filepath"

	"gotaskflow/internal/bench"
	"gotaskflow/internal/dnn"
	"gotaskflow/internal/mnist"
	"gotaskflow/internal/sloc"
)

// Table3 reproduces "Software Costs Comparison on Machine Learning": LOC
// and cyclomatic complexity of the four training implementations. The
// paper's development-time column is a human measurement and cannot be
// re-measured mechanically; the relative LOC/CC costs are the
// reproducible part.
func Table3(w io.Writer, srcRoot string) error {
	dir := filepath.Join(srcRoot, "internal", "dnn")
	seq, err := sloc.AnalyzeFile(filepath.Join(dir, "dnn.go"))
	if err != nil {
		return err
	}
	tf, err := sloc.AnalyzeFile(filepath.Join(dir, "train_taskflow.go"))
	if err != nil {
		return err
	}
	fg, err := sloc.AnalyzeFile(filepath.Join(dir, "train_flowgraph.go"))
	if err != nil {
		return err
	}
	om, err := sloc.AnalyzeFile(filepath.Join(dir, "train_omp.go"))
	if err != nil {
		return err
	}
	t := bench.NewTable(
		"Table III: software costs of the DNN decompositions (Go sources)",
		"backend", "loc", "cc")
	tfL, tfC := backendCost(tf, "TrainTaskflow", "numSlots", "newSlotStore")
	fgL, fgC := backendCost(fg, "TrainFlowGraph")
	omL, omC := backendCost(om, "TrainOMP")
	sqL, sqC := backendCost(seq, "TrainSequential")
	t.Row("Cpp-Taskflow", tfL, tfC)
	t.Row("OpenMP", omL+tfLHelpers(tf), omC)
	t.Row("TBB", fgL+tfLHelpers(tf), fgC)
	t.Row("Sequential", sqL, sqC)
	return t.Fprint(w)
}

// tfLHelpers returns the LOC of the slot-store helpers defined alongside
// the taskflow backend but shared by all parallel backends, so each
// parallel backend is charged for them once.
func tfLHelpers(tf *sloc.FileMetrics) int {
	loc, _ := backendCost(tf, "numSlots", "newSlotStore")
	return loc
}

// MLConfig mirrors the paper's Section IV-C hyperparameters at a
// configurable dataset scale (the paper uses the 60k-image MNIST set).
func MLConfig(sizes []int, epochs, datasetLen int) (dnn.Config, *mnist.Dataset) {
	cfg := dnn.Config{
		Sizes:     sizes,
		Epochs:    epochs,
		BatchSize: 100,
		LR:        0.001,
		Seed:      2019,
	}
	return cfg, mnist.Synthetic(datasetLen, cfg.Seed)
}

// Fig12Epochs reproduces the top half of Figure 12: training runtime
// versus epoch count at a fixed worker count, for both architectures.
func Fig12Epochs(w io.Writer, sizes []int, label string, epochCounts []int, datasetLen, workers int) error {
	t := bench.NewTable(
		fmt.Sprintf("Figure 12 (top): %s runtime vs epochs (%d workers, %d images)",
			label, workers, datasetLen),
		"epochs", "tasks", "taskflow_ms", "tbb_ms", "omp_ms", "seq_ms")
	for _, epochs := range epochCounts {
		cfg, data := MLConfig(sizes, epochs, datasetLen)
		dTF := bench.Measure(func() { dnn.TrainTaskflow(cfg, data, workers) })
		dFG := bench.Measure(func() { dnn.TrainFlowGraph(cfg, data, workers) })
		dOM := bench.Measure(func() { dnn.TrainOMP(cfg, data, workers) })
		dSQ := bench.Measure(func() { dnn.TrainSequential(cfg, data) })
		t.Row(epochs, epochs*cfg.NumTasksPerEpoch(datasetLen), dTF, dFG, dOM, dSQ)
	}
	return t.Fprint(w)
}

// Fig12CPU reproduces the bottom half of Figure 12: training runtime
// versus worker count at a fixed epoch count.
func Fig12CPU(w io.Writer, sizes []int, label string, workerCounts []int, epochs, datasetLen int) error {
	t := bench.NewTable(
		fmt.Sprintf("Figure 12 (bottom): %s runtime vs workers (%d epochs, %d images)",
			label, epochs, datasetLen),
		"workers", "taskflow_ms", "tbb_ms", "omp_ms")
	for _, n := range workerCounts {
		cfg, data := MLConfig(sizes, epochs, datasetLen)
		dTF := bench.Measure(func() { dnn.TrainTaskflow(cfg, data, n) })
		dFG := bench.Measure(func() { dnn.TrainFlowGraph(cfg, data, n) })
		dOM := bench.Measure(func() { dnn.TrainOMP(cfg, data, n) })
		t.Row(n, dTF, dFG, dOM)
	}
	return t.Fprint(w)
}

// Package experiments regenerates every table and figure of the
// Cpp-Taskflow paper's evaluation (Section IV) from this repository's
// implementations. Each experiment is a library function that writes a
// paper-style table to an io.Writer; the cmd/ binaries are thin wrappers,
// and EXPERIMENTS.md records a captured run against the paper's numbers.
package experiments

import (
	"fmt"
	"os"
	"path/filepath"
	"runtime"

	"gotaskflow/internal/sloc"
)

// SrcRoot locates the module root (the directory containing go.mod) by
// walking up from the working directory, so the software-cost experiments
// can analyze this repository's own sources regardless of where the
// binary is invoked.
func SrcRoot() (string, error) {
	dir, err := os.Getwd()
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", fmt.Errorf("experiments: go.mod not found above working directory")
		}
		dir = parent
	}
}

// DefaultWorkers returns the worker count used when a figure calls for a
// fixed CPU count larger than the machine (the paper uses 8 or 16 CPUs;
// we clamp to the hardware and report what was used).
func DefaultWorkers(paper int) int {
	n := runtime.NumCPU()
	if paper < n {
		return paper
	}
	return n
}

// WorkerSweep returns the worker counts for a CPU-scalability sweep:
// 1, 2, 4, ... up to max, always including max.
func WorkerSweep(max int) []int {
	if max < 1 {
		max = 1
	}
	var out []int
	for w := 1; w < max; w *= 2 {
		out = append(out, w)
	}
	return append(out, max)
}

// backendCost sums LOC and CC over a named subset of a file's functions —
// the per-backend attribution used by Tables I and III, where several
// backend implementations share one source file.
func backendCost(fm *sloc.FileMetrics, names ...string) (loc, cc int) {
	want := map[string]bool{}
	for _, n := range names {
		want[n] = true
	}
	for _, f := range fm.Funcs {
		if want[f.Name] {
			loc += f.LOC
			cc += f.CC
		}
	}
	return loc, cc
}

package experiments

import (
	"io"
	"path/filepath"
	"time"

	"gotaskflow/internal/bench"
	"gotaskflow/internal/graphgen"
	"gotaskflow/internal/sloc"
	"gotaskflow/internal/traversal"
	"gotaskflow/internal/wavefront"
)

// Table1 reproduces "Software Costs Comparison on Micro-benchmarks":
// LOC and cyclomatic complexity of the wavefront and graph-traversal
// implementations per backend, measured on this repository's Go sources
// with per-function attribution plus the kernels shared by all backends.
func Table1(w io.Writer, srcRoot string) error {
	wf, err := sloc.AnalyzeFile(filepath.Join(srcRoot, "internal", "wavefront", "wavefront.go"))
	if err != nil {
		return err
	}
	tv, err := sloc.AnalyzeFile(filepath.Join(srcRoot, "internal", "traversal", "traversal.go"))
	if err != nil {
		return err
	}
	t := bench.NewTable(
		"Table I: software costs on micro-benchmarks (LOC / CC per backend, Go sources)",
		"benchmark", "taskflow_loc", "taskflow_cc", "omp_loc", "omp_cc", "tbb_loc", "tbb_cc", "seq_loc", "seq_cc")

	wfShared := []string{"kernel", "grid"}
	row := func(name string, fm *sloc.FileMetrics, shared []string, extraOMP ...string) {
		tfL, tfC := backendCost(fm, append([]string{"Taskflow", "taskflowOn"}, shared...)...)
		ompL, ompC := backendCost(fm, append(append([]string{"OMP"}, shared...), extraOMP...)...)
		tbbL, tbbC := backendCost(fm, append([]string{"FlowGraph"}, shared...)...)
		seqL, seqC := backendCost(fm, append([]string{"Sequential"}, shared...)...)
		t.Row(name, tfL, tfC, ompL, ompC, tbbL, tbbC, seqL, seqC)
	}
	row("Wavefront", wf, wfShared, "edgeToken")
	row("GraphTraversal", tv, []string{"kernel", "preds", "visit", "checksum"}, "edgeToken")
	return t.Fprint(w)
}

// Fig7SizeSweep reproduces the top half of Figure 7: runtime versus
// problem size for the three libraries at a fixed worker count.
// Wavefront sizes are matrix edge lengths in blocks (tasks = m²);
// traversal sizes are node counts.
func Fig7SizeSweep(w io.Writer, workers int, wavefrontSizes, traversalSizes []int, reps int) error {
	if len(wavefrontSizes) > 0 {
		t := bench.NewTable(
			"Figure 7 (top-left): wavefront runtime vs size",
			"blocks", "tasks", "taskflow_ms", "tbb_ms", "omp_ms", "seq_ms")
		for _, m := range wavefrontSizes {
			m := m
			tf := bench.Best(reps, func() { wavefront.Taskflow(m, wavefront.Spin, workers) })
			fg := bench.Best(reps, func() { wavefront.FlowGraph(m, wavefront.Spin, workers) })
			om := bench.Best(reps, func() { wavefront.OMP(m, wavefront.Spin, workers) })
			sq := bench.Best(reps, func() { wavefront.Sequential(m, wavefront.Spin) })
			t.Row(m, m*m, tf, fg, om, sq)
		}
		if err := t.Fprint(w); err != nil {
			return err
		}
	}
	if len(traversalSizes) == 0 {
		return nil
	}
	t2 := bench.NewTable(
		"Figure 7 (top-right): graph traversal runtime vs size",
		"nodes", "edges", "taskflow_ms", "tbb_ms", "omp_ms", "seq_ms")
	for _, n := range traversalSizes {
		d := graphgen.Random(n, graphgen.Config{MaxIn: 4, MaxOut: 4, Seed: 2019})
		tf := bench.Best(reps, func() { traversal.Taskflow(d, traversal.Spin, workers) })
		fg := bench.Best(reps, func() { traversal.FlowGraph(d, traversal.Spin, workers) })
		om := bench.Best(reps, func() { traversal.OMP(d, traversal.Spin, workers) })
		sq := bench.Best(reps, func() { traversal.Sequential(d, traversal.Spin) })
		t2.Row(n, d.NumEdges(), tf, fg, om, sq)
	}
	return t2.Fprint(w)
}

// Fig7CPUSweep reproduces the bottom half of Figure 7: runtime versus
// worker count at the largest problem size, Cpp-Taskflow versus TBB (the
// paper skips OpenMP here because it trails both).
func Fig7CPUSweep(w io.Writer, workerCounts []int, wavefrontSize, traversalSize, reps int) error {
	if wavefrontSize > 0 {
		t := bench.NewTable(
			"Figure 7 (bottom-left): wavefront runtime vs workers",
			"workers", "taskflow_ms", "tbb_ms")
		for _, n := range workerCounts {
			n := n
			tf := bench.Best(reps, func() { wavefront.Taskflow(wavefrontSize, wavefront.Spin, n) })
			fg := bench.Best(reps, func() { wavefront.FlowGraph(wavefrontSize, wavefront.Spin, n) })
			t.Row(n, tf, fg)
		}
		if err := t.Fprint(w); err != nil {
			return err
		}
	}
	if traversalSize <= 0 {
		return nil
	}
	d := graphgen.Random(traversalSize, graphgen.Config{MaxIn: 4, MaxOut: 4, Seed: 2019})
	t2 := bench.NewTable(
		"Figure 7 (bottom-right): graph traversal runtime vs workers",
		"workers", "taskflow_ms", "tbb_ms")
	for _, n := range workerCounts {
		n := n
		tf := bench.Best(reps, func() { traversal.Taskflow(d, traversal.Spin, n) })
		fg := bench.Best(reps, func() { traversal.FlowGraph(d, traversal.Spin, n) })
		t2.Row(n, tf, fg)
	}
	return t2.Fprint(w)
}

// MeasureOnce is a tiny helper for smoke tests: runs and times one
// backend invocation of each micro-benchmark.
func MeasureOnce(workers int) (wfTaskflow, tvTaskflow time.Duration) {
	wfTaskflow = bench.Measure(func() { wavefront.Taskflow(16, wavefront.Spin, workers) })
	d := graphgen.Random(1000, graphgen.Config{Seed: 1})
	tvTaskflow = bench.Measure(func() { traversal.Taskflow(d, traversal.Spin, workers) })
	return
}

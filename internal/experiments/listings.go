package experiments

import (
	"io"

	"gotaskflow/internal/bench"
	"gotaskflow/internal/listings"
	"gotaskflow/internal/sloc"
)

// ListingsTable reproduces the programmability comparison of the paper's
// Listings 3-5 (static Figure-2 graph) and 7-8 (dynamic Figure-4 graph):
// LOC and token counts of the same graph written against each API.
func ListingsTable(w io.Writer) error {
	t := bench.NewTable(
		"Listings 3-5 and 7-8: LOC and tokens for the same graph per API (Go translations)",
		"figure", "library", "loc", "tokens")
	for _, l := range append(listings.Static(), listings.Dynamic()...) {
		fm, err := sloc.AnalyzeSource(l.Name+".go", []byte(l.Source))
		if err != nil {
			return err
		}
		t.Row(l.Figure, l.Name, fm.LOC, sloc.CountTokens([]byte(l.Source)))
	}
	return t.Fprint(w)
}

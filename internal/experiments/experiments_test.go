package experiments

import (
	"strings"
	"testing"
)

func TestSrcRoot(t *testing.T) {
	root, err := SrcRoot()
	if err != nil {
		t.Fatal(err)
	}
	if root == "" {
		t.Fatal("empty root")
	}
}

func TestDefaultWorkersAndSweep(t *testing.T) {
	if DefaultWorkers(1) != 1 {
		t.Fatal("DefaultWorkers(1)")
	}
	sweep := WorkerSweep(8)
	want := []int{1, 2, 4, 8}
	if len(sweep) != len(want) {
		t.Fatalf("sweep = %v", sweep)
	}
	for i := range want {
		if sweep[i] != want[i] {
			t.Fatalf("sweep = %v, want %v", sweep, want)
		}
	}
	if s := WorkerSweep(3); s[len(s)-1] != 3 || s[0] != 1 {
		t.Fatalf("WorkerSweep(3) = %v", s)
	}
	if s := WorkerSweep(0); len(s) != 1 || s[0] != 1 {
		t.Fatalf("WorkerSweep(0) = %v", s)
	}
}

func TestTable1(t *testing.T) {
	root, err := SrcRoot()
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	if err := Table1(&sb, root); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"Wavefront", "GraphTraversal", "taskflow_loc"} {
		if !strings.Contains(out, want) {
			t.Fatalf("Table1 missing %q:\n%s", want, out)
		}
	}
	if len(strings.Split(strings.TrimSpace(out), "\n")) != 4 {
		t.Fatalf("Table1 row count wrong:\n%s", out)
	}
}

func TestTable2(t *testing.T) {
	root, _ := SrcRoot()
	var sb strings.Builder
	if err := Table2(&sb, root); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"v1", "v2", "OpenMP-levelized", "Cpp-Taskflow", "$"} {
		if !strings.Contains(out, want) {
			t.Fatalf("Table2 missing %q:\n%s", want, out)
		}
	}
}

func TestTable3(t *testing.T) {
	root, _ := SrcRoot()
	var sb strings.Builder
	if err := Table3(&sb, root); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"Cpp-Taskflow", "OpenMP", "TBB", "Sequential"} {
		if !strings.Contains(out, want) {
			t.Fatalf("Table3 missing %q:\n%s", want, out)
		}
	}
}

func TestListingsTable(t *testing.T) {
	var sb strings.Builder
	if err := ListingsTable(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "Figure 2") || !strings.Contains(sb.String(), "Figure 4") {
		t.Fatalf("ListingsTable output:\n%s", sb.String())
	}
}

func TestFig7Smoke(t *testing.T) {
	var sb strings.Builder
	if err := Fig7SizeSweep(&sb, 2, []int{4, 8}, []int{200, 400}, 1); err != nil {
		t.Fatal(err)
	}
	if err := Fig7CPUSweep(&sb, []int{1, 2}, 8, 400, 1); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"wavefront runtime vs size", "graph traversal runtime vs size", "runtime vs workers"} {
		if !strings.Contains(out, want) {
			t.Fatalf("Fig7 output missing %q", want)
		}
	}
}

func TestFig9And10Smoke(t *testing.T) {
	small := Design{Name: "smoke", Gates: 400, Seed: 1}
	var sb strings.Builder
	if err := Fig9Incremental(&sb, small, 1, 3, 2); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "must match") {
		t.Fatalf("Fig9 output:\n%s", sb.String())
	}
	// The two engines must agree on worst slack; the harness prints both.
	lines := strings.Split(sb.String(), "\n")
	last := lines[len(lines)-2]
	if !strings.Contains(last, "v1 worst slack") {
		t.Fatalf("missing slack line: %q", last)
	}

	sb.Reset()
	if err := Fig10Scalability(&sb, []Design{small}, 1, []int{1, 2}, 1); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "full timing on smoke") {
		t.Fatalf("Fig10 output:\n%s", sb.String())
	}

	sb.Reset()
	if err := Fig10Utilization(&sb, small, 1, []int{2}, 3); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "CPU utilization") {
		t.Fatalf("Fig10 util output:\n%s", sb.String())
	}
}

func TestFig12Smoke(t *testing.T) {
	var sb strings.Builder
	if err := Fig12Epochs(&sb, []int{784, 8, 10}, "smoke-dnn", []int{1}, 200, 2); err != nil {
		t.Fatal(err)
	}
	if err := Fig12CPU(&sb, []int{784, 8, 10}, "smoke-dnn", []int{1, 2}, 1, 200); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if !strings.Contains(out, "runtime vs epochs") || !strings.Contains(out, "runtime vs workers") {
		t.Fatalf("Fig12 output:\n%s", out)
	}
}

func TestDesignBuildScaling(t *testing.T) {
	c := TV80.Build(1)
	if c.NumGates() < 5300 {
		t.Fatalf("tv80 full scale has %d gates", c.NumGates())
	}
	c10 := TV80.Build(10)
	if c10.NumGates() >= c.NumGates() {
		t.Fatal("scaling does not shrink the design")
	}
	tiny := Design{Name: "x", Gates: 50, Seed: 1}.Build(10)
	if tiny.NumGates() < 100 {
		t.Fatal("minimum gate clamp broken")
	}
}

func TestMeasureOnce(t *testing.T) {
	wf, tv := MeasureOnce(2)
	if wf <= 0 || tv <= 0 {
		t.Fatal("MeasureOnce returned non-positive durations")
	}
}

package experiments

import (
	"fmt"
	"io"
	"math/rand"
	"path/filepath"
	"time"

	"gotaskflow/internal/bench"
	"gotaskflow/internal/circuit"
	"gotaskflow/internal/executor"
	"gotaskflow/internal/profile"
	"gotaskflow/internal/sloc"
	"gotaskflow/internal/sta"
	"gotaskflow/internal/stav1"
	"gotaskflow/internal/stav2"
)

// ClockPeriod is the endpoint constraint used across the timing
// experiments, ps.
const ClockPeriod = 2000.0

// Design mirrors one of the paper's benchmark circuits at a configurable
// scale.
type Design struct {
	Name  string
	Gates int
	Seed  int64
}

// The paper's designs with their quoted gate counts. Scale lets the
// harness shrink them to laptop-budget sizes while preserving identity.
var (
	TV80    = Design{Name: "tv80", Gates: 5300, Seed: 80}
	VGALCD  = Design{Name: "vga_lcd", Gates: 139500, Seed: 81}
	Netcard = Design{Name: "netcard", Gates: 1400000, Seed: 82}
	Leon3mp = Design{Name: "leon3mp", Gates: 1200000, Seed: 83}
)

// Build generates the synthetic stand-in circuit at the given scale
// divisor (1 = paper size).
func (d Design) Build(scale int) *circuit.Circuit {
	if scale < 1 {
		scale = 1
	}
	gates := d.Gates / scale
	if gates < 100 {
		gates = 100
	}
	return circuit.Generate(d.Name, circuit.Config{Gates: gates, Seed: d.Seed})
}

// Table2 reproduces "Software Costs of OpenTimer v1 and v2": LOC, max
// cyclomatic complexity and COCOMO estimates of the two driver
// implementations (the code a team would write against each model; the
// shared numeric engine appears in both and is excluded, as the paper's
// counts exclude common infrastructure).
func Table2(w io.Writer, srcRoot string) error {
	v1Files, err := sloc.AnalyzeDir(filepath.Join(srcRoot, "internal", "stav1"))
	if err != nil {
		return err
	}
	v2Files, err := sloc.AnalyzeDir(filepath.Join(srcRoot, "internal", "stav2"))
	if err != nil {
		return err
	}
	t := bench.NewTable(
		"Table II: software costs of the OpenTimer-style drivers (Go sources)",
		"tool", "task_model", "loc", "mcc", "effort_py", "dev", "cost_usd")
	for _, row := range []struct {
		tool, model string
		files       []*sloc.FileMetrics
	}{
		{"v1", "OpenMP-levelized", v1Files},
		{"v2", "Cpp-Taskflow", v2Files},
	} {
		loc, mcc := sloc.Totals(row.files)
		c := sloc.EstimateCocomo(loc, sloc.DefaultSalary)
		t.Row(row.tool, row.model, loc, mcc,
			fmt.Sprintf("%.2f", c.PersonYears),
			fmt.Sprintf("%.2f", c.Developers),
			fmt.Sprintf("$%.0f", c.Cost))
	}
	return t.Fprint(w)
}

// Fig9Incremental reproduces "Runtime comparisons of the incremental
// timing between v1 and v2": per-iteration runtime of a
// modifier-then-query loop on two designs.
func Fig9Incremental(w io.Writer, design Design, scale, iterations, workers int) error {
	ckt1 := design.Build(scale)
	ckt2 := design.Build(scale)
	tm1 := sta.New(ckt1, ClockPeriod)
	tm2 := sta.New(ckt2, ClockPeriod)
	a1 := stav1.New(tm1, workers)
	defer a1.Close()
	a2 := stav2.New(tm2, workers)
	defer a2.Close()
	a1.Run(tm1.FullUpdate())
	a2.Run(tm2.FullUpdate())

	t := bench.NewTable(
		fmt.Sprintf("Figure 9: incremental timing on %s (%d gates, %d workers)",
			design.Name, ckt1.NumGates(), workers),
		"iteration", "tasks", "v1_omp_ms", "v2_taskflow_ms", "speedup")
	rng1 := rand.New(rand.NewSource(7))
	rng2 := rand.New(rand.NewSource(7))
	for i := 0; i < iterations; i++ {
		seeds1 := tm1.RandomModifier(rng1)
		seeds2 := tm2.RandomModifier(rng2)
		u1 := tm1.PrepareUpdate(seeds1)
		u2 := tm2.PrepareUpdate(seeds2)
		d1 := bench.Measure(func() { a1.Run(u1) })
		d2 := bench.Measure(func() { a2.Run(u2) })
		speed := float64(d1) / float64(d2)
		t.Row(i, u2.NumTasks(), d1, d2, speed)
	}
	if err := t.Fprint(w); err != nil {
		return err
	}
	// Paper-style summary: worst slack must agree between engines.
	ws1, _ := tm1.WorstSlack()
	ws2, _ := tm2.WorstSlack()
	_, err := fmt.Fprintf(w, "# v1 worst slack %.4f ps, v2 worst slack %.4f ps (must match)\n", ws1, ws2)
	return err
}

// Fig10Scalability reproduces the left plot of Figure 10: full-timing
// runtime versus worker count on the million-gate designs (scaled).
func Fig10Scalability(w io.Writer, designs []Design, scale int, workerCounts []int, reps int) error {
	for _, d := range designs {
		ckt := d.Build(scale)
		t := bench.NewTable(
			fmt.Sprintf("Figure 10 (left): full timing on %s (%d gates, %d tasks)",
				d.Name, ckt.NumGates(), 2*ckt.NumGates()),
			"workers", "v1_omp_ms", "v2_taskflow_ms")
		for _, n := range workerCounts {
			tm1 := sta.New(ckt, ClockPeriod)
			a1 := stav1.New(tm1, n)
			d1 := bench.Best(reps, func() { a1.Run(tm1.FullUpdate()) })
			a1.Close()

			tm2 := sta.New(ckt, ClockPeriod)
			a2 := stav2.New(tm2, n)
			d2 := bench.Best(reps, func() { a2.Run(tm2.FullUpdate()) })
			a2.Close()
			t.Row(n, d1, d2)
		}
		if err := t.Fprint(w); err != nil {
			return err
		}
	}
	return nil
}

// Fig10Utilization reproduces the right plot of Figure 10: CPU
// utilization over time while v2 runs repeated full updates, one series
// per worker count.
func Fig10Utilization(w io.Writer, design Design, scale int, workerCounts []int, updates int) error {
	ckt := design.Build(scale)
	t := bench.NewTable(
		fmt.Sprintf("Figure 10 (right): CPU utilization on %s (%d gates)", design.Name, ckt.NumGates()),
		"workers", "mean_util_pct", "peak_busy", "samples", "elapsed_ms")
	for _, n := range workerCounts {
		tm := sta.New(ckt, ClockPeriod)
		e := executor.New(n, executor.WithBusyTracking())
		a := stav2.NewShared(tm, e)
		sampler := profile.NewSampler(e, 500*time.Microsecond)
		sampler.Start()
		start := time.Now()
		for k := 0; k < updates; k++ {
			a.Run(tm.FullUpdate())
		}
		elapsed := time.Since(start)
		samples := sampler.Stop()
		e.Shutdown()
		t.Row(n,
			fmt.Sprintf("%.1f", 100*profile.MeanUtilization(samples, n)),
			profile.PeakBusy(samples), len(samples), elapsed)
	}
	return t.Fprint(w)
}

package sim

// Deterministic model of the stall watchdog (internal/executor/watchdog.go).
//
// The real Watchdog samples wall-clock time and the metrics snapshot from
// a supervisor goroutine: work queued while the executed counter stays
// flat past StallAfter means the scheduler has stopped making progress —
// deadlocked *or* livelocked. The simulation has no wall clock and no
// second goroutine, so the same detector is expressed in scheduling
// steps: every stallWindow steps, if any queue holds work and the
// executed counter has not moved since the previous check, the model has
// stalled. Steps are the sim's notion of elapsed scheduler effort, which
// is exactly what distinguishes a livelock (steps advance, executed flat)
// from mere idleness (no steps at all — the lost-wakeup detector in
// sim.go owns that case, because a fully-parked model schedules nothing).
//
// The injected bug that validates the detector, withInjectionStallBug,
// re-creates a realistic failure shape: the steal sweep goes blind to the
// injection shards while the park re-check (anyWork) still sees them.
// Workers then cycle prewait → re-check → cancel forever — the model
// burns scheduling steps without executing anything, the lost-wakeup
// detector never fires (someone is always runnable), and only the
// executed-progress check catches it. This mirrors how a real drain-order
// regression would present: CPU busy, queues full, throughput zero.

import "fmt"

// WithStallDetector arms an executed-progress watchdog checked every
// window scheduling steps: if queued work is visible while the executed
// counter has not moved across one full window, the simulation records a
// stall failure (reported by Failure, with the seed for replay) and
// recovers — the injected scheduling bug, if any, is cleared and every
// worker unparked so the backlog still drains and the conservation law
// (Enqueued == Executed) holds at quiescence. A window of 0 rounds up
// to 1.
func WithStallDetector(window uint64) Option {
	return func(s *SimExecutor) {
		if window == 0 {
			window = 1
		}
		s.stallWindow = window
	}
}

// withInjectionStallBug makes the steal sweep ignore the injection
// shards while anyWork still counts them: stealable and steal skip
// shard sources, so externally submitted work is visible to the park
// re-check but unreachable by any worker. The model livelocks —
// prewait/cancel cycles advance the step counter while the executed
// counter stays flat — which is the failure shape WithStallDetector
// exists to catch. Unexported: it exists so the stall detector's
// detection power is itself testable (see stall_internal_test.go).
func withInjectionStallBug() Option {
	return func(s *SimExecutor) { s.injStallBug = true }
}

// checkStall runs once every stallWindow steps (from step). The detector
// is armed by a check that observes queued work; it fires when the next
// check still sees queued work and an unmoved executed counter. An empty
// system disarms it, so idle stretches between workloads never count
// toward a stall window.
func (s *SimExecutor) checkStall() {
	executed := s.st.Executed
	if !s.anyWork() {
		s.stallArmed = false
		return
	}
	if s.stallArmed && executed == s.stallMark {
		s.failures = append(s.failures, fmt.Errorf(
			"sim: stall at step %d: work queued but executed counter flat at %d across %d steps (seed %d)",
			s.st.Steps, executed, s.stallWindow, s.seed))
		if len(s.failures) > maxRecoveries {
			panic(fmt.Sprintf("sim: %d stall recoveries — model is not making progress (seed %d)",
				len(s.failures), s.seed))
		}
		s.recoverStall()
		return
	}
	s.stallMark, s.stallArmed = executed, true
}

// recoverStall clears the injected scheduling bug and unparks every
// worker so the stalled backlog drains: the sweep's job is to *detect*
// the stall deterministically, and recovery keeps the graph completing so
// the test harness can also verify conservation after the failure is
// recorded. Banked signals are reset along with the park states they
// pair with.
func (s *SimExecutor) recoverStall() {
	s.injStallBug = false
	for w := range s.state {
		s.state[w] = wActive
	}
	s.signal = 0
	s.stallArmed = false
}

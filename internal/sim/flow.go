package sim

// Deterministic model of the executor's multi-tenant flow layer
// (internal/executor/flow.go): the same admission protocol (quota CAS
// becomes a plain compare — the sim is single-threaded), the same
// shed-before-quota error order, the same strict-class-priority drain
// placement in the steal sweep, and the same weighted-round-robin wheel
// with a cursor that advances one slot per drain. Because the decisions
// are modeled rather than reimplemented loosely, the fairness properties
// proved here — bounded service gap, quota ceilings, conservation —
// transfer to the real executor up to memory-model effects, which the
// -race mirror tests own.

import (
	"fmt"

	"gotaskflow/internal/executor"
)

// simFlow is the simulation's executor.Flow: a FIFO queue plus plain-int
// counters mirroring execFlow's atomics one-for-one.
type simFlow struct {
	s    *SimExecutor
	name string
	cfg  executor.FlowConfig
	idx  int // registration index across all classes

	q []*executor.Runnable

	inflight int64
	peak     int64
	admitted uint64
	released uint64
	rejected uint64
	shed     uint64

	pushes       uint64
	drainOps     uint64
	drainedTasks uint64
	executed     uint64
}

var _ executor.Flow = (*simFlow)(nil)

// simClass is one priority class's scheduling state: flows in
// registration order (the strict-drain bug's scan order), the
// weight-expanded wheel, and the shared round-robin cursor.
type simClass struct {
	flows  []*simFlow
	wheel  []*simFlow
	cursor int
}

// NewFlow registers a modeled multi-tenant flow, mirroring
// Executor.NewFlow: same config normalization, same block-repeat wheel
// rebuild.
func (s *SimExecutor) NewFlow(name string, cfg executor.FlowConfig) executor.Flow {
	cfg = executor.NormalizeFlowConfig(cfg)
	f := &simFlow{s: s, name: name, cfg: cfg, idx: len(s.flows)}
	s.flows = append(s.flows, f)
	cl := &s.classes[cfg.Class]
	cl.flows = append(cl.flows, f)
	cl.wheel = cl.wheel[:0]
	for _, g := range cl.flows {
		for i := 0; i < g.cfg.Weight; i++ {
			cl.wheel = append(cl.wheel, g)
		}
	}
	return f
}

// FlowStats snapshots every modeled flow's counters in registration
// order, mirroring Executor.FlowStats.
func (s *SimExecutor) FlowStats() []executor.FlowStats {
	out := make([]executor.FlowStats, len(s.flows))
	for i, f := range s.flows {
		out[i] = f.Stats()
	}
	return out
}

// WheelSize returns the weight-expanded wheel length of a class — the
// service-gap bound the fairness property tests assert against.
func (s *SimExecutor) WheelSize(class executor.PriorityClass) int {
	return len(s.classes[class].wheel)
}

func (f *simFlow) Name() string                  { return f.name }
func (f *simFlow) Class() executor.PriorityClass { return f.cfg.Class }

// Admit implements executor.Flow with the exact semantics of
// execFlow.Admit: shutdown, then the backlog watermark (nothing to undo),
// then the quota — all-or-nothing, charging nothing on rejection.
func (f *simFlow) Admit(n int) error {
	if n <= 0 {
		return nil
	}
	if f.s.stopped {
		return executor.ErrShutdown
	}
	if wm := f.cfg.MaxBacklog; wm > 0 && len(f.q) >= wm {
		f.shed += uint64(n)
		return executor.ErrOverloaded
	}
	if max := int64(f.cfg.MaxInFlight); max > 0 && f.inflight+int64(n) > max {
		f.rejected += uint64(n)
		return executor.ErrAdmission
	}
	f.inflight += int64(n)
	f.admitted += uint64(n)
	if f.inflight > f.peak {
		f.peak = f.inflight
	}
	return nil
}

// Release implements executor.Flow.
func (f *simFlow) Release(n int) {
	if n <= 0 {
		return
	}
	f.inflight -= int64(n)
	f.released += uint64(n)
}

// NoteExecuted implements executor.Flow.
func (f *simFlow) NoteExecuted(n int) { f.executed += uint64(n) }

// Submit implements executor.Flow: enqueue one pre-admitted task on the
// flow's queue, wake, and (outside a running step) drive to quiescence.
func (f *simFlow) Submit(r *executor.Runnable) error {
	if f.s.stopped {
		return executor.ErrShutdown
	}
	f.q = append(f.q, r)
	f.pushes++
	f.s.st.Enqueued++
	f.s.mix(1<<62 | uint64(f.idx))
	f.s.wakeOne()
	f.s.drive()
	return nil
}

// SubmitBatch implements executor.Flow: the batch lands in order, one
// wake pass, accepted whole or rejected whole at shutdown.
func (f *simFlow) SubmitBatch(rs []*executor.Runnable) error {
	if len(rs) == 0 {
		return nil
	}
	if f.s.stopped {
		return executor.ErrShutdown
	}
	f.q = append(f.q, rs...)
	f.pushes += uint64(len(rs))
	f.s.st.Enqueued += uint64(len(rs))
	f.s.mix(1<<62 | uint64(f.idx)<<16 | uint64(len(rs)))
	f.s.wakeUpTo(len(rs))
	f.s.drive()
	return nil
}

// Stats implements executor.Flow.
func (f *simFlow) Stats() executor.FlowStats {
	return executor.FlowStats{
		Name:             f.name,
		Class:            f.cfg.Class,
		Weight:           f.cfg.Weight,
		Pushes:           f.pushes,
		DrainOps:         f.drainOps,
		DrainedTasks:     f.drainedTasks,
		Executed:         f.executed,
		AdmittedTasks:    f.admitted,
		ReleasedTasks:    f.released,
		AdmissionRejects: f.rejected,
		OverloadSheds:    f.shed,
		InFlight:         f.inflight,
		PeakInFlight:     f.peak,
		Backlog:          len(f.q),
		MaxInFlight:      f.cfg.MaxInFlight,
		MaxBacklog:       f.cfg.MaxBacklog,
	}
}

// classBacklog sums the queued tasks of one priority class.
func (s *SimExecutor) classBacklog(class executor.PriorityClass) int {
	total := 0
	for _, f := range s.classes[class].flows {
		total += len(f.q)
	}
	return total
}

// flowBacklog sums queued tasks across every flow of every class.
func (s *SimExecutor) flowBacklog() int {
	total := 0
	for _, f := range s.flows {
		total += len(f.q)
	}
	return total
}

// FlowService records one flow-queue drain, for fairness analysis: which
// flow a worker serviced and which same-class flows had backlog at that
// instant. Recorded only under WithServiceLog.
type FlowService struct {
	Class executor.PriorityClass
	// FlowIdx is the serviced flow's registration index; Flow its name.
	FlowIdx int
	Flow    string
	// Tasks is how many tasks the drain moved (first ran, extras to the
	// worker's deque).
	Tasks int
	// Backlogged lists the registration indices of same-class flows that
	// had at least one queued task when the drain was chosen — the
	// serviced flow included. MaxServiceGap uses it to bound how long a
	// backlogged flow can be bypassed.
	Backlogged []int
}

// ServiceLog returns the flow drains recorded so far (nil unless the
// executor was built WithServiceLog).
func (s *SimExecutor) ServiceLog() []FlowService { return s.services }

// MaxServiceGap computes, over a service log, the longest run of
// consecutive same-class drains that bypassed flow idx while it had
// backlog the whole time. With the weighted-round-robin wheel this is
// bounded by WheelSize(class) − 1: every wheel rotation services each
// backlogged flow at least once. The strict-drain bug (registration-order
// scan, no wheel) breaks the bound as soon as an earlier flow keeps its
// queue non-empty.
func MaxServiceGap(log []FlowService, class executor.PriorityClass, idx int) int {
	gap, max := 0, 0
	for i := range log {
		sv := &log[i]
		if sv.Class != class {
			continue
		}
		backlogged := false
		for _, b := range sv.Backlogged {
			if b == idx {
				backlogged = true
				break
			}
		}
		if !backlogged || sv.FlowIdx == idx {
			// Either the flow was serviced, or it had no backlog at this
			// drain — both end any bypass run.
			gap = 0
			continue
		}
		gap++
		if gap > max {
			max = gap
		}
	}
	return max
}

// drainFlows services one priority class for worker w: pick the flow by
// weighted round-robin (or, under the injected bug, by registration-order
// scan), move a seed-chosen batch of up to half its backlog (capped at
// maxStealBatch), run the first task and park the extras on w's deque.
// Reports whether a task ran.
func (s *SimExecutor) drainFlows(w int, class executor.PriorityClass) bool {
	cl := &s.classes[class]
	var f *simFlow
	if s.strictDrainBug {
		// Injected starvation bug: always the first backlogged flow in
		// registration order — no weighted share, so a class-mate ahead of
		// you with a standing backlog starves you indefinitely. The
		// fairness sweep catches this as a MaxServiceGap violation.
		for _, g := range cl.flows {
			if len(g.q) > 0 {
				f = g
				break
			}
		}
	} else {
		n := len(cl.wheel)
		if n == 0 {
			return false
		}
		start := cl.cursor % n
		cl.cursor++
		for i := 0; i < n; i++ {
			if g := cl.wheel[(start+i)%n]; len(g.q) > 0 {
				f = g
				break
			}
		}
	}
	if f == nil {
		return false
	}
	if s.logServices {
		sv := FlowService{Class: class, FlowIdx: f.idx, Flow: f.name}
		for _, g := range cl.flows {
			if len(g.q) > 0 {
				sv.Backlogged = append(sv.Backlogged, g.idx)
			}
		}
		s.services = append(s.services, sv)
	}
	max := (len(f.q) + 1) / 2
	if max > maxStealBatch {
		max = maxStealBatch
	}
	k := 1 + s.pick(max)
	grabbed := make([]*executor.Runnable, k)
	copy(grabbed, f.q[:k])
	f.q = append(f.q[:0], f.q[k:]...)
	f.drainOps++
	f.drainedTasks += uint64(k)
	s.st.FlowDrains++
	s.st.FlowDrainedTasks += uint64(k)
	if s.logServices {
		s.services[len(s.services)-1].Tasks = k
	}
	if k > 1 {
		s.deques[w] = append(s.deques[w], grabbed[1:]...)
	}
	s.runTask(w, grabbed[0])
	return true
}

// CheckFlows verifies the per-flow conservation laws at quiescence,
// mirroring the flow section of executor.Snapshot.Reconcile: queues
// drained, reservations returned, quota ceilings respected.
func (s *SimExecutor) CheckFlows() error {
	var drainOps, drained uint64
	for _, f := range s.flows {
		if f.pushes != f.drainedTasks {
			return fmt.Errorf("sim: flow %q pushes %d != drained tasks %d", f.name, f.pushes, f.drainedTasks)
		}
		if f.admitted != f.released {
			return fmt.Errorf("sim: flow %q admitted %d != released %d (leaked reservation)", f.name, f.admitted, f.released)
		}
		if f.inflight != 0 {
			return fmt.Errorf("sim: flow %q in-flight %d != 0 at quiescence", f.name, f.inflight)
		}
		if f.cfg.MaxInFlight > 0 && f.peak > int64(f.cfg.MaxInFlight) {
			return fmt.Errorf("sim: flow %q peak in-flight %d > quota %d", f.name, f.peak, f.cfg.MaxInFlight)
		}
		if len(f.q) != 0 {
			return fmt.Errorf("sim: flow %q still has %d queued tasks at quiescence", f.name, len(f.q))
		}
		drainOps += f.drainOps
		drained += f.drainedTasks
	}
	if drainOps != s.st.FlowDrains {
		return fmt.Errorf("sim: Σ flow drain ops %d != scheduler flow drains %d", drainOps, s.st.FlowDrains)
	}
	if drained != s.st.FlowDrainedTasks {
		return fmt.Errorf("sim: Σ flow drained tasks %d != scheduler flow drained tasks %d", drained, s.st.FlowDrainedTasks)
	}
	return nil
}

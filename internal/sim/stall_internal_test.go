package sim

// White-box validation of the stall detector (stall.go): inject the
// shard-blind steal sweep — externally submitted work visible to the park
// re-check but unreachable by any worker, a livelock — and prove the seed
// sweep detects it with a deterministic one-line replay. This is the sim
// half of the watchdog acceptance criterion: the same no-progress
// predicate the real executor.Watchdog polls (work queued, executed
// counter flat) catches an injected scheduler bug across seeds, recovery
// still drains the graph, and the healthy control never fires.

import (
	"os"
	"strconv"
	"testing"

	"gotaskflow/internal/core"
)

// stallReplayEnv carries a seed into TestStallReplay, so a sweep failure
// is replayable with one shell line.
const stallReplayEnv = "SIM_STALL_SEED"

// stallWindow is the step budget per progress check used by the tests.
// Small enough to fire long before the maxSteps livelock backstop, large
// enough that a healthy schedule always executes something in between.
const stallWindowSteps = 256

func newStallSim(seed int64) *SimExecutor {
	return New(2, WithSeed(seed), WithStallDetector(stallWindowSteps), withInjectionStallBug())
}

// runFanoutWorkload drives a source → 4-successor fan-out graph: the
// source enters through Submit, i.e. an injection shard — exactly the
// work the injected bug makes unreachable.
func runFanoutWorkload(t *testing.T, s *SimExecutor) error {
	t.Helper()
	tf := core.NewShared(s)
	src := tf.Emplace(func() {})[0]
	for i := 0; i < 4; i++ {
		src.Precede(tf.Emplace(func() {})[0])
	}
	return tf.Run()
}

func TestStallDetectorCatchesInjectedBug(t *testing.T) {
	const seeds = 100
	detected := 0
	var firstSeed int64 = -1
	for seed := int64(0); seed < seeds; seed++ {
		s := newStallSim(seed)
		if err := runFanoutWorkload(t, s); err != nil {
			t.Fatalf("seed %d: recovery did not drain the graph: %v", seed, err)
		}
		if err := s.Stats().Check(); err != nil {
			t.Fatalf("seed %d: conservation violated after stall recovery: %v", seed, err)
		}
		if s.Failure() != nil {
			detected++
			if firstSeed < 0 {
				firstSeed = seed
			}
		}
	}
	if detected == 0 {
		t.Fatalf("injected injection-stall bug never detected across %d seeds", seeds)
	}
	t.Logf("stall detected on %d/%d seeds; first at seed %d", detected, seeds, firstSeed)
	t.Logf("replay: %s=%d go test ./internal/sim -run '^TestStallReplay$' -v",
		stallReplayEnv, firstSeed)

	// Replay determinism: the first detecting seed detects again, with an
	// identical schedule fingerprint and failure report.
	a, b := newStallSim(firstSeed), newStallSim(firstSeed)
	if err := runFanoutWorkload(t, a); err != nil {
		t.Fatal(err)
	}
	if err := runFanoutWorkload(t, b); err != nil {
		t.Fatal(err)
	}
	if a.Failure() == nil || b.Failure() == nil {
		t.Fatalf("seed %d did not re-detect on replay", firstSeed)
	}
	if a.ScheduleHash() != b.ScheduleHash() {
		t.Fatalf("seed %d: schedule hashes differ across replays: %#x vs %#x",
			firstSeed, a.ScheduleHash(), b.ScheduleHash())
	}
	if a.Failure().Error() != b.Failure().Error() {
		t.Fatalf("seed %d: failure reports differ across replays:\n%v\nvs\n%v",
			firstSeed, a.Failure(), b.Failure())
	}
}

// TestStallDetectorQuietOnHealthySchedules is the control: armed detector,
// correct scheduler, zero firings across workers and seeds — including the
// retry workload whose virtual-timer backoffs leave the system legitimately
// idle (empty queues disarm the detector rather than accumulate a window).
func TestStallDetectorQuietOnHealthySchedules(t *testing.T) {
	for _, workers := range []int{1, 2, 4} {
		for seed := int64(0); seed < 100; seed++ {
			s := New(workers, WithSeed(seed), WithStallDetector(64))
			if err := runRetryWorkload(t, s); err != nil {
				t.Fatalf("w%d seed %d: %v", workers, seed, err)
			}
			if err := s.Failure(); err != nil {
				t.Fatalf("w%d seed %d: false stall firing: %v", workers, seed, err)
			}
		}
	}
}

// TestStallReplay re-runs the injected-stall workload from the
// SIM_STALL_SEED environment variable — the one-line replay for sweep
// failures. Without the variable it skips.
func TestStallReplay(t *testing.T) {
	v := os.Getenv(stallReplayEnv)
	if v == "" {
		t.Skipf("%s not set; set it to a seed from a stall-sweep failure", stallReplayEnv)
	}
	seed, err := strconv.ParseInt(v, 10, 64)
	if err != nil {
		t.Fatalf("%s=%q: %v", stallReplayEnv, v, err)
	}
	s := newStallSim(seed)
	if err := runFanoutWorkload(t, s); err != nil {
		t.Fatal(err)
	}
	t.Logf("replayed stall schedule: seed=%d hash=%#x steps=%d executed=%d failure=%v",
		seed, s.ScheduleHash(), s.Stats().Steps, s.Stats().Executed, s.Failure())
	if s.Failure() == nil {
		t.Fatalf("seed %d did not reproduce the stall", seed)
	}
}

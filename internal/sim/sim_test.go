package sim_test

// Black-box tests of the deterministic simulation executor, driving it
// through the public core API exactly as the property and fuzz suites do.

import (
	"errors"
	"fmt"
	"testing"
	"time"

	"gotaskflow/internal/core"
	"gotaskflow/internal/executor"
	"gotaskflow/internal/graphgen"
	"gotaskflow/internal/sim"
)

// buildDAG wires a graphgen DAG into tf, counting executions per node.
func buildDAG(tf *core.Taskflow, d *graphgen.DAG, counts []int32) {
	tasks := make([]core.Task, d.N)
	for i := 0; i < d.N; i++ {
		i := i
		tasks[i] = tf.Emplace1(func() { counts[i]++ })
	}
	for u := 0; u < d.N; u++ {
		d.Successors(u, func(v int) { tasks[u].Precede(tasks[v]) })
	}
}

func TestSimRunsRandomDAGExactlyOnce(t *testing.T) {
	for _, workers := range []int{1, 2, 4, 8} {
		for _, n := range []int{1, 17, 150} {
			for seed := int64(0); seed < 5; seed++ {
				name := fmt.Sprintf("w%d/n%d/seed%d", workers, n, seed)
				t.Run(name, func(t *testing.T) {
					s := sim.New(workers, sim.WithSeed(seed))
					tf := core.NewShared(s)
					counts := make([]int32, n)
					buildDAG(tf, graphgen.Random(n, graphgen.Config{Seed: seed}), counts)
					const runs = 2
					for run := 0; run < runs; run++ {
						if err := tf.Run(); err != nil {
							t.Fatalf("run %d: %v", run, err)
						}
					}
					for i, c := range counts {
						if int(c) != runs {
							t.Fatalf("node %d executed %d times, want %d", i, c, runs)
						}
					}
					if err := s.Stats().Check(); err != nil {
						t.Fatal(err)
					}
					if err := s.Failure(); err != nil {
						t.Fatalf("liveness failure in correct model: %v", err)
					}
				})
			}
		}
	}
}

// TestSimSameSeedSameSchedule is the replay guarantee: an identical
// workload under an identical seed takes the identical schedule,
// fingerprinted by ScheduleHash over every PRNG decision.
func TestSimSameSeedSameSchedule(t *testing.T) {
	run := func(seed int64) uint64 {
		s := sim.New(4, sim.WithSeed(seed))
		tf := core.NewShared(s)
		counts := make([]int32, 80)
		buildDAG(tf, graphgen.Random(80, graphgen.Config{Seed: 7}), counts)
		if err := tf.Run(); err != nil {
			t.Fatal(err)
		}
		return s.ScheduleHash()
	}
	for seed := int64(0); seed < 4; seed++ {
		if a, b := run(seed), run(seed); a != b {
			t.Fatalf("seed %d: schedule hashes differ across identical runs: %#x vs %#x", seed, a, b)
		}
	}
}

// TestSimSeedsPermuteSchedules shows distinct seeds genuinely explore
// distinct interleavings: across a handful of seeds both the schedule
// hashes and the observed execution orders of independent tasks vary.
func TestSimSeedsPermuteSchedules(t *testing.T) {
	hashes := map[uint64]bool{}
	orders := map[string]bool{}
	for seed := int64(0); seed < 8; seed++ {
		s := sim.New(4, sim.WithSeed(seed))
		tf := core.NewShared(s)
		var order []byte
		for i := 0; i < 8; i++ {
			i := i
			tf.Emplace1(func() { order = append(order, byte('a'+i)) })
		}
		if err := tf.Run(); err != nil {
			t.Fatal(err)
		}
		hashes[s.ScheduleHash()] = true
		orders[string(order)] = true
	}
	if len(hashes) < 2 {
		t.Fatalf("8 seeds produced %d distinct schedule hashes, want >= 2", len(hashes))
	}
	if len(orders) < 2 {
		t.Fatalf("8 seeds produced %d distinct execution orders of independent tasks, want >= 2", len(orders))
	}
}

// TestSimVirtualTimeRetry: an hour-scale retry backoff costs no wall
// time — the virtual clock jumps to the timer deadline when it fires.
func TestSimVirtualTimeRetry(t *testing.T) {
	s := sim.New(2, sim.WithSeed(3))
	tf := core.NewShared(s)
	attempts := 0
	tf.EmplaceErr(func() error {
		attempts++
		if attempts < 3 {
			return fmt.Errorf("transient %d", attempts)
		}
		return nil
	}).Retry(4, time.Hour)
	start := time.Now()
	if err := tf.Run(); err != nil {
		t.Fatalf("retried task failed: %v", err)
	}
	if attempts != 3 {
		t.Fatalf("attempts = %d, want 3", attempts)
	}
	if wall := time.Since(start); wall > 10*time.Second {
		t.Fatalf("virtual-time retry took %v of wall time", wall)
	}
	// The 1h base backoff clamps to the 30s retry cap, jittered into
	// [15s, 30s] per attempt; two fired backoffs advance the virtual
	// clock by at least 30s.
	if s.Now() < 30*time.Second {
		t.Fatalf("virtual clock advanced only %v across two capped backoffs", s.Now())
	}
	if err := s.Stats().Check(); err != nil {
		t.Fatal(err)
	}
}

// runnableFunc adapts a func to executor.Runnable for direct-submission
// tests that bypass core.
type runnableFunc struct{ fn func(executor.Context) }

func (r *runnableFunc) Run(ctx executor.Context) { r.fn(ctx) }

func submitFn(s *sim.SimExecutor, fn func(executor.Context)) error {
	var r executor.Runnable = &runnableFunc{fn: fn}
	return s.Submit(&r)
}

func TestSimAfterFuncLifecycle(t *testing.T) {
	s := sim.New(1, sim.WithSeed(1))

	// A timer stopped before the drive loop regains control never fires.
	stopped, fired := false, false
	if err := submitFn(s, func(ctx executor.Context) {
		tm := ctx.Executor().AfterFunc(time.Minute, func() { fired = true })
		stopped = tm.Stop()
	}); err != nil {
		t.Fatal(err)
	}
	if !stopped {
		t.Fatal("Stop on an armed virtual timer returned false")
	}
	if fired {
		t.Fatal("stopped timer fired")
	}

	// An armed timer fires (in virtual time) before quiescence.
	fired = false
	if err := submitFn(s, func(ctx executor.Context) {
		ctx.Executor().AfterFunc(time.Minute, func() { fired = true })
	}); err != nil {
		t.Fatal(err)
	}
	if !fired {
		t.Fatal("armed virtual timer did not fire by quiescence")
	}
	if s.Now() < time.Minute {
		t.Fatalf("virtual clock %v, want >= 1m", s.Now())
	}

	// After Shutdown, AfterFunc resolves immediately: the callback runs
	// inline and observes the stopped scheduler.
	s.Shutdown()
	ran := false
	s.AfterFunc(time.Hour, func() { ran = true })
	if !ran {
		t.Fatal("post-Shutdown AfterFunc callback did not run inline")
	}
	if err := submitFn(s, nil); !errors.Is(err, executor.ErrShutdown) {
		t.Fatalf("Submit after Shutdown = %v, want ErrShutdown", err)
	}
}

// TestSimShutdownFiresArmedTimers mirrors the real executor's contract:
// timers still armed at Shutdown are resolved during Shutdown, and their
// callbacks observe the stopped scheduler.
func TestSimShutdownFiresArmedTimers(t *testing.T) {
	s := sim.New(1, sim.WithSeed(1))
	var sawShutdown bool
	if err := submitFn(s, func(ctx executor.Context) {
		sched := ctx.Executor()
		sched.AfterFunc(time.Hour, func() { sawShutdown = sched.Stopped() })
		// Shut down from inside the task, while the timer is still armed:
		// the only window where a virtual timer can outlive the drive loop.
		sched.Shutdown()
	}); err != nil {
		t.Fatal(err)
	}
	if !sawShutdown {
		t.Fatal("armed timer was not resolved during Shutdown (or ran before it)")
	}
}

func TestSimPanicContainment(t *testing.T) {
	s := sim.New(2, sim.WithSeed(1))
	if err := submitFn(s, func(executor.Context) { panic("boom") }); err != nil {
		t.Fatal(err)
	}
	if err := s.PanicError(); err == nil {
		t.Fatal("PanicError nil after a task panic")
	}
	// The simulation survives and keeps scheduling.
	ran := false
	if err := submitFn(s, func(executor.Context) { ran = true }); err != nil || !ran {
		t.Fatalf("submission after contained panic: ran=%v err=%v", ran, err)
	}
}

// TestSimConservationUnderFailFast: fail-fast cancellation skips task
// bodies but every accepted Runnable still flows through the scheduler,
// so the Enqueued == Executed law holds on failing runs too.
func TestSimConservationUnderFailFast(t *testing.T) {
	for seed := int64(0); seed < 10; seed++ {
		s := sim.New(4, sim.WithSeed(seed))
		tf := core.NewShared(s)
		d := graphgen.Random(60, graphgen.Config{Seed: seed})
		tasks := make([]core.Task, d.N)
		for i := 0; i < d.N; i++ {
			if i == 10 {
				tasks[i] = tf.EmplaceErr(func() error { return errors.New("injected") })
				continue
			}
			tasks[i] = tf.Emplace1(func() {})
		}
		for u := 0; u < d.N; u++ {
			d.Successors(u, func(v int) { tasks[u].Precede(tasks[v]) })
		}
		err := tf.Run()
		if err == nil {
			t.Fatalf("seed %d: failing graph reported success", seed)
		}
		if cerr := s.Stats().Check(); cerr != nil {
			t.Fatalf("seed %d: %v (after run error %v)", seed, cerr, err)
		}
		if ferr := s.Failure(); ferr != nil {
			t.Fatalf("seed %d: liveness failure: %v", seed, ferr)
		}
	}
}

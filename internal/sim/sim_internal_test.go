package sim

// White-box validation of the liveness detector: re-introduce the seed
// notifier's lost-wakeup protocol (check-then-announce prewait, blind
// park, wakes not banked for prewaiters — the exact ordering bug the
// eventcount rework removed) inside the simulation's park/wake model and
// prove the schedule sweep finds it deterministically. This is the
// acceptance test for "an injected scheduler bug is caught by the sim
// sweep with a deterministic replay": the workload retries through a
// virtual timer, so work arrives while workers are mid-park — under the
// buggy ordering some seeds lose the wake with every worker parked, and
// the detector reports it with the seed instead of hanging.

import (
	"fmt"
	"testing"
	"time"

	"gotaskflow/internal/core"
)

// runRetryWorkload drives one fail-then-retry graph under the given sim
// and returns the run error. The retry backoff goes through a virtual
// timer, which is the only way work can arrive while every modeled
// worker is parked or mid-park.
func runRetryWorkload(t *testing.T, s *SimExecutor) error {
	t.Helper()
	tf := core.NewShared(s)
	attempts := 0
	tf.EmplaceErr(func() error {
		attempts++
		if attempts == 1 {
			return fmt.Errorf("transient")
		}
		return nil
	}).Retry(2, time.Millisecond)
	return tf.Run()
}

func TestLostWakeupDetectorCatchesInjectedBug(t *testing.T) {
	const seeds = 100
	detected := 0
	var firstSeed int64 = -1
	for seed := int64(0); seed < seeds; seed++ {
		s := New(1, WithSeed(seed), withLostWakeupBug())
		if err := runRetryWorkload(t, s); err != nil {
			t.Fatalf("seed %d: recovery did not drain the graph: %v", seed, err)
		}
		if s.Failure() != nil {
			detected++
			if firstSeed < 0 {
				firstSeed = seed
			}
		}
	}
	if detected == 0 {
		t.Fatalf("injected lost-wakeup bug never detected across %d seeds", seeds)
	}
	t.Logf("lost wakeup detected on %d/%d seeds; first at seed %d", detected, seeds, firstSeed)

	// Replay determinism: the first detecting seed detects again, with an
	// identical schedule fingerprint and failure report.
	a := New(1, WithSeed(firstSeed), withLostWakeupBug())
	b := New(1, WithSeed(firstSeed), withLostWakeupBug())
	if err := runRetryWorkload(t, a); err != nil {
		t.Fatal(err)
	}
	if err := runRetryWorkload(t, b); err != nil {
		t.Fatal(err)
	}
	if a.Failure() == nil || b.Failure() == nil {
		t.Fatalf("seed %d did not re-detect on replay", firstSeed)
	}
	if a.ScheduleHash() != b.ScheduleHash() {
		t.Fatalf("seed %d: schedule hashes differ across replays: %#x vs %#x",
			firstSeed, a.ScheduleHash(), b.ScheduleHash())
	}
	if a.Failure().Error() != b.Failure().Error() {
		t.Fatalf("seed %d: failure reports differ across replays:\n%v\nvs\n%v",
			firstSeed, a.Failure(), b.Failure())
	}
}

// TestCorrectModelIsLive is the control: the same workload and seed
// sweep under the faithful park/wake protocol never loses a wake.
func TestCorrectModelIsLive(t *testing.T) {
	for _, workers := range []int{1, 2, 4} {
		for seed := int64(0); seed < 100; seed++ {
			s := New(workers, WithSeed(seed))
			if err := runRetryWorkload(t, s); err != nil {
				t.Fatalf("w%d seed %d: %v", workers, seed, err)
			}
			if err := s.Failure(); err != nil {
				t.Fatalf("w%d seed %d: false-positive liveness failure: %v", workers, seed, err)
			}
		}
	}
}

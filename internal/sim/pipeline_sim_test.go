package sim_test

// Pipeline schedule fuzzing and seed sweep: the fuzz input is an
// interleaving seed plus a pipeline shape (lines, pipe row with
// serial/parallel/data-parallel pipes, token count, deferral pattern), so
// the mutator explores pipeline wrap-arounds, fan-out joins and token
// parking under permuted schedules. Invariants checked on every schedule:
//
//   - every pipe sees every token exactly once (counting re-invocations
//     of deferred tokens separately);
//   - serial pipes observe tokens in strictly ascending order;
//   - a deferring token's completing invocation runs only after its
//     target token completed the same pipe;
//   - ForEach pipes visit every index of every token exactly once before
//     the token reaches the next pipe;
//   - sim Stats conservation (Enqueued == Executed) and liveness;
//   - identical cases re-execute bit-identical schedules (ScheduleHash).
//
// Failures print a one-line SIM_PIPE_REPLAY recipe;
// TestReplayPipelineSchedule re-runs exactly that schedule.
//
// Run with `make fuzz`, or directly:
//
//	go test ./internal/sim -fuzz '^FuzzPipelineSchedule$' -fuzztime 30s

import (
	"fmt"
	"os"
	"strconv"
	"strings"
	"testing"

	"gotaskflow/internal/pipeline"
	"gotaskflow/internal/sim"
)

// pipeReplayEnv carries one pipeline schedule's parameters into
// TestReplayPipelineSchedule: five integers — schedSeed shapeSeed workers
// lines tokens.
const pipeReplayEnv = "SIM_PIPE_REPLAY"

type pipeParams struct {
	schedSeed, shapeSeed   int64
	workers, lines, tokens int
}

func normalizePipe(schedSeed, shapeSeed, workersRaw, linesRaw, tokensRaw int64) pipeParams {
	abs := func(v int64) int64 {
		if v < 0 {
			v = -v
		}
		if v < 0 { // MinInt64
			v = 0
		}
		return v
	}
	return pipeParams{
		schedSeed: schedSeed,
		shapeSeed: shapeSeed,
		workers:   1 + int(abs(workersRaw)%8),
		lines:     1 + int(abs(linesRaw)%8),
		tokens:    int(abs(tokensRaw) % 96),
	}
}

func (p pipeParams) recipe() string {
	return fmt.Sprintf(
		"replay: %s='%d %d %d %d %d' go test ./internal/sim -run '^TestReplayPipelineSchedule$' -v",
		pipeReplayEnv, p.schedSeed, p.shapeSeed, p.workers-1, p.lines-1, p.tokens)
}

// pipeShape derives the pipe row from the shape seed: 2–5 pipes after the
// serial head, each serial, parallel, or (at most one) data-parallel;
// plus a deferral pattern on one parallel pipe (every third token defers
// to token−gap).
type pipeShape struct {
	types    []pipeline.Type // len = pipe count; types[0] == Serial
	dpPipe   int             // index of the ForEach pipe, -1 if none
	dpRange  int
	deferOn  int // index of the deferring parallel pipe, -1 if none
	deferGap int64
}

func shapeOf(p pipeParams) pipeShape {
	s := p.shapeSeed
	if s < 0 {
		s = -s
	}
	if s < 0 {
		s = 0
	}
	numPipes := 3 + int(s%4) // 3..6 pipes total
	sh := pipeShape{types: make([]pipeline.Type, numPipes), dpPipe: -1, deferOn: -1}
	bits := s / 4
	for i := 1; i < numPipes; i++ {
		if bits&1 == 1 {
			sh.types[i] = pipeline.Parallel
		}
		bits >>= 1
	}
	if s%3 == 0 && numPipes > 2 {
		// One data-parallel pipe mid-row; keep its declared type.
		sh.dpPipe = 1 + int((s/16)%int64(numPipes-1))
		sh.dpRange = 8 + int(s%23)
	}
	// Deferral on the first parallel scalar pipe, when one exists.
	for i := 1; i < numPipes; i++ {
		if sh.types[i] == pipeline.Parallel && i != sh.dpPipe {
			sh.deferOn = i
			sh.deferGap = 1 + s%3
			break
		}
	}
	return sh
}

// pipeResult captures everything two runs of the same case must agree on.
type pipeResult struct {
	hash      uint64
	processed int64
	errText   string
	stats     sim.Stats
}

// runPipelineSchedule executes one simulated pipeline schedule and checks
// every invariant; returns the fingerprint for double-run comparison.
func runPipelineSchedule(t *testing.T, p pipeParams) pipeResult {
	t.Helper()
	s := sim.New(p.workers, sim.WithSeed(p.schedSeed))
	sh := shapeOf(p)
	n := int64(p.tokens)

	// Recording state. The simulation is single-threaded, so plain maps
	// and slices need no locking.
	order := make([][]int64, len(sh.types))     // per-pipe invocation order
	completedAt := make([]map[int64]bool, len(sh.types)) // pipe → tokens completed
	for i := range completedAt {
		completedAt[i] = map[int64]bool{}
	}
	sawTarget := map[int64]bool{} // deferring token → target done at last invocation
	dpVisits := map[int64][]int{} // token → per-index visit count at the dp pipe

	pipes := make([]pipeline.Pipe, len(sh.types))
	for i := range pipes {
		i := i
		if i == sh.dpPipe {
			pipes[i] = pipeline.ForEach(sh.types[i],
				func(*pipeline.Pipeflow) int { return sh.dpRange },
				3, pipeline.Guided,
				func(pf *pipeline.Pipeflow, begin, end int) {
					c := dpVisits[pf.Token()]
					if c == nil {
						c = make([]int, sh.dpRange)
						dpVisits[pf.Token()] = c
					}
					for k := begin; k < end; k++ {
						c[k]++
					}
				})
			continue
		}
		pipes[i] = pipeline.Pipe{Type: sh.types[i], Fn: func(pf *pipeline.Pipeflow) {
			tok := pf.Token()
			if i == 0 {
				if tok >= n {
					pf.Stop()
					return
				}
				order[0] = append(order[0], tok)
				completedAt[0][tok] = true
				return
			}
			order[i] = append(order[i], tok)
			if i == sh.deferOn && tok%3 == 0 && tok >= sh.deferGap {
				target := tok - sh.deferGap
				// A Defer whose target already completed does not park, so
				// this invocation is the completing one exactly when the
				// target is done. Last write wins on sawTarget: the final
				// invocation records whether ordering held.
				done := completedAt[i][target]
				sawTarget[tok] = done
				pf.Defer(target)
				if done {
					completedAt[i][tok] = true
				}
				return
			}
			completedAt[i][tok] = true
		}}
	}

	pl := pipeline.New(s, p.lines, pipes...)
	processed := pl.Run()
	res := pipeResult{
		hash:      s.ScheduleHash(),
		processed: processed,
		stats:     s.Stats(),
	}
	if err := pl.Err(); err != nil {
		res.errText = err.Error()
	}

	// Liveness and conservation first: a stuck or leaky schedule makes
	// the rest meaningless.
	if lerr := s.Failure(); lerr != nil {
		t.Fatalf("liveness failure: %v\n%s", lerr, p.recipe())
	}
	if cerr := res.stats.Check(); cerr != nil {
		t.Fatalf("%v\n%s", cerr, p.recipe())
	}
	if res.errText != "" {
		t.Fatalf("fault-free pipeline failed: %s\n%s", res.errText, p.recipe())
	}
	if processed != n {
		t.Fatalf("processed %d tokens, want %d\n%s", processed, n, p.recipe())
	}

	// Every pipe sees every token; serial pipes in strictly ascending
	// order. Deferred tokens re-invoke, so expect duplicates only there.
	for i, seq := range order {
		if i == sh.dpPipe {
			continue // covered by the dpVisits check below
		}
		seen := map[int64]int{}
		for _, tok := range seq {
			seen[tok]++
		}
		if int64(len(seen)) != n {
			t.Fatalf("pipe %d saw %d distinct tokens, want %d\n%s", i, len(seen), n, p.recipe())
		}
		for tok, c := range seen {
			if c > 1 && i != sh.deferOn {
				t.Fatalf("pipe %d token %d invoked %d times without deferral\n%s", i, tok, c, p.recipe())
			}
		}
		if sh.types[i] == pipeline.Serial && i != sh.deferOn && i != sh.dpPipe {
			for j := 1; j < len(seq); j++ {
				if seq[j] <= seq[j-1] {
					t.Fatalf("serial pipe %d order broken at %d: %v\n%s", i, j, seq, p.recipe())
				}
			}
		}
	}

	// Deferral ordering: the completing invocation of every deferring
	// token ran with its target already completed.
	if sh.deferOn >= 0 {
		for tok := sh.deferGap; tok < n; tok++ {
			if tok%3 == 0 {
				if !sawTarget[tok] {
					t.Fatalf("token %d completed pipe %d before its deferred target %d\n%s",
						tok, sh.deferOn, tok-sh.deferGap, p.recipe())
				}
			}
		}
	}

	// ForEach coverage: every index of every token exactly once.
	if sh.dpPipe >= 0 {
		if int64(len(dpVisits)) != n {
			t.Fatalf("dp pipe fanned out %d tokens, want %d\n%s", len(dpVisits), n, p.recipe())
		}
		for tok, c := range dpVisits {
			for k, v := range c {
				if v != 1 {
					t.Fatalf("dp pipe token %d index %d visited %d times\n%s", tok, k, v, p.recipe())
				}
			}
		}
	}
	return res
}

func FuzzPipelineSchedule(f *testing.F) {
	f.Add(int64(1), int64(0), int64(3), int64(3), int64(40))  // dp pipe, 3 pipes
	f.Add(int64(2), int64(7), int64(1), int64(0), int64(25))  // 1 line: pure serial threading
	f.Add(int64(3), int64(12), int64(7), int64(7), int64(90)) // dp + defer, 8 lines
	f.Add(int64(4), int64(5), int64(2), int64(3), int64(64))  // wrap boundary: tokens % lines == 0
	f.Add(int64(5), int64(23), int64(4), int64(1), int64(0))  // zero tokens
	f.Add(int64(6), int64(46), int64(5), int64(5), int64(77)) // parallel-heavy row
	f.Fuzz(func(t *testing.T, schedSeed, shapeSeed, workersRaw, linesRaw, tokensRaw int64) {
		p := normalizePipe(schedSeed, shapeSeed, workersRaw, linesRaw, tokensRaw)
		a := runPipelineSchedule(t, p)
		b := runPipelineSchedule(t, p)
		if a.hash != b.hash {
			t.Fatalf("schedule hashes differ across identical runs: %#x vs %#x\n%s",
				a.hash, b.hash, p.recipe())
		}
		if a.processed != b.processed || a.errText != b.errText {
			t.Fatalf("outcomes differ across identical runs: (%d,%q) vs (%d,%q)\n%s",
				a.processed, a.errText, b.processed, b.errText, p.recipe())
		}
	})
}

// TestPropertyPipelineSimSweep is the deterministic always-on slice of
// the fuzz space: 120 seeds across worker counts, line counts and shape
// seeds, every invariant from runPipelineSchedule checked on each.
func TestPropertyPipelineSimSweep(t *testing.T) {
	count := 0
	for schedSeed := int64(0); schedSeed < 10; schedSeed++ {
		for _, workers := range []int{1, 3, 8} {
			for _, lines := range []int{1, 4} {
				for _, shapeSeed := range []int64{0, 9} {
					p := pipeParams{
						schedSeed: schedSeed,
						shapeSeed: shapeSeed,
						workers:   workers,
						lines:     lines,
						tokens:    int(17 + schedSeed*7 + int64(lines)*4),
					}
					runPipelineSchedule(t, p)
					count++
				}
			}
		}
	}
	t.Logf("swept %d pipeline schedules", count)
}

// TestReplayPipelineSchedule re-runs one pipeline schedule from the
// SIM_PIPE_REPLAY environment variable (five integers: schedSeed
// shapeSeed workers lines tokens — the exact line a failing case
// prints). With the variable unset the test skips.
func TestReplayPipelineSchedule(t *testing.T) {
	v := os.Getenv(pipeReplayEnv)
	if v == "" {
		t.Skipf("%s not set; set it to the five integers from a failure recipe", pipeReplayEnv)
	}
	fields := strings.Fields(v)
	if len(fields) != 5 {
		t.Fatalf("%s=%q: want 5 integers (schedSeed shapeSeed workers lines tokens)", pipeReplayEnv, v)
	}
	nums := make([]int64, 5)
	for i, f := range fields {
		n, err := strconv.ParseInt(f, 10, 64)
		if err != nil {
			t.Fatalf("%s field %d (%q): %v", pipeReplayEnv, i, f, err)
		}
		nums[i] = n
	}
	p := normalizePipe(nums[0], nums[1], nums[2], nums[3], nums[4])
	res := runPipelineSchedule(t, p)
	t.Logf("replayed pipeline schedule: workers=%d lines=%d tokens=%d hash=%#x steps=%d executed=%d",
		p.workers, p.lines, p.tokens, res.hash, res.stats.Steps, res.stats.Executed)
}

package sim

// Sim-backed failure shrinking. A failing seed from the sweep or fuzzer
// names a whole random graph — often dozens of nodes, most irrelevant to
// the failure. Shrink greedily deletes nodes and edges while a
// caller-supplied predicate confirms the failure still reproduces under
// the same seed, and the minimized GraphSpec plus its one-line SIM_REPLAY
// recipe is what goes into the bug report. Determinism makes this sound:
// the predicate re-runs the whole simulation per candidate, so "still
// fails" is an exact replay question, not a probabilistic one.

import (
	"fmt"
	"strconv"
	"strings"
)

// GraphSpec is a minimal DAG description for shrinking: N nodes
// (identified 0..N-1) and directed edges. It deliberately carries no
// task bodies — the harness owning the failing property binds specs to
// bodies and runs them under the sim.
type GraphSpec struct {
	N     int
	Edges [][2]int
}

// String renders the spec in the compact "N:u>v,u>v" form ParseSpec
// reads — the payload of a SIM_REPLAY recipe.
func (g GraphSpec) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%d:", g.N)
	for i, e := range g.Edges {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%d>%d", e[0], e[1])
	}
	return b.String()
}

// ParseSpec parses the String form back into a spec ("12:0>3,1>4"; edges
// may be empty: "5:").
func ParseSpec(s string) (GraphSpec, error) {
	head, tail, ok := strings.Cut(s, ":")
	if !ok {
		return GraphSpec{}, fmt.Errorf("sim: spec %q: missing ':'", s)
	}
	n, err := strconv.Atoi(head)
	if err != nil || n < 0 {
		return GraphSpec{}, fmt.Errorf("sim: spec %q: bad node count", s)
	}
	g := GraphSpec{N: n}
	if tail == "" {
		return g, nil
	}
	for _, part := range strings.Split(tail, ",") {
		us, vs, ok := strings.Cut(part, ">")
		if !ok {
			return GraphSpec{}, fmt.Errorf("sim: spec %q: bad edge %q", s, part)
		}
		u, err1 := strconv.Atoi(us)
		v, err2 := strconv.Atoi(vs)
		if err1 != nil || err2 != nil || u < 0 || v < 0 || u >= n || v >= n {
			return GraphSpec{}, fmt.Errorf("sim: spec %q: bad edge %q", s, part)
		}
		g.Edges = append(g.Edges, [2]int{u, v})
	}
	return g, nil
}

// dropNode returns the spec with node i removed: its edges deleted and
// every node index above i renumbered down, preserving the relative
// order (and thus the emplacement order) of the survivors.
func (g GraphSpec) dropNode(i int) GraphSpec {
	out := GraphSpec{N: g.N - 1}
	for _, e := range g.Edges {
		if e[0] == i || e[1] == i {
			continue
		}
		u, v := e[0], e[1]
		if u > i {
			u--
		}
		if v > i {
			v--
		}
		out.Edges = append(out.Edges, [2]int{u, v})
	}
	return out
}

// dropEdge returns the spec with edge j removed.
func (g GraphSpec) dropEdge(j int) GraphSpec {
	out := GraphSpec{N: g.N}
	out.Edges = append(out.Edges, g.Edges[:j]...)
	out.Edges = append(out.Edges, g.Edges[j+1:]...)
	return out
}

// Shrink greedily minimizes a failing graph spec: repeatedly try to drop
// one node (highest index first, so survivor renumbering is cheap) or
// one edge, keep any candidate for which fails still returns true, and
// stop at a fixpoint where no single deletion reproduces the failure.
// fails must be deterministic — under the sim it re-runs the schedule
// from the seed, so the same spec always answers the same way. The
// result is 1-minimal: removing any single node or edge loses the
// failure.
func Shrink(spec GraphSpec, fails func(GraphSpec) bool) GraphSpec {
	for {
		shrunk := false
		// Node pass, highest index first: dropping late nodes does not
		// disturb the indices an earlier candidate drop would use.
		for i := spec.N - 1; i >= 0; i-- {
			cand := spec.dropNode(i)
			if fails(cand) {
				spec = cand
				shrunk = true
			}
		}
		// Edge pass.
		for j := len(spec.Edges) - 1; j >= 0; j-- {
			cand := spec.dropEdge(j)
			if fails(cand) {
				spec = cand
				shrunk = true
			}
		}
		if !shrunk {
			return spec
		}
	}
}

package sim_test

// Property-based fairness suite for the multi-tenant flow layer, run
// entirely under the deterministic simulation. Each seed derives a whole
// scenario — worker count, flow mix (class, weight, quota, watermark),
// job list — and the orchestrator-task pattern makes admission control
// observable: jobs are dispatched from inside a running simulated task,
// where the drive loop is already active, so dispatched graphs pile up
// in-flight instead of running inline and later dispatches meet real
// quota pressure. Every failure message carries the seed; re-running the
// named subtest replays the identical schedule.

import (
	"errors"
	"fmt"
	"math/rand"
	"testing"

	"gotaskflow/internal/core"
	"gotaskflow/internal/executor"
	"gotaskflow/internal/sim"
)

// fairJob is one dispatched chain: which flow it targets, how many nodes
// it charges, and what happened to it.
type fairJob struct {
	flow  int
	nodes int
	runs  int32
	err   error
}

// fairOutcome is the per-seed digest two identical runs must agree on.
type fairOutcome struct {
	hash    uint64
	jobs    []string
	rejects uint64
	sheds   uint64
}

// runFairScenario executes the seed's scenario once and checks every
// single-run property inline; cross-run determinism is the caller's job.
func runFairScenario(t *testing.T, seed int64) fairOutcome {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	workers := 1 + rng.Intn(4)
	nflows := 2 + rng.Intn(4)

	s := sim.New(workers, sim.WithSeed(seed), sim.WithServiceLog())
	flows := make([]executor.Flow, nflows)
	cfgs := make([]executor.FlowConfig, nflows)
	for i := range flows {
		cfg := executor.FlowConfig{
			Class:  executor.PriorityClass(rng.Intn(int(executor.NumPriorityClasses))),
			Weight: 1 + rng.Intn(3),
		}
		if rng.Intn(2) == 0 {
			cfg.MaxInFlight = 2 + rng.Intn(5)
		}
		if rng.Intn(3) == 0 {
			cfg.MaxBacklog = 3 + rng.Intn(4)
		}
		cfgs[i] = executor.NormalizeFlowConfig(cfg)
		flows[i] = s.NewFlow(fmt.Sprintf("flow%d", i), cfg)
	}

	jobs := make([]*fairJob, 8+rng.Intn(10))
	for j := range jobs {
		jobs[j] = &fairJob{flow: rng.Intn(nflows), nodes: 1 + rng.Intn(3)}
	}

	// Orchestrator: dispatch every job from inside a running task. The
	// reentrant drive() is a no-op here, so each Dispatch only admits and
	// enqueues — in-flight accumulates across jobs and later Admits see
	// the quota and backlog pressure the earlier ones created. Futures
	// are resolved after Run returns (Get inside the single-threaded sim
	// would deadlock on an admitted-but-unscheduled topology).
	futs := make([]*core.Future, len(jobs))
	orch := core.NewShared(s)
	orch.Emplace1(func() {
		for j, job := range jobs {
			job := job
			jf := core.NewShared(s).SetFlow(flows[job.flow])
			var prev core.Task
			for k := 0; k < job.nodes; k++ {
				c := jf.Emplace1(func() { job.runs++ })
				if k > 0 {
					prev.Precede(c)
				}
				prev = c
			}
			futs[j] = jf.Dispatch()
		}
	})
	if err := orch.Run(); err != nil {
		t.Fatalf("seed %d: orchestrator failed: %v", seed, err)
	}

	// Liveness and conservation: the run quiesced, every counter balances.
	if err := s.Failure(); err != nil {
		t.Fatalf("seed %d: liveness failure: %v", seed, err)
	}
	if err := s.Stats().Check(); err != nil {
		t.Fatalf("seed %d: %v", seed, err)
	}
	if err := s.CheckFlows(); err != nil {
		t.Fatalf("seed %d: %v", seed, err)
	}

	// Admission outcomes: an admitted job completed exactly once per
	// node; a refused job carries exactly ErrAdmission or ErrOverloaded
	// and ran nothing — refusal must charge nothing and run nothing.
	admittedNodes := make([]uint64, nflows)
	out := fairOutcome{hash: s.ScheduleHash(), jobs: make([]string, len(jobs))}
	for j, job := range jobs {
		job.err = futs[j].Get()
		switch {
		case job.err == nil:
			if int(job.runs) != job.nodes {
				t.Fatalf("seed %d: admitted job %d ran %d/%d nodes", seed, j, job.runs, job.nodes)
			}
			admittedNodes[job.flow] += uint64(job.nodes)
		case errors.Is(job.err, executor.ErrAdmission), errors.Is(job.err, executor.ErrOverloaded):
			if job.runs != 0 {
				t.Fatalf("seed %d: refused job %d still ran %d nodes (%v)", seed, j, job.runs, job.err)
			}
		default:
			t.Fatalf("seed %d: job %d failed with unexpected error: %v", seed, j, job.err)
		}
		out.jobs[j] = fmt.Sprintf("f%d n%d r%d %v", job.flow, job.nodes, job.runs, job.err)
	}

	// Per-flow stats line up with the job ledger.
	for i, st := range s.FlowStats() {
		if st.AdmittedTasks != admittedNodes[i] {
			t.Fatalf("seed %d: flow %d admitted %d tasks, jobs account for %d",
				seed, i, st.AdmittedTasks, admittedNodes[i])
		}
		if max := cfgs[i].MaxInFlight; max > 0 && st.PeakInFlight > int64(max) {
			t.Fatalf("seed %d: flow %d peak in-flight %d exceeds quota %d",
				seed, i, st.PeakInFlight, max)
		}
		out.rejects += st.AdmissionRejects
		out.sheds += st.OverloadSheds
	}

	// Fairness: no flow with standing backlog is bypassed longer than one
	// full rotation of its class's weighted wheel.
	log := s.ServiceLog()
	for i, cfg := range cfgs {
		bound := s.WheelSize(cfg.Class) - 1
		if gap := sim.MaxServiceGap(log, cfg.Class, i); gap > bound {
			t.Fatalf("seed %d: flow %d (class %v) bypassed for %d consecutive drains, bound %d",
				seed, i, cfg.Class, gap, bound)
		}
	}
	return out
}

// TestPropertyFlowFairnessSweep sweeps 120 seeds and asserts, per seed:
// liveness, conservation (CheckFlows), exact admission outcomes, quota
// ceilings, the weighted-round-robin service-gap bound, and bit-identical
// replay of the whole scenario. Replay one seed with
//
//	go test ./internal/sim -run '^TestPropertyFlowFairnessSweep$/^seed42$' -v
func TestPropertyFlowFairnessSweep(t *testing.T) {
	const seeds = 120
	var totalRejects, totalSheds uint64
	for seed := int64(0); seed < seeds; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			a := runFairScenario(t, seed)
			b := runFairScenario(t, seed)
			if a.hash != b.hash {
				t.Fatalf("seed %d: schedule hashes differ across identical runs: %#x vs %#x",
					seed, a.hash, b.hash)
			}
			for j := range a.jobs {
				if a.jobs[j] != b.jobs[j] {
					t.Fatalf("seed %d: job %d outcome differs across identical runs: %q vs %q",
						seed, j, a.jobs[j], b.jobs[j])
				}
			}
			totalRejects += a.rejects
			totalSheds += a.sheds
		})
	}
	// The sweep must actually exercise admission control: across 120
	// scenarios both refusal paths have to fire, or the properties above
	// were vacuous.
	if totalRejects == 0 {
		t.Fatalf("no quota rejection occurred across %d seeds — quotas never under pressure", seeds)
	}
	if totalSheds == 0 {
		t.Fatalf("no overload shed occurred across %d seeds — watermarks never under pressure", seeds)
	}
	t.Logf("sweep exercised admission control: %d quota rejects, %d overload sheds", totalRejects, totalSheds)
}

// Package sim is a deterministic simulation executor for the taskflow
// scheduler: a single-threaded, virtual-time implementation of the
// executor.Scheduler and executor.Context seams that runs the same task
// graphs as the real work-stealing pool while a single seeded PRNG
// permutes every scheduling choice the real executor makes
// nondeterministically — ready-queue pop order, steal-victim selection,
// batch-steal sizes, injection-shard targeting and drain order,
// retry-timer firing order, and park/wake interleavings.
//
// The point is replay. The chaos harness (internal/chaos) can inject
// faults deterministically, but on the real pool the *interleaving* that
// exposes a bug is gone the moment the run ends. Under simulation the
// whole schedule is a pure function of the seed: a failing property run
// or fuzz case prints its seed, and one `go test -run` invocation with
// that seed replays the identical schedule, fault plan and failure.
//
// # Model
//
// The simulation executes every task inline on the driving goroutine.
// Modeled state mirrors the real executor one level up from its lock-free
// machinery: per-worker deques and speculative cache slots, sharded
// injection queues, and a banked-signal park/wake protocol shaped like
// the eventcount notifier (prewait → re-check → park, with notify
// banking a signal for workers inside the prewait window). Each step the
// PRNG picks one enabled action:
//
//   - an active worker runs its cached task, pops a task from its deque
//     (any position — a superset of the owner-LIFO/thief-FIFO orders
//     reachable on the real pool), or steals a batch of seed-chosen size
//     from a seed-chosen victim deque or injection shard;
//
//   - a task that makes successors ready or spawns a subflow places them
//     on a seed-chosen deque (simCtx.target): spawn and successor-release
//     points are explicit choice steps, so the sweep explores spawn/join
//     interleavings directly instead of only via later steals;
//
//   - a worker with nothing visible announces intent to park (prewait);
//     on a later step it re-checks — consuming a banked signal or
//     observing published work cancels the park, otherwise it parks;
//
//   - an armed virtual timer fires (any armed timer, in seed-chosen
//     order — real retry backoffs carry jitter, so their relative firing
//     order is genuinely unconstrained).
//
// Virtual time never sleeps: Task.Retry backoff and similar waits fire
// instantly once chosen, and the virtual clock only advances.
//
// # Liveness detection
//
// If no action is enabled while queued work remains — every worker
// parked, no timer armed, tasks sitting in a queue — the model has lost
// a wakeup. The simulation records the failure (see Failure) and
// recovers by unparking every worker so the graph still drains and
// waiters unblock; tests then fail with a one-line seed recipe. This is
// exactly how a re-introduced notifier protocol bug (e.g. the pre-PR 6
// re-check-before-announce ordering) surfaces: as a deterministic,
// seed-replayable deadlock report instead of a hung -race run.
//
// Deadlock is not the only way to lose progress: a scheduler can also
// livelock, burning steps without ever executing a task. WithStallDetector
// (stall.go) arms the deterministic counterpart of the real executor's
// stall watchdog — every N steps it requires the executed counter to have
// moved whenever queued work is visible, and reports a seed-replayable
// stall failure otherwise.
//
// # What is and is not modeled
//
// The simulation explores scheduling orders, not memory-model behavior:
// everything runs on one goroutine, so torn reads, missing
// happens-before edges and other data races are invisible here — the
// race detector on the real pool still owns those. Wall-clock context
// deadlines (RunContext with a deadline) are also not virtualized; they
// fire from their own goroutines and belong to real-executor tests.
// A SimExecutor must be driven from a single goroutine; determinism is
// only guaranteed when task bodies are themselves deterministic and
// spawn no goroutines of their own.
package sim

import (
	"errors"
	"fmt"
	"math/rand"
	"time"

	"gotaskflow/internal/executor"
)

// maxStealBatch caps how many tasks one steal or drain moves, matching
// wsq.MaxStealBatch on the real pool.
const maxStealBatch = 16

// maxRecordedPanics bounds the contained-panic log, matching the real
// executor.
const maxRecordedPanics = 64

// maxRecoveries bounds lost-wakeup recoveries before the simulation
// gives up; a correct model never recovers even once.
const maxRecoveries = 100

// wstate is a modeled worker's park-protocol state.
type wstate uint8

const (
	wActive  wstate = iota // looking for or executing work
	wPrewait               // announced intent to park, re-check pending
	wParked                // blocked; only a wake makes it runnable
)

// actionKind enumerates the schedulable step types.
type actionKind uint8

const (
	aRunCache actionKind = iota
	aPop
	aSteal
	aPrewait
	aCommit
	aTimer
)

type action struct {
	kind actionKind
	w    int
}

// simTimer is one armed virtual-clock callback.
type simTimer struct {
	s  *SimExecutor
	at time.Duration
	fn func()
}

// Stop implements executor.Timer.
func (t *simTimer) Stop() bool { return t.s.stopTimer(t) }

// Stats is a snapshot of the simulation's scheduling counters.
type Stats struct {
	// Steps counts scheduling decisions; Executed counts task-body
	// invocations; Enqueued counts tasks accepted into any queue or
	// cache slot (external submissions and worker-context submissions).
	Steps, Executed, Enqueued uint64
	// Steals/StolenTasks and Drains/DrainedTasks split operations from
	// tasks moved, mirroring the real executor's metrics.
	Steals, StolenTasks, Drains, DrainedTasks uint64
	// Prewaits, WaitCancels, Parks and Wakes count park-protocol steps.
	Prewaits, WaitCancels, Parks, Wakes uint64
	// TimersFired counts virtual-clock callbacks.
	TimersFired uint64
	// FlowDrains/FlowDrainedTasks count multi-tenant flow-queue drains,
	// mirroring the real executor's per-worker flow counters.
	FlowDrains, FlowDrainedTasks uint64
	// Recoveries counts lost-wakeup recoveries — nonzero only when the
	// model (or an injected model bug) dropped a wake; see Failure.
	Recoveries int
}

// Check verifies the conservation law at quiescence before Shutdown:
// every task accepted into the simulation was executed exactly once.
func (st Stats) Check() error {
	if st.Enqueued != st.Executed {
		return fmt.Errorf("sim: enqueued %d tasks but executed %d", st.Enqueued, st.Executed)
	}
	return nil
}

// SimExecutor is the deterministic simulation scheduler. Create with New,
// hand to core.NewShared, and drive Run/Dispatch from one goroutine.
type SimExecutor struct {
	workers int
	nshards int
	seed    int64
	rng     *rand.Rand

	deques [][]*executor.Runnable // per-worker, newest at the end
	caches []*executor.Runnable   // per-worker speculative slot
	shards [][]*executor.Runnable // external injection, FIFO per shard
	state  []wstate
	signal int // banked wake signals for prewaiting workers

	timers []*simTimer
	now    time.Duration

	running  bool
	cur      int // worker executing the current task
	stopped  bool
	maxSteps uint64

	// lostWakeBug re-introduces the pre-eventcount notifier ordering
	// (re-check before announce, no signal banking) in the model, for
	// tests that validate the liveness detector. See sim_internal_test.go.
	lostWakeBug bool

	// Multi-tenant flow model (flow.go): registered flows, per-class
	// wheel state, and the optional per-drain service log the fairness
	// property tests analyze. strictDrainBug replaces the weighted
	// round-robin wheel with a registration-order scan — the injected
	// starvation bug the fairness sweep must catch.
	flows          []*simFlow
	classes        [executor.NumPriorityClasses]simClass
	strictDrainBug bool
	logServices    bool
	services       []FlowService

	// Stall watchdog model (stall.go): an optional executed-progress
	// check every stallWindow steps, mirroring the real
	// executor.Watchdog's no-progress detector, plus the injected
	// injection-stall bug used to validate its detection power.
	stallWindow uint64
	stallMark   uint64
	stallArmed  bool
	injStallBug bool

	st       Stats
	hash     uint64 // FNV-1a over every PRNG decision: the schedule fingerprint
	failures []error
	panics   []error

	scratch []action
}

// Option configures a SimExecutor.
type Option func(*SimExecutor)

// WithSeed sets the schedule seed. The default is 1 — unlike the real
// executor, the simulation favors reproducibility over per-instance
// variation, so unseeded runs are already replayable.
func WithSeed(seed int64) Option {
	return func(s *SimExecutor) { s.seed = seed }
}

// WithMaxSteps overrides the scheduling-step budget (default 5,000,000)
// after which the simulation panics, converting a livelocked graph
// (e.g. a condition-task loop that never exits) into a visible failure.
func WithMaxSteps(n uint64) Option {
	return func(s *SimExecutor) { s.maxSteps = n }
}

// withLostWakeupBug re-introduces the seed notifier's lost-wakeup
// ordering in the park/wake model: workers check for work before
// announcing intent to park, commit blindly, and wakes are not banked
// for workers inside the prewait window. Unexported — it exists so the
// liveness detector itself is testable.
func withLostWakeupBug() Option {
	return func(s *SimExecutor) { s.lostWakeBug = true }
}

// withStrictDrainBug replaces the weighted-round-robin flow wheel with a
// strict registration-order scan: the first backlogged flow of a class
// always wins, so later flows starve behind a standing backlog.
// Unexported — it exists so the fairness sweep's detection power is
// itself testable (see fairness_internal_test.go).
func withStrictDrainBug() Option {
	return func(s *SimExecutor) { s.strictDrainBug = true }
}

// WithServiceLog records one FlowService entry per flow-queue drain so
// tests can analyze service order and gaps (see MaxServiceGap). Costs
// memory proportional to drain count; off by default.
func WithServiceLog() Option {
	return func(s *SimExecutor) { s.logServices = true }
}

// New creates a simulation executor modeling n workers (n <= 0 means 1;
// the simulation never spawns goroutines regardless).
func New(n int, opts ...Option) *SimExecutor {
	if n <= 0 {
		n = 1
	}
	s := &SimExecutor{
		workers:  n,
		seed:     1,
		maxSteps: 5_000_000,
	}
	for _, opt := range opts {
		opt(s)
	}
	// Shard count mirrors the real pool's one-shard-per-four-workers
	// grouping (power of two, capped at 16).
	s.nshards = 1
	for s.nshards < (n+3)/4 && s.nshards < 16 {
		s.nshards <<= 1
	}
	s.rng = rand.New(rand.NewSource(s.seed))
	s.deques = make([][]*executor.Runnable, n)
	s.caches = make([]*executor.Runnable, n)
	s.shards = make([][]*executor.Runnable, s.nshards)
	s.state = make([]wstate, n)
	for i := range s.state {
		s.state[i] = wParked // an idle pool: everyone parked until work arrives
	}
	s.hash = 14695981039346656037 // FNV-1a offset basis
	return s
}

var _ executor.Scheduler = (*SimExecutor)(nil)

// Seed returns the schedule seed, for replay recipes.
func (s *SimExecutor) Seed() int64 { return s.seed }

// NumWorkers implements executor.Scheduler.
func (s *SimExecutor) NumWorkers() int { return s.workers }

// Stopped implements executor.Scheduler.
func (s *SimExecutor) Stopped() bool { return s.stopped }

// TraceExternal implements executor.Scheduler; the simulation records no
// traces.
func (s *SimExecutor) TraceExternal(executor.EventKind, executor.TaskMeta, uint64) {}

// Now returns the virtual clock.
func (s *SimExecutor) Now() time.Duration { return s.now }

// AdvanceBy moves the virtual clock forward — the hook for simulated
// sleeps (e.g. chaos delay faults) that must cost no wall time.
func (s *SimExecutor) AdvanceBy(d time.Duration) {
	if d > 0 {
		s.now += d
	}
}

// Stats returns the scheduling counters so far.
func (s *SimExecutor) Stats() Stats {
	st := s.st
	st.Recoveries = len(s.failures)
	return st
}

// ScheduleHash returns the FNV-1a fingerprint of every scheduling
// decision taken so far. Two runs of the same workload with the same
// seed produce identical hashes; tests use it to prove replay.
func (s *SimExecutor) ScheduleHash() uint64 { return s.hash }

// Failure joins the liveness failures detected so far (lost wakeups the
// model had to recover from). Nil means every schedule step was live.
func (s *SimExecutor) Failure() error { return errors.Join(s.failures...) }

// PanicError joins panics contained at the simulated-worker level,
// mirroring the real executor's PanicError.
func (s *SimExecutor) PanicError() error { return errors.Join(s.panics...) }

// pick draws a uniform choice in [0, n) and mixes it into the schedule
// fingerprint. Every scheduling decision goes through here.
func (s *SimExecutor) pick(n int) int {
	v := s.rng.Intn(n)
	s.hash = (s.hash ^ uint64(v)) * 1099511628211
	return v
}

// mix folds a non-PRNG event into the fingerprint (submissions, timer
// arms) so the hash covers the full interaction sequence.
func (s *SimExecutor) mix(v uint64) {
	s.hash = (s.hash ^ v) * 1099511628211
}

// Submit implements executor.Scheduler: enqueue on a seed-chosen
// injection shard, wake, and — when called from outside a running step —
// drive the simulation to quiescence before returning.
func (s *SimExecutor) Submit(r *executor.Runnable) error {
	if s.stopped {
		return executor.ErrShutdown
	}
	idx := s.pick(s.nshards)
	s.shards[idx] = append(s.shards[idx], r)
	s.st.Enqueued++
	s.wakeOne()
	s.drive()
	return nil
}

// SubmitBatch implements executor.Scheduler: the whole batch lands on
// one seed-chosen shard in order, like the real pool's one-lock batch
// submit; drains and steals spread it.
func (s *SimExecutor) SubmitBatch(rs []*executor.Runnable) error {
	if len(rs) == 0 {
		return nil
	}
	if s.stopped {
		return executor.ErrShutdown
	}
	idx := s.pick(s.nshards)
	s.shards[idx] = append(s.shards[idx], rs...)
	s.st.Enqueued += uint64(len(rs))
	s.wakeUpTo(len(rs))
	s.drive()
	return nil
}

// AfterFunc implements executor.Scheduler: arm a virtual-clock timer.
// Armed timers fire in seed-chosen order whenever the scheduler chooses
// a timer step — retry backoffs cost no wall time. After Shutdown, fn
// runs immediately, matching the real executor's bounded-lifetime
// contract.
func (s *SimExecutor) AfterFunc(d time.Duration, fn func()) executor.Timer {
	t := &simTimer{s: s, at: s.now + d, fn: fn}
	if s.stopped {
		fn()
		return t
	}
	s.mix(uint64(len(s.timers)) | 1<<63)
	s.timers = append(s.timers, t)
	s.drive()
	return t
}

// stopTimer disarms t; reports whether it was still armed.
func (s *SimExecutor) stopTimer(t *simTimer) bool {
	for i, a := range s.timers {
		if a == t {
			s.timers = append(s.timers[:i], s.timers[i+1:]...)
			return true
		}
	}
	return false
}

// Shutdown implements executor.Scheduler: refuse further submissions and
// resolve every armed timer now (their callbacks observe ErrShutdown on
// submission, exactly like the real executor's shutdown path). Pending
// queued tasks are discarded, as on the real pool.
func (s *SimExecutor) Shutdown() {
	if s.stopped {
		return
	}
	s.stopped = true
	for len(s.timers) > 0 {
		t := s.timers[0]
		s.timers = s.timers[1:]
		t.fn()
	}
}

// drive runs scheduling steps until no action is enabled. Reentrant
// calls (submissions made by a running task or firing timer) return
// immediately; the outermost frame keeps stepping until quiescence.
func (s *SimExecutor) drive() {
	if s.running || s.stopped {
		return
	}
	s.running = true
	defer func() { s.running = false }()
	for s.step() {
	}
}

// anyWork reports whether any deque, injection shard or flow queue holds
// a task — the published-work predicate park re-checks use (cache slots
// are worker-private and excluded, as on the real pool). Flow queues
// participate for the same reason they do in the real anyWork: a flow
// submission publishes its backlog before waking, so a parking worker
// that misses the notify must see the count here — excluding them would
// make the liveness detector report false lost wakeups.
func (s *SimExecutor) anyWork() bool {
	for _, dq := range s.deques {
		if len(dq) > 0 {
			return true
		}
	}
	for _, sh := range s.shards {
		if len(sh) > 0 {
			return true
		}
	}
	return s.flowBacklog() > 0
}

// stealable reports whether worker w could steal from anywhere: another
// worker's deque, an injection shard, or a flow queue.
func (s *SimExecutor) stealable(w int) bool {
	for v, dq := range s.deques {
		if v != w && len(dq) > 0 {
			return true
		}
	}
	if !s.injStallBug {
		for _, sh := range s.shards {
			if len(sh) > 0 {
				return true
			}
		}
	}
	return s.flowBacklog() > 0
}

// step performs one seed-chosen scheduling action. It returns false at
// quiescence: no worker can act and no timer is armed.
func (s *SimExecutor) step() bool {
	if s.stopped {
		return false // Shutdown mid-drive: queued work is discarded, as on the real pool
	}
	cands := s.scratch[:0]
	for w := 0; w < s.workers; w++ {
		switch s.state[w] {
		case wActive:
			switch {
			case s.caches[w] != nil:
				// The speculative cache is not a choice point: the real
				// worker always runs it next, with nothing in between on
				// that worker (other workers still interleave freely).
				cands = append(cands, action{aRunCache, w})
			case len(s.deques[w]) > 0:
				cands = append(cands, action{aPop, w})
			default:
				if s.stealable(w) {
					cands = append(cands, action{aSteal, w})
				}
				if !s.lostWakeBug || !s.anyWork() {
					// Correct protocol: announcing intent to park is always
					// allowed; the commit step re-checks. Buggy protocol:
					// the worker checks first and announces blindly.
					cands = append(cands, action{aPrewait, w})
				}
			}
		case wPrewait:
			cands = append(cands, action{aCommit, w})
		}
	}
	if len(s.timers) > 0 {
		cands = append(cands, action{kind: aTimer})
	}
	s.scratch = cands[:0] // retain capacity

	if len(cands) == 0 {
		if s.anyWork() {
			s.recoverLostWakeup()
			return true
		}
		return false // quiescent
	}

	c := cands[s.pick(len(cands))]
	s.st.Steps++
	if s.st.Steps > s.maxSteps {
		panic(fmt.Sprintf(
			"sim: exceeded %d scheduling steps (livelocked graph?) — seed %d",
			s.maxSteps, s.seed))
	}
	if s.stallWindow > 0 && s.st.Steps%s.stallWindow == 0 {
		s.checkStall()
	}
	s.perform(c)
	return true
}

// recoverLostWakeup records a liveness failure — queued work with every
// worker parked and no timer armed — and unparks everyone so the graph
// still drains and waiters can observe the recorded failure instead of
// hanging.
func (s *SimExecutor) recoverLostWakeup() {
	queued := s.flowBacklog()
	for _, dq := range s.deques {
		queued += len(dq)
	}
	for _, sh := range s.shards {
		queued += len(sh)
	}
	s.failures = append(s.failures, fmt.Errorf(
		"sim: lost wakeup at step %d: %d queued tasks with all %d workers parked (seed %d)",
		s.st.Steps, queued, s.workers, s.seed))
	if len(s.failures) > maxRecoveries {
		panic(fmt.Sprintf("sim: %d lost-wakeup recoveries — model is not live (seed %d)",
			len(s.failures), s.seed))
	}
	for w := range s.state {
		s.state[w] = wActive
	}
	s.signal = 0
}

// perform executes one chosen action.
func (s *SimExecutor) perform(c action) {
	switch c.kind {
	case aRunCache:
		r := s.caches[c.w]
		s.caches[c.w] = nil
		s.runTask(c.w, r)
	case aPop:
		dq := s.deques[c.w]
		i := s.pick(len(dq))
		r := dq[i]
		s.deques[c.w] = append(dq[:i], dq[i+1:]...)
		s.runTask(c.w, r)
	case aSteal:
		s.steal(c.w)
	case aPrewait:
		s.state[c.w] = wPrewait
		s.st.Prewaits++
	case aCommit:
		s.commitPark(c.w)
	case aTimer:
		i := s.pick(len(s.timers))
		t := s.timers[i]
		s.timers = append(s.timers[:i], s.timers[i+1:]...)
		if t.at > s.now {
			s.now = t.at
		}
		s.st.TimersFired++
		t.fn()
	}
}

// steal moves a seed-chosen batch from a seed-chosen victim deque or
// injection shard to worker w: the first task runs, the rest land on w's
// deque — the half-backlog batch policy of the real pool with the batch
// size itself under seed control.
//
// The multi-tenant drain order mirrors the real worker.steal exactly:
// Interactive flow backlog outranks deques and shards; Batch and then
// Background flows are tried only when no deque or shard has work.
func (s *SimExecutor) steal(w int) {
	if s.classBacklog(executor.Interactive) > 0 && s.drainFlows(w, executor.Interactive) {
		return
	}
	// Enumerate sources deterministically: worker deques then shards.
	var victims []int // worker index, or s.workers+shard index
	for v, dq := range s.deques {
		if v != w && len(dq) > 0 {
			victims = append(victims, v)
		}
	}
	if !s.injStallBug {
		for i, sh := range s.shards {
			if len(sh) > 0 {
				victims = append(victims, s.workers+i)
			}
		}
	}
	if len(victims) == 0 {
		if s.drainFlows(w, executor.Batch) {
			return
		}
		s.drainFlows(w, executor.Background)
		return
	}
	src := victims[s.pick(len(victims))]
	var q *[]*executor.Runnable
	if src < s.workers {
		q = &s.deques[src]
	} else {
		q = &s.shards[src-s.workers]
	}
	max := (len(*q) + 1) / 2
	if max > maxStealBatch {
		max = maxStealBatch
	}
	k := 1 + s.pick(max)
	grabbed := make([]*executor.Runnable, k)
	copy(grabbed, (*q)[:k])
	*q = append((*q)[:0], (*q)[k:]...)
	if src < s.workers {
		s.st.Steals++
		s.st.StolenTasks += uint64(k)
	} else {
		s.st.Drains++
		s.st.DrainedTasks += uint64(k)
	}
	if k > 1 {
		s.deques[w] = append(s.deques[w], grabbed[1:]...)
	}
	s.runTask(w, grabbed[0])
}

// commitPark is the second phase of the park protocol for worker w:
// consume a banked signal or observe published work (cancel), else park.
// Under the injected bug the worker parks blindly.
func (s *SimExecutor) commitPark(w int) {
	if s.lostWakeBug {
		s.state[w] = wParked
		s.st.Parks++
		return
	}
	if s.signal > 0 {
		s.signal--
		s.state[w] = wActive
		s.st.WaitCancels++
		return
	}
	if s.anyWork() {
		s.state[w] = wActive
		s.st.WaitCancels++
		return
	}
	s.state[w] = wParked
	s.st.Parks++
}

// wakeOne delivers one wake: bank a signal for a prewaiting worker
// (eventcount semantics — it cancels at commit), else unpark a
// seed-chosen parked worker, else no-op (everyone is active and will
// find the work). Reports whether a wake was delivered.
func (s *SimExecutor) wakeOne() bool {
	if !s.lostWakeBug {
		prewaiters := 0
		for _, st := range s.state {
			if st == wPrewait {
				prewaiters++
			}
		}
		if s.signal < prewaiters {
			s.signal++
			s.st.Wakes++
			return true
		}
	}
	var parked []int
	for w, st := range s.state {
		if st == wParked {
			parked = append(parked, w)
		}
	}
	if len(parked) == 0 {
		return false
	}
	w := parked[s.pick(len(parked))]
	s.state[w] = wActive
	s.st.Wakes++
	return true
}

// wakeUpTo delivers at most n wakes, stopping at the first failure.
func (s *SimExecutor) wakeUpTo(n int) int {
	woke := 0
	for ; woke < n; woke++ {
		if !s.wakeOne() {
			break
		}
	}
	return woke
}

// runTask executes one task inline on modeled worker w under panic
// containment mirroring the real executor's safeRun.
func (s *SimExecutor) runTask(w int, r *executor.Runnable) {
	prev := s.cur
	s.cur = w
	s.st.Executed++
	s.safeRun(w, r)
	s.cur = prev
}

func (s *SimExecutor) safeRun(w int, r *executor.Runnable) {
	defer func() {
		if rec := recover(); rec != nil {
			if len(s.panics) < maxRecordedPanics {
				s.panics = append(s.panics,
					fmt.Errorf("sim: task panicked on worker %d: %v", w, rec))
			}
		}
	}()
	(*r).Run(simCtx{s: s, w: w})
}

// simCtx implements executor.Context for tasks running under simulation.
type simCtx struct {
	s *SimExecutor
	w int
}

var _ executor.Context = simCtx{}

func (c simCtx) WorkerID() int                                       { return c.w }
func (c simCtx) Executor() executor.Scheduler                        { return c.s }
func (c simCtx) Tracing() bool                                       { return false }
func (c simCtx) Trace(executor.EventKind, executor.TaskMeta, uint64) {}

// target picks the deque a worker-context submission lands on. On the
// real pool a task submitted from a worker always enters that worker's
// own deque, but which worker ultimately *executes* it is decided later
// by stealing; the simulation collapses that two-step placement into one
// explicit seed choice, so successor-release and subflow-spawn points
// become choice steps the seed sweep explores directly (a superset of
// the real pool's reachable placements, like the any-position pop).
func (c simCtx) target() int {
	if c.s.workers == 1 {
		return c.w
	}
	return c.s.pick(c.s.workers)
}

// Submit pushes onto a seed-chosen deque and wakes one idler.
func (c simCtx) Submit(r *executor.Runnable) {
	w := c.target()
	c.s.deques[w] = append(c.s.deques[w], r)
	c.s.st.Enqueued++
	c.s.wakeOne()
}

// SubmitNoWake pushes without waking; the producer issues one Wake for
// the whole batch.
func (c simCtx) SubmitNoWake(r *executor.Runnable) {
	w := c.target()
	c.s.deques[w] = append(c.s.deques[w], r)
	c.s.st.Enqueued++
}

// SubmitBatch pushes the batch onto one seed-chosen deque (one placement
// choice per batch, like the real pool's one-publication batch push) and
// wakes up to len(rs) idlers.
func (c simCtx) SubmitBatch(rs []*executor.Runnable) {
	if len(rs) == 0 {
		return
	}
	w := c.target()
	c.s.deques[w] = append(c.s.deques[w], rs...)
	c.s.st.Enqueued += uint64(len(rs))
	c.s.wakeUpTo(len(rs))
}

// SubmitCached places the task in this worker's cache slot (it runs next
// on this worker, queues bypassed) or falls back to Submit when the slot
// is taken.
func (c simCtx) SubmitCached(r *executor.Runnable) {
	if c.s.caches[c.w] == nil {
		c.s.caches[c.w] = r
		c.s.st.Enqueued++
		return
	}
	c.Submit(r)
}

// Wake wakes up to n parked workers.
func (c simCtx) Wake(n int) { c.s.wakeUpTo(n) }

package sim

// White-box validation of the fairness instrument: re-introduce the
// classic multi-tenant starvation bug — strict registration-order flow
// draining with no weighted share — and prove the service-gap sweep
// catches it deterministically. A flow registered behind a chatty
// class-mate is bypassed for as long as the mate keeps its queue
// non-empty; the weighted-round-robin wheel bounds that bypass at one
// rotation, so MaxServiceGap exceeding WheelSize−1 is the violation
// signature. The control sweep shows the faithful model never violates
// the bound on the same seeds.

import (
	"testing"

	"gotaskflow/internal/core"
	"gotaskflow/internal/executor"
)

// runStarvationWorkload builds one sim (buggy or faithful), registers a
// heavy Batch flow ahead of a light one, pre-fills both queues from an
// orchestrator task (so nothing drains until both backlogs exist), runs
// to quiescence, and returns the light flow's worst service gap plus the
// schedule hash.
func runStarvationWorkload(t *testing.T, seed int64, bug bool) (gap int, bound int, hash uint64) {
	t.Helper()
	opts := []Option{WithSeed(seed), WithServiceLog()}
	if bug {
		opts = append(opts, withStrictDrainBug())
	}
	s := New(1, opts...)
	heavy := s.NewFlow("heavy", executor.FlowConfig{Class: executor.Batch, Weight: 1})
	light := s.NewFlow("light", executor.FlowConfig{Class: executor.Batch, Weight: 1})

	dispatch := func(f executor.Flow, n int) []*core.Future {
		futs := make([]*core.Future, n)
		for i := range futs {
			jf := core.NewShared(s).SetFlow(f)
			jf.Emplace1(func() {})
			futs[i] = jf.Dispatch()
		}
		return futs
	}

	var futs []*core.Future
	orch := core.NewShared(s)
	orch.Emplace1(func() {
		// Inside a running task the drive loop is reentrant — dispatches
		// only enqueue, so the heavy backlog is standing before the first
		// drain picks a flow.
		futs = append(futs, dispatch(heavy, 40)...)
		futs = append(futs, dispatch(light, 6)...)
	})
	if err := orch.Run(); err != nil {
		t.Fatalf("seed %d bug=%v: orchestrator failed: %v", seed, bug, err)
	}
	for i, f := range futs {
		if err := f.Get(); err != nil {
			t.Fatalf("seed %d bug=%v: job %d failed: %v", seed, bug, i, err)
		}
	}
	if err := s.Failure(); err != nil {
		t.Fatalf("seed %d bug=%v: liveness failure: %v", seed, bug, err)
	}
	if err := s.CheckFlows(); err != nil {
		t.Fatalf("seed %d bug=%v: %v", seed, bug, err)
	}
	lightIdx := light.(*simFlow).idx
	return MaxServiceGap(s.ServiceLog(), executor.Batch, lightIdx), s.WheelSize(executor.Batch) - 1, s.ScheduleHash()
}

// TestStrictDrainStarvationCaught sweeps 100 seeds under the injected
// strict-drain bug and requires the service-gap bound to be violated on
// most of them, with a deterministic replay of the first violating seed.
func TestStrictDrainStarvationCaught(t *testing.T) {
	const seeds = 100
	violations := 0
	var firstSeed int64 = -1
	for seed := int64(0); seed < seeds; seed++ {
		gap, bound, _ := runStarvationWorkload(t, seed, true)
		if gap > bound {
			violations++
			if firstSeed < 0 {
				firstSeed = seed
			}
		}
	}
	if violations == 0 {
		t.Fatalf("injected strict-drain bug never violated the service-gap bound across %d seeds", seeds)
	}
	if violations < seeds/2 {
		t.Fatalf("injected strict-drain bug violated the bound on only %d/%d seeds — detector too weak", violations, seeds)
	}
	t.Logf("starvation detected on %d/%d seeds; first at seed %d", violations, seeds, firstSeed)
	t.Logf("replay: the violation is a pure function of the seed — "+
		"runStarvationWorkload(seed=%d, bug=true) under "+
		"go test ./internal/sim -run '^TestStrictDrainStarvationCaught$' -v", firstSeed)

	// Replay determinism: the first violating seed violates again with an
	// identical schedule fingerprint and identical gap.
	gapA, boundA, hashA := runStarvationWorkload(t, firstSeed, true)
	gapB, _, hashB := runStarvationWorkload(t, firstSeed, true)
	if gapA <= boundA {
		t.Fatalf("seed %d did not re-violate on replay (gap %d, bound %d)", firstSeed, gapA, boundA)
	}
	if gapA != gapB || hashA != hashB {
		t.Fatalf("seed %d: replays diverge: gap %d/%d, hash %#x/%#x",
			firstSeed, gapA, gapB, hashA, hashB)
	}
}

// TestWeightedDrainHoldsServiceBound is the control: the faithful
// weighted-round-robin model never exceeds the wheel-rotation bound on
// the exact workload and seeds the bug sweep uses.
func TestWeightedDrainHoldsServiceBound(t *testing.T) {
	for seed := int64(0); seed < 100; seed++ {
		gap, bound, _ := runStarvationWorkload(t, seed, false)
		if gap > bound {
			t.Fatalf("seed %d: faithful model bypassed the light flow for %d consecutive drains, bound %d",
				seed, gap, bound)
		}
	}
}

// TestServiceGapScalesWithWeight pins the weighted share itself: tripling
// the heavy flow's weight must widen the light flow's admissible (and
// observed) service gap, and the observed gap must stay within the
// enlarged wheel's bound.
func TestServiceGapScalesWithWeight(t *testing.T) {
	worst := func(weight int) (gap, bound int) {
		s := New(1, WithSeed(7), WithServiceLog())
		heavy := s.NewFlow("heavy", executor.FlowConfig{Class: executor.Batch, Weight: weight})
		light := s.NewFlow("light", executor.FlowConfig{Class: executor.Batch, Weight: 1})
		var futs []*core.Future
		orch := core.NewShared(s)
		orch.Emplace1(func() {
			for i := 0; i < 40; i++ {
				jf := core.NewShared(s).SetFlow(heavy)
				jf.Emplace1(func() {})
				futs = append(futs, jf.Dispatch())
			}
			for i := 0; i < 6; i++ {
				jf := core.NewShared(s).SetFlow(light)
				jf.Emplace1(func() {})
				futs = append(futs, jf.Dispatch())
			}
		})
		if err := orch.Run(); err != nil {
			t.Fatalf("weight %d: %v", weight, err)
		}
		for _, f := range futs {
			if err := f.Get(); err != nil {
				t.Fatalf("weight %d: %v", weight, err)
			}
		}
		if err := s.CheckFlows(); err != nil {
			t.Fatalf("weight %d: %v", weight, err)
		}
		lightIdx := light.(*simFlow).idx
		return MaxServiceGap(s.ServiceLog(), executor.Batch, lightIdx), s.WheelSize(executor.Batch) - 1
	}
	gap1, bound1 := worst(1)
	gap3, bound3 := worst(3)
	if gap1 > bound1 || gap3 > bound3 {
		t.Fatalf("gap exceeds bound: w1 %d/%d, w3 %d/%d", gap1, bound1, gap3, bound3)
	}
	if bound3 <= bound1 {
		t.Fatalf("tripling the heavy weight did not widen the wheel: bounds %d vs %d", bound1, bound3)
	}
	t.Logf("light-flow worst gap: weight 1 → %d (bound %d), weight 3 → %d (bound %d)", gap1, bound1, gap3, bound3)
}

package sim_test

// Schedule fuzzing: the fuzz input is an interleaving seed plus
// graph-shape and fault-plan parameters, so the mutator explores the
// cross product of graph topologies, injected faults and scheduler
// interleavings. Every failure is replayable: the fuzz case fails with a
// one-line SIM_REPLAY recipe, and TestReplaySchedule re-runs exactly
// that schedule from the environment variable.
//
// Run with `make fuzz`, or directly:
//
//	go test ./internal/sim -fuzz '^FuzzSchedule$' -fuzztime 30s

import (
	"fmt"
	"math/rand"
	"os"
	"strconv"
	"strings"
	"testing"
	"time"

	"gotaskflow/internal/chaos"
	"gotaskflow/internal/core"
	"gotaskflow/internal/graphgen"
	"gotaskflow/internal/sim"
)

// replayEnv carries one schedule's parameters into TestReplaySchedule:
// five integers — schedSeed graphSeed workers n fault.
const replayEnv = "SIM_REPLAY"

// schedParams is one fuzz case after normalization.
type schedParams struct {
	schedSeed, graphSeed int64
	workers, n, fault    int
}

func normalize(schedSeed, graphSeed, workersRaw, nRaw, faultRaw int64) schedParams {
	abs := func(v int64) int64 {
		if v < 0 {
			v = -v
		}
		if v < 0 { // MinInt64
			v = 0
		}
		return v
	}
	return schedParams{
		schedSeed: schedSeed,
		graphSeed: graphSeed,
		workers:   1 + int(abs(workersRaw)%8),
		n:         1 + int(abs(nRaw)%64),
		fault:     int(abs(faultRaw) % 4),
	}
}

func (p schedParams) recipe() string {
	return fmt.Sprintf(
		"replay: %s='%d %d %d %d %d' go test ./internal/sim -run '^TestReplaySchedule$' -v",
		replayEnv, p.schedSeed, p.graphSeed, p.workers-1, p.n-1, p.fault)
}

// retryBudget is the retry count given to the tasks the plan marks
// retryable.
const retryBudget = 2

// schedResult captures everything two runs of the same schedule must
// agree on.
type schedResult struct {
	hash       uint64
	errText    string
	attempts   []int32
	bodies     []int32
	childRuns  int32
	stats      sim.Stats
	hardFaults int // planned Panic+Fail faults
}

// subflowShape derives the dynamic-tasking shape of a case from its graph
// seed: 0 = static graph only, 1 = every fourth task spawns independent
// children, 2 = spawned children are chained and some subflows detach.
// Shapes 1 and 2 turn spawn points into the scheduling choice steps the
// sweep explores (simCtx.target places each spawned child).
func subflowShape(graphSeed int64) int {
	shape := int(graphSeed % 3)
	if shape < 0 {
		shape += 3
	}
	return shape
}

// isSpawner reports whether task i is a subflow spawner under shape.
func isSpawner(shape, i int) bool { return shape > 0 && i%4 == 2 }

// spawnKids is the child count of spawner i.
func spawnKids(i int) int { return 2 + i%3 }

// runSchedule executes one simulated schedule under p: a graphgen DAG
// with chaos faults injected per p.fault, retries sprinkled from the
// graph seed, all scheduling choices permuted by the schedule seed.
func runSchedule(t *testing.T, p schedParams) schedResult {
	t.Helper()
	s := sim.New(p.workers, sim.WithSeed(p.schedSeed))
	tf := core.NewShared(s)

	var in *chaos.Injector
	switch p.fault {
	case 1: // errors only
		in = chaos.New(chaos.Config{Seed: p.schedSeed ^ p.graphSeed*31, PFail: 0.15})
	case 2: // errors + panics
		in = chaos.New(chaos.Config{Seed: p.schedSeed ^ p.graphSeed*31, PFail: 0.08, PPanic: 0.07})
	case 3: // errors + virtual-clock delays
		in = chaos.New(chaos.Config{
			Seed: p.schedSeed ^ p.graphSeed*31, PFail: 0.05, PDelay: 0.25,
			MaxDelay: 2 * time.Millisecond, Sleep: s.AdvanceBy,
		})
	}

	d := graphgen.Random(p.n, graphgen.Config{Seed: p.graphSeed})
	shape := subflowShape(p.graphSeed)
	attempts := make([]int32, p.n)
	bodies := make([]int32, p.n)
	var childRuns int32
	retryPick := rand.New(rand.NewSource(p.graphSeed + 1))
	tasks := make([]core.Task, p.n)
	for i := 0; i < p.n; i++ {
		i := i
		if isSpawner(shape, i) {
			// Dynamic task: the body spawns a child graph at runtime. Kept
			// chaos-free so the fault-free child-count invariant below stays
			// exact; the spawn placement itself is a seed choice step.
			kids := spawnKids(i)
			tasks[i] = tf.EmplaceSubflow(func(sf *core.Subflow) {
				attempts[i]++
				bodies[i]++
				var prev core.Task
				for k := 0; k < kids; k++ {
					c := sf.Emplace1(func() { childRuns++ })
					if shape == 2 && k > 0 {
						prev.Precede(c) // chained children: join order matters
					}
					prev = c
				}
				if shape == 2 && i%8 == 6 {
					sf.Detach() // detached: drains independently, holds the topology open
				}
			})
		} else {
			inner := func() { bodies[i]++ }
			var body func() error
			if in != nil {
				body = in.Wrap(fmt.Sprintf("t%d", i), inner)
			} else {
				body = func() error { inner(); return nil }
			}
			tasks[i] = tf.EmplaceErr(func() error { attempts[i]++; return body() })
			if p.fault > 0 && retryPick.Float64() < 0.2 {
				// Microsecond backoff: real time on the real pool, a virtual
				// timer here — it fires instantly in seed-chosen order.
				tasks[i] = tasks[i].Retry(retryBudget, time.Microsecond)
			}
		}
	}
	for u := 0; u < p.n; u++ {
		d.Successors(u, func(v int) { tasks[u].Precede(tasks[v]) })
	}

	// Watchdog: the simulation is deterministic, so a hang would also be
	// deterministic — convert it into a failure carrying the recipe
	// instead of a silent fuzz timeout.
	done := make(chan error, 1)
	go func() { done <- tf.Run() }()
	var err error
	select {
	case err = <-done:
	case <-time.After(60 * time.Second):
		t.Fatalf("schedule did not quiesce in 60s\n%s", p.recipe())
	}

	res := schedResult{
		hash:      s.ScheduleHash(),
		attempts:  attempts,
		bodies:    bodies,
		childRuns: childRuns,
		stats:     s.Stats(),
	}
	if err != nil {
		res.errText = err.Error()
	}
	if in != nil {
		res.hardFaults = in.CountPlanned(chaos.Panic) + in.CountPlanned(chaos.Fail)
	}

	// Invariants of any schedule, faulted or not.
	if lerr := s.Failure(); lerr != nil {
		t.Fatalf("liveness failure: %v\n%s", lerr, p.recipe())
	}
	if cerr := res.stats.Check(); cerr != nil {
		t.Fatalf("%v\n%s", cerr, p.recipe())
	}
	for i, a := range attempts {
		if a > 1+retryBudget {
			t.Fatalf("task %d attempted %d times, budget %d\n%s", i, a, 1+retryBudget, p.recipe())
		}
	}
	if res.hardFaults == 0 {
		// No panic/fail faults planned: the run must succeed and every
		// task body must run exactly once.
		if err != nil {
			t.Fatalf("fault-free schedule failed: %v\n%s", err, p.recipe())
		}
		for i, b := range bodies {
			if b != 1 {
				t.Fatalf("task %d body ran %d times, want 1\n%s", i, b, p.recipe())
			}
		}
		wantKids := int32(0)
		for i := 0; i < p.n; i++ {
			if isSpawner(shape, i) {
				wantKids += int32(spawnKids(i))
			}
		}
		if childRuns != wantKids {
			t.Fatalf("subflow children ran %d times, want %d\n%s", childRuns, wantKids, p.recipe())
		}
	} else if err == nil {
		// Success despite planned hard faults: legal only if none
		// actually fired (fail-fast cancellation can skip them) — but a
		// fired Fail/Panic fault must surface in the run error.
		for _, f := range in.Triggered() {
			if f.Mode == chaos.Fail || f.Mode == chaos.Panic {
				t.Fatalf("fault %v fired but run succeeded\n%s", f, p.recipe())
			}
		}
	}
	return res
}

func FuzzSchedule(f *testing.F) {
	f.Add(int64(1), int64(7), int64(4), int64(40), int64(0))
	f.Add(int64(2), int64(11), int64(1), int64(12), int64(1))
	f.Add(int64(3), int64(13), int64(7), int64(63), int64(2))
	f.Add(int64(4), int64(17), int64(2), int64(33), int64(3))
	f.Add(int64(99), int64(0), int64(0), int64(0), int64(1))
	f.Add(int64(5), int64(14), int64(3), int64(24), int64(0)) // shape 2: chained + detached subflows
	f.Add(int64(6), int64(19), int64(2), int64(30), int64(1)) // shape 1: independent spawns under faults
	f.Fuzz(func(t *testing.T, schedSeed, graphSeed, workersRaw, nRaw, faultRaw int64) {
		p := normalize(schedSeed, graphSeed, workersRaw, nRaw, faultRaw)
		a := runSchedule(t, p)
		b := runSchedule(t, p)
		// The replay guarantee under fuzz: an identical case re-executes
		// the identical schedule with the identical outcome.
		if a.hash != b.hash {
			t.Fatalf("schedule hashes differ across identical runs: %#x vs %#x\n%s",
				a.hash, b.hash, p.recipe())
		}
		if a.errText != b.errText {
			t.Fatalf("run errors differ across identical runs:\n%q\nvs\n%q\n%s",
				a.errText, b.errText, p.recipe())
		}
		if a.childRuns != b.childRuns {
			t.Fatalf("subflow child runs differ across identical runs: %d vs %d\n%s",
				a.childRuns, b.childRuns, p.recipe())
		}
		for i := range a.attempts {
			if a.attempts[i] != b.attempts[i] {
				t.Fatalf("task %d attempts differ across identical runs: %d vs %d\n%s",
					i, a.attempts[i], b.attempts[i], p.recipe())
			}
		}
	})
}

// TestReplaySchedule re-runs one schedule from the SIM_REPLAY
// environment variable (five integers: schedSeed graphSeed workers n
// fault — the exact line a failing fuzz case or sweep prints). With the
// variable unset the test skips.
func TestReplaySchedule(t *testing.T) {
	v := os.Getenv(replayEnv)
	if v == "" {
		t.Skipf("%s not set; set it to the five integers from a failure recipe", replayEnv)
	}
	fields := strings.Fields(v)
	if len(fields) != 5 {
		t.Fatalf("%s=%q: want 5 integers (schedSeed graphSeed workers n fault)", replayEnv, v)
	}
	nums := make([]int64, 5)
	for i, f := range fields {
		n, err := strconv.ParseInt(f, 10, 64)
		if err != nil {
			t.Fatalf("%s field %d (%q): %v", replayEnv, i, f, err)
		}
		nums[i] = n
	}
	p := normalize(nums[0], nums[1], nums[2], nums[3], nums[4])
	res := runSchedule(t, p)
	t.Logf("replayed schedule: workers=%d n=%d fault=%d hash=%#x steps=%d executed=%d err=%q",
		p.workers, p.n, p.fault, res.hash, res.stats.Steps, res.stats.Executed, res.errText)
}

package sim

// Acceptance test for the sim-backed shrinker: plant a scheduler bug
// (the seed notifier's lost-wakeup ordering, via withLostWakeupBug),
// find a seed where a ~60-node random graph trips the liveness
// detector, then greedily shrink the graph while the failure still
// reproduces. The minimized spec must land below 10 nodes and still
// fail, and the test prints it with a one-line SIM_SHRINK_REPLAY
// recipe that TestReplayShrunkSpec re-runs from the environment.

import (
	"fmt"
	"os"
	"strconv"
	"strings"
	"testing"
	"time"

	"gotaskflow/internal/core"
	"gotaskflow/internal/graphgen"
)

// shrinkReplayEnv carries one shrunk failure into TestReplayShrunkSpec:
// "seed workers spec", e.g. "7 1 3:0>1,1>2".
const shrinkReplayEnv = "SIM_SHRINK_REPLAY"

// randomSpec converts a graphgen DAG into the shrinker's GraphSpec form.
func randomSpec(n int, seed int64) GraphSpec {
	d := graphgen.Random(n, graphgen.Config{Seed: seed})
	g := GraphSpec{N: n}
	for u := 0; u < n; u++ {
		u := u
		d.Successors(u, func(v int) { g.Edges = append(g.Edges, [2]int{u, v}) })
	}
	return g
}

// runSpecLostWake executes one spec under the injected lost-wakeup bug
// and reports whether the liveness detector fired. Every node fails
// once and retries through the virtual timer — the only way work can
// arrive while modeled workers are mid-park, which is the window the
// injected bug loses wakes in. Recovery still drains the graph, so the
// run itself must succeed; the detector's report is the failure signal.
func runSpecLostWake(t *testing.T, spec GraphSpec, workers int, seed int64) bool {
	t.Helper()
	s := New(workers, WithSeed(seed), withLostWakeupBug())
	tf := core.NewShared(s)
	tasks := make([]core.Task, spec.N)
	attempts := make([]int, spec.N)
	for i := 0; i < spec.N; i++ {
		i := i
		tasks[i] = tf.EmplaceErr(func() error {
			attempts[i]++
			if attempts[i] == 1 {
				return fmt.Errorf("transient %d", i)
			}
			return nil
		}).Retry(2, time.Millisecond)
	}
	for _, e := range spec.Edges {
		tasks[e[0]].Precede(tasks[e[1]])
	}
	if err := tf.Run(); err != nil {
		t.Fatalf("spec %s seed %d: recovery did not drain the graph: %v", spec, seed, err)
	}
	return s.Failure() != nil
}

// firstLostWakeSeed sweeps seeds [0, maxSeeds) and returns the first one
// on which spec trips the injected bug's liveness detector, or -1.
func firstLostWakeSeed(t *testing.T, spec GraphSpec, workers int, maxSeeds int64) int64 {
	t.Helper()
	for s := int64(0); s < maxSeeds; s++ {
		if runSpecLostWake(t, spec, workers, s) {
			return s
		}
	}
	return -1
}

func TestShrinkMinimizesLostWakeupFailure(t *testing.T) {
	spec := randomSpec(60, 21)
	if firstLostWakeSeed(t, spec, 1, 200) < 0 {
		t.Fatalf("injected lost-wakeup bug never detected on the 60-node spec across 200 seeds")
	}

	// The predicate is "some seed in a small sweep still trips the
	// detector", not "the original seed does": deleting a node perturbs
	// every subsequent scheduling choice, so pinning one seed strands the
	// shrinker at a local minimum. Re-searching a bounded seed range per
	// candidate keeps the question deterministic — the sweep order is
	// fixed — while letting the failure follow the shrinking graph.
	fails := func(g GraphSpec) bool {
		// An empty graph cannot schedule anything, so it cannot fail.
		return g.N > 0 && firstLostWakeSeed(t, g, 1, 50) >= 0
	}
	min := Shrink(spec, fails)
	seed := firstLostWakeSeed(t, min, 1, 50)

	if !fails(min) {
		t.Fatalf("shrunk spec %s no longer reproduces the failure", min)
	}
	if min.N >= 10 {
		t.Fatalf("shrunk spec still has %d nodes (want < 10): %s", min.N, min)
	}
	// 1-minimality: no single further deletion may keep the failure.
	for i := min.N - 1; i >= 0; i-- {
		if fails(min.dropNode(i)) {
			t.Fatalf("spec %s is not 1-minimal: dropping node %d still fails", min, i)
		}
	}
	for j := len(min.Edges) - 1; j >= 0; j-- {
		if fails(min.dropEdge(j)) {
			t.Fatalf("spec %s is not 1-minimal: dropping edge %d still fails", min, j)
		}
	}

	// Round-trip: the printed form replays to the identical spec.
	parsed, err := ParseSpec(min.String())
	if err != nil {
		t.Fatalf("minimized spec does not re-parse: %v", err)
	}
	if parsed.String() != min.String() {
		t.Fatalf("spec round-trip mismatch: %s vs %s", parsed, min)
	}

	t.Logf("shrunk %d nodes to %d: %s", spec.N, min.N, min)
	t.Logf("replay: %s='%d 1 %s' go test ./internal/sim -run '^TestReplayShrunkSpec$' -v",
		shrinkReplayEnv, seed, min)
}

// TestReplayShrunkSpec re-runs one shrunk failure from the
// SIM_SHRINK_REPLAY environment variable ("seed workers spec" — the
// exact line TestShrinkMinimizesLostWakeupFailure prints). With the
// variable unset the test skips.
func TestReplayShrunkSpec(t *testing.T) {
	v := os.Getenv(shrinkReplayEnv)
	if v == "" {
		t.Skipf("%s not set; set it to \"seed workers spec\" from a shrink recipe", shrinkReplayEnv)
	}
	fields := strings.SplitN(strings.TrimSpace(v), " ", 3)
	if len(fields) != 3 {
		t.Fatalf("%s=%q: want \"seed workers spec\"", shrinkReplayEnv, v)
	}
	seed, err := strconv.ParseInt(fields[0], 10, 64)
	if err != nil {
		t.Fatalf("%s seed %q: %v", shrinkReplayEnv, fields[0], err)
	}
	workers, err := strconv.Atoi(fields[1])
	if err != nil || workers < 1 {
		t.Fatalf("%s workers %q: must be a positive integer", shrinkReplayEnv, fields[1])
	}
	spec, err := ParseSpec(fields[2])
	if err != nil {
		t.Fatal(err)
	}
	detected := runSpecLostWake(t, spec, workers, seed)
	t.Logf("replayed shrunk spec %s: workers=%d seed=%d lostWakeupDetected=%v",
		spec, workers, seed, detected)
}

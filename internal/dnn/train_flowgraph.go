package dnn

import (
	"gotaskflow/internal/flowgraph"
	"gotaskflow/internal/mnist"
)

// TrainFlowGraph trains the network with the Figure-11 decomposition
// expressed in the TBB FlowGraph model: one graph of continue_nodes for
// the whole run, explicit edges, and explicit TryPut on the source shuffle
// nodes — mirroring the paper's TBB implementation (Listing 8 style).
func TrainFlowGraph(cfg Config, d *mnist.Dataset, workers int) (*MLP, []float64) {
	net := NewMLP(cfg.Sizes, cfg.Seed)
	tr := NewTrainer(net, cfg.LR, cfg.BatchSize)
	batches := d.Len() / cfg.BatchSize
	layers := net.NumLayers()
	losses := make([]float64, cfg.Epochs)
	slots := numSlots(workers, cfg.Epochs)
	store := newSlotStore(slots, d.Len())

	g := flowgraph.NewGraph(workers)
	defer g.Close()

	msg := flowgraph.ContinueMsg{}
	lastF := make([]*flowgraph.ContinueNode, cfg.Epochs)
	shuffles := make([]*flowgraph.ContinueNode, cfg.Epochs)
	var prevUs []*flowgraph.ContinueNode
	for e := 0; e < cfg.Epochs; e++ {
		e := e
		slot := e % slots
		shuffle := flowgraph.NewContinueNode(g, func(flowgraph.ContinueMsg) {
			shuffled(d, cfg.Seed, e, store.imgs[slot], store.labels[slot])
		})
		shuffles[e] = shuffle
		if e >= slots {
			flowgraph.MakeEdge(lastF[e-slots], shuffle)
		}
		for b := 0; b < batches; b++ {
			b := b
			f := flowgraph.NewContinueNode(g, func(flowgraph.ContinueMsg) {
				tr.LoadBatch(store.imgs[slot], store.labels[slot], b*cfg.BatchSize)
				losses[e] += tr.Forward()
			})
			flowgraph.MakeEdge(shuffle, f)
			for _, u := range prevUs {
				flowgraph.MakeEdge(u, f)
			}
			prev := f
			prevUs = prevUs[:0]
			for l := layers - 1; l >= 0; l-- {
				l := l
				grad := flowgraph.NewContinueNode(g, func(flowgraph.ContinueMsg) { tr.Gradient(l) })
				flowgraph.MakeEdge(prev, grad)
				upd := flowgraph.NewContinueNode(g, func(flowgraph.ContinueMsg) { tr.Update(l) })
				flowgraph.MakeEdge(grad, upd)
				prevUs = append(prevUs, upd)
				prev = grad
			}
			if b == batches-1 {
				lastF[e] = f
			}
		}
	}
	// Explicitly fire every source node (the first `slots` shuffles have
	// no predecessors), as TBB requires.
	for e := 0; e < slots && e < cfg.Epochs; e++ {
		shuffles[e].TryPut(msg)
	}
	g.WaitForAll()
	for e := range losses {
		losses[e] /= float64(batches)
	}
	return net, losses
}

package dnn

import (
	"math"
	"testing"

	"gotaskflow/internal/matrix"
	"gotaskflow/internal/mnist"
)

func smallCfg() Config {
	return Config{
		Sizes:     []int{mnist.Pixels, 16, 10},
		Epochs:    3,
		BatchSize: 20,
		LR:        0.05,
		Seed:      7,
	}
}

func TestNewMLPShapes(t *testing.T) {
	net := NewMLP(Arch3, 1)
	if net.NumLayers() != 3 {
		t.Fatalf("Arch3 has %d layers, want 3", net.NumLayers())
	}
	net5 := NewMLP(Arch5, 1)
	if net5.NumLayers() != 5 {
		t.Fatalf("Arch5 has %d layers, want 5", net5.NumLayers())
	}
	for l := 0; l < net.NumLayers(); l++ {
		if net.W[l].Rows != net.Sizes[l] || net.W[l].Cols != net.Sizes[l+1] {
			t.Fatalf("W[%d] shape %dx%d", l, net.W[l].Rows, net.W[l].Cols)
		}
		if net.B[l].Rows != 1 || net.B[l].Cols != net.Sizes[l+1] {
			t.Fatalf("B[%d] shape wrong", l)
		}
	}
}

func TestNewMLPDeterministic(t *testing.T) {
	a, b := NewMLP(Arch3, 5), NewMLP(Arch3, 5)
	if !a.Equal(b, 0) {
		t.Fatal("same seed, different weights")
	}
	c := NewMLP(Arch3, 6)
	if a.Equal(c, 0) {
		t.Fatal("different seed, same weights")
	}
}

func TestCloneIndependent(t *testing.T) {
	a := NewMLP(Arch3, 1)
	b := a.Clone()
	b.W[0].Data[0] += 1
	if a.Equal(b, 0) {
		t.Fatal("Clone shares weight storage")
	}
}

// TestGradientCheck verifies analytic gradients against central finite
// differences on a tiny network.
func TestGradientCheck(t *testing.T) {
	sizes := []int{6, 5, 4}
	net := NewMLP(sizes, 3)
	batch := 3
	tr := NewTrainer(net, 0, batch)
	// Synthetic batch.
	for i := 0; i < batch; i++ {
		for j := 0; j < 6; j++ {
			tr.X.Set(i, j, float64((i*7+j*3)%5)/5)
		}
		tr.labels[i] = uint8(i % 4)
	}
	lossAt := func() float64 {
		// Forward without touching delta state beyond what Forward does.
		in := tr.X
		last := net.NumLayers() - 1
		for l := 0; l <= last; l++ {
			matrix.MulTo(tr.A[l], in, net.W[l])
			tr.A[l].AddRowVec(net.B[l])
			if l < last {
				tr.A[l].Sigmoid()
			} else {
				tr.A[l].SoftmaxRows()
			}
			in = tr.A[l]
		}
		return matrix.CrossEntropy(tr.A[last], tr.labels)
	}
	tr.Forward()
	for l := net.NumLayers() - 1; l >= 0; l-- {
		tr.Gradient(l)
	}
	const h = 1e-6
	for l := 0; l < net.NumLayers(); l++ {
		for _, probe := range []struct {
			m, g *matrix.Matrix
		}{{net.W[l], tr.dW[l]}, {net.B[l], tr.dB[l]}} {
			for _, idx := range []int{0, len(probe.m.Data) / 2, len(probe.m.Data) - 1} {
				orig := probe.m.Data[idx]
				probe.m.Data[idx] = orig + h
				up := lossAt()
				probe.m.Data[idx] = orig - h
				down := lossAt()
				probe.m.Data[idx] = orig
				numeric := (up - down) / (2 * h)
				analytic := probe.g.Data[idx]
				if math.Abs(numeric-analytic) > 1e-4*(1+math.Abs(numeric)) {
					t.Fatalf("layer %d idx %d: analytic %v vs numeric %v", l, idx, analytic, numeric)
				}
			}
		}
	}
}

func TestSequentialLossDecreases(t *testing.T) {
	d := mnist.Synthetic(400, 11)
	cfg := smallCfg()
	cfg.Epochs = 10
	cfg.LR = 0.3
	_, losses := TrainSequential(cfg, d)
	if losses[len(losses)-1] >= losses[0]*0.9 {
		t.Fatalf("loss did not decrease: first %v, last %v", losses[0], losses[len(losses)-1])
	}
}

func TestAccuracyImproves(t *testing.T) {
	train := mnist.Synthetic(600, 21)
	test := mnist.Synthetic(200, 22)
	cfg := smallCfg()
	cfg.Epochs = 12
	cfg.LR = 0.2
	before := Accuracy(NewMLP(cfg.Sizes, cfg.Seed), test)
	net, _ := TrainSequential(cfg, train)
	after := Accuracy(net, test)
	if after <= before+0.1 {
		t.Fatalf("accuracy %v -> %v; training ineffective", before, after)
	}
}

func TestNumTasksPerEpochMatchesPaper(t *testing.T) {
	// Paper Section IV-C: 4201 tasks per 3-layer epoch, 6601 per 5-layer
	// epoch, with 60k images and batch 100.
	c3 := Config{Sizes: Arch3, BatchSize: 100}
	if got := c3.NumTasksPerEpoch(60000); got != 4201 {
		t.Fatalf("3-layer tasks/epoch = %d, want 4201", got)
	}
	c5 := Config{Sizes: Arch5, BatchSize: 100}
	if got := c5.NumTasksPerEpoch(60000); got != 6601 {
		t.Fatalf("5-layer tasks/epoch = %d, want 6601", got)
	}
}

func TestAllBackendsMatchSequential(t *testing.T) {
	d := mnist.Synthetic(300, 31)
	cfg := smallCfg()
	want, wantLoss := TrainSequential(cfg, d)

	for _, workers := range []int{1, 2, 4} {
		gotTF, lossTF, err := TrainTaskflow(cfg, d, workers)
		if err != nil {
			t.Fatalf("Taskflow(%d workers): %v", workers, err)
		}
		if !want.Equal(gotTF, 0) {
			t.Fatalf("Taskflow(%d workers) weights differ from sequential", workers)
		}
		for e := range wantLoss {
			if lossTF[e] != wantLoss[e] {
				t.Fatalf("Taskflow(%d) loss[%d] = %v, want %v", workers, e, lossTF[e], wantLoss[e])
			}
		}
		gotFG, _ := TrainFlowGraph(cfg, d, workers)
		if !want.Equal(gotFG, 0) {
			t.Fatalf("FlowGraph(%d workers) weights differ from sequential", workers)
		}
		gotOMP, _ := TrainOMP(cfg, d, workers)
		if !want.Equal(gotOMP, 0) {
			t.Fatalf("OMP(%d workers) weights differ from sequential", workers)
		}
	}
}

func TestFiveLayerBackendsMatch(t *testing.T) {
	d := mnist.Synthetic(200, 41)
	cfg := Config{
		Sizes:     []int{mnist.Pixels, 16, 12, 10, 8, 10},
		Epochs:    2,
		BatchSize: 25,
		LR:        0.01,
		Seed:      9,
	}
	want, _ := TrainSequential(cfg, d)
	got, _, err := TrainTaskflow(cfg, d, 2)
	if err != nil {
		t.Fatal(err)
	}
	if !want.Equal(got, 0) {
		t.Fatal("5-layer Taskflow differs from sequential")
	}
	gotFG, _ := TrainFlowGraph(cfg, d, 2)
	if !want.Equal(gotFG, 0) {
		t.Fatal("5-layer FlowGraph differs from sequential")
	}
	gotOMP, _ := TrainOMP(cfg, d, 2)
	if !want.Equal(gotOMP, 0) {
		t.Fatal("5-layer OMP differs from sequential")
	}
}

func TestSlotCount(t *testing.T) {
	if numSlots(4, 100) != 8 {
		t.Fatalf("numSlots(4,100) = %d", numSlots(4, 100))
	}
	if numSlots(4, 3) != 3 {
		t.Fatalf("numSlots(4,3) = %d", numSlots(4, 3))
	}
	if numSlots(0, 5) != 1 {
		t.Fatalf("numSlots(0,5) = %d", numSlots(0, 5))
	}
}

func TestPredictShapes(t *testing.T) {
	net := NewMLP([]int{mnist.Pixels, 8, 10}, 1)
	d := mnist.Synthetic(10, 1)
	pred := Predict(net, d.Images)
	if len(pred) != 10 {
		t.Fatalf("Predict returned %d labels", len(pred))
	}
	for _, p := range pred {
		if p >= 10 {
			t.Fatalf("prediction %d out of range", p)
		}
	}
}

package dnn

import (
	"fmt"

	"gotaskflow/internal/core"
	"gotaskflow/internal/mnist"
)

// slotStore holds the bounded shuffle storage of the paper's Figure 11:
// at most 2×workers epochs' worth of shuffled views live at once.
type slotStore struct {
	imgs   [][][]float64
	labels [][]uint8
}

func newSlotStore(slots, n int) *slotStore {
	s := &slotStore{
		imgs:   make([][][]float64, slots),
		labels: make([][]uint8, slots),
	}
	for k := 0; k < slots; k++ {
		s.imgs[k] = make([][]float64, n)
		s.labels[k] = make([]uint8, n)
	}
	return s
}

// numSlots applies the paper's rule: storage degree is twice the number of
// threads, clamped to the epoch count.
func numSlots(workers, epochs int) int {
	s := 2 * workers
	if s > epochs {
		s = epochs
	}
	if s < 1 {
		s = 1
	}
	return s
}

// TrainTaskflow trains the network with the Figure-11 decomposition
// expressed as one static Cpp-Taskflow graph covering the full training
// run: per-epoch shuffle tasks Ei_Sj feeding per-batch pipelines
// F -> G(L-1) -> ... -> G(0) with each U(l) after G(l), and the next
// batch's F after every U of the previous batch. Task failures are
// returned, not re-panicked.
func TrainTaskflow(cfg Config, d *mnist.Dataset, workers int) (*MLP, []float64, error) {
	tf := core.New(workers)
	defer tf.Close()
	return TrainTaskflowShared(cfg, d, workers, tf)
}

// TrainTaskflowShared is TrainTaskflow on a caller-supplied taskflow,
// for callers that own the executor — e.g. to share a pool across
// experiments or to attach observability (metrics, tracing, the debug
// endpoint). workers still sizes the paper's bounded shuffle storage
// (2×workers slots) and should match the executor's worker count.
func TrainTaskflowShared(cfg Config, d *mnist.Dataset, workers int, tf *core.Taskflow) (*MLP, []float64, error) {
	net := NewMLP(cfg.Sizes, cfg.Seed)
	tr := NewTrainer(net, cfg.LR, cfg.BatchSize)
	batches := d.Len() / cfg.BatchSize
	layers := net.NumLayers()
	losses := make([]float64, cfg.Epochs)
	slots := numSlots(workers, cfg.Epochs)
	store := newSlotStore(slots, d.Len())

	lastF := make([]core.Task, cfg.Epochs) // final forward task per epoch
	var prevUs []core.Task                 // update tasks of the previous batch
	for e := 0; e < cfg.Epochs; e++ {
		e := e
		slot := e % slots
		// Named after the paper's Figure-11 shuffle tasks so traces and
		// DOT dumps show the epoch boundaries; the per-batch pipeline
		// tasks stay anonymous (positional names) to keep construction
		// cheap in the sweep benchmarks. The permuted copy itself is a
		// guided parallel loop spawned as a subflow: the permutation is
		// computed serially (identical across backends), the row copies
		// load-balance across whatever workers are idle between epochs.
		shuffle := tf.EmplaceSubflow(func(sf *core.Subflow) {
			perm := shufflePerm(d, cfg.Seed, e)
			imgs, labels := store.imgs[slot], store.labels[slot]
			core.ParallelForIndex(sf, 0, len(perm), 1, func(i int) {
				p := perm[i]
				imgs[i] = d.Images[p]
				labels[i] = d.Labels[p]
			}, 0, core.WithPartitioner(core.Guided))
		}).Name(fmt.Sprintf("E%d_S", e))
		if e >= slots {
			// The slot is free once the epoch that last used it has
			// loaded its final batch.
			shuffle.Succeed(lastF[e-slots])
		}
		for b := 0; b < batches; b++ {
			b := b
			f := tf.Emplace1(func() {
				tr.LoadBatch(store.imgs[slot], store.labels[slot], b*cfg.BatchSize)
				losses[e] += tr.Forward()
			})
			f.Succeed(shuffle)
			f.Succeed(prevUs...)
			prev := f
			prevUs = prevUs[:0]
			for l := layers - 1; l >= 0; l-- {
				l := l
				g := tf.Emplace1(func() { tr.Gradient(l) })
				g.Succeed(prev)
				u := tf.Emplace1(func() { tr.Update(l) })
				u.Succeed(g)
				prevUs = append(prevUs, u)
				prev = g
			}
			if b == batches-1 {
				lastF[e] = f
			}
		}
	}
	if err := tf.WaitForAll(); err != nil {
		return nil, nil, err
	}
	for e := range losses {
		losses[e] /= float64(batches)
	}
	return net, losses, nil
}

// Package dnn implements the deep-neural-network training experiment of
// the Cpp-Taskflow paper (Section IV-C): a multilayer perceptron trained
// with mini-batch gradient descent on MNIST-shaped data, parallelized with
// the coarse-grained task decomposition of the paper's Figure 11:
//
//   - the backward propagation of every mini-batch is grouped into
//     per-layer gradient tasks (Gi) and weight-update tasks (Ui),
//     pipelined layer by layer, so Ui overlaps Gi-1;
//
//   - a per-epoch shuffle task (Ei_Sj) runs ahead of the training chain,
//     with the number of shuffle storage slots limited to twice the worker
//     count to bound memory, so spare threads shuffle future epochs while
//     the current one trains.
//
// The same decomposition is built for the Taskflow, FlowGraph (TBB model)
// and OMP (OpenMP task-depend model) backends plus a sequential reference;
// all four produce bit-identical weights, which the tests verify.
//
// Paper parameters: 3-layer 784×32×32×10 and 5-layer 784×64×32×16×8×10
// architectures, batch size 100, learning rate 0.001. With MNIST's 60k
// training rows that is 600 batches and hence 600·(1+2·3)+1 = 4201 tasks
// per 3-layer epoch and 600·(1+2·5)+1 = 6601 per 5-layer epoch, exactly
// the counts the paper quotes.
package dnn

import (
	"math"
	"math/rand"

	"gotaskflow/internal/matrix"
	"gotaskflow/internal/mnist"
)

// Arch3 and Arch5 are the two architectures evaluated in the paper.
var (
	Arch3 = []int{mnist.Pixels, 32, 32, 10}
	Arch5 = []int{mnist.Pixels, 64, 32, 16, 8, 10}
)

// MLP is a multilayer perceptron with sigmoid hidden layers and a softmax
// cross-entropy output.
type MLP struct {
	Sizes []int
	W     []*matrix.Matrix // W[l] is Sizes[l] × Sizes[l+1]
	B     []*matrix.Matrix // B[l] is 1 × Sizes[l+1]
}

// NumLayers returns the number of weight layers (the paper's "3-layer" and
// "5-layer" counts).
func (n *MLP) NumLayers() int { return len(n.W) }

// NewMLP builds a deterministic Xavier-initialized network.
func NewMLP(sizes []int, seed int64) *MLP {
	if len(sizes) < 2 {
		panic("dnn: need at least input and output sizes")
	}
	n := &MLP{Sizes: sizes}
	for l := 0; l+1 < len(sizes); l++ {
		std := math.Sqrt(2.0 / float64(sizes[l]+sizes[l+1]))
		n.W = append(n.W, matrix.Randn(sizes[l], sizes[l+1], std, seed+int64(l)*101))
		n.B = append(n.B, matrix.New(1, sizes[l+1]))
	}
	return n
}

// Clone deep-copies the network.
func (n *MLP) Clone() *MLP {
	c := &MLP{Sizes: append([]int(nil), n.Sizes...)}
	for l := range n.W {
		c.W = append(c.W, n.W[l].Clone())
		c.B = append(c.B, n.B[l].Clone())
	}
	return c
}

// Equal reports whether two networks have identical parameters within eps.
func (n *MLP) Equal(o *MLP, eps float64) bool {
	if n.NumLayers() != o.NumLayers() {
		return false
	}
	for l := range n.W {
		if !matrix.Equal(n.W[l], o.W[l], eps) || !matrix.Equal(n.B[l], o.B[l], eps) {
			return false
		}
	}
	return true
}

// Trainer owns the per-batch scratch buffers for one network. The task
// decomposition serializes batches (each batch's updates precede the next
// batch's forward pass), so one scratch set suffices and is reused, as in
// the paper's implementation.
type Trainer struct {
	Net   *MLP
	LR    float64
	Batch int

	X      *matrix.Matrix   // current batch inputs
	labels []uint8          // current batch labels
	A      []*matrix.Matrix // activations per layer
	delta  []*matrix.Matrix // back-propagated errors per layer
	dW     []*matrix.Matrix
	dB     []*matrix.Matrix
}

// NewTrainer allocates scratch for the given batch size.
func NewTrainer(net *MLP, lr float64, batch int) *Trainer {
	tr := &Trainer{
		Net:    net,
		LR:     lr,
		Batch:  batch,
		X:      matrix.New(batch, net.Sizes[0]),
		labels: make([]uint8, batch),
	}
	for l := 0; l < net.NumLayers(); l++ {
		tr.A = append(tr.A, matrix.New(batch, net.Sizes[l+1]))
		tr.delta = append(tr.delta, matrix.New(batch, net.Sizes[l+1]))
		tr.dW = append(tr.dW, matrix.New(net.Sizes[l], net.Sizes[l+1]))
		tr.dB = append(tr.dB, matrix.New(1, net.Sizes[l+1]))
	}
	return tr
}

// LoadBatch copies rows [beg, beg+Batch) of the (already shuffled) images
// and labels into the input buffer.
func (tr *Trainer) LoadBatch(images [][]float64, labels []uint8, beg int) {
	for i := 0; i < tr.Batch; i++ {
		copy(tr.X.Row(i), images[beg+i])
		tr.labels[i] = labels[beg+i]
	}
}

// Forward runs the forward pass on the loaded batch, returns the mean
// cross-entropy loss, and seeds the output-layer delta — the paper's
// per-batch forward task F.
func (tr *Trainer) Forward() float64 {
	in := tr.X
	last := tr.Net.NumLayers() - 1
	for l := 0; l <= last; l++ {
		matrix.MulTo(tr.A[l], in, tr.Net.W[l])
		tr.A[l].AddRowVec(tr.Net.B[l])
		if l < last {
			tr.A[l].Sigmoid()
		} else {
			tr.A[l].SoftmaxRows()
		}
		in = tr.A[l]
	}
	loss := matrix.CrossEntropy(tr.A[last], tr.labels)
	tr.delta[last].CopyFrom(tr.A[last])
	tr.delta[last].SoftmaxCrossEntropyGrad(tr.labels)
	return loss
}

// Gradient computes layer l's weight/bias gradients from delta[l] and
// back-propagates delta[l-1] — the paper's task Gi. It must run for layers
// in descending order; it reads W[l] (pre-update), so the matching Update
// may run concurrently with Gradient(l-1).
func (tr *Trainer) Gradient(l int) {
	aIn := tr.X
	if l > 0 {
		aIn = tr.A[l-1]
	}
	matrix.MulATBTo(tr.dW[l], aIn, tr.delta[l])
	matrix.ColSumTo(tr.dB[l], tr.delta[l])
	if l > 0 {
		matrix.MulABTTo(tr.delta[l-1], tr.delta[l], tr.Net.W[l])
		tr.delta[l-1].SigmoidGradFrom(tr.A[l-1])
	}
}

// Update applies the SGD step to layer l — the paper's task Ui.
func (tr *Trainer) Update(l int) {
	tr.Net.W[l].AddScaled(-tr.LR, tr.dW[l])
	tr.Net.B[l].AddScaled(-tr.LR, tr.dB[l])
}

// TrainBatch runs one full batch sequentially: forward, all gradients,
// all updates. This is the semantics every task decomposition must match.
func (tr *Trainer) TrainBatch(images [][]float64, labels []uint8, beg int) float64 {
	tr.LoadBatch(images, labels, beg)
	loss := tr.Forward()
	for l := tr.Net.NumLayers() - 1; l >= 0; l-- {
		tr.Gradient(l)
	}
	for l := tr.Net.NumLayers() - 1; l >= 0; l-- {
		tr.Update(l)
	}
	return loss
}

// Predict returns the argmax class for each row of a dataset slice using a
// throwaway forward pass.
func Predict(net *MLP, images [][]float64) []uint8 {
	out := make([]uint8, len(images))
	tr := NewTrainer(net, 0, 1)
	for i, img := range images {
		copy(tr.X.Row(0), img)
		tr.labels[0] = 0
		tr.Forward()
		probs := tr.A[net.NumLayers()-1].Row(0)
		best := 0
		for j, p := range probs {
			if p > probs[best] {
				best = j
			}
		}
		out[i] = uint8(best)
	}
	return out
}

// Accuracy scores a network against a dataset.
func Accuracy(net *MLP, d *mnist.Dataset) float64 {
	pred := Predict(net, d.Images)
	correct := 0
	for i := range pred {
		if pred[i] == d.Labels[i] {
			correct++
		}
	}
	return float64(correct) / float64(len(pred))
}

// shufflePerm computes the epoch-e permutation of the dataset. It depends
// only on (seed, epoch), so every backend sees identical batches however
// the permuted copy itself is parallelized.
func shufflePerm(d *mnist.Dataset, seed int64, epoch int) []int {
	rng := rand.New(rand.NewSource(seed ^ int64(epoch)*0x9e3779b9))
	return rng.Perm(d.Len())
}

// shuffled produces the epoch-e permuted copy of the dataset into the slot
// buffers — the paper's per-epoch shuffle task body.
func shuffled(d *mnist.Dataset, seed int64, epoch int, imgs [][]float64, labels []uint8) {
	for i, p := range shufflePerm(d, seed, epoch) {
		imgs[i] = d.Images[p]
		labels[i] = d.Labels[p]
	}
}

// Config collects the training hyperparameters of the experiment.
type Config struct {
	Sizes     []int
	Epochs    int
	BatchSize int
	LR        float64
	Seed      int64
}

// NumTasksPerEpoch returns the task count of one epoch under the Figure-11
// decomposition: one shuffle + per batch (one forward + one gradient and
// one update per layer). For the paper's parameters this reproduces the
// quoted 4201 (3-layer) and 6601 (5-layer) tasks.
func (cfg Config) NumTasksPerEpoch(datasetLen int) int {
	batches := datasetLen / cfg.BatchSize
	layers := len(cfg.Sizes) - 1
	return 1 + batches*(1+2*layers)
}

// TrainSequential is the single-threaded reference implementation.
// It returns the trained network and the mean loss per epoch.
func TrainSequential(cfg Config, d *mnist.Dataset) (*MLP, []float64) {
	net := NewMLP(cfg.Sizes, cfg.Seed)
	tr := NewTrainer(net, cfg.LR, cfg.BatchSize)
	batches := d.Len() / cfg.BatchSize
	losses := make([]float64, cfg.Epochs)
	imgs := make([][]float64, d.Len())
	labels := make([]uint8, d.Len())
	for e := 0; e < cfg.Epochs; e++ {
		shuffled(d, cfg.Seed, e, imgs, labels)
		var sum float64
		for b := 0; b < batches; b++ {
			sum += tr.TrainBatch(imgs, labels, b*cfg.BatchSize)
		}
		losses[e] = sum / float64(batches)
	}
	return net, losses
}

package dnn

import (
	"fmt"

	"gotaskflow/internal/mnist"
	"gotaskflow/internal/omp"
)

// TrainOMP trains the network with the Figure-11 decomposition expressed
// in the OpenMP task-depend model. As the paper stresses, this forces a
// hard-coded declaration order consistent with sequential execution and an
// explicit dependency token on both sides of every constraint, specific to
// the DNN architecture — the productivity cost Table III quantifies.
func TrainOMP(cfg Config, d *mnist.Dataset, workers int) (*MLP, []float64) {
	net := NewMLP(cfg.Sizes, cfg.Seed)
	tr := NewTrainer(net, cfg.LR, cfg.BatchSize)
	batches := d.Len() / cfg.BatchSize
	layers := net.NumLayers()
	losses := make([]float64, cfg.Epochs)
	slots := numSlots(workers, cfg.Epochs)
	store := newSlotStore(slots, d.Len())

	team := omp.NewParallel(workers)
	defer team.Close()

	slotTok := func(e int) string { return fmt.Sprintf("slot_%d", e) }
	lastFTok := func(e int) string { return fmt.Sprintf("lastF_%d", e) }
	gTok := func(e, b, l int) string { return fmt.Sprintf("g_%d_%d_%d", e, b, l) }
	uTok := func(e, b, l int) string { return fmt.Sprintf("u_%d_%d_%d", e, b, l) }
	fTok := func(e, b int) string { return fmt.Sprintf("f_%d_%d", e, b) }

	team.Single(func(s *omp.Scope) {
		for e := 0; e < cfg.Epochs; e++ {
			e := e
			slot := e % slots
			// Shuffle task: writes the slot; waits for the last reader of
			// the epoch that previously used this slot.
			shuffleDeps := []omp.Dep{omp.Out(slotTok(e))}
			if e >= slots {
				shuffleDeps = append(shuffleDeps, omp.In(lastFTok(e-slots)))
			}
			s.Task(func() {
				shuffled(d, cfg.Seed, e, store.imgs[slot], store.labels[slot])
			}, shuffleDeps...)

			for b := 0; b < batches; b++ {
				b := b
				// Forward task: reads the slot, waits for every update of
				// the previous batch.
				fDeps := []omp.Dep{omp.In(slotTok(e))}
				if b > 0 || e > 0 {
					pe, pb := e, b-1
					if b == 0 {
						pe, pb = e-1, batches-1
					}
					for l := 0; l < layers; l++ {
						fDeps = append(fDeps, omp.In(uTok(pe, pb, l)))
					}
				}
				outs := []string{fTok(e, b)}
				if b == batches-1 {
					outs = append(outs, lastFTok(e))
				}
				fDeps = append(fDeps, omp.Out(outs...))
				s.Task(func() {
					tr.LoadBatch(store.imgs[slot], store.labels[slot], b*cfg.BatchSize)
					losses[e] += tr.Forward()
				}, fDeps...)

				// Gradient chain and updates, declared in sequential
				// (descending-layer) order.
				for l := layers - 1; l >= 0; l-- {
					l := l
					var gDeps []omp.Dep
					if l == layers-1 {
						gDeps = append(gDeps, omp.In(fTok(e, b)))
					} else {
						gDeps = append(gDeps, omp.In(gTok(e, b, l+1)))
					}
					gDeps = append(gDeps, omp.Out(gTok(e, b, l)))
					s.Task(func() { tr.Gradient(l) }, gDeps...)
					s.Task(func() { tr.Update(l) },
						omp.In(gTok(e, b, l)), omp.Out(uTok(e, b, l)))
				}
			}
		}
	})
	for e := range losses {
		losses[e] /= float64(batches)
	}
	return net, losses
}

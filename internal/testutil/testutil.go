// Package testutil holds assertions shared across the test suites.
package testutil

import (
	"fmt"
	"runtime"
	"strings"
	"testing"
	"time"
)

// leakSettle is how long NoLeaks waits for goroutine counts to drain
// back to the baseline before failing. Executor shutdown is synchronous,
// but runtime bookkeeping (timer goroutines, finished workers not yet
// reaped by the scheduler) can lag a few milliseconds behind.
const leakSettle = 2 * time.Second

// NoLeaks snapshots the goroutine count now and registers a cleanup that
// fails the test if the count has not returned to the baseline by the
// end of the test (allowing leakSettle for stragglers to exit). On
// failure it dumps all goroutine stacks, so the leaked goroutine is
// identified, not just counted. Call it first in any test that creates
// executors, taskflows or timers:
//
//	func TestLifecycle(t *testing.T) {
//		testutil.NoLeaks(t)
//		e := executor.New(4)
//		...
//	}
//
// Subtests sharing one executor should call NoLeaks in the parent test
// only — the cleanup runs after the subtests' own cleanups, so the
// executor's Shutdown (deferred in the parent) is still observed.
func NoLeaks(t testing.TB) {
	t.Helper()
	base := runtime.NumGoroutine()
	t.Cleanup(func() {
		deadline := time.Now().Add(leakSettle)
		var n int
		for {
			n = runtime.NumGoroutine()
			if n <= base {
				return
			}
			if time.Now().After(deadline) {
				break
			}
			time.Sleep(5 * time.Millisecond)
		}
		buf := make([]byte, 1<<20)
		buf = buf[:runtime.Stack(buf, true)]
		t.Errorf("goroutine leak: %d goroutines at test end, baseline %d\n%s",
			n, base, indent(string(buf)))
	})
}

func indent(s string) string {
	return "\t" + strings.ReplaceAll(strings.TrimRight(s, "\n"), "\n", "\n\t")
}

// Eventually polls cond every tick until it returns true or the deadline
// passes, then fails the test with msg. It is the shared shape of the
// "wait for counter to settle" loops in the executor and chaos suites.
func Eventually(t testing.TB, d time.Duration, cond func() bool, format string, args ...any) {
	t.Helper()
	deadline := time.Now().Add(d)
	for {
		if cond() {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("condition not reached within %v: %s", d, fmt.Sprintf(format, args...))
		}
		time.Sleep(2 * time.Millisecond)
	}
}

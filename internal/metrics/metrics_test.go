package metrics

import (
	"encoding/json"
	"expvar"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"

	"gotaskflow/internal/executor"
)

func runSome(t *testing.T, e *executor.Executor, n int) {
	t.Helper()
	var wg sync.WaitGroup
	wg.Add(n)
	for i := 0; i < n; i++ {
		if err := e.SubmitFunc(func(executor.Context) { wg.Done() }); err != nil {
			t.Fatal(err)
		}
	}
	wg.Wait()
}

func TestWritePrometheus(t *testing.T) {
	e := executor.New(2, executor.WithMetrics())
	defer e.Shutdown()
	runSome(t, e, 100)

	var sb strings.Builder
	if err := WritePrometheus(&sb, e); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		"# TYPE gotaskflow_executed_total counter",
		`gotaskflow_executed_total{worker="0"}`,
		`gotaskflow_executed_total{worker="1"}`,
		"# TYPE gotaskflow_deque_depth gauge",
		"gotaskflow_injection_pushes_total 100",
		"gotaskflow_wakes_precise_total",
		"# TYPE gotaskflow_prewaits_total counter",
		`gotaskflow_prewaits_total{worker="0"}`,
		`gotaskflow_wait_cancels_total{worker="1"}`,
		"# TYPE gotaskflow_injection_shard_depth gauge",
		`gotaskflow_injection_shard_pushes_total{shard="0"} 100`,
		`gotaskflow_injection_shard_drained_tasks_total{shard="0"}`,
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("prometheus output missing %q:\n%s", want, out)
		}
	}
	// Every non-comment line is "name[{labels}] value".
	for _, line := range strings.Split(strings.TrimSpace(out), "\n") {
		if strings.HasPrefix(line, "#") {
			continue
		}
		if fields := strings.Fields(line); len(fields) != 2 {
			t.Fatalf("malformed exposition line %q", line)
		}
	}
}

func TestWritePrometheusDisabledSource(t *testing.T) {
	e := executor.New(2)
	defer e.Shutdown()
	var sb strings.Builder
	if err := WritePrometheus(&sb, e); err != nil {
		t.Fatal(err)
	}
	if sb.Len() != 0 {
		t.Fatalf("metrics-disabled source produced output:\n%s", sb.String())
	}
}

func TestHandler(t *testing.T) {
	e := executor.New(2, executor.WithMetrics())
	defer e.Shutdown()
	runSome(t, e, 10)

	rec := httptest.NewRecorder()
	Handler(e).ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
	if rec.Code != 200 {
		t.Fatalf("status = %d, want 200", rec.Code)
	}
	if ct := rec.Header().Get("Content-Type"); !strings.Contains(ct, "text/plain") {
		t.Fatalf("Content-Type = %q", ct)
	}
	if !strings.Contains(rec.Body.String(), "gotaskflow_executed_total") {
		t.Fatalf("handler body missing counters:\n%s", rec.Body.String())
	}
}

func TestPublishExpvar(t *testing.T) {
	e := executor.New(2, executor.WithMetrics())
	defer e.Shutdown()
	runSome(t, e, 50)

	Publish("taskflow_sched_test", e)
	v := expvar.Get("taskflow_sched_test")
	if v == nil {
		t.Fatal("expvar variable not registered")
	}
	var snap executor.Snapshot
	if err := json.Unmarshal([]byte(v.String()), &snap); err != nil {
		t.Fatalf("expvar value is not a Snapshot: %v\n%s", err, v.String())
	}
	if snap.InjectionPushes != 50 {
		t.Fatalf("expvar snapshot InjectionPushes = %d, want 50", snap.InjectionPushes)
	}
	if len(snap.Workers) != 2 {
		t.Fatalf("expvar snapshot has %d workers, want 2", len(snap.Workers))
	}
}

// TestScrapeWhileRunning covers the scrape-during-execution contract under
// the race detector.
func TestScrapeWhileRunning(t *testing.T) {
	e := executor.New(4, executor.WithMetrics())
	defer e.Shutdown()
	stop := make(chan struct{})
	var rg sync.WaitGroup
	rg.Add(1)
	go func() {
		defer rg.Done()
		var sb strings.Builder
		for {
			select {
			case <-stop:
				return
			default:
			}
			sb.Reset()
			if err := WritePrometheus(&sb, e); err != nil {
				t.Error(err)
				return
			}
		}
	}()
	for i := 0; i < 20; i++ {
		runSome(t, e, 50)
	}
	close(stop)
	rg.Wait()
}

// TestWritePrometheusFlowSeries: per-flow series carry flow and class
// labels and reflect the flow's always-on counters.
func TestWritePrometheusFlowSeries(t *testing.T) {
	e := executor.New(2, executor.WithMetrics())
	defer e.Shutdown()
	f := e.NewFlow("tenant-a", executor.FlowConfig{Class: executor.Batch, Weight: 3, MaxInFlight: 4})
	if err := f.Admit(2); err != nil {
		t.Fatal(err)
	}
	var done sync.WaitGroup
	done.Add(2)
	for i := 0; i < 2; i++ {
		if err := f.Submit(executor.NewTask(func(executor.Context) { done.Done() })); err != nil {
			t.Fatal(err)
		}
	}
	done.Wait()
	f.Release(2)

	var sb strings.Builder
	if err := WritePrometheus(&sb, e); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		"# TYPE gotaskflow_flow_pushes_total counter",
		`gotaskflow_flow_pushes_total{flow="tenant-a",class="batch"} 2`,
		`gotaskflow_flow_admitted_total{flow="tenant-a",class="batch"} 2`,
		`gotaskflow_flow_released_total{flow="tenant-a",class="batch"} 2`,
		`gotaskflow_flow_in_flight{flow="tenant-a",class="batch"} 0`,
		`gotaskflow_flow_peak_in_flight{flow="tenant-a",class="batch"} 2`,
		`gotaskflow_flow_weight{flow="tenant-a",class="batch"} 3`,
		`gotaskflow_flow_drained_tasks_total{flow="tenant-a",class="batch"} 2`,
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("prometheus output missing %q:\n%s", want, out)
		}
	}
}

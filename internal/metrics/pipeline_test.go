package metrics

import (
	"strings"
	"testing"

	"gotaskflow/internal/executor"
	"gotaskflow/internal/pipeline"
)

func TestWritePipeline(t *testing.T) {
	e := executor.New(2)
	defer e.Shutdown()
	const n = 30
	p := pipeline.New(e, 3,
		pipeline.Pipe{Type: pipeline.Serial, Fn: func(pf *pipeline.Pipeflow) {
			if pf.Token() >= n {
				pf.Stop()
			}
		}},
		pipeline.Pipe{Type: pipeline.Parallel, Fn: func(pf *pipeline.Pipeflow) {
			if tok := pf.Token(); tok > 0 && pf.Deferrals() == 0 {
				pf.Defer(tok - 1)
			}
		}},
	).Named("ingest")
	if got := p.RunN(2); got != 2*n {
		t.Fatalf("RunN = %d, want %d", got, 2*n)
	}
	var b strings.Builder
	if err := WritePipeline(&b, p); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		`gotaskflow_pipeline_runs_total{pipeline="ingest"} 2`,
		`gotaskflow_pipeline_tokens_total{pipeline="ingest"} 60`,
		`gotaskflow_pipeline_dropped_errors{pipeline="ingest"} 0`,
		`gotaskflow_pipeline_line_tokens_total{pipeline="ingest",line="0"} `,
		`gotaskflow_pipeline_line_tokens_total{pipeline="ingest",line="2"} `,
		"# TYPE gotaskflow_pipeline_deferrals_total counter",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("export missing %q:\n%s", want, out)
		}
	}
	// Every line processed ~n/lines tokens per run; none may be zero with
	// 60 tokens over 3 lines.
	st := p.Stats()
	for l, c := range st.PerLine {
		if c == 0 {
			t.Fatalf("line %d shows 0 tokens: %v", l, st.PerLine)
		}
	}
}

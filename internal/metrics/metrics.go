// Package metrics exports an executor's scheduler counters (see
// internal/executor WithMetrics) to standard monitoring surfaces using
// only the standard library:
//
//   - WritePrometheus renders the Prometheus text exposition format;
//   - Handler serves it over HTTP (mount under /metrics);
//   - Publish registers the snapshot as an expvar variable, appearing as
//     JSON under the process's /debug/vars.
//
// All exports read a fresh MetricsSnapshot per scrape: they are safe while
// the executor runs and cost nothing between scrapes.
package metrics

import (
	"expvar"
	"fmt"
	"io"
	"net/http"
	"strings"
	"time"

	"gotaskflow/internal/core"
	"gotaskflow/internal/executor"
)

// Source is the snapshot provider — *executor.Executor implements it.
type Source interface {
	MetricsSnapshot() (executor.Snapshot, bool)
}

// LatencySource provides the per-flow latency histograms —
// *executor.Executor implements it (WithLatencyHistograms). Sources that
// also implement it get gotaskflow_flow_latency_* histogram series in the
// Prometheus export and latency digests in the flow expvar, even when the
// scheduler counters (WithMetrics) are off.
type LatencySource interface {
	LatencyStats() ([]executor.FlowLatencySummary, bool)
}

// FlowSource provides the always-on per-flow counters —
// *executor.Executor implements it. Unlike Source it needs no option: the
// flow counters double as admission-control state.
type FlowSource interface {
	FlowStats() []executor.FlowStats
}

// promCounter and promGauge describe one exported series.
type series struct {
	name     string
	help     string
	typ      string // "counter" or "gauge"
	per      func(*executor.WorkerStats) float64
	perShard func(*executor.ShardStats) float64
	perFlow  func(*executor.FlowStats) float64
	total    func(*executor.Snapshot) float64
}

// exported is the schema of the Prometheus export: per-worker series carry
// a worker="<i>" label, per-injection-shard series a shard="<i>" label,
// per-flow series flow="<name>" and class="<class>" labels;
// executor-wide series carry none.
var exported = []series{
	{"gotaskflow_deque_pushes_total", "Tasks pushed to the worker's deque", "counter",
		func(w *executor.WorkerStats) float64 { return float64(w.Pushes) }, nil, nil, nil},
	{"gotaskflow_deque_pops_total", "Tasks the owner popped back out", "counter",
		func(w *executor.WorkerStats) float64 { return float64(w.Pops) }, nil, nil, nil},
	{"gotaskflow_deque_stolen_from_total", "Tasks thieves stole out of the deque", "counter",
		func(w *executor.WorkerStats) float64 { return float64(w.StolenFrom) }, nil, nil, nil},
	{"gotaskflow_deque_grows_total", "Deque ring reallocations", "counter",
		func(w *executor.WorkerStats) float64 { return float64(w.QueueGrows) }, nil, nil, nil},
	{"gotaskflow_deque_max_depth", "Push-time high watermark of resident tasks", "gauge",
		func(w *executor.WorkerStats) float64 { return float64(w.MaxQueueDepth) }, nil, nil, nil},
	{"gotaskflow_deque_depth", "Resident tasks at scrape time", "gauge",
		func(w *executor.WorkerStats) float64 { return float64(w.QueueDepth) }, nil, nil, nil},
	{"gotaskflow_steal_attempts_total", "Steal sweeps over victims and the injection queue", "counter",
		func(w *executor.WorkerStats) float64 { return float64(w.StealAttempts) }, nil, nil, nil},
	{"gotaskflow_steals_total", "Successful steal operations by the worker", "counter",
		func(w *executor.WorkerStats) float64 { return float64(w.Steals) }, nil, nil, nil},
	{"gotaskflow_stolen_tasks_total", "Tasks moved out of other deques, incl. batch extras", "counter",
		func(w *executor.WorkerStats) float64 { return float64(w.StolenTasks) }, nil, nil, nil},
	{"gotaskflow_steal_batches_total", "Steal operations that moved more than one task", "counter",
		func(w *executor.WorkerStats) float64 { return float64(w.StealBatches) }, nil, nil, nil},
	{"gotaskflow_injection_drains_total", "Drain operations on the external injection queue", "counter",
		func(w *executor.WorkerStats) float64 { return float64(w.InjectionDrains) }, nil, nil, nil},
	{"gotaskflow_injection_drained_tasks_total", "Tasks taken from the injection queue, incl. batch extras", "counter",
		func(w *executor.WorkerStats) float64 { return float64(w.InjectionDrainedTasks) }, nil, nil, nil},
	{"gotaskflow_cache_hits_total", "Tasks run through the speculative cache slot", "counter",
		func(w *executor.WorkerStats) float64 { return float64(w.CacheHits) }, nil, nil, nil},
	{"gotaskflow_prewaits_total", "Park announcements on the eventcount (prewait)", "counter",
		func(w *executor.WorkerStats) float64 { return float64(w.Prewaits) }, nil, nil, nil},
	{"gotaskflow_wait_cancels_total", "Prewaits cancelled because the re-check found work", "counter",
		func(w *executor.WorkerStats) float64 { return float64(w.WaitCancels) }, nil, nil, nil},
	{"gotaskflow_parks_total", "Committed parks on the eventcount", "counter",
		func(w *executor.WorkerStats) float64 { return float64(w.Parks) }, nil, nil, nil},
	{"gotaskflow_executed_total", "Tasks invoked by the worker", "counter",
		func(w *executor.WorkerStats) float64 { return float64(w.Executed) }, nil, nil, nil},

	{"gotaskflow_injection_shard_pushes_total", "Tasks hashed onto the injection shard", "counter",
		nil, func(sh *executor.ShardStats) float64 { return float64(sh.Pushes) }, nil, nil},
	{"gotaskflow_injection_shard_drains_total", "Drain operations on the injection shard", "counter",
		nil, func(sh *executor.ShardStats) float64 { return float64(sh.Drains) }, nil, nil},
	{"gotaskflow_injection_shard_drained_tasks_total", "Tasks taken from the injection shard", "counter",
		nil, func(sh *executor.ShardStats) float64 { return float64(sh.DrainedTasks) }, nil, nil},
	{"gotaskflow_injection_shard_depth", "Injection shard residents at scrape time", "gauge",
		nil, func(sh *executor.ShardStats) float64 { return float64(sh.Depth) }, nil, nil},

	{"gotaskflow_flow_pushes_total", "Tasks pushed onto the flow's priority queue", "counter",
		nil, nil, func(f *executor.FlowStats) float64 { return float64(f.Pushes) }, nil},
	{"gotaskflow_flow_drains_total", "Drain operations on the flow's queue", "counter",
		nil, nil, func(f *executor.FlowStats) float64 { return float64(f.DrainOps) }, nil},
	{"gotaskflow_flow_drained_tasks_total", "Tasks taken from the flow's queue, incl. batch extras", "counter",
		nil, nil, func(f *executor.FlowStats) float64 { return float64(f.DrainedTasks) }, nil},
	{"gotaskflow_flow_executed_total", "Flow-bound task executions retired", "counter",
		nil, nil, func(f *executor.FlowStats) float64 { return float64(f.Executed) }, nil},
	{"gotaskflow_flow_admitted_total", "Executions charged against the flow's in-flight quota", "counter",
		nil, nil, func(f *executor.FlowStats) float64 { return float64(f.AdmittedTasks) }, nil},
	{"gotaskflow_flow_released_total", "Quota charges returned at topology completion", "counter",
		nil, nil, func(f *executor.FlowStats) float64 { return float64(f.ReleasedTasks) }, nil},
	{"gotaskflow_flow_admission_rejects_total", "Executions refused by the in-flight quota", "counter",
		nil, nil, func(f *executor.FlowStats) float64 { return float64(f.AdmissionRejects) }, nil},
	{"gotaskflow_flow_overload_sheds_total", "Executions shed at the backlog watermark", "counter",
		nil, nil, func(f *executor.FlowStats) float64 { return float64(f.OverloadSheds) }, nil},
	{"gotaskflow_flow_in_flight", "Admitted executions not yet released", "gauge",
		nil, nil, func(f *executor.FlowStats) float64 { return float64(f.InFlight) }, nil},
	{"gotaskflow_flow_peak_in_flight", "High watermark of admitted executions", "gauge",
		nil, nil, func(f *executor.FlowStats) float64 { return float64(f.PeakInFlight) }, nil},
	{"gotaskflow_flow_backlog", "Flow queue residents at scrape time", "gauge",
		nil, nil, func(f *executor.FlowStats) float64 { return float64(f.Backlog) }, nil},
	{"gotaskflow_flow_weight", "Weighted-round-robin share within the class", "gauge",
		nil, nil, func(f *executor.FlowStats) float64 { return float64(f.Weight) }, nil},

	{"gotaskflow_injection_pushes_total", "Tasks submitted from outside the pool", "counter",
		nil, nil, nil, func(s *executor.Snapshot) float64 { return float64(s.InjectionPushes) }},
	{"gotaskflow_injection_depth", "Injection queue residents at scrape time", "gauge",
		nil, nil, nil, func(s *executor.Snapshot) float64 { return float64(s.InjectionDepth) }},
	{"gotaskflow_wakes_precise_total", "Wakeups issued because new work arrived", "counter",
		nil, nil, nil, func(s *executor.Snapshot) float64 { return float64(s.PreciseWakes) }},
	{"gotaskflow_wakes_probabilistic_total", "1/wakeDen load-balancing wakeups", "counter",
		nil, nil, nil, func(s *executor.Snapshot) float64 { return float64(s.ProbabilisticWakes) }},
}

// WritePrometheus writes the source's current counters in the Prometheus
// text exposition format (version 0.0.4). Counter series require the
// source to have been built with metrics; latency histogram series
// (LatencySource) render independently, so a histogram-only executor
// still exports them. A source with neither writes nothing and returns
// nil.
func WritePrometheus(w io.Writer, src Source) error {
	var b strings.Builder
	if snap, ok := src.MetricsSnapshot(); ok {
		for _, s := range exported {
			fmt.Fprintf(&b, "# HELP %s %s\n# TYPE %s %s\n", s.name, s.help, s.name, s.typ)
			switch {
			case s.per != nil:
				for i := range snap.Workers {
					fmt.Fprintf(&b, "%s{worker=\"%d\"} %g\n", s.name, i, s.per(&snap.Workers[i]))
				}
			case s.perShard != nil:
				for i := range snap.Shards {
					fmt.Fprintf(&b, "%s{shard=\"%d\"} %g\n", s.name, i, s.perShard(&snap.Shards[i]))
				}
			case s.perFlow != nil:
				for i := range snap.Flows {
					f := &snap.Flows[i]
					fmt.Fprintf(&b, "%s{flow=%q,class=%q} %g\n", s.name, f.Name, f.Class.String(), s.perFlow(f))
				}
			default:
				fmt.Fprintf(&b, "%s %g\n", s.name, s.total(&snap))
			}
		}
	}
	if ls, ok := src.(LatencySource); ok {
		writeLatencySeries(&b, ls)
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// latencySeries maps the three histogram dimensions to their exported
// names. Durations are exported in seconds per Prometheus convention.
var latencySeries = []struct {
	name string
	help string
	pick func(*executor.FlowLatencySummary) *executor.LatencySnapshot
}{
	{"gotaskflow_flow_latency_queue_wait_seconds", "Task wait from ready (queued) to body start",
		func(f *executor.FlowLatencySummary) *executor.LatencySnapshot { return &f.QueueWait }},
	{"gotaskflow_flow_latency_exec_seconds", "Task body execution time",
		func(f *executor.FlowLatencySummary) *executor.LatencySnapshot { return &f.Exec }},
	{"gotaskflow_flow_latency_e2e_seconds", "Task latency from ready to body end",
		func(f *executor.FlowLatencySummary) *executor.LatencySnapshot { return &f.EndToEnd }},
}

// unboundFlowLabel is the flow label of the default sink shared by
// topologies bound to no flow.
const unboundFlowLabel = "_unbound"

// flowLabels renders the {flow=...,class=...} label pair of one summary.
func flowLabels(f *executor.FlowLatencySummary) string {
	if f.Unbound {
		return fmt.Sprintf("flow=%q,class=%q", unboundFlowLabel, "none")
	}
	return fmt.Sprintf("flow=%q,class=%q", f.Flow, f.Class.String())
}

// writeLatencySeries renders the per-flow latency histograms as
// Prometheus histogram series: cumulative _bucket counts with le bounds
// in seconds, plus _sum (seconds) and _count.
func writeLatencySeries(b *strings.Builder, ls LatencySource) {
	flows, ok := ls.LatencyStats()
	if !ok {
		return
	}
	bounds := executor.LatencyBucketBounds()
	for _, s := range latencySeries {
		fmt.Fprintf(b, "# HELP %s %s\n# TYPE %s histogram\n", s.name, s.help, s.name)
		for i := range flows {
			f := &flows[i]
			labels := flowLabels(f)
			h := s.pick(f)
			var cum uint64
			for bi, bound := range bounds {
				cum += h.Counts[bi]
				fmt.Fprintf(b, "%s_bucket{%s,le=\"%g\"} %d\n", s.name, labels, bound.Seconds(), cum)
			}
			fmt.Fprintf(b, "%s_bucket{%s,le=\"+Inf\"} %d\n", s.name, labels, h.Count)
			fmt.Fprintf(b, "%s_sum{%s} %g\n", s.name, labels, float64(h.Sum)/1e9)
			fmt.Fprintf(b, "%s_count{%s} %d\n", s.name, labels, h.Count)
		}
	}
}

// Handler returns an http.Handler serving the Prometheus text format —
// mount it wherever the scraper looks, conventionally /metrics. A
// metrics-disabled source serves an empty 200.
func Handler(src Source) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		if err := WritePrometheus(w, src); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
		}
	})
}

// Static wraps an already-taken Snapshot as a Source, so a run that has
// finished (and whose executor may be gone) can still be exported through
// WritePrometheus or Handler.
func Static(snap executor.Snapshot) Source { return staticSource{snap} }

type staticSource struct{ snap executor.Snapshot }

func (s staticSource) MetricsSnapshot() (executor.Snapshot, bool) { return s.snap, true }

// WriteRunSummary writes a compact human-readable digest of one
// instrumented run — the graph-level RunStats and the executor's scheduler
// counter totals — the form the benchmark drivers print behind their
// -metrics flags. A timed run (CollectRunStats(true)) appends the
// hot-task ranking: the top tasks by summed body time, under the same
// names the trace spans and DOT dumps use.
func WriteRunSummary(w io.Writer, rs core.RunStats, snap executor.Snapshot) error {
	t := snap.Total()
	_, err := fmt.Fprintf(w,
		"run:   tasks=%d span=%d parallelism=%.2f wall=%v busy=%v achieved=%.2f retries=%d skipped=%d\n"+
			"sched: executed=%d pops=%d stolen=%d-tasks/%d-steals/%d-batches/%d-attempts drained=%d-tasks/%d-drains/%d-shards cache-hits=%d parks=%d/%d-prewaits/%d-cancels wakes=%d-precise/%d-prob max-depth=%d\n",
		rs.Tasks, rs.Span, rs.Parallelism, rs.Wall, rs.Busy, rs.AchievedParallelism,
		rs.Retries, rs.Skipped,
		t.Executed, t.Pops, t.StolenTasks, t.Steals, t.StealBatches, t.StealAttempts,
		t.InjectionDrainedTasks, t.InjectionDrains, len(snap.Shards),
		t.CacheHits, t.Parks, t.Prewaits, t.WaitCancels,
		snap.PreciseWakes, snap.ProbabilisticWakes,
		t.MaxQueueDepth)
	if err != nil || len(rs.HotTasks) == 0 {
		return err
	}
	var b strings.Builder
	b.WriteString("hot:  ")
	for i, h := range rs.HotTasks {
		fmt.Fprintf(&b, " %d.%s ×%d (%v)", i+1, h.Name, h.Count, h.Total.Round(time.Microsecond))
	}
	b.WriteByte('\n')
	_, err = io.WriteString(w, b.String())
	return err
}

// Publish registers the source under name as an expvar variable whose
// value is the full Snapshot marshalled as JSON, visible at /debug/vars.
// expvar panics on duplicate names, so publish each name once per process.
func Publish(name string, src Source) {
	expvar.Publish(name, expvar.Func(func() any {
		snap, ok := src.MetricsSnapshot()
		if !ok {
			return nil
		}
		return snap
	}))
}

// LatencyDigest is the compact per-flow latency summary published to
// expvar (and rendered by /debug/taskflow/latency): quantiles
// interpolated from the histogram rather than the raw bucket arrays.
type LatencyDigest struct {
	Flow    string
	Class   string
	Unbound bool `json:",omitempty"`

	QueueWait QuantileDigest
	Exec      QuantileDigest
	EndToEnd  QuantileDigest
}

// QuantileDigest summarizes one histogram. Durations are nanoseconds in
// the JSON form (time.Duration's native marshalling).
type QuantileDigest struct {
	Count uint64
	Mean  time.Duration
	P50   time.Duration
	P90   time.Duration
	P99   time.Duration
	P999  time.Duration
}

func digestOf(s *executor.LatencySnapshot) QuantileDigest {
	return QuantileDigest{
		Count: s.Count,
		Mean:  s.Mean(),
		P50:   s.Quantile(0.50),
		P90:   s.Quantile(0.90),
		P99:   s.Quantile(0.99),
		P999:  s.Quantile(0.999),
	}
}

// Digest reduces the raw latency summaries to quantile digests, one per
// flow (the unbound sink first, when present).
func Digest(flows []executor.FlowLatencySummary) []LatencyDigest {
	out := make([]LatencyDigest, len(flows))
	for i := range flows {
		f := &flows[i]
		d := LatencyDigest{Flow: f.Flow, Class: f.Class.String(), Unbound: f.Unbound}
		if f.Unbound {
			d.Flow, d.Class = unboundFlowLabel, "none"
		}
		d.QueueWait = digestOf(&f.QueueWait)
		d.Exec = digestOf(&f.Exec)
		d.EndToEnd = digestOf(&f.EndToEnd)
		out[i] = d
	}
	return out
}

// PublishFlows registers the per-flow counters (and, when the source
// collects them, the latency digests) under name as an expvar variable —
// the flow-level complement of Publish, which exports only the scheduler
// counters. The flow counters are always on, so this works without
// WithMetrics.
func PublishFlows(name string, src FlowSource) {
	expvar.Publish(name, expvar.Func(func() any {
		v := struct {
			Flows   []executor.FlowStats
			Latency []LatencyDigest `json:",omitempty"`
		}{Flows: src.FlowStats()}
		if ls, ok := src.(LatencySource); ok {
			if lat, lok := ls.LatencyStats(); lok {
				v.Latency = Digest(lat)
			}
		}
		return v
	}))
}

package metrics

import (
	"expvar"
	"fmt"
	"io"
	"strings"

	"gotaskflow/internal/pipeline"
)

// WritePipeline renders one or more pipelines' cumulative counters in the
// Prometheus text exposition format, alongside the executor series from
// WritePrometheus:
//
//	gotaskflow_pipeline_runs_total{pipeline="..."}
//	gotaskflow_pipeline_tokens_total{pipeline="..."}
//	gotaskflow_pipeline_deferrals_total{pipeline="..."}
//	gotaskflow_pipeline_dropped_errors{pipeline="..."}
//	gotaskflow_pipeline_line_tokens_total{pipeline="...",line="N"}
//
// Safe while the pipelines run: Stats is a monotone snapshot.
func WritePipeline(w io.Writer, ps ...*pipeline.Pipeline) error {
	var b strings.Builder
	writeHeader := func(name, help, typ string) {
		fmt.Fprintf(&b, "# HELP %s %s\n# TYPE %s %s\n", name, help, name, typ)
	}
	writeHeader("gotaskflow_pipeline_runs_total", "Completed pipeline Run rounds", "counter")
	for _, p := range ps {
		fmt.Fprintf(&b, "gotaskflow_pipeline_runs_total{pipeline=%q} %d\n", p.Name(), p.Stats().Runs)
	}
	writeHeader("gotaskflow_pipeline_tokens_total", "Tokens that completed every pipe", "counter")
	for _, p := range ps {
		fmt.Fprintf(&b, "gotaskflow_pipeline_tokens_total{pipeline=%q} %d\n", p.Name(), p.Stats().Tokens)
	}
	writeHeader("gotaskflow_pipeline_deferrals_total", "Tokens parked by Pipeflow.Defer", "counter")
	for _, p := range ps {
		fmt.Fprintf(&b, "gotaskflow_pipeline_deferrals_total{pipeline=%q} %d\n", p.Name(), p.Stats().Deferrals)
	}
	writeHeader("gotaskflow_pipeline_dropped_errors", "Errors discarded beyond the recording cap (current/last run)", "gauge")
	for _, p := range ps {
		fmt.Fprintf(&b, "gotaskflow_pipeline_dropped_errors{pipeline=%q} %d\n", p.Name(), p.Stats().DroppedErrs)
	}
	writeHeader("gotaskflow_pipeline_line_tokens_total", "Tokens completed per pipeline line", "counter")
	for _, p := range ps {
		st := p.Stats()
		for l, n := range st.PerLine {
			fmt.Fprintf(&b, "gotaskflow_pipeline_line_tokens_total{pipeline=%q,line=\"%d\"} %d\n", p.Name(), l, n)
		}
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// PublishPipeline registers a pipeline's Stats snapshot as an expvar
// variable (JSON under /debug/vars). Call once per pipeline per process;
// expvar panics on duplicate names, matching Publish.
func PublishPipeline(name string, p *pipeline.Pipeline) {
	expvar.Publish(name, expvar.Func(func() any { return p.Stats() }))
}

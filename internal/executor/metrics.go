package executor

// Scheduler observability: lock-free per-worker counters over the events of
// Algorithm 1 that are otherwise invisible — pushes, pops, steals, task-cache
// hits, parks, precise vs. probabilistic wakeups, injection-queue traffic.
//
// The design rules:
//
//   - Provably zero cost when disabled. Counting is enabled only by the
//     WithMetrics option; every instrumentation point is a single
//     predictable nil check on a per-worker pointer, and nothing is
//     allocated or published when metrics are off. The zero-allocation
//     gates in internal/core run with this file compiled in.
//
//   - Allocation-free when enabled. All counter storage is allocated once
//     at executor construction (padded per worker against false sharing);
//     the steady state performs only uncontended atomic adds on
//     worker-private cache lines. A dedicated gate
//     (TestRunZeroAllocMetricsEnabled) enforces 0 allocs/op with counting
//     on.
//
//   - Honest at quiescence. The counters obey conservation laws checked by
//     Snapshot.Reconcile and property-tested end to end against randomized
//     DAGs in internal/core: every task that enters a queue leaves it
//     exactly once, and every executed task was obtained from exactly one
//     place (local pop, steal, injection drain, or the task cache).

import (
	"fmt"
	"sync/atomic"
	"unsafe"

	"gotaskflow/internal/wsq"
)

// workerMetrics holds the scheduling counters of one worker that the deque
// itself cannot observe. Owner-written except where noted; padded by the
// enclosing array element so adjacent workers never share a cache line.
type workerMetrics struct {
	// stealAttempts counts steal sweeps (Algorithm 1 line 3): one per
	// steal() call, i.e. one pass over last victim, random victims, and the
	// injection queue.
	stealAttempts atomic.Uint64
	// steals counts successful steal operations by this worker: sweeps
	// that came back with at least one task. The first task of each
	// operation runs directly; extras (batch stealing) land on this
	// worker's own deque.
	steals atomic.Uint64
	// stolenTasks counts tasks this worker moved out of other workers'
	// deques, including the extras of batch steals. (The per-deque
	// Counters.Steals counts the stolen-FROM side; Σ stolenTasks ==
	// Σ StolenFrom.)
	stolenTasks atomic.Uint64
	// stealBatches counts steal operations that moved more than one task.
	stealBatches atomic.Uint64
	// injectionDrains counts drain operations on the external injection
	// queue (work sharing): sweeps that came back with at least one task.
	injectionDrains atomic.Uint64
	// injectionDrainedTasks counts tasks this worker took from the
	// injection queue, including the extras of batch drains that were
	// re-pushed onto its own deque.
	injectionDrainedTasks atomic.Uint64
	// cacheHits counts tasks placed in the speculative task-cache slot
	// (Algorithm 1 lines 16-25) instead of a queue.
	cacheHits atomic.Uint64
	// prewaits counts entries into the eventcount's two-phase wait protocol
	// (lines 5-15): each is resolved by exactly one committed park or one
	// cancelled wait.
	prewaits atomic.Uint64
	// waitCancels counts prewaits retracted because the post-announce
	// re-check found work — the near-miss case the two-phase protocol
	// exists for.
	waitCancels atomic.Uint64
	// parks counts committed waits on the eventcount (the worker pushed
	// itself onto the waiter stack; the complement of waitCancels).
	parks atomic.Uint64
	// probWakes counts successful probabilistic load-balancing wakeups this
	// worker issued (lines 26-28).
	probWakes atomic.Uint64
	// executed counts tasks this worker invoked.
	executed atomic.Uint64
	// flowDrains counts drain operations on multi-tenant flow queues
	// (flow.go): sweeps of a priority class that came back with at least
	// one task.
	flowDrains atomic.Uint64
	// flowDrainedTasks counts tasks this worker took from flow queues,
	// including the extras of batch drains re-pushed onto its own deque.
	flowDrainedTasks atomic.Uint64
}

// metricsPad pads the per-worker counter blocks to 128 bytes (two cache
// lines, defeating adjacent-line prefetch sharing).
const metricsPad = 128

type paddedWorkerMetrics struct {
	workerMetrics
	_ [metricsPad - unsafe.Sizeof(workerMetrics{})%metricsPad]byte
}

type paddedDequeCounters struct {
	wsq.Counters
	_ [metricsPad - unsafe.Sizeof(wsq.Counters{})%metricsPad]byte
}

// shardMetrics counts one injection shard's traffic. Pushes are written by
// producers (already serialized per shard by the shard lock's cache
// traffic); drains by whichever worker swept the shard.
type shardMetrics struct {
	pushes       atomic.Uint64
	drains       atomic.Uint64
	drainedTasks atomic.Uint64
}

type paddedShardMetrics struct {
	shardMetrics
	_ [metricsPad - unsafe.Sizeof(shardMetrics{})%metricsPad]byte
}

// metricsState is the executor's counter storage, allocated once at
// construction when WithMetrics is given.
type metricsState struct {
	deques  []paddedDequeCounters
	workers []paddedWorkerMetrics
	shards  []paddedShardMetrics

	// injectionPushes counts tasks submitted from outside the pool
	// (Executor.Submit/SubmitBatch); written alongside the shard lock's
	// cache traffic anyway, so a shared atomic costs nothing extra.
	injectionPushes atomic.Uint64
	// wakes counts every successful wakeup (precise and probabilistic).
	// Precise wakeups are derived: wakes − Σ probWakes.
	wakes atomic.Uint64
}

func newMetricsState(n, shards int) *metricsState {
	return &metricsState{
		deques:  make([]paddedDequeCounters, n),
		workers: make([]paddedWorkerMetrics, n),
		shards:  make([]paddedShardMetrics, shards),
	}
}

// WithMetrics enables the scheduler counters. The cost when enabled is one
// uncontended atomic add per counted event on a worker-private cache line;
// the counters never allocate after construction. Read them with
// MetricsSnapshot.
func WithMetrics() Option {
	return func(e *Executor) { e.metricsOn = true }
}

// MetricsEnabled reports whether the executor was built with WithMetrics.
func (e *Executor) MetricsEnabled() bool { return e.metrics != nil }

// WorkerStats is one worker's counters at a snapshot instant.
type WorkerStats struct {
	// Deque-side accounting (from the worker's own Chase-Lev deque).
	Pushes        uint64 // tasks pushed to this worker's deque
	Pops          uint64 // tasks the owner popped back out
	StolenFrom    uint64 // tasks thieves stole out of this deque
	QueueGrows    uint64 // ring reallocations
	MaxQueueDepth uint64 // push-time high watermark of resident tasks
	QueueDepth    int    // resident tasks at the snapshot instant (gauge)

	// Worker-side accounting. Steal and injection-drain traffic is counted
	// twice over: operations (sweeps that found work — the first task of
	// each runs directly on this worker) and tasks (total items moved,
	// including batch extras re-pushed onto this worker's own deque).
	StealAttempts         uint64 // steal sweeps (Algorithm 1 line 3)
	Steals                uint64 // successful steal operations by this worker
	StolenTasks           uint64 // tasks moved out of other deques (incl. batch extras)
	StealBatches          uint64 // steal operations that moved more than one task
	InjectionDrains       uint64 // successful injection-queue drain operations
	InjectionDrainedTasks uint64 // tasks taken from the injection queue (incl. batch extras)
	FlowDrains            uint64 // successful multi-tenant flow-queue drain operations
	FlowDrainedTasks      uint64 // tasks taken from flow queues (incl. batch extras)
	CacheHits             uint64 // tasks run through the speculative cache slot
	Prewaits              uint64 // entries into the eventcount wait protocol
	WaitCancels           uint64 // prewaits retracted because the re-check found work
	Parks                 uint64 // committed waits on the eventcount
	ProbabilisticWakes    uint64 // successful 1/wakeDen load-balancing wakeups issued
	Executed              uint64 // tasks invoked
}

// ShardStats is one injection shard's counters at a snapshot instant.
type ShardStats struct {
	Pushes       uint64 // tasks producers hashed onto this shard
	Drains       uint64 // drain operations that found work here
	DrainedTasks uint64 // tasks taken from this shard (incl. batch extras)
	Depth        int    // resident tasks at the snapshot instant (gauge)
}

// Snapshot is a point-in-time reading of every scheduler counter. Taking a
// snapshot while the executor runs is safe; the values are per-counter
// atomic reads, so cross-counter invariants (Reconcile) are only exact at
// quiescence.
type Snapshot struct {
	Workers []WorkerStats

	// Shards carries per-injection-shard traffic; its sums balance the
	// per-worker injection counters at quiescence (Reconcile).
	Shards []ShardStats

	// InjectionPushes/Drains count external-submission traffic in tasks
	// (Drains sums the per-worker drained-task counts, so it balances
	// Pushes at quiescence); Depth is the total backlog across shards at
	// the snapshot instant (gauge).
	InjectionPushes uint64
	InjectionDrains uint64
	InjectionDepth  int

	// PreciseWakes counts wakeups issued because new work arrived
	// (Algorithm 1's targeted notify); ProbabilisticWakes counts the
	// 1/wakeDen load-balancing wakeups (lines 26-28).
	PreciseWakes       uint64
	ProbabilisticWakes uint64

	// Flows carries per-flow multi-tenancy counters (flow.go), in flow
	// registration order; empty when no flow was registered. The flow
	// counters are always on (they double as admission-control state), so
	// this section is populated even though the snapshot itself requires
	// WithMetrics.
	Flows []FlowStats
}

// Total aggregates the per-worker counters.
func (s *Snapshot) Total() WorkerStats {
	var t WorkerStats
	for i := range s.Workers {
		w := &s.Workers[i]
		t.Pushes += w.Pushes
		t.Pops += w.Pops
		t.StolenFrom += w.StolenFrom
		t.QueueGrows += w.QueueGrows
		if w.MaxQueueDepth > t.MaxQueueDepth {
			t.MaxQueueDepth = w.MaxQueueDepth
		}
		t.QueueDepth += w.QueueDepth
		t.StealAttempts += w.StealAttempts
		t.Steals += w.Steals
		t.StolenTasks += w.StolenTasks
		t.StealBatches += w.StealBatches
		t.InjectionDrains += w.InjectionDrains
		t.InjectionDrainedTasks += w.InjectionDrainedTasks
		t.FlowDrains += w.FlowDrains
		t.FlowDrainedTasks += w.FlowDrainedTasks
		t.CacheHits += w.CacheHits
		t.Prewaits += w.Prewaits
		t.WaitCancels += w.WaitCancels
		t.Parks += w.Parks
		t.ProbabilisticWakes += w.ProbabilisticWakes
		t.Executed += w.Executed
	}
	return t
}

// Reconcile checks the conservation laws the counters promise at
// quiescence (no task in any queue, no worker inside the scheduler):
//
//	deque pushes            == deque pops + deque steals
//	stolen tasks (thieves)  == deque steals (victims)
//	injection pushes        == injection drained tasks
//	executed                == pops + steal ops + injection drain ops + flow drain ops + cache hits
//	Σ shard pushes          == injection pushes
//	Σ shard drained tasks   == Σ worker injection drained tasks
//	Σ shard drain ops       == Σ worker injection drain ops
//	parks + wait cancels    ≤ prewaits ≤ parks + wait cancels + workers
//
// and, per multi-tenant flow (flow.go):
//
//	flow pushes             == flow drained tasks  (each flow's queue drains)
//	Σ flow drain ops        == Σ worker flow drain ops
//	Σ flow drained tasks    == Σ worker flow drained tasks
//	admitted tasks          == released tasks      (no leaked reservation)
//	in-flight gauge         == 0
//	peak in-flight          ≤ MaxInFlight when a quota is set
//
// The executed law counts operations, not tasks: each successful steal or
// drain operation hands exactly one task straight to the thief for
// execution; the batch extras it also moved re-enter the thief's own deque
// as pushes and are later popped or re-stolen, so they surface through the
// first law instead. Batch shape is additionally sanity-checked:
// stolenTasks ≥ steal ops, stealBatches ≤ steal ops, drained tasks ≥ drain
// ops.
//
// The eventcount law is a band rather than an equality because quiescence
// includes workers parked (or about to park) on the notifier: each live
// worker may hold one prewait that has not yet resolved into a committed
// park or a cancelled wait, so up to len(Workers) prewaits may be
// outstanding. Every resolved prewait resolved exactly once.
//
// It returns nil when every law holds, or an error naming the first
// imbalance. Calling it while tasks are in flight reports spurious
// imbalances.
func (s *Snapshot) Reconcile() error {
	t := s.Total()
	if t.Pushes != t.Pops+t.StolenFrom {
		return fmt.Errorf("executor metrics: deque pushes %d != pops %d + steals %d",
			t.Pushes, t.Pops, t.StolenFrom)
	}
	if t.StolenTasks != t.StolenFrom {
		return fmt.Errorf("executor metrics: thief-side stolen tasks %d != victim-side steals %d",
			t.StolenTasks, t.StolenFrom)
	}
	if t.StolenTasks < t.Steals {
		return fmt.Errorf("executor metrics: stolen tasks %d < steal operations %d",
			t.StolenTasks, t.Steals)
	}
	if t.StealBatches > t.Steals {
		return fmt.Errorf("executor metrics: steal batches %d > steal operations %d",
			t.StealBatches, t.Steals)
	}
	if s.InjectionPushes != t.InjectionDrainedTasks {
		return fmt.Errorf("executor metrics: injection pushes %d != drained tasks %d",
			s.InjectionPushes, t.InjectionDrainedTasks)
	}
	if t.InjectionDrainedTasks < t.InjectionDrains {
		return fmt.Errorf("executor metrics: injection drained tasks %d < drain operations %d",
			t.InjectionDrainedTasks, t.InjectionDrains)
	}
	if s.InjectionDrains != t.InjectionDrainedTasks {
		return fmt.Errorf("executor metrics: snapshot injection drains %d != per-worker drained-task sum %d",
			s.InjectionDrains, t.InjectionDrainedTasks)
	}
	if t.Executed != t.Pops+t.Steals+t.InjectionDrains+t.FlowDrains+t.CacheHits {
		return fmt.Errorf("executor metrics: executed %d != pops %d + steal ops %d + injection drain ops %d + flow drain ops %d + cache hits %d",
			t.Executed, t.Pops, t.Steals, t.InjectionDrains, t.FlowDrains, t.CacheHits)
	}
	if t.FlowDrainedTasks < t.FlowDrains {
		return fmt.Errorf("executor metrics: flow drained tasks %d < flow drain operations %d",
			t.FlowDrainedTasks, t.FlowDrains)
	}
	var shardPushes, shardDrains, shardDrained uint64
	for i := range s.Shards {
		shardPushes += s.Shards[i].Pushes
		shardDrains += s.Shards[i].Drains
		shardDrained += s.Shards[i].DrainedTasks
	}
	if shardPushes != s.InjectionPushes {
		return fmt.Errorf("executor metrics: shard pushes %d != injection pushes %d",
			shardPushes, s.InjectionPushes)
	}
	if shardDrained != t.InjectionDrainedTasks {
		return fmt.Errorf("executor metrics: shard drained tasks %d != per-worker drained tasks %d",
			shardDrained, t.InjectionDrainedTasks)
	}
	if shardDrains != t.InjectionDrains {
		return fmt.Errorf("executor metrics: shard drain ops %d != per-worker drain ops %d",
			shardDrains, t.InjectionDrains)
	}
	resolved := t.Parks + t.WaitCancels
	if t.Prewaits < resolved || t.Prewaits > resolved+uint64(len(s.Workers)) {
		return fmt.Errorf("executor metrics: prewaits %d outside [parks %d + cancels %d, +%d workers]",
			t.Prewaits, t.Parks, t.WaitCancels, len(s.Workers))
	}
	var flowDrainOps, flowDrained uint64
	for i := range s.Flows {
		f := &s.Flows[i]
		if f.Pushes != f.DrainedTasks {
			return fmt.Errorf("executor metrics: flow %q pushes %d != drained tasks %d",
				f.Name, f.Pushes, f.DrainedTasks)
		}
		if f.AdmittedTasks != f.ReleasedTasks {
			return fmt.Errorf("executor metrics: flow %q admitted %d != released %d (leaked reservation)",
				f.Name, f.AdmittedTasks, f.ReleasedTasks)
		}
		if f.InFlight != 0 {
			return fmt.Errorf("executor metrics: flow %q in-flight gauge %d != 0 at quiescence",
				f.Name, f.InFlight)
		}
		if f.MaxInFlight > 0 && f.PeakInFlight > int64(f.MaxInFlight) {
			return fmt.Errorf("executor metrics: flow %q peak in-flight %d > quota %d",
				f.Name, f.PeakInFlight, f.MaxInFlight)
		}
		flowDrainOps += f.DrainOps
		flowDrained += f.DrainedTasks
	}
	if flowDrainOps != t.FlowDrains {
		return fmt.Errorf("executor metrics: flow drain ops %d != per-worker flow drain ops %d",
			flowDrainOps, t.FlowDrains)
	}
	if flowDrained != t.FlowDrainedTasks {
		return fmt.Errorf("executor metrics: flow drained tasks %d != per-worker flow drained tasks %d",
			flowDrained, t.FlowDrainedTasks)
	}
	return nil
}

// MetricsSnapshot reads every counter plus the sampled queue-depth gauges.
// It returns ok=false when the executor was built without WithMetrics.
// Safe to call at any time from any goroutine; see Snapshot for the
// consistency contract.
func (e *Executor) MetricsSnapshot() (Snapshot, bool) {
	m := e.metrics
	if m == nil {
		return Snapshot{}, false
	}
	s := Snapshot{Workers: make([]WorkerStats, len(e.workers))}
	var probTotal uint64
	for i, w := range e.workers {
		d := &m.deques[i].Counters
		wm := &m.workers[i].workerMetrics
		ws := &s.Workers[i]
		ws.Pushes = d.Pushes.Load()
		ws.Pops = d.Pops.Load()
		ws.StolenFrom = d.Steals.Load()
		ws.QueueGrows = d.Grows.Load()
		ws.MaxQueueDepth = d.MaxDepth.Load()
		ws.QueueDepth = w.queue.Len()
		ws.StealAttempts = wm.stealAttempts.Load()
		ws.Steals = wm.steals.Load()
		ws.StolenTasks = wm.stolenTasks.Load()
		ws.StealBatches = wm.stealBatches.Load()
		ws.InjectionDrains = wm.injectionDrains.Load()
		ws.InjectionDrainedTasks = wm.injectionDrainedTasks.Load()
		ws.FlowDrains = wm.flowDrains.Load()
		ws.FlowDrainedTasks = wm.flowDrainedTasks.Load()
		ws.CacheHits = wm.cacheHits.Load()
		// Load the wait-resolution counters before prewaits: a worker
		// cycling the park protocol between the loads then inflates
		// Prewaits (inside Reconcile's band) instead of deflating it
		// (outside).
		ws.WaitCancels = wm.waitCancels.Load()
		ws.Parks = wm.parks.Load()
		ws.Prewaits = wm.prewaits.Load()
		ws.ProbabilisticWakes = wm.probWakes.Load()
		ws.Executed = wm.executed.Load()
		probTotal += ws.ProbabilisticWakes
		s.InjectionDrains += ws.InjectionDrainedTasks
	}
	s.Shards = make([]ShardStats, len(m.shards))
	for i := range m.shards {
		sm := &m.shards[i].shardMetrics
		s.Shards[i] = ShardStats{
			Pushes:       sm.pushes.Load(),
			Drains:       sm.drains.Load(),
			DrainedTasks: sm.drainedTasks.Load(),
			Depth:        int(e.injShards[i].len.Load()),
		}
		if s.Shards[i].Depth < 0 {
			s.Shards[i].Depth = 0
		}
	}
	s.InjectionPushes = m.injectionPushes.Load()
	s.InjectionDepth = e.injDepth()
	s.Flows = e.FlowStats()
	wakes := m.wakes.Load()
	s.ProbabilisticWakes = probTotal
	if wakes >= probTotal {
		s.PreciseWakes = wakes - probTotal
	}
	return s, true
}

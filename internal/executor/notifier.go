package executor

// Lock-free eventcount notifier — the structure Taskflow's successor
// system adopted for its scheduler (arXiv:2004.10908 §V), here modeled on
// the Eigen/Dekker eventcount design. It replaces the mutex-guarded
// idlers list: producers wake workers without ever taking a lock, and the
// fast path when nobody is parked is a single atomic load.
//
// The protocol is two-phase to close the classic lost-wakeup window of a
// naive check-then-park loop:
//
//	waiter:   prewait()             // announce intent to sleep
//	          if work visible:      // re-check AFTER announcing
//	              cancelWait()      // never sleeps
//	          else:
//	              commitWait(id)    // park until notified
//	producer: publish work          // queue push
//	          notify()              // AFTER the work is visible
//
// Both the waiter's prewait and the producer's notify are sequentially
// consistent atomics on one state word, so at least one side observes the
// other: either the waiter's re-check sees the producer's work, or the
// producer's notify sees the waiter's announcement and leaves it a signal
// (consumed by commitWait without parking) or pops it off the waiter
// stack and unparks it. There is no interleaving in which the work is
// published, the notify is a no-op, and the waiter still parks.
//
// All waiter bookkeeping is packed into one 64-bit state word:
//
//	bits  0..15  stack    index of the top parked waiter (all-ones = empty)
//	bits 16..31  waiters  count of threads between prewait and commit/cancel
//	bits 32..47  signals  count of banked wakeups for prewaiting threads
//	bits 48..63  epoch    ABA stamp of the stack top (see below)
//
// Parked waiters form an intrusive LIFO stack threaded through per-worker
// slots: commitWait CASes its own slot index (stamped with the slot's
// current epoch) into the stack bits and stores the previous stack+epoch
// bits into its slot's next word. The epoch stamp makes the CAS fail if
// the same waiter was popped and re-pushed in between (the ABA hazard of
// any pointer-CAS stack); each park cycle increments the slot's epoch.
// A 16-bit epoch wraps after 65536 park cycles of one slot — for a stale
// CAS to succeed, a notifier would have to stall across exactly that many
// cycles and find the counts otherwise identical, the same odds the Eigen
// implementation accepts.
//
// Parking itself uses one buffered(1) channel per waiter slot. Channel
// sends and receives are exactly balanced by construction — a slot on the
// stack is popped by exactly one notifier, which performs exactly one
// send — so the buffered send never blocks and no tokens go stale.

import (
	"sync/atomic"
	"unsafe"
)

const (
	notifStackBits   = 16
	notifStackMask   = uint64(1)<<notifStackBits - 1 // all-ones index = empty stack
	notifWaiterShift = notifStackBits
	notifWaiterBits  = 16
	notifWaiterMask  = (uint64(1)<<notifWaiterBits - 1) << notifWaiterShift
	notifWaiterInc   = uint64(1) << notifWaiterShift
	notifSignalShift = notifWaiterShift + notifWaiterBits
	notifSignalBits  = 16
	notifSignalMask  = (uint64(1)<<notifSignalBits - 1) << notifSignalShift
	notifSignalInc   = uint64(1) << notifSignalShift
	notifEpochShift  = notifSignalShift + notifSignalBits
	notifEpochBits   = 16
	notifEpochMask   = (uint64(1)<<notifEpochBits - 1) << notifEpochShift
	notifEpochInc    = uint64(1) << notifEpochShift
)

// maxNotifyWaiters bounds the worker count the packed state word can
// address (one index is reserved as the empty-stack marker).
const maxNotifyWaiters = int(notifStackMask)

// notifyWaiter is one worker's waiter slot.
type notifyWaiter struct {
	// next holds the (stack|epoch) bits of the state word at push time —
	// the rest of the intrusive stack below this waiter. Written by the
	// owning worker before the publishing CAS, read by the notifier that
	// pops it; the CAS pair orders the accesses.
	next atomic.Uint64
	// epoch is this slot's pre-shifted ABA stamp, bumped once per park
	// cycle. Owner-written between parks; notifiers read it only packed
	// inside the state word.
	epoch uint64
	// ch is the park primitive: commitWait receives, the popping notifier
	// sends. Buffered(1) so the send never blocks.
	ch chan struct{}
}

// notifPad pads waiter slots to 128 bytes (two cache lines) so adjacent
// workers' park/wake traffic never shares a line.
const notifPad = 128

type paddedNotifyWaiter struct {
	notifyWaiter
	_ [notifPad - unsafe.Sizeof(notifyWaiter{})%notifPad]byte
}

// notifier is the eventcount. Allocated once at executor construction;
// never allocates afterwards.
type notifier struct {
	state   atomic.Uint64
	waiters []paddedNotifyWaiter
}

func newNotifier(n int) *notifier {
	if n > maxNotifyWaiters {
		panic("executor: worker count exceeds notifier capacity")
	}
	no := &notifier{waiters: make([]paddedNotifyWaiter, n)}
	no.state.Store(notifStackMask) // empty stack, no waiters, no signals
	for i := range no.waiters {
		no.waiters[i].ch = make(chan struct{}, 1)
		no.waiters[i].next.Store(notifStackMask)
	}
	return no
}

// prewait announces intent to park. The caller must re-check its work
// sources afterwards and then call exactly one of commitWait or
// cancelWait.
func (no *notifier) prewait() {
	no.state.Add(notifWaiterInc)
}

// commitWait completes the park of waiter slot id: it moves this thread
// from the prewait count onto the waiter stack and blocks until a
// notifier pops it — unless a notify that ran between prewait and now
// banked a signal, in which case the signal is consumed and commitWait
// returns immediately. Returns true if the waiter actually parked.
func (no *notifier) commitWait(id int) bool {
	w := &no.waiters[id].notifyWaiter
	me := uint64(id) | w.epoch
	state := no.state.Load()
	for {
		var newState uint64
		signaled := state&notifSignalMask != 0
		if signaled {
			// A notify already paid for this wait: consume the signal and
			// leave without parking.
			newState = state - notifWaiterInc - notifSignalInc
		} else {
			// Leave the prewait count and push this slot onto the stack,
			// remembering the previous (stack|epoch) bits as our next.
			newState = (state-notifWaiterInc)&^(notifStackMask|notifEpochMask) | me
			w.next.Store(state & (notifStackMask | notifEpochMask))
		}
		if no.state.CompareAndSwap(state, newState) {
			if signaled {
				return false
			}
			w.epoch += notifEpochInc
			<-w.ch
			return true
		}
		state = no.state.Load()
	}
}

// cancelWait retracts a prewait: the caller found work on its re-check
// and will not park. If a notify has already banked one signal per
// prewaiting thread, one of those signals was addressed to this thread
// and is consumed with it (the work it advertised is being processed by
// the canceller anyway).
func (no *notifier) cancelWait() {
	state := no.state.Load()
	for {
		newState := state - notifWaiterInc
		waiters := (state & notifWaiterMask) >> notifWaiterShift
		signals := (state & notifSignalMask) >> notifSignalShift
		if waiters == signals {
			newState -= notifSignalInc
		}
		if no.state.CompareAndSwap(state, newState) {
			return
		}
		state = no.state.Load()
	}
}

// notifyOne wakes one waiter: it unparks the top of the waiter stack, or
// banks a signal for a thread still between prewait and commit. Returns
// false — after a single atomic load, with no stores — when nobody is
// waiting, which is the producers' fast path on a busy pool.
func (no *notifier) notifyOne() bool { return no.notify(false) }

// notifyAll wakes every current waiter (parked or prewaiting). Returns
// true if anyone was there to wake.
func (no *notifier) notifyAll() bool { return no.notify(true) }

func (no *notifier) notify(all bool) bool {
	state := no.state.Load()
	for {
		waiters := (state & notifWaiterMask) >> notifWaiterShift
		signals := (state & notifSignalMask) >> notifSignalShift
		stackTop := state & notifStackMask
		if stackTop == notifStackMask && waiters == signals {
			return false // fast path: nobody to wake
		}
		var newState uint64
		if all {
			// Bank one signal per prewaiter and take the whole stack.
			newState = state&notifWaiterMask | waiters<<notifSignalShift | notifStackMask
		} else if signals < waiters {
			// A thread is between prewait and commit: bank a signal its
			// commitWait will consume. No unpark needed.
			newState = state + notifSignalInc
		} else {
			// Pop the top parked waiter.
			w := &no.waiters[stackTop].notifyWaiter
			newState = state&^(notifStackMask|notifEpochMask) | w.next.Load()
		}
		if no.state.CompareAndSwap(state, newState) {
			if !all {
				if signals < waiters {
					return true
				}
				no.waiters[stackTop].ch <- struct{}{}
				return true
			}
			// Unpark the whole captured stack.
			for stackTop != notifStackMask {
				w := &no.waiters[stackTop].notifyWaiter
				stackTop = w.next.Load() & notifStackMask
				w.ch <- struct{}{}
			}
			return true
		}
		state = no.state.Load()
	}
}

// epochOf returns slot id's park-cycle count — the epoch stamp traced on
// park/unpark events. Owner-read only; it is exact for the calling worker.
func (no *notifier) epochOf(id int) uint64 {
	return no.waiters[id].epoch >> notifEpochShift
}

package executor

import (
	"sync"
	"sync/atomic"
	"testing"
)

// drain submits n one-shot tasks from outside the pool and waits for all of
// them to execute.
func drain(t *testing.T, e *Executor, n int) {
	t.Helper()
	var wg sync.WaitGroup
	wg.Add(n)
	for i := 0; i < n; i++ {
		if err := e.SubmitFunc(func(Context) { wg.Done() }); err != nil {
			t.Fatal(err)
		}
	}
	wg.Wait()
}

func TestMetricsDisabledByDefault(t *testing.T) {
	e := New(2)
	defer e.Shutdown()
	if e.MetricsEnabled() {
		t.Fatal("metrics enabled without WithMetrics")
	}
	if _, ok := e.MetricsSnapshot(); ok {
		t.Fatal("MetricsSnapshot ok on a metrics-disabled executor")
	}
}

func TestMetricsCountAndReconcile(t *testing.T) {
	e := New(4, WithMetrics(), WithSeed(7))
	drain(t, e, 500)

	// Fan-out from inside the pool so worker deques see pushes too.
	var wg sync.WaitGroup
	wg.Add(1)
	err := e.SubmitFunc(func(ctx Context) {
		var inner atomic.Int64
		const kids = 200
		inner.Store(kids)
		for i := 0; i < kids; i++ {
			ctx.Submit(NewTask(func(Context) {
				if inner.Add(-1) == 0 {
					wg.Done()
				}
			}))
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	wg.Wait()
	e.Shutdown()

	snap, ok := e.MetricsSnapshot()
	if !ok {
		t.Fatal("MetricsSnapshot not ok with WithMetrics")
	}
	total := snap.Total()
	if got := total.Executed; got != 701 {
		t.Fatalf("executed = %d, want 701", got)
	}
	if snap.InjectionPushes != 501 {
		t.Fatalf("injection pushes = %d, want 501", snap.InjectionPushes)
	}
	if total.Pushes != 200 {
		t.Fatalf("deque pushes = %d, want 200", total.Pushes)
	}
	if err := snap.Reconcile(); err != nil {
		t.Fatal(err)
	}
	if total.QueueDepth != 0 || snap.InjectionDepth != 0 {
		t.Fatalf("queues not drained in snapshot: depth=%d inj=%d",
			total.QueueDepth, snap.InjectionDepth)
	}
	if len(snap.Workers) != 4 {
		t.Fatalf("snapshot has %d workers, want 4", len(snap.Workers))
	}
}

func TestMetricsCountParksAndWakes(t *testing.T) {
	e := New(2, WithMetrics(), WithSpin(0)) // park immediately when idle
	defer e.Shutdown()
	for round := 0; round < 20; round++ {
		drain(t, e, 4)
	}
	snap, _ := e.MetricsSnapshot()
	total := snap.Total()
	if total.Parks == 0 {
		t.Fatal("no parks recorded despite WithSpin(0) idle periods")
	}
	if snap.PreciseWakes == 0 {
		t.Fatal("no precise wakes recorded despite external submissions")
	}
}

func TestMetricsStealAccounting(t *testing.T) {
	// A single long fan-out from one worker forces the others to steal.
	e := New(4, WithMetrics(), WithSeed(3))
	var wg sync.WaitGroup
	const kids = 2000
	wg.Add(kids)
	err := e.SubmitFunc(func(ctx Context) {
		for i := 0; i < kids; i++ {
			ctx.SubmitNoWake(NewTask(func(Context) {
				for j := 0; j < 100; j++ {
					_ = j * j
				}
				wg.Done()
			}))
		}
		ctx.Wake(kids)
	})
	if err != nil {
		t.Fatal(err)
	}
	wg.Wait()
	e.Shutdown()
	snap, _ := e.MetricsSnapshot()
	total := snap.Total()
	if total.Steals != total.StolenFrom {
		t.Fatalf("thief-side steals %d != victim-side %d", total.Steals, total.StolenFrom)
	}
	if total.StealAttempts < total.Steals {
		t.Fatalf("steal attempts %d < steals %d", total.StealAttempts, total.Steals)
	}
	if total.MaxQueueDepth == 0 {
		t.Fatal("max queue depth watermark never raised by a 2000-task fan-out")
	}
	if err := snap.Reconcile(); err != nil {
		t.Fatal(err)
	}
}

// TestMetricsSnapshotWhileRunning exercises concurrent snapshotting under
// the race detector: readers must never race with the counting hot path.
func TestMetricsSnapshotWhileRunning(t *testing.T) {
	e := New(4, WithMetrics())
	defer e.Shutdown()
	stop := make(chan struct{})
	var rg sync.WaitGroup
	rg.Add(1)
	go func() {
		defer rg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			if snap, ok := e.MetricsSnapshot(); ok {
				_ = snap.Total()
			}
		}
	}()
	for i := 0; i < 50; i++ {
		drain(t, e, 20)
	}
	close(stop)
	rg.Wait()
}

package executor

import (
	"sync"
	"sync/atomic"
	"testing"
)

// drain submits n one-shot tasks from outside the pool and waits for all of
// them to execute.
func drain(t *testing.T, e *Executor, n int) {
	t.Helper()
	var wg sync.WaitGroup
	wg.Add(n)
	for i := 0; i < n; i++ {
		if err := e.SubmitFunc(func(Context) { wg.Done() }); err != nil {
			t.Fatal(err)
		}
	}
	wg.Wait()
}

func TestMetricsDisabledByDefault(t *testing.T) {
	e := New(2)
	defer e.Shutdown()
	if e.MetricsEnabled() {
		t.Fatal("metrics enabled without WithMetrics")
	}
	if _, ok := e.MetricsSnapshot(); ok {
		t.Fatal("MetricsSnapshot ok on a metrics-disabled executor")
	}
}

func TestMetricsCountAndReconcile(t *testing.T) {
	e := New(4, WithMetrics(), WithSeed(7))
	drain(t, e, 500)

	// Fan-out from inside the pool so worker deques see pushes too.
	var wg sync.WaitGroup
	wg.Add(1)
	err := e.SubmitFunc(func(ctx Context) {
		var inner atomic.Int64
		const kids = 200
		inner.Store(kids)
		for i := 0; i < kids; i++ {
			ctx.Submit(NewTask(func(Context) {
				if inner.Add(-1) == 0 {
					wg.Done()
				}
			}))
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	wg.Wait()
	e.Shutdown()

	snap, ok := e.MetricsSnapshot()
	if !ok {
		t.Fatal("MetricsSnapshot not ok with WithMetrics")
	}
	total := snap.Total()
	if got := total.Executed; got != 701 {
		t.Fatalf("executed = %d, want 701", got)
	}
	if snap.InjectionPushes != 501 {
		t.Fatalf("injection pushes = %d, want 501", snap.InjectionPushes)
	}
	// At least the 200 fan-out children are pushed on worker deques; batch
	// steals and batch injection drains re-push their extras onto the
	// thief's deque, so the total may be higher (each re-push is balanced
	// by a pop or steal, which Reconcile checks below).
	if total.Pushes < 200 {
		t.Fatalf("deque pushes = %d, want >= 200", total.Pushes)
	}
	if err := snap.Reconcile(); err != nil {
		t.Fatal(err)
	}
	if total.QueueDepth != 0 || snap.InjectionDepth != 0 {
		t.Fatalf("queues not drained in snapshot: depth=%d inj=%d",
			total.QueueDepth, snap.InjectionDepth)
	}
	if len(snap.Workers) != 4 {
		t.Fatalf("snapshot has %d workers, want 4", len(snap.Workers))
	}
}

func TestMetricsCountParksAndWakes(t *testing.T) {
	e := New(2, WithMetrics(), WithSpin(0)) // park immediately when idle
	defer e.Shutdown()
	for round := 0; round < 20; round++ {
		drain(t, e, 4)
	}
	snap, _ := e.MetricsSnapshot()
	total := snap.Total()
	if total.Parks == 0 {
		t.Fatal("no parks recorded despite WithSpin(0) idle periods")
	}
	if snap.PreciseWakes == 0 {
		t.Fatal("no precise wakes recorded despite external submissions")
	}
}

func TestMetricsStealAccounting(t *testing.T) {
	// A single long fan-out from one worker forces the others to steal.
	e := New(4, WithMetrics(), WithSeed(3))
	var wg sync.WaitGroup
	const kids = 2000
	wg.Add(kids)
	err := e.SubmitFunc(func(ctx Context) {
		for i := 0; i < kids; i++ {
			ctx.SubmitNoWake(NewTask(func(Context) {
				for j := 0; j < 100; j++ {
					_ = j * j
				}
				wg.Done()
			}))
		}
		ctx.Wake(kids)
	})
	if err != nil {
		t.Fatal(err)
	}
	wg.Wait()
	e.Shutdown()
	snap, _ := e.MetricsSnapshot()
	total := snap.Total()
	if total.StolenTasks != total.StolenFrom {
		t.Fatalf("thief-side stolen tasks %d != victim-side %d", total.StolenTasks, total.StolenFrom)
	}
	if total.StolenTasks < total.Steals {
		t.Fatalf("stolen tasks %d < steal operations %d", total.StolenTasks, total.Steals)
	}
	if total.StealBatches > total.Steals {
		t.Fatalf("steal batches %d > steal operations %d", total.StealBatches, total.Steals)
	}
	if total.StealAttempts < total.Steals {
		t.Fatalf("steal attempts %d < steals %d", total.StealAttempts, total.Steals)
	}
	if total.MaxQueueDepth == 0 {
		t.Fatal("max queue depth watermark never raised by a 2000-task fan-out")
	}
	if err := snap.Reconcile(); err != nil {
		t.Fatal(err)
	}
}

// TestMetricsBatchDrainAccounting drives wide external bursts through a
// small pool so the batch injection drain fires, and checks the
// operation/task split the batch counters promise.
func TestMetricsBatchDrainAccounting(t *testing.T) {
	e := New(2, WithMetrics(), WithSeed(11), WithSpin(0))
	const rounds, burst = 10, 256
	for round := 0; round < rounds; round++ {
		var wg sync.WaitGroup
		wg.Add(burst)
		r := NewTask(func(Context) { wg.Done() })
		rs := make([]*Runnable, burst)
		for i := range rs {
			rs[i] = r
		}
		if err := e.SubmitBatch(rs); err != nil {
			t.Fatal(err)
		}
		wg.Wait()
	}
	e.Shutdown()
	snap, _ := e.MetricsSnapshot()
	total := snap.Total()
	if snap.InjectionPushes != rounds*burst {
		t.Fatalf("injection pushes = %d, want %d", snap.InjectionPushes, rounds*burst)
	}
	if total.InjectionDrainedTasks != snap.InjectionPushes {
		t.Fatalf("drained tasks %d != pushes %d", total.InjectionDrainedTasks, snap.InjectionPushes)
	}
	// A 256-task burst against a 2-worker pool must produce at least one
	// multi-task drain, so the task count strictly exceeds the op count.
	if total.InjectionDrainedTasks <= total.InjectionDrains {
		t.Fatalf("no batch drains: drained tasks %d, drain ops %d",
			total.InjectionDrainedTasks, total.InjectionDrains)
	}
	if err := snap.Reconcile(); err != nil {
		t.Fatal(err)
	}
}

// TestMetricsSnapshotWhileRunning exercises concurrent snapshotting under
// the race detector: readers must never race with the counting hot path.
func TestMetricsSnapshotWhileRunning(t *testing.T) {
	e := New(4, WithMetrics())
	defer e.Shutdown()
	stop := make(chan struct{})
	var rg sync.WaitGroup
	rg.Add(1)
	go func() {
		defer rg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			if snap, ok := e.MetricsSnapshot(); ok {
				_ = snap.Total()
			}
		}
	}()
	for i := 0; i < 50; i++ {
		drain(t, e, 20)
	}
	close(stop)
	rg.Wait()
}

package executor

// Multi-tenant flows: the arbitration layer between taskflows sharing one
// executor. The paper's executor is shareable (Section III-E) but blind to
// who submitted what — a 20k-task traversal and a 10-task request ride the
// same deques. A Flow is a named submission handle carrying a priority
// class, a weighted share within its class, an in-flight task quota
// enforced at admission, and a backlog watermark past which new admissions
// are shed.
//
// Scheduling policy (see worker.steal in executor.go):
//
//   - Strict class priority on the drain path: Interactive flow backlog is
//     drained before deque stealing and the plain injection shards, which
//     in turn are drained before Batch flows, then Background flows. Small
//     high-priority flows never wait behind bulk work.
//
//   - Weighted round-robin within a class: each class keeps a
//     weight-expanded wheel of its flows and a shared cursor that advances
//     by one per drain, so while a flow has backlog it is serviced at
//     least once per full wheel rotation — a hard bound on the service gap
//     of sum-of-weights drains — and over time flows receive shares
//     proportional to their weights.
//
// Admission protocol (used by internal/core): a dispatcher calls
// Admit(n) with the topology's task count before submitting anything, and
// Release(n) exactly once when the topology finishes. The quota is a
// ceiling on reserved in-flight task units, exact by construction: each
// graph node has at most one outstanding scheduled execution (the join-
// counter protocol), so a graph of n tasks can never have more than n
// executions in flight. Subflow expansions, condition-loop iterations and
// retries ride on their topology's reservation. Submit/SubmitBatch then
// enqueue pre-admitted work and fail only at shutdown — internal
// resubmissions (semaphore hand-offs, retries) are never shed, because a
// shed mid-graph submission would strand the topology.
//
// Everything here stays off the per-task hot path: a pool with no flows
// registered pays one nil pointer load per steal sweep, and a flow-bound
// topology pays atomics only (no allocation) per run and per task.

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"

	"gotaskflow/internal/wsq"
)

// ErrAdmission is returned by Flow.Admit when accepting n more in-flight
// task units would exceed the flow's MaxInFlight quota. The caller owns
// the retry policy (bounded queueing): nothing was charged.
var ErrAdmission = errors.New("executor: flow in-flight quota exceeded")

// ErrOverloaded is returned by Flow.Admit when the flow's queued backlog
// sits at or above its MaxBacklog watermark — load shedding. Nothing was
// charged; the producer should back off.
var ErrOverloaded = errors.New("executor: flow backlog over watermark (load shed)")

// PriorityClass ranks flows for the drain path. Lower value = higher
// priority.
type PriorityClass uint8

const (
	// Interactive flows are drained before everything else, including
	// deque stealing: request-shaped work that wants latency.
	Interactive PriorityClass = iota
	// Batch flows are drained after deques and the plain injection
	// shards: throughput work that tolerates waiting behind active graphs.
	Batch
	// Background flows are drained last: work that should only soak idle
	// capacity.
	Background

	// NumPriorityClasses is the number of priority classes.
	NumPriorityClasses = 3
)

// String returns the lowercase class name.
func (c PriorityClass) String() string {
	switch c {
	case Interactive:
		return "interactive"
	case Batch:
		return "batch"
	case Background:
		return "background"
	}
	return fmt.Sprintf("class(%d)", uint8(c))
}

// maxFlowWeight caps a flow's weighted share so one flow cannot bloat the
// class wheel (and the service-gap bound) without limit.
const maxFlowWeight = 64

// FlowConfig configures a flow at creation.
type FlowConfig struct {
	// Class is the flow's priority class (default Interactive — zero
	// value; out-of-range values clamp to Background).
	Class PriorityClass
	// Weight is the flow's share within its class wheel, clamped to
	// [1, 64]. A weight-3 flow is serviced three times per wheel rotation
	// where a weight-1 flow is serviced once.
	Weight int
	// MaxInFlight caps reserved in-flight task units (Admit/Release);
	// 0 means unlimited.
	MaxInFlight int
	// MaxBacklog is the queued-task watermark at or above which Admit
	// sheds new work with ErrOverloaded; 0 means never shed.
	MaxBacklog int
}

// FlowStats is one flow's counters at a snapshot instant. The counters
// are always on (they are the admission-control state), so Stats works
// without WithMetrics; Snapshot.Reconcile checks their conservation laws
// at quiescence.
type FlowStats struct {
	Name   string
	Class  PriorityClass
	Weight int

	// Queue traffic: tasks pushed into the flow's ring, drain operations
	// that found work, and tasks removed (incl. batch extras). At
	// quiescence Pushes == DrainedTasks.
	Pushes       uint64
	DrainOps     uint64
	DrainedTasks uint64

	// Executed counts task executions attributed to the flow (every
	// execution of its topologies, wherever the task was queued).
	Executed uint64

	// Admission accounting, in task units. At quiescence (no admitted
	// topology open) AdmittedTasks == ReleasedTasks and InFlight == 0.
	// AdmissionRejects counts units refused by the quota,
	// OverloadSheds units refused by the backlog watermark.
	AdmittedTasks    uint64
	ReleasedTasks    uint64
	AdmissionRejects uint64
	OverloadSheds    uint64

	// InFlight and Backlog are gauges at the snapshot instant;
	// PeakInFlight is the high watermark of InFlight. PeakInFlight never
	// exceeds MaxInFlight when a quota is set.
	InFlight     int64
	PeakInFlight int64
	Backlog      int

	// Config echoes, so exported snapshots are self-describing.
	MaxInFlight int
	MaxBacklog  int

	// Latency is the flow's merged latency histogram triple, non-nil only
	// when the executor was built WithLatencyHistograms (histogram.go).
	Latency *FlowLatencyStats
}

// Flow is a multi-tenant submission handle. Implemented by the real
// executor (NewFlow) and by internal/sim's SimExecutor, so flow-bound
// taskflows run identically under deterministic simulation.
//
// The admission pair is Admit/Release; the submission pair is
// Submit/SubmitBatch (pre-admitted work only). NoteExecuted attributes
// executions. All methods are safe for concurrent use on the real
// executor.
type Flow interface {
	// Name returns the flow's display name.
	Name() string
	// Class returns the flow's priority class.
	Class() PriorityClass
	// Admit reserves n in-flight task units, or rejects the whole request
	// with ErrAdmission (quota), ErrOverloaded (backlog watermark), or
	// ErrShutdown — charging nothing on any error.
	Admit(n int) error
	// Release returns n units reserved by a successful Admit. Call
	// exactly once per admission.
	Release(n int)
	// Submit enqueues one pre-admitted task on the flow's priority queue.
	// It fails only with ErrShutdown.
	Submit(r *Runnable) error
	// SubmitBatch enqueues pre-admitted tasks as one FIFO batch, accepted
	// whole or rejected whole with ErrShutdown.
	SubmitBatch(rs []*Runnable) error
	// NoteExecuted attributes n task executions to the flow.
	NoteExecuted(n int)
	// Stats snapshots the flow's counters.
	Stats() FlowStats
}

// classState is the per-priority-class scheduling state: an atomic
// backlog gauge (published like the injection shards' len, after the ring
// unlock and before the wake, so parking workers see flow work without a
// lock), the weight-expanded wheel, and the shared round-robin cursor.
type classState struct {
	backlog atomic.Int64
	cursor  atomic.Uint64
	// wheel holds each flow of the class Weight times; rebuilt (copy on
	// write) under mtState.mu when a flow registers.
	wheel atomic.Pointer[[]*execFlow]
	_     [metricsPad - 24%metricsPad]byte // pad: three words of state above
}

// mtState is the executor's multi-tenancy state, allocated on first
// NewFlow so flow-free pools pay only a nil check.
type mtState struct {
	classes [NumPriorityClasses]classState

	mu         sync.Mutex
	all        []*execFlow                     // registration order, for FlowStats
	classFlows [NumPriorityClasses][]*execFlow // registration order per class
}

// execFlow is the real executor's Flow: a lock-guarded task ring (the
// same shrink-on-drain ring as the injection shards) plus always-on
// atomic accounting.
type execFlow struct {
	e    *Executor
	cs   *classState
	name string
	cfg  FlowConfig
	idx  int // registration index, used as the trace shard id

	mu   sync.Mutex
	ring taskRing
	qlen atomic.Int64

	inflight atomic.Int64
	peak     atomic.Int64
	admitted atomic.Uint64
	released atomic.Uint64
	rejected atomic.Uint64
	shed     atomic.Uint64

	pushes       atomic.Uint64
	drains       atomic.Uint64
	drainedTasks atomic.Uint64
	executed     atomic.Uint64

	// lat is the flow's latency histogram set, non-nil only when the
	// executor was built WithLatencyHistograms (histogram.go).
	lat *flowLatency
}

var _ Flow = (*execFlow)(nil)

// flowTraceShardBase offsets flow indices into the shard byte of
// EvInjectPush/EvInjectDrain trace args (see InjectArg), so flow queue
// traffic shares the injection event kinds while staying distinguishable
// from the plain shards (which are < flowTraceShardBase).
const flowTraceShardBase = 0x80

func (f *execFlow) traceShard() int {
	return flowTraceShardBase | (f.idx & 0x7f)
}

// NormalizeFlowConfig clamps a FlowConfig to its documented ranges:
// out-of-range classes become Background, Weight lands in [1, 64], and
// negative limits mean unlimited. Exported so internal/sim applies the
// identical normalization to its modeled flows.
func NormalizeFlowConfig(cfg FlowConfig) FlowConfig {
	if cfg.Class >= NumPriorityClasses {
		cfg.Class = Background
	}
	if cfg.Weight < 1 {
		cfg.Weight = 1
	}
	if cfg.Weight > maxFlowWeight {
		cfg.Weight = maxFlowWeight
	}
	if cfg.MaxInFlight < 0 {
		cfg.MaxInFlight = 0
	}
	if cfg.MaxBacklog < 0 {
		cfg.MaxBacklog = 0
	}
	return cfg
}

// NewFlow registers a named multi-tenant flow on the executor. Flows are
// never unregistered; create them once at setup, not per request. The
// first registration allocates the multi-tenancy state — a pool that
// never calls NewFlow pays one nil check per steal sweep.
func (e *Executor) NewFlow(name string, cfg FlowConfig) Flow {
	cfg = NormalizeFlowConfig(cfg)
	mt := e.mt.Load()
	if mt == nil {
		mt = &mtState{}
		if !e.mt.CompareAndSwap(nil, mt) {
			mt = e.mt.Load()
		}
	}
	f := &execFlow{e: e, name: name, cfg: cfg}
	f.ring.init(injInitialCap)
	if e.lat != nil {
		f.lat = newFlowLatency(e.lat.workers)
	}
	mt.mu.Lock()
	f.idx = len(mt.all)
	mt.all = append(mt.all, f)
	cs := &mt.classes[cfg.Class]
	f.cs = cs
	mt.classFlows[cfg.Class] = append(mt.classFlows[cfg.Class], f)
	// Rebuild the class wheel copy-on-write: each flow appears Weight
	// times, block-repeated in registration order. Readers (drain sweeps)
	// load the pointer once and never see a partial wheel.
	var wheel []*execFlow
	for _, g := range mt.classFlows[cfg.Class] {
		for i := 0; i < g.cfg.Weight; i++ {
			wheel = append(wheel, g)
		}
	}
	cs.wheel.Store(&wheel)
	mt.mu.Unlock()
	return f
}

// FlowStats snapshots every registered flow's counters, in registration
// order. Works without WithMetrics (the counters are the admission state);
// nil when no flow was ever registered.
func (e *Executor) FlowStats() []FlowStats {
	mt := e.mt.Load()
	if mt == nil {
		return nil
	}
	mt.mu.Lock()
	all := append([]*execFlow(nil), mt.all...)
	mt.mu.Unlock()
	out := make([]FlowStats, len(all))
	for i, f := range all {
		out[i] = f.Stats()
	}
	return out
}

func (f *execFlow) Name() string         { return f.name }
func (f *execFlow) Class() PriorityClass { return f.cfg.Class }

// Admit implements Flow: an all-or-nothing reservation of n in-flight
// task units. The watermark check comes first (nothing to undo), then the
// quota CAS loop, so a rejected request leaves every counter untouched.
func (f *execFlow) Admit(n int) error {
	if n <= 0 {
		return nil
	}
	if f.e.stop.Load() {
		return ErrShutdown
	}
	if wm := int64(f.cfg.MaxBacklog); wm > 0 && f.qlen.Load() >= wm {
		f.shed.Add(uint64(n))
		return ErrOverloaded
	}
	if max := int64(f.cfg.MaxInFlight); max > 0 {
		for {
			cur := f.inflight.Load()
			next := cur + int64(n)
			if next > max {
				f.rejected.Add(uint64(n))
				return ErrAdmission
			}
			if f.inflight.CompareAndSwap(cur, next) {
				break
			}
		}
	} else {
		f.inflight.Add(int64(n))
	}
	f.admitted.Add(uint64(n))
	for {
		cur := f.inflight.Load()
		p := f.peak.Load()
		if cur <= p || f.peak.CompareAndSwap(p, cur) {
			break
		}
	}
	return nil
}

// Release implements Flow: return n units reserved by Admit.
func (f *execFlow) Release(n int) {
	if n <= 0 {
		return
	}
	f.inflight.Add(-int64(n))
	f.released.Add(uint64(n))
}

// NoteExecuted implements Flow.
func (f *execFlow) NoteExecuted(n int) {
	f.executed.Add(uint64(n))
}

// Submit implements Flow: enqueue one pre-admitted task. The backlog
// gauges are published after the ring unlock and before the wake, the
// same lost-wakeup-free protocol as the injection shards: a parking
// worker that misses the notify re-checks anyWork and sees the count.
func (f *execFlow) Submit(r *Runnable) error {
	e := f.e
	if e.stop.Load() {
		return ErrShutdown
	}
	f.mu.Lock()
	f.ring.push(r)
	f.mu.Unlock()
	f.qlen.Add(1)
	f.cs.backlog.Add(1)
	f.pushes.Add(1)
	e.TraceExternal(EvInjectPush, TaskMeta{Flow: f.name}, InjectArg(f.traceShard(), 1))
	if e.wakeOne() {
		e.TraceExternal(EvWakePrecise, TaskMeta{}, 1)
	}
	return nil
}

// SubmitBatch implements Flow: one lock, one publication, one computed
// wake count for the whole batch.
func (f *execFlow) SubmitBatch(rs []*Runnable) error {
	if len(rs) == 0 {
		return nil
	}
	e := f.e
	if e.stop.Load() {
		return ErrShutdown
	}
	f.mu.Lock()
	f.ring.pushBatch(rs)
	f.mu.Unlock()
	f.qlen.Add(int64(len(rs)))
	f.cs.backlog.Add(int64(len(rs)))
	f.pushes.Add(uint64(len(rs)))
	e.TraceExternal(EvInjectPush, TaskMeta{Flow: f.name}, InjectArg(f.traceShard(), uint64(len(rs))))
	if woke := e.wakeUpTo(len(rs)); woke > 0 {
		e.TraceExternal(EvWakePrecise, TaskMeta{}, uint64(woke))
	}
	return nil
}

// Stats implements Flow.
func (f *execFlow) Stats() FlowStats {
	backlog := f.qlen.Load()
	if backlog < 0 {
		backlog = 0
	}
	var lat *FlowLatencyStats
	if f.lat != nil {
		lat = f.lat.stats()
	}
	return FlowStats{
		Name:             f.name,
		Class:            f.cfg.Class,
		Weight:           f.cfg.Weight,
		Pushes:           f.pushes.Load(),
		DrainOps:         f.drains.Load(),
		DrainedTasks:     f.drainedTasks.Load(),
		Executed:         f.executed.Load(),
		AdmittedTasks:    f.admitted.Load(),
		ReleasedTasks:    f.released.Load(),
		AdmissionRejects: f.rejected.Load(),
		OverloadSheds:    f.shed.Load(),
		InFlight:         f.inflight.Load(),
		PeakInFlight:     f.peak.Load(),
		Backlog:          int(backlog),
		MaxInFlight:      f.cfg.MaxInFlight,
		MaxBacklog:       f.cfg.MaxBacklog,
		Latency:          lat,
	}
}

// drainFlows sweeps one priority class's flows in weighted-round-robin
// order and drains up to half the first non-empty flow's backlog (capped
// at wsq.MaxStealBatch): the first task is returned for execution, the
// extras land on this worker's own deque. The shared cursor advances by
// one per drain, so while a flow keeps backlog it is serviced at least
// once per wheel rotation — the service-gap bound the fairness property
// tests assert. Returns (nil, false) when the class has no visible work.
func (w *worker) drainFlows(cs *classState) (*Runnable, bool) {
	if cs.backlog.Load() <= 0 {
		// Transient negatives are possible (gauge published after the
		// ring unlock); treat <= 0 as empty like the shard drains do.
		return nil, false
	}
	wp := cs.wheel.Load()
	if wp == nil {
		return nil, false
	}
	wheel := *wp
	n := len(wheel)
	if n == 0 {
		return nil, false
	}
	var scratch [wsq.MaxStealBatch]*Runnable
	start := int(cs.cursor.Add(1) - 1)
	for i := 0; i < n; i++ {
		f := wheel[(start+i)%n]
		ln := f.qlen.Load()
		if ln <= 0 {
			continue
		}
		grab := (ln + 1) / 2
		if grab > int64(len(scratch)) {
			grab = int64(len(scratch))
		}
		f.mu.Lock()
		k := f.ring.popN(scratch[:grab])
		f.mu.Unlock()
		if k == 0 {
			continue
		}
		f.qlen.Add(-int64(k))
		cs.backlog.Add(-int64(k))
		f.drains.Add(1)
		f.drainedTasks.Add(uint64(k))
		if k > 1 {
			w.queue.PushBatch(scratch[1:k])
		}
		if m := w.metrics; m != nil {
			m.flowDrains.Add(1)
			m.flowDrainedTasks.Add(uint64(k))
		}
		w.traceEvent(EvInjectDrain, InjectArg(f.traceShard(), uint64(k)))
		return scratch[0], true
	}
	return nil, false
}

// flowBacklog reports the total queued flow backlog across classes
// (gauge, for tests and debug surfaces).
func (e *Executor) flowBacklog() int {
	mt := e.mt.Load()
	if mt == nil {
		return 0
	}
	var total int64
	for c := range mt.classes {
		total += mt.classes[c].backlog.Load()
	}
	if total < 0 {
		total = 0
	}
	return int(total)
}

package executor

import (
	"sync"
	"sync/atomic"
	"unsafe"
)

// injInitialCap is the initial capacity of each injection shard's ring.
// Small: most work flows through worker-local deques; external submission
// is the topology-dispatch path.
const injInitialCap = 64

// injShrinkCap is the capacity floor below which a shard's ring never
// shrinks.
const injShrinkCap = 1024

// injMaxShards caps the injection shard count: beyond ~16 shards the
// sweep cost of an idle worker checking every shard outweighs the
// contention relief.
const injMaxShards = 16

// injShardCount sizes the injection queue for n workers: one shard per
// four-worker group, rounded up to a power of two (so shard selection is a
// mask), capped at injMaxShards. Small pools keep a single ring and pay
// nothing for the sharding.
func injShardCount(n int) int {
	s := 1
	for s*4 < n && s < injMaxShards {
		s <<= 1
	}
	return s
}

// injShard is one lock-guarded ring of the sharded injection queue.
// External producers hash their task pointer to a shard; each worker
// drains its home shard (worker id mod shards) first and sweeps the others
// only when home is empty, so at high core counts producer groups and
// worker groups meet on different locks instead of one.
//
// len is published outside the lock (after push, before the wake), so
// workers check for external work without acquiring anything; it can read
// transiently negative when a drain lands between a producer's unlock and
// its Add — readers treat <= 0 as empty.
type injShard struct {
	mu   sync.Mutex
	ring taskRing
	len  atomic.Int64
}

// injShardPad pads shards to 128 bytes (two cache lines) so producers
// hammering adjacent shards do not false-share.
const injShardPad = 128

type paddedInjShard struct {
	injShard
	_ [injShardPad - unsafe.Sizeof(injShard{})%injShardPad]byte
}

// taskRing is a growable power-of-two ring buffer of task references — the
// storage behind the executor's external injection queue. Unlike the
// append/re-slice queue it replaces, a drained ring reuses its slots instead
// of marching through (and retaining) an ever-growing backing array, and it
// shrinks back after bursts so capacity stays proportional to the live
// backlog. All methods are called with the executor's injection lock held.
type taskRing struct {
	buf  []*Runnable
	head int64 // next slot to pop
	tail int64 // next slot to push; length = tail - head
}

func (q *taskRing) init(capacity int) {
	q.buf = make([]*Runnable, capacity)
}

func (q *taskRing) len() int { return int(q.tail - q.head) }

// resize moves the live window [head, tail) into a fresh buffer of the
// given power-of-two capacity.
func (q *taskRing) resize(capacity int64) {
	buf := make([]*Runnable, capacity)
	mask := int64(len(q.buf) - 1)
	for i := q.head; i < q.tail; i++ {
		buf[i&(capacity-1)] = q.buf[i&mask]
	}
	q.buf = buf
}

func (q *taskRing) push(r *Runnable) {
	if q.tail-q.head == int64(len(q.buf)) {
		q.resize(int64(len(q.buf)) * 2)
	}
	q.buf[q.tail&int64(len(q.buf)-1)] = r
	q.tail++
}

func (q *taskRing) pushBatch(rs []*Runnable) {
	need := q.tail - q.head + int64(len(rs))
	if need > int64(len(q.buf)) {
		c := int64(len(q.buf)) * 2
		for c < need {
			c *= 2
		}
		q.resize(c)
	}
	mask := int64(len(q.buf) - 1)
	for _, r := range rs {
		q.buf[q.tail&mask] = r
		q.tail++
	}
}

// popN removes up to len(dst) of the oldest tasks into dst and returns how
// many were moved. One lock acquisition (and one shrink check) covers the
// whole batch, amortizing the drain cost of a deep backlog.
func (q *taskRing) popN(dst []*Runnable) int {
	n := int(q.tail - q.head)
	if n == 0 {
		return 0
	}
	if n > len(dst) {
		n = len(dst)
	}
	mask := int64(len(q.buf) - 1)
	for i := 0; i < n; i++ {
		j := q.head & mask
		dst[i] = q.buf[j]
		q.buf[j] = nil // release the task for GC
		q.head++
	}
	if c := int64(len(q.buf)); c > injShrinkCap && (q.tail-q.head)*4 <= c {
		q.resize(c / 2)
	}
	return n
}

func (q *taskRing) pop() (*Runnable, bool) {
	if q.head == q.tail {
		return nil, false
	}
	i := q.head & int64(len(q.buf)-1)
	r := q.buf[i]
	q.buf[i] = nil // release the task for GC
	q.head++
	// Shrink after bursts: once the live backlog fits in a quarter of the
	// ring, halve it (down to the floor) so a one-off spike does not pin
	// the high-water-mark capacity forever.
	if c := int64(len(q.buf)); c > injShrinkCap && (q.tail-q.head)*4 <= c {
		q.resize(c / 2)
	}
	return r, true
}

package executor

// Regression tests for the armed-timer registry behind Scheduler.AfterFunc
// — the fix for retry timers firing into a dead pool: a timer armed when
// Shutdown begins is resolved during Shutdown (its callback runs, observes
// the stopped executor, and gets ErrShutdown on submission) instead of
// firing minutes later against freed workers.

import (
	"sync/atomic"
	"testing"
	"time"

	"gotaskflow/internal/testutil"
)

func TestAfterFuncFires(t *testing.T) {
	testutil.NoLeaks(t)
	e := New(2)
	defer e.Shutdown()
	var fired atomic.Int64
	e.AfterFunc(time.Millisecond, func() { fired.Add(1) })
	waitCounter(t, &fired, 1)
	testutil.Eventually(t, time.Second, func() bool { return e.ArmedTimers() == 0 },
		"fired timer still registered: ArmedTimers() = %d", e.ArmedTimers())
}

func TestAfterFuncStop(t *testing.T) {
	testutil.NoLeaks(t)
	e := New(2)
	defer e.Shutdown()
	var fired atomic.Int64
	tm := e.AfterFunc(time.Hour, func() { fired.Add(1) })
	if e.ArmedTimers() != 1 {
		t.Fatalf("ArmedTimers() = %d, want 1", e.ArmedTimers())
	}
	if !tm.Stop() {
		t.Fatal("Stop on an armed timer returned false")
	}
	if e.ArmedTimers() != 0 {
		t.Fatalf("ArmedTimers() after Stop = %d, want 0", e.ArmedTimers())
	}
	if tm.Stop() {
		t.Fatal("second Stop returned true")
	}
	if fired.Load() != 0 {
		t.Fatal("stopped timer fired")
	}
}

func TestShutdownFiresArmedTimers(t *testing.T) {
	testutil.NoLeaks(t)
	e := New(2)
	var sawStopped atomic.Bool
	var submitErr atomic.Value
	e.AfterFunc(time.Hour, func() {
		sawStopped.Store(e.Stopped())
		var r Runnable = noopRunnable{}
		if err := e.Submit(&r); err != nil {
			submitErr.Store(err)
		}
	})
	start := time.Now()
	e.Shutdown()
	if d := time.Since(start); d > 10*time.Second {
		t.Fatalf("Shutdown waited %v on an hour-scale timer", d)
	}
	if !sawStopped.Load() {
		t.Fatal("armed timer callback did not run during Shutdown (or saw a live pool)")
	}
	if err, _ := submitErr.Load().(error); err != ErrShutdown {
		t.Fatalf("submission from shutdown-resolved timer = %v, want ErrShutdown", err)
	}
	if e.ArmedTimers() != 0 {
		t.Fatalf("ArmedTimers() after Shutdown = %d, want 0", e.ArmedTimers())
	}
}

func TestAfterFuncPostShutdownRunsInline(t *testing.T) {
	testutil.NoLeaks(t)
	e := New(1)
	e.Shutdown()
	ran := false
	tm := e.AfterFunc(time.Hour, func() { ran = true })
	if !ran {
		t.Fatal("post-Shutdown AfterFunc did not run the callback inline")
	}
	if tm.Stop() {
		t.Fatal("Stop on an already-resolved timer returned true")
	}
}

type noopRunnable struct{}

func (noopRunnable) Run(Context) {}

package executor

// The scheduler seam: the minimal interface internal/core needs to
// dispatch topologies, factored out so the same task graphs can run on
// the real work-stealing pool or on internal/sim's deterministic
// single-threaded simulation executor.
//
// Two layers make up the seam:
//
//   - Context (executor.go) is the per-task scheduling surface a running
//     task sees. It was always an interface — the hot path (push, pop,
//     cache, wake) is already virtualized through it, so extracting
//     Scheduler adds nothing to the per-task cost.
//
//   - Scheduler (this file) is the topology-level surface: external
//     submission, worker count, shutdown, external trace events, and the
//     timer used by Task.Retry backoff. Core calls it once per dispatch /
//     run / retry / cancellation — never per task — so routing it through
//     an interface leaves the zero-alloc per-task path untouched.
//
// The timer half (AfterFunc) exists for two reasons. First, it is the
// virtual-clock seam: the simulation executor implements it with a
// virtual clock so retry backoffs fire instantly, in seed-controlled
// orders, instead of sleeping. Second, it closes a real lifetime bug in
// the wall-clock implementation: a time.AfterFunc armed by a retrying
// task used to outlive Shutdown and fire into a dead pool up to a full
// backoff later — the submission failed, but a topology whose retry was
// parked on a semaphore could hang, and the process carried an armed
// timer it believed quiesced. The executor now registers every armed
// timer and resolves them at Shutdown (see timers.go).

import "time"

// Timer is the handle to a pending AfterFunc callback.
type Timer interface {
	// Stop cancels the callback. It reports whether it won the race: false
	// means the callback already ran or is running (possibly fired by
	// Shutdown). After a true return the callback will never run.
	Stop() bool
}

// Scheduler is the minimal scheduling surface a task-graph dispatcher
// (internal/core) needs: everything it calls on an executor outside the
// per-task Context path. *Executor implements it with the work-stealing
// pool; internal/sim.SimExecutor implements it with a deterministic,
// seed-driven single-threaded simulation.
//
// None of these methods sit on the per-task hot path — tasks schedule
// their successors through Context — so an implementation behind this
// interface costs nothing per task executed.
type Scheduler interface {
	// Submit schedules a task from outside the worker pool. After
	// Shutdown it returns ErrShutdown.
	Submit(r *Runnable) error
	// SubmitBatch schedules several tasks at once, accepted whole or
	// rejected whole with ErrShutdown.
	SubmitBatch(rs []*Runnable) error
	// NumWorkers returns the (modeled) worker count.
	NumWorkers() int
	// Shutdown stops the scheduler and resolves every armed timer; see
	// AfterFunc. Idempotent.
	Shutdown()
	// Stopped reports whether Shutdown has begun.
	Stopped() bool
	// AfterFunc arranges for fn to run after d — on its own goroutine for
	// the real executor, at a virtual-clock instant for the simulation.
	// The contract is exactly-once with bounded lifetime: fn runs after
	// roughly d, or immediately when the scheduler shuts down first (so
	// work waiting on the timer resolves promptly instead of firing into
	// a dead pool), unless Stop cancels it before either. fn must
	// tolerate Submit returning ErrShutdown.
	AfterFunc(d time.Duration, fn func()) Timer
	// TraceExternal records a trace event from outside the worker pool.
	// No-op unless a capture is active (the simulation ignores it).
	TraceExternal(kind EventKind, meta TaskMeta, arg uint64)
}

var _ Scheduler = (*Executor)(nil)

package executor

import (
	"sync"
	"testing"
	"time"
)

// TestFlightWrapAroundAccounting pins the drop-oldest snapshot protocol:
// a ring that recorded more events than its capacity yields the newest
// window, and everything older is counted as dropped — kept + dropped
// equals everything ever recorded.
func TestFlightWrapAroundAccounting(t *testing.T) {
	e := New(1, WithFlightRecorder(8))
	defer e.Shutdown()
	const total = 20
	for i := 0; i < total; i++ {
		e.flight.record(0, EvTaskStart, TaskMeta{ID: uint64(i) + 1}, 0)
	}
	tr, ok := e.FlightSnapshot()
	if !ok {
		t.Fatal("FlightSnapshot not ok")
	}
	if uint64(len(tr.Events))+tr.Dropped != total {
		t.Fatalf("kept %d + dropped %d != recorded %d", len(tr.Events), tr.Dropped, total)
	}
	// The snapshot keeps the full capacity window, and it must be the
	// newest one.
	if len(tr.Events) != 8 {
		t.Fatalf("kept %d events from an 8-slot ring, want 8", len(tr.Events))
	}
	for i, ev := range tr.Events {
		if want := uint64(total - 8 + i + 1); ev.Meta.ID != want {
			t.Fatalf("event %d has ID %d, want %d (newest window)", i, ev.Meta.ID, want)
		}
	}
}

// TestFlightSnapshotSortedAndContinuous runs real work with no capture
// session: the armed recorder alone must hold task events, and the merged
// snapshot must be time-ordered.
func TestFlightSnapshotSortedAndContinuous(t *testing.T) {
	e := New(2, WithFlightRecorder(0))
	defer e.Shutdown()
	if !e.FlightEnabled() {
		t.Fatal("FlightEnabled = false")
	}
	drain(t, e, 200)
	tr, ok := e.FlightSnapshot()
	if !ok || len(tr.Events) == 0 {
		t.Fatalf("snapshot empty (ok=%v) after 200 tasks", ok)
	}
	starts := 0
	var last time.Duration = -1
	for i, ev := range tr.Events {
		if ev.Ts < last {
			t.Fatalf("event %d out of order: %v after %v", i, ev.Ts, last)
		}
		last = ev.Ts
		if ev.Kind == EvTaskStart {
			starts++
		}
	}
	if starts == 0 {
		t.Fatal("no task-start events in the flight window")
	}
	// Snapshot does not stop recording: more work keeps landing.
	drain(t, e, 50)
	tr2, _ := e.FlightSnapshot()
	if uint64(len(tr2.Events))+tr2.Dropped <= uint64(len(tr.Events))+tr.Dropped {
		t.Fatal("recorder stopped accumulating after a snapshot")
	}
}

// TestFlightComposesWithTraceCapture proves the black box and a capture
// session record independently from the shared instrumentation points.
func TestFlightComposesWithTraceCapture(t *testing.T) {
	e := New(1, WithFlightRecorder(0), WithTracing(0))
	defer e.Shutdown()
	if !e.StartTrace() {
		t.Fatal("StartTrace failed")
	}
	drain(t, e, 100)
	cap, ok := e.StopTrace()
	if !ok || len(cap.Events) == 0 {
		t.Fatal("capture session recorded nothing")
	}
	fl, ok := e.FlightSnapshot()
	if !ok || len(fl.Events) == 0 {
		t.Fatal("flight recorder recorded nothing alongside the capture")
	}
	// After the capture stops, the flight recorder keeps going.
	drain(t, e, 20)
	fl2, _ := e.FlightSnapshot()
	if uint64(len(fl2.Events))+fl2.Dropped <= uint64(len(fl.Events))+fl.Dropped {
		t.Fatal("flight recorder stopped with the capture session")
	}
}

// TestFlightSnapshotWhileRecording races snapshots against a live
// workload (run under -race): snapshots never block writers and always
// return a sorted, internally consistent window.
func TestFlightSnapshotWhileRecording(t *testing.T) {
	e := New(2, WithFlightRecorder(64))
	defer e.Shutdown()
	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			drain(t, e, 20)
		}
	}()
	for i := 0; i < 200; i++ {
		tr, ok := e.FlightSnapshot()
		if !ok {
			t.Error("snapshot not ok mid-run")
			break
		}
		var last time.Duration = -1
		for j, ev := range tr.Events {
			if ev.Ts < last {
				t.Errorf("snapshot %d: event %d out of order", i, j)
				break
			}
			last = ev.Ts
		}
	}
	close(stop)
	wg.Wait()
}

func TestFlightDisabledByDefault(t *testing.T) {
	e := New(1)
	defer e.Shutdown()
	if e.FlightEnabled() {
		t.Fatal("FlightEnabled without the option")
	}
	if _, ok := e.FlightSnapshot(); ok {
		t.Fatal("FlightSnapshot ok when disabled")
	}
}

// TestFlightRecordZeroAlloc gates the armed record path: one slot write
// and one atomic publication, no allocation. Runs under the CI alloc-gate
// job.
func TestFlightRecordZeroAlloc(t *testing.T) {
	e := New(1, WithFlightRecorder(256))
	defer e.Shutdown()
	meta := TaskMeta{ID: 7, Name: "gate"}
	if allocs := testing.AllocsPerRun(100, func() {
		e.flight.record(0, EvTaskStart, meta, 0)
	}); allocs != 0 {
		t.Fatalf("flight record allocates %v per op, want 0", allocs)
	}
}

package executor

import (
	"strings"
	"sync"
	"testing"
	"time"
)

// TestStallDetectorObserve unit-tests the pure no-progress detector:
// primes on first sample, fires once per flat episode, re-arms on
// progress or an empty queue.
func TestStallDetectorObserve(t *testing.T) {
	d := newStallDetector(100*time.Millisecond, 0)

	if _, fired := d.observe(0, 0, 5); fired {
		t.Fatal("fired on the priming sample")
	}
	if _, fired := d.observe(50*time.Millisecond, 0, 5); fired {
		t.Fatal("fired before stallAfter elapsed")
	}
	detail, fired := d.observe(150*time.Millisecond, 0, 5)
	if !fired {
		t.Fatal("did not fire after 150ms flat with queued work")
	}
	if !strings.Contains(detail, "5 tasks queued") {
		t.Fatalf("detail %q does not name the queue depth", detail)
	}
	if _, fired := d.observe(300*time.Millisecond, 0, 5); fired {
		t.Fatal("fired twice in one stall episode")
	}

	// Progress re-arms: another flat stretch fires again.
	if _, fired := d.observe(350*time.Millisecond, 1, 5); fired {
		t.Fatal("fired on a progress sample")
	}
	if _, fired := d.observe(500*time.Millisecond, 1, 5); !fired {
		t.Fatal("did not re-fire after progress and a new flat stretch")
	}

	// An empty queue never stalls, no matter how flat the counter.
	d2 := newStallDetector(10*time.Millisecond, 0)
	for i, now := 0, time.Duration(0); i < 10; i, now = i+1, now+20*time.Millisecond {
		if _, fired := d2.observe(now, 7, 0); fired {
			t.Fatal("fired with an empty queue")
		}
	}
}

// flowSample builds a FlowStats row with just the fields the detector
// reads.
func flowSample(name string, class PriorityClass, weight int, drains uint64, backlog int) FlowStats {
	return FlowStats{Name: name, Class: class, Weight: weight, DrainOps: drains, Backlog: backlog}
}

// TestStallDetectorObserveFlows unit-tests the starvation detector: a
// backlogged flow whose own drains are flat while its class rotates past
// gapFactor × Σweights fires; first observations and serviced flows never
// do.
func TestStallDetectorObserveFlows(t *testing.T) {
	d := newStallDetector(0, 4) // bound = 4 × Σweights = 4 × 2 = 8

	base := []FlowStats{
		flowSample("a", Batch, 1, 0, 0),
		flowSample("b", Batch, 1, 0, 3),
	}
	if _, fired := d.observeFlows(base); fired {
		t.Fatal("fired on first observation (marks not yet primed)")
	}

	// Class advances 8 drains, all on flow a; gap == bound, not past it.
	step1 := []FlowStats{
		flowSample("a", Batch, 1, 8, 0),
		flowSample("b", Batch, 1, 0, 3),
	}
	if detail, fired := d.observeFlows(step1); fired {
		t.Fatalf("fired at gap == bound: %s", detail)
	}

	// One more class drain pushes the gap past the bound.
	step2 := []FlowStats{
		flowSample("a", Batch, 1, 9, 0),
		flowSample("b", Batch, 1, 0, 3),
	}
	detail, fired := d.observeFlows(step2)
	if !fired {
		t.Fatal("did not fire with a backlogged flow bypassed past the bound")
	}
	if !strings.Contains(detail, `"b"`) {
		t.Fatalf("detail %q does not name the starved flow", detail)
	}

	// The firing re-marked the flow: the same sample stays quiet until the
	// class rotates another full gap.
	if _, fired := d.observeFlows(step2); fired {
		t.Fatal("fired twice without further class drains")
	}

	// A drain of the starved flow (or an emptied backlog) re-marks it.
	step3 := []FlowStats{
		flowSample("a", Batch, 1, 30, 0),
		flowSample("b", Batch, 1, 1, 3),
	}
	if _, fired := d.observeFlows(step3); fired {
		t.Fatal("fired though the flow was just serviced")
	}

	// A flow appended later is marked at current counters — never a
	// first-observation firing, even with a huge standing class drain count.
	step4 := []FlowStats{
		flowSample("a", Batch, 1, 60, 0),
		flowSample("b", Batch, 1, 1, 3),
		flowSample("c", Batch, 1, 0, 9),
	}
	if detail, fired := d.observeFlows(step4); fired && strings.Contains(detail, `"c"`) {
		t.Fatal("new flow fired on its first observation")
	}
}

func TestWatchdogRequiresMetrics(t *testing.T) {
	e := New(1)
	defer e.Shutdown()
	if _, err := e.StartWatchdog(WatchdogConfig{}); err == nil {
		t.Fatal("StartWatchdog succeeded without WithMetrics")
	}
}

// TestWatchdogFiresOnBlockedWorkers is the end-to-end stall: every worker
// blocked inside a task body with more work queued behind them. The
// watchdog must fire a no-progress report carrying the always-on
// attachments (flow stats, latency summaries, flight dump) and the
// OnStall callback.
func TestWatchdogFiresOnBlockedWorkers(t *testing.T) {
	const workers = 2
	e := New(workers, WithMetrics(), WithLatencyHistograms(), WithFlightRecorder(0))
	defer e.Shutdown()

	reports := make(chan *StallReport, 4)
	wd, err := e.StartWatchdog(WatchdogConfig{
		Interval:   5 * time.Millisecond,
		StallAfter: 30 * time.Millisecond,
		OnStall:    func(r *StallReport) { reports <- r },
	})
	if err != nil {
		t.Fatal(err)
	}

	release := make(chan struct{})
	var started, blocked sync.WaitGroup
	started.Add(workers)
	blocked.Add(workers)
	for i := 0; i < workers; i++ {
		if err := e.SubmitFunc(func(Context) {
			started.Done()
			<-release
			blocked.Done()
		}); err != nil {
			t.Fatal(err)
		}
	}
	started.Wait()
	// Queued work behind the blocked workers: the no-progress signature.
	var drained sync.WaitGroup
	drained.Add(4)
	for i := 0; i < 4; i++ {
		if err := e.SubmitFunc(func(Context) { drained.Done() }); err != nil {
			t.Fatal(err)
		}
	}

	var rep *StallReport
	select {
	case rep = <-reports:
	case <-time.After(5 * time.Second):
		t.Fatal("watchdog did not fire within 5s of a full stall")
	}
	if rep.Reason != watchdogReasonNoProgress {
		t.Fatalf("reason = %q, want %q", rep.Reason, watchdogReasonNoProgress)
	}
	if rep.Queued == 0 {
		t.Fatal("report shows no queued work during the stall")
	}
	if rep.Latency == nil {
		t.Fatal("report missing latency summaries despite WithLatencyHistograms")
	}
	if rep.Flight == nil || len(rep.Flight.Events) == 0 {
		t.Fatal("report missing flight dump despite WithFlightRecorder")
	}
	if wd.Firings() == 0 || wd.LastReport() == nil {
		t.Fatal("Firings/LastReport inconsistent with the delivered report")
	}

	close(release)
	blocked.Wait()
	drained.Wait()
	wd.Stop()
}

// TestWatchdogQuietOnHealthyLoad is the false-positive control: a steady
// stream of fast tasks with an aggressive watchdog must produce zero
// firings.
func TestWatchdogQuietOnHealthyLoad(t *testing.T) {
	e := New(2, WithMetrics())
	defer e.Shutdown()
	wd, err := e.StartWatchdog(WatchdogConfig{
		Interval:   2 * time.Millisecond,
		StallAfter: 20 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(200 * time.Millisecond)
	for time.Now().Before(deadline) {
		drain(t, e, 50)
	}
	wd.Stop()
	if n := wd.Firings(); n != 0 {
		t.Fatalf("watchdog fired %d times on a healthy workload: %+v", n, wd.LastReport())
	}
}

package executor

// Stall watchdog: the third leg of the always-on observability stack
// (histogram.go counts latency, flight.go keeps the black box, this file
// notices that something is wrong). A supervisor goroutine samples the
// scheduler counters on a fixed interval and detects two no-progress
// shapes:
//
//   - Executor stall: work is visibly queued (deques, injection shards or
//     flow backlogs) but the executed counter has been flat for longer
//     than StallAfter. This is the signature of a lost wakeup, a livelock
//     in the steal loop, or every worker blocked inside a task body.
//
//   - Flow starvation: a flow has backlog, its own drain counter is flat,
//     yet its priority class as a whole keeps draining — the class wheel
//     has rotated far past the fairness bound (service gap ≤ Σweights−1
//     drains, flow.go) without servicing it. ServiceGapFactor scales the
//     bound into an alarm threshold.
//
// On detection the watchdog assembles a StallReport — reason, counter
// snapshot, per-flow stats, latency summaries when histograms are on, and
// a flight-recorder dump when the black box is armed — and hands it to
// the configured OnStall sink exactly once per stall episode (it re-arms
// only after progress resumes, so a persistent stall does not spam).
//
// The detector core (stallDetector) is a pure function of observed
// counter samples with no goroutine, clock or executor dependency: the
// same logic is unit-tested directly here and modeled step-for-step in
// internal/sim, where an injected stall bug must be caught across a seed
// sweep and the healthy path must stay silent.

import (
	"errors"
	"fmt"
	"sync/atomic"
	"time"
)

// Watchdog defaults: sample at 10 Hz, alarm after one flat second, and
// let a starved flow miss four full wheel rotations before calling it
// starvation.
const (
	defaultWatchdogInterval   = 100 * time.Millisecond
	defaultStallAfter         = time.Second
	defaultServiceGapFactor   = 4
	watchdogReasonNoProgress  = "no-progress"
	watchdogReasonFlowStarved = "flow-starvation"
)

// WatchdogConfig configures StartWatchdog. The zero value selects the
// defaults above.
type WatchdogConfig struct {
	// Interval is the sampling period (default 100ms).
	Interval time.Duration
	// StallAfter is how long the executed counter may stay flat while
	// work is queued before the watchdog fires (default 1s).
	StallAfter time.Duration
	// ServiceGapFactor scales the per-class fairness bound (Σweights
	// drains per wheel rotation) into the starvation threshold: a
	// backlogged flow whose class drained more than factor×Σweights times
	// without servicing it trips the alarm (default 4).
	ServiceGapFactor int
	// OnStall receives each report on the watchdog goroutine. Optional;
	// Firings/LastReport work without it. The callback must not block for
	// long — sampling pauses while it runs.
	OnStall func(*StallReport)
}

// StallReport is one watchdog firing: the why plus everything the
// always-on layer can attach at that moment.
type StallReport struct {
	// Reason is "no-progress" or "flow-starvation".
	Reason string
	// Detail is a human-readable one-liner (flow name, gap size, flat
	// duration).
	Detail string
	// At is the wall-clock firing instant.
	At time.Time
	// Executed and Queued are the counter readings that tripped the
	// detector: total tasks invoked, and total visibly queued work
	// (deques + injection shards + flow backlogs).
	Executed uint64
	Queued   int
	// Flows is the per-flow counter snapshot (nil when no flows).
	Flows []FlowStats
	// Latency is the histogram snapshot, when WithLatencyHistograms.
	Latency []FlowLatencySummary
	// Flight is the black-box dump, when WithFlightRecorder.
	Flight *Trace
}

// flowMark is the detector's per-flow memory: the flow's own drain count
// and its class's total drain count the last time the flow was serviced
// (or had no backlog).
type flowMark struct {
	drainOps    uint64
	classDrains uint64
}

// stallDetector is the pure detection core. Feed it counter samples with
// observe/observeFlows; it keeps only counter marks and reports at most
// one firing per stall episode. now is any monotonic duration — the real
// watchdog passes time.Since(start), internal/sim passes virtual step
// counts scaled onto a duration.
type stallDetector struct {
	stallAfter time.Duration
	gapFactor  uint64

	primed       bool
	lastExecuted uint64
	lastProgress time.Duration
	stalled      bool

	marks []flowMark
}

func newStallDetector(stallAfter time.Duration, gapFactor int) *stallDetector {
	if stallAfter <= 0 {
		stallAfter = defaultStallAfter
	}
	if gapFactor <= 0 {
		gapFactor = defaultServiceGapFactor
	}
	return &stallDetector{stallAfter: stallAfter, gapFactor: uint64(gapFactor)}
}

// observe feeds one (executed, queued) sample at monotonic instant now.
// It returns a non-empty detail string when the no-progress alarm fires:
// queued work with a flat executed counter for longer than stallAfter.
// The alarm fires once per episode; any progress (or an empty queue)
// re-arms it.
func (d *stallDetector) observe(now time.Duration, executed uint64, queued int) (string, bool) {
	if !d.primed || executed != d.lastExecuted || queued == 0 {
		d.primed = true
		d.lastExecuted = executed
		d.lastProgress = now
		d.stalled = false
		return "", false
	}
	if d.stalled {
		return "", false
	}
	if flat := now - d.lastProgress; flat >= d.stallAfter {
		d.stalled = true
		return fmt.Sprintf("%d tasks queued, executed counter flat at %d for %v",
			queued, executed, flat), true
	}
	return "", false
}

// observeFlows feeds one per-flow counter sample (FlowStats in
// registration order — the slice only ever appends, which is what lets
// the marks index by position). It returns a detail string when some
// backlogged flow's service gap exceeded gapFactor × Σ(class weights)
// drains. A newly seen flow is marked at its current counters, so it can
// never fire on its first observation.
func (d *stallDetector) observeFlows(flows []FlowStats) (string, bool) {
	if len(flows) == 0 {
		return "", false
	}
	var classDrains, classWeights [NumPriorityClasses]uint64
	for i := range flows {
		f := &flows[i]
		if f.Class < NumPriorityClasses {
			classDrains[f.Class] += f.DrainOps
			classWeights[f.Class] += uint64(f.Weight)
		}
	}
	var fired string
	for i := range flows {
		f := &flows[i]
		if f.Class >= NumPriorityClasses {
			continue
		}
		cd := classDrains[f.Class]
		if i >= len(d.marks) {
			d.marks = append(d.marks, flowMark{drainOps: f.DrainOps, classDrains: cd})
			continue
		}
		m := &d.marks[i]
		if f.Backlog == 0 || f.DrainOps != m.drainOps {
			m.drainOps = f.DrainOps
			m.classDrains = cd
			continue
		}
		gap := cd - m.classDrains
		bound := d.gapFactor * classWeights[f.Class]
		if gap > bound && fired == "" {
			fired = fmt.Sprintf("flow %q (class %s) backlogged with %d tasks, unserviced across %d class drains (bound %d)",
				f.Name, f.Class, f.Backlog, gap, bound)
			// Re-arm: fire again only after another full gap.
			m.classDrains = cd
		}
	}
	return fired, fired != ""
}

// Watchdog is a running stall supervisor; see StartWatchdog.
type Watchdog struct {
	e    *Executor
	cfg  WatchdogConfig
	stop chan struct{}
	done chan struct{}

	firings atomic.Uint64
	last    atomic.Pointer[StallReport]
}

// StartWatchdog starts the stall supervisor goroutine. It requires
// WithMetrics (the executed counter is the progress signal); latency and
// flight-recorder attachments ride along automatically when their options
// are built in. Stop the returned Watchdog before Shutdown.
func (e *Executor) StartWatchdog(cfg WatchdogConfig) (*Watchdog, error) {
	if e.metrics == nil {
		return nil, errors.New("executor: watchdog requires WithMetrics")
	}
	if cfg.Interval <= 0 {
		cfg.Interval = defaultWatchdogInterval
	}
	w := &Watchdog{
		e:    e,
		cfg:  cfg,
		stop: make(chan struct{}),
		done: make(chan struct{}),
	}
	go w.run()
	return w, nil
}

// Firings returns how many stall reports the watchdog has produced.
func (w *Watchdog) Firings() uint64 { return w.firings.Load() }

// LastReport returns the most recent stall report, or nil.
func (w *Watchdog) LastReport() *StallReport { return w.last.Load() }

// Stop terminates the supervisor goroutine and waits for it to exit.
// Idempotent is not required: call exactly once.
func (w *Watchdog) Stop() {
	close(w.stop)
	<-w.done
}

func (w *Watchdog) run() {
	defer close(w.done)
	det := newStallDetector(w.cfg.StallAfter, w.cfg.ServiceGapFactor)
	start := time.Now()
	tick := time.NewTicker(w.cfg.Interval)
	defer tick.Stop()
	for {
		select {
		case <-w.stop:
			return
		case <-tick.C:
		}
		snap, ok := w.e.MetricsSnapshot()
		if !ok {
			return
		}
		executed, queued := progressSample(&snap)
		now := time.Since(start)
		if detail, fired := det.observe(now, executed, queued); fired {
			w.fire(watchdogReasonNoProgress, detail, executed, queued, &snap)
		}
		if detail, fired := det.observeFlows(snap.Flows); fired {
			w.fire(watchdogReasonFlowStarved, detail, executed, queued, &snap)
		}
	}
}

// progressSample reduces a metrics snapshot to the two detector inputs:
// total executions and total visibly queued work.
func progressSample(s *Snapshot) (executed uint64, queued int) {
	for i := range s.Workers {
		executed += s.Workers[i].Executed
		queued += s.Workers[i].QueueDepth
	}
	queued += s.InjectionDepth
	for i := range s.Flows {
		queued += s.Flows[i].Backlog
	}
	return executed, queued
}

func (w *Watchdog) fire(reason, detail string, executed uint64, queued int, snap *Snapshot) {
	r := &StallReport{
		Reason:   reason,
		Detail:   detail,
		At:       time.Now(),
		Executed: executed,
		Queued:   queued,
		Flows:    snap.Flows,
	}
	if lat, ok := w.e.LatencyStats(); ok {
		r.Latency = lat
	}
	if tr, ok := w.e.FlightSnapshot(); ok {
		r.Flight = &tr
	}
	w.last.Store(r)
	w.firings.Add(1)
	if w.cfg.OnStall != nil {
		w.cfg.OnStall(r)
	}
}

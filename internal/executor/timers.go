package executor

// Armed-timer registry behind Scheduler.AfterFunc. Task.Retry backoff
// (internal/core) arms one wall-clock timer per waiting retry; before
// this registry existed those timers were bare time.AfterFunc calls that
// survived Shutdown and fired into the dead pool up to a full backoff
// (30s) later. Now every armed timer is tracked, and Shutdown stops the
// wall-clock side and runs the callbacks immediately: the callback's
// Submit sees ErrShutdown and the waiting topology resolves promptly
// instead of hanging on an execution that can never run.

import (
	"sync"
	"sync/atomic"
	"time"
)

// afterTimer is one armed AfterFunc callback. Exactly one of the timer
// firing, Shutdown, or Stop claims it; the others become no-ops.
type afterTimer struct {
	e     *Executor
	t     *time.Timer
	fn    func()
	fired atomic.Bool
}

// claim wins the right to resolve the timer (fire or cancel).
func (at *afterTimer) claim() bool { return at.fired.CompareAndSwap(false, true) }

// Stop implements Timer.
func (at *afterTimer) Stop() bool {
	if !at.claim() {
		return false
	}
	if at.t != nil {
		at.t.Stop()
	}
	at.e.removeTimer(at)
	return true
}

// timerRegistry tracks the executor's armed timers. A plain mutex is
// fine: timers arm once per retry wait — nowhere near the per-task path.
type timerRegistry struct {
	mu    sync.Mutex
	armed map[*afterTimer]struct{}
}

// AfterFunc implements Scheduler: run fn after d on its own goroutine,
// or immediately if the executor has already shut down. The returned
// Timer cancels it. Armed timers that Shutdown finds are stopped and
// their callbacks run during Shutdown — exactly once either way.
func (e *Executor) AfterFunc(d time.Duration, fn func()) Timer {
	at := &afterTimer{e: e, fn: fn}
	e.timers.mu.Lock()
	if e.stop.Load() {
		// The pool is already dead; run fn now (marked claimed) so
		// whatever waits on this timer resolves instead of leaking.
		at.fired.Store(true)
		e.timers.mu.Unlock()
		fn()
		return at
	}
	if e.timers.armed == nil {
		e.timers.armed = make(map[*afterTimer]struct{})
	}
	// The wall-clock timer is created while the registry lock is held so
	// Shutdown can never observe a registered entry without its t; the
	// callback itself locks only after claiming, so it just blocks until
	// registration finishes if it fires immediately.
	at.t = time.AfterFunc(d, func() {
		if !at.claim() {
			return // Stop or Shutdown got there first
		}
		at.e.removeTimer(at)
		at.fn()
	})
	e.timers.armed[at] = struct{}{}
	e.timers.mu.Unlock()
	return at
}

// removeTimer drops a resolved timer from the registry.
func (e *Executor) removeTimer(at *afterTimer) {
	e.timers.mu.Lock()
	delete(e.timers.armed, at)
	e.timers.mu.Unlock()
}

// ArmedTimers reports how many AfterFunc callbacks are currently armed —
// an observability gauge used by shutdown tests and debugging.
func (e *Executor) ArmedTimers() int {
	e.timers.mu.Lock()
	defer e.timers.mu.Unlock()
	return len(e.timers.armed)
}

// fireArmedTimers resolves every armed timer during Shutdown: the
// wall-clock side is stopped and the callback runs now, exactly once
// (the claim CAS arbitrates against a concurrently firing timer). Called
// with e.stop already true, so a callback's Submit sees ErrShutdown.
func (e *Executor) fireArmedTimers() {
	e.timers.mu.Lock()
	armed := e.timers.armed
	e.timers.armed = nil
	e.timers.mu.Unlock()
	for at := range armed {
		at.t.Stop()
		if at.claim() {
			at.fn()
		}
	}
}

package executor

// Per-flow latency histograms: the "how long" leg of the observability
// stack. metrics.go counts events, trace.go timestamps them; this file
// aggregates per-task latency distributions continuously, so a serving
// tier can ask "what is interactive p99 queue-wait right now?" without
// arming a capture — the TFProf idea (continuous profiling, not capture
// sessions) applied to latency.
//
// Three timings are recorded per task execution, all in nanoseconds:
//
//	queue-wait  ready (submitted) → body start
//	execution   body start → body end
//	end-to-end  ready → body end (the sum, recorded as its own series)
//
// internal/core captures the timestamps on the node lifecycle and feeds
// them through the LatencySink seam below; the executor aggregates them
// per Flow (plus one default sink for topologies bound to no flow) and,
// at read time, per PriorityClass.
//
// Design rules, mirroring metrics.go and trace.go:
//
//   - Provably zero cost when disabled. The histogram state exists only
//     when the executor was built WithLatencyHistograms; internal/core
//     fetches its sink once per topology (a cold type assertion) and the
//     per-task guard is one nil-interface check.
//
//   - Lock-free and allocation-free on the record path. Each histogram
//     keeps one padded shard per worker, written only by that worker
//     (owner-written): a record is three atomic adds into the owner's
//     shard — bucket count, sum, count — with no CAS loop, no mutex and
//     no allocation. Shards are merged at read time.
//
//   - Fixed memory. Buckets are log-linear (below): 64 buckets cover
//     [0, ~550s] with ≤ 50% relative width, so a histogram is a flat
//     64-counter array per shard regardless of run length.
//
// Bucket scheme (log-linear, base-2 octaves with 2 linear sub-buckets):
// bucket 0 is [0, 256ns); for v >= 256ns the octave is floor(log2 v)-8
// and the second-highest bit of v selects the sub-bucket, so bucket
// boundaries run 256, 384, 512, 768, 1024, ... — each octave split in
// two. The last bucket (63) is the +Inf overflow. Quantiles interpolate
// linearly inside a bucket, which bounds their relative error by the
// sub-bucket width (50%), in practice ~25%.

import (
	"math/bits"
	"sync/atomic"
	"time"
	"unsafe"
)

// numLatencyBuckets is the fixed bucket count of every latency histogram.
const numLatencyBuckets = 64

// latencyBucketOf maps a non-negative nanosecond value to its bucket.
func latencyBucketOf(v int64) int {
	if v < 256 {
		return 0
	}
	exp := bits.Len64(uint64(v)) - 1 // >= 8
	idx := 1 + (exp-8)*2 + int((uint64(v)>>(exp-1))&1)
	if idx >= numLatencyBuckets {
		idx = numLatencyBuckets - 1
	}
	return idx
}

// latencyBounds[i] is the exclusive upper bound (ns) of bucket i for
// i < numLatencyBuckets-1; the last bucket is unbounded. Bounds double
// every two buckets: 256, 384, 512, 768, 1024, ...
var latencyBounds = func() [numLatencyBuckets - 1]int64 {
	var b [numLatencyBuckets - 1]int64
	b[0] = 256
	for i := 1; i < len(b); i++ {
		o := (i - 1) / 2
		if (i-1)%2 == 0 {
			b[i] = 384 << o
		} else {
			b[i] = 512 << o
		}
	}
	return b
}()

// LatencyBucketBounds returns the finite bucket upper bounds in order;
// the last histogram bucket (index NumLatencyBuckets-1) is the +Inf
// overflow and has no entry here. Exporters use it to label histogram
// series.
func LatencyBucketBounds() []time.Duration {
	out := make([]time.Duration, len(latencyBounds))
	for i, b := range latencyBounds {
		out[i] = time.Duration(b)
	}
	return out
}

// latHistShard is one worker's private histogram storage.
type latHistShard struct {
	counts [numLatencyBuckets]atomic.Uint64
	sum    atomic.Uint64 // total nanoseconds
	count  atomic.Uint64
}

// paddedLatHistShard aligns shards to metricsPad so two workers never
// share a cache line (same idiom as the metrics counter blocks).
type paddedLatHistShard struct {
	latHistShard
	_ [metricsPad - unsafe.Sizeof(latHistShard{})%metricsPad]byte
}

// latencyHist is one timing dimension's histogram: per-worker shards,
// owner-written, merged at read time.
type latencyHist struct {
	shards []paddedLatHistShard
}

func newLatencyHist(workers int) latencyHist {
	return latencyHist{shards: make([]paddedLatHistShard, workers)}
}

// record adds one observation to the worker's shard. The caller has
// bounds-checked worker and clamped v to >= 0.
func (h *latencyHist) record(worker int, v int64) {
	s := &h.shards[worker].latHistShard
	s.counts[latencyBucketOf(v)].Add(1)
	s.sum.Add(uint64(v))
	s.count.Add(1)
}

// snapshot merges the shards. Counters are monotone, so a concurrent
// record skews the snapshot by at most the in-flight observations —
// never tears it.
func (h *latencyHist) snapshot() LatencySnapshot {
	var out LatencySnapshot
	for i := range h.shards {
		s := &h.shards[i].latHistShard
		for b := range s.counts {
			out.Counts[b] += s.counts[b].Load()
		}
		out.Sum += s.sum.Load()
		out.Count += s.count.Load()
	}
	return out
}

// LatencySnapshot is one merged histogram at a snapshot instant.
type LatencySnapshot struct {
	// Counts[i] is the number of observations in bucket i (see
	// LatencyBucketBounds; the last bucket is the +Inf overflow).
	Counts [numLatencyBuckets]uint64
	// Sum is the total of all observations in nanoseconds.
	Sum uint64
	// Count is the number of observations.
	Count uint64
}

// Merge adds o's observations into s.
func (s *LatencySnapshot) Merge(o *LatencySnapshot) {
	for i := range s.Counts {
		s.Counts[i] += o.Counts[i]
	}
	s.Sum += o.Sum
	s.Count += o.Count
}

// Mean returns the arithmetic mean, or 0 when empty.
func (s *LatencySnapshot) Mean() time.Duration {
	if s.Count == 0 {
		return 0
	}
	return time.Duration(s.Sum / s.Count)
}

// Quantile returns the q-quantile (q in [0, 1]) with linear interpolation
// inside the landing bucket. The overflow bucket extrapolates one octave
// past the last finite bound. Returns 0 when the histogram is empty.
func (s *LatencySnapshot) Quantile(q float64) time.Duration {
	if s.Count == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := q * float64(s.Count)
	var cum uint64
	for i, c := range s.Counts {
		if c == 0 {
			continue
		}
		if float64(cum)+float64(c) >= rank {
			var lo, hi int64
			if i > 0 {
				lo = latencyBounds[i-1]
			}
			if i < len(latencyBounds) {
				hi = latencyBounds[i]
			} else {
				hi = 2 * latencyBounds[len(latencyBounds)-1]
			}
			frac := (rank - float64(cum)) / float64(c)
			return time.Duration(float64(lo) + frac*float64(hi-lo))
		}
		cum += c
	}
	return time.Duration(latencyBounds[len(latencyBounds)-1])
}

// LatencySink records the latency triple of one finished task execution.
// Implemented by the executor's per-flow histogram sets; internal/core
// fetches one per topology through LatencyProvider and calls it from the
// worker executing the task. worker must be the executing worker's index
// (Context.WorkerID); negative timings are clamped to zero. End-to-end is
// derived as queueWaitNs+execNs, so one call feeds all three series.
type LatencySink interface {
	RecordLatency(worker int, queueWaitNs, execNs int64)
}

// LatencyProvider is implemented by schedulers that aggregate per-task
// latency histograms. LatencySink returns the sink for topologies bound
// to f (nil selects the shared default sink for unbound topologies); it
// returns a nil interface when histogram collection is disabled or f is
// foreign, and callers must treat nil as "do not record".
type LatencyProvider interface {
	LatencySink(f Flow) LatencySink
}

// flowLatency is one sink: the three histograms of one flow (or of the
// default, unbound set).
type flowLatency struct {
	queueWait latencyHist
	exec      latencyHist
	endToEnd  latencyHist
}

func newFlowLatency(workers int) *flowLatency {
	return &flowLatency{
		queueWait: newLatencyHist(workers),
		exec:      newLatencyHist(workers),
		endToEnd:  newLatencyHist(workers),
	}
}

// RecordLatency implements LatencySink: three shard-local records, no
// allocation, no CAS.
func (fl *flowLatency) RecordLatency(worker int, queueWaitNs, execNs int64) {
	if worker < 0 || worker >= len(fl.queueWait.shards) {
		worker = 0
	}
	if queueWaitNs < 0 {
		queueWaitNs = 0
	}
	if execNs < 0 {
		execNs = 0
	}
	fl.queueWait.record(worker, queueWaitNs)
	fl.exec.record(worker, execNs)
	fl.endToEnd.record(worker, queueWaitNs+execNs)
}

func (fl *flowLatency) stats() *FlowLatencyStats {
	return &FlowLatencyStats{
		QueueWait: fl.queueWait.snapshot(),
		Exec:      fl.exec.snapshot(),
		EndToEnd:  fl.endToEnd.snapshot(),
	}
}

// FlowLatencyStats is the merged latency triple of one flow (or class, or
// the unbound default) at a snapshot instant.
type FlowLatencyStats struct {
	QueueWait LatencySnapshot
	Exec      LatencySnapshot
	EndToEnd  LatencySnapshot
}

// Merge adds o into s (used for per-class aggregation).
func (s *FlowLatencyStats) Merge(o *FlowLatencyStats) {
	s.QueueWait.Merge(&o.QueueWait)
	s.Exec.Merge(&o.Exec)
	s.EndToEnd.Merge(&o.EndToEnd)
}

// FlowLatencySummary is one row of Executor.LatencyStats: the latency
// triple of one flow, or of the unbound default sink.
type FlowLatencySummary struct {
	// Flow is the flow's name; "" for the unbound default sink.
	Flow string
	// Class is the flow's priority class (meaningless when Unbound).
	Class PriorityClass
	// Unbound marks the default sink shared by topologies bound to no
	// flow.
	Unbound bool

	FlowLatencyStats
}

// latencyState exists iff the executor was built WithLatencyHistograms.
type latencyState struct {
	workers int
	// def is the sink of topologies bound to no flow.
	def *flowLatency
}

// WithLatencyHistograms enables continuous per-flow latency histograms:
// every flow registered with NewFlow gets its own queue-wait / execution /
// end-to-end histogram set, plus one shared set for topologies bound to
// no flow. Record cost is three shard-local atomic adds per task plus two
// clock reads in internal/core; executors built without this option pay
// one nil check per topology and nothing per task.
func WithLatencyHistograms() Option {
	return func(e *Executor) { e.latencyOn = true }
}

// LatencyEnabled reports whether the executor was built
// WithLatencyHistograms.
func (e *Executor) LatencyEnabled() bool { return e.lat != nil }

// LatencySink implements LatencyProvider: the recording sink for
// topologies bound to f (nil f selects the unbound default sink). Returns
// nil when histograms are disabled.
func (e *Executor) LatencySink(f Flow) LatencySink {
	ls := e.lat
	if ls == nil {
		return nil
	}
	if f == nil {
		return ls.def
	}
	if ef, ok := f.(*execFlow); ok && ef.lat != nil {
		return ef.lat
	}
	return nil
}

// LatencyStats snapshots every latency histogram: the unbound default
// sink first (Flow "", Unbound true), then each registered flow in
// registration order. ok is false when the executor was built without
// WithLatencyHistograms.
func (e *Executor) LatencyStats() ([]FlowLatencySummary, bool) {
	ls := e.lat
	if ls == nil {
		return nil, false
	}
	out := []FlowLatencySummary{{Unbound: true, FlowLatencyStats: *ls.def.stats()}}
	if mt := e.mt.Load(); mt != nil {
		mt.mu.Lock()
		all := append([]*execFlow(nil), mt.all...)
		mt.mu.Unlock()
		for _, f := range all {
			if f.lat == nil {
				continue
			}
			out = append(out, FlowLatencySummary{
				Flow:             f.name,
				Class:            f.cfg.Class,
				FlowLatencyStats: *f.lat.stats(),
			})
		}
	}
	return out, true
}

// ClassLatency merges the latency histograms of every flow in class c.
// ok is false when histograms are disabled; a class with no flows merges
// to an empty (zero-count) result.
func (e *Executor) ClassLatency(c PriorityClass) (FlowLatencyStats, bool) {
	if e.lat == nil {
		return FlowLatencyStats{}, false
	}
	var agg FlowLatencyStats
	mt := e.mt.Load()
	if mt == nil {
		return agg, true
	}
	mt.mu.Lock()
	flows := append([]*execFlow(nil), mt.classFlows[c]...)
	mt.mu.Unlock()
	for _, f := range flows {
		if f.lat == nil {
			continue
		}
		st := f.lat.stats()
		agg.Merge(st)
	}
	return agg, true
}

package executor

import (
	"errors"
	"sync"
	"sync/atomic"
	"testing"
)

// TestNormalizeFlowConfig pins the clamping rules both the executor and
// the simulation model rely on for identical wheel construction.
func TestNormalizeFlowConfig(t *testing.T) {
	cases := []struct {
		in, want FlowConfig
	}{
		{FlowConfig{}, FlowConfig{Class: Interactive, Weight: 1}},
		{FlowConfig{Class: PriorityClass(99), Weight: -5}, FlowConfig{Class: Background, Weight: 1}},
		{FlowConfig{Class: Batch, Weight: 1000}, FlowConfig{Class: Batch, Weight: maxFlowWeight}},
		{FlowConfig{MaxInFlight: -3, MaxBacklog: -1}, FlowConfig{Class: Interactive, Weight: 1}},
		{FlowConfig{Class: Background, Weight: 2, MaxInFlight: 7, MaxBacklog: 9},
			FlowConfig{Class: Background, Weight: 2, MaxInFlight: 7, MaxBacklog: 9}},
	}
	for i, c := range cases {
		if got := NormalizeFlowConfig(c.in); got != c.want {
			t.Errorf("case %d: NormalizeFlowConfig(%+v) = %+v, want %+v", i, c.in, got, c.want)
		}
	}
}

// TestFlowPriorityDrainOrder pins the strict class order deterministically:
// with the single worker blocked, a Background backlog queued before an
// Interactive one must still be drained after it.
func TestFlowPriorityDrainOrder(t *testing.T) {
	e := New(1)
	defer e.Shutdown()
	bg := e.NewFlow("bg", FlowConfig{Class: Background})
	ia := e.NewFlow("ia", FlowConfig{Class: Interactive})

	started := make(chan struct{})
	release := make(chan struct{})
	e.SubmitFunc(func(Context) { close(started); <-release })
	<-started

	const perFlow = 20
	var mu sync.Mutex
	var order []string
	done := make(chan struct{})
	var left int32 = 2 * perFlow
	record := func(class string) *Runnable {
		return NewTask(func(Context) {
			mu.Lock()
			order = append(order, class)
			mu.Unlock()
			if atomic.AddInt32(&left, -1) == 0 {
				close(done)
			}
		})
	}
	// Background enqueued first: arrival order must not beat class order.
	for i := 0; i < perFlow; i++ {
		if err := bg.Submit(record("bg")); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < perFlow; i++ {
		if err := ia.Submit(record("ia")); err != nil {
			t.Fatal(err)
		}
	}
	close(release)
	<-done

	for i, c := range order[:perFlow] {
		if c != "ia" {
			t.Fatalf("position %d drained %q before the interactive backlog finished\norder: %v", i, c, order)
		}
	}
	if st := ia.Stats(); st.DrainedTasks != perFlow {
		t.Fatalf("interactive flow drained %d tasks, want %d", st.DrainedTasks, perFlow)
	}
}

// TestFlowAdmissionErrors pins the refusal order and error identities:
// the backlog watermark is checked before the quota (a shed charges
// nothing and must not count as a quota rejection), and each refusal
// increments exactly its own counter.
func TestFlowAdmissionErrors(t *testing.T) {
	e := New(1)
	defer e.Shutdown()

	started := make(chan struct{})
	release := make(chan struct{})
	e.SubmitFunc(func(Context) { close(started); <-release })
	<-started

	f := e.NewFlow("f", FlowConfig{MaxInFlight: 2, MaxBacklog: 1})
	if err := f.Admit(3); !errors.Is(err, ErrAdmission) {
		t.Fatalf("Admit over quota = %v, want ErrAdmission", err)
	}
	if err := f.Admit(2); err != nil {
		t.Fatalf("Admit within quota = %v", err)
	}
	var ran atomic.Int64
	if err := f.Submit(NewTask(func(Context) { ran.Add(1); f.Release(1) })); err != nil {
		t.Fatal(err)
	}
	// Backlog now sits at the watermark: even a request that would also
	// bust the quota must shed, not reject — shed-before-quota means
	// there is nothing to undo.
	if err := f.Admit(5); !errors.Is(err, ErrOverloaded) {
		t.Fatalf("Admit over watermark = %v, want ErrOverloaded", err)
	}
	st := f.Stats()
	if st.AdmissionRejects != 3 || st.OverloadSheds != 5 {
		t.Fatalf("rejects/sheds = %d/%d, want 3/5", st.AdmissionRejects, st.OverloadSheds)
	}
	if st.InFlight != 2 || st.AdmittedTasks != 2 {
		t.Fatalf("in-flight/admitted = %d/%d, want 2/2", st.InFlight, st.AdmittedTasks)
	}

	close(release)
	waitCounter(t, &ran, 1)
	f.Release(1)
	st = f.Stats()
	if st.InFlight != 0 || st.ReleasedTasks != 2 {
		t.Fatalf("after release: in-flight %d released %d, want 0/2", st.InFlight, st.ReleasedTasks)
	}
}

// TestFlowQuotaConcurrentAdmit storms one quota from many goroutines and
// asserts the CAS loop never over-admits: the live gauge never exceeds
// the quota, the peak watermark agrees, and every reservation is
// returned.
func TestFlowQuotaConcurrentAdmit(t *testing.T) {
	e := New(2)
	defer e.Shutdown()
	const quota = 8
	f := e.NewFlow("q", FlowConfig{MaxInFlight: quota})

	// Phase 1: 16 goroutines race exactly one Admit from a barrier and
	// hold the reservation — at most quota can win, so at least
	// 16−quota rejections are guaranteed, not probabilistic.
	var admitted, rejected atomic.Int64
	var start, held sync.WaitGroup
	finish := make(chan struct{})
	start.Add(1)
	for g := 0; g < 16; g++ {
		held.Add(1)
		go func() {
			start.Wait()
			switch err := f.Admit(1); {
			case err == nil:
				admitted.Add(1)
				held.Done()
				<-finish
				f.Release(1)
			case errors.Is(err, ErrAdmission):
				rejected.Add(1)
				held.Done()
			default:
				t.Errorf("Admit: %v", err)
				held.Done()
			}
		}()
	}
	start.Done()
	held.Wait()
	if a := admitted.Load(); a > quota {
		t.Fatalf("%d concurrent admissions held against quota %d", a, quota)
	}
	if r := rejected.Load(); r < 16-quota {
		t.Fatalf("%d rejections, want at least %d", rejected.Load(), 16-quota)
	}
	close(finish)

	// Phase 2: a churning storm — the live gauge must never exceed the
	// quota and every reservation must come back.
	var live atomic.Int64
	var wg sync.WaitGroup
	for g := 0; g < 16; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 2000; i++ {
				if err := f.Admit(1); err != nil {
					if !errors.Is(err, ErrAdmission) {
						t.Errorf("Admit: %v", err)
						return
					}
					continue
				}
				if cur := live.Add(1); cur > quota {
					t.Errorf("live admissions %d exceed quota %d", cur, quota)
				}
				live.Add(-1)
				f.Release(1)
			}
		}()
	}
	wg.Wait()

	st := f.Stats()
	if st.InFlight != 0 {
		t.Fatalf("in-flight %d after storm, want 0", st.InFlight)
	}
	if st.AdmittedTasks != st.ReleasedTasks {
		t.Fatalf("admitted %d != released %d", st.AdmittedTasks, st.ReleasedTasks)
	}
	if st.PeakInFlight > quota {
		t.Fatalf("peak in-flight %d exceeds quota %d", st.PeakInFlight, quota)
	}
	if st.AdmissionRejects == 0 {
		t.Fatal("storm produced no quota rejections — quota never under pressure")
	}
}

// TestFlowAdmitReleaseZeroAlloc: the admission hot path is pure atomics.
func TestFlowAdmitReleaseZeroAlloc(t *testing.T) {
	e := New(1)
	defer e.Shutdown()
	f := e.NewFlow("z", FlowConfig{MaxInFlight: 4})
	allocs := testing.AllocsPerRun(1000, func() {
		if err := f.Admit(2); err != nil {
			t.Fatal(err)
		}
		f.Release(2)
	})
	if allocs != 0 {
		t.Fatalf("Admit/Release allocates %v objects/op, want 0", allocs)
	}
}

// TestFlowSubmitAllocBound: a steady-state submit→drain round trip
// through a flow queue reuses the ring and the intrusive reference —
// no per-task allocation once warm (metrics and tracing disabled).
func TestFlowSubmitAllocBound(t *testing.T) {
	e := New(1)
	defer e.Shutdown()
	f := e.NewFlow("s", FlowConfig{Class: Batch})
	var n atomic.Int64
	task := newIntrusive(func(Context, *intrusiveTask) { n.Add(1) })
	var want int64
	run := func() {
		want++
		if err := f.Submit(&task.self); err != nil {
			t.Fatal(err)
		}
		waitCounter(t, &n, want)
	}
	run() // warm: ring growth, worker park state
	run()
	allocs := testing.AllocsPerRun(100, run)
	if allocs > 0.5 {
		t.Fatalf("flow submit round trip allocates %v objects/op, want 0", allocs)
	}
}

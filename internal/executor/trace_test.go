package executor

import (
	"strings"
	"sync/atomic"
	"testing"
	"time"
)

// describedTask is a Runnable that carries identity, like graph nodes do.
type describedTask struct {
	rbox Runnable
	meta TaskMeta
	fn   func()
}

func newDescribedTask(meta TaskMeta, fn func()) *describedTask {
	d := &describedTask{meta: meta, fn: fn}
	d.rbox = d
	return d
}

func (d *describedTask) Run(Context)        { d.fn() }
func (d *describedTask) Describe() TaskMeta { return d.meta }

func TestTraceDisabledWithoutOption(t *testing.T) {
	e := New(2)
	defer e.Shutdown()
	if e.TracingEnabled() {
		t.Fatal("TracingEnabled without WithTracing")
	}
	if e.StartTrace() {
		t.Fatal("StartTrace succeeded without WithTracing")
	}
	if _, ok := e.StopTrace(); ok {
		t.Fatal("StopTrace succeeded without WithTracing")
	}
	// Instrumentation points must be inert.
	var n atomic.Int64
	e.SubmitFunc(func(Context) { n.Add(1) })
	waitCounter(t, &n, 1)
}

func TestTraceCaptureLifecycle(t *testing.T) {
	e := New(2, WithTracing(1024))
	defer e.Shutdown()
	if !e.TracingEnabled() {
		t.Fatal("TracingEnabled false despite WithTracing")
	}
	if e.TraceActive() {
		t.Fatal("capture active before StartTrace")
	}
	if !e.StartTrace() {
		t.Fatal("StartTrace failed")
	}
	if e.StartTrace() {
		t.Fatal("second StartTrace succeeded while active")
	}
	if !e.TraceActive() {
		t.Fatal("capture not active after StartTrace")
	}

	var n atomic.Int64
	meta := TaskMeta{Flow: "flow", Name: "alpha", ID: 7, Idx: 3, Gen: 1}
	d := newDescribedTask(meta, func() { n.Add(1) })
	e.Submit(&d.rbox)
	for i := 0; i < 9; i++ {
		e.SubmitFunc(func(Context) { n.Add(1) })
	}
	waitCounter(t, &n, 10)

	tr, ok := e.StopTrace()
	if !ok {
		t.Fatal("StopTrace failed")
	}
	if e.TraceActive() {
		t.Fatal("capture still active after StopTrace")
	}
	if tr.Workers != 2 {
		t.Fatalf("Workers = %d, want 2", tr.Workers)
	}
	if tr.Dropped != 0 {
		t.Fatalf("Dropped = %d, want 0", tr.Dropped)
	}

	var starts, ends, pushes int
	var sawMeta bool
	for i, ev := range tr.Events {
		if i > 0 && ev.Ts < tr.Events[i-1].Ts {
			t.Fatal("events not time-ordered")
		}
		switch ev.Kind {
		case EvTaskStart:
			starts++
			if ev.Meta == meta {
				sawMeta = true
			}
		case EvTaskEnd:
			ends++
		case EvInjectPush:
			pushes++
			if ev.Worker != ExternalWorker {
				t.Fatalf("EvInjectPush attributed to worker %d", ev.Worker)
			}
		}
	}
	if starts != 10 || ends != 10 {
		t.Fatalf("starts/ends = %d/%d, want 10/10", starts, ends)
	}
	if pushes != 10 {
		t.Fatalf("inject pushes = %d, want 10", pushes)
	}
	if !sawMeta {
		t.Fatal("described task's TaskMeta not carried into its span events")
	}
}

func TestTraceRingDropNewest(t *testing.T) {
	// Capacity 1 per ring: almost every event beyond the first per ring is
	// dropped, and the drops are counted rather than overwriting.
	e := New(2, WithTracing(1))
	defer e.Shutdown()
	if !e.StartTrace() {
		t.Fatal("StartTrace failed")
	}
	var n atomic.Int64
	for i := 0; i < 100; i++ {
		e.SubmitFunc(func(Context) { n.Add(1) })
	}
	waitCounter(t, &n, 100)
	tr, ok := e.StopTrace()
	if !ok {
		t.Fatal("StopTrace failed")
	}
	if len(tr.Events) > 3 { // one slot per worker ring + one external
		t.Fatalf("%d events recorded with capacity-1 rings", len(tr.Events))
	}
	if tr.Dropped == 0 {
		t.Fatal("no drops counted despite overflowing capacity-1 rings")
	}
}

func TestTraceSchedulerEvents(t *testing.T) {
	// Submitting from outside onto an idle pool structurally guarantees
	// inject-push, precise-wake, inject-drain and unpark events.
	e := New(2, WithTracing(4096))
	defer e.Shutdown()

	// Let the workers park first.
	time.Sleep(20 * time.Millisecond)
	if !e.StartTrace() {
		t.Fatal("StartTrace failed")
	}
	var n atomic.Int64
	for i := 0; i < 20; i++ {
		e.SubmitFunc(func(Context) { n.Add(1) })
	}
	waitCounter(t, &n, 20)
	tr, _ := e.StopTrace()

	kinds := map[EventKind]int{}
	for _, ev := range tr.Events {
		kinds[ev.Kind]++
	}
	for _, want := range []EventKind{EvInjectPush, EvInjectDrain, EvWakePrecise, EvUnpark} {
		if kinds[want] == 0 {
			t.Errorf("no %v events recorded (kinds: %v)", want, kinds)
		}
	}
}

func TestEventKindStrings(t *testing.T) {
	for k := EventKind(0); k < numEventKinds; k++ {
		s := k.String()
		if s == "" || s == "unknown" {
			t.Fatalf("EventKind %d has no name", k)
		}
		if strings.ToLower(s) != s {
			t.Fatalf("EventKind name %q not lowercase", s)
		}
	}
	if numEventKinds.String() != "unknown" {
		t.Fatal("out-of-range EventKind should stringify as unknown")
	}
}

// panickingObserver blows up in its hooks; the executor must contain it.
type panickingObserver struct {
	starts atomic.Int64
	ends   atomic.Int64
}

func (o *panickingObserver) OnTaskStart(int, TaskMeta) {
	o.starts.Add(1)
	panic("observer start boom")
}

func (o *panickingObserver) OnTaskEnd(int, TaskMeta) {
	o.ends.Add(1)
	panic("observer end boom")
}

func TestObserverPanicContained(t *testing.T) {
	obs := &panickingObserver{}
	e := New(2, WithObserver(obs))
	defer e.Shutdown()

	var n atomic.Int64
	for i := 0; i < 10; i++ {
		e.SubmitFunc(func(Context) { n.Add(1) })
	}
	// Every task still runs: the panics must not kill workers or skip
	// task bodies.
	waitCounter(t, &n, 10)
	waitCounter(t, &obs.ends, 10)
	if obs.starts.Load() != 10 {
		t.Fatalf("observer starts = %d, want 10", obs.starts.Load())
	}

	err := e.PanicError()
	if err == nil {
		t.Fatal("observer panics not recorded in PanicError")
	}
	if !strings.Contains(err.Error(), "observer start boom") ||
		!strings.Contains(err.Error(), "observer end boom") {
		t.Fatalf("PanicError missing observer panics: %v", err)
	}
}

func TestObserverPanicRoutedToHandler(t *testing.T) {
	var handled atomic.Int64
	obs := &panickingObserver{}
	e := New(1,
		WithObserver(obs),
		WithPanicHandler(func(worker int, rec any) { handled.Add(1) }),
	)
	defer e.Shutdown()
	var n atomic.Int64
	e.SubmitFunc(func(Context) { n.Add(1) })
	waitCounter(t, &n, 1)
	waitCounter(t, &obs.ends, 1)
	if handled.Load() < 2 { // start hook + end hook
		t.Fatalf("panic handler saw %d observer panics, want 2", handled.Load())
	}
	if err := e.PanicError(); err != nil {
		t.Fatalf("handler-routed panics also recorded: %v", err)
	}
}

// Package executor implements the work-stealing task executor of the
// Cpp-Taskflow paper (Section III-E, Algorithm 1).
//
// The executor runs a fixed pool of worker goroutines. Each worker owns a
// Chase-Lev deque and loops:
//
//  1. pop a task from its own deque (LIFO, for locality);
//  2. otherwise steal, first from its last victim, then from random victims
//     and the external injection queue (FIFO);
//  3. otherwise register itself on the idlers list and block until a task
//     producer wakes it precisely.
//
// Two heuristics from the paper are implemented faithfully:
//
//   - Per-worker task cache: a task that finishes and makes exactly one
//     successor ready places that successor in the worker's cache slot; the
//     worker executes it immediately without any queue traffic, so linear
//     task chains run without scheduling overhead ("speculative execution",
//     Algorithm 1 lines 16-25).
//
//   - Idlers list: blocked workers park on an explicit list, so producers
//     wake exactly one spare worker per new batch of work instead of
//     broadcasting; additionally, after each task batch a worker wakes one
//     idler with small probability to rebalance load (lines 26-28).
//
// The executor is pluggable and shareable: multiple Taskflow instances can
// dispatch graphs to one executor, avoiding thread over-subscription
// (paper Section III-E).
package executor

import (
	"math/rand"
	"runtime"
	"sync"
	"sync/atomic"

	"gotaskflow/internal/wsq"
)

// A Task is a unit of work. It receives the scheduling Context of the worker
// executing it, through which it can submit follow-up tasks cheaply.
type Task func(ctx Context)

// Context is the scheduling interface visible to a running task. It is
// implemented by the worker executing the task and must not be retained
// after the task returns.
type Context interface {
	// Submit schedules a task on this worker's local deque and wakes an
	// idler if one exists.
	Submit(t Task)
	// SubmitCached places the task in this worker's cache slot so that it
	// runs immediately after the current task, bypassing all queues. If the
	// slot is occupied the task is submitted normally instead.
	SubmitCached(t Task)
	// WorkerID returns the executing worker's index in [0, NumWorkers).
	WorkerID() int
	// Executor returns the owning executor.
	Executor() *Executor
}

// Observer receives callbacks around task execution. Observers must be
// registered before any task is submitted and must be safe for concurrent
// use; they serve profiling and visualization (paper Section IV, CPU
// utilization profile).
type Observer interface {
	OnTaskStart(worker int)
	OnTaskEnd(worker int)
}

// defaultWakeDen is the default denominator of the probabilistic
// load-balancing wakeup: after finishing a task batch, a worker wakes one
// idler with probability 1/defaultWakeDen (Algorithm 1, lines 26-28).
const defaultWakeDen = 16

// spinSteals is the number of steal rounds a worker attempts before parking
// on the idlers list. Spinning bounds the futex ping-pong that fine-grained
// task graphs (sub-microsecond bodies) would otherwise trigger on every
// parallelism dip; workers yield the processor between rounds so spinning
// does not starve the producing worker on small machines.
const spinSteals = 32

// spinYieldEvery controls how often a spinning worker yields.
const spinYieldEvery = 4

type worker struct {
	id     int
	exec   *Executor
	queue  *wsq.Deque[Task]
	cache  Task
	rng    *rand.Rand
	victim int           // last successful steal victim
	wake   chan struct{} // buffered(1); signalled when this idler is woken
}

var _ Context = (*worker)(nil)

func (w *worker) WorkerID() int       { return w.id }
func (w *worker) Executor() *Executor { return w.exec }

func (w *worker) Submit(t Task) {
	w.queue.Push(t)
	w.exec.wakeOne()
}

func (w *worker) SubmitCached(t Task) {
	if w.cache == nil && !w.exec.noCache {
		w.cache = t
		return
	}
	w.Submit(t)
}

// Executor schedules Tasks over a fixed set of worker goroutines.
type Executor struct {
	workers []*worker

	// injection is the external submission queue used by non-worker
	// goroutines (work sharing).
	injMu     sync.Mutex
	injection []Task

	// notifier state: parked workers, LIFO.
	idleMu     sync.Mutex
	idlers     []*worker
	idlerCount atomic.Int64

	stop atomic.Bool
	wg   sync.WaitGroup

	// busy counts workers currently inside a task. Maintaining it costs
	// two shared-cacheline atomics per task, so it is only updated when
	// profiling is requested (WithBusyTracking or WithObserver).
	trackBusy bool
	busy      atomic.Int64
	observers []Observer

	// Ablation knobs for the Algorithm-1 heuristics (defaults match the
	// paper's scheduler; see the ablation benchmarks in bench_test.go).
	noCache bool
	wakeDen int
	spin    int

	seed int64
}

// Option configures an Executor.
type Option func(*Executor)

// WithSeed fixes the seed of the per-worker random number generators used
// for victim selection and probabilistic wakeup, making scheduling decisions
// reproducible in tests.
func WithSeed(seed int64) Option {
	return func(e *Executor) { e.seed = seed }
}

// WithObserver registers an observer. Must be applied at construction.
// Observers imply busy tracking.
func WithObserver(o Observer) Option {
	return func(e *Executor) {
		e.observers = append(e.observers, o)
		e.trackBusy = true
	}
}

// WithBusyTracking enables the BusyWorkers counter used by profilers.
func WithBusyTracking() Option {
	return func(e *Executor) { e.trackBusy = true }
}

// WithoutTaskCache disables the per-worker speculative task cache
// (Algorithm 1 lines 16-25), for ablation studies: every ready task goes
// through the queues.
func WithoutTaskCache() Option {
	return func(e *Executor) { e.noCache = true }
}

// WithWakeProbability sets the denominator of the probabilistic
// load-balancing wakeup (Algorithm 1 lines 26-28): a worker wakes one
// idler with probability 1/den after each task batch. den <= 0 disables
// the heuristic.
func WithWakeProbability(den int) Option {
	return func(e *Executor) { e.wakeDen = den }
}

// WithSpin sets the number of steal rounds a worker attempts before
// parking on the idlers list. Zero parks immediately.
func WithSpin(rounds int) Option {
	return func(e *Executor) { e.spin = rounds }
}

// New creates an executor with n workers and starts them. If n <= 0 it
// defaults to runtime.GOMAXPROCS(0).
func New(n int, opts ...Option) *Executor {
	if n <= 0 {
		n = runtime.GOMAXPROCS(0)
	}
	e := &Executor{seed: 1, wakeDen: defaultWakeDen, spin: spinSteals}
	for _, opt := range opts {
		opt(e)
	}
	e.workers = make([]*worker, n)
	for i := 0; i < n; i++ {
		e.workers[i] = &worker{
			id:     i,
			exec:   e,
			queue:  wsq.New[Task](256),
			rng:    rand.New(rand.NewSource(e.seed + int64(i)*7919)),
			victim: (i + 1) % n,
			wake:   make(chan struct{}, 1),
		}
	}
	e.wg.Add(n)
	for _, w := range e.workers {
		go e.run(w)
	}
	return e
}

// NumWorkers returns the number of worker goroutines.
func (e *Executor) NumWorkers() int { return len(e.workers) }

// BusyWorkers returns the number of workers currently executing a task.
// It is a racy snapshot intended for profiling and is only maintained when
// the executor was built with WithBusyTracking or WithObserver.
func (e *Executor) BusyWorkers() int { return int(e.busy.Load()) }

// Submit schedules a task from outside the worker pool via the injection
// queue (work sharing). Tasks running inside the pool should use their
// Context instead.
func (e *Executor) Submit(t Task) {
	e.injMu.Lock()
	e.injection = append(e.injection, t)
	e.injMu.Unlock()
	e.wakeOne()
}

// SubmitBatch schedules several tasks at once and wakes up to len(ts) idlers.
func (e *Executor) SubmitBatch(ts []Task) {
	if len(ts) == 0 {
		return
	}
	e.injMu.Lock()
	e.injection = append(e.injection, ts...)
	e.injMu.Unlock()
	for i := 0; i < len(ts); i++ {
		if !e.wakeOne() {
			break
		}
	}
}

// Shutdown stops all workers and waits for them to exit. Pending tasks that
// have not begun executing are discarded; callers are expected to have
// awaited completion (e.g. Taskflow.WaitForAll) first. Shutdown is
// idempotent.
func (e *Executor) Shutdown() {
	if e.stop.Swap(true) {
		e.wg.Wait()
		return
	}
	e.wakeAll()
	e.wg.Wait()
}

// popInjection removes the oldest externally submitted task, if any.
func (e *Executor) popInjection() (Task, bool) {
	e.injMu.Lock()
	defer e.injMu.Unlock()
	if len(e.injection) == 0 {
		return nil, false
	}
	t := e.injection[0]
	e.injection[0] = nil
	e.injection = e.injection[1:]
	return t, true
}

// anyWork reports whether any queue appears non-empty. Called under idleMu
// by parking workers to close the sleep race.
func (e *Executor) anyWork() bool {
	e.injMu.Lock()
	n := len(e.injection)
	e.injMu.Unlock()
	if n > 0 {
		return true
	}
	for _, w := range e.workers {
		if !w.queue.Empty() {
			return true
		}
	}
	return false
}

// wakeOne pops one parked worker and signals it. Returns false when no
// worker was parked.
func (e *Executor) wakeOne() bool {
	if e.idlerCount.Load() == 0 {
		return false
	}
	e.idleMu.Lock()
	var w *worker
	if n := len(e.idlers); n > 0 {
		w = e.idlers[n-1]
		e.idlers = e.idlers[:n-1]
		e.idlerCount.Add(-1)
	}
	e.idleMu.Unlock()
	if w == nil {
		return false
	}
	select {
	case w.wake <- struct{}{}:
	default:
	}
	return true
}

func (e *Executor) wakeAll() {
	e.idleMu.Lock()
	ws := e.idlers
	e.idlers = nil
	e.idlerCount.Store(0)
	e.idleMu.Unlock()
	for _, w := range ws {
		select {
		case w.wake <- struct{}{}:
		default:
		}
	}
}

// steal tries the last victim first, then sweeps the other workers and the
// injection queue (Algorithm 1 line 3).
func (w *worker) steal() (Task, bool) {
	e := w.exec
	n := len(e.workers)
	if n > 1 {
		if w.victim != w.id {
			if t, ok := e.workers[w.victim].queue.Steal(); ok {
				return t, true
			}
		}
		start := w.rng.Intn(n)
		for i := 0; i < n; i++ {
			v := (start + i) % n
			if v == w.id {
				continue
			}
			if t, ok := e.workers[v].queue.Steal(); ok {
				w.victim = v
				return t, true
			}
		}
	}
	return e.popInjection()
}

// run is the main worker loop, a direct transcription of Algorithm 1.
func (e *Executor) run(w *worker) {
	defer e.wg.Done()
	for {
		// Line 2: try local queue.
		t, ok := w.queue.Pop()
		if !ok {
			// Line 3: steal.
			t, ok = w.steal()
		}
		if !ok {
			// Spin briefly before parking.
			for s := 0; s < e.spin && !ok; s++ {
				if s%spinYieldEvery == spinYieldEvery-1 {
					runtime.Gosched()
				}
				t, ok = w.steal()
			}
		}
		if !ok {
			if e.stop.Load() {
				return
			}
			// Lines 5-15: park on the idlers list with a re-check under
			// the lock to avoid lost wakeups.
			e.idleMu.Lock()
			if e.anyWork() || e.stop.Load() {
				e.idleMu.Unlock()
				continue
			}
			e.idlers = append(e.idlers, w)
			e.idlerCount.Add(1)
			e.idleMu.Unlock()
			<-w.wake
			continue
		}

		// Lines 16-25: invoke, then drain the speculative cache so linear
		// chains run without queue operations.
		for t != nil {
			e.invoke(w, t)
			if w.cache != nil {
				t = w.cache
				w.cache = nil
			} else {
				t = nil
			}
		}

		// Lines 26-28: probabilistic wakeup for load balancing.
		if e.wakeDen > 0 && w.rng.Intn(e.wakeDen) == 0 {
			e.wakeOne()
		}
	}
}

func (e *Executor) invoke(w *worker, t Task) {
	if !e.trackBusy {
		t(w)
		return
	}
	e.busy.Add(1)
	for _, o := range e.observers {
		o.OnTaskStart(w.id)
	}
	t(w)
	for _, o := range e.observers {
		o.OnTaskEnd(w.id)
	}
	e.busy.Add(-1)
}

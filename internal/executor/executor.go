// Package executor implements the work-stealing task executor of the
// Cpp-Taskflow paper (Section III-E, Algorithm 1).
//
// The executor runs a fixed pool of worker goroutines. Each worker owns a
// Chase-Lev deque and loops:
//
//  1. pop a task from its own deque (LIFO, for locality);
//  2. otherwise steal, first from its last victim, then from random victims
//     and the external injection shards (FIFO per shard, home shard first);
//  3. otherwise announce itself on the eventcount notifier, re-check every
//     queue, and park until a task producer wakes it precisely.
//
// The scheduling currency is *Runnable: a pointer to an interface slot that
// lives inside a pre-built task object (an intrusive task). Graph nodes
// implement Runnable once at construction and carry their own slot, so the
// steady-state dispatch path — push, pop, steal, invoke — performs no
// allocation: no closures are minted per execution and the deques store the
// pointers without any boxing layer.
//
// Two heuristics from the paper are implemented faithfully:
//
//   - Per-worker task cache: a task that finishes and makes exactly one
//     successor ready places that successor in the worker's cache slot; the
//     worker executes it immediately without any queue traffic, so linear
//     task chains run without scheduling overhead ("speculative execution",
//     Algorithm 1 lines 16-25).
//
//   - Precise wakeup: blocked workers park on a lock-free eventcount
//     (notifier.go) instead of the paper's mutex-guarded idlers list, so
//     producers wake exactly one spare worker per new batch of work without
//     broadcasting — and without taking any lock: when nobody is parked the
//     wake is a single atomic load. Additionally, after each task batch a
//     worker wakes one idler with small probability to rebalance load
//     (lines 26-28).
//
// Producers that make several tasks ready at once submit them as a batch
// (SubmitBatch, or SubmitNoWake followed by one Wake) with a single
// computed wake count — min(batch size, parked workers) — instead of one
// wake attempt per task.
//
// The executor is pluggable and shareable: multiple Taskflow instances can
// dispatch graphs to one executor, avoiding thread over-subscription
// (paper Section III-E).
package executor

import (
	"errors"
	"fmt"
	"math/rand"
	"runtime"
	"sync"
	"sync/atomic"
	"unsafe"

	"gotaskflow/internal/wsq"
)

// ErrShutdown is returned by Submit, SubmitBatch and SubmitFunc after
// Shutdown: the workers have exited, so an accepted task could never run
// and its producer would hang waiting for completion.
var ErrShutdown = errors.New("executor: submit after Shutdown")

// Runnable is a unit of work: a pre-built task object executed by pointer.
// It receives the scheduling Context of the worker executing it, through
// which it can submit follow-up tasks cheaply.
//
// The scheduler passes tasks around as *Runnable — a pointer to the
// interface slot, one word in the queues. Long-lived task objects (graph
// nodes, pipeline cells) embed a Runnable field initialized to themselves
// and submit its address, so re-executing them allocates nothing.
type Runnable interface {
	Run(ctx Context)
}

// Func adapts an ordinary function to a Runnable, for producers that have
// no pre-built task object (one-shot jobs, tests).
type Func func(Context)

// Run implements Runnable.
func (f Func) Run(ctx Context) { f(ctx) }

// NewTask boxes fn into a submit-ready task reference. Each call allocates
// one box; hot paths should use intrusive task objects instead.
func NewTask(fn func(Context)) *Runnable {
	r := Runnable(Func(fn))
	return &r
}

// Context is the scheduling interface visible to a running task. It is
// implemented by the worker executing the task and must not be retained
// after the task returns.
type Context interface {
	// Submit schedules a task on this worker's local deque and wakes an
	// idler if one exists.
	Submit(r *Runnable)
	// SubmitNoWake schedules a task on this worker's local deque without
	// waking anyone. Producers making a batch of tasks ready use it for
	// every task in the batch and then issue a single Wake(n), so the wake
	// count is computed once per batch instead of once per task.
	SubmitNoWake(r *Runnable)
	// SubmitBatch schedules all tasks onto this worker's local deque with
	// one queue publication and wakes at most min(len(rs), idle workers).
	SubmitBatch(rs []*Runnable)
	// SubmitCached places the task in this worker's cache slot so that it
	// runs immediately after the current task, bypassing all queues. If the
	// slot is occupied the task is submitted normally instead.
	SubmitCached(r *Runnable)
	// Wake wakes up to n parked workers, stopping at the first failure.
	// It pairs with SubmitNoWake.
	Wake(n int)
	// WorkerID returns the executing worker's index in [0, NumWorkers).
	WorkerID() int
	// Executor returns the owning scheduler (the real executor, or the
	// simulation executor when the task runs under internal/sim).
	Executor() Scheduler
	// Tracing reports whether a trace capture is currently recording —
	// the cheap guard before building a TaskMeta for Trace.
	Tracing() bool
	// Trace records a trace event attributed to this worker. No-op unless
	// a capture is active (see WithTracing / StartTrace).
	Trace(kind EventKind, meta TaskMeta, arg uint64)
}

// Observer receives callbacks around task execution, carrying the task's
// identity (name, owning flow, run generation) when the task offers one
// (see Described; anonymous tasks pass a zero TaskMeta). Observers may be
// registered at construction or while running and must be safe for
// concurrent use; they serve profiling and visualization (paper Section
// IV, CPU utilization profile). A panicking observer is contained at the
// worker level and routed through the executor's panic machinery
// (PanicError / WithPanicHandler) — it never unwinds the worker loop —
// but the remaining observers of that event are skipped.
type Observer interface {
	OnTaskStart(worker int, meta TaskMeta)
	OnTaskEnd(worker int, meta TaskMeta)
}

// defaultWakeDen is the default denominator of the probabilistic
// load-balancing wakeup: after finishing a task batch, a worker wakes one
// idler with probability 1/defaultWakeDen (Algorithm 1, lines 26-28).
const defaultWakeDen = 16

// spinSteals is the number of steal rounds a worker attempts before parking
// on the idlers list. Spinning bounds the futex ping-pong that fine-grained
// task graphs (sub-microsecond bodies) would otherwise trigger on every
// parallelism dip; workers yield the processor between rounds so spinning
// does not starve the producing worker on small machines.
const spinSteals = 32

// spinYieldEvery controls how often a spinning worker yields.
const spinYieldEvery = 4

type worker struct {
	id     int
	exec   *Executor
	queue  *wsq.Deque[Runnable]
	cache  *Runnable
	rng    *rand.Rand
	victim int // last successful steal victim

	// metrics points at this worker's padded counter block when the
	// executor was built WithMetrics, nil otherwise. Every instrumentation
	// point is one nil check on this pointer.
	metrics *workerMetrics
}

var _ Context = (*worker)(nil)

func (w *worker) WorkerID() int       { return w.id }
func (w *worker) Executor() Scheduler { return w.exec }

func (w *worker) Submit(r *Runnable) {
	w.queue.Push(r)
	if w.exec.wakeOne() {
		w.traceEvent(EvWakePrecise, 1)
	}
}

func (w *worker) SubmitNoWake(r *Runnable) {
	w.queue.Push(r)
}

func (w *worker) SubmitBatch(rs []*Runnable) {
	if len(rs) == 0 {
		return
	}
	w.queue.PushBatch(rs)
	if woke := w.exec.wakeUpTo(len(rs)); woke > 0 {
		w.traceEvent(EvWakePrecise, uint64(woke))
	}
}

func (w *worker) SubmitCached(r *Runnable) {
	if w.cache == nil && !w.exec.noCache {
		w.cache = r
		if m := w.metrics; m != nil {
			m.cacheHits.Add(1)
		}
		return
	}
	w.Submit(r)
}

func (w *worker) Wake(n int) {
	if woke := w.exec.wakeUpTo(n); woke > 0 {
		w.traceEvent(EvWakePrecise, uint64(woke))
	}
}

// Executor schedules Runnables over a fixed set of worker goroutines.
type Executor struct {
	workers []*worker

	// injection is the external submission queue used by non-worker
	// goroutines (work sharing): lock-guarded ring shards (see inject.go).
	// Producers hash to a shard; workers drain their home shard first. The
	// shard count is a power of two, so injMask selects one.
	injShards []paddedInjShard
	injMask   int

	// mt is the multi-tenancy state (flow.go), allocated lazily by the
	// first NewFlow call. Pools that never register a flow pay one nil
	// pointer load per steal sweep and per anyWork re-check.
	mt atomic.Pointer[mtState]

	// no is the eventcount notifier parked workers wait on (notifier.go).
	// idlerCount is a derived gauge of workers currently inside the park
	// protocol (between prewait and unpark) — it plays no role in wakeup
	// correctness, but bounds wakeUpTo's wake count and feeds tests and
	// debugging. It is incremented BEFORE prewait, so a producer that reads
	// 0 after publishing work is guaranteed the worker's post-prewait
	// re-check will see that work.
	no         *notifier
	idlerCount atomic.Int64

	stop atomic.Bool
	wg   sync.WaitGroup

	// timers tracks armed AfterFunc callbacks (Task.Retry backoff) so
	// Shutdown can resolve them instead of letting them fire into a dead
	// pool later; see timers.go.
	timers timerRegistry

	// busy counts workers currently inside a task. Maintaining it costs
	// two shared-cacheline atomics per task, so it is only updated when
	// profiling is requested (WithBusyTracking, WithObserver, or a later
	// AddObserver).
	trackBusy atomic.Bool
	busy      atomic.Int64

	// observers is a copy-on-write list so AddObserver is safe while the
	// workers run: registration publishes a fresh slice, and each task
	// invocation loads the list once, delivering balanced
	// OnTaskStart/OnTaskEnd pairs even when registration races with it.
	obsMu     sync.Mutex
	observers atomic.Pointer[[]Observer]

	// metrics is the scheduler counter storage (see metrics.go), non-nil
	// only when built WithMetrics.
	metricsOn bool
	metrics   *metricsState

	// tracer is the event-trace recorder (see trace.go), non-nil only when
	// built WithTracing. Each instrumentation point is one nil check, plus
	// one atomic flag load while armed.
	tracer *tracerState

	// flight is the always-armed flight recorder (see flight.go), non-nil
	// only when built WithFlightRecorder. It shares the trace
	// instrumentation points with tracer but never stops recording.
	flightCap int
	flight    *flightState

	// lat is the per-flow latency histogram state (see histogram.go),
	// non-nil only when built WithLatencyHistograms.
	latencyOn bool
	lat       *latencyState

	// Ablation knobs for the Algorithm-1 heuristics (defaults match the
	// paper's scheduler; see the ablation benchmarks in bench_test.go).
	noCache bool
	wakeDen int
	spin    int

	// seed drives the per-worker RNGs (victim selection, probabilistic
	// wakeup). Unless WithSeed pins it, every executor draws its own seed so
	// two pools in one process never follow identical scheduling sequences.
	seed    int64
	seedSet bool

	// Panic containment: a task that panics past its own recovery (e.g. a
	// bare one-shot NewTask) is caught at the worker loop and recorded here
	// instead of killing the process. panicHandler, when set, observes the
	// recovered value instead of the default recording.
	panicHandler func(worker int, recovered any)
	panicMu      sync.Mutex
	panics       []error
}

// maxRecordedPanics bounds the contained-panic log so a pathological
// producer cannot grow it without bound; later panics are counted but
// their messages dropped.
const maxRecordedPanics = 64

// Option configures an Executor.
type Option func(*Executor)

// WithSeed fixes the seed of the per-worker random number generators used
// for victim selection and probabilistic wakeup, making scheduling decisions
// reproducible in tests. Without it each executor draws a fresh seed.
func WithSeed(seed int64) Option {
	return func(e *Executor) { e.seed, e.seedSet = seed, true }
}

// WithObserver registers an observer at construction. Observers imply busy
// tracking. Observers may also be registered later with AddObserver.
func WithObserver(o Observer) Option {
	return func(e *Executor) { e.AddObserver(o) }
}

// WithBusyTracking enables the BusyWorkers counter used by profilers.
func WithBusyTracking() Option {
	return func(e *Executor) { e.trackBusy.Store(true) }
}

// AddObserver registers an observer, implying busy tracking. Safe to call
// concurrently with running tasks: the observer list is copy-on-write, so
// in-flight tasks keep the list they loaded (an observer registered
// mid-task sees its first OnTaskStart on the next task, never an unpaired
// OnTaskEnd). Observers must be safe for concurrent use.
func (e *Executor) AddObserver(o Observer) {
	e.obsMu.Lock()
	var next []Observer
	if p := e.observers.Load(); p != nil {
		next = append(next, *p...)
	}
	next = append(next, o)
	e.observers.Store(&next)
	e.obsMu.Unlock()
	e.trackBusy.Store(true)
}

// WithoutTaskCache disables the per-worker speculative task cache
// (Algorithm 1 lines 16-25), for ablation studies: every ready task goes
// through the queues.
func WithoutTaskCache() Option {
	return func(e *Executor) { e.noCache = true }
}

// WithWakeProbability sets the denominator of the probabilistic
// load-balancing wakeup (Algorithm 1 lines 26-28): a worker wakes one
// idler with probability 1/den after each task batch. den <= 0 disables
// the heuristic.
func WithWakeProbability(den int) Option {
	return func(e *Executor) { e.wakeDen = den }
}

// WithSpin sets the number of steal rounds a worker attempts before
// parking on the idlers list. Zero parks immediately.
func WithSpin(rounds int) Option {
	return func(e *Executor) { e.spin = rounds }
}

// WithPanicHandler routes panics contained at the worker level to fn
// instead of the executor's internal panic log. fn runs on the worker
// goroutine and must not panic itself.
func WithPanicHandler(fn func(worker int, recovered any)) Option {
	return func(e *Executor) { e.panicHandler = fn }
}

// New creates an executor with n workers and starts them. If n <= 0 it
// defaults to runtime.GOMAXPROCS(0).
func New(n int, opts ...Option) *Executor {
	if n <= 0 {
		n = runtime.GOMAXPROCS(0)
	}
	e := &Executor{wakeDen: defaultWakeDen, spin: spinSteals}
	for _, opt := range opts {
		opt(e)
	}
	if !e.seedSet {
		// Per-instance seed: two executors in one process must not follow
		// identical victim-selection and wakeup sequences.
		e.seed = rand.Int63()
	}
	shards := injShardCount(n)
	e.injMask = shards - 1
	e.injShards = make([]paddedInjShard, shards)
	for i := range e.injShards {
		e.injShards[i].ring.init(injInitialCap)
	}
	e.no = newNotifier(n)
	if e.metricsOn {
		e.metrics = newMetricsState(n, shards)
	}
	if e.latencyOn {
		e.lat = &latencyState{workers: n, def: newFlowLatency(n)}
	}
	if e.flightCap > 0 {
		e.flight = newFlightState(n, e.flightCap)
	}
	e.workers = make([]*worker, n)
	for i := 0; i < n; i++ {
		w := &worker{
			id:     i,
			exec:   e,
			queue:  wsq.New[Runnable](256),
			rng:    rand.New(rand.NewSource(e.seed + int64(i)*7919)),
			victim: (i + 1) % n,
		}
		if e.metrics != nil {
			w.queue.SetCounters(&e.metrics.deques[i].Counters)
			w.metrics = &e.metrics.workers[i].workerMetrics
		}
		if e.tracer != nil || e.flight != nil {
			// Ring reallocations on the push path are a latency smell worth a
			// timeline mark; the hook runs on the owner, so it records into
			// the owner's ring.
			w.queue.SetGrowHook(func(newCap int) {
				w.traceEvent(EvQueueGrow, uint64(newCap))
			})
		}
		e.workers[i] = w
	}
	e.wg.Add(n)
	for _, w := range e.workers {
		go e.run(w)
	}
	return e
}

// NumWorkers returns the number of worker goroutines.
func (e *Executor) NumWorkers() int { return len(e.workers) }

// BusyWorkers returns the number of workers currently executing a task.
// It is a racy snapshot intended for profiling and is only maintained when
// the executor was built with WithBusyTracking or WithObserver.
func (e *Executor) BusyWorkers() int { return int(e.busy.Load()) }

// Submit schedules a task from outside the worker pool via the injection
// queue (work sharing). Tasks running inside the pool should use their
// Context instead. After Shutdown it rejects the task with ErrShutdown
// instead of accepting work that could never run.
func (e *Executor) Submit(r *Runnable) error {
	if e.stop.Load() {
		return ErrShutdown
	}
	idx := e.injShardIdx(r)
	s := &e.injShards[idx].injShard
	s.mu.Lock()
	s.ring.push(r)
	s.mu.Unlock()
	// Publish the length before the wake: a parking worker that our notify
	// misses has not re-checked anyWork yet and will see this count.
	s.len.Add(1)
	if m := e.metrics; m != nil {
		m.injectionPushes.Add(1)
		m.shards[idx].pushes.Add(1)
	}
	e.TraceExternal(EvInjectPush, TaskMeta{}, InjectArg(idx, 1))
	if e.wakeOne() {
		e.TraceExternal(EvWakePrecise, TaskMeta{}, 1)
	}
	return nil
}

// injShardIdx hashes a task reference to its injection shard. Task objects
// are long-lived and word-aligned, so a Fibonacci hash of the pointer
// spreads unrelated producers across shards while one producer
// resubmitting the same task stays on one shard (keeping its tasks FIFO).
func (e *Executor) injShardIdx(r *Runnable) int {
	h := (uint64(uintptr(unsafe.Pointer(r))) >> 3) * 0x9E3779B97F4A7C15
	return int(h>>32) & e.injMask
}

// SubmitFunc boxes fn and submits it — a convenience for one-shot jobs.
func (e *Executor) SubmitFunc(fn func(Context)) error {
	return e.Submit(NewTask(fn))
}

// SubmitBatch schedules several tasks at once and wakes at most
// min(len(rs), parked workers) idlers, stopping at the first failed wake.
// The batch is accepted whole or rejected whole with ErrShutdown. The whole
// batch lands on one shard (chosen by its first task) so the producer takes
// one lock and the batch stays FIFO; batch drains and steals spread it.
func (e *Executor) SubmitBatch(rs []*Runnable) error {
	if len(rs) == 0 {
		return nil
	}
	if e.stop.Load() {
		return ErrShutdown
	}
	idx := e.injShardIdx(rs[0])
	s := &e.injShards[idx].injShard
	s.mu.Lock()
	s.ring.pushBatch(rs)
	s.mu.Unlock()
	s.len.Add(int64(len(rs)))
	if m := e.metrics; m != nil {
		m.injectionPushes.Add(uint64(len(rs)))
		m.shards[idx].pushes.Add(uint64(len(rs)))
	}
	e.TraceExternal(EvInjectPush, TaskMeta{}, InjectArg(idx, uint64(len(rs))))
	if woke := e.wakeUpTo(len(rs)); woke > 0 {
		e.TraceExternal(EvWakePrecise, TaskMeta{}, uint64(woke))
	}
	return nil
}

// Stopped reports whether Shutdown has begun.
func (e *Executor) Stopped() bool { return e.stop.Load() }

// Shutdown stops all workers and waits for them to exit. Pending tasks that
// have not begun executing are discarded; callers are expected to have
// awaited completion (e.g. Taskflow.WaitForAll) first. Armed AfterFunc
// timers (retry backoffs) are stopped and their callbacks run now, so a
// topology waiting on a retry resolves with ErrShutdown instead of
// hanging or firing into the dead pool later. Shutdown is idempotent.
func (e *Executor) Shutdown() {
	if e.stop.Swap(true) {
		e.wg.Wait()
		return
	}
	e.wakeAll()
	e.wg.Wait()
	e.fireArmedTimers()
}

// drainInjection sweeps the injection shards — this worker's home shard
// first, then the others in index order — and removes up to half of the
// first non-empty shard's backlog (capped at len(scratch)) into scratch
// under one lock acquisition. It returns the number moved and the shard it
// came from. The per-shard atomic length keeps empty shards lock-free to
// skip. Grabbing only half leaves the rest for the other workers a deep
// backlog will wake, mirroring the half-grab policy of wsq.StealBatch.
func (w *worker) drainInjection(scratch []*Runnable) (int, int) {
	e := w.exec
	home := w.id & e.injMask
	for i := range e.injShards {
		idx := (home + i) & e.injMask
		s := &e.injShards[idx].injShard
		n := s.len.Load()
		if n <= 0 {
			// n can be transiently negative: producers publish the atomic
			// length after releasing the ring lock, so a drain can land in
			// between.
			continue
		}
		grab := (n + 1) / 2
		if grab > int64(len(scratch)) {
			grab = int64(len(scratch))
		}
		s.mu.Lock()
		k := s.ring.popN(scratch[:grab])
		s.mu.Unlock()
		if k > 0 {
			s.len.Add(-int64(k))
			return k, idx
		}
	}
	return 0, 0
}

// injCap reports the largest injection shard ring capacity (for tests).
func (e *Executor) injCap() int {
	max := 0
	for i := range e.injShards {
		s := &e.injShards[i].injShard
		s.mu.Lock()
		if c := len(s.ring.buf); c > max {
			max = c
		}
		s.mu.Unlock()
	}
	return max
}

// injDepth reports the total injection backlog across shards (gauge).
func (e *Executor) injDepth() int {
	var total int64
	for i := range e.injShards {
		total += e.injShards[i].len.Load()
	}
	if total < 0 {
		total = 0
	}
	return int(total)
}

// anyWork reports whether any queue appears non-empty. Parking workers call
// it between prewait and commitWait: the eventcount's ordering guarantees
// that work published before a missed notify is visible to this re-check.
// Flow backlogs participate for the same reason the shard lengths do: a
// Flow.Submit publishes the backlog gauge before its wake, so a parking
// worker that misses the notify sees the count here.
func (e *Executor) anyWork() bool {
	for i := range e.injShards {
		if e.injShards[i].len.Load() > 0 {
			return true
		}
	}
	if mt := e.mt.Load(); mt != nil {
		for c := range mt.classes {
			if mt.classes[c].backlog.Load() > 0 {
				return true
			}
		}
	}
	for _, w := range e.workers {
		if !w.queue.Empty() {
			return true
		}
	}
	return false
}

// wakeOne wakes one waiting worker through the eventcount. Returns false —
// after one atomic load, with no lock and no store — when nobody is
// waiting, which is the fast path on a busy pool.
func (e *Executor) wakeOne() bool {
	if !e.no.notifyOne() {
		return false
	}
	if m := e.metrics; m != nil {
		m.wakes.Add(1)
	}
	return true
}

// wakeUpTo wakes at most min(n, waiting workers) idlers and returns the
// number woken. One bounded wake pass per ready batch replaces a wake
// attempt per task: a spinning worker that will drain the batch anyway is
// never displaced by futile wakeups. The idlerCount bound is a snapshot —
// a worker it misses is one that had not yet prewaited when we read it, and
// such a worker's re-check is guaranteed to see the work published before
// this call.
func (e *Executor) wakeUpTo(n int) int {
	if c := int(e.idlerCount.Load()); c < n {
		n = c
	}
	woke := 0
	for ; woke < n; woke++ {
		if !e.no.notifyOne() {
			break
		}
	}
	if woke > 0 {
		if m := e.metrics; m != nil {
			m.wakes.Add(uint64(woke))
		}
	}
	return woke
}

func (e *Executor) wakeAll() {
	e.no.notifyAll()
}

// steal tries the last victim first, then sweeps the other workers and the
// injection queue (Algorithm 1 line 3). One call is one steal attempt in
// the metrics; a hit is counted against the source it came from (a victim
// deque, the injection queue, or a flow queue).
//
// All sources are robbed in batch: a hit moves up to half of the source's
// visible backlog (capped at wsq.MaxStealBatch), executing the first task
// and parking the extras on this worker's own deque, so one victim
// selection and one sweep pay for several tasks on wide fan-outs.
//
// Multi-tenant drain order (flow.go): Interactive flow backlog outranks
// everything — it is checked before deque stealing, so request-shaped work
// preempts in-flight graph expansion at the next steal point. Batch flows
// rank below the deques and the plain injection shards (active graphs keep
// priority over new bulk admissions), and Background flows come last.
// Within a class, drainFlows walks the weighted round-robin wheel.
func (w *worker) steal() (*Runnable, bool) {
	e := w.exec
	m := w.metrics
	if m != nil {
		m.stealAttempts.Add(1)
	}
	mt := e.mt.Load()
	if mt != nil {
		if r, ok := w.drainFlows(&mt.classes[Interactive]); ok {
			return r, true
		}
	}
	n := len(e.workers)
	if n > 1 {
		if w.victim != w.id {
			if r, k := e.workers[w.victim].queue.StealBatch(w.queue); k > 0 {
				w.noteSteal(m, w.victim, k)
				return r, true
			}
		}
		start := w.rng.Intn(n)
		for i := 0; i < n; i++ {
			v := (start + i) % n
			if v == w.id {
				continue
			}
			if r, k := e.workers[v].queue.StealBatch(w.queue); k > 0 {
				w.victim = v
				w.noteSteal(m, v, k)
				return r, true
			}
		}
	}
	var scratch [wsq.MaxStealBatch]*Runnable
	if k, shard := w.drainInjection(scratch[:]); k > 0 {
		if k > 1 {
			w.queue.PushBatch(scratch[1:k])
		}
		if m != nil {
			m.injectionDrains.Add(1)
			m.injectionDrainedTasks.Add(uint64(k))
		}
		if em := e.metrics; em != nil {
			em.shards[shard].drains.Add(1)
			em.shards[shard].drainedTasks.Add(uint64(k))
		}
		w.traceEvent(EvInjectDrain, InjectArg(shard, uint64(k)))
		return scratch[0], true
	}
	if mt != nil {
		if r, ok := w.drainFlows(&mt.classes[Batch]); ok {
			return r, true
		}
		if r, ok := w.drainFlows(&mt.classes[Background]); ok {
			return r, true
		}
	}
	return nil, false
}

// noteSteal records one successful steal operation against victim v that
// moved k tasks (metrics and trace events).
func (w *worker) noteSteal(m *workerMetrics, v, k int) {
	if m != nil {
		m.steals.Add(1)
		m.stolenTasks.Add(uint64(k))
		if k > 1 {
			m.stealBatches.Add(1)
		}
	}
	w.traceEvent(EvSteal, uint64(v))
	if k > 1 {
		w.traceEvent(EvStealBatch, uint64(k))
	}
}

// run is the main worker loop, a direct transcription of Algorithm 1.
func (e *Executor) run(w *worker) {
	defer e.wg.Done()
	for {
		// Line 2: try local queue.
		r, ok := w.queue.Pop()
		if !ok {
			// Line 3: steal.
			r, ok = w.steal()
		}
		if !ok {
			// Spin briefly before parking.
			for s := 0; s < e.spin && !ok; s++ {
				if s%spinYieldEvery == spinYieldEvery-1 {
					runtime.Gosched()
				}
				r, ok = w.steal()
			}
		}
		if !ok {
			if e.stop.Load() {
				return
			}
			// Lines 5-15: two-phase park on the eventcount. prewait
			// announces intent, the anyWork re-check races any producer's
			// publish-then-notify — the eventcount guarantees one side sees
			// the other, so no lost wakeup without any lock. The idlerCount
			// gauge is raised before prewait (see its field comment).
			e.idlerCount.Add(1)
			e.no.prewait()
			if m := w.metrics; m != nil {
				m.prewaits.Add(1)
			}
			if e.anyWork() || e.stop.Load() {
				e.no.cancelWait()
				e.idlerCount.Add(-1)
				if m := w.metrics; m != nil {
					m.waitCancels.Add(1)
				}
				continue
			}
			if m := w.metrics; m != nil {
				m.parks.Add(1)
			}
			w.traceEvent(EvPark, e.no.epochOf(w.id))
			e.no.commitWait(w.id)
			e.idlerCount.Add(-1)
			w.traceEvent(EvUnpark, e.no.epochOf(w.id))
			continue
		}

		// Lines 16-25: invoke, then drain the speculative cache so linear
		// chains run without queue operations.
		for r != nil {
			e.invoke(w, r)
			r = w.cache
			w.cache = nil
		}

		// Lines 26-28: probabilistic wakeup for load balancing.
		if e.wakeDen > 0 && w.rng.Intn(e.wakeDen) == 0 {
			if e.wakeOne() {
				if m := w.metrics; m != nil {
					m.probWakes.Add(1)
				}
				w.traceEvent(EvWakeProb, 1)
			}
		}
	}
}

func (e *Executor) invoke(w *worker, r *Runnable) {
	if m := w.metrics; m != nil {
		m.executed.Add(1)
	}
	tracing := w.Tracing()
	busy := e.trackBusy.Load()
	if !busy && !tracing {
		e.safeRun(w, r)
		return
	}
	meta := taskMetaOf(r)
	// Load the observer list once so this task delivers balanced
	// OnTaskStart/OnTaskEnd pairs even if AddObserver races with it.
	var obs []Observer
	if busy {
		e.busy.Add(1)
		if p := e.observers.Load(); p != nil {
			obs = *p
		}
	}
	e.notifyStart(w, obs, meta)
	// Trace events sit innermost so spans bound the task body tightly,
	// excluding observer work.
	if tracing {
		w.Trace(EvTaskStart, meta, 0)
	}
	e.safeRun(w, r)
	if tracing {
		w.Trace(EvTaskEnd, meta, 0)
	}
	e.notifyEnd(w, obs, meta)
	if busy {
		e.busy.Add(-1)
	}
}

// notifyStart/notifyEnd dispatch observer hooks under panic containment: a
// panicking observer is routed through the PanicError/WithPanicHandler
// machinery instead of unwinding into the worker loop. The remaining
// observers of that event are skipped (the deferred recover unwinds the
// dispatch loop), but the task itself still runs and later events still
// reach every observer.
func (e *Executor) notifyStart(w *worker, obs []Observer, meta TaskMeta) {
	if len(obs) == 0 {
		return
	}
	defer func() {
		if rec := recover(); rec != nil {
			e.containPanic(w.id, rec)
		}
	}()
	for _, o := range obs {
		o.OnTaskStart(w.id, meta)
	}
}

func (e *Executor) notifyEnd(w *worker, obs []Observer, meta TaskMeta) {
	if len(obs) == 0 {
		return
	}
	defer func() {
		if rec := recover(); rec != nil {
			e.containPanic(w.id, rec)
		}
	}()
	for _, o := range obs {
		o.OnTaskEnd(w.id, meta)
	}
}

// safeRun executes r under worker-level panic containment: a panic that
// escapes the task's own recovery (e.g. a bare one-shot NewTask) is
// converted to a recorded error instead of unwinding the worker goroutine
// and killing the process. Library task objects (graph nodes, pipeline
// cells) recover their own panics before this net is reached, so it only
// fires for foreign Runnables — and for those the worker keeps running.
func (e *Executor) safeRun(w *worker, r *Runnable) {
	defer func() {
		if rec := recover(); rec != nil {
			e.containPanic(w.id, rec)
		}
	}()
	(*r).Run(w)
}

func (e *Executor) containPanic(worker int, rec any) {
	if e.panicHandler != nil {
		e.panicHandler(worker, rec)
		return
	}
	e.panicMu.Lock()
	if len(e.panics) < maxRecordedPanics {
		e.panics = append(e.panics, fmt.Errorf("executor: task panicked on worker %d: %v", worker, rec))
	}
	e.panicMu.Unlock()
}

// PanicError returns the contained panics recorded so far joined into one
// error, or nil if every task has returned normally.
func (e *Executor) PanicError() error {
	e.panicMu.Lock()
	defer e.panicMu.Unlock()
	return errors.Join(e.panics...)
}

package executor

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// waitCounter blocks until the counter reaches want or the timeout expires.
func waitCounter(t *testing.T, c *atomic.Int64, want int64) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for c.Load() != want {
		if time.Now().After(deadline) {
			t.Fatalf("counter = %d, want %d (timeout)", c.Load(), want)
		}
		time.Sleep(100 * time.Microsecond)
	}
}

func TestSubmitRunsAllTasks(t *testing.T) {
	e := New(4)
	defer e.Shutdown()
	var n atomic.Int64
	const total = 10000
	for i := 0; i < total; i++ {
		e.SubmitFunc(func(Context) { n.Add(1) })
	}
	waitCounter(t, &n, total)
}

func TestSubmitBatch(t *testing.T) {
	e := New(3)
	defer e.Shutdown()
	var n atomic.Int64
	tasks := make([]*Runnable, 500)
	for i := range tasks {
		tasks[i] = NewTask(func(Context) { n.Add(1) })
	}
	e.SubmitBatch(tasks)
	waitCounter(t, &n, 500)
}

func TestSubmitBatchEmpty(t *testing.T) {
	e := New(1)
	defer e.Shutdown()
	e.SubmitBatch(nil) // must not panic or wake anything
}

// An intrusive task object: implements Runnable and carries its own slot,
// the way graph nodes do. Submitting &task.self never allocates.
type intrusiveTask struct {
	fn   func(ctx Context, t *intrusiveTask)
	self Runnable
}

func newIntrusive(fn func(ctx Context, t *intrusiveTask)) *intrusiveTask {
	t := &intrusiveTask{fn: fn}
	t.self = t
	return t
}

func (t *intrusiveTask) Run(ctx Context) { t.fn(ctx, t) }

func TestIntrusiveResubmit(t *testing.T) {
	// One pre-built task object resubmits itself 1000 times.
	e := New(2)
	defer e.Shutdown()
	var n atomic.Int64
	task := newIntrusive(func(ctx Context, task *intrusiveTask) {
		if n.Add(1) < 1000 {
			ctx.Submit(&task.self)
		}
	})
	e.Submit(&task.self)
	waitCounter(t, &n, 1000)
}

func TestNestedSubmitFromTask(t *testing.T) {
	e := New(4)
	defer e.Shutdown()
	var n atomic.Int64
	var spawn func(depth int) *Runnable
	spawn = func(depth int) *Runnable {
		return NewTask(func(ctx Context) {
			n.Add(1)
			if depth > 0 {
				ctx.Submit(spawn(depth - 1))
				ctx.Submit(spawn(depth - 1))
			}
		})
	}
	e.Submit(spawn(10)) // 2^11 - 1 tasks
	waitCounter(t, &n, 1<<11-1)
}

func TestSubmitCachedLinearChain(t *testing.T) {
	e := New(2)
	defer e.Shutdown()
	var n atomic.Int64
	var order []int
	var mu sync.Mutex
	var link func(i int) *Runnable
	link = func(i int) *Runnable {
		return NewTask(func(ctx Context) {
			mu.Lock()
			order = append(order, i)
			mu.Unlock()
			n.Add(1)
			if i < 99 {
				ctx.SubmitCached(link(i + 1))
			}
		})
	}
	e.Submit(link(0))
	waitCounter(t, &n, 100)
	mu.Lock()
	defer mu.Unlock()
	for i, v := range order {
		if v != i {
			t.Fatalf("order[%d] = %d; cached chain must run in order", i, v)
		}
	}
}

func TestSubmitCachedFallsBackWhenOccupied(t *testing.T) {
	e := New(1)
	defer e.Shutdown()
	var n atomic.Int64
	e.SubmitFunc(func(ctx Context) {
		ctx.SubmitCached(NewTask(func(Context) { n.Add(1) }))
		ctx.SubmitCached(NewTask(func(Context) { n.Add(1) })) // slot taken -> queued
		ctx.SubmitCached(NewTask(func(Context) { n.Add(1) }))
	})
	waitCounter(t, &n, 3)
}

func TestSubmitNoWakeThenWake(t *testing.T) {
	e := New(4)
	defer e.Shutdown()
	var n atomic.Int64
	const fanout = 64
	e.SubmitFunc(func(ctx Context) {
		for i := 0; i < fanout; i++ {
			ctx.SubmitNoWake(NewTask(func(Context) { n.Add(1) }))
		}
		ctx.Wake(fanout)
	})
	waitCounter(t, &n, fanout)
}

func TestContextSubmitBatch(t *testing.T) {
	e := New(4)
	defer e.Shutdown()
	var n atomic.Int64
	const fanout = 128
	e.SubmitFunc(func(ctx Context) {
		batch := make([]*Runnable, fanout)
		for i := range batch {
			batch[i] = NewTask(func(Context) { n.Add(1) })
		}
		ctx.SubmitBatch(batch)
		ctx.SubmitBatch(nil) // no-op
	})
	waitCounter(t, &n, fanout)
}

func TestWorkerID(t *testing.T) {
	e := New(3)
	defer e.Shutdown()
	seen := make(chan int, 100)
	for i := 0; i < 100; i++ {
		e.SubmitFunc(func(ctx Context) {
			if ctx.Executor() != e {
				t.Error("ctx.Executor() mismatch")
			}
			seen <- ctx.WorkerID()
		})
	}
	for i := 0; i < 100; i++ {
		id := <-seen
		if id < 0 || id >= 3 {
			t.Fatalf("WorkerID() = %d, want in [0,3)", id)
		}
	}
}

func TestNumWorkersDefault(t *testing.T) {
	e := New(0)
	defer e.Shutdown()
	if e.NumWorkers() < 1 {
		t.Fatalf("NumWorkers() = %d, want >= 1", e.NumWorkers())
	}
	e2 := New(7)
	defer e2.Shutdown()
	if e2.NumWorkers() != 7 {
		t.Fatalf("NumWorkers() = %d, want 7", e2.NumWorkers())
	}
}

func TestShutdownIdempotent(t *testing.T) {
	e := New(2)
	var n atomic.Int64
	for i := 0; i < 100; i++ {
		e.SubmitFunc(func(Context) { n.Add(1) })
	}
	waitCounter(t, &n, 100)
	e.Shutdown()
	e.Shutdown() // second call must not hang or panic
}

func TestManyProducers(t *testing.T) {
	e := New(4)
	defer e.Shutdown()
	var n atomic.Int64
	var wg sync.WaitGroup
	const producers = 8
	const each = 2000
	for p := 0; p < producers; p++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < each; i++ {
				e.SubmitFunc(func(Context) { n.Add(1) })
			}
		}()
	}
	wg.Wait()
	waitCounter(t, &n, producers*each)
}

func TestStealingHappens(t *testing.T) {
	// One blocked producer fans out two children that rendezvous with
	// each other: they can only complete by running concurrently on two
	// different workers, both of which must have stolen from the
	// producer's local queue.
	e := New(4, WithSeed(42))
	defer e.Shutdown()
	var n atomic.Int64
	workers := make(map[int]bool)
	var mu sync.Mutex
	block := make(chan struct{})
	chA, chB := make(chan struct{}), make(chan struct{})
	e.SubmitFunc(func(ctx Context) {
		ctx.Submit(NewTask(func(c Context) {
			mu.Lock()
			workers[c.WorkerID()] = true
			mu.Unlock()
			close(chA)
			<-chB
			n.Add(1)
		}))
		ctx.Submit(NewTask(func(c Context) {
			mu.Lock()
			workers[c.WorkerID()] = true
			mu.Unlock()
			close(chB)
			<-chA
			n.Add(1)
		}))
		<-block // keep the producer busy so others must steal
	})
	waitCounter(t, &n, 2)
	close(block)
	mu.Lock()
	defer mu.Unlock()
	if len(workers) < 2 {
		t.Fatalf("rendezvous children ran on %d distinct workers", len(workers))
	}
}

type countingObserver struct {
	starts atomic.Int64
	ends   atomic.Int64
}

func (o *countingObserver) OnTaskStart(int, TaskMeta) { o.starts.Add(1) }
func (o *countingObserver) OnTaskEnd(int, TaskMeta)   { o.ends.Add(1) }

func TestObserver(t *testing.T) {
	obs := &countingObserver{}
	e := New(2, WithObserver(obs))
	defer e.Shutdown()
	var n atomic.Int64
	for i := 0; i < 50; i++ {
		e.SubmitFunc(func(Context) { n.Add(1) })
	}
	waitCounter(t, &n, 50)
	waitCounter(t, &obs.ends, 50)
	if obs.starts.Load() != 50 {
		t.Fatalf("observer starts = %d, want 50", obs.starts.Load())
	}
}

func TestBusyWorkers(t *testing.T) {
	e := New(2, WithBusyTracking())
	defer e.Shutdown()
	release := make(chan struct{})
	started := make(chan struct{}, 2)
	for i := 0; i < 2; i++ {
		e.SubmitFunc(func(Context) {
			started <- struct{}{}
			<-release
		})
	}
	<-started
	<-started
	if got := e.BusyWorkers(); got != 2 {
		t.Fatalf("BusyWorkers() = %d, want 2", got)
	}
	close(release)
}

func TestIdleWakeupLatency(t *testing.T) {
	// After a quiet period (workers parked), a new submission must still run.
	e := New(4)
	defer e.Shutdown()
	var n atomic.Int64
	e.SubmitFunc(func(Context) { n.Add(1) })
	waitCounter(t, &n, 1)
	time.Sleep(50 * time.Millisecond) // let workers park
	for i := 0; i < 10; i++ {
		e.SubmitFunc(func(Context) { n.Add(1) })
		waitCounter(t, &n, int64(2+i))
	}
}

// parkAll waits until all workers of e are parked on the idlers list.
func parkAll(t *testing.T, e *Executor) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for int(e.idlerCount.Load()) != e.NumWorkers() {
		if time.Now().After(deadline) {
			t.Fatalf("only %d/%d workers parked (timeout)", e.idlerCount.Load(), e.NumWorkers())
		}
		time.Sleep(100 * time.Microsecond)
	}
}

// wakeUpTo must wake exactly min(n, parked) workers — no over-waking.
func TestWakeUpToExact(t *testing.T) {
	e := New(4, WithWakeProbability(0), WithSpin(0))
	defer e.Shutdown()
	parkAll(t, e)

	// More parked workers than the request: wake exactly n.
	if woke := e.wakeUpTo(2); woke != 2 {
		t.Fatalf("wakeUpTo(2) woke %d with 4 parked, want 2", woke)
	}
	// Fewer parked workers than the request: wake only what exists. The
	// two woken workers find no work and re-park eventually, so bound the
	// remaining count instead of racing them.
	if woke := e.wakeUpTo(100); woke > 4 {
		t.Fatalf("wakeUpTo(100) woke %d, want <= 4", woke)
	}
	if woke := e.wakeUpTo(0); woke != 0 {
		t.Fatalf("wakeUpTo(0) woke %d, want 0", woke)
	}
}

// SubmitBatch must not attempt more wakes than there are parked workers:
// with zero idlers the batch publication is the only cost.
func TestSubmitBatchNoIdlersNoWake(t *testing.T) {
	e := New(2, WithWakeProbability(0))
	defer e.Shutdown()
	// Occupy both workers so the idlers list is empty.
	release := make(chan struct{})
	started := make(chan struct{}, 2)
	for i := 0; i < 2; i++ {
		e.SubmitFunc(func(Context) {
			started <- struct{}{}
			<-release
		})
	}
	<-started
	<-started
	if got := e.wakeUpTo(100); got != 0 {
		t.Fatalf("wakeUpTo with no idlers woke %d, want 0", got)
	}
	var n atomic.Int64
	batch := make([]*Runnable, 50)
	for i := range batch {
		batch[i] = NewTask(func(Context) { n.Add(1) })
	}
	e.SubmitBatch(batch) // must not block or spin on failed wakes
	close(release)
	waitCounter(t, &n, 50)
}

// The injection queue must recycle its storage: a million-task
// submit/drain cycle with a bounded backlog must keep the ring capacity
// bounded (the old append/re-slice queue kept growing its backing array
// and retained popped elements until the next re-allocation).
func TestInjectionCapacityBounded(t *testing.T) {
	if testing.Short() {
		t.Skip("1M-task soak")
	}
	e := New(1)
	defer e.Shutdown()
	const total = 1_000_000
	const window = 1024
	var done atomic.Int64
	r := NewTask(func(Context) { done.Add(1) })
	for i := 0; i < total; i++ {
		e.Submit(r)
		// Throttle the producer so the backlog stays within one window —
		// the steady-state shape of a long-running service.
		if backlog := int64(i+1) - done.Load(); backlog > window {
			for int64(i+1)-done.Load() > window/2 {
				time.Sleep(10 * time.Microsecond)
			}
		}
	}
	waitCounter(t, &done, total)
	if c := e.injCap(); c > 8*window {
		t.Fatalf("injection ring capacity = %d after %d tasks with backlog <= %d, want bounded", c, total, window)
	}
}

// A burst grows the ring; draining it shrinks it back toward the floor.
func TestInjectionShrinksAfterBurst(t *testing.T) {
	e := New(1)
	defer e.Shutdown()
	// Pin the only worker inside a task so the burst piles up in the
	// injection ring instead of draining as it is produced.
	gate := make(chan struct{})
	started := make(chan struct{})
	e.SubmitFunc(func(Context) { close(started); <-gate })
	<-started

	const burst = 1 << 15
	var done atomic.Int64
	r := NewTask(func(Context) { done.Add(1) })
	rs := make([]*Runnable, burst)
	for i := range rs {
		rs[i] = r
	}
	e.SubmitBatch(rs)
	if c := e.injCap(); c < burst {
		t.Fatalf("injection ring capacity = %d after burst of %d", c, burst)
	}
	close(gate)
	waitCounter(t, &done, burst)
	if c := e.injCap(); c > injShrinkCap {
		t.Fatalf("injection ring capacity = %d after drain, want <= %d", c, injShrinkCap)
	}
}

// Steady-state execution of pre-built tasks must not allocate: an intrusive
// task resubmitting itself through the local deque, measured end to end.
func TestIntrusiveResubmitZeroAlloc(t *testing.T) {
	e := New(1, WithWakeProbability(0))
	defer e.Shutdown()
	done := make(chan struct{})
	var rounds int
	task := newIntrusive(func(ctx Context, task *intrusiveTask) {
		rounds--
		if rounds <= 0 {
			done <- struct{}{}
			return
		}
		ctx.Submit(&task.self)
	})
	run := func() {
		rounds = 10000
		e.Submit(&task.self)
		<-done
	}
	run() // warm up (queues grow, worker parks settle)
	allocs := testing.AllocsPerRun(10, run)
	// Each measured run performs 10000 scheduling round trips. Allow the
	// harness a few stray allocations (timer goroutines etc.) but fail if
	// the scheduler allocates per task.
	if allocs > 10 {
		t.Fatalf("steady-state resubmit allocates %v objects per 10000 tasks, want ~0", allocs)
	}
}

func BenchmarkSubmitThroughput(b *testing.B) {
	e := New(0)
	defer e.Shutdown()
	var n atomic.Int64
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.SubmitFunc(func(Context) { n.Add(1) })
	}
	for n.Load() != int64(b.N) {
		time.Sleep(10 * time.Microsecond)
	}
}

func BenchmarkLinearChainCached(b *testing.B) {
	e := New(0)
	defer e.Shutdown()
	done := make(chan struct{})
	remaining := 0
	task := newIntrusive(func(ctx Context, task *intrusiveTask) {
		remaining--
		if remaining <= 0 {
			done <- struct{}{}
			return
		}
		ctx.SubmitCached(&task.self)
	})
	b.ReportAllocs()
	b.ResetTimer()
	remaining = b.N
	e.Submit(&task.self)
	<-done
}

package executor

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// waitCounter blocks until the counter reaches want or the timeout expires.
func waitCounter(t *testing.T, c *atomic.Int64, want int64) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for c.Load() != want {
		if time.Now().After(deadline) {
			t.Fatalf("counter = %d, want %d (timeout)", c.Load(), want)
		}
		time.Sleep(100 * time.Microsecond)
	}
}

func TestSubmitRunsAllTasks(t *testing.T) {
	e := New(4)
	defer e.Shutdown()
	var n atomic.Int64
	const total = 10000
	for i := 0; i < total; i++ {
		e.Submit(func(Context) { n.Add(1) })
	}
	waitCounter(t, &n, total)
}

func TestSubmitBatch(t *testing.T) {
	e := New(3)
	defer e.Shutdown()
	var n atomic.Int64
	tasks := make([]Task, 500)
	for i := range tasks {
		tasks[i] = func(Context) { n.Add(1) }
	}
	e.SubmitBatch(tasks)
	waitCounter(t, &n, 500)
}

func TestSubmitBatchEmpty(t *testing.T) {
	e := New(1)
	defer e.Shutdown()
	e.SubmitBatch(nil) // must not panic or wake anything
}

func TestNestedSubmitFromTask(t *testing.T) {
	e := New(4)
	defer e.Shutdown()
	var n atomic.Int64
	var spawn func(depth int) Task
	spawn = func(depth int) Task {
		return func(ctx Context) {
			n.Add(1)
			if depth > 0 {
				ctx.Submit(spawn(depth - 1))
				ctx.Submit(spawn(depth - 1))
			}
		}
	}
	e.Submit(spawn(10)) // 2^11 - 1 tasks
	waitCounter(t, &n, 1<<11-1)
}

func TestSubmitCachedLinearChain(t *testing.T) {
	e := New(2)
	defer e.Shutdown()
	var n atomic.Int64
	var order []int
	var mu sync.Mutex
	var link func(i int) Task
	link = func(i int) Task {
		return func(ctx Context) {
			mu.Lock()
			order = append(order, i)
			mu.Unlock()
			n.Add(1)
			if i < 99 {
				ctx.SubmitCached(link(i + 1))
			}
		}
	}
	e.Submit(link(0))
	waitCounter(t, &n, 100)
	mu.Lock()
	defer mu.Unlock()
	for i, v := range order {
		if v != i {
			t.Fatalf("order[%d] = %d; cached chain must run in order", i, v)
		}
	}
}

func TestSubmitCachedFallsBackWhenOccupied(t *testing.T) {
	e := New(1)
	defer e.Shutdown()
	var n atomic.Int64
	e.Submit(func(ctx Context) {
		ctx.SubmitCached(func(Context) { n.Add(1) })
		ctx.SubmitCached(func(Context) { n.Add(1) }) // slot taken -> queued
		ctx.SubmitCached(func(Context) { n.Add(1) })
	})
	waitCounter(t, &n, 3)
}

func TestWorkerID(t *testing.T) {
	e := New(3)
	defer e.Shutdown()
	seen := make(chan int, 100)
	for i := 0; i < 100; i++ {
		e.Submit(func(ctx Context) {
			if ctx.Executor() != e {
				t.Error("ctx.Executor() mismatch")
			}
			seen <- ctx.WorkerID()
		})
	}
	for i := 0; i < 100; i++ {
		id := <-seen
		if id < 0 || id >= 3 {
			t.Fatalf("WorkerID() = %d, want in [0,3)", id)
		}
	}
}

func TestNumWorkersDefault(t *testing.T) {
	e := New(0)
	defer e.Shutdown()
	if e.NumWorkers() < 1 {
		t.Fatalf("NumWorkers() = %d, want >= 1", e.NumWorkers())
	}
	e2 := New(7)
	defer e2.Shutdown()
	if e2.NumWorkers() != 7 {
		t.Fatalf("NumWorkers() = %d, want 7", e2.NumWorkers())
	}
}

func TestShutdownIdempotent(t *testing.T) {
	e := New(2)
	var n atomic.Int64
	for i := 0; i < 100; i++ {
		e.Submit(func(Context) { n.Add(1) })
	}
	waitCounter(t, &n, 100)
	e.Shutdown()
	e.Shutdown() // second call must not hang or panic
}

func TestManyProducers(t *testing.T) {
	e := New(4)
	defer e.Shutdown()
	var n atomic.Int64
	var wg sync.WaitGroup
	const producers = 8
	const each = 2000
	for p := 0; p < producers; p++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < each; i++ {
				e.Submit(func(Context) { n.Add(1) })
			}
		}()
	}
	wg.Wait()
	waitCounter(t, &n, producers*each)
}

func TestStealingHappens(t *testing.T) {
	// One blocked producer fans out two children that rendezvous with
	// each other: they can only complete by running concurrently on two
	// different workers, both of which must have stolen from the
	// producer's local queue.
	e := New(4, WithSeed(42))
	defer e.Shutdown()
	var n atomic.Int64
	workers := make(map[int]bool)
	var mu sync.Mutex
	block := make(chan struct{})
	chA, chB := make(chan struct{}), make(chan struct{})
	e.Submit(func(ctx Context) {
		ctx.Submit(func(c Context) {
			mu.Lock()
			workers[c.WorkerID()] = true
			mu.Unlock()
			close(chA)
			<-chB
			n.Add(1)
		})
		ctx.Submit(func(c Context) {
			mu.Lock()
			workers[c.WorkerID()] = true
			mu.Unlock()
			close(chB)
			<-chA
			n.Add(1)
		})
		<-block // keep the producer busy so others must steal
	})
	waitCounter(t, &n, 2)
	close(block)
	mu.Lock()
	defer mu.Unlock()
	if len(workers) < 2 {
		t.Fatalf("rendezvous children ran on %d distinct workers", len(workers))
	}
}

type countingObserver struct {
	starts atomic.Int64
	ends   atomic.Int64
}

func (o *countingObserver) OnTaskStart(int) { o.starts.Add(1) }
func (o *countingObserver) OnTaskEnd(int)   { o.ends.Add(1) }

func TestObserver(t *testing.T) {
	obs := &countingObserver{}
	e := New(2, WithObserver(obs))
	defer e.Shutdown()
	var n atomic.Int64
	for i := 0; i < 50; i++ {
		e.Submit(func(Context) { n.Add(1) })
	}
	waitCounter(t, &n, 50)
	waitCounter(t, &obs.ends, 50)
	if obs.starts.Load() != 50 {
		t.Fatalf("observer starts = %d, want 50", obs.starts.Load())
	}
}

func TestBusyWorkers(t *testing.T) {
	e := New(2, WithBusyTracking())
	defer e.Shutdown()
	release := make(chan struct{})
	started := make(chan struct{}, 2)
	for i := 0; i < 2; i++ {
		e.Submit(func(Context) {
			started <- struct{}{}
			<-release
		})
	}
	<-started
	<-started
	if got := e.BusyWorkers(); got != 2 {
		t.Fatalf("BusyWorkers() = %d, want 2", got)
	}
	close(release)
}

func TestIdleWakeupLatency(t *testing.T) {
	// After a quiet period (workers parked), a new submission must still run.
	e := New(4)
	defer e.Shutdown()
	var n atomic.Int64
	e.Submit(func(Context) { n.Add(1) })
	waitCounter(t, &n, 1)
	time.Sleep(50 * time.Millisecond) // let workers park
	for i := 0; i < 10; i++ {
		e.Submit(func(Context) { n.Add(1) })
		waitCounter(t, &n, int64(2+i))
	}
}

func BenchmarkSubmitThroughput(b *testing.B) {
	e := New(0)
	defer e.Shutdown()
	var n atomic.Int64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.Submit(func(Context) { n.Add(1) })
	}
	for n.Load() != int64(b.N) {
		time.Sleep(10 * time.Microsecond)
	}
}

func BenchmarkLinearChainCached(b *testing.B) {
	e := New(0)
	defer e.Shutdown()
	done := make(chan struct{})
	var link func(i int) Task
	link = func(i int) Task {
		return func(ctx Context) {
			if i == 0 {
				done <- struct{}{}
				return
			}
			ctx.SubmitCached(link(i - 1))
		}
	}
	b.ResetTimer()
	e.Submit(link(b.N))
	<-done
}

package executor

import (
	"errors"
	"strings"
	"sync/atomic"
	"testing"
)

func TestSubmitAfterShutdownReturnsErrShutdown(t *testing.T) {
	e := New(2)
	e.Shutdown()
	if !e.Stopped() {
		t.Fatal("Stopped() = false after Shutdown")
	}
	if err := e.Submit(NewTask(func(Context) {})); !errors.Is(err, ErrShutdown) {
		t.Fatalf("Submit after Shutdown = %v, want ErrShutdown", err)
	}
	if err := e.SubmitFunc(func(Context) {}); !errors.Is(err, ErrShutdown) {
		t.Fatalf("SubmitFunc after Shutdown = %v, want ErrShutdown", err)
	}
	batch := []*Runnable{NewTask(func(Context) {}), NewTask(func(Context) {})}
	if err := e.SubmitBatch(batch); !errors.Is(err, ErrShutdown) {
		t.Fatalf("SubmitBatch after Shutdown = %v, want ErrShutdown", err)
	}
}

func TestPanicContainedAndRecorded(t *testing.T) {
	e := New(2)
	var n atomic.Int64
	e.SubmitFunc(func(Context) { panic("task exploded") })
	// The pool survives the panic: later tasks still run.
	for i := 0; i < 100; i++ {
		e.SubmitFunc(func(Context) { n.Add(1) })
	}
	waitCounter(t, &n, 100)
	e.Shutdown()
	err := e.PanicError()
	if err == nil || !strings.Contains(err.Error(), "task exploded") {
		t.Fatalf("PanicError() = %v, want recorded panic", err)
	}
	if !strings.Contains(err.Error(), "worker") {
		t.Fatalf("PanicError() = %v, want the worker identified", err)
	}
}

func TestPanicHandlerOverridesRecording(t *testing.T) {
	var got atomic.Value
	e := New(2, WithPanicHandler(func(worker int, recovered any) {
		got.Store(recovered)
	}))
	var n atomic.Int64
	e.SubmitFunc(func(Context) { panic("routed") })
	e.SubmitFunc(func(Context) { n.Add(1) })
	waitCounter(t, &n, 1)
	e.Shutdown()
	if got.Load() != "routed" {
		t.Fatalf("handler saw %v, want the panic value", got.Load())
	}
	if err := e.PanicError(); err != nil {
		t.Fatalf("PanicError() = %v, want nil when a handler is installed", err)
	}
}

func TestPanicRecordingIsBounded(t *testing.T) {
	e := New(4)
	var n atomic.Int64
	for i := 0; i < maxRecordedPanics+50; i++ {
		e.SubmitFunc(func(Context) { defer n.Add(1); panic("again") })
	}
	waitCounter(t, &n, maxRecordedPanics+50)
	e.Shutdown()
	e.panicMu.Lock()
	recorded := len(e.panics)
	e.panicMu.Unlock()
	if recorded != maxRecordedPanics {
		t.Fatalf("recorded %d panics, want capped at %d", recorded, maxRecordedPanics)
	}
}

package executor

// Event-level execution tracing: the recording half of the TFProf-style
// profiler (the Taskflow follow-up system's timeline view). Where
// metrics.go answers "how many" (aggregate counters), this file answers
// "when, where and why": every task span and scheduler lifecycle event —
// steal, park/unpark, precise vs. probabilistic wake, injection traffic,
// retry arm/fire, cancellation skips, subflow spawn/join, dependency
// release — is timestamped into a per-worker ring buffer, and
// internal/tracing renders the merged stream as a Chrome trace-event JSON
// timeline (Perfetto).
//
// Design rules, mirroring metrics.go:
//
//   - Provably zero cost when disabled. Tracing exists only when the
//     executor was built WithTracing; every instrumentation point is one
//     nil check on the executor's tracer pointer.
//
//   - Lock-free on the hot path when enabled. Each worker owns a
//     fixed-capacity event ring written only by that worker: a record is
//     one atomic flag load, one monotonic clock read, one slot write and
//     one atomic length publication. No mutex, no allocation. Events from
//     non-worker goroutines (external submissions, retry timers,
//     cancellation) go to a mutex-guarded overflow ring — a cold path by
//     construction.
//
//   - Bounded. A full ring drops new events (drop-newest) and counts the
//     drops; capture cost is capped by capacity, never by run length.
//
// Start/StopTrace may be called while workers run. Each capture allocates
// fresh rings and publishes them atomically, so a racing in-flight record
// lands either in the old capture (lost, at most one event per worker) or
// the new one — never in a torn ring.

import (
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// EventKind enumerates the traced scheduler and task lifecycle events.
type EventKind uint8

const (
	// EvTaskStart/EvTaskEnd bracket one task-body execution on a worker;
	// the exporter pairs them into named "X" spans.
	EvTaskStart EventKind = iota
	EvTaskEnd
	// EvSteal records a successful steal by this worker (Arg = victim id).
	EvSteal
	// EvInjectDrain records a drain from an external injection shard
	// (Arg packs the shard index and task count; see InjectArg).
	EvInjectDrain
	// EvInjectPush records an external submission (Arg packs the shard
	// index and batch size; see InjectArg).
	EvInjectPush
	// EvPark/EvUnpark bracket a worker blocking on the eventcount notifier
	// (Arg = the worker's park-cycle epoch, so a timeline shows which park
	// a wake resolved).
	EvPark
	EvUnpark
	// EvWakePrecise records wakeups issued because new work arrived
	// (Arg = workers woken); EvWakeProb records the 1/wakeDen
	// load-balancing wake (Algorithm 1 lines 26-28).
	EvWakePrecise
	EvWakeProb
	// EvQueueGrow records a deque ring reallocation (Arg = new capacity).
	EvQueueGrow
	// EvDepRelease records the dependency edge that made a task ready:
	// Meta identifies the finishing (releasing) task, Arg is the released
	// task's unique ID. The exporter draws these as flow arrows.
	EvDepRelease
	// EvRetryArm records a failed execution scheduling a backoff retry
	// (Arg = attempt number); EvRetryFire records the timer resubmitting it.
	EvRetryArm
	EvRetryFire
	// EvSkip records a task body skipped by cooperative cancellation while
	// the dependency structure drained.
	EvSkip
	// EvCancel records the cancellation of a topology (fail-fast, Cancel,
	// or deadline).
	EvCancel
	// EvSubflowSpawn records a dynamic task spawning a child graph
	// (Arg = number of spawned tasks); EvSubflowJoin records a joined
	// subflow draining back into its parent.
	EvSubflowSpawn
	EvSubflowJoin
	// EvStealBatch records a batch steal moving more than one task in a
	// single sweep (Arg = number of tasks moved, ≥ 2): the first ran on the
	// thief, the rest landed on its deque. It follows the EvSteal event that
	// names the victim.
	EvStealBatch

	numEventKinds
)

var eventKindNames = [numEventKinds]string{
	EvTaskStart:    "task_start",
	EvTaskEnd:      "task_end",
	EvSteal:        "steal",
	EvInjectDrain:  "inject_drain",
	EvInjectPush:   "inject_push",
	EvPark:         "park",
	EvUnpark:       "unpark",
	EvWakePrecise:  "wake_precise",
	EvWakeProb:     "wake_prob",
	EvQueueGrow:    "queue_grow",
	EvDepRelease:   "dep_release",
	EvRetryArm:     "retry_arm",
	EvRetryFire:    "retry_fire",
	EvSkip:         "skip",
	EvCancel:       "cancel",
	EvSubflowSpawn: "subflow_spawn",
	EvSubflowJoin:  "subflow_join",
	EvStealBatch:   "steal_batch",
}

// String returns the stable lowercase name of the kind, used verbatim in
// the exported Chrome trace.
func (k EventKind) String() string {
	if int(k) < len(eventKindNames) {
		return eventKindNames[k]
	}
	return "unknown"
}

// injectArgShardShift packs the injection shard index into the top byte of
// an EvInjectPush/EvInjectDrain arg; the low 56 bits carry the task count.
const injectArgShardShift = 56

// InjectArg packs an injection shard index and task count into one trace
// event arg (shard in the top byte, count below). The exporters decode it
// with InjectArgShard/InjectArgCount so Perfetto shows which shard a push
// landed on and which shard woke a worker.
func InjectArg(shard int, count uint64) uint64 {
	return uint64(shard)<<injectArgShardShift | count&(uint64(1)<<injectArgShardShift-1)
}

// InjectArgShard extracts the shard index from a packed injection arg.
func InjectArgShard(arg uint64) int { return int(arg >> injectArgShardShift) }

// InjectArgCount extracts the task count from a packed injection arg.
func InjectArgCount(arg uint64) uint64 { return arg & (uint64(1)<<injectArgShardShift - 1) }

// TaskMeta identifies a task for observers and trace events. Producing a
// TaskMeta copies two string headers and three integers — no allocation —
// so carrying identity through the hot path is free of garbage.
type TaskMeta struct {
	// Flow is the owning taskflow/topology display name ("" if unnamed).
	Flow string
	// Name is the task display name ("" if unnamed; renderers fall back
	// to a positional name derived from Idx, matching the DOT dump).
	Name string
	// ID is a unique task identity (stable across runs), used to match
	// dependency-release events to the spans they released.
	ID uint64
	// Idx is the task's emplacement index within its graph — the basis of
	// the positional fallback name.
	Idx int32
	// Gen is the run generation of a reusable topology (0 for one-shot
	// dispatches), distinguishing spans of successive Run calls.
	Gen uint64
}

// Described is implemented by Runnables that can identify themselves —
// graph nodes do. Anonymous tasks (NewTask, SubmitFunc) trace with a zero
// TaskMeta.
type Described interface {
	Describe() TaskMeta
}

// taskMetaOf extracts the task identity, if the task offers one.
func taskMetaOf(r *Runnable) TaskMeta {
	if d, ok := (*r).(Described); ok {
		return d.Describe()
	}
	return TaskMeta{}
}

// TraceEvent is one recorded event. Worker is the recording worker's index,
// or ExternalWorker for events from outside the pool (external submissions,
// retry timers, cancellation).
type TraceEvent struct {
	Ts     time.Duration // offset from the capture epoch
	Worker int32
	Kind   EventKind
	Arg    uint64
	Meta   TaskMeta
}

// ExternalWorker is the Worker value of events recorded outside the pool.
const ExternalWorker int32 = -1

// Trace is the result of one capture: the merged, time-ordered event
// stream of every ring.
type Trace struct {
	// Epoch is the wall-clock instant of StartTrace; event timestamps are
	// offsets from it.
	Epoch time.Time
	// Events is the merged stream, sorted by Ts.
	Events []TraceEvent
	// Dropped counts events lost to full rings (drop-newest policy).
	Dropped uint64
	// Workers is the executor's worker count at capture time.
	Workers int
}

// traceRing is one fixed-capacity event buffer. The writer (its owning
// worker, or the external mutex holder) writes the slot first and then
// publishes it with an atomic store of n, so a reader that loads n sees
// fully written slots — no seqlock needed because slots are never
// overwritten (drop-newest).
type traceRing struct {
	buf     []TraceEvent
	n       atomic.Int64
	dropped atomic.Uint64
}

func (r *traceRing) record(ev TraceEvent) {
	i := r.n.Load()
	if i >= int64(len(r.buf)) {
		r.dropped.Add(1)
		return
	}
	r.buf[i] = ev
	r.n.Store(i + 1)
}

// capture is the storage of one Start/StopTrace window. Fresh per capture
// so a control goroutine never resets storage a worker may be writing.
type capture struct {
	epoch time.Time
	// rings[i] belongs to worker i; rings[len-1] is the external ring,
	// serialized by extMu.
	rings []traceRing
	extMu sync.Mutex
}

// tracerState exists iff the executor was built WithTracing.
type tracerState struct {
	capacity int
	active   atomic.Bool
	cur      atomic.Pointer[capture]
}

// defaultTraceCapacity is the per-ring event budget when WithTracing is
// given a non-positive capacity: 16K events ≈ 1.3 MiB per worker.
const defaultTraceCapacity = 1 << 14

// WithTracing enables event-level tracing with the given per-worker ring
// capacity (<= 0 selects the default). Tracing is armed but idle until
// StartTrace; the idle cost per instrumentation point is one atomic flag
// load, and executors built without this option pay only a nil check.
func WithTracing(capacity int) Option {
	if capacity <= 0 {
		capacity = defaultTraceCapacity
	}
	return func(e *Executor) { e.tracer = &tracerState{capacity: capacity} }
}

// TracingEnabled reports whether the executor was built WithTracing.
func (e *Executor) TracingEnabled() bool { return e.tracer != nil }

// TraceActive reports whether a capture is currently recording.
func (e *Executor) TraceActive() bool {
	t := e.tracer
	return t != nil && t.active.Load()
}

// StartTrace begins a capture: fresh rings, epoch now. It returns false
// when the executor was built without WithTracing or a capture is already
// active. Safe to call while workers run.
func (e *Executor) StartTrace() bool {
	t := e.tracer
	if t == nil || t.active.Load() {
		return false
	}
	c := &capture{
		epoch: time.Now(),
		rings: make([]traceRing, len(e.workers)+1),
	}
	for i := range c.rings {
		c.rings[i].buf = make([]TraceEvent, t.capacity)
	}
	t.cur.Store(c)
	t.active.Store(true)
	return true
}

// StopTrace ends the capture and returns the merged, time-ordered event
// stream. ok is false when tracing was not built in or no capture was
// started. Records racing with StopTrace may lose at most one event per
// worker; events already published are never torn.
func (e *Executor) StopTrace() (Trace, bool) {
	t := e.tracer
	if t == nil {
		return Trace{}, false
	}
	t.active.Store(false)
	c := t.cur.Load()
	if c == nil {
		return Trace{}, false
	}
	tr := Trace{Epoch: c.epoch, Workers: len(e.workers)}
	for i := range c.rings {
		r := &c.rings[i]
		n := r.n.Load()
		tr.Events = append(tr.Events, r.buf[:n]...)
		tr.Dropped += r.dropped.Load()
	}
	sort.SliceStable(tr.Events, func(i, j int) bool {
		return tr.Events[i].Ts < tr.Events[j].Ts
	})
	return tr, true
}

// record appends one event to the worker's ring (ExternalWorker goes to
// the mutex-guarded external ring). Callers must have checked TraceActive;
// record re-reads the capture pointer so a concurrent Stop/Start at worst
// misroutes one event into an orphaned ring.
func (t *tracerState) record(worker int32, kind EventKind, meta TaskMeta, arg uint64) {
	c := t.cur.Load()
	if c == nil {
		return
	}
	ev := TraceEvent{
		Ts:     time.Since(c.epoch),
		Worker: worker,
		Kind:   kind,
		Arg:    arg,
		Meta:   meta,
	}
	if worker >= 0 && int(worker) < len(c.rings)-1 {
		c.rings[worker].record(ev)
		return
	}
	ev.Worker = ExternalWorker
	c.extMu.Lock()
	c.rings[len(c.rings)-1].record(ev)
	c.extMu.Unlock()
}

// TraceExternal records an event from outside the worker pool (retry
// timers, cancellation, submission goroutines). It feeds both recorders:
// the capture tracer when one is active, and the flight recorder
// (flight.go) whenever it is armed.
func (e *Executor) TraceExternal(kind EventKind, meta TaskMeta, arg uint64) {
	if t := e.tracer; t != nil && t.active.Load() {
		t.record(ExternalWorker, kind, meta, arg)
	}
	if f := e.flight; f != nil {
		f.record(ExternalWorker, kind, meta, arg)
	}
}

// Tracing implements Context: it reports whether any recorder wants
// events — a capture is active, or the flight recorder is armed (it
// always is, when built in). This is the cheap guard tasks use before
// building a TaskMeta for Trace.
func (w *worker) Tracing() bool {
	if w.exec.flight != nil {
		return true
	}
	t := w.exec.tracer
	return t != nil && t.active.Load()
}

// Trace implements Context: record an event attributed to this worker
// into every recorder that wants it.
func (w *worker) Trace(kind EventKind, meta TaskMeta, arg uint64) {
	e := w.exec
	if t := e.tracer; t != nil && t.active.Load() {
		t.record(int32(w.id), kind, meta, arg)
	}
	if f := e.flight; f != nil {
		f.record(int32(w.id), kind, meta, arg)
	}
}

// traceEvent is the executor-internal emission helper for events with no
// task identity (scheduler lifecycle).
func (w *worker) traceEvent(kind EventKind, arg uint64) {
	e := w.exec
	if t := e.tracer; t != nil && t.active.Load() {
		t.record(int32(w.id), kind, TaskMeta{}, arg)
	}
	if f := e.flight; f != nil {
		f.record(int32(w.id), kind, TaskMeta{}, arg)
	}
}

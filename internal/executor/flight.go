package executor

// Flight recorder: a continuously-armed, bounded black box built on the
// same per-worker event rings as trace.go. Where Start/StopTrace is a
// capture session — you must have known in advance that something
// interesting was about to happen — the flight recorder never stops
// recording: each worker writes into a fixed-capacity wrapping ring
// (drop-OLDEST, unlike the capture rings' drop-newest), so at any moment
// a snapshot yields the last ~capacity scheduler decisions per worker.
// That is the dump the stall watchdog (watchdog.go) attaches to its
// report: "what was the scheduler doing just before it stalled", with no
// pre-arranged capture.
//
// Cost model: the recorder shares the trace instrumentation points
// (worker.Trace/traceEvent, Executor.TraceExternal), so an armed flight
// recorder pays the same per-event price as an active capture — one clock
// read, one mutexed slot write, no allocation — and
// executors built without WithFlightRecorder pay one nil check. Because
// it is always on, worker.Tracing() returns true when armed, which also
// makes internal/core emit its task/dependency events continuously.
//
// Snapshot protocol: unlike the capture rings (write-once slots,
// publish-by-counter), a wrapping ring REUSES slots, so a lock-free
// reader could observe a slot torn mid-overwrite. Each ring therefore
// carries its own mutex: record's critical section is one slot copy and
// a counter bump, and FlightSnapshot holds only one ring's lock at a
// time while copying that ring's window. A writer contends only when a
// snapshot of its own ring is in flight — rare, bounded by the copy of
// capacity slots — and accounting is exact: dropped is precisely the
// number of events the wrap overwrote.

import (
	"sort"
	"sync"
	"time"
)

// flightRing is one worker's wrapping event buffer. len(buf) is a power
// of two; slot i lives at buf[i&mask]. n is the total number of events
// ever written (monotonic). mu serializes slot writes against snapshot
// copies; it is effectively uncontended outside snapshots.
type flightRing struct {
	mu   sync.Mutex
	buf  []TraceEvent
	mask int64
	n    int64
}

func (r *flightRing) record(ev TraceEvent) {
	r.mu.Lock()
	r.buf[r.n&r.mask] = ev
	r.n++
	r.mu.Unlock()
}

// flightState exists iff the executor was built WithFlightRecorder.
type flightState struct {
	epoch time.Time
	// rings[i] belongs to worker i; rings[len-1] is the external ring
	// (external submissions, timers), serialized by its own ring mutex.
	rings []flightRing
}

func newFlightState(workers, capacity int) *flightState {
	f := &flightState{
		epoch: time.Now(),
		rings: make([]flightRing, workers+1),
	}
	for i := range f.rings {
		f.rings[i].buf = make([]TraceEvent, capacity)
		f.rings[i].mask = int64(capacity - 1)
	}
	return f
}

func (f *flightState) record(worker int32, kind EventKind, meta TaskMeta, arg uint64) {
	ev := TraceEvent{
		Ts:     time.Since(f.epoch),
		Worker: worker,
		Kind:   kind,
		Arg:    arg,
		Meta:   meta,
	}
	if worker >= 0 && int(worker) < len(f.rings)-1 {
		f.rings[worker].record(ev)
		return
	}
	ev.Worker = ExternalWorker
	f.rings[len(f.rings)-1].record(ev)
}

// defaultFlightCapacity is the per-ring event budget when
// WithFlightRecorder is given a non-positive capacity: 4K events per
// worker keeps the black box under ~350 KiB per worker while still
// holding seconds of steady-state scheduling.
const defaultFlightCapacity = 1 << 12

// WithFlightRecorder arms a continuously-recording bounded event ring of
// the given per-worker capacity (rounded up to a power of two; <= 0
// selects the default). Unlike WithTracing there is no Start/Stop: the
// recorder runs for the executor's whole lifetime, each ring wraps
// (keeping the newest events), and FlightSnapshot returns the recent
// window at any moment. Composes with WithTracing — a capture session
// and the black box record independently from the same instrumentation
// points.
func WithFlightRecorder(capacity int) Option {
	if capacity <= 0 {
		capacity = defaultFlightCapacity
	}
	// Round up to a power of two so the ring can index with a mask.
	c := 1
	for c < capacity {
		c <<= 1
	}
	return func(e *Executor) { e.flightCap = c }
}

// FlightEnabled reports whether the executor was built
// WithFlightRecorder.
func (e *Executor) FlightEnabled() bool { return e.flight != nil }

// FlightSnapshot copies the flight recorder's current contents into a
// merged, time-ordered Trace without stopping recording. ok is false when
// the executor was built without WithFlightRecorder. Trace.Dropped counts
// exactly the events overwritten by ring wrap-around, so Dropped > 0
// simply means the box has been running longer than its window —
// expected in steady state.
func (e *Executor) FlightSnapshot() (Trace, bool) {
	f := e.flight
	if f == nil {
		return Trace{}, false
	}
	tr := Trace{Epoch: f.epoch, Workers: len(e.workers)}
	for i := range f.rings {
		r := &f.rings[i]
		r.mu.Lock()
		lo := r.n - (r.mask + 1)
		if lo < 0 {
			lo = 0
		}
		for j := lo; j < r.n; j++ {
			tr.Events = append(tr.Events, r.buf[j&r.mask])
		}
		r.mu.Unlock()
		tr.Dropped += uint64(lo)
	}
	sort.SliceStable(tr.Events, func(i, j int) bool {
		return tr.Events[i].Ts < tr.Events[j].Ts
	})
	return tr, true
}

package executor

import (
	"testing"
	"time"
)

// TestLatencyBucketBoundaries pins the log-linear bucket scheme: octaves
// split in two, boundaries at 256, 384, 512, 768, 1024, ...
func TestLatencyBucketBoundaries(t *testing.T) {
	cases := []struct {
		v    int64
		want int
	}{
		{0, 0}, {1, 0}, {255, 0},
		{256, 1}, {300, 1}, {383, 1},
		{384, 2}, {400, 2}, {511, 2},
		{512, 3}, {767, 3},
		{768, 4}, {1000, 4}, {1023, 4},
		{1024, 5},
		{1 << 62, numLatencyBuckets - 1},
	}
	for _, c := range cases {
		if got := latencyBucketOf(c.v); got != c.want {
			t.Errorf("latencyBucketOf(%d) = %d, want %d", c.v, got, c.want)
		}
	}

	// The bounds table and the bucket function must agree: each bound is
	// the exclusive upper limit of its bucket.
	for i, b := range latencyBounds {
		if got := latencyBucketOf(b - 1); got != i {
			t.Fatalf("latencyBucketOf(bounds[%d]-1 = %d) = %d, want %d", i, b-1, got, i)
		}
		want := i + 1
		if want > numLatencyBuckets-1 {
			want = numLatencyBuckets - 1
		}
		if got := latencyBucketOf(b); got != want {
			t.Fatalf("latencyBucketOf(bounds[%d] = %d) = %d, want %d", i, b, got, want)
		}
		if i > 0 && b <= latencyBounds[i-1] {
			t.Fatalf("bounds not strictly increasing at %d: %d <= %d", i, b, latencyBounds[i-1])
		}
	}
	if got := len(LatencyBucketBounds()); got != numLatencyBuckets-1 {
		t.Fatalf("LatencyBucketBounds returned %d bounds, want %d", got, numLatencyBuckets-1)
	}
}

func TestLatencySnapshotMeanAndQuantile(t *testing.T) {
	h := newLatencyHist(1)
	for i := 0; i < 1000; i++ {
		h.record(0, 1000)
	}
	s := h.snapshot()
	if s.Count != 1000 || s.Sum != 1_000_000 {
		t.Fatalf("count=%d sum=%d, want 1000/1000000", s.Count, s.Sum)
	}
	if got := s.Mean(); got != 1000*time.Nanosecond {
		t.Fatalf("Mean = %v, want 1µs", got)
	}
	// 1000ns lands in bucket [768, 1024): every quantile must interpolate
	// inside that bucket.
	for _, q := range []float64{0.01, 0.5, 0.99} {
		got := s.Quantile(q)
		if got < 768 || got > 1024 {
			t.Fatalf("Quantile(%v) = %v, want within [768ns, 1024ns]", q, got)
		}
	}

	// A spread distribution must yield monotonically non-decreasing
	// quantiles bracketing the data.
	h2 := newLatencyHist(1)
	for i := int64(1); i <= 10000; i++ {
		h2.record(0, i*100) // 100ns .. 1ms
	}
	s2 := h2.snapshot()
	prev := time.Duration(-1)
	for _, q := range []float64{0, 0.1, 0.5, 0.9, 0.99, 0.999, 1} {
		got := s2.Quantile(q)
		if got < prev {
			t.Fatalf("Quantile(%v) = %v < previous %v", q, got, prev)
		}
		prev = got
	}
	if p50 := s2.Quantile(0.5); p50 < 250*time.Microsecond || p50 > 750*time.Microsecond {
		t.Fatalf("p50 of uniform [100ns, 1ms] = %v, want near 500µs", p50)
	}
	if s2.Quantile(0) == 0 && s2.Count > 0 {
		// Quantile(0) may legitimately interpolate to the bucket floor; the
		// empty case is what must return exactly 0.
		t.Log("Quantile(0) interpolated to bucket floor")
	}
	var empty LatencySnapshot
	if empty.Quantile(0.5) != 0 || empty.Mean() != 0 {
		t.Fatal("empty snapshot must report zero quantiles and mean")
	}
}

func TestLatencySnapshotMerge(t *testing.T) {
	a := newLatencyHist(2)
	a.record(0, 300)
	a.record(1, 300)
	b := newLatencyHist(1)
	b.record(0, 600)
	sa, sb := a.snapshot(), b.snapshot()
	sa.Merge(&sb)
	if sa.Count != 3 || sa.Sum != 1200 {
		t.Fatalf("merged count=%d sum=%d, want 3/1200", sa.Count, sa.Sum)
	}
	if sa.Counts[latencyBucketOf(300)] != 2 || sa.Counts[latencyBucketOf(600)] != 1 {
		t.Fatalf("merged bucket counts wrong: %v", sa.Counts[:8])
	}
}

// TestFlowLatencyRecordClamps pins the sink contract: out-of-range worker
// indices fall back to shard 0, negative timings clamp to zero, and
// end-to-end is derived as the sum.
func TestFlowLatencyRecordClamps(t *testing.T) {
	fl := newFlowLatency(2)
	fl.RecordLatency(-1, -10, 50)
	fl.RecordLatency(99, 100, 200)
	st := fl.stats()
	if st.QueueWait.Count != 2 || st.Exec.Count != 2 || st.EndToEnd.Count != 2 {
		t.Fatalf("counts = %d/%d/%d, want 2 each",
			st.QueueWait.Count, st.Exec.Count, st.EndToEnd.Count)
	}
	if st.QueueWait.Sum != 100 { // -10 clamped to 0
		t.Fatalf("queue-wait sum = %d, want 100", st.QueueWait.Sum)
	}
	if st.EndToEnd.Sum != 50+300 {
		t.Fatalf("end-to-end sum = %d, want 350", st.EndToEnd.Sum)
	}
}

// fakeFlow is a Flow implementation foreign to this executor.
type fakeFlow struct{ Flow }

func TestExecutorLatencySinks(t *testing.T) {
	e := New(2, WithLatencyHistograms())
	defer e.Shutdown()
	if !e.LatencyEnabled() {
		t.Fatal("LatencyEnabled = false despite WithLatencyHistograms")
	}

	def := e.LatencySink(nil)
	if def == nil {
		t.Fatal("nil default sink")
	}
	def.RecordLatency(0, 100, 200)

	f := e.NewFlow("tenant", FlowConfig{Class: Interactive, Weight: 2})
	fs := e.LatencySink(f)
	if fs == nil {
		t.Fatal("nil sink for registered flow")
	}
	fs.RecordLatency(1, 1000, 2000)
	fs.RecordLatency(1, 1000, 2000)

	if s := e.LatencySink(fakeFlow{}); s != nil {
		t.Fatal("foreign flow must yield a nil sink")
	}

	flows, ok := e.LatencyStats()
	if !ok {
		t.Fatal("LatencyStats not ok")
	}
	if len(flows) != 2 || !flows[0].Unbound || flows[0].Flow != "" {
		t.Fatalf("want [unbound, tenant], got %+v", flows)
	}
	if flows[0].EndToEnd.Count != 1 || flows[0].EndToEnd.Sum != 300 {
		t.Fatalf("unbound e2e = %d/%d, want 1/300", flows[0].EndToEnd.Count, flows[0].EndToEnd.Sum)
	}
	if flows[1].Flow != "tenant" || flows[1].Class != Interactive {
		t.Fatalf("flow row = %+v", flows[1])
	}
	if flows[1].EndToEnd.Count != 2 || flows[1].EndToEnd.Sum != 6000 {
		t.Fatalf("tenant e2e = %d/%d, want 2/6000", flows[1].EndToEnd.Count, flows[1].EndToEnd.Sum)
	}

	// Class aggregation merges flows of the class; other classes are empty.
	cl, ok := e.ClassLatency(Interactive)
	if !ok || cl.EndToEnd.Count != 2 {
		t.Fatalf("ClassLatency(Interactive) = %d (ok=%v), want 2", cl.EndToEnd.Count, ok)
	}
	if cl, _ := e.ClassLatency(Batch); cl.EndToEnd.Count != 0 {
		t.Fatal("ClassLatency(Batch) must be empty")
	}
}

func TestLatencyDisabledByDefault(t *testing.T) {
	e := New(1)
	defer e.Shutdown()
	if e.LatencyEnabled() {
		t.Fatal("LatencyEnabled without the option")
	}
	if s := e.LatencySink(nil); s != nil {
		t.Fatal("sink must be nil when disabled")
	}
	if _, ok := e.LatencyStats(); ok {
		t.Fatal("LatencyStats ok when disabled")
	}
	if _, ok := e.ClassLatency(Interactive); ok {
		t.Fatal("ClassLatency ok when disabled")
	}
}

// TestLatencyRecordZeroAlloc gates the record path: three shard-local
// atomic adds per dimension, no allocation. Runs under the CI alloc-gate
// job alongside the scheduler gates.
func TestLatencyRecordZeroAlloc(t *testing.T) {
	e := New(2, WithLatencyHistograms())
	defer e.Shutdown()
	sink := e.LatencySink(nil)
	if allocs := testing.AllocsPerRun(100, func() {
		sink.RecordLatency(1, 1234, 5678)
	}); allocs != 0 {
		t.Fatalf("RecordLatency allocates %v per op, want 0", allocs)
	}
}

package executor

// Contention benchmarks for the notifier and injection paths — the two
// structures that serialize at high core counts. Every benchmark runs
// across a GOMAXPROCS ladder (1/2/4/8/16) so the scaling knee, not just
// the single-core figure, is visible on any machine; `make bench-contention`
// runs the suite and BENCH_scheduler.json keeps the before/after medians.
//
// The four shapes:
//
//   - ThunderingHerd: all workers parked, one external batch of exactly
//     one task per worker — the all-park/all-wake pattern. Dominated by
//     the wake path (wakeUpTo popping every waiter) and the re-park path.
//
//   - EmptyStealStorm: a single self-resubmitting chain on a full pool.
//     Only one task exists at any instant, so every other worker loops
//     steal sweeps over empty deques, parks, and is woken again by the
//     chain's per-submit wakeOne — the notifier fast path under fire.
//
//   - CrossWorkerFanout: one source floods 8×workers tasks in a batch;
//     thieves spread them, the last finisher re-arms. Exercises wake
//     bursts plus batch stealing under real task traffic.
//
//   - InjectionFlood: GOMAXPROCS external producers submitting distinct
//     task objects as fast as they can while the pool drains — the
//     Pipeflow-style streaming shape that hammers the injection queue
//     lock (sharded per worker group after the eventcount PR).

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// contentionLadder is the worker/GOMAXPROCS ladder the suite runs at.
var contentionLadder = []int{1, 2, 4, 8, 16}

// ladderRun runs fn once per rung with GOMAXPROCS pinned to the rung's
// worker count, restoring the previous setting afterwards.
func ladderRun(b *testing.B, fn func(b *testing.B, w int)) {
	for _, w := range contentionLadder {
		b.Run(fmt.Sprintf("workers=%d", w), func(b *testing.B) {
			prev := runtime.GOMAXPROCS(w)
			defer runtime.GOMAXPROCS(prev)
			fn(b, w)
		})
	}
}

// livenessWatchdog re-issues wakeups every millisecond while work is
// visible. The pre-eventcount notifier could lose a wakeup outright when a
// producer's idler check raced a worker's check-then-park window (this
// suite deadlocked it reproducibly at workers=1), so the suite needs a
// rescue path to benchmark the "before" side at all. On the eventcount
// notifier the watchdog is one fast-path atomic load per tick — it only
// does work when a wakeup was actually lost, so it costs the measurements
// nothing and doubles as a liveness alarm if a future change reopens the
// window.
func livenessWatchdog(e *Executor) (stop func()) {
	done := make(chan struct{})
	go func() {
		t := time.NewTicker(time.Millisecond)
		defer t.Stop()
		for {
			select {
			case <-done:
				return
			case <-t.C:
				if e.anyWork() {
					e.wakeUpTo(e.NumWorkers())
				}
			}
		}
	}()
	return func() { close(done) }
}

// BenchmarkContentionThunderingHerd submits one task per worker as a
// single external batch and waits for all of them, with spinning disabled
// so every idle worker parks immediately: each iteration is one all-wake
// herd followed by an all-park stampede.
func BenchmarkContentionThunderingHerd(b *testing.B) {
	ladderRun(b, func(b *testing.B, w int) {
		e := New(w, WithSpin(0), WithWakeProbability(0))
		defer e.Shutdown()
		defer livenessWatchdog(e)()
		var remaining atomic.Int64
		done := make(chan struct{})
		tasks := make([]*Runnable, w)
		for i := range tasks {
			tasks[i] = NewTask(func(Context) {
				if remaining.Add(-1) == 0 {
					done <- struct{}{}
				}
			})
		}
		// Warm up: queues grow, workers settle into their park/wake loop.
		for i := 0; i < 3; i++ {
			remaining.Store(int64(w))
			if err := e.SubmitBatch(tasks); err != nil {
				b.Fatal(err)
			}
			<-done
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			remaining.Store(int64(w))
			if err := e.SubmitBatch(tasks); err != nil {
				b.Fatal(err)
			}
			<-done
		}
	})
}

// BenchmarkContentionEmptyStealStorm runs one self-resubmitting task chain
// through a full pool: every hop is one Submit (and its wakeOne attempt)
// while the other workers sweep empty deques, park and get woken. ns/op is
// the per-hop cost of the wake path under an empty-steal storm.
func BenchmarkContentionEmptyStealStorm(b *testing.B) {
	ladderRun(b, func(b *testing.B, w int) {
		e := New(w, WithWakeProbability(0))
		defer e.Shutdown()
		defer livenessWatchdog(e)()
		done := make(chan struct{})
		var remaining int64
		task := newIntrusive(func(ctx Context, task *intrusiveTask) {
			remaining--
			if remaining <= 0 {
				done <- struct{}{}
				return
			}
			ctx.Submit(&task.self)
		})
		run := func(hops int64) {
			remaining = hops
			if err := e.Submit(&task.self); err != nil {
				b.Fatal(err)
			}
			<-done
		}
		run(1000) // warm up
		b.ReportAllocs()
		b.ResetTimer()
		run(int64(b.N))
	})
}

// BenchmarkContentionCrossWorkerFanout re-runs a 1 → 8·workers fan-out:
// the source batch-publishes all children onto its own deque, the herd
// wakes, and the children spread across the pool through batch steals.
func BenchmarkContentionCrossWorkerFanout(b *testing.B) {
	ladderRun(b, func(b *testing.B, w int) {
		e := New(w, WithWakeProbability(0))
		defer e.Shutdown()
		defer livenessWatchdog(e)()
		fanout := 8 * w
		var remaining atomic.Int64
		done := make(chan struct{})
		children := make([]*Runnable, fanout)
		for i := range children {
			children[i] = NewTask(func(Context) {
				if remaining.Add(-1) == 0 {
					done <- struct{}{}
				}
			})
		}
		root := NewTask(func(ctx Context) { ctx.SubmitBatch(children) })
		run := func() {
			remaining.Store(int64(fanout))
			if err := e.Submit(root); err != nil {
				b.Fatal(err)
			}
			<-done
		}
		run() // warm up
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			run()
		}
	})
}

// BenchmarkContentionInjectionFlood floods the injection path: one
// external producer goroutine per worker, each submitting its own
// pre-built task object in a tight loop while the pool drains. ns/op is
// the cost of one externally submitted task end to end under maximum
// submission-side contention.
func BenchmarkContentionInjectionFlood(b *testing.B) {
	ladderRun(b, func(b *testing.B, w int) {
		e := New(w, WithWakeProbability(0))
		defer e.Shutdown()
		defer livenessWatchdog(e)()
		var done atomic.Int64
		producers := w
		tasks := make([]*Runnable, producers)
		for i := range tasks {
			tasks[i] = NewTask(func(Context) { done.Add(1) })
		}
		flood := func(total int) {
			done.Store(0)
			per := total / producers
			extra := total - per*producers
			var wg sync.WaitGroup
			for p := 0; p < producers; p++ {
				n := per
				if p == 0 {
					n += extra
				}
				wg.Add(1)
				go func(r *Runnable, n int) {
					defer wg.Done()
					for i := 0; i < n; i++ {
						if err := e.Submit(r); err != nil {
							b.Error(err)
							return
						}
					}
				}(tasks[p], n)
			}
			wg.Wait()
			for done.Load() != int64(total) {
				runtime.Gosched()
			}
		}
		flood(256 * producers) // warm up
		b.ReportAllocs()
		b.ResetTimer()
		flood(b.N)
	})
}

package executor

import (
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// notifState unpacks the notifier state word for assertions.
func notifState(no *notifier) (stackTop, waiters, signals uint64) {
	s := no.state.Load()
	return s & notifStackMask,
		(s & notifWaiterMask) >> notifWaiterShift,
		(s & notifSignalMask) >> notifSignalShift
}

// A notify racing into the prewait/commit window must bank a signal that
// commitWait consumes without parking — the interleaving a naive
// check-then-park loop loses.
func TestNotifierSignalBanking(t *testing.T) {
	no := newNotifier(2)
	no.prewait()
	if !no.notifyOne() {
		t.Fatal("notifyOne saw no waiter after prewait")
	}
	if _, _, signals := notifState(no); signals != 1 {
		t.Fatalf("signals = %d after notify into prewait window, want 1", signals)
	}
	if no.commitWait(0) {
		t.Fatal("commitWait parked despite a banked signal")
	}
	if stack, waiters, signals := notifState(no); stack != notifStackMask || waiters != 0 || signals != 0 {
		t.Fatalf("state not quiescent after banked-signal commit: stack=%#x waiters=%d signals=%d",
			stack, waiters, signals)
	}
}

// cancelWait must consume the signal addressed to it (when every prewaiter
// has one banked), leaving no stale signal to falsify a later commitWait.
func TestNotifierCancelConsumesSignal(t *testing.T) {
	no := newNotifier(2)
	no.prewait()
	no.notifyOne() // banks one signal for the one prewaiter
	no.cancelWait()
	if stack, waiters, signals := notifState(no); stack != notifStackMask || waiters != 0 || signals != 0 {
		t.Fatalf("state not quiescent after cancel: stack=%#x waiters=%d signals=%d",
			stack, waiters, signals)
	}
	if no.notifyOne() {
		t.Fatal("notifyOne woke someone on an idle notifier")
	}
}

// The producers' fast path: notify on an idle notifier is a single load
// that changes nothing.
func TestNotifierNotifyIdleFastPath(t *testing.T) {
	no := newNotifier(4)
	before := no.state.Load()
	if no.notifyOne() || no.notifyAll() {
		t.Fatal("notify reported a wake on an idle notifier")
	}
	if after := no.state.Load(); after != before {
		t.Fatalf("idle notify mutated state: %#x -> %#x", before, after)
	}
}

// parkedCount walks the intrusive stack. Safe only while every pusher is
// parked (the stack is then stable).
func parkedCount(no *notifier) int {
	n := 0
	top := no.state.Load() & notifStackMask
	for top != notifStackMask {
		n++
		top = no.waiters[top].next.Load() & notifStackMask
	}
	return n
}

// notifyAll must capture and unpark the entire waiter stack in one CAS.
func TestNotifierNotifyAllUnparksChain(t *testing.T) {
	const n = 4
	no := newNotifier(n)
	var wg sync.WaitGroup
	for id := 0; id < n; id++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			no.prewait()
			no.commitWait(id)
		}(id)
	}
	deadline := time.Now().Add(30 * time.Second)
	for parkedCount(no) != n {
		if time.Now().After(deadline) {
			t.Fatalf("only %d of %d waiters parked", parkedCount(no), n)
		}
		time.Sleep(100 * time.Microsecond)
	}
	if !no.notifyAll() {
		t.Fatal("notifyAll found nobody despite a full stack")
	}
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(30 * time.Second):
		t.Fatal("notifyAll left waiters parked")
	}
	if stack, waiters, signals := notifState(no); stack != notifStackMask || waiters != 0 || signals != 0 {
		t.Fatalf("state not quiescent after notifyAll: stack=%#x waiters=%d signals=%d",
			stack, waiters, signals)
	}
}

// TestNotifierLitmusNoLostWakeup is the litmus for the Dekker-style
// publish/notify protocol, run under -race in CI: producers publish work
// then notify; consumers re-check work after prewait. If any interleaving
// lost a wakeup, a consumer would park forever with work outstanding and
// the consumed count would stall short of the total.
func TestNotifierLitmusNoLostWakeup(t *testing.T) {
	const (
		consumers   = 4
		producers   = 4
		perProducer = 2000
	)
	no := newNotifier(consumers)
	var work, consumed atomic.Int64
	var stop atomic.Bool
	const total = int64(producers * perProducer)

	var wg sync.WaitGroup
	for id := 0; id < consumers; id++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			for {
				if n := work.Load(); n > 0 {
					if work.CompareAndSwap(n, n-1) {
						consumed.Add(1)
					}
					continue
				}
				if stop.Load() {
					return
				}
				no.prewait()
				if work.Load() > 0 || stop.Load() { // re-check AFTER announcing
					no.cancelWait()
					continue
				}
				no.commitWait(id)
			}
		}(id)
	}
	for p := 0; p < producers; p++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perProducer; i++ {
				work.Add(1)    // publish...
				no.notifyOne() // ...then notify
				if i%64 == 0 {
					runtime.Gosched() // shuffle interleavings on few cores
				}
			}
		}()
	}

	deadline := time.Now().Add(60 * time.Second)
	for consumed.Load() != total {
		if time.Now().After(deadline) {
			t.Fatalf("lost wakeup or stuck consumer: consumed %d of %d (parked=%d)",
				consumed.Load(), total, parkedCount(no))
		}
		time.Sleep(time.Millisecond)
	}
	stop.Store(true)
	no.notifyAll()
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(30 * time.Second):
		t.Fatal("shutdown notifyAll left a consumer stuck")
	}
}

// Each injection shard must be FIFO: interleaved pushes and batch pops
// yield tasks in exact submission order.
func TestInjectionShardFIFO(t *testing.T) {
	var s injShard
	s.ring.init(injInitialCap)
	tasks := make([]*Runnable, 500)
	for i := range tasks {
		tasks[i] = NewTask(func(Context) {})
	}
	dst := make([]*Runnable, 7)
	pushed, popped := 0, 0
	for popped < len(tasks) {
		for k := 0; k < 3 && pushed < len(tasks); k++ {
			s.ring.push(tasks[pushed])
			pushed++
		}
		n := s.ring.popN(dst)
		for i := 0; i < n; i++ {
			if dst[i] != tasks[popped] {
				t.Fatalf("pop %d returned task %p, want %p (FIFO violated)", popped, dst[i], tasks[popped])
			}
			popped++
		}
	}
}

// Tasks hashed across multiple shards by concurrent producers must each
// execute exactly once, and the per-shard counters must account for every
// push and drain.
func TestInjectionShardsExactlyOnce(t *testing.T) {
	e := New(16, WithMetrics(), WithSpin(0))
	if len(e.injShards) < 2 {
		t.Fatalf("16 workers built %d injection shards, want >= 2", len(e.injShards))
	}
	const producers = 4
	const perProducer = 200
	const total = producers * perProducer
	ran := make([]atomic.Int64, total)
	var done atomic.Int64
	tasks := make([]*Runnable, total)
	for i := range tasks {
		i := i
		tasks[i] = NewTask(func(Context) {
			ran[i].Add(1)
			done.Add(1)
		})
	}
	var wg sync.WaitGroup
	for p := 0; p < producers; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			for i := p * perProducer; i < (p+1)*perProducer; i++ {
				if err := e.Submit(tasks[i]); err != nil {
					t.Error(err)
					return
				}
			}
		}(p)
	}
	wg.Wait()
	deadline := time.Now().Add(60 * time.Second)
	for done.Load() != total {
		if time.Now().After(deadline) {
			t.Fatalf("only %d of %d tasks ran", done.Load(), total)
		}
		time.Sleep(time.Millisecond)
	}
	for i := range ran {
		if n := ran[i].Load(); n != 1 {
			t.Fatalf("task %d ran %d times, want exactly once", i, n)
		}
	}
	e.Shutdown()
	snap, _ := e.MetricsSnapshot()
	var shardPushes uint64
	for _, sh := range snap.Shards {
		shardPushes += sh.Pushes
	}
	if shardPushes != total {
		t.Fatalf("shard pushes sum to %d, want %d", shardPushes, total)
	}
	if err := snap.Reconcile(); err != nil {
		t.Fatal(err)
	}
}

// A full park/unpark cycle through the armed eventcount must not allocate:
// external submit -> wake -> run -> re-park, measured end to end.
func TestParkUnparkCycleZeroAlloc(t *testing.T) {
	e := New(1, WithSpin(0), WithWakeProbability(0))
	defer e.Shutdown()
	done := make(chan struct{})
	task := NewTask(func(Context) { done <- struct{}{} })
	run := func() {
		e.Submit(task)
		<-done
		// Wait until the worker is back inside the park protocol so every
		// measured iteration includes a real unpark.
		for e.idlerCount.Load() != 1 {
			runtime.Gosched()
		}
	}
	run() // settle rings, sudog caches, parked state
	if allocs := testing.AllocsPerRun(100, run); allocs > 0.5 {
		t.Fatalf("park/unpark cycle allocates %v objects per round, want 0", allocs)
	}
}

// Submitting prebuilt tasks through the sharded injection queue must not
// allocate in steady state, shards and wakes included.
func TestShardedInjectionSubmitZeroAlloc(t *testing.T) {
	e := New(16, WithSpin(0), WithWakeProbability(0))
	defer e.Shutdown()
	if len(e.injShards) < 2 {
		t.Fatalf("16 workers built %d injection shards, want >= 2", len(e.injShards))
	}
	const fan = 8
	var remaining atomic.Int64
	done := make(chan struct{})
	tasks := make([]*Runnable, fan)
	for i := range tasks {
		tasks[i] = NewTask(func(Context) {
			if remaining.Add(-1) == 0 {
				done <- struct{}{}
			}
		})
	}
	run := func() {
		remaining.Store(fan)
		for _, r := range tasks {
			e.Submit(r)
		}
		<-done
	}
	run()
	run()
	if allocs := testing.AllocsPerRun(50, run); allocs > 1 {
		t.Fatalf("sharded submit allocates %v objects per %d-task round, want ~0", allocs, fan)
	}
}

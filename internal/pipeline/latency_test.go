package pipeline

import (
	"testing"
	"time"

	"gotaskflow/internal/executor"
)

// Token end-to-end latency flows into the executor's histograms through
// the LatencySink seam: one observation per completed token, measured
// from generation at the head to completion of the last pipe.
func TestPipelineTokenLatencyRecorded(t *testing.T) {
	e := executor.New(2, executor.WithLatencyHistograms())
	defer e.Shutdown()
	const n = 40
	p := New(e, 2,
		Pipe{Type: Serial, Fn: func(pf *Pipeflow) {
			if pf.Token() >= n {
				pf.Stop()
			}
		}},
		Pipe{Type: Parallel, Fn: func(*Pipeflow) { time.Sleep(50 * time.Microsecond) }},
	)
	if got := p.Run(); got != n {
		t.Fatalf("Run() = %d, want %d", got, n)
	}
	sums, ok := e.LatencyStats()
	if !ok || len(sums) == 0 {
		t.Fatal("no latency stats")
	}
	unbound := sums[0]
	if !unbound.Unbound {
		t.Fatal("first summary should be the unbound sink")
	}
	if unbound.Exec.Count != n {
		t.Fatalf("recorded %d token latencies, want %d", unbound.Exec.Count, n)
	}
	// Each token spends ≥50µs in the middle pipe; the mean e2e must
	// reflect that.
	if mean := unbound.Exec.Mean(); mean < 50*time.Microsecond {
		t.Fatalf("mean token latency %v, want ≥ 50µs", mean)
	}
}

// BindFlow routes token latencies into a named flow's histogram set.
func TestPipelineBindFlow(t *testing.T) {
	e := executor.New(2, executor.WithLatencyHistograms())
	defer e.Shutdown()
	f := e.NewFlow("stream", executor.FlowConfig{})
	const n = 16
	p := New(e, 2,
		Pipe{Type: Serial, Fn: func(pf *Pipeflow) {
			if pf.Token() >= n {
				pf.Stop()
			}
		}},
		Pipe{Type: Serial, Fn: func(*Pipeflow) {}},
	)
	p.BindFlow(f)
	if got := p.Run(); got != n {
		t.Fatalf("Run() = %d, want %d", got, n)
	}
	sums, _ := e.LatencyStats()
	var found bool
	for _, s := range sums {
		if s.Flow == "stream" {
			found = true
			if s.Exec.Count != n {
				t.Fatalf("flow recorded %d tokens, want %d", s.Exec.Count, n)
			}
		}
	}
	if !found {
		t.Fatal("flow 'stream' missing from latency stats")
	}
}

package pipeline

import (
	"fmt"
	"runtime"
	"testing"
	"time"

	"gotaskflow/internal/executor"
)

// spin busy-waits for roughly d, standing in for a small unit of token
// work (1–10µs in the throughput benchmarks) without touching the heap
// or the scheduler.
func spin(d time.Duration) {
	start := time.Now()
	for time.Since(start) < d {
	}
}

// TestPipelineRunNZeroAlloc is the CI gate on the tentpole reuse claim:
// once warmed, re-running a pre-built pipeline — including a ForEach
// fan-out pipe and a satisfied Defer — allocates nothing.
func TestPipelineRunNZeroAlloc(t *testing.T) {
	e := executor.New(4)
	defer e.Shutdown()
	const n = 64
	sink := make([]int64, 256)
	p := New(e, 4,
		Pipe{Type: Serial, Fn: func(pf *Pipeflow) {
			if pf.Token() >= n {
				pf.Stop()
			}
		}},
		Pipe{Type: Parallel, Fn: func(pf *Pipeflow) {
			if tok := pf.Token(); tok > 0 {
				pf.Defer(tok - 1) // parks or not; both paths must be clean
			}
		}},
		ForEach(Parallel, func(*Pipeflow) int { return len(sink) }, 32, Guided,
			func(pf *Pipeflow, begin, end int) {
				for i := begin; i < end; i++ {
					sink[i] = pf.Token()
				}
			}),
		Pipe{Type: Serial, Fn: func(*Pipeflow) {}},
	)
	p.RunN(3) // warm the executor's worker caches
	if err := p.Err(); err != nil {
		t.Fatal(err)
	}
	avg := testing.AllocsPerRun(10, func() {
		if p.Run() != n {
			t.Fatal("wrong token count")
		}
	})
	if avg != 0 {
		t.Fatalf("steady-state Run allocates %.1f allocs/op, want 0", avg)
	}
}

// BenchmarkPipelineThroughput measures tokens/sec through mixed
// serial/parallel pipelines of 4, 6 and 8 stages at 1–16 lines, each
// stage spinning ~1µs per token. One benchmark iteration is one token;
// tokens stream through a single pre-built pipeline via repeated Run
// batches. tokens/sec is reported as a custom metric.
func BenchmarkPipelineThroughput(b *testing.B) {
	const tokenWork = time.Microsecond
	for _, stages := range []int{4, 6, 8} {
		for _, lines := range []int{1, 2, 4, 8, 16} {
			b.Run(fmt.Sprintf("stages=%d/lines=%d", stages, lines), func(b *testing.B) {
				e := executor.New(runtime.GOMAXPROCS(0))
				defer e.Shutdown()
				var quota int64
				pipes := make([]Pipe, stages)
				pipes[0] = Pipe{Type: Serial, Fn: func(pf *Pipeflow) {
					if pf.Token() >= quota {
						pf.Stop()
					}
				}}
				for i := 1; i < stages; i++ {
					ty := Parallel
					if i == stages-1 || i%3 == 0 {
						ty = Serial // mixed shape: serial tail + every third stage
					}
					pipes[i] = Pipe{Type: ty, Fn: func(*Pipeflow) { spin(tokenWork) }}
				}
				p := New(e, lines, pipes...)
				quota = 512
				p.Run() // warm-up batch
				quota = int64(b.N)
				b.ResetTimer()
				start := time.Now()
				if got := p.Run(); got != int64(b.N) {
					b.Fatalf("processed %d tokens, want %d", got, b.N)
				}
				elapsed := time.Since(start)
				b.StopTimer()
				if err := p.Err(); err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(float64(b.N)/elapsed.Seconds(), "tokens/sec")
			})
		}
	}
}

// BenchmarkPipelineForEachThroughput measures a streaming shape with a
// data-parallel middle stage: head → ForEach over 4096 indexes (guided)
// → serial tail, the "one token fans out across the executor" path.
func BenchmarkPipelineForEachThroughput(b *testing.B) {
	for _, lines := range []int{2, 8} {
		b.Run(fmt.Sprintf("lines=%d", lines), func(b *testing.B) {
			e := executor.New(runtime.GOMAXPROCS(0))
			defer e.Shutdown()
			sink := make([]int64, 4096)
			var quota int64
			p := New(e, lines,
				Pipe{Type: Serial, Fn: func(pf *Pipeflow) {
					if pf.Token() >= quota {
						pf.Stop()
					}
				}},
				ForEach(Parallel, func(*Pipeflow) int { return len(sink) }, 256, Guided,
					func(pf *Pipeflow, begin, end int) {
						for i := begin; i < end; i++ {
							sink[i] += pf.Token()
						}
					}),
				Pipe{Type: Serial, Fn: func(*Pipeflow) {}},
			)
			quota = 256
			p.Run()
			quota = int64(b.N)
			b.ResetTimer()
			start := time.Now()
			if got := p.Run(); got != int64(b.N) {
				b.Fatalf("processed %d tokens, want %d", got, b.N)
			}
			b.ReportMetric(float64(b.N)/time.Since(start).Seconds(), "tokens/sec")
		})
	}
}

// BenchmarkPipelineRunN measures the per-run reset overhead: tiny batches
// re-executed back to back, the serving-loop shape RunN exists for.
func BenchmarkPipelineRunN(b *testing.B) {
	e := executor.New(4)
	defer e.Shutdown()
	const batch = 64
	p := New(e, 4,
		Pipe{Type: Serial, Fn: func(pf *Pipeflow) {
			if pf.Token() >= batch {
				pf.Stop()
			}
		}},
		Pipe{Type: Parallel, Fn: func(*Pipeflow) {}},
		Pipe{Type: Serial, Fn: func(*Pipeflow) {}},
	)
	p.RunN(3)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if p.Run() != batch {
			b.Fatal("wrong token count")
		}
	}
}

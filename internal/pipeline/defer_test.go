package pipeline

import (
	"errors"
	"strings"
	"sync"
	"testing"
	"time"

	"gotaskflow/internal/executor"
)

// TestDeferOrdersParallelPipe defers every even token to the preceding
// odd token on a Parallel pipe and checks the completing invocation of
// each deferring token really ran after its target completed.
func TestDeferOrdersParallelPipe(t *testing.T) {
	e := executor.New(4)
	defer e.Shutdown()
	const n = 200
	var mu sync.Mutex
	done := make(map[int64]bool)      // tokens that completed pipe 1
	sawTarget := make(map[int64]bool) // last-invocation view: target done?
	p := New(e, 4,
		Pipe{Type: Serial, Fn: func(pf *Pipeflow) {
			if pf.Token() >= n {
				pf.Stop()
			}
		}},
		Pipe{Type: Parallel, Fn: func(pf *Pipeflow) {
			tok := pf.Token()
			if tok%2 == 0 && tok > 0 {
				target := tok - 1
				mu.Lock()
				// Last write wins: the completing invocation records
				// whether the target had finished by then.
				sawTarget[tok] = done[target]
				mu.Unlock()
				pf.Defer(target)
				return
			}
			mu.Lock()
			done[tok] = true
			mu.Unlock()
		}},
		Pipe{Type: Serial, Fn: func(*Pipeflow) {}},
	)
	if got := p.Run(); got != n {
		t.Fatalf("Run() = %d tokens, want %d", got, n)
	}
	if err := p.Err(); err != nil {
		t.Fatal(err)
	}
	mu.Lock()
	defer mu.Unlock()
	for tok := int64(2); tok < n; tok += 2 {
		if !sawTarget[tok] {
			t.Fatalf("token %d completed pipe 1 before its deferred target %d", tok, tok-1)
		}
	}
}

// A deferring token's callable re-runs for the same token after the
// target completes; Deferrals() distinguishes the re-invocation. A Defer
// whose target already completed must not park at all.
func TestDeferReinvocationAndSatisfiedTarget(t *testing.T) {
	e := executor.New(2)
	defer e.Shutdown()
	const n = 8
	var mu sync.Mutex
	invocations := make(map[int64]int)
	deferralsSeen := make(map[int64]int)
	p := New(e, 2,
		Pipe{Type: Serial, Fn: func(pf *Pipeflow) {
			if pf.Token() >= n {
				pf.Stop()
			}
		}},
		// Serial pipe: every earlier token is guaranteed complete, so the
		// Defer below is always satisfied immediately — zero parks, one
		// invocation per token.
		Pipe{Type: Serial, Fn: func(pf *Pipeflow) {
			mu.Lock()
			invocations[pf.Token()]++
			deferralsSeen[pf.Token()] = pf.Deferrals()
			mu.Unlock()
			if pf.Token() > 0 {
				pf.Defer(pf.Token() - 1)
			}
		}},
	)
	if got := p.Run(); got != n {
		t.Fatalf("Run() = %d, want %d", got, n)
	}
	if err := p.Err(); err != nil {
		t.Fatal(err)
	}
	st := p.Stats()
	if st.Deferrals != 0 {
		t.Fatalf("Stats.Deferrals = %d, want 0 (serial-pipe Defer is always satisfied)", st.Deferrals)
	}
	mu.Lock()
	defer mu.Unlock()
	for tok := int64(0); tok < n; tok++ {
		if invocations[tok] != 1 {
			t.Fatalf("token %d invoked %d times, want 1", tok, invocations[tok])
		}
		if deferralsSeen[tok] != 0 {
			t.Fatalf("token %d saw Deferrals()=%d, want 0", tok, deferralsSeen[tok])
		}
	}
}

// TestDeferParksAndCounts forces real parks: token 1 on a Parallel pipe
// defers to token 0, which is held back until token 1 has certainly
// parked.
func TestDeferParksAndCounts(t *testing.T) {
	e := executor.New(4)
	defer e.Shutdown()
	release := make(chan struct{})
	var deferralsAt1 int
	var mu sync.Mutex
	var p *Pipeline
	p = New(e, 4,
		Pipe{Type: Serial, Fn: func(pf *Pipeflow) {
			if pf.Token() >= 4 {
				pf.Stop()
			}
		}},
		Pipe{Type: Parallel, Fn: func(pf *Pipeflow) {
			switch pf.Token() {
			case 0:
				<-release // hold token 0 until token 1 has parked
			case 1:
				mu.Lock()
				deferralsAt1 = pf.Deferrals()
				mu.Unlock()
				if pf.Deferrals() == 0 {
					pf.Defer(0)
				}
			}
		}},
	)
	go func() {
		// Token 0 cannot complete pipe 1 until released, so token 1's
		// park is guaranteed to take (its target cell shows completed
		// = -1); wait until the park is visible, then let token 0 go.
		for p.Stats().Deferrals == 0 {
			time.Sleep(100 * time.Microsecond)
		}
		close(release)
	}()
	if got := p.Run(); got != 4 {
		t.Fatalf("Run() = %d, want 4", got)
	}
	if err := p.Err(); err != nil {
		t.Fatal(err)
	}
	mu.Lock()
	defer mu.Unlock()
	if deferralsAt1 != 1 {
		t.Fatalf("token 1 final Deferrals() = %d, want 1 (one park)", deferralsAt1)
	}
	if st := p.Stats(); st.Deferrals != 1 {
		t.Fatalf("Stats.Deferrals = %d, want 1", st.Deferrals)
	}
}

// Invalid Defer targets are errors, not parks.
func TestDeferValidation(t *testing.T) {
	e := executor.New(2)
	defer e.Shutdown()
	for name, tc := range map[string]struct {
		target func(tok int64) int64
		want   string
	}{
		"self":     {func(tok int64) int64 { return tok }, "non-earlier"},
		"future":   {func(tok int64) int64 { return tok + 1 }, "non-earlier"},
		"negative": {func(tok int64) int64 { return -1 }, "non-earlier"},
	} {
		p := New(e, 2,
			Pipe{Type: Serial, Fn: func(pf *Pipeflow) {
				if pf.Token() >= 3 {
					pf.Stop()
				}
			}},
			Pipe{Type: Parallel, Fn: func(pf *Pipeflow) {
				if pf.Token() == 1 {
					pf.Defer(tc.target(pf.Token()))
				}
			}},
		)
		p.Run()
		err := p.Err()
		if err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Fatalf("%s: Err() = %v, want %q", name, err, tc.want)
		}
	}
}

// Deferral state must reset across runs: a pipeline that parks tokens in
// one run behaves identically on the next.
func TestDeferResetAcrossRuns(t *testing.T) {
	e := executor.New(4)
	defer e.Shutdown()
	const n, rounds = 60, 3
	p := New(e, 4,
		Pipe{Type: Serial, Fn: func(pf *Pipeflow) {
			if pf.Token() >= n {
				pf.Stop()
			}
		}},
		Pipe{Type: Parallel, Fn: func(pf *Pipeflow) {
			if tok := pf.Token(); tok >= 3 && pf.Deferrals() == 0 {
				pf.Defer(tok - 3)
			}
		}},
		Pipe{Type: Serial, Fn: func(*Pipeflow) {}},
	)
	for r := 0; r < rounds; r++ {
		if got := p.Run(); got != n {
			t.Fatalf("round %d: Run() = %d, want %d", r, got, n)
		}
		if err := p.Err(); err != nil {
			t.Fatalf("round %d: %v", r, err)
		}
	}
}

// Defer composes with Fail: a failing pipeline with parked tokens still
// drains and reports the error (parked charges are woken by completions
// that continue while in-flight tokens drain).
func TestDeferWithFailure(t *testing.T) {
	e := executor.New(4)
	defer e.Shutdown()
	boom := errors.New("boom")
	p := New(e, 4,
		Pipe{Type: Serial, Fn: func(pf *Pipeflow) {
			if pf.Token() >= 100 {
				pf.Stop()
			}
		}},
		Pipe{Type: Parallel, Fn: func(pf *Pipeflow) {
			tok := pf.Token()
			if tok == 7 {
				pf.Fail(boom)
				return
			}
			if tok >= 2 && pf.Deferrals() == 0 {
				pf.Defer(tok - 2)
			}
		}},
	)
	done := make(chan int64, 1)
	go func() { done <- p.Run() }()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("Run hung with parked tokens after a failure")
	}
	if !errors.Is(p.Err(), boom) {
		t.Fatalf("Err() = %v, want boom", p.Err())
	}
}

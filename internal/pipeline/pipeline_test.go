package pipeline

import (
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"testing/quick"

	"gotaskflow/internal/executor"
)

// recorder tracks, per pipe, the order tokens were processed in.
type recorder struct {
	mu    sync.Mutex
	order [][]int64
}

func newRecorder(pipes int) *recorder {
	return &recorder{order: make([][]int64, pipes)}
}

func (r *recorder) hit(pipe int, token int64) {
	r.mu.Lock()
	r.order[pipe] = append(r.order[pipe], token)
	r.mu.Unlock()
}

// verify checks each pipe saw exactly tokens 0..n-1, and serial pipes saw
// them in ascending order.
func (r *recorder) verify(t *testing.T, n int64, types []Type) {
	t.Helper()
	r.mu.Lock()
	defer r.mu.Unlock()
	for p, seq := range r.order {
		if int64(len(seq)) != n {
			t.Fatalf("pipe %d processed %d tokens, want %d (%v)", p, len(seq), n, seq)
		}
		seen := map[int64]bool{}
		for i, tok := range seq {
			if tok < 0 || tok >= n {
				t.Fatalf("pipe %d: token %d out of range", p, tok)
			}
			if seen[tok] {
				t.Fatalf("pipe %d: token %d processed twice", p, tok)
			}
			seen[tok] = true
			if types[p] == Serial && int64(i) != tok {
				t.Fatalf("serial pipe %d: position %d got token %d (order broken: %v)", p, i, tok, seq)
			}
		}
	}
}

func runPipeline(t *testing.T, workers, lines int, n int64, types []Type) *recorder {
	t.Helper()
	e := executor.New(workers)
	defer e.Shutdown()
	rec := newRecorder(len(types))
	pipes := make([]Pipe, len(types))
	for i, ty := range types {
		i, ty := i, ty
		pipes[i] = Pipe{Type: ty, Fn: func(pf *Pipeflow) {
			if i == 0 {
				if pf.Token() >= n {
					pf.Stop()
					return
				}
			}
			rec.hit(i, pf.Token())
		}}
	}
	p := New(e, lines, pipes...)
	if p.NumLines() != lines || p.NumPipes() != len(types) {
		t.Fatal("pipeline metadata wrong")
	}
	got := p.Run()
	if err := p.Err(); err != nil {
		t.Fatal(err)
	}
	if got != n {
		t.Fatalf("Run() = %d tokens, want %d", got, n)
	}
	rec.verify(t, n, types)
	return rec
}

func TestSingleLineAllSerial(t *testing.T) {
	runPipeline(t, 2, 1, 50, []Type{Serial, Serial, Serial})
}

func TestMultiLineAllSerial(t *testing.T) {
	runPipeline(t, 2, 4, 100, []Type{Serial, Serial, Serial})
}

func TestParallelMiddlePipe(t *testing.T) {
	runPipeline(t, 4, 4, 200, []Type{Serial, Parallel, Serial})
}

func TestAllParallelAfterHead(t *testing.T) {
	runPipeline(t, 4, 8, 300, []Type{Serial, Parallel, Parallel, Parallel})
}

func TestSinglePipePipeline(t *testing.T) {
	runPipeline(t, 2, 3, 40, []Type{Serial})
}

func TestZeroTokens(t *testing.T) {
	e := executor.New(2)
	defer e.Shutdown()
	p := New(e, 2,
		Pipe{Type: Serial, Fn: func(pf *Pipeflow) { pf.Stop() }},
		Pipe{Type: Serial, Fn: func(pf *Pipeflow) { t.Error("second pipe ran with zero tokens") }},
	)
	if got := p.Run(); got != 0 {
		t.Fatalf("Run() = %d, want 0", got)
	}
}

func TestPipelineOverlapsLines(t *testing.T) {
	// With a Parallel middle pipe and multiple lines, at least two tokens
	// must be inside the middle pipe simultaneously at some point.
	e := executor.New(2)
	defer e.Shutdown()
	var inFlight, peak atomic.Int64
	const n = 64
	p := New(e, 4,
		Pipe{Type: Serial, Fn: func(pf *Pipeflow) {
			if pf.Token() >= n {
				pf.Stop()
			}
		}},
		Pipe{Type: Parallel, Fn: func(pf *Pipeflow) {
			c := inFlight.Add(1)
			for {
				pk := peak.Load()
				if c <= pk || peak.CompareAndSwap(pk, c) {
					break
				}
			}
			for i := 0; i < 20000; i++ {
				_ = i * i
			}
			inFlight.Add(-1)
		}},
		Pipe{Type: Serial, Fn: func(*Pipeflow) {}},
	)
	if got := p.Run(); got != n {
		t.Fatalf("Run() = %d", got)
	}
	if peak.Load() < 2 {
		t.Logf("note: peak parallel-pipe occupancy %d (timing dependent on 2 cores)", peak.Load())
	}
}

func TestStopTokenNotProcessed(t *testing.T) {
	e := executor.New(2)
	defer e.Shutdown()
	var headCalls, bodyCalls atomic.Int64
	p := New(e, 3,
		Pipe{Type: Serial, Fn: func(pf *Pipeflow) {
			headCalls.Add(1)
			if pf.Token() >= 10 {
				pf.Stop()
			}
		}},
		Pipe{Type: Serial, Fn: func(*Pipeflow) { bodyCalls.Add(1) }},
	)
	if got := p.Run(); got != 10 {
		t.Fatalf("Run() = %d", got)
	}
	if bodyCalls.Load() != 10 {
		t.Fatalf("body saw %d tokens, want 10 (stop token must not propagate)", bodyCalls.Load())
	}
	if headCalls.Load() != 11 {
		t.Fatalf("head invoked %d times, want 11 (10 tokens + stop)", headCalls.Load())
	}
}

func TestPipeflowMetadata(t *testing.T) {
	e := executor.New(2)
	defer e.Shutdown()
	var bad atomic.Bool
	p := New(e, 2,
		Pipe{Type: Serial, Fn: func(pf *Pipeflow) {
			if pf.Token() >= 8 {
				pf.Stop()
				return
			}
			if pf.Pipe() != 0 || pf.Line() < 0 || pf.Line() >= 2 {
				bad.Store(true)
			}
		}},
		Pipe{Type: Serial, Fn: func(pf *Pipeflow) {
			if pf.Pipe() != 1 {
				bad.Store(true)
			}
		}},
	)
	p.Run()
	if bad.Load() {
		t.Fatal("pipeflow metadata wrong")
	}
}

func TestPipePanicStopsAndReports(t *testing.T) {
	e := executor.New(2)
	defer e.Shutdown()
	p := New(e, 2,
		Pipe{Type: Serial, Fn: func(pf *Pipeflow) {
			if pf.Token() >= 100 {
				pf.Stop()
			}
		}},
		Pipe{Type: Serial, Fn: func(pf *Pipeflow) {
			if pf.Token() == 3 {
				panic("stage blew up")
			}
		}},
	)
	p.Run() // must terminate
	if p.Err() == nil {
		t.Fatal("pipe panic not reported")
	}
}

func TestConstructorValidation(t *testing.T) {
	e := executor.New(1)
	defer e.Shutdown()
	for name, fn := range map[string]func(){
		"noPipes":      func() { New(e, 1) },
		"parallelHead": func() { New(e, 1, Pipe{Type: Parallel, Fn: func(*Pipeflow) {}}) },
		"forEachHead": func() {
			New(e, 1, ForEach(Serial, func(*Pipeflow) int { return 1 }, 1, Dynamic, func(*Pipeflow, int, int) {}))
		},
		"forEachNilBody": func() { ForEach(Serial, func(*Pipeflow) int { return 1 }, 1, Dynamic, nil) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("%s did not panic", name)
				}
			}()
			fn()
		}()
	}
	p := New(e, 0, Pipe{Type: Serial, Fn: func(pf *Pipeflow) { pf.Stop() }})
	if p.NumLines() != 1 {
		t.Fatal("lines not clamped to 1")
	}
	// Runs are reusable in v2: back-to-back Run calls must both work.
	p.Run()
	p.Run()
}

// TestPipelineRunReuse is the core v2 semantics change: one pre-built
// pipeline re-executes with full state reset — token numbering restarts,
// every pipe sees every token again, serial order holds each round.
func TestPipelineRunReuse(t *testing.T) {
	e := executor.New(4)
	defer e.Shutdown()
	const n, rounds = 40, 5
	var perRun atomic.Int64
	p := New(e, 4,
		Pipe{Type: Serial, Fn: func(pf *Pipeflow) {
			if pf.Token() >= n {
				pf.Stop()
				return
			}
			perRun.Add(1)
		}},
		Pipe{Type: Parallel, Fn: func(*Pipeflow) {}},
		Pipe{Type: Serial, Fn: func(*Pipeflow) {}},
	)
	for r := 0; r < rounds; r++ {
		perRun.Store(0)
		if got := p.Run(); got != n {
			t.Fatalf("round %d: Run() = %d tokens, want %d", r, got, n)
		}
		if err := p.Err(); err != nil {
			t.Fatalf("round %d: %v", r, err)
		}
		if perRun.Load() != n {
			t.Fatalf("round %d: head processed %d tokens, want %d", r, perRun.Load(), n)
		}
	}
	st := p.Stats()
	if st.Runs != rounds || st.Tokens != n*rounds {
		t.Fatalf("Stats = %+v, want %d runs and %d tokens", st, rounds, n*rounds)
	}
	var sum int64
	for _, lt := range st.PerLine {
		sum += lt
	}
	if sum != n*rounds {
		t.Fatalf("per-line tokens sum to %d, want %d (%v)", sum, n*rounds, st.PerLine)
	}
}

// TestPipelineRunN checks the batch-run entry point and its early stop
// on error.
func TestPipelineRunN(t *testing.T) {
	e := executor.New(2)
	defer e.Shutdown()
	const n = 25
	p := New(e, 2,
		Pipe{Type: Serial, Fn: func(pf *Pipeflow) {
			if pf.Token() >= n {
				pf.Stop()
			}
		}},
		Pipe{Type: Serial, Fn: func(*Pipeflow) {}},
	)
	if got := p.RunN(4); got != 4*n {
		t.Fatalf("RunN(4) = %d tokens, want %d", got, 4*n)
	}

	// A failing pipeline stops RunN early.
	var runs atomic.Int64
	boom := errors.New("boom")
	q := New(e, 2,
		Pipe{Type: Serial, Fn: func(pf *Pipeflow) {
			if pf.Token() == 0 {
				runs.Add(1)
			}
			if pf.Token() >= 3 {
				pf.Stop()
				return
			}
			if runs.Load() == 2 && pf.Token() == 1 {
				pf.Fail(boom)
			}
		}},
	)
	q.RunN(10)
	if !errors.Is(q.Err(), boom) {
		t.Fatalf("Err() = %v, want boom", q.Err())
	}
	if runs.Load() != 2 {
		t.Fatalf("RunN kept going for %d runs after a failure, want stop after run 2", runs.Load())
	}
}

// Property: any mix of serial/parallel pipes over any line count
// processes each token exactly once per pipe and keeps serial order.
func TestQuickPipelineCorrectness(t *testing.T) {
	f := func(lineSel, pipeSel, tokSel uint8, mask uint16) bool {
		lines := int(lineSel%6) + 1
		numPipes := int(pipeSel%4) + 1
		n := int64(tokSel % 64)
		types := make([]Type, numPipes)
		types[0] = Serial
		for i := 1; i < numPipes; i++ {
			if mask&(1<<i) != 0 {
				types[i] = Parallel
			}
		}
		e := executor.New(2)
		defer e.Shutdown()
		rec := newRecorder(numPipes)
		pipes := make([]Pipe, numPipes)
		for i := range pipes {
			i := i
			pipes[i] = Pipe{Type: types[i], Fn: func(pf *Pipeflow) {
				if i == 0 && pf.Token() >= n {
					pf.Stop()
					return
				}
				rec.hit(i, pf.Token())
			}}
		}
		p := New(e, lines, pipes...)
		if p.Run() != n {
			return false
		}
		// Inline verify (no *testing.T in quick property).
		rec.mu.Lock()
		defer rec.mu.Unlock()
		for pi, seq := range rec.order {
			if int64(len(seq)) != n {
				return false
			}
			seen := map[int64]bool{}
			for idx, tok := range seq {
				if seen[tok] {
					return false
				}
				seen[tok] = true
				if types[pi] == Serial && int64(idx) != tok {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

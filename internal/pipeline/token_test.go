package pipeline

import (
	"math/rand"
	"sync"
	"testing"

	"gotaskflow/internal/executor"
)

// modelTokenOnLine is the explicit model of nextTokenOnLine: the largest
// token t < n assigned to line l (tokens go to lines round-robin,
// t mod lines == l). Caller guarantees such a token exists.
func modelTokenOnLine(n int64, l, lines int) int64 {
	for t := n - 1; t >= 0; t-- {
		if t%int64(lines) == int64(l) {
			return t
		}
	}
	panic("no token on line")
}

// TestPropertyNextTokenOnLine checks the modular reconstruction in
// nextTokenOnLine against the explicit model over random line counts and
// token counts, plus every wrap boundary (n a multiple of lines ± 1) —
// the states where the divide-and-round arithmetic is easiest to get
// wrong.
func TestPropertyNextTokenOnLine(t *testing.T) {
	rng := rand.New(rand.NewSource(0x70ca))
	check := func(n int64, lines int) {
		t.Helper()
		p := &Pipeline{lines: lines}
		p.nextToken.Store(n)
		// Lines with a token in flight are exactly l < min(n, lines).
		top := lines
		if n < int64(lines) {
			top = int(n)
		}
		for l := 0; l < top; l++ {
			got := p.nextTokenOnLine(l)
			want := modelTokenOnLine(n, l, lines)
			if got != want {
				t.Fatalf("nextTokenOnLine(l=%d) with n=%d lines=%d = %d, want %d",
					l, n, lines, got, want)
			}
		}
	}
	for i := 0; i < 2000; i++ {
		lines := rng.Intn(16) + 1
		n := int64(rng.Intn(4096)) + 1
		check(n, lines)
	}
	// Wrap boundaries: n exactly at, just below, and just above every
	// multiple of the line count.
	for lines := 1; lines <= 8; lines++ {
		for wrap := 1; wrap <= 6; wrap++ {
			base := int64(lines * wrap)
			for _, n := range []int64{base - 1, base, base + 1} {
				if n >= 1 {
					check(n, lines)
				}
			}
		}
	}
}

// TestPropertyPerLineTokenSequences drives real pipelines with random
// lines × pipes × token counts and checks each line of the last pipe saw
// exactly the explicitly-threaded sequence l, l+L, l+2L, … — the
// behavior nextTokenOnLine's reconstruction must reproduce end to end.
func TestPropertyPerLineTokenSequences(t *testing.T) {
	rng := rand.New(rand.NewSource(0x11e5))
	for trial := 0; trial < 25; trial++ {
		lines := rng.Intn(6) + 1
		numPipes := rng.Intn(4) + 1
		n := int64(rng.Intn(100))
		types := make([]Type, numPipes)
		types[0] = Serial
		for i := 1; i < numPipes; i++ {
			if rng.Intn(2) == 0 {
				types[i] = Parallel
			}
		}
		e := executor.New(rng.Intn(4) + 1)
		var mu sync.Mutex
		perLine := make([][]int64, lines)
		pipes := make([]Pipe, numPipes)
		for i := range pipes {
			i := i
			pipes[i] = Pipe{Type: types[i], Fn: func(pf *Pipeflow) {
				if i == 0 && pf.Token() >= n {
					pf.Stop()
					return
				}
				if i == numPipes-1 {
					mu.Lock()
					perLine[pf.Line()] = append(perLine[pf.Line()], pf.Token())
					mu.Unlock()
				}
			}}
		}
		p := New(e, lines, pipes...)
		if got := p.Run(); got != n {
			t.Fatalf("trial %d (lines=%d pipes=%d n=%d): Run() = %d",
				trial, lines, numPipes, n, got)
		}
		e.Shutdown()
		mu.Lock()
		for l := 0; l < lines; l++ {
			// Expected: the arithmetic progression l, l+L, ... below n.
			want := []int64{}
			for tok := int64(l); tok < n; tok += int64(lines) {
				want = append(want, tok)
			}
			got := perLine[l]
			if len(got) != len(want) {
				t.Fatalf("trial %d line %d: saw %v, want %v", trial, l, got, want)
			}
			for j := range want {
				if got[j] != want[j] {
					t.Fatalf("trial %d line %d position %d: got token %d, want %d (%v)",
						trial, l, j, got[j], want[j], got)
				}
			}
		}
		mu.Unlock()
	}
}

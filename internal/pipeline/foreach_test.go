package pipeline

import (
	"strings"
	"sync"
	"sync/atomic"
	"testing"

	"gotaskflow/internal/executor"
)

// runForEach pushes n tokens through head → ForEach(part) → tail and
// checks every index of every token's range is visited exactly once
// before the token reaches the tail.
func runForEach(t *testing.T, ty Type, part Partitioner, workers, lines int, n int64, rangeN, grain int) {
	t.Helper()
	e := executor.New(workers)
	defer e.Shutdown()
	var mu sync.Mutex
	counts := make(map[int64][]int) // token → per-index visit count
	tailSaw := make(map[int64]int)  // token → indexes complete at tail
	p := New(e, lines,
		Pipe{Type: Serial, Fn: func(pf *Pipeflow) {
			if pf.Token() >= n {
				pf.Stop()
				return
			}
			mu.Lock()
			counts[pf.Token()] = make([]int, rangeN)
			mu.Unlock()
		}},
		ForEach(ty, func(*Pipeflow) int { return rangeN }, grain, part,
			func(pf *Pipeflow, begin, end int) {
				mu.Lock()
				c := counts[pf.Token()]
				for i := begin; i < end; i++ {
					c[i]++
				}
				mu.Unlock()
			}),
		Pipe{Type: Serial, Fn: func(pf *Pipeflow) {
			// Join barrier: by the time the token reaches the tail, its
			// whole range must be done.
			mu.Lock()
			total := 0
			for _, c := range counts[pf.Token()] {
				total += c
			}
			tailSaw[pf.Token()] = total
			mu.Unlock()
		}},
	)
	if got := p.Run(); got != n {
		t.Fatalf("Run() = %d tokens, want %d", got, n)
	}
	if err := p.Err(); err != nil {
		t.Fatal(err)
	}
	mu.Lock()
	defer mu.Unlock()
	for tok := int64(0); tok < n; tok++ {
		for i, c := range counts[tok] {
			if c != 1 {
				t.Fatalf("token %d index %d visited %d times, want 1", tok, i, c)
			}
		}
		if tailSaw[tok] != rangeN {
			t.Fatalf("token %d reached the tail with %d/%d indexes done (barrier broken)",
				tok, tailSaw[tok], rangeN)
		}
	}
}

func TestForEachDynamic(t *testing.T) { runForEach(t, Parallel, Dynamic, 4, 4, 30, 1000, 16) }
func TestForEachGuided(t *testing.T)  { runForEach(t, Parallel, Guided, 4, 4, 30, 1000, 8) }
func TestForEachStatic(t *testing.T)  { runForEach(t, Parallel, Static, 4, 2, 20, 512, 1) }
func TestForEachTinyRange(t *testing.T) {
	// Fewer indexes than workers×grain: claimant count must clamp.
	runForEach(t, Parallel, Dynamic, 8, 2, 10, 3, 4)
}
func TestForEachSerialPipe(t *testing.T) {
	// A Serial ForEach pipe: token order across tokens, fan-out within.
	runForEach(t, Serial, Guided, 4, 4, 20, 300, 8)
}

// An empty range advances the token without running the body.
func TestForEachEmptyRange(t *testing.T) {
	e := executor.New(2)
	defer e.Shutdown()
	var bodyRuns, tailRuns atomic.Int64
	p := New(e, 2,
		Pipe{Type: Serial, Fn: func(pf *Pipeflow) {
			if pf.Token() >= 5 {
				pf.Stop()
			}
		}},
		ForEach(Parallel, func(*Pipeflow) int { return 0 }, 1, Dynamic,
			func(*Pipeflow, int, int) { bodyRuns.Add(1) }),
		Pipe{Type: Serial, Fn: func(*Pipeflow) { tailRuns.Add(1) }},
	)
	if got := p.Run(); got != 5 {
		t.Fatalf("Run() = %d, want 5", got)
	}
	if bodyRuns.Load() != 0 {
		t.Fatalf("body ran %d times on an empty range", bodyRuns.Load())
	}
	if tailRuns.Load() != 5 {
		t.Fatalf("tail saw %d tokens, want 5", tailRuns.Load())
	}
}

// Stop and Defer from a ForEach body are errors, not silent corruption.
func TestForEachBodyCannotStopOrDefer(t *testing.T) {
	for name, body := range map[string]func(*Pipeflow, int, int){
		"stop":  func(pf *Pipeflow, _, _ int) { pf.Stop() },
		"defer": func(pf *Pipeflow, _, _ int) { pf.Defer(0) },
	} {
		e := executor.New(2)
		p := New(e, 2,
			Pipe{Type: Serial, Fn: func(pf *Pipeflow) {
				if pf.Token() >= 3 {
					pf.Stop()
				}
			}},
			ForEach(Parallel, func(*Pipeflow) int { return 4 }, 1, Dynamic, body),
		)
		p.Run()
		if err := p.Err(); err == nil || !strings.Contains(err.Error(), "ForEach body") {
			t.Fatalf("%s: Err() = %v, want a ForEach-body violation", name, err)
		}
		e.Shutdown()
	}
}

// Panics in the range function and the body stop the pipeline cleanly.
func TestForEachPanicContainment(t *testing.T) {
	for name, pipe := range map[string]Pipe{
		"rangePanic": ForEach(Parallel, func(*Pipeflow) int { panic("range boom") }, 1, Dynamic,
			func(*Pipeflow, int, int) {}),
		"bodyPanic": ForEach(Parallel, func(*Pipeflow) int { return 8 }, 1, Dynamic,
			func(pf *Pipeflow, begin, _ int) {
				if begin == 3 {
					panic("body boom")
				}
			}),
	} {
		e := executor.New(2)
		p := New(e, 2,
			Pipe{Type: Serial, Fn: func(pf *Pipeflow) {
				if pf.Token() >= 5 {
					pf.Stop()
				}
			}},
			pipe,
		)
		p.Run() // must terminate
		if p.Err() == nil {
			t.Fatalf("%s: panic not reported", name)
		}
		e.Shutdown()
	}
}

// ForEach pipes reset correctly across runs.
func TestForEachReuse(t *testing.T) {
	e := executor.New(4)
	defer e.Shutdown()
	const n, rangeN, rounds = 20, 400, 4
	var visited atomic.Int64
	p := New(e, 4,
		Pipe{Type: Serial, Fn: func(pf *Pipeflow) {
			if pf.Token() >= n {
				pf.Stop()
			}
		}},
		ForEach(Parallel, func(*Pipeflow) int { return rangeN }, 16, Guided,
			func(_ *Pipeflow, begin, end int) { visited.Add(int64(end - begin)) }),
	)
	for r := 0; r < rounds; r++ {
		visited.Store(0)
		if got := p.Run(); got != n {
			t.Fatalf("round %d: Run() = %d, want %d", r, got, n)
		}
		if err := p.Err(); err != nil {
			t.Fatalf("round %d: %v", r, err)
		}
		if visited.Load() != n*rangeN {
			t.Fatalf("round %d: visited %d indexes, want %d", r, visited.Load(), n*rangeN)
		}
	}
}

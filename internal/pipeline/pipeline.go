// Package pipeline implements a task-parallel pipeline scheduling
// framework in the style of tf::Pipeline — the pattern the Cpp-Taskflow
// line of work grew into for token-based streaming parallelism (and the
// generalization of the paper's Figure-11 DNN pipeline).
//
// A pipeline is a row of pipes (stages), each Serial (tokens pass through
// in strict order, one at a time) or Parallel (any number of tokens in
// flight), executed over a fixed number of lines — the maximum number of
// tokens processed concurrently. The first pipe must be Serial: it
// generates the token sequence and decides when to stop.
//
// Scheduling uses the classic (line × pipe) join-counter matrix: cell
// (l, p) becomes ready when cell (l, p-1) finishes (its token advances)
// and, for a Serial pipe, when cell (l-1, p) finishes (token order across
// lines); counters re-arm as lines wrap around for subsequent tokens.
package pipeline

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"

	"gotaskflow/internal/executor"
)

// Type classifies a pipe.
type Type uint8

const (
	// Serial pipes process tokens one at a time in token order.
	Serial Type = iota
	// Parallel pipes process any number of tokens concurrently.
	Parallel
)

// Pipeflow carries the per-invocation state handed to a pipe callable,
// mirroring tf::Pipeflow. The object is owned by the scheduling cell and
// reused across invocations; it is only valid during the callable.
type Pipeflow struct {
	p     *Pipeline
	line  int
	pipe  int
	token int64
	stop  bool
}

// Line returns the line (row) this invocation runs on.
func (pf *Pipeflow) Line() int { return pf.line }

// Pipe returns the pipe (stage) index.
func (pf *Pipeflow) Pipe() int { return pf.pipe }

// Token returns the token sequence number.
func (pf *Pipeflow) Token() int64 { return pf.token }

// Stop ends token generation. Only meaningful in the first pipe; the
// stopping token itself is not propagated to later pipes.
func (pf *Pipeflow) Stop() { pf.stop = true }

// Fail records err against the pipeline and stops token generation from
// any pipe: tokens already in flight drain, no new tokens are generated,
// and Err (and RunContext) report the error. Unlike Stop, Fail is
// meaningful in every pipe. A nil err is ignored.
func (pf *Pipeflow) Fail(err error) {
	if err == nil {
		return
	}
	pf.p.fail(fmt.Errorf("pipeline: pipe %d failed on token %d: %w",
		pf.pipe, pf.token, err))
}

// Pipe couples a type with a callable.
type Pipe struct {
	Type Type
	Fn   func(*Pipeflow)
}

// cell is the pre-built task object for one (line, pipe) slot of the
// scheduling matrix. Cells implement executor.Runnable and carry their own
// intrusive task slot and a reusable Pipeflow, so the steady-state token
// loop schedules pointers into the matrix without allocating per
// invocation. A cell has at most one invocation in flight (its join
// counter gates readiness), so the reuse is safe.
type cell struct {
	p    *Pipeline
	line int
	pipe int
	pf   Pipeflow
	self executor.Runnable // == &cell; &self is the scheduling currency
}

// Run implements executor.Runnable.
func (c *cell) Run(ctx executor.Context) { c.p.runCell(ctx, c.line, c.pipe) }

// Pipeline schedules tokens through pipes over a fixed set of lines.
// A Pipeline is single-shot: build, Run once, inspect.
type Pipeline struct {
	exec  *executor.Executor
	pipes []Pipe
	lines int

	cells       [][]cell         // [line][pipe] pre-built task objects
	joins       [][]atomic.Int32 // [line][pipe]
	stopped     atomic.Bool
	nextToken   atomic.Int64
	processed   atomic.Int64 // tokens that completed the last pipe
	outstanding atomic.Int64 // scheduled-but-unfinished cells
	done        chan struct{}
	ran         atomic.Bool

	errMu sync.Mutex
	errs  []error
}

// maxPipelineErrs bounds the recorded failure list so a pipe failing on
// every token cannot grow memory without bound.
const maxPipelineErrs = 64

// New builds a pipeline over e with the given number of lines. The first
// pipe must be Serial and at least one pipe is required.
func New(e *executor.Executor, lines int, pipes ...Pipe) *Pipeline {
	if len(pipes) == 0 {
		panic("pipeline: need at least one pipe")
	}
	if pipes[0].Type != Serial {
		panic("pipeline: the first pipe must be Serial")
	}
	if lines < 1 {
		lines = 1
	}
	p := &Pipeline{
		exec:  e,
		pipes: pipes,
		lines: lines,
		done:  make(chan struct{}),
	}
	p.joins = make([][]atomic.Int32, lines)
	p.cells = make([][]cell, lines)
	for l := 0; l < lines; l++ {
		p.joins[l] = make([]atomic.Int32, len(pipes))
		p.cells[l] = make([]cell, len(pipes))
		for q := range p.joins[l] {
			p.joins[l][q].Store(p.initialJoin(l, q))
			c := &p.cells[l][q]
			c.p, c.line, c.pipe = p, l, q
			c.pf.p = p
			c.self = c
		}
	}
	return p
}

// initialJoin computes the dependency count of cell (l, q) for its first
// activation; rearmJoin applies on every wrap-around thereafter.
func (p *Pipeline) initialJoin(l, q int) int32 {
	if q == 0 {
		if l == 0 {
			return 0 // the very first token starts immediately
		}
		return 1 // waits for (l-1, 0); no previous round on this line yet
	}
	if p.pipes[q].Type == Serial && l > 0 {
		return 2 // (l, q-1) and (l-1, q)
	}
	// Parallel pipe, or serial pipe's first passage on line 0.
	return 1
}

// rearmJoin is the steady-state dependency count of cell (l, q).
func (p *Pipeline) rearmJoin(q int) int32 {
	if q == 0 {
		return 2 // previous round's last pipe on this line + (l-1, 0)
	}
	if p.pipes[q].Type == Serial {
		return 2
	}
	return 1
}

// Run processes tokens until the first pipe calls Stop (or a pipe calls
// Fail or panics), then drains the in-flight tokens and returns the
// number that completed every pipe; inspect Err for failures. Run may be
// called once.
func (p *Pipeline) Run() int64 {
	if p.ran.Swap(true) {
		panic("pipeline: Run called twice")
	}
	p.outstanding.Store(1)
	// The head cell is submitted directly rather than through signal, so
	// its counter is re-armed here for the wrap-around rounds.
	p.joins[0][0].Store(p.rearmJoin(0))
	if err := p.exec.Submit(p.cellRef(0, 0)); err != nil {
		// The executor was already shut down: nothing is in flight. Record
		// the rejection and retire the head's charge so Run returns
		// instead of hanging.
		p.fail(err)
		p.retire()
	}
	<-p.done
	return p.processed.Load()
}

// RunContext is Run bound to ctx: when ctx is cancelled or its deadline
// expires mid-run, token generation stops, in-flight tokens drain, and
// the returned error includes ctx.Err(). It returns the number of tokens
// that completed every pipe together with Err()'s aggregation. A ctx that
// is already done fails the run without processing any token.
func (p *Pipeline) RunContext(ctx context.Context) (int64, error) {
	if err := ctx.Err(); err != nil {
		if p.ran.Swap(true) {
			panic("pipeline: Run called twice")
		}
		p.fail(err)
		return 0, p.Err()
	}
	var stop func() bool
	if ctx.Done() != nil {
		stop = context.AfterFunc(ctx, func() { p.fail(ctx.Err()) })
	}
	n := p.Run()
	if stop != nil {
		stop()
	}
	return n, p.Err()
}

// cellRef returns the pre-built task reference of cell (l, q).
func (p *Pipeline) cellRef(l, q int) *executor.Runnable {
	return &p.cells[l][q].self
}

// signal decrements cell (l, q)'s join counter and schedules it on zero,
// re-arming the counter for the next round.
func (p *Pipeline) signal(ctx executor.Context, l, q int, cached bool) {
	if p.joins[l][q].Add(-1) != 0 {
		return
	}
	p.joins[l][q].Store(p.rearmJoin(q))
	p.outstanding.Add(1)
	if cached {
		ctx.SubmitCached(p.cellRef(l, q))
	} else {
		ctx.Submit(p.cellRef(l, q))
	}
}

func (p *Pipeline) runCell(ctx executor.Context, l, q int) {
	last := len(p.pipes) - 1
	nextLine := (l + 1) % p.lines

	if q == 0 {
		// Token generation at the serial head.
		if p.stopped.Load() {
			// Stopped: do not generate or propagate; token order along
			// the first pipe also ends here.
			p.retire()
			return
		}
		pf := &p.cells[l][0].pf
		pf.line, pf.pipe, pf.token, pf.stop = l, 0, p.nextToken.Add(1)-1, false
		p.invoke(&p.pipes[0], pf)
		if pf.stop {
			p.stopped.Store(true)
			p.retire()
			return
		}
		// Hand token order to the next line's head, then advance this
		// token to pipe 1 (or complete if single-pipe).
		p.signal(ctx, nextLine, 0, false)
		if last == 0 {
			p.processed.Add(1)
			p.signal(ctx, l, 0, true) // line wraps directly
		} else {
			p.signal(ctx, l, 1, true)
		}
		p.retire()
		return
	}

	token := p.nextTokenOnLine(l)
	pf := &p.cells[l][q].pf
	pf.line, pf.pipe, pf.token, pf.stop = l, q, token, false
	p.invoke(&p.pipes[q], pf)

	if p.pipes[q].Type == Serial {
		p.signal(ctx, nextLine, q, false)
	}
	if q == last {
		p.processed.Add(1)
		p.signal(ctx, l, 0, true) // line becomes free: wrap to the head
	} else {
		p.signal(ctx, l, q+1, true)
	}
	p.retire()
}

// nextTokenOnLine reconstructs the token currently traversing line l: the
// line processes tokens l, l+L, l+2L, ... and exactly one is in flight.
func (p *Pipeline) nextTokenOnLine(l int) int64 {
	// rounds completed on this line = tokens this line has fully retired;
	// derive from the line's position in the global sequence.
	// The token at line l is the largest t = l (mod lines) with t <
	// nextToken; since each line has one token in flight, that is the
	// most recent generation on this line.
	n := p.nextToken.Load()
	r := (n - 1 - int64(l)) / int64(p.lines)
	return int64(l) + r*int64(p.lines)
}

func (p *Pipeline) invoke(pipe *Pipe, pf *Pipeflow) {
	defer func() {
		if r := recover(); r != nil {
			// A panicking pipe stops the pipeline; in-flight work drains.
			p.fail(fmt.Errorf("pipeline: pipe panicked: %v", r))
		}
	}()
	pipe.Fn(pf)
}

// fail records err and stops token generation; in-flight tokens drain.
func (p *Pipeline) fail(err error) {
	p.stopped.Store(true)
	p.errMu.Lock()
	if len(p.errs) < maxPipelineErrs {
		p.errs = append(p.errs, err)
	}
	p.errMu.Unlock()
}

// retire decrements the outstanding-cell count and completes the run at
// quiescence.
func (p *Pipeline) retire() {
	if p.outstanding.Add(-1) == 0 {
		close(p.done)
	}
}

// Err returns every failure captured during the run — Fail calls, pipe
// panics (converted to errors), context cancellation, executor rejection —
// aggregated with errors.Join, or nil for a clean run. A single failure is
// returned unwrapped.
func (p *Pipeline) Err() error {
	p.errMu.Lock()
	defer p.errMu.Unlock()
	switch len(p.errs) {
	case 0:
		return nil
	case 1:
		return p.errs[0]
	}
	return errors.Join(p.errs...)
}

// NumLines returns the line count.
func (p *Pipeline) NumLines() int { return p.lines }

// NumPipes returns the pipe count.
func (p *Pipeline) NumPipes() int { return len(p.pipes) }

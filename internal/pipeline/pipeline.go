// Package pipeline implements a token-throughput pipeline scheduling
// engine in the style of Pipeflow (the design tf::Pipeline grew into):
// tokens stream through a row of pipes (stages) over a fixed number of
// parallel lines, and the unit of measurement is tokens per second, not
// graph latency.
//
// A pipeline is a row of pipes, each Serial (tokens pass through in
// strict token order, one at a time) or Parallel (any number of tokens in
// flight). The first pipe must be Serial: it generates the token sequence
// and decides when to stop. Three engine features go beyond the classic
// paper-era pipeline:
//
//   - Reusable runs. Run and RunN re-execute a pre-built pipeline: the
//     (line × pipe) cell matrix, join counters and Pipeflow objects reset
//     in place, so a serving loop pumps batch after batch through one
//     pipeline at zero allocations per run in steady state (gated by
//     TestPipelineRunNZeroAlloc).
//
//   - Data-parallel pipes (ForEach): one token fans out across the
//     executor as claimant tasks pulling index ranges off a shared atomic
//     cursor (dynamic or guided grants, mirroring the core partitioners),
//     submitted in one SubmitBatch so the fan-out rides the sharded
//     injection queue; a join barrier holds the token until the whole
//     range completes.
//
//   - Token deferral (Pipeflow.Defer): a pipe callable may park its token
//     until an earlier token has completed the same pipe — the
//     deferred-pipe dependency of Pipeflow §III-C, restricted to
//     strictly-earlier targets so deferral graphs are acyclic by
//     construction. Parked tokens sit on an intrusive wait-list threaded
//     through the cell matrix (no per-defer allocation) and re-enter the
//     scheduler through the normal signal path when the target completes.
//
// Scheduling uses the classic (line × pipe) join-counter matrix: cell
// (l, p) becomes ready when cell (l, p-1) finishes (its token advances)
// and, for a Serial pipe, when cell (l-1, p) finishes (token order across
// lines); counters re-arm as lines wrap around for subsequent tokens.
//
// Observability: when the scheduler records latency histograms
// (executor.WithLatencyHistograms), each completed token's end-to-end
// latency — generation at the head to completion of the last pipe — is
// recorded through the LatencySink seam (exec and end-to-end series;
// queue-wait is reported as zero, since generation is the token's birth).
// Under executor.WithTracing, cells identify themselves (flow = the
// pipeline's name, task = pipe, Idx = line), and tracing.WriteLineTrace
// renders the capture with one Perfetto track per line so per-line
// occupancy is visible directly.
package pipeline

import (
	"context"
	"errors"
	"fmt"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"gotaskflow/internal/executor"
)

// Type classifies a pipe.
type Type uint8

const (
	// Serial pipes process tokens one at a time in token order.
	Serial Type = iota
	// Parallel pipes process any number of tokens concurrently.
	Parallel
)

// Partitioner selects how a ForEach pipe splits its iteration space
// across claimant tasks, mirroring the core parallel-algorithm
// partitioners (PR 5) one level up.
type Partitioner uint8

const (
	// Static divides the range into one even contiguous block per
	// claimant (still claimed off the shared cursor, so a lost claimant
	// cannot strand work).
	Static Partitioner = iota
	// Dynamic claims fixed grain-sized chunks off the shared cursor.
	Dynamic
	// Guided claims geometrically shrinking chunks:
	// max(grain, remaining/(2·workers)) — large grants amortize the
	// cursor while the work is plentiful, small grants balance the tail.
	Guided
)

// Pipeflow carries the per-invocation state handed to a pipe callable,
// mirroring tf::Pipeflow. The object is owned by the scheduling cell and
// reused across invocations; it is only valid during the callable.
type Pipeflow struct {
	p       *Pipeline
	line    int
	pipe    int
	token   int64
	stop    bool
	deferTo int64 // -1 = no deferral requested this invocation
}

// Line returns the line (row) this invocation runs on.
func (pf *Pipeflow) Line() int { return pf.line }

// Pipe returns the pipe (stage) index.
func (pf *Pipeflow) Pipe() int { return pf.pipe }

// Token returns the token sequence number.
func (pf *Pipeflow) Token() int64 { return pf.token }

// Stop ends token generation. Only meaningful in the first pipe; the
// stopping token itself is not propagated to later pipes. Calling Stop
// from a ForEach body is an error (bodies run concurrently; use Fail).
func (pf *Pipeflow) Stop() {
	if pf.p.pipes[pf.pipe].dp {
		pf.p.fail(fmt.Errorf("pipeline: Stop called from a ForEach body (pipe %d)", pf.pipe))
		return
	}
	pf.stop = true
}

// Fail records err against the pipeline and stops token generation from
// any pipe: tokens already in flight drain, no new tokens are generated,
// and Err (and RunContext) report the error. Unlike Stop, Fail is
// meaningful in every pipe and safe from ForEach bodies. A nil err is
// ignored.
func (pf *Pipeflow) Fail(err error) {
	if err == nil {
		return
	}
	pf.p.fail(fmt.Errorf("pipeline: pipe %d failed on token %d: %w",
		pf.pipe, pf.token, err))
}

// Defer parks the current token until token `target` has completed this
// pipe (Pipeflow's deferred-pipe dependency). The target must be
// strictly earlier than the current token — deferral chains therefore
// strictly decrease and can never cycle. When the target has already
// completed this pipe, Defer is a no-op and the invocation completes
// normally; otherwise the token parks after the callable returns and the
// callable is INVOKED AGAIN for the same token once the target completes
// (check Deferrals to distinguish re-invocations). On a Serial pipe
// earlier tokens have always completed first, so Defer only ever parks on
// Parallel pipes. Calling Defer from a ForEach body, or with a target
// that is negative or not strictly earlier, records an error and does
// not park.
func (pf *Pipeflow) Defer(target int64) {
	if pf.p.pipes[pf.pipe].dp {
		pf.p.fail(fmt.Errorf("pipeline: Defer called from a ForEach body (pipe %d)", pf.pipe))
		return
	}
	if target < 0 || target >= pf.token {
		pf.p.fail(fmt.Errorf("pipeline: pipe %d token %d deferred to non-earlier token %d",
			pf.pipe, pf.token, target))
		return
	}
	pf.deferTo = target
}

// Deferrals returns how many times this token has parked at this pipe so
// far — 0 on the first invocation, ≥1 on invocations re-armed by Defer.
func (pf *Pipeflow) Deferrals() int {
	return int(pf.p.cells[pf.line][pf.pipe].deferCount)
}

// Pipe couples a type with a callable. Construct directly for scalar
// pipes, or with ForEach for data-parallel pipes.
type Pipe struct {
	Type Type
	Fn   func(*Pipeflow)

	// Data-parallel extension, set by ForEach.
	dp      bool
	dpN     func(*Pipeflow) int
	dpGrain int
	dpPart  Partitioner
	dpBody  func(pf *Pipeflow, begin, end int)
}

// ForEach builds a data-parallel pipe: for each token, body(pf, begin,
// end) is invoked over disjoint subranges of [0, n(pf)) fanned out across
// the executor's workers, and the token advances only after the whole
// range has completed (a join barrier inside the pipe). n is evaluated
// once per token; grain is the minimum chunk size (clamped to ≥1); part
// selects the chunking policy. The fan-out is submitted as one task batch
// (Scheduler.SubmitBatch), so it lands on the sharded injection queue and
// spreads by batch stealing. Bodies of one token run concurrently: they
// must not call Stop or Defer (use Fail for errors) and must synchronize
// any shared writes themselves.
func ForEach(t Type, n func(*Pipeflow) int, grain int, part Partitioner, body func(pf *Pipeflow, begin, end int)) Pipe {
	if n == nil || body == nil {
		panic("pipeline: ForEach needs both a range function and a body")
	}
	if grain < 1 {
		grain = 1
	}
	return Pipe{Type: t, dp: true, dpN: n, dpGrain: grain, dpPart: part, dpBody: body}
}

// cellID assigns trace identities to cells and claimants across all
// pipelines in the process.
var cellID atomic.Uint64

// cell is the pre-built task object for one (line, pipe) slot of the
// scheduling matrix. Cells implement executor.Runnable and carry their
// own intrusive task slot and a reusable Pipeflow, so the steady-state
// token loop schedules pointers into the matrix without allocating per
// invocation. A cell has at most one invocation in flight (its join
// counter gates readiness), so the reuse is safe.
type cell struct {
	p    *Pipeline
	line int
	pipe int
	pf   Pipeflow
	self executor.Runnable // == &cell; &self is the scheduling currency
	join atomic.Int32
	id   uint64
	name string

	// Deferral state. As a completion target: completed is the last token
	// to finish this cell (-1 before any), and waiters heads the intrusive
	// list of cells parked on this cell's progress (writes under the
	// pipeline's defMu; racily read as a fast-path guard). As a parked
	// cell: waitFor/waitNext are the intrusive links, deferCount counts
	// parks of the current token.
	completed  atomic.Int64
	waiters    atomic.Pointer[cell]
	waitFor    int64
	waitNext   *cell
	deferCount int64

	// Data-parallel state (ForEach pipes only): the shared range cursor,
	// this token's range end and effective grain, the claimant join
	// counter, and the pre-built claimant tasks (one per worker).
	cursor    atomic.Int64
	dpEnd     int64
	grainEff  int64
	pending   atomic.Int64
	claims    []dpClaim
	claimRefs []*executor.Runnable
}

// Run implements executor.Runnable.
func (c *cell) Run(ctx executor.Context) { c.p.runCell(ctx, c) }

// Describe implements executor.Described so traced cell executions carry
// the pipeline's identity: Flow = pipeline name, Name = pipe, Idx = line
// (the basis of tracing.WriteLineTrace's per-line tracks), Gen = the
// 1-based run round.
func (c *cell) Describe() executor.TaskMeta {
	return executor.TaskMeta{
		Flow: c.p.name, Name: c.name, ID: c.id,
		Idx: int32(c.line), Gen: c.p.rounds.Load() + 1,
	}
}

// dpClaim is one pre-built claimant task of a ForEach cell.
type dpClaim struct {
	c    *cell
	self executor.Runnable
	id   uint64
}

// Run implements executor.Runnable: claim ranges until the cursor is
// exhausted; the last claimant to retire advances the token.
func (d *dpClaim) Run(ctx executor.Context) { d.c.p.runClaim(ctx, d.c) }

// Describe implements executor.Described for traced claimant executions.
func (d *dpClaim) Describe() executor.TaskMeta {
	return executor.TaskMeta{
		Flow: d.c.p.name, Name: d.c.name, ID: d.id,
		Idx: int32(d.c.line), Gen: d.c.p.rounds.Load() + 1,
	}
}

// Stats is a snapshot of a pipeline's cumulative counters.
type Stats struct {
	// Runs counts completed Run rounds (RunN(n) contributes up to n).
	Runs uint64
	// Tokens counts tokens that completed every pipe, across all runs.
	Tokens int64
	// Deferrals counts tokens parked by Pipeflow.Defer (re-invocations).
	Deferrals int64
	// DroppedErrs counts errors discarded beyond the recording cap during
	// the current (or last) run; Err also surfaces it.
	DroppedErrs int64
	// PerLine is the number of tokens completed per line across all runs.
	PerLine []int64
}

// Pipeline schedules tokens through pipes over a fixed set of lines. A
// Pipeline is reusable: build once, then Run or RunN repeatedly — state
// resets in place at zero allocations per run in steady state. A
// Pipeline must not be run concurrently with itself.
type Pipeline struct {
	sched   executor.Scheduler
	pipes   []Pipe
	lines   int
	workers int
	name    string

	cells       [][]cell // [line][pipe] pre-built task objects
	stopped     atomic.Bool
	nextToken   atomic.Int64
	processed   atomic.Int64 // tokens that completed the last pipe this run
	total       atomic.Int64 // across runs
	outstanding atomic.Int64 // scheduled-but-unfinished cells + claimants + parked cells
	rounds      atomic.Uint64
	running     atomic.Bool
	done        chan struct{} // buffered(1); one token per completed run

	deferrals  atomic.Int64
	lineTokens []atomic.Int64

	// lat is the token-latency sink (nil when the scheduler records no
	// histograms); lineStart stamps each line's in-flight token at
	// generation. Writes and reads are ordered by the join-counter chain.
	lat       executor.LatencySink
	lineStart []time.Time

	defMu sync.Mutex // guards every cell's waiters list

	errMu   sync.Mutex
	errs    []error
	dropped int64
}

// maxPipelineErrs bounds the recorded failure list so a pipe failing on
// every token cannot grow memory without bound; failures beyond the cap
// are counted (DroppedErrs) and surfaced by Err instead of vanishing.
const maxPipelineErrs = 64

// New builds a pipeline over sched with the given number of lines. The
// first pipe must be Serial and must not be a ForEach pipe; at least one
// pipe is required. sched is typically *executor.Executor; internal/sim's
// deterministic SimExecutor works identically.
func New(sched executor.Scheduler, lines int, pipes ...Pipe) *Pipeline {
	if len(pipes) == 0 {
		panic("pipeline: need at least one pipe")
	}
	if pipes[0].Type != Serial {
		panic("pipeline: the first pipe must be Serial")
	}
	if pipes[0].dp {
		panic("pipeline: the first pipe generates tokens and cannot be a ForEach pipe")
	}
	if lines < 1 {
		lines = 1
	}
	p := &Pipeline{
		sched:   sched,
		pipes:   pipes,
		lines:   lines,
		workers: sched.NumWorkers(),
		name:    "pipeline",
		done:    make(chan struct{}, 1),
	}
	if lp, ok := sched.(executor.LatencyProvider); ok {
		p.lat = lp.LatencySink(nil)
	}
	if p.lat != nil {
		p.lineStart = make([]time.Time, lines)
	}
	p.lineTokens = make([]atomic.Int64, lines)
	p.cells = make([][]cell, lines)
	for l := 0; l < lines; l++ {
		p.cells[l] = make([]cell, len(pipes))
		for q := range p.cells[l] {
			c := &p.cells[l][q]
			c.p, c.line, c.pipe = p, l, q
			c.pf.p = p
			c.self = c
			c.id = cellID.Add(1)
			c.name = "p" + strconv.Itoa(q)
			c.completed.Store(-1)
			if pipes[q].dp {
				k := p.workers
				if k < 1 {
					k = 1
				}
				c.claims = make([]dpClaim, k)
				c.claimRefs = make([]*executor.Runnable, k)
				for i := range c.claims {
					c.claims[i].c = c
					c.claims[i].self = &c.claims[i]
					c.claims[i].id = cellID.Add(1)
					c.claimRefs[i] = &c.claims[i].self
				}
			}
		}
	}
	return p
}

// Named sets the pipeline's display name — the Flow of traced cell spans
// and the pipeline label of exported metrics. Returns p for chaining.
func (p *Pipeline) Named(name string) *Pipeline {
	p.name = name
	return p
}

// Name returns the display name (default "pipeline").
func (p *Pipeline) Name() string { return p.name }

// BindFlow routes the pipeline's token-latency recordings to f's
// histogram set instead of the scheduler's unbound default sink. No-op
// when the scheduler records no histograms.
func (p *Pipeline) BindFlow(f executor.Flow) {
	if lp, ok := p.sched.(executor.LatencyProvider); ok {
		if sink := lp.LatencySink(f); sink != nil {
			p.lat = sink
			if p.lineStart == nil {
				p.lineStart = make([]time.Time, p.lines)
			}
		}
	}
}

// initialJoin computes the dependency count of cell (l, q) for its first
// activation in a run; rearmJoin applies on every wrap-around thereafter.
func (p *Pipeline) initialJoin(l, q int) int32 {
	if q == 0 {
		if l == 0 {
			return 0 // the very first token starts immediately
		}
		return 1 // waits for (l-1, 0); no previous round on this line yet
	}
	if p.pipes[q].Type == Serial && l > 0 {
		return 2 // (l, q-1) and (l-1, q)
	}
	// Parallel pipe, or serial pipe's first passage on line 0.
	return 1
}

// rearmJoin is the steady-state dependency count of cell (l, q).
func (p *Pipeline) rearmJoin(q int) int32 {
	if q == 0 {
		return 2 // previous round's last pipe on this line + (l-1, 0)
	}
	if p.pipes[q].Type == Serial {
		return 2
	}
	return 1
}

// reset re-arms the cell matrix for a fresh run: join counters to their
// initial values, per-cell deferral progress cleared, token and error
// state zeroed. No allocation.
func (p *Pipeline) reset() {
	p.stopped.Store(false)
	p.nextToken.Store(0)
	p.processed.Store(0)
	for l := range p.cells {
		for q := range p.cells[l] {
			c := &p.cells[l][q]
			c.join.Store(p.initialJoin(l, q))
			c.completed.Store(-1)
			c.deferCount = 0
		}
	}
	// The head cell is submitted directly rather than through signal, so
	// its counter is re-armed here for the wrap-around rounds.
	p.cells[0][0].join.Store(p.rearmJoin(0))
	p.errMu.Lock()
	p.errs = p.errs[:0]
	p.dropped = 0
	p.errMu.Unlock()
}

// Run processes tokens until the first pipe calls Stop (or a pipe calls
// Fail or panics), then drains the in-flight tokens and returns the
// number that completed every pipe; inspect Err for failures. Run may be
// called repeatedly — state resets in place — but not concurrently.
func (p *Pipeline) Run() int64 {
	if p.running.Swap(true) {
		panic("pipeline: Run called concurrently")
	}
	defer p.running.Store(false)
	p.reset()
	p.outstanding.Store(1)
	if err := p.sched.Submit(&p.cells[0][0].self); err != nil {
		// The scheduler was already shut down: nothing is in flight.
		// Record the rejection and retire the head's charge so Run
		// returns instead of hanging.
		p.fail(err)
		p.retire()
	}
	<-p.done
	p.rounds.Add(1)
	return p.processed.Load()
}

// RunN runs the pipeline n times back to back and returns the total
// number of tokens processed. It stops early when a run records an
// error (Err reports it).
func (p *Pipeline) RunN(n int) int64 {
	var total int64
	for i := 0; i < n; i++ {
		total += p.Run()
		if p.Err() != nil {
			break
		}
	}
	return total
}

// RunContext is Run bound to ctx: when ctx is cancelled or its deadline
// expires mid-run, token generation stops, in-flight tokens drain, and
// the returned error includes ctx.Err(). It returns the number of tokens
// that completed every pipe together with Err()'s aggregation. A ctx
// that is already done returns without processing any token.
func (p *Pipeline) RunContext(ctx context.Context) (int64, error) {
	if err := ctx.Err(); err != nil {
		return 0, err
	}
	var stop func() bool
	if ctx.Done() != nil {
		stop = context.AfterFunc(ctx, func() { p.fail(ctx.Err()) })
	}
	n := p.Run()
	if stop != nil {
		stop()
	}
	return n, p.Err()
}

// signal decrements cell (l, q)'s join counter and schedules it on zero,
// re-arming the counter for the next round.
func (p *Pipeline) signal(ctx executor.Context, l, q int, cached bool) {
	c := &p.cells[l][q]
	if c.join.Add(-1) != 0 {
		return
	}
	c.join.Store(p.rearmJoin(q))
	p.outstanding.Add(1)
	if cached {
		ctx.SubmitCached(&c.self)
	} else {
		ctx.Submit(&c.self)
	}
}

// runCell is one activation of cell c: generate (head), invoke (scalar
// pipes) or fan out (ForEach pipes) the cell's current token, then
// advance it — unless a deferral parks it first.
func (p *Pipeline) runCell(ctx executor.Context, c *cell) {
	l, q := c.line, c.pipe
	if q == 0 {
		// Token generation at the serial head.
		if p.stopped.Load() {
			// Stopped: do not generate or propagate; token order along
			// the first pipe also ends here.
			p.retire()
			return
		}
		tok := p.nextToken.Add(1) - 1
		pf := &c.pf
		pf.line, pf.pipe, pf.token, pf.stop, pf.deferTo = l, 0, tok, false, -1
		if p.lat != nil {
			p.lineStart[l] = time.Now()
		}
		p.invoke(&p.pipes[0], pf)
		if pf.stop {
			p.stopped.Store(true)
			p.retire()
			return
		}
		// Defer at the head can never park: the serial head completes
		// tokens in generation order, so any strictly-earlier target has
		// already completed pipe 0. park still linearizes the check.
		if pf.deferTo >= 0 && p.park(c, pf.deferTo) {
			return
		}
		p.advance(ctx, c, tok)
		return
	}

	tok := p.nextTokenOnLine(l)
	pf := &c.pf
	pf.line, pf.pipe, pf.token, pf.stop, pf.deferTo = l, q, tok, false, -1
	pipe := &p.pipes[q]
	if pipe.dp {
		p.fanOut(ctx, c, pipe, tok)
		return
	}
	p.invoke(pipe, pf)
	if pf.deferTo >= 0 && p.park(c, pf.deferTo) {
		return // parked: charge retained, re-armed when the target completes
	}
	p.advance(ctx, c, tok)
}

// advance completes token tok at cell c: record completion for deferral
// waiters, hand token order to the next line (serial pipes), move the
// token to the next pipe or finish it, and retire the cell's charge.
func (p *Pipeline) advance(ctx executor.Context, c *cell, tok int64) {
	l, q := c.line, c.pipe
	c.deferCount = 0
	c.completed.Store(tok)
	if c.waiters.Load() != nil {
		p.wakeWaiters(ctx, c, tok)
	}
	last := len(p.pipes) - 1
	if p.pipes[q].Type == Serial {
		p.signal(ctx, (l+1)%p.lines, q, false)
	}
	if q == last {
		p.completeToken(ctx, l)
		p.signal(ctx, l, 0, true) // line becomes free: wrap to the head
	} else {
		p.signal(ctx, l, q+1, true)
	}
	p.retire()
}

// completeToken accounts one token that finished the last pipe on line l
// and records its end-to-end latency when a sink is bound.
func (p *Pipeline) completeToken(ctx executor.Context, l int) {
	p.processed.Add(1)
	p.total.Add(1)
	p.lineTokens[l].Add(1)
	if p.lat != nil {
		e2e := time.Since(p.lineStart[l]).Nanoseconds()
		p.lat.RecordLatency(ctx.WorkerID(), 0, e2e)
	}
}

// park blocks cell c's current token until token target completes pipe
// c.pipe, by linking c onto the wait-list of the cell that will complete
// target (the target's line is target mod lines). It reports whether the
// token actually parked; false means the target has already completed
// and the caller should advance normally. The cell's outstanding charge
// is retained while parked, so the run cannot quiesce under it.
func (p *Pipeline) park(c *cell, target int64) bool {
	tc := &p.cells[int(target%int64(p.lines))][c.pipe]
	if tc.completed.Load() >= target {
		return false // already completed: Defer is a no-op
	}
	p.defMu.Lock()
	c.waitFor = target
	c.waitNext = tc.waiters.Load()
	tc.waiters.Store(c)
	// Re-check under the lock: a completion that raced past the fast
	// path above either sees our link (and will wake us) or already
	// published a satisfying token (and we must not park).
	if tc.completed.Load() >= target {
		tc.waiters.Store(c.waitNext)
		c.waitNext = nil
		p.defMu.Unlock()
		return false
	}
	c.deferCount++
	p.deferrals.Add(1)
	p.defMu.Unlock()
	return true
}

// wakeWaiters re-arms every cell parked on tc whose target token has now
// completed (waitFor ≤ tok); their retained charges re-enter through the
// normal submit path and the callable re-runs for the same token.
func (p *Pipeline) wakeWaiters(ctx executor.Context, tc *cell, tok int64) {
	p.defMu.Lock()
	var ready, keep *cell
	for c := tc.waiters.Load(); c != nil; {
		next := c.waitNext
		if c.waitFor <= tok {
			c.waitNext = ready
			ready = c
		} else {
			c.waitNext = keep
			keep = c
		}
		c = next
	}
	tc.waiters.Store(keep)
	p.defMu.Unlock()
	for c := ready; c != nil; {
		next := c.waitNext
		c.waitNext = nil
		ctx.Submit(&c.self)
		c = next
	}
}

// fanOut runs one token of a ForEach pipe: evaluate the range, arm the
// shared cursor and the claimant join counter, and submit the claimants
// as one batch so they ride the sharded injection queue and spread by
// batch stealing. The last claimant to drain the cursor advances the
// token (advance), using the cell's retained charge.
func (p *Pipeline) fanOut(ctx executor.Context, c *cell, pipe *Pipe, tok int64) {
	n := 0
	func() {
		defer func() {
			if r := recover(); r != nil {
				p.fail(fmt.Errorf("pipeline: ForEach range of pipe %d panicked on token %d: %v",
					c.pipe, tok, r))
			}
		}()
		n = pipe.dpN(&c.pf)
	}()
	if n <= 0 {
		p.advance(ctx, c, tok) // empty range: the token advances untouched
		return
	}
	grain := int64(pipe.dpGrain)
	k := len(c.claims)
	if pipe.dpPart == Static {
		// One even contiguous block per claimant (grain as a floor).
		if even := (int64(n) + int64(k) - 1) / int64(k); even > grain {
			grain = even
		}
	}
	if need := (int64(n) + grain - 1) / grain; int64(k) > need {
		k = int(need)
	}
	c.cursor.Store(0)
	c.dpEnd = int64(n)
	c.grainEff = grain
	c.pending.Store(int64(k))
	p.outstanding.Add(int64(k))
	if err := p.sched.SubmitBatch(c.claimRefs[:k]); err != nil {
		// Rejected whole: no claimant will run. Undo the charges and
		// advance so the failing run still drains.
		p.fail(err)
		p.outstanding.Add(-int64(k))
		c.pending.Store(0)
		p.advance(ctx, c, tok)
	}
}

// runClaim is one claimant of a ForEach cell: claim grain-sized (or
// guided) ranges off the shared cursor until it is exhausted; the last
// claimant to retire advances the token.
func (p *Pipeline) runClaim(ctx executor.Context, c *cell) {
	pipe := &p.pipes[c.pipe]
	guided := pipe.dpPart == Guided
	twoW := 2 * int64(p.workers)
	if twoW < 1 {
		twoW = 1
	}
	for {
		cur := c.cursor.Load()
		if cur >= c.dpEnd {
			break
		}
		g := c.grainEff
		if guided {
			if want := (c.dpEnd - cur) / twoW; want > g {
				g = want
			}
		}
		end := cur + g
		if end > c.dpEnd {
			end = c.dpEnd
		}
		if !c.cursor.CompareAndSwap(cur, end) {
			continue
		}
		p.invokeBody(pipe, &c.pf, int(cur), int(end))
	}
	if c.pending.Add(-1) == 0 {
		p.advance(ctx, c, c.pf.token) // barrier reached: the token moves on
	}
	p.retire()
}

// nextTokenOnLine reconstructs the token currently traversing line l: the
// line processes tokens l, l+L, l+2L, ... and exactly one is in flight.
func (p *Pipeline) nextTokenOnLine(l int) int64 {
	// rounds completed on this line = tokens this line has fully retired;
	// derive from the line's position in the global sequence.
	// The token at line l is the largest t = l (mod lines) with t <
	// nextToken; since each line has one token in flight, that is the
	// most recent generation on this line.
	n := p.nextToken.Load()
	r := (n - 1 - int64(l)) / int64(p.lines)
	return int64(l) + r*int64(p.lines)
}

func (p *Pipeline) invoke(pipe *Pipe, pf *Pipeflow) {
	defer func() {
		if r := recover(); r != nil {
			// A panicking pipe stops the pipeline; in-flight work drains.
			p.fail(fmt.Errorf("pipeline: pipe %d panicked on token %d: %v", pf.pipe, pf.token, r))
		}
	}()
	pipe.Fn(pf)
}

func (p *Pipeline) invokeBody(pipe *Pipe, pf *Pipeflow, begin, end int) {
	defer func() {
		if r := recover(); r != nil {
			p.fail(fmt.Errorf("pipeline: ForEach body of pipe %d panicked on token %d [%d,%d): %v",
				pf.pipe, pf.token, begin, end, r))
		}
	}()
	pipe.dpBody(pf, begin, end)
}

// fail records err and stops token generation; in-flight tokens drain.
// Errors beyond the recording cap are counted, not silently discarded.
func (p *Pipeline) fail(err error) {
	p.stopped.Store(true)
	p.errMu.Lock()
	if len(p.errs) < maxPipelineErrs {
		p.errs = append(p.errs, err)
	} else {
		p.dropped++
	}
	p.errMu.Unlock()
}

// retire decrements the outstanding-cell count and completes the run at
// quiescence.
func (p *Pipeline) retire() {
	if p.outstanding.Add(-1) == 0 {
		p.done <- struct{}{}
	}
}

// Err returns every failure captured during the current (or last) run —
// Fail calls, pipe panics (converted to errors), context cancellation,
// scheduler rejection — aggregated with errors.Join, or nil for a clean
// run. A single failure is returned unwrapped. When more than
// maxPipelineErrs failures occurred, the aggregation ends with an entry
// stating how many were dropped. Run resets the error state.
func (p *Pipeline) Err() error {
	p.errMu.Lock()
	defer p.errMu.Unlock()
	switch {
	case len(p.errs) == 0:
		return nil
	case len(p.errs) == 1 && p.dropped == 0:
		return p.errs[0]
	case p.dropped == 0:
		return errors.Join(p.errs...)
	}
	joined := make([]error, 0, len(p.errs)+1)
	joined = append(joined, p.errs...)
	joined = append(joined, fmt.Errorf(
		"pipeline: %d additional error(s) dropped (recording cap %d)",
		p.dropped, maxPipelineErrs))
	return errors.Join(joined...)
}

// DroppedErrs returns how many errors were discarded beyond the
// recording cap during the current (or last) run.
func (p *Pipeline) DroppedErrs() int64 {
	p.errMu.Lock()
	defer p.errMu.Unlock()
	return p.dropped
}

// Stats snapshots the pipeline's cumulative counters. Safe to call while
// the pipeline runs (counters are monotone; the snapshot may lag
// in-flight completions).
func (p *Pipeline) Stats() Stats {
	st := Stats{
		Runs:        p.rounds.Load(),
		Tokens:      p.total.Load(),
		Deferrals:   p.deferrals.Load(),
		DroppedErrs: p.DroppedErrs(),
		PerLine:     make([]int64, p.lines),
	}
	for l := range p.lineTokens {
		st.PerLine[l] = p.lineTokens[l].Load()
	}
	return st
}

// Tokens returns the cumulative number of tokens completed across runs.
func (p *Pipeline) Tokens() int64 { return p.total.Load() }

// NumLines returns the line count.
func (p *Pipeline) NumLines() int { return p.lines }

// NumPipes returns the pipe count.
func (p *Pipeline) NumPipes() int { return len(p.pipes) }

package pipeline

import (
	"context"
	"errors"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"gotaskflow/internal/executor"
)

func TestPipeflowFailStopsGeneration(t *testing.T) {
	e := executor.New(4)
	defer e.Shutdown()
	boom := errors.New("stage two broke")
	var generated atomic.Int64
	p := New(e, 3,
		Pipe{Type: Serial, Fn: func(pf *Pipeflow) {
			if generated.Add(1) > 1000 {
				pf.Stop() // safety net; Fail should stop us first
			}
		}},
		Pipe{Type: Parallel, Fn: func(pf *Pipeflow) {
			if pf.Token() == 5 {
				pf.Fail(boom)
			}
		}},
	)
	p.Run()
	err := p.Err()
	if !errors.Is(err, boom) {
		t.Fatalf("Err() = %v, want the Fail error", err)
	}
	if !strings.Contains(err.Error(), "pipe 1") || !strings.Contains(err.Error(), "token 5") {
		t.Fatalf("Err() = %v, want pipe and token identified", err)
	}
	if generated.Load() > 1000 {
		t.Fatal("Fail did not stop token generation")
	}
}

func TestPipelineErrJoinsMultipleFailures(t *testing.T) {
	e := executor.New(4)
	defer e.Shutdown()
	e1, e2 := errors.New("one"), errors.New("two")
	p := New(e, 2,
		Pipe{Type: Serial, Fn: func(pf *Pipeflow) {
			switch pf.Token() {
			case 0:
				pf.Fail(e1)
				pf.Fail(e2)
			default:
				pf.Stop()
			}
		}},
	)
	p.Run()
	err := p.Err()
	if !errors.Is(err, e1) || !errors.Is(err, e2) {
		t.Fatalf("Err() = %v, want both failures joined", err)
	}
}

func TestPipelineRunContextCancel(t *testing.T) {
	e := executor.New(4)
	defer e.Shutdown()
	ctx, cancel := context.WithCancel(context.Background())
	started := make(chan struct{})
	var once atomic.Bool
	p := New(e, 2,
		Pipe{Type: Serial, Fn: func(pf *Pipeflow) {
			if once.CompareAndSwap(false, true) {
				close(started)
			}
			// Keep the head busy until cancellation lands: a stopped
			// pipeline quiesces on the next head activation.
			time.Sleep(time.Millisecond)
		}},
	)
	go func() { <-started; cancel() }()
	n, err := p.RunContext(ctx)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("RunContext = %v, want context.Canceled", err)
	}
	if n < 1 {
		t.Fatalf("processed %d tokens, want at least the first", n)
	}
}

func TestPipelineRunContextAlreadyCancelled(t *testing.T) {
	e := executor.New(2)
	defer e.Shutdown()
	var ran atomic.Int64
	p := New(e, 2, Pipe{Type: Serial, Fn: func(pf *Pipeflow) { ran.Add(1); pf.Stop() }})
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	n, err := p.RunContext(ctx)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("RunContext = %v, want Canceled", err)
	}
	if n != 0 || ran.Load() != 0 {
		t.Fatalf("pipeline ran (%d tokens, %d invocations) despite a dead ctx", n, ran.Load())
	}
}

func TestPipelineRunContextDeadline(t *testing.T) {
	e := executor.New(2)
	defer e.Shutdown()
	ctx, cancel := context.WithTimeout(context.Background(), 15*time.Millisecond)
	defer cancel()
	p := New(e, 2,
		Pipe{Type: Serial, Fn: func(pf *Pipeflow) { time.Sleep(time.Millisecond) }},
	)
	_, err := p.RunContext(ctx)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("RunContext = %v, want DeadlineExceeded", err)
	}
}

func TestPipelineRunOnDeadExecutor(t *testing.T) {
	e := executor.New(2)
	e.Shutdown()
	p := New(e, 2, Pipe{Type: Serial, Fn: func(pf *Pipeflow) { pf.Stop() }})
	done := make(chan int64, 1)
	go func() { done <- p.Run() }()
	select {
	case n := <-done:
		if n != 0 {
			t.Fatalf("processed %d tokens on a dead executor", n)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Run hung on a shut-down executor")
	}
	if err := p.Err(); !errors.Is(err, executor.ErrShutdown) {
		t.Fatalf("Err() = %v, want ErrShutdown", err)
	}
}

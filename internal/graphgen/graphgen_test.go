package graphgen

import (
	"testing"
	"testing/quick"

	"gotaskflow/internal/levelize"
)

func TestDeterminism(t *testing.T) {
	a := Random(500, Config{Seed: 7})
	b := Random(500, Config{Seed: 7})
	if a.NumEdges() != b.NumEdges() {
		t.Fatalf("edge counts differ: %d vs %d", a.NumEdges(), b.NumEdges())
	}
	for u := range a.Succ {
		if len(a.Succ[u]) != len(b.Succ[u]) {
			t.Fatalf("node %d successor lists differ", u)
		}
		for k := range a.Succ[u] {
			if a.Succ[u][k] != b.Succ[u][k] {
				t.Fatalf("node %d successor %d differs", u, k)
			}
		}
	}
	c := Random(500, Config{Seed: 8})
	if c.NumEdges() == a.NumEdges() && equalAdj(a, c) {
		t.Fatal("different seeds produced identical graphs")
	}
}

func equalAdj(a, b *DAG) bool {
	for u := range a.Succ {
		if len(a.Succ[u]) != len(b.Succ[u]) {
			return false
		}
		for k := range a.Succ[u] {
			if a.Succ[u][k] != b.Succ[u][k] {
				return false
			}
		}
	}
	return true
}

func TestDegreeBounds(t *testing.T) {
	d := Random(2000, Config{MaxIn: 4, MaxOut: 4, Seed: 11})
	for v := 0; v < d.N; v++ {
		if d.InDeg[v] > 4 {
			t.Fatalf("node %d in-degree %d > 4", v, d.InDeg[v])
		}
		if d.OutDeg[v] > 4 {
			t.Fatalf("node %d out-degree %d > 4", v, d.OutDeg[v])
		}
		if int(d.OutDeg[v]) != len(d.Succ[v]) {
			t.Fatalf("node %d OutDeg inconsistent", v)
		}
	}
}

func TestEdgesGoForward(t *testing.T) {
	d := Random(1000, Config{Seed: 3})
	for u := range d.Succ {
		for _, v := range d.Succ[u] {
			if int(v) <= u {
				t.Fatalf("backward edge %d -> %d", u, v)
			}
			if u+int(d.N) < int(v) {
				t.Fatalf("edge out of range")
			}
		}
	}
}

func TestNoDuplicateEdges(t *testing.T) {
	d := Random(1000, Config{Seed: 5})
	for u := range d.Succ {
		seen := map[int32]bool{}
		for _, v := range d.Succ[u] {
			if seen[v] {
				t.Fatalf("duplicate edge %d -> %d", u, v)
			}
			seen[v] = true
		}
	}
}

func TestAcyclicViaLevelize(t *testing.T) {
	d := Random(5000, Config{Seed: 13})
	if _, err := levelize.Levels(d); err != nil {
		t.Fatalf("generated graph not levelizable: %v", err)
	}
}

func TestSources(t *testing.T) {
	d := Random(300, Config{Seed: 1})
	srcs := d.Sources()
	if len(srcs) == 0 {
		t.Fatal("no sources")
	}
	seen := map[int]bool{}
	for _, s := range srcs {
		if d.InDeg[s] != 0 {
			t.Fatalf("source %d has in-degree %d", s, d.InDeg[s])
		}
		seen[s] = true
	}
	for v := 0; v < d.N; v++ {
		if d.InDeg[v] == 0 && !seen[v] {
			t.Fatalf("node %d with in-degree 0 missing from Sources", v)
		}
	}
	// Node 0 can never have predecessors.
	if !seen[0] {
		t.Fatal("node 0 must be a source")
	}
}

func TestEmptyAndTiny(t *testing.T) {
	d := Random(0, Config{})
	if d.N != 0 || d.NumEdges() != 0 {
		t.Fatal("empty graph malformed")
	}
	d1 := Random(1, Config{Seed: 9})
	if d1.NumEdges() != 0 || len(d1.Sources()) != 1 {
		t.Fatal("single-node graph malformed")
	}
}

// Property: in/out degree sums both equal the edge count, for any size,
// bounds, and seed.
func TestQuickDegreeAccounting(t *testing.T) {
	f := func(seed int64, sz uint16, maxIn, maxOut uint8) bool {
		n := int(sz % 512)
		d := Random(n, Config{
			MaxIn:  int(maxIn % 8),
			MaxOut: int(maxOut % 8),
			Seed:   seed,
		})
		var in, out int32
		for v := 0; v < n; v++ {
			in += d.InDeg[v]
			out += d.OutDeg[v]
		}
		return int(in) == d.NumEdges() && int(out) == d.NumEdges()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// Package graphgen produces seeded random directed acyclic graphs for the
// graph-traversal micro-benchmark of the Cpp-Taskflow paper (Section IV-A).
//
// Matching the paper's setup, the generator bounds both the input and the
// output degree of every node (the paper uses 4 to keep the exhaustive
// OpenMP dependency-clause enumeration tractable) and emits edges only from
// lower to higher node indices, so index order is a valid topological order
// — exactly what the static OpenMP baseline needs.
package graphgen

import "math/rand"

// DAG is a random task dependency graph. Node indices are a topological
// order by construction.
type DAG struct {
	N        int
	Succ     [][]int32 // Succ[u] lists v > u
	InDeg    []int32
	OutDeg   []int32
	numEdges int
}

// Config controls random DAG generation.
type Config struct {
	// MaxIn and MaxOut bound the input/output degree of every node.
	// Non-positive values default to 4, the paper's limit.
	MaxIn, MaxOut int
	// Window bounds how far back a node may pick its predecessors,
	// controlling graph depth and locality. Non-positive defaults to 64.
	Window int
	// Seed drives the deterministic generator.
	Seed int64
}

func (c *Config) defaults() {
	if c.MaxIn <= 0 {
		c.MaxIn = 4
	}
	if c.MaxOut <= 0 {
		c.MaxOut = 4
	}
	if c.Window <= 0 {
		c.Window = 64
	}
}

// Random generates a DAG with n nodes under cfg. The same (n, cfg) always
// yields the same graph.
func Random(n int, cfg Config) *DAG {
	cfg.defaults()
	rng := rand.New(rand.NewSource(cfg.Seed))
	d := &DAG{
		N:      n,
		Succ:   make([][]int32, n),
		InDeg:  make([]int32, n),
		OutDeg: make([]int32, n),
	}
	for v := 1; v < n; v++ {
		want := rng.Intn(cfg.MaxIn + 1)
		lo := v - cfg.Window
		if lo < 0 {
			lo = 0
		}
		for k := 0; k < want; k++ {
			u := lo + rng.Intn(v-lo)
			if int(d.OutDeg[u]) >= cfg.MaxOut || d.hasEdge(u, v) {
				continue
			}
			d.Succ[u] = append(d.Succ[u], int32(v))
			d.OutDeg[u]++
			d.InDeg[v]++
			d.numEdges++
		}
	}
	return d
}

func (d *DAG) hasEdge(u, v int) bool {
	for _, w := range d.Succ[u] {
		if int(w) == v {
			return true
		}
	}
	return false
}

// NumEdges returns the total number of dependency edges.
func (d *DAG) NumEdges() int { return d.numEdges }

// NumNodes implements levelize.Graph.
func (d *DAG) NumNodes() int { return d.N }

// Successors implements levelize.Graph.
func (d *DAG) Successors(i int, visit func(int)) {
	for _, j := range d.Succ[i] {
		visit(int(j))
	}
}

// Sources returns the indices of nodes with no predecessors.
func (d *DAG) Sources() []int {
	var out []int
	for i := 0; i < d.N; i++ {
		if d.InDeg[i] == 0 {
			out = append(out, i)
		}
	}
	return out
}

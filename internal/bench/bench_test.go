package bench

import (
	"strings"
	"testing"
	"time"
)

func TestMeasurePositive(t *testing.T) {
	d := Measure(func() { time.Sleep(time.Millisecond) })
	if d < time.Millisecond {
		t.Fatalf("Measure = %v, want >= 1ms", d)
	}
}

func TestBestTakesMinimum(t *testing.T) {
	n := 0
	d := Best(3, func() {
		n++
		time.Sleep(time.Duration(n) * time.Millisecond)
	})
	if n != 3 {
		t.Fatalf("Best ran fn %d times, want 3", n)
	}
	if d >= 2*time.Millisecond+500*time.Microsecond {
		t.Fatalf("Best = %v, want roughly the 1ms first run", d)
	}
}

func TestBestAndAvgClampReps(t *testing.T) {
	n := 0
	Best(0, func() { n++ })
	Avg(-5, func() { n++ })
	if n != 2 {
		t.Fatalf("fn ran %d times, want 2", n)
	}
}

func TestAvg(t *testing.T) {
	n := 0
	Avg(4, func() { n++ })
	if n != 4 {
		t.Fatalf("Avg ran fn %d times, want 4", n)
	}
}

func TestMs(t *testing.T) {
	if got := Ms(1500 * time.Microsecond); got != "1.50" {
		t.Fatalf("Ms = %q, want 1.50", got)
	}
	if got := Ms(2 * time.Second); got != "2000.00" {
		t.Fatalf("Ms = %q", got)
	}
}

func TestTable(t *testing.T) {
	tb := NewTable("Figure X: demo", "size", "taskflow_ms", "tbb_ms")
	tb.Row(100, 3*time.Millisecond, 5*time.Millisecond)
	tb.Row(200, 1.5, "x")
	if tb.NumRows() != 2 {
		t.Fatalf("NumRows = %d", tb.NumRows())
	}
	var sb strings.Builder
	if err := tb.Fprint(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"# Figure X: demo", "size", "taskflow_ms", "3.00", "5.00", "1.500", "x"} {
		if !strings.Contains(out, want) {
			t.Fatalf("table output missing %q:\n%s", want, out)
		}
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 4 {
		t.Fatalf("table has %d lines, want 4:\n%s", len(lines), out)
	}
}

func TestTableEmpty(t *testing.T) {
	tb := NewTable("", "a", "b")
	var sb strings.Builder
	if err := tb.Fprint(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(sb.String(), "a") {
		t.Fatalf("empty-title table output: %q", sb.String())
	}
}

// Package bench provides the small experiment harness used by the cmd/
// binaries to regenerate the tables and figures of the Cpp-Taskflow paper:
// wall-clock measurement with repetitions, and aligned table/series
// printing in the layout of the paper's plots (one row per x value, one
// column per competing library).
package bench

import (
	"fmt"
	"io"
	"strings"
	"time"
)

// Measure runs fn once and returns its wall-clock duration.
func Measure(fn func()) time.Duration {
	start := time.Now()
	fn()
	return time.Since(start)
}

// Best runs fn reps times and returns the minimum duration — the standard
// noise-robust estimator for micro-benchmarks. reps < 1 is treated as 1.
func Best(reps int, fn func()) time.Duration {
	if reps < 1 {
		reps = 1
	}
	best := Measure(fn)
	for i := 1; i < reps; i++ {
		if d := Measure(fn); d < best {
			best = d
		}
	}
	return best
}

// Avg runs fn reps times and returns the mean duration.
func Avg(reps int, fn func()) time.Duration {
	if reps < 1 {
		reps = 1
	}
	var total time.Duration
	for i := 0; i < reps; i++ {
		total += Measure(fn)
	}
	return total / time.Duration(reps)
}

// Ms formats a duration as fractional milliseconds, the unit of the
// paper's runtime plots.
func Ms(d time.Duration) string {
	return fmt.Sprintf("%.2f", float64(d.Microseconds())/1000.0)
}

// Table accumulates rows and prints them with aligned columns.
type Table struct {
	Title  string
	Header []string
	rows   [][]string
}

// NewTable creates a table with the given title and column header.
func NewTable(title string, header ...string) *Table {
	return &Table{Title: title, Header: header}
}

// Row appends a row; values are formatted with %v.
func (t *Table) Row(cells ...any) *Table {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case time.Duration:
			row[i] = Ms(v)
		case float64:
			row[i] = fmt.Sprintf("%.3f", v)
		default:
			row[i] = fmt.Sprintf("%v", c)
		}
	}
	t.rows = append(t.rows, row)
	return t
}

// NumRows returns the number of data rows added so far.
func (t *Table) NumRows() int { return len(t.rows) }

// Fprint writes the table with aligned columns.
func (t *Table) Fprint(w io.Writer) error {
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, row := range t.rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var sb strings.Builder
	if t.Title != "" {
		fmt.Fprintf(&sb, "# %s\n", t.Title)
	}
	line := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				sb.WriteString("  ")
			}
			fmt.Fprintf(&sb, "%-*s", widths[i], c)
		}
		sb.WriteString("\n")
	}
	line(t.Header)
	for _, row := range t.rows {
		line(row)
	}
	_, err := io.WriteString(w, sb.String())
	return err
}
